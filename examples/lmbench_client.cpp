// lmbench_client: command-line client for the lmbenchd daemon.
//
//   ./build/examples/lmbench_client <op> [client flags] [suite flags...]
//
// Ops:
//   submit    run a suite through the daemon; every flag that run_suite
//             accepts is forwarded verbatim (e.g. `submit --quick
//             --only=lat_syscall`).  Progress streams live; the run's
//             results land in the daemon's trend store.
//   status    one-line daemon state (queue depth, running benchmark and
//             its bench_index/bench_total suite progress)
//   results   print the newest completed run's results JSON
//   trend     print the daemon's trend table (accepts --bench=, --metric=)
//   watch     tail the daemon's live telemetry: one line per interval_stats
//             frame (window latency p50/p99/p999, rps, shard counters)
//             pushed while a load benchmark with --interval-ms runs.
//             `--watch` as a flag does the same.  Runs until the daemon
//             closes the stream, or --frames=N interval frames arrived.
//   shutdown  stop the daemon (the current job finishes first)
//
// Client flags (stripped before forwarding):
//   --socket=PATH          daemon socket (default lmbenchd.sock)
//   --connect-timeout=MS   connect deadline in milliseconds (default 2000)
//   --io-timeout=MS        mid-frame read stall deadline (default 10000;
//                          -1 waits forever).  Waiting for the *next* frame
//                          is always unbounded — runs are long — but a
//                          frame that stops arriving halfway means the
//                          daemon died mid-reply.
//   --json=PATH            submit: write the returned results document here
//   --quiet                submit: suppress per-benchmark progress lines
//   --frames=N             watch: exit 0 after N interval_stats frames
//                          (exit 1 if the stream ends first); 0 = tail
//                          until the daemon goes away
//
// Exit codes: the suite's own exit code after `submit` (0 ok, 1 failures,
// 2 usage, 3 gate), 2 on usage/protocol errors, 5 when the daemon cannot
// be reached or stops responding (connection refused, missing socket,
// connect timeout, mid-frame stall).
#include <cerrno>
#include <cstdio>
#include <string>

#include "src/core/options.h"
#include "src/report/json.h"
#include "src/svc/client.h"
#include "src/sys/error.h"
#include "src/sys/fdio.h"

namespace {

using lmb::report::JsonObject;
using lmb::report::JsonValue;
using lmb::report::find;

const JsonValue* expect_ok(const JsonValue& response) {
  const JsonObject& obj = response.object();
  const JsonValue* error = find(obj, "error");
  if (error != nullptr) {
    std::fprintf(stderr, "lmbench_client: daemon error: %s\n", error->str().c_str());
    return nullptr;
  }
  return &response;
}

int do_submit(lmb::svc::Client& client, const lmb::Options& opts) {
  // Forward every flag except the client's own to the daemon.
  std::map<std::string, std::string> args;
  for (const auto& [key, value] : opts.entries()) {
    if (key == "socket" || key == "connect-timeout" || key == "io-timeout" || key == "json" ||
        key == "quiet") {
      continue;
    }
    args[key] = value;
  }
  const bool quiet = opts.get_bool("quiet");

  JsonValue done = client.submit(args, [&](const JsonValue& frame) {
    const JsonObject& obj = frame.object();
    const JsonValue* event = find(obj, "event");
    if (event == nullptr) {
      return;
    }
    const std::string& kind = event->str();
    if (kind == "queued") {
      const JsonValue* position = find(obj, "position");
      if (position != nullptr && position->number() > 0) {
        std::printf("queued behind %d job(s)\n", static_cast<int>(position->number()));
        std::fflush(stdout);
      }
    } else if (kind == "suite_start") {
      const JsonValue* system = find(obj, "system");
      const JsonValue* total = find(obj, "total");
      std::printf("running %d benchmark(s) on %s\n",
                  total != nullptr ? static_cast<int>(total->number()) : 0,
                  system != nullptr ? system->str().c_str() : "?");
      std::fflush(stdout);
    } else if (kind == "bench_finish" && !quiet) {
      const JsonValue* name = find(obj, "name");
      const JsonValue* summary = find(obj, "summary");
      std::printf("%-16s %s\n", name != nullptr ? name->str().c_str() : "?",
                  summary != nullptr ? summary->str().c_str() : "");
      std::fflush(stdout);
    }
  });

  const JsonObject& obj = done.object();
  if (const JsonValue* error = find(obj, "error")) {
    std::fprintf(stderr, "lmbench_client: daemon error: %s\n", error->str().c_str());
    const JsonValue* code = find(obj, "exit_code");
    return code != nullptr ? static_cast<int>(code->number()) : 2;
  }
  const JsonValue* metrics = find(obj, "metrics");
  const JsonValue* failed = find(obj, "failed");
  const JsonValue* wall = find(obj, "wall_ms");
  std::printf("done: %d metrics, %d failures in %.1f s\n",
              metrics != nullptr ? static_cast<int>(metrics->number()) : 0,
              failed != nullptr ? static_cast<int>(failed->number()) : 0,
              (wall != nullptr ? wall->number() : 0.0) / 1e3);

  std::string json_path = opts.get_string("json", "");
  if (!json_path.empty()) {
    const JsonValue* results = find(obj, "results");
    if (results != nullptr && !results->is_null()) {
      lmb::sys::write_file(json_path, lmb::report::to_text(*results) + "\n");
      std::printf("wrote results to %s\n", json_path.c_str());
    }
  }
  const JsonValue* code = find(obj, "exit_code");
  return code != nullptr ? static_cast<int>(code->number()) : 0;
}

double num_or(const JsonObject& obj, const char* key, double fallback) {
  const JsonValue* v = find(obj, key);
  return v != nullptr ? v->number() : fallback;
}

int do_watch(lmb::svc::Client& client, const lmb::Options& opts) {
  const int frames = static_cast<int>(opts.get_int("frames", 0));
  const int got = client.watch(
      [](const JsonValue& frame) {
        const JsonObject& obj = frame.object();
        const JsonValue* event = find(obj, "event");
        if (event == nullptr) {
          return;
        }
        const std::string& kind = event->str();
        if (kind == "watching") {
          std::printf("watching lmbenchd (interval frames stream while a load "
                      "benchmark with --interval-ms runs)\n");
          std::printf("%-22s %-3s %-4s %10s %10s %9s %9s %9s\n", "source", "sh", "win", "req",
                      "rps", "p50(us)", "p99(us)", "p999(us)");
        } else if (kind == "interval_stats") {
          const JsonValue* source = find(obj, "source");
          std::printf("%-22s %-3d %-4d %10.0f %10.0f %9.1f %9.1f %9.1f\n",
                      source != nullptr ? source->str().c_str() : "?",
                      static_cast<int>(num_or(obj, "shard", 0)),
                      static_cast<int>(num_or(obj, "window", 0)), num_or(obj, "requests", 0),
                      num_or(obj, "rps", 0), num_or(obj, "p50_us", 0), num_or(obj, "p99_us", 0),
                      num_or(obj, "p999_us", 0));
        } else if (kind == "bench_start") {
          // index is the 0-based run-order position; show it 1-based.
          const JsonValue* name = find(obj, "name");
          std::printf("-- bench %s (%d/%d)\n", name != nullptr ? name->str().c_str() : "?",
                      static_cast<int>(num_or(obj, "index", 0)) + 1,
                      static_cast<int>(num_or(obj, "total", 0)));
        } else if (kind == "job_done") {
          std::printf("-- job %d done\n", static_cast<int>(num_or(obj, "job", 0)));
        }
        std::fflush(stdout);
      },
      frames);
  if (frames > 0 && got < frames) {
    std::fprintf(stderr, "lmbench_client: stream ended after %d/%d interval frame(s)\n", got,
                 frames);
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) try {
  lmb::Options opts = lmb::Options::parse(argc, argv);
  // `--watch` as a bare flag is an alias for the watch op.
  std::string op = opts.get_bool("watch", false) ? "watch" : "";
  if (!opts.positionals().empty()) {
    op = opts.positionals().front();
  }
  if (op.empty()) {
    std::fprintf(stderr,
                 "usage: lmbench_client <submit|status|results|trend|watch|shutdown> "
                 "[--socket=PATH] [--connect-timeout=MS] [suite flags...]\n");
    return 2;
  }
  lmb::svc::Client client(opts.get_string("socket", "lmbenchd.sock"),
                          static_cast<int>(opts.get_int("connect-timeout", 2000)),
                          static_cast<int>(opts.get_int("io-timeout", 10'000)));

  try {
    if (op == "submit") {
      return do_submit(client, opts);
    }
    if (op == "status") {
      JsonValue response = client.status();
      if (expect_ok(response) == nullptr) {
        return 2;
      }
      const JsonObject& obj = response.object();
      std::string progress;
      const int bench_total = static_cast<int>(num_or(obj, "bench_total", 0));
      if (bench_total > 0) {
        // bench_index is 0-based (== benchmarks completed); show 1-based.
        progress = " bench=" +
                   std::to_string(static_cast<int>(num_or(obj, "bench_index", 0)) + 1) + "/" +
                   std::to_string(bench_total);
      }
      std::printf("state=%s running=%s%s queued=%d completed=%d watchers=%d socket=%s\n",
                  find(obj, "state")->str().c_str(), find(obj, "running")->str().c_str(),
                  progress.c_str(), static_cast<int>(find(obj, "queued")->number()),
                  static_cast<int>(find(obj, "completed")->number()),
                  static_cast<int>(num_or(obj, "watchers", 0)),
                  find(obj, "socket")->str().c_str());
      return 0;
    }
    if (op == "watch") {
      return do_watch(client, opts);
    }
    if (op == "results") {
      JsonValue response = client.results();
      if (expect_ok(response) == nullptr) {
        return 2;
      }
      const JsonValue* results = find(response.object(), "results");
      if (results == nullptr || results->is_null()) {
        std::fprintf(stderr, "lmbench_client: no completed runs yet\n");
        return 1;
      }
      std::printf("%s\n", lmb::report::to_text(*results).c_str());
      return 0;
    }
    if (op == "trend") {
      JsonValue response = client.trend(opts.get_string("host", ""),
                                        opts.get_string("bench", ""),
                                        opts.get_string("metric", ""));
      if (expect_ok(response) == nullptr) {
        return 2;
      }
      const JsonObject& obj = response.object();
      std::printf("%s", find(obj, "table")->str().c_str());
      std::string json_path = opts.get_string("json", "");
      if (!json_path.empty()) {
        lmb::sys::write_file(json_path, lmb::report::to_text(*find(obj, "trend")) + "\n");
        std::printf("wrote trend to %s\n", json_path.c_str());
      }
      return 0;
    }
    if (op == "shutdown") {
      JsonValue response = client.shutdown();
      if (expect_ok(response) == nullptr) {
        return 2;
      }
      std::printf("lmbenchd is shutting down\n");
      return 0;
    }
  } catch (const lmb::sys::SysError& e) {
    if (e.error_code() == ETIMEDOUT) {
      std::fprintf(stderr,
                   "lmbench_client: lost contact with lmbenchd at %s: %s "
                   "(daemon stalled or died mid-reply; see --io-timeout)\n",
                   client.socket_path().c_str(), e.what());
    } else {
      std::fprintf(stderr, "lmbench_client: cannot reach lmbenchd at %s: %s\n",
                   client.socket_path().c_str(), e.what());
    }
    return 5;
  }

  std::fprintf(stderr, "lmbench_client: unknown op '%s'\n", op.c_str());
  return 2;
} catch (const std::exception& e) {
  std::fprintf(stderr, "lmbench_client: %s\n", e.what());
  return 2;
}
