// lmbench_client: command-line client for the lmbenchd daemon.
//
//   ./build/examples/lmbench_client <op> [client flags] [suite flags...]
//
// Ops:
//   submit    run a suite through the daemon; every flag that run_suite
//             accepts is forwarded verbatim (e.g. `submit --quick
//             --only=lat_syscall`).  Progress streams live; the run's
//             results land in the daemon's trend store.
//   status    one-line daemon state (queue depth, running benchmark)
//   results   print the newest completed run's results JSON
//   trend     print the daemon's trend table (accepts --bench=, --metric=)
//   shutdown  stop the daemon (the current job finishes first)
//
// Client flags (stripped before forwarding):
//   --socket=PATH          daemon socket (default lmbenchd.sock)
//   --connect-timeout=MS   connect deadline in milliseconds (default 2000)
//   --io-timeout=MS        mid-frame read stall deadline (default 10000;
//                          -1 waits forever).  Waiting for the *next* frame
//                          is always unbounded — runs are long — but a
//                          frame that stops arriving halfway means the
//                          daemon died mid-reply.
//   --json=PATH            submit: write the returned results document here
//   --quiet                submit: suppress per-benchmark progress lines
//
// Exit codes: the suite's own exit code after `submit` (0 ok, 1 failures,
// 2 usage, 3 gate), 2 on usage/protocol errors, 5 when the daemon cannot
// be reached or stops responding (connection refused, missing socket,
// connect timeout, mid-frame stall).
#include <cerrno>
#include <cstdio>
#include <string>

#include "src/core/options.h"
#include "src/report/json.h"
#include "src/svc/client.h"
#include "src/sys/error.h"
#include "src/sys/fdio.h"

namespace {

using lmb::report::JsonObject;
using lmb::report::JsonValue;
using lmb::report::find;

const JsonValue* expect_ok(const JsonValue& response) {
  const JsonObject& obj = response.object();
  const JsonValue* error = find(obj, "error");
  if (error != nullptr) {
    std::fprintf(stderr, "lmbench_client: daemon error: %s\n", error->str().c_str());
    return nullptr;
  }
  return &response;
}

int do_submit(lmb::svc::Client& client, const lmb::Options& opts) {
  // Forward every flag except the client's own to the daemon.
  std::map<std::string, std::string> args;
  for (const auto& [key, value] : opts.entries()) {
    if (key == "socket" || key == "connect-timeout" || key == "io-timeout" || key == "json" ||
        key == "quiet") {
      continue;
    }
    args[key] = value;
  }
  const bool quiet = opts.get_bool("quiet");

  JsonValue done = client.submit(args, [&](const JsonValue& frame) {
    const JsonObject& obj = frame.object();
    const JsonValue* event = find(obj, "event");
    if (event == nullptr) {
      return;
    }
    const std::string& kind = event->str();
    if (kind == "queued") {
      const JsonValue* position = find(obj, "position");
      if (position != nullptr && position->number() > 0) {
        std::printf("queued behind %d job(s)\n", static_cast<int>(position->number()));
        std::fflush(stdout);
      }
    } else if (kind == "suite_start") {
      const JsonValue* system = find(obj, "system");
      const JsonValue* total = find(obj, "total");
      std::printf("running %d benchmark(s) on %s\n",
                  total != nullptr ? static_cast<int>(total->number()) : 0,
                  system != nullptr ? system->str().c_str() : "?");
      std::fflush(stdout);
    } else if (kind == "bench_finish" && !quiet) {
      const JsonValue* name = find(obj, "name");
      const JsonValue* summary = find(obj, "summary");
      std::printf("%-16s %s\n", name != nullptr ? name->str().c_str() : "?",
                  summary != nullptr ? summary->str().c_str() : "");
      std::fflush(stdout);
    }
  });

  const JsonObject& obj = done.object();
  if (const JsonValue* error = find(obj, "error")) {
    std::fprintf(stderr, "lmbench_client: daemon error: %s\n", error->str().c_str());
    const JsonValue* code = find(obj, "exit_code");
    return code != nullptr ? static_cast<int>(code->number()) : 2;
  }
  const JsonValue* metrics = find(obj, "metrics");
  const JsonValue* failed = find(obj, "failed");
  const JsonValue* wall = find(obj, "wall_ms");
  std::printf("done: %d metrics, %d failures in %.1f s\n",
              metrics != nullptr ? static_cast<int>(metrics->number()) : 0,
              failed != nullptr ? static_cast<int>(failed->number()) : 0,
              (wall != nullptr ? wall->number() : 0.0) / 1e3);

  std::string json_path = opts.get_string("json", "");
  if (!json_path.empty()) {
    const JsonValue* results = find(obj, "results");
    if (results != nullptr && !results->is_null()) {
      lmb::sys::write_file(json_path, lmb::report::to_text(*results) + "\n");
      std::printf("wrote results to %s\n", json_path.c_str());
    }
  }
  const JsonValue* code = find(obj, "exit_code");
  return code != nullptr ? static_cast<int>(code->number()) : 0;
}

}  // namespace

int main(int argc, char** argv) try {
  lmb::Options opts = lmb::Options::parse(argc, argv);
  if (opts.positionals().empty()) {
    std::fprintf(stderr,
                 "usage: lmbench_client <submit|status|results|trend|shutdown> "
                 "[--socket=PATH] [--connect-timeout=MS] [suite flags...]\n");
    return 2;
  }
  const std::string op = opts.positionals().front();
  lmb::svc::Client client(opts.get_string("socket", "lmbenchd.sock"),
                          static_cast<int>(opts.get_int("connect-timeout", 2000)),
                          static_cast<int>(opts.get_int("io-timeout", 10'000)));

  try {
    if (op == "submit") {
      return do_submit(client, opts);
    }
    if (op == "status") {
      JsonValue response = client.status();
      if (expect_ok(response) == nullptr) {
        return 2;
      }
      const JsonObject& obj = response.object();
      std::printf("state=%s running=%s queued=%d completed=%d socket=%s\n",
                  find(obj, "state")->str().c_str(), find(obj, "running")->str().c_str(),
                  static_cast<int>(find(obj, "queued")->number()),
                  static_cast<int>(find(obj, "completed")->number()),
                  find(obj, "socket")->str().c_str());
      return 0;
    }
    if (op == "results") {
      JsonValue response = client.results();
      if (expect_ok(response) == nullptr) {
        return 2;
      }
      const JsonValue* results = find(response.object(), "results");
      if (results == nullptr || results->is_null()) {
        std::fprintf(stderr, "lmbench_client: no completed runs yet\n");
        return 1;
      }
      std::printf("%s\n", lmb::report::to_text(*results).c_str());
      return 0;
    }
    if (op == "trend") {
      JsonValue response = client.trend(opts.get_string("host", ""),
                                        opts.get_string("bench", ""),
                                        opts.get_string("metric", ""));
      if (expect_ok(response) == nullptr) {
        return 2;
      }
      const JsonObject& obj = response.object();
      std::printf("%s", find(obj, "table")->str().c_str());
      std::string json_path = opts.get_string("json", "");
      if (!json_path.empty()) {
        lmb::sys::write_file(json_path, lmb::report::to_text(*find(obj, "trend")) + "\n");
        std::printf("wrote trend to %s\n", json_path.c_str());
      }
      return 0;
    }
    if (op == "shutdown") {
      JsonValue response = client.shutdown();
      if (expect_ok(response) == nullptr) {
        return 2;
      }
      std::printf("lmbenchd is shutting down\n");
      return 0;
    }
  } catch (const lmb::sys::SysError& e) {
    if (e.error_code() == ETIMEDOUT) {
      std::fprintf(stderr,
                   "lmbench_client: lost contact with lmbenchd at %s: %s "
                   "(daemon stalled or died mid-reply; see --io-timeout)\n",
                   client.socket_path().c_str(), e.what());
    } else {
      std::fprintf(stderr, "lmbench_client: cannot reach lmbenchd at %s: %s\n",
                   client.socket_path().c_str(), e.what());
    }
    return 5;
  }

  std::fprintf(stderr, "lmbench_client: unknown op '%s'\n", op.c_str());
  return 2;
} catch (const std::exception& e) {
  std::fprintf(stderr, "lmbench_client: %s\n", e.what());
  return 2;
}
