// lmbench_trend: report metric history and changepoints from a trend store.
//
//   ./build/examples/lmbench_trend <store-dir> [--host=SHARD]
//                                  [--bench=NAME] [--metric=KEY]
//                                  [--window=N] [--min-rel=PCT] [--sigmas=S]
//                                  [--json=PATH] [--import-baselines=DIR]
//
// Reads the time-series store that `run_suite --trend-store=DIR` and the
// lmbenchd daemon append to, renders a sparkline table of every metric's
// history, and flags level shifts (changepoints) detected by comparing
// sliding-window means against the series' own noise — the cross-run
// analog of lmbench_compare's pairwise noise-aware comparison: a slow
// drift that never trips a pairwise gate still accumulates across the
// window.
//
//   --host=SHARD   shard to report (default: this machine's, else the only
//                  one; see `hosts` in the table header)
//   --bench=NAME   restrict to one benchmark
//   --metric=KEY   restrict to one metric key
//   --window=N     sliding-window width in runs (default 3)
//   --min-rel=PCT  minimum relative shift to flag, percent (default 5)
//   --sigmas=S     noise multiple a shift must clear (default 4)
//   --json=PATH    also write the lmbenchpp.trend.v1 document
//   --import-baselines=DIR  first import a baseline-store directory (the
//                  PR 3 format) into the trend store, then report
//
// Exit codes: 0 (including "no changepoints"), 1 when the store/shard has
// no history, 2 on usage errors.
#include <cstdio>
#include <string>
#include <vector>

#include "src/core/env.h"
#include "src/core/options.h"
#include "src/db/trend_store.h"
#include "src/report/trend.h"
#include "src/sys/fdio.h"

int main(int argc, char** argv) try {
  lmb::Options opts = lmb::Options::parse(argc, argv);
  if (opts.positionals().empty()) {
    std::fprintf(stderr,
                 "usage: lmbench_trend <store-dir> [--host=SHARD] [--bench=NAME] "
                 "[--metric=KEY] [--window=N] [--min-rel=PCT] [--sigmas=S] "
                 "[--json=PATH] [--import-baselines=DIR]\n");
    return 2;
  }
  lmb::db::TrendStore store(opts.positionals().front());

  std::string import_dir = opts.get_string("import-baselines", "");
  if (!import_dir.empty()) {
    size_t imported = store.import_baselines(import_dir);
    std::printf("imported %zu baseline(s) from %s\n", imported, import_dir.c_str());
  }

  std::vector<std::string> hosts = store.hosts();
  if (hosts.empty()) {
    std::fprintf(stderr, "lmbench_trend: no runs in %s yet\n", store.dir().c_str());
    return 1;
  }
  std::string host = opts.get_string("host", "");
  if (host.empty()) {
    std::string mine = lmb::db::TrendStore::shard_name(lmb::query_system_info().label());
    for (const std::string& candidate : hosts) {
      if (candidate == mine) {
        host = candidate;
      }
    }
    if (host.empty()) {
      host = hosts.front();
    }
  }

  std::vector<lmb::db::TrendSeries> series;
  std::string bench = opts.get_string("bench", "");
  if (!bench.empty()) {
    series = store.series(host, bench);
  } else {
    series = store.all_series(host);
  }
  std::string metric = opts.get_string("metric", "");
  if (!metric.empty()) {
    std::vector<lmb::db::TrendSeries> filtered;
    for (lmb::db::TrendSeries& s : series) {
      if (s.key == metric) {
        filtered.push_back(std::move(s));
      }
    }
    series = std::move(filtered);
  }
  if (series.empty()) {
    std::fprintf(stderr, "lmbench_trend: no history for host '%s'%s%s\n", host.c_str(),
                 bench.empty() ? "" : (" bench '" + bench + "'").c_str(),
                 metric.empty() ? "" : (" metric '" + metric + "'").c_str());
    return 1;
  }

  lmb::report::ChangepointOptions detector;
  detector.window = static_cast<size_t>(opts.get_int("window", 3));
  detector.min_rel = opts.get_double("min-rel", 5.0) / 100.0;
  detector.sigmas = opts.get_double("sigmas", 4.0);

  std::vector<lmb::report::TrendRow> rows = lmb::report::analyze_trends(series, detector);
  std::printf("host: %s (%zu run(s) on record)\n\n", host.c_str(), store.runs(host).size());
  std::printf("%s", lmb::report::render_trend_table(rows).c_str());

  std::string json_path = opts.get_string("json", "");
  if (!json_path.empty()) {
    lmb::sys::write_file(json_path, lmb::report::trend_to_json(host, rows));
    std::printf("wrote trend to %s\n", json_path.c_str());
  }
  return 0;
} catch (const std::exception& e) {
  std::fprintf(stderr, "lmbench_trend: %s\n", e.what());
  return 2;
}
