// Quickstart: the lmbench++ library in ten lines per benchmark.
//
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
//
// Measures a handful of headline numbers (syscall, pipe RTT, memory copy,
// memory load latency) using the same calibrate/repeat/min harness every
// benchmark in the suite uses.
#include <cstdio>

#include "src/bw/bw_mem.h"
#include "src/core/clock.h"
#include "src/core/env.h"
#include "src/core/mhz.h"
#include "src/core/timing.h"
#include "src/lat/lat_ipc.h"
#include "src/lat/lat_mem_rd.h"
#include "src/lat/lat_syscall.h"

int main() {
  using namespace lmb;

  SystemInfo info = query_system_info();
  std::printf("lmbench++ quickstart on %s (%s, %d cpu)\n\n", info.label().c_str(),
              info.cpu_model.c_str(), info.cpu_count);

  // The harness's view of the clock (paper §3.4).
  ClockResolution res = probe_resolution(WallClock::instance());
  CpuClock cpu = estimate_cpu_clock(TimingPolicy::quick());
  std::printf("clock tick %lld ns, cpu ~%.0f MHz\n", static_cast<long long>(res.tick), cpu.mhz);

  // 1. OS entry (Table 7).
  Measurement sys_call = lat::measure_null_write(TimingPolicy::quick());
  std::printf("null syscall (write to /dev/null):   %8.2f us\n", sys_call.us_per_op());

  // 2. IPC latency (Table 11).
  Measurement pipe = lat::measure_pipe_latency(lat::IpcLatConfig::quick());
  std::printf("pipe round trip:                     %8.2f us\n", pipe.us_per_op());

  // 3. Memory bandwidth (Table 2).
  bw::MemBwConfig copy_cfg;
  copy_cfg.bytes = 4 << 20;
  copy_cfg.policy = TimingPolicy::quick();
  bw::MemBwResult copy = bw::measure_mem_bw(bw::MemOp::kCopyLibc, copy_cfg);
  std::printf("memcpy bandwidth (4MB buffers):      %8.0f MB/s\n", copy.mb_per_sec);

  // 4. Memory load latency (Figure 1): L1-resident vs memory-resident.
  lat::MemLatConfig l1_cfg;
  l1_cfg.array_bytes = 16 << 10;
  l1_cfg.policy = TimingPolicy::quick();
  lat::MemLatConfig mem_cfg = l1_cfg;
  mem_cfg.array_bytes = 32 << 20;
  mem_cfg.order = lat::ChaseOrder::kRandom;  // defeat the prefetcher
  std::printf("load latency: L1 %.1f ns, main memory %.1f ns\n",
              lat::measure_mem_latency(l1_cfg).ns_per_load,
              lat::measure_mem_latency(mem_cfg).ns_per_load);

  std::printf("\nEvery number is the minimum over repeated, auto-calibrated timing\n"
              "intervals — the methodology of McVoy & Staelin, USENIX '96 (section 3.4).\n");
  return 0;
}
