// lmdd: the paper's dd-style I/O benchmark as a CLI (§2, §6.9).
//
// Usage (dd-flavored, as in the original):
//   lmdd if=<path|internal|sim> of=<path|internal|sim> [bs=8k] [count=N]
//        [skip=N] [seek=N] [random] [seed=N] [opat] [ipat] [sync] [fsize=64m]
//
//   if=internal      generate the deterministic pattern instead of reading
//   of=internal      discard output (optionally verifying with ipat)
//   if=sim / of=sim  use the simulated SCSI disk (virtual time!)
//   opat / ipat      generate pattern on output / check pattern on input
//
// Examples:
//   lmdd if=internal of=/tmp/x bs=64k count=128 opat
//   lmdd if=/tmp/x of=internal bs=64k ipat
//   lmdd if=sim of=internal bs=512 count=4096 random
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>

#include "src/core/options.h"
#include "src/core/virtual_clock.h"
#include "src/simdisk/file_disk.h"
#include "src/simdisk/lmdd.h"
#include "src/simdisk/sim_disk.h"

namespace {

using namespace lmb;

// dd-style key=value / bare-word argument parsing.
std::string arg_value(int argc, char** argv, const char* key, const char* fallback) {
  std::string prefix = std::string(key) + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return argv[i] + prefix.size();
    }
  }
  return fallback;
}

bool arg_flag(int argc, char** argv, const char* word) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], word) == 0) {
      return true;
    }
  }
  return false;
}

std::int64_t parse_size(const std::string& text) { return Options::parse_size(text); }

}  // namespace

int main(int argc, char** argv) {
  std::string in_spec = arg_value(argc, argv, "if", "internal");
  std::string out_spec = arg_value(argc, argv, "of", "internal");
  std::uint64_t fsize = static_cast<std::uint64_t>(
      parse_size(arg_value(argc, argv, "fsize", "64m")));

  simdisk::LmddConfig cfg;
  cfg.block_bytes = static_cast<std::uint64_t>(parse_size(arg_value(argc, argv, "bs", "8k")));
  cfg.count = static_cast<std::uint64_t>(parse_size(arg_value(argc, argv, "count", "0")));
  cfg.skip = static_cast<std::uint64_t>(parse_size(arg_value(argc, argv, "skip", "0")));
  cfg.seek = static_cast<std::uint64_t>(parse_size(arg_value(argc, argv, "seek", "0")));
  cfg.seed = static_cast<std::uint32_t>(parse_size(arg_value(argc, argv, "seed", "42")));
  cfg.pattern = arg_flag(argc, argv, "random") ? simdisk::AccessPattern::kRandom
                                               : simdisk::AccessPattern::kSequential;
  cfg.generate_pattern = arg_flag(argc, argv, "opat") || in_spec == "internal";
  cfg.check_pattern = arg_flag(argc, argv, "ipat");
  cfg.sync_at_end = arg_flag(argc, argv, "sync");

  VirtualClock vclock;
  bool any_sim = in_spec == "sim" || out_spec == "sim";

  // Input files open at their existing size; output files are created and
  // extended to fsize= so writes have room.
  auto make_device = [&](const std::string& spec,
                         std::uint64_t create_size) -> std::unique_ptr<simdisk::BlockDevice> {
    if (spec == "internal") {
      return nullptr;
    }
    if (spec == "sim") {
      return std::make_unique<simdisk::SimDisk>(simdisk::DiskGeometry{},
                                                simdisk::DiskTimingParams{}, vclock);
    }
    return std::make_unique<simdisk::FileDisk>(spec, create_size);
  };

  try {
    std::unique_ptr<simdisk::BlockDevice> in = make_device(in_spec, 0);
    std::unique_ptr<simdisk::BlockDevice> out = make_device(out_spec, fsize);

    // Simulated devices are timed on the virtual clock; real I/O on the wall
    // clock.  Mixing both reports virtual time (the sim dominates).
    const Clock& clock = any_sim ? static_cast<const Clock&>(vclock) : WallClock::instance();
    simdisk::LmddResult r = simdisk::lmdd_run(in.get(), out.get(), cfg, clock);

    std::printf("%llu blocks, %.4f MB in %.4f %ssec = %.2f MB/sec\n",
                static_cast<unsigned long long>(r.blocks_moved),
                static_cast<double>(r.bytes_moved) / (1024.0 * 1024.0),
                static_cast<double>(r.elapsed) / 1e9, any_sim ? "virtual " : "",
                r.mb_per_sec);
    if (cfg.check_pattern) {
      std::printf("pattern check: %llu error byte(s)\n",
                  static_cast<unsigned long long>(r.pattern_errors));
      return r.pattern_errors == 0 ? 0 : 2;
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "lmdd: %s\n", e.what());
    return 1;
  }
}
