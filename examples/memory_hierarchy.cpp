// memory_hierarchy: map this machine's cache hierarchy the way §6.2 does.
//
// The paper's motivating use case: "the memory latency benchmark gives a
// strong indication of Verilog simulation performance" — any pointer-heavy
// workload is dominated by where its working set lands in the hierarchy.
//
//   ./build/examples/memory_hierarchy [--max=64m] [--stride=64]
#include <cstdio>

#include "src/core/mhz.h"
#include "src/core/options.h"
#include "src/lat/lat_mem_rd.h"
#include "src/lat/mem_hierarchy.h"
#include "src/report/plot.h"

int main(int argc, char** argv) {
  using namespace lmb;
  Options opts = Options::parse(argc, argv);

  lat::MemLatSweepConfig sweep;
  sweep.min_bytes = 1024;
  sweep.max_bytes = static_cast<size_t>(opts.get_size("max", 32 << 20));
  sweep.strides = {static_cast<size_t>(opts.get_size("stride", 64))};
  sweep.order = lat::ChaseOrder::kRandom;
  sweep.policy = TimingPolicy::quick();

  std::printf("sweeping back-to-back load latency, 1KB..%zuMB (randomized chains)...\n\n",
              sweep.max_bytes >> 20);
  auto points = lat::sweep_mem_latency(sweep);

  report::Plot plot("Load latency vs working-set size", "bytes", "ns per load");
  plot.set_x_scale(report::XScale::kLog2);
  report::Series series;
  series.label = "stride=" + std::to_string(sweep.strides[0]);
  for (const auto& p : points) {
    series.points.push_back({static_cast<double>(p.array_bytes), p.ns_per_load});
  }
  plot.add_series(std::move(series));
  std::printf("%s\n", plot.render().c_str());

  lat::MemHierarchy h = lat::extract_hierarchy(points);
  CpuClock cpu = estimate_cpu_clock(TimingPolicy::quick());

  std::printf("detected hierarchy (cpu ~%.0f MHz):\n", cpu.mhz);
  for (size_t i = 0; i < h.caches.size(); ++i) {
    const auto& level = h.caches[i];
    std::printf("  L%zu: <= %6zu KB   %6.1f ns  (%.1f clocks)\n", i + 1,
                level.size_bytes >> 10, level.latency_ns, cpu.clocks(level.latency_ns));
  }
  if (h.memory_latency_ns > 0) {
    std::printf("  memory:           %6.1f ns  (%.1f clocks)\n", h.memory_latency_ns,
                cpu.clocks(h.memory_latency_ns));
    if (!h.caches.empty()) {
      std::printf("\nA pointer-chasing workload (simulator, interpreter, graph walk) slows\n"
                  "down %.0fx once its working set spills from L1 to memory.\n",
                  h.memory_latency_ns / h.caches[0].latency_ns);
    }
  }
  return 0;
}
