// lmbench_compare: the noise-aware diff over the results database —
// "compare two runs and tell me what actually changed" (paper §3.5's whole
// reason for storing results, §4.1's table conventions for showing them).
//
//   ./build/examples/lmbench_compare BASELINE.json CURRENT.json [options]
//   ./build/examples/lmbench_compare --baseline-dir=DIR CURRENT.json [options]
//
//   BASELINE/CURRENT   lmbenchpp.results.v1 documents (run_suite --json=...)
//   --baseline-dir=DIR compare CURRENT against the newest entry of a
//                      baseline store instead of an explicit file
//   --save             append CURRENT to --baseline-dir after comparing
//                      (establishes the baseline when the store is empty)
//   --floor=PCT        significance floor in percent (default 5): deltas
//                      below it never count, whatever the measured noise
//   --sigmas=N         multiplier on the per-metric noise interval
//                      (default 3)
//   --confidence=C     Student-t confidence level for the noise interval:
//                      0.90, 0.95 (default), or 0.99
//   --assume-noise=PCT assumed relative noise (percent) for metrics whose
//                      result stored no repetition sample (default 0: the
//                      floor alone gates them); shared CI runners typically
//                      want 10-25
//   --json=PATH        write the comparison as lmbenchpp.compare.v1 JSON
//                      (CI artifact, e.g. BENCH_compare.json)
//   --max-rows=N       print at most N table rows (full detail still goes
//                      to --json); 0 = all (default)
//   --no-gate          always exit 0, even with regressions
//   --no-env-gate      don't fail on mismatched environments (for deliberate
//                      cross-system or cross-config comparisons); the
//                      provenance diff still prints
//
// The provenance diff (environment blocks of the two batches, recorded by
// run_suite) always prints, gates or not: a metric delta between a
// governor=performance baseline and a governor=powersave candidate compares
// configuration, not code.
//
// Exit status: 0 = no regressions (or --no-gate), 1 = regressions beyond
// the noise gate, 2 = usage or I/O error, 4 = significant environment
// mismatch between the batches (suppress with --no-env-gate; regressions
// take precedence, so 1 wins when both fire).
#include <cstdio>
#include <optional>
#include <string>

#include "src/core/options.h"
#include "src/db/baseline_store.h"
#include "src/report/compare.h"
#include "src/report/serialize.h"
#include "src/sys/fdio.h"

namespace {

using namespace lmb;

int usage() {
  std::fprintf(stderr,
               "usage: lmbench_compare BASELINE.json CURRENT.json [--floor=PCT] [--sigmas=N]\n"
               "                       [--confidence=C] [--json=PATH] [--max-rows=N] [--no-gate]\n"
               "                       [--no-env-gate]\n"
               "       lmbench_compare --baseline-dir=DIR CURRENT.json [--save] [options]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) try {
  Options opts = Options::parse(argc, argv);
  const std::vector<std::string>& pos = opts.positionals();
  std::string baseline_dir = opts.get_string("baseline-dir", "");

  std::optional<report::ResultBatch> baseline;
  report::ResultBatch current;
  std::string current_path;
  if (baseline_dir.empty()) {
    if (pos.size() != 2) {
      return usage();
    }
    baseline = db::BaselineStore::load(pos[0]);
    current_path = pos[1];
  } else {
    if (pos.size() != 1) {
      return usage();
    }
    baseline = db::BaselineStore(baseline_dir).load_latest();
    current_path = pos[0];
  }
  current = db::BaselineStore::load(current_path);

  if (!baseline.has_value()) {
    // Only reachable in --baseline-dir mode.
    db::BaselineStore store(baseline_dir);
    if (opts.get_bool("save")) {
      std::string saved = store.save(current);
      std::printf("no baseline in %s yet; established one: %s\n", baseline_dir.c_str(),
                  saved.c_str());
      return 0;
    }
    std::fprintf(stderr, "lmbench_compare: no baseline in %s (rerun with --save)\n",
                 baseline_dir.c_str());
    return 2;
  }

  report::CompareThresholds thresholds;
  thresholds.floor_rel = opts.get_double("floor", 5.0) / 100.0;
  thresholds.sigmas = opts.get_double("sigmas", 3.0);
  thresholds.confidence = opts.get_double("confidence", 0.95);
  thresholds.fallback_noise_rel = opts.get_double("assume-noise", 0.0) / 100.0;
  if (thresholds.floor_rel < 0 || thresholds.sigmas < 0 || thresholds.fallback_noise_rel < 0) {
    std::fprintf(stderr,
                 "lmbench_compare: --floor, --sigmas, and --assume-noise must be >= 0\n");
    return 2;
  }

  report::CompareReport cmp = report::compare_batches(*baseline, current, thresholds);

  std::string table = report::render_compare_table(cmp);
  long max_rows = opts.get_int("max-rows", 0);
  if (max_rows > 0) {
    // Keep the title + header + worst max_rows rows; the table is sorted
    // worst-regression-first, so truncation drops only the quiet tail.
    size_t line = 0;
    size_t pos_nl = 0;
    size_t keep = static_cast<size_t>(max_rows) + 3;  // title, header, underline
    while (line < keep && pos_nl != std::string::npos) {
      pos_nl = table.find('\n', pos_nl == 0 ? 0 : pos_nl + 1);
      ++line;
    }
    if (pos_nl != std::string::npos) {
      size_t total_rows = cmp.deltas.size();
      table = table.substr(0, pos_nl + 1) + "... (" +
              std::to_string(total_rows - static_cast<size_t>(max_rows)) + " more rows)\n";
    }
  }
  std::fputs(table.c_str(), stdout);

  // Provenance diff prints unconditionally — gate or not, a comparison
  // across different environments should say so in the output.
  std::fputs(report::render_environment_diff(cmp).c_str(), stdout);

  std::string json_path = opts.get_string("json", "");
  if (!json_path.empty()) {
    sys::write_file(json_path, report::compare_to_json(cmp));
    std::printf("wrote %s\n", json_path.c_str());
  }

  if (!baseline_dir.empty() && opts.get_bool("save")) {
    std::string saved = db::BaselineStore(baseline_dir).save(current);
    std::printf("saved new baseline: %s\n", saved.c_str());
  }

  if (cmp.has_regressions() && !opts.get_bool("no-gate")) {
    return 1;
  }
  if (cmp.env_mismatch() && !opts.get_bool("no-env-gate")) {
    std::fprintf(stderr,
                 "lmbench_compare: environments differ in significant fields; "
                 "exit 4 (use --no-env-gate for deliberate cross-config comparisons)\n");
    return 4;
  }
  return 0;
} catch (const std::exception& e) {
  std::fprintf(stderr, "lmbench_compare: %s\n", e.what());
  return 2;
}
