// run_suite: the `lmbench-run` analog — run every registered benchmark
// through the suite service and save typed results to the user-extensible
// database (paper §3.5) and/or machine-readable JSON/CSV.
//
// This binary is a thin argv adapter: it parses flags into a
// svc::RunRequest, executes it through the shared svc::BenchService (the
// same pipeline the lmbenchd daemon and the tests run), and prints.  All
// pipeline behavior — calibration cache, provenance, tracing, output
// files, baseline compare, trend append — lives in src/svc.
//
//   ./build/examples/run_suite [--quick] [--category=latency] [--jobs=N]
//                              [--only=bench1,bench2] [--timeout=SECONDS]
//                              [--out=results.db]
//                              [--json=results.json] [--csv=results.csv]
//                              [--trace=trace.json] [--trace-chrome=PATH]
//                              [--counters] [--clock=auto|tsc|wall]
//                              [--nanoscale]
//                              [--cal-cache=PATH] [--no-cal-cache]
//                              [--baseline=PATH] [--gate[=PCT]]
//                              [--save-baseline] [--compare-json=PATH]
//                              [--trend-store=DIR]
//                              [--bw-threads=1,2,4] [--kernel=VARIANT]
//                              [--list] [--with-hang]
//
//   --list       print every registered benchmark (grouped by category)
//                without running anything
//   --only=A,B   run exactly these benchmarks (names as shown by --list);
//                overrides --category.  An unknown name is a usage error
//                (exit 2) before anything runs
//   --bw-threads=1,2,4  worker counts for the bw_mem_par scaling sweep;
//                its <op>_p<N>_mbs metrics flow into the JSON/CSV/baseline
//                pipeline and a scaling table + plot print after the run
//   --kernel=auto|scalar|sse2|avx2|nt  memory-kernel implementation for
//                the bandwidth benchmarks (auto = best this CPU supports)
//   --jobs=N     run up to N benchmarks concurrently; bandwidth/disk
//                benchmarks stay serialized within their category
//   --timeout=S  per-benchmark wall-clock budget; a hung benchmark is
//                reported as `timeout` and the suite keeps going
//   --cal-cache=PATH  where calibration state persists between invocations
//                (default .lmbenchpp-cal.db); a warm cache skips every
//                benchmark's calibration ramp and schedules
//                longest-expected-first under --jobs=N
//   --no-cal-cache    disable calibration caching entirely (the paper's
//                re-calibrate-every-run behavior)
//   --trace=PATH write a lmbenchpp.trace.v1 timing-decision trace (also a
//                valid Chrome trace — open it in about:tracing or
//                ui.perfetto.dev): calibration probes, warm-up, every timed
//                repetition, early-stop triggers, cal-cache hits/misses,
//                scheduler placement under --jobs
//   --trace-chrome=PATH  same events as the classic bare-array Chrome
//                trace_event format
//   --counters   sample hardware perf counters (instructions, cycles,
//                cache refs/misses, context switches) around every timed
//                interval; measurements gain ipc and cache_miss_pct
//                metrics.  Silently a no-op where perf_event_open is
//                unavailable (non-Linux, perf_event_paranoid, seccomp)
//   --clock=auto|tsc|wall  timestamp source for every timed interval.
//                auto (default) uses the serialized invariant-TSC clock
//                when the CPU supports it, else CLOCK_MONOTONIC; tsc
//                demands the TSC (falls back to wall with a warning when
//                unavailable); wall forces CLOCK_MONOTONIC.  The chosen
//                source lands in every measurement's clock_source field
//                and in the trace's clock/select event
//   --nanoscale  batched back-to-back timing for nanosecond-scale work:
//                one clock read separates adjacent repetitions, counters
//                wrap the whole batch, and the measured per-interval
//                clock+counter overhead is subtracted and reported in the
//                trace and JSON (interval_overhead_ns)
//   --with-hang  register a deliberately-hanging `test_hang` benchmark
//                (for exercising --timeout end to end)
//   --baseline=PATH   after the run, compare this run's results against a
//                baseline: PATH is either a results JSON file or a baseline
//                -store directory (src/db/baseline_store.h).  An empty
//                store is populated with this run ("baseline established").
//   --gate[=PCT]      with --baseline: exit 3 when any metric regressed
//                beyond the noise-aware threshold; PCT overrides the 5%
//                significance floor
//   --assume-noise=PCT  assumed relative noise for metrics without a stored
//                repetition sample (see lmbench_compare)
//   --save-baseline   with a directory --baseline: append this run to the
//                store after comparing
//   --compare-json=PATH  write the comparison (lmbenchpp.compare.v1), e.g.
//                BENCH_compare.json for CI artifacts
//   --trend-store=DIR  append this run to a time-series trend store
//                (src/db/trend_store.h); `lmbench_trend DIR` reports
//                per-metric history and changepoints across runs
#include <chrono>
#include <cstdio>
#include <map>
#include <thread>

#include "src/core/options.h"
#include "src/core/registry.h"
#include "src/obs/perf_counters.h"
#include "src/report/heatmap.h"
#include "src/report/load.h"
#include "src/report/scaling.h"
#include "src/svc/bench_service.h"

namespace {

using namespace lmb;

int list_benchmarks(const std::string& category) {
  std::vector<const BenchmarkInfo*> benches = Registry::global().list(category);
  // list() sorts by name; group by category for display.
  std::map<std::string, std::vector<const BenchmarkInfo*>> groups;
  for (const BenchmarkInfo* bench : benches) {
    groups[bench->category].push_back(bench);
  }
  bool first = true;
  for (const auto& [group, members] : groups) {
    std::printf("%s[%s]\n", first ? "" : "\n", group.c_str());
    first = false;
    for (const BenchmarkInfo* bench : members) {
      std::printf("  %-16s %s\n", bench->name.c_str(), bench->description.c_str());
    }
  }
  std::printf("\n%zu benchmarks\n", benches.size());
  return 0;
}

void register_hang_benchmark() {
  Registry::global().add(BenchmarkInfo{
      .name = "test_hang",
      .category = "test",
      .description = "deliberately hangs (exercises --timeout)",
      .run =
          [](const Options&) -> RunResult {
            for (;;) {
              std::this_thread::sleep_for(std::chrono::seconds(1));
            }
          },
  });
}

// Prints the startup header + per-benchmark progress lines from service
// events, reproducing the pre-service output byte for byte.
svc::ProgressFn console_progress(const svc::RunRequest& request, bool quick) {
  return [request, quick](const svc::ServiceEvent& event) {
    switch (event.kind) {
      case svc::ServiceEvent::Kind::kSuiteStart: {
        // Startup noise check: recorded into the provenance block
        // regardless, and echoed on stderr so an interactive user sees why
        // numbers might wobble before waiting out a full suite run.
        for (const std::string& warning : event.warnings) {
          std::fprintf(stderr, "run_suite: warning: %s\n", warning.c_str());
        }
        if (request.counters && !obs::PerfCounters::supported()) {
          std::fprintf(stderr,
                       "run_suite: warning: hardware counters unavailable "
                       "(perf_event_open restricted?); ipc/cache_miss_pct will be absent\n");
        }
        std::printf("running the lmbench++ suite on %s%s", event.system.c_str(),
                    quick ? " (quick mode)" : "");
        if (request.jobs > 1) {
          std::printf(" [jobs=%d]", request.jobs);
        }
        if (request.timeout_sec > 0) {
          std::printf(" [timeout=%.0fs]", request.timeout_sec);
        }
        if (event.cal_cache) {
          std::printf(" [cal-cache=%s, %s]", event.cal_path.c_str(),
                      event.cal_warm ? "warm" : "cold");
        }
        std::printf("\n\n");
        std::fflush(stdout);
        break;
      }
      case svc::ServiceEvent::Kind::kBenchFinish:
        // With jobs>1 starts interleave; printing one line per *finish*
        // keeps the output readable in both modes.
        std::printf("%-16s %-52s %s\n", event.name.c_str(), event.description.c_str(),
                    event.result->summary().c_str());
        std::fflush(stdout);
        break;
      case svc::ServiceEvent::Kind::kBenchStart:
      case svc::ServiceEvent::Kind::kSuiteEnd:
        break;
    }
  };
}

}  // namespace

int main(int argc, char** argv) try {
  Options opts = Options::parse(argc, argv);
  if (opts.get_bool("list")) {
    return list_benchmarks(opts.get_string("category", ""));
  }
  if (opts.get_bool("with-hang")) {
    register_hang_benchmark();
  }

  svc::RunRequest request = svc::RunRequest::from_options(opts);

  // Static for the lifetime rule in bench_service.h: an abandoned
  // (timed-out) benchmark thread may still touch the service's calibration
  // cache or trace sink after run() returns.
  static svc::BenchService service;
  svc::RunArtifacts artifacts = service.run(request, console_progress(request, opts.quick()));

  if (!artifacts.cal_save_error.empty()) {
    std::fprintf(stderr, "run_suite: could not save calibration cache: %s\n",
                 artifacts.cal_save_error.c_str());
  }

  if (!request.out_path.empty()) {
    std::printf("\nsaved %zu metrics to %s\n", artifacts.metric_count,
                request.out_path.c_str());
  }
  if (!request.json_path.empty()) {
    std::printf("wrote JSON to %s\n", request.json_path.c_str());
  }
  if (!request.csv_path.empty()) {
    std::printf("wrote CSV to %s\n", request.csv_path.c_str());
  }
  if (request.collect_trace) {
    if (!request.trace_path.empty()) {
      std::printf("wrote %zu trace events to %s (open in about:tracing / perfetto)\n",
                  artifacts.trace_events.size(), request.trace_path.c_str());
    }
    if (!request.trace_chrome_path.empty()) {
      std::printf("wrote Chrome trace_event file to %s\n", request.trace_chrome_path.c_str());
    }
  }

  // Scaling table + plot for any result that produced <op>_p<N>_mbs metrics
  // (the bw_mem_par sweep).
  for (const RunResult& r : artifacts.batch.results) {
    if (!r.ok()) {
      continue;
    }
    std::vector<report::ScalingSeries> scaling = report::extract_scaling(r);
    if (!scaling.empty()) {
      std::printf("\n%s", report::render_scaling_report(scaling).c_str());
    }
  }

  // Tail-latency table for the concurrent load scenarios (lat_tcp_n,
  // lat_rpc_n, bw_tcp_n): one row per (benchmark, scenario).
  {
    std::vector<report::LoadScenarioRow> load_rows;
    for (const RunResult& r : artifacts.batch.results) {
      if (!r.ok()) {
        continue;
      }
      std::vector<report::LoadScenarioRow> rows = report::extract_load_scenarios(r);
      load_rows.insert(load_rows.end(), rows.begin(), rows.end());
    }
    if (!load_rows.empty()) {
      std::printf("\n%s", report::render_load_table(load_rows).c_str());
    }
  }

  // Shard-scaling table for load benchmarks run with --shards=...: shard
  // counts vs throughput, p99, and wakeups per request.
  {
    std::vector<report::ShardScalingRow> shard_rows;
    for (const RunResult& r : artifacts.batch.results) {
      if (!r.ok()) {
        continue;
      }
      std::vector<report::ShardScalingRow> rows = report::extract_shard_scaling(r);
      shard_rows.insert(shard_rows.end(), rows.begin(), rows.end());
    }
    if (!shard_rows.empty()) {
      std::printf("\n%s", report::render_shard_table(shard_rows).c_str());
    }
  }

  // Time × latency heatmaps for load benchmarks run with --interval-ms=...
  // (the document also rides into the results JSON via metadata).
  for (const RunResult& r : artifacts.batch.results) {
    if (!r.ok()) {
      continue;
    }
    for (const auto& [key, value] : r.metadata) {
      if (key.rfind("heatmap_", 0) != 0) {
        continue;
      }
      try {
        std::printf("\n%s", report::render_heatmap(report::heatmap_from_json(value)).c_str());
      } catch (const std::exception& e) {
        std::fprintf(stderr, "run_suite: bad heatmap document in %s: %s\n", key.c_str(),
                     e.what());
      }
    }
  }

  std::printf("\n%zu benchmarks attempted, %zu metrics, %d failures in %.1f s\n",
              artifacts.batch.results.size(), artifacts.metric_count, artifacts.failed,
              artifacts.total_wall_ms / 1e3);
  if (artifacts.cal_cache_used) {
    std::printf("calibration cache: %d hits, %d misses\n", artifacts.cal_hits,
                artifacts.cal_misses);
  }

  if (!request.baseline_path.empty()) {
    if (artifacts.baseline_established) {
      std::printf("\nno baseline in %s yet; established one: %s\n",
                  request.baseline_path.c_str(), artifacts.baseline_saved_path.c_str());
    } else if (artifacts.compare.has_value()) {
      std::printf("\n%s", report::render_compare_table(*artifacts.compare).c_str());
      std::printf("%s", report::render_environment_diff(*artifacts.compare).c_str());
      if (!request.compare_json_path.empty()) {
        std::printf("wrote comparison to %s\n", request.compare_json_path.c_str());
      }
      if (request.save_baseline && !artifacts.baseline_saved_path.empty()) {
        std::printf("saved new baseline: %s\n", artifacts.baseline_saved_path.c_str());
      }
      if (artifacts.gate_failed) {
        std::printf("regression gate FAILED (%d metrics beyond the noise threshold)\n",
                    artifacts.compare->regressed);
      }
    }
  }
  if (artifacts.trend_seq >= 0) {
    std::printf("appended run %ld to trend store %s\n", artifacts.trend_seq,
                request.trend_dir.c_str());
  }

  return artifacts.exit_code();
} catch (const std::exception& e) {
  std::fprintf(stderr, "run_suite: %s\n", e.what());
  return 2;
}
