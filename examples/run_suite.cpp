// run_suite: the `lmbench-run` analog — run every registered benchmark
// through the SuiteRunner and save typed results to the user-extensible
// database (paper §3.5) and/or machine-readable JSON/CSV.
//
//   ./build/examples/run_suite [--quick] [--category=latency] [--jobs=N]
//                              [--timeout=SECONDS] [--out=results.db]
//                              [--json=results.json] [--csv=results.csv]
//                              [--cal-cache=PATH] [--no-cal-cache]
//                              [--list] [--with-hang]
//
//   --list       print every registered benchmark (grouped by category)
//                without running anything
//   --jobs=N     run up to N benchmarks concurrently; bandwidth/disk
//                benchmarks stay serialized within their category
//   --timeout=S  per-benchmark wall-clock budget; a hung benchmark is
//                reported as `timeout` and the suite keeps going
//   --cal-cache=PATH  where calibration state persists between invocations
//                (default .lmbenchpp-cal.db); a warm cache skips every
//                benchmark's calibration ramp and schedules
//                longest-expected-first under --jobs=N
//   --no-cal-cache    disable calibration caching entirely (the paper's
//                re-calibrate-every-run behavior)
//   --with-hang  register a deliberately-hanging `test_hang` benchmark
//                (for exercising --timeout end to end)
#include <chrono>
#include <cstdio>
#include <map>
#include <thread>

#include "src/core/cal_cache.h"
#include "src/core/clock.h"
#include "src/core/env.h"
#include "src/core/options.h"
#include "src/core/registry.h"
#include "src/core/suite_runner.h"
#include "src/db/cal_store.h"
#include "src/db/result_set.h"
#include "src/report/serialize.h"
#include "src/sys/fdio.h"

namespace {

using namespace lmb;

int list_benchmarks(const std::string& category) {
  std::vector<const BenchmarkInfo*> benches = Registry::global().list(category);
  // list() sorts by name; group by category for display.
  std::map<std::string, std::vector<const BenchmarkInfo*>> groups;
  for (const BenchmarkInfo* bench : benches) {
    groups[bench->category].push_back(bench);
  }
  bool first = true;
  for (const auto& [group, members] : groups) {
    std::printf("%s[%s]\n", first ? "" : "\n", group.c_str());
    first = false;
    for (const BenchmarkInfo* bench : members) {
      std::printf("  %-16s %s\n", bench->name.c_str(), bench->description.c_str());
    }
  }
  std::printf("\n%zu benchmarks\n", benches.size());
  return 0;
}

void register_hang_benchmark() {
  Registry::global().add(BenchmarkInfo{
      .name = "test_hang",
      .category = "test",
      .description = "deliberately hangs (exercises --timeout)",
      .run =
          [](const Options&) -> RunResult {
            for (;;) {
              std::this_thread::sleep_for(std::chrono::seconds(1));
            }
          },
  });
}

}  // namespace

int main(int argc, char** argv) try {
  Options opts = Options::parse(argc, argv);
  std::string category = opts.get_string("category", "");
  if (opts.get_bool("list")) {
    return list_benchmarks(category);
  }
  if (opts.get_bool("with-hang")) {
    register_hang_benchmark();
  }

  SuiteConfig config;
  config.category = category;
  config.jobs = static_cast<int>(opts.get_int("jobs", 1));
  config.timeout_sec = opts.get_double("timeout", 0.0);
  config.options = opts;

  SystemInfo info = query_system_info();

  // Static so an abandoned (timed-out) benchmark thread can still touch the
  // cache safely after run() returns — same lifetime rule as the registry.
  static CalibrationCache cal_cache;
  const bool use_cal_cache = !opts.get_bool("no-cal-cache");
  std::string cal_path = opts.get_string("cal-cache", ".lmbenchpp-cal.db");
  std::string host_sig = host_signature(info);
  size_t cal_loaded = 0;
  if (use_cal_cache) {
    cal_loaded = db::load_calibration_cache(cal_path, host_sig, cal_cache);
    config.cal_cache = &cal_cache;
  }

  std::printf("running the lmbench++ suite on %s%s", info.label().c_str(),
              opts.quick() ? " (quick mode)" : "");
  if (config.jobs > 1) {
    std::printf(" [jobs=%d]", config.jobs);
  }
  if (config.timeout_sec > 0) {
    std::printf(" [timeout=%.0fs]", config.timeout_sec);
  }
  if (use_cal_cache) {
    std::printf(" [cal-cache=%s, %s]", cal_path.c_str(),
                cal_loaded > 0 ? "warm" : "cold");
  }
  std::printf("\n\n");

  SuiteRunner runner;
  runner.set_progress([&](const SuiteEvent& event) {
    if (event.kind != SuiteEvent::Kind::kFinish) {
      return;
    }
    // With jobs>1 starts interleave; printing one line per *finish* keeps
    // the output readable in both modes.
    std::printf("%-16s %-52s %s\n", event.name.c_str(), event.description.c_str(),
                event.result->summary().c_str());
    std::fflush(stdout);
  });

  StopWatch suite_watch;
  std::vector<RunResult> results = runner.run(config);
  double total_wall_ms = static_cast<double>(suite_watch.elapsed()) / 1e6;
  if (results.empty() && !category.empty()) {
    std::fprintf(stderr, "run_suite: no benchmarks in category '%s' (try --list)\n",
                 category.c_str());
    return 2;
  }

  if (use_cal_cache) {
    try {
      db::save_calibration_cache(cal_path, host_sig, cal_cache);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "run_suite: could not save calibration cache: %s\n", e.what());
    }
  }

  report::SuiteTiming timing;
  timing.total_wall_ms = total_wall_ms;
  timing.jobs = config.jobs;
  timing.cal_cache = use_cal_cache;
  timing.cal_hits = cal_cache.hits();
  timing.cal_misses = cal_cache.misses();

  // Tally + store real measured values under <bench>_<metric>_<unit> keys.
  db::ResultSet set(info.label());
  int failed = 0;
  size_t metric_count = 0;
  for (const RunResult& r : results) {
    if (!r.ok()) {
      ++failed;
      continue;
    }
    for (const Metric& m : r.metrics) {
      set.set(r.name + "_" + m.key, m.value);
      ++metric_count;
    }
  }

  std::string out_path = opts.get_string("out", "");
  if (!out_path.empty()) {
    db::ResultDatabase database;
    database.add(set);
    database.save(out_path);
    std::printf("\nsaved %zu metrics to %s\n", metric_count, out_path.c_str());
  }
  std::string json_path = opts.get_string("json", "");
  if (!json_path.empty()) {
    sys::write_file(json_path, report::to_json({info.label(), results, timing}));
    std::printf("wrote JSON to %s\n", json_path.c_str());
  }
  std::string csv_path = opts.get_string("csv", "");
  if (!csv_path.empty()) {
    sys::write_file(csv_path, report::to_csv(results, &timing));
    std::printf("wrote CSV to %s\n", csv_path.c_str());
  }

  std::printf("\n%zu benchmarks attempted, %zu metrics, %d failures in %.1f s\n",
              results.size(), metric_count, failed, total_wall_ms / 1e3);
  if (use_cal_cache) {
    std::printf("calibration cache: %d hits, %d misses\n", cal_cache.hits(),
                cal_cache.misses());
  }
  return failed == 0 ? 0 : 1;
} catch (const std::exception& e) {
  std::fprintf(stderr, "run_suite: %s\n", e.what());
  return 2;
}
