// run_suite: the `lmbench-run` analog — run every registered benchmark and
// save a result set to the user-extensible database (paper §3.5).
//
//   ./build/examples/run_suite [--quick] [--out=results.db] [--category=latency]
#include <cstdio>

#include "src/core/env.h"
#include "src/core/options.h"
#include "src/core/registry.h"
#include "src/db/result_set.h"

int main(int argc, char** argv) {
  using namespace lmb;
  Options opts = Options::parse(argc, argv);
  std::string category = opts.get_string("category", "");
  std::string out_path = opts.get_string("out", "");

  SystemInfo info = query_system_info();
  std::printf("running the lmbench++ suite on %s%s\n\n", info.label().c_str(),
              opts.quick() ? " (quick mode)" : "");

  db::ResultSet results(info.label());
  int failed = 0;
  for (const BenchmarkInfo* bench : Registry::global().list(category)) {
    std::printf("%-16s %-52s ", bench->name.c_str(), bench->description.c_str());
    std::fflush(stdout);
    try {
      std::string line = bench->run(opts);
      std::printf("%s\n", line.c_str());
      results.set(bench->name + "_ran", 1.0);
    } catch (const std::exception& e) {
      std::printf("FAILED: %s\n", e.what());
      ++failed;
    }
  }

  if (!out_path.empty()) {
    db::ResultDatabase database;
    database.add(results);
    database.save(out_path);
    std::printf("\nsaved result set to %s\n", out_path.c_str());
  }
  std::printf("\n%zu benchmarks, %d failures\n", Registry::global().list(category).size(), failed);
  return failed == 0 ? 0 : 1;
}
