// run_suite: the `lmbench-run` analog — run every registered benchmark
// through the SuiteRunner and save typed results to the user-extensible
// database (paper §3.5) and/or machine-readable JSON/CSV.
//
//   ./build/examples/run_suite [--quick] [--category=latency] [--jobs=N]
//                              [--timeout=SECONDS] [--out=results.db]
//                              [--json=results.json] [--csv=results.csv]
//                              [--list] [--with-hang]
//
//   --list       print every registered benchmark (grouped by category)
//                without running anything
//   --jobs=N     run up to N benchmarks concurrently; bandwidth/disk
//                benchmarks stay serialized within their category
//   --timeout=S  per-benchmark wall-clock budget; a hung benchmark is
//                reported as `timeout` and the suite keeps going
//   --with-hang  register a deliberately-hanging `test_hang` benchmark
//                (for exercising --timeout end to end)
#include <chrono>
#include <cstdio>
#include <map>
#include <thread>

#include "src/core/env.h"
#include "src/core/options.h"
#include "src/core/registry.h"
#include "src/core/suite_runner.h"
#include "src/db/result_set.h"
#include "src/report/serialize.h"
#include "src/sys/fdio.h"

namespace {

using namespace lmb;

int list_benchmarks(const std::string& category) {
  std::vector<const BenchmarkInfo*> benches = Registry::global().list(category);
  // list() sorts by name; group by category for display.
  std::map<std::string, std::vector<const BenchmarkInfo*>> groups;
  for (const BenchmarkInfo* bench : benches) {
    groups[bench->category].push_back(bench);
  }
  bool first = true;
  for (const auto& [group, members] : groups) {
    std::printf("%s[%s]\n", first ? "" : "\n", group.c_str());
    first = false;
    for (const BenchmarkInfo* bench : members) {
      std::printf("  %-16s %s\n", bench->name.c_str(), bench->description.c_str());
    }
  }
  std::printf("\n%zu benchmarks\n", benches.size());
  return 0;
}

void register_hang_benchmark() {
  Registry::global().add(BenchmarkInfo{
      .name = "test_hang",
      .category = "test",
      .description = "deliberately hangs (exercises --timeout)",
      .run =
          [](const Options&) -> RunResult {
            for (;;) {
              std::this_thread::sleep_for(std::chrono::seconds(1));
            }
          },
  });
}

}  // namespace

int main(int argc, char** argv) try {
  Options opts = Options::parse(argc, argv);
  std::string category = opts.get_string("category", "");
  if (opts.get_bool("list")) {
    return list_benchmarks(category);
  }
  if (opts.get_bool("with-hang")) {
    register_hang_benchmark();
  }

  SuiteConfig config;
  config.category = category;
  config.jobs = static_cast<int>(opts.get_int("jobs", 1));
  config.timeout_sec = opts.get_double("timeout", 0.0);
  config.options = opts;

  SystemInfo info = query_system_info();
  std::printf("running the lmbench++ suite on %s%s", info.label().c_str(),
              opts.quick() ? " (quick mode)" : "");
  if (config.jobs > 1) {
    std::printf(" [jobs=%d]", config.jobs);
  }
  if (config.timeout_sec > 0) {
    std::printf(" [timeout=%.0fs]", config.timeout_sec);
  }
  std::printf("\n\n");

  SuiteRunner runner;
  runner.set_progress([&](const SuiteEvent& event) {
    if (event.kind != SuiteEvent::Kind::kFinish) {
      return;
    }
    // With jobs>1 starts interleave; printing one line per *finish* keeps
    // the output readable in both modes.
    std::printf("%-16s %-52s %s\n", event.name.c_str(), event.description.c_str(),
                event.result->summary().c_str());
    std::fflush(stdout);
  });

  std::vector<RunResult> results = runner.run(config);
  if (results.empty() && !category.empty()) {
    std::fprintf(stderr, "run_suite: no benchmarks in category '%s' (try --list)\n",
                 category.c_str());
    return 2;
  }

  // Tally + store real measured values under <bench>_<metric>_<unit> keys.
  db::ResultSet set(info.label());
  int failed = 0;
  size_t metric_count = 0;
  for (const RunResult& r : results) {
    if (!r.ok()) {
      ++failed;
      continue;
    }
    for (const Metric& m : r.metrics) {
      set.set(r.name + "_" + m.key, m.value);
      ++metric_count;
    }
  }

  std::string out_path = opts.get_string("out", "");
  if (!out_path.empty()) {
    db::ResultDatabase database;
    database.add(set);
    database.save(out_path);
    std::printf("\nsaved %zu metrics to %s\n", metric_count, out_path.c_str());
  }
  std::string json_path = opts.get_string("json", "");
  if (!json_path.empty()) {
    sys::write_file(json_path, report::to_json({info.label(), results}));
    std::printf("wrote JSON to %s\n", json_path.c_str());
  }
  std::string csv_path = opts.get_string("csv", "");
  if (!csv_path.empty()) {
    sys::write_file(csv_path, report::to_csv(results));
    std::printf("wrote CSV to %s\n", csv_path.c_str());
  }

  std::printf("\n%zu benchmarks attempted, %zu metrics, %d failures\n", results.size(),
              metric_count, failed);
  return failed == 0 ? 0 : 1;
} catch (const std::exception& e) {
  std::fprintf(stderr, "run_suite: %s\n", e.what());
  return 2;
}
