// run_suite: the `lmbench-run` analog — run every registered benchmark
// through the SuiteRunner and save typed results to the user-extensible
// database (paper §3.5) and/or machine-readable JSON/CSV.
//
//   ./build/examples/run_suite [--quick] [--category=latency] [--jobs=N]
//                              [--only=bench1,bench2] [--timeout=SECONDS]
//                              [--out=results.db]
//                              [--json=results.json] [--csv=results.csv]
//                              [--trace=trace.json] [--trace-chrome=PATH]
//                              [--counters]
//                              [--cal-cache=PATH] [--no-cal-cache]
//                              [--baseline=PATH] [--gate[=PCT]]
//                              [--save-baseline] [--compare-json=PATH]
//                              [--bw-threads=1,2,4] [--kernel=VARIANT]
//                              [--list] [--with-hang]
//
//   --list       print every registered benchmark (grouped by category)
//                without running anything
//   --only=A,B   run exactly these benchmarks (names as shown by --list);
//                overrides --category
//   --bw-threads=1,2,4  worker counts for the bw_mem_par scaling sweep;
//                its <op>_p<N>_mbs metrics flow into the JSON/CSV/baseline
//                pipeline and a scaling table + plot print after the run
//   --kernel=auto|scalar|sse2|avx2|nt  memory-kernel implementation for
//                the bandwidth benchmarks (auto = best this CPU supports)
//   --jobs=N     run up to N benchmarks concurrently; bandwidth/disk
//                benchmarks stay serialized within their category
//   --timeout=S  per-benchmark wall-clock budget; a hung benchmark is
//                reported as `timeout` and the suite keeps going
//   --cal-cache=PATH  where calibration state persists between invocations
//                (default .lmbenchpp-cal.db); a warm cache skips every
//                benchmark's calibration ramp and schedules
//                longest-expected-first under --jobs=N
//   --no-cal-cache    disable calibration caching entirely (the paper's
//                re-calibrate-every-run behavior)
//   --trace=PATH write a lmbenchpp.trace.v1 timing-decision trace (also a
//                valid Chrome trace — open it in about:tracing or
//                ui.perfetto.dev): calibration probes, warm-up, every timed
//                repetition, early-stop triggers, cal-cache hits/misses,
//                scheduler placement under --jobs
//   --trace-chrome=PATH  same events as the classic bare-array Chrome
//                trace_event format
//   --counters   sample hardware perf counters (instructions, cycles,
//                cache refs/misses, context switches) around every timed
//                interval; measurements gain ipc and cache_miss_pct
//                metrics.  Silently a no-op where perf_event_open is
//                unavailable (non-Linux, perf_event_paranoid, seccomp)
//   --with-hang  register a deliberately-hanging `test_hang` benchmark
//                (for exercising --timeout end to end)
//   --baseline=PATH   after the run, compare this run's results against a
//                baseline: PATH is either a results JSON file or a baseline
//                -store directory (src/db/baseline_store.h).  An empty
//                store is populated with this run ("baseline established").
//   --gate[=PCT]      with --baseline: exit 3 when any metric regressed
//                beyond the noise-aware threshold; PCT overrides the 5%
//                significance floor
//   --assume-noise=PCT  assumed relative noise for metrics without a stored
//                repetition sample (see lmbench_compare)
//   --save-baseline   with a directory --baseline: append this run to the
//                store after comparing
//   --compare-json=PATH  write the comparison (lmbenchpp.compare.v1), e.g.
//                BENCH_compare.json for CI artifacts
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <map>
#include <optional>
#include <thread>

#include "src/core/cal_cache.h"
#include "src/core/clock.h"
#include "src/core/env.h"
#include "src/core/options.h"
#include "src/core/registry.h"
#include "src/core/suite_runner.h"
#include "src/db/baseline_store.h"
#include "src/db/cal_store.h"
#include "src/db/result_set.h"
#include "src/obs/perf_counters.h"
#include "src/obs/run_env.h"
#include "src/obs/trace.h"
#include "src/report/compare.h"
#include "src/report/scaling.h"
#include "src/report/serialize.h"
#include "src/report/trace_io.h"
#include "src/sys/fdio.h"

namespace {

using namespace lmb;

int list_benchmarks(const std::string& category) {
  std::vector<const BenchmarkInfo*> benches = Registry::global().list(category);
  // list() sorts by name; group by category for display.
  std::map<std::string, std::vector<const BenchmarkInfo*>> groups;
  for (const BenchmarkInfo* bench : benches) {
    groups[bench->category].push_back(bench);
  }
  bool first = true;
  for (const auto& [group, members] : groups) {
    std::printf("%s[%s]\n", first ? "" : "\n", group.c_str());
    first = false;
    for (const BenchmarkInfo* bench : members) {
      std::printf("  %-16s %s\n", bench->name.c_str(), bench->description.c_str());
    }
  }
  std::printf("\n%zu benchmarks\n", benches.size());
  return 0;
}

// Runs the post-suite baseline comparison (--baseline/--gate).  Returns 3
// when the gate is armed and a regression survived the noise threshold,
// 0 otherwise.
// Startup noise check: recorded into the provenance block regardless, and
// echoed on stderr so an interactive user sees why numbers might wobble
// before waiting out a full suite run.
void warn_if_noisy(const obs::RunEnvironment& env) {
  for (const std::string& warning : env.warnings) {
    std::fprintf(stderr, "run_suite: warning: %s\n", warning.c_str());
  }
}

int compare_against_baseline(const Options& opts, const report::ResultBatch& current) {
  std::string baseline_path = opts.get_string("baseline", "");
  // An existing regular file is an explicit results JSON; anything else
  // (existing directory, or a path not there yet) is a baseline store —
  // the first gated CI run must be able to create it.
  bool is_dir = !std::filesystem::is_regular_file(baseline_path);

  std::optional<report::ResultBatch> base;
  if (is_dir) {
    base = db::BaselineStore(baseline_path).load_latest();
  } else {
    base = db::BaselineStore::load(baseline_path);  // throws if bad
  }
  if (!base.has_value()) {
    // Empty store: this run becomes the baseline; nothing to gate yet.
    std::string saved = db::BaselineStore(baseline_path).save(current);
    std::printf("\nno baseline in %s yet; established one: %s\n", baseline_path.c_str(),
                saved.c_str());
    return 0;
  }

  // --gate is a flag ("true") or carries the significance floor in percent.
  bool gate = opts.has("gate");
  report::CompareThresholds thresholds;
  std::string gate_value = opts.get_string("gate", "");
  if (gate && gate_value != "true") {
    thresholds.floor_rel = opts.get_double("gate", 5.0) / 100.0;
  }
  thresholds.fallback_noise_rel = opts.get_double("assume-noise", 0.0) / 100.0;

  report::CompareReport cmp = report::compare_batches(*base, current, thresholds);
  std::printf("\n%s", report::render_compare_table(cmp).c_str());
  std::printf("%s", report::render_environment_diff(cmp).c_str());

  std::string compare_json = opts.get_string("compare-json", "");
  if (!compare_json.empty()) {
    sys::write_file(compare_json, report::compare_to_json(cmp));
    std::printf("wrote comparison to %s\n", compare_json.c_str());
  }
  if (is_dir && opts.get_bool("save-baseline")) {
    std::printf("saved new baseline: %s\n",
                db::BaselineStore(baseline_path).save(current).c_str());
  }
  if (gate && cmp.has_regressions()) {
    std::printf("regression gate FAILED (%d metrics beyond the noise threshold)\n",
                cmp.regressed);
    return 3;
  }
  return 0;
}

void register_hang_benchmark() {
  Registry::global().add(BenchmarkInfo{
      .name = "test_hang",
      .category = "test",
      .description = "deliberately hangs (exercises --timeout)",
      .run =
          [](const Options&) -> RunResult {
            for (;;) {
              std::this_thread::sleep_for(std::chrono::seconds(1));
            }
          },
  });
}

}  // namespace

int main(int argc, char** argv) try {
  Options opts = Options::parse(argc, argv);
  std::string category = opts.get_string("category", "");
  if (opts.get_bool("list")) {
    return list_benchmarks(category);
  }
  if (opts.get_bool("with-hang")) {
    register_hang_benchmark();
  }

  SuiteConfig config;
  config.category = category;
  std::string only = opts.get_string("only", "");
  for (size_t pos = 0; !only.empty() && pos <= only.size();) {
    size_t comma = only.find(',', pos);
    std::string name = only.substr(pos, comma == std::string::npos ? std::string::npos
                                                                   : comma - pos);
    if (!name.empty()) {
      config.names.push_back(name);
    }
    if (comma == std::string::npos) {
      break;
    }
    pos = comma + 1;
  }
  config.jobs = static_cast<int>(opts.get_int("jobs", 1));
  config.timeout_sec = opts.get_double("timeout", 0.0);
  config.options = opts;

  SystemInfo info = query_system_info();

  // Provenance snapshot + startup noise warnings; the snapshot rides along
  // in every serialized batch so lmbench_compare can diff environments.
  obs::RunEnvironment run_env = obs::capture_run_environment();
  warn_if_noisy(run_env);

  // Static for the same reason as the calibration cache below: an abandoned
  // (timed-out) benchmark thread may still emit events after run() returns.
  static obs::TraceSink trace_sink;
  std::string trace_path = opts.get_string("trace", "");
  std::string trace_chrome_path = opts.get_string("trace-chrome", "");
  const bool tracing = !trace_path.empty() || !trace_chrome_path.empty();
  if (tracing) {
    config.trace = &trace_sink;
  }
  config.counters = opts.get_bool("counters");
  if (config.counters && !obs::PerfCounters::supported()) {
    std::fprintf(stderr,
                 "run_suite: warning: hardware counters unavailable "
                 "(perf_event_open restricted?); ipc/cache_miss_pct will be absent\n");
  }

  // Static so an abandoned (timed-out) benchmark thread can still touch the
  // cache safely after run() returns — same lifetime rule as the registry.
  static CalibrationCache cal_cache;
  const bool use_cal_cache = !opts.get_bool("no-cal-cache");
  std::string cal_path = opts.get_string("cal-cache", ".lmbenchpp-cal.db");
  std::string host_sig = host_signature(info);
  size_t cal_loaded = 0;
  if (use_cal_cache) {
    cal_loaded = db::load_calibration_cache(cal_path, host_sig, cal_cache);
    config.cal_cache = &cal_cache;
  }

  std::printf("running the lmbench++ suite on %s%s", info.label().c_str(),
              opts.quick() ? " (quick mode)" : "");
  if (config.jobs > 1) {
    std::printf(" [jobs=%d]", config.jobs);
  }
  if (config.timeout_sec > 0) {
    std::printf(" [timeout=%.0fs]", config.timeout_sec);
  }
  if (use_cal_cache) {
    std::printf(" [cal-cache=%s, %s]", cal_path.c_str(),
                cal_loaded > 0 ? "warm" : "cold");
  }
  std::printf("\n\n");

  SuiteRunner runner;
  runner.set_progress([&](const SuiteEvent& event) {
    if (event.kind != SuiteEvent::Kind::kFinish) {
      return;
    }
    // With jobs>1 starts interleave; printing one line per *finish* keeps
    // the output readable in both modes.
    std::printf("%-16s %-52s %s\n", event.name.c_str(), event.description.c_str(),
                event.result->summary().c_str());
    std::fflush(stdout);
  });

  StopWatch suite_watch;
  std::vector<RunResult> results = runner.run(config);
  double total_wall_ms = static_cast<double>(suite_watch.elapsed()) / 1e6;
  if (results.empty() && !category.empty()) {
    std::fprintf(stderr, "run_suite: no benchmarks in category '%s' (try --list)\n",
                 category.c_str());
    return 2;
  }

  if (use_cal_cache) {
    try {
      db::save_calibration_cache(cal_path, host_sig, cal_cache);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "run_suite: could not save calibration cache: %s\n", e.what());
    }
  }

  report::SuiteTiming timing;
  timing.total_wall_ms = total_wall_ms;
  timing.jobs = config.jobs;
  timing.cal_cache = use_cal_cache;
  timing.cal_hits = cal_cache.hits();
  timing.cal_misses = cal_cache.misses();

  // Tally + store real measured values under <bench>_<metric>_<unit> keys.
  db::ResultSet set(info.label());
  int failed = 0;
  size_t metric_count = 0;
  for (const RunResult& r : results) {
    if (!r.ok()) {
      ++failed;
      continue;
    }
    for (const Metric& m : r.metrics) {
      set.set(r.name + "_" + m.key, m.value);
      ++metric_count;
    }
  }

  std::string out_path = opts.get_string("out", "");
  if (!out_path.empty()) {
    db::ResultDatabase database;
    database.add(set);
    database.save(out_path);
    std::printf("\nsaved %zu metrics to %s\n", metric_count, out_path.c_str());
  }
  std::string json_path = opts.get_string("json", "");
  if (!json_path.empty()) {
    sys::write_file(json_path, report::to_json({info.label(), results, timing, run_env}));
    std::printf("wrote JSON to %s\n", json_path.c_str());
  }
  std::string csv_path = opts.get_string("csv", "");
  if (!csv_path.empty()) {
    sys::write_file(csv_path, report::to_csv(results, &timing));
    std::printf("wrote CSV to %s\n", csv_path.c_str());
  }
  if (tracing) {
    std::vector<obs::TraceEvent> events = trace_sink.events();
    if (!trace_path.empty()) {
      sys::write_file(trace_path, report::trace_to_json(events, info.label()));
      std::printf("wrote %zu trace events to %s (open in about:tracing / perfetto)\n",
                  events.size(), trace_path.c_str());
    }
    if (!trace_chrome_path.empty()) {
      sys::write_file(trace_chrome_path, report::trace_to_chrome(events));
      std::printf("wrote Chrome trace_event file to %s\n", trace_chrome_path.c_str());
    }
  }

  // Scaling table + plot for any result that produced <op>_p<N>_mbs metrics
  // (the bw_mem_par sweep).
  for (const RunResult& r : results) {
    if (!r.ok()) {
      continue;
    }
    std::vector<report::ScalingSeries> scaling = report::extract_scaling(r);
    if (!scaling.empty()) {
      std::printf("\n%s", report::render_scaling_report(scaling).c_str());
    }
  }

  std::printf("\n%zu benchmarks attempted, %zu metrics, %d failures in %.1f s\n",
              results.size(), metric_count, failed, total_wall_ms / 1e3);
  if (use_cal_cache) {
    std::printf("calibration cache: %d hits, %d misses\n", cal_cache.hits(),
                cal_cache.misses());
  }

  int gate_status = 0;
  if (!opts.get_string("baseline", "").empty()) {
    gate_status = compare_against_baseline(opts, {info.label(), results, timing, run_env});
  }
  if (failed != 0) {
    return 1;
  }
  return gate_status;
} catch (const std::exception& e) {
  std::fprintf(stderr, "run_suite: %s\n", e.what());
  return 2;
}
