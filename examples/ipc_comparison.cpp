// ipc_comparison: choose an IPC mechanism with data, not folklore.
//
// The paper's motivating example (§1, §6.7): "The default Oracle distributed
// lock manager uses TCP sockets, and the locks per second available from
// this service are accurately modeled by the TCP latency test."  This
// example measures every local transport plus the RPC layer and converts
// round-trip latency into a lock-manager-style requests/second ceiling.
//
//   ./build/examples/ipc_comparison [--quick]
#include <cstdio>

#include "src/core/options.h"
#include "src/lat/lat_ipc.h"
#include "src/netsim/remote.h"
#include "src/report/table.h"
#include "src/rpc/lat_rpc.h"

int main(int argc, char** argv) {
  using namespace lmb;
  Options opts = Options::parse(argc, argv);
  lat::IpcLatConfig cfg = opts.quick() ? lat::IpcLatConfig::quick() : lat::IpcLatConfig{};
  rpc::RpcLatConfig rpc_cfg = opts.quick() ? rpc::RpcLatConfig::quick() : rpc::RpcLatConfig{};

  std::printf("measuring one-word round trips over every local transport...\n\n");

  struct Row {
    const char* name;
    double us;
  };
  Row rows[] = {
      {"pipe", lat::measure_pipe_latency(cfg).us_per_op()},
      {"AF_UNIX", lat::measure_unix_latency(cfg).us_per_op()},
      {"TCP (loopback)", lat::measure_tcp_latency(cfg).us_per_op()},
      {"UDP (loopback)", lat::measure_udp_latency(cfg).us_per_op()},
      {"RPC over TCP", rpc::measure_rpc_tcp_latency(rpc_cfg).us_per_op()},
      {"RPC over UDP", rpc::measure_rpc_udp_latency(rpc_cfg).us_per_op()},
  };

  report::Table table("Local IPC round-trip latency",
                      {{"Transport", 0}, {"us/round trip", 1}, {"lock ops/sec ceiling", 0}});
  for (const Row& row : rows) {
    table.add_row({std::string(row.name), row.us, 1e6 / row.us});
  }
  table.sort_by(1, report::SortOrder::kAscending);
  std::printf("%s\n", table.render().c_str());

  double tcp_us = rows[2].us;
  double udp_us = rows[3].us;
  netsim::HostCosts hosts = netsim::HostCosts::from_loopback(tcp_us, udp_us, 0.0);
  std::printf("and if the lock manager's peer were remote (modeled wires):\n");
  for (const auto& link : netsim::paper_networks()) {
    netsim::RemoteLatency r = netsim::model_remote_latency(link, hosts);
    std::printf("  %-9s TCP %7.0f us -> %6.0f locks/sec\n", link.name.c_str(), r.tcp_rtt_us,
                1e6 / r.tcp_rtt_us);
  }
  std::printf("\npipes win locally; the RPC layer costs real microseconds (paper: \"hundreds\");\n"
              "remote, the wire adds little on fast networks — software dominates.\n");
  return 0;
}
