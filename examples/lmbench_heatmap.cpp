// lmbench_heatmap: render saved time × latency heatmap documents.
//
//   ./build/examples/lmbench_heatmap FILE...
//
// Each FILE is either a bare lmbenchpp.heatmap.v1 document (what
// `tcp_load --heatmap-json=PATH` writes) or a results JSON from run_suite
// (lmbenchpp.results.v1), in which case every benchmark carrying a
// `heatmap_*` metadata entry is rendered.
//
// Exit codes: 0 ok, 1 no heatmap found / unreadable input, 2 usage.
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>

#include "src/core/options.h"
#include "src/report/heatmap.h"
#include "src/report/json.h"

namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("cannot read " + path);
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

// Renders every heatmap document found in `text`; returns how many.
int render_all(const std::string& text) {
  using lmb::report::JsonValue;
  const JsonValue doc = lmb::report::parse_json(text);
  const lmb::report::JsonObject& obj = doc.object();
  const JsonValue* schema = lmb::report::find(obj, "schema");
  if (schema != nullptr && schema->str() == "lmbenchpp.heatmap.v1") {
    std::printf("%s\n", lmb::report::render_heatmap(lmb::report::heatmap_from_json(text)).c_str());
    return 1;
  }
  // Results document: walk results[].metadata for embedded heatmaps.
  int rendered = 0;
  if (const JsonValue* benches = lmb::report::find(obj, "results")) {
    for (const JsonValue& b : benches->array()) {
      const JsonValue* meta = lmb::report::find(b.object(), "metadata");
      if (meta == nullptr || meta->is_null()) {
        continue;
      }
      for (const auto& [key, value] : meta->object()) {
        if (key.rfind("heatmap_", 0) != 0) {
          continue;
        }
        std::printf("%s\n",
                    lmb::report::render_heatmap(lmb::report::heatmap_from_json(value.str()))
                        .c_str());
        ++rendered;
      }
    }
  }
  return rendered;
}

}  // namespace

int main(int argc, char** argv) try {
  lmb::Options opts = lmb::Options::parse(argc, argv);
  if (opts.positionals().empty()) {
    std::fprintf(stderr, "usage: lmbench_heatmap FILE...\n"
                         "  FILE: lmbenchpp.heatmap.v1 or lmbenchpp.results.v1 JSON\n");
    return 2;
  }
  int rendered = 0;
  for (const std::string& path : opts.positionals()) {
    rendered += render_all(slurp(path));
  }
  if (rendered == 0) {
    std::fprintf(stderr, "lmbench_heatmap: no heatmap documents found\n");
    return 1;
  }
  return 0;
} catch (const std::exception& e) {
  std::fprintf(stderr, "lmbench_heatmap: %s\n", e.what());
  return 1;
}
