// report_results: measure this machine's standard metric set and render the
// classic lmbench-style multi-section summary; optionally merge and compare
// against saved result databases.
//
//   ./build/examples/report_results                       # measure + print
//   ./build/examples/report_results --out=mine.db         # ... and save
//   ./build/examples/report_results old.db other.db       # compare saved
//   ./build/examples/report_results --measure old.db      # measure + compare
#include <cstdio>

#include "src/core/options.h"
#include "src/db/collect.h"
#include "src/db/result_set.h"
#include "src/report/summary.h"

int main(int argc, char** argv) {
  using namespace lmb;
  Options opts = Options::parse(argc, argv);

  db::ResultDatabase database;
  for (const std::string& path : opts.positionals()) {
    db::ResultDatabase loaded = db::ResultDatabase::load(path);
    for (const db::ResultSet* set : loaded.all()) {
      database.add(*set);
    }
    std::printf("loaded %zu result set(s) from %s\n", loaded.size(), path.c_str());
  }

  bool measure_here = database.size() == 0 || opts.get_bool("measure", false);
  if (measure_here) {
    std::printf("collecting the standard metric set on this machine");
    std::fflush(stdout);
    db::CollectOptions collect_opts;
    collect_opts.quick = !opts.get_bool("full", false);
    collect_opts.on_metric = [](const db::MetricInfo&, double) {
      std::printf(".");
      std::fflush(stdout);
    };
    db::ResultSet mine = db::collect_standard_metrics(collect_opts);
    std::printf(" done (%zu metrics)\n", mine.size());
    database.add(mine);
  }

  std::printf("\n%s", report::render_summary(database).c_str());

  std::string out_path = opts.get_string("out", "");
  if (!out_path.empty()) {
    database.save(out_path);
    std::printf("\nsaved to %s\n", out_path.c_str());
  }
  return 0;
}
