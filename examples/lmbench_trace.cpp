// lmbench_trace: terminal inspector for lmbenchpp.trace.v1 files — the
// quick look before (or instead of) loading the trace into about:tracing /
// ui.perfetto.dev.
//
//   ./build/examples/lmbench_trace TRACE.json [--bench=NAME] [--events]
//
//   TRACE.json    a run_suite --trace=... document
//   --bench=NAME  restrict the per-benchmark breakdown (and --events dump)
//                 to one benchmark
//   --events      additionally dump every event as one line
//                 (ts, dur, cat, name, bench, args)
//
// Default output: a per-benchmark timeline table (wall span, calibration
// probes, timed repetitions, cache hit/miss, early stop) followed by a
// counter summary when the trace carries counter totals.
#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "src/core/options.h"
#include "src/report/table.h"
#include "src/report/trace_io.h"
#include "src/sys/fdio.h"

namespace {

using namespace lmb;

// Per-benchmark rollup of the timing-decision events.
struct BenchStats {
  Nanos start = -1;
  Nanos end = 0;
  int cal_probes = 0;
  int reps = 0;
  int cache_hits = 0;
  int cache_misses = 0;
  int early_stops = 0;
  bool has_counters = false;
  double ipc = 0.0;
  std::string cache_miss_rate;  // as recorded in the event args; "" if none
};

const std::string* arg(const obs::TraceEvent& e, const std::string& key) {
  for (const auto& [k, v] : e.args) {
    if (k == key) {
      return &v;
    }
  }
  return nullptr;
}

std::string ms_str(Nanos ns) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", static_cast<double>(ns) / 1e6);
  return buf;
}

}  // namespace

int main(int argc, char** argv) try {
  Options opts = Options::parse(argc, argv);
  if (opts.positionals().size() != 1) {
    std::fprintf(stderr, "usage: lmbench_trace TRACE.json [--bench=NAME] [--events]\n");
    return 2;
  }
  report::TraceDoc doc = report::trace_from_json(sys::read_file(opts.positionals()[0]));
  std::string only = opts.get_string("bench", "");

  std::printf("trace: %zu events, system: %s\n\n", doc.events.size(),
              doc.system.empty() ? "(unknown)" : doc.system.c_str());

  std::map<std::string, BenchStats> stats;
  for (const obs::TraceEvent& e : doc.events) {
    if (e.bench.empty() || (!only.empty() && e.bench != only)) {
      continue;
    }
    BenchStats& s = stats[e.bench];
    if (s.start < 0 || e.ts < s.start) {
      s.start = e.ts;
    }
    s.end = std::max(s.end, e.dur >= 0 ? e.ts + e.dur : e.ts);
    if (e.cat == "calibration" && (e.name == "probe" || e.name == "cache_probe")) {
      ++s.cal_probes;
    } else if (e.cat == "timing" && e.name == "rep") {
      ++s.reps;
    } else if (e.cat == "calibration" && e.name == "cal_hit") {
      ++s.cache_hits;
    } else if (e.cat == "calibration" && e.name == "cal_miss") {
      ++s.cache_misses;
    } else if (e.cat == "timing" && e.name == "early_stop") {
      ++s.early_stops;
    } else if (e.cat == "counters" && e.name == "totals") {
      s.has_counters = true;
      if (const std::string* v = arg(e, "ipc")) {
        s.ipc = std::atof(v->c_str());
      }
      if (const std::string* v = arg(e, "cache_miss_rate")) {
        s.cache_miss_rate = *v;
      }
    }
  }

  if (stats.empty()) {
    std::printf("no benchmark-scoped events%s\n",
                only.empty() ? "" : (" for '" + only + "'").c_str());
  } else {
    report::Table table("Timing decisions by benchmark", {{"bench", 0},
                                                          {"start_ms", 3},
                                                          {"span_ms", 3},
                                                          {"probes", 0},
                                                          {"reps", 0},
                                                          {"cal", 0},
                                                          {"early_stop", 0}});
    for (const auto& [bench, s] : stats) {
      std::string cal = s.cache_hits > 0    ? "hit"
                        : s.cache_misses > 0 ? "miss"
                                             : "-";
      table.add_row({report::Cell{bench}, report::Cell{ms_str(s.start)},
                     report::Cell{ms_str(s.end - s.start)},
                     report::Cell{std::to_string(s.cal_probes)},
                     report::Cell{std::to_string(s.reps)}, report::Cell{cal},
                     report::Cell{std::string(s.early_stops > 0 ? "yes" : "no")}});
    }
    std::printf("%s", table.render().c_str());

    bool any_counters = false;
    for (const auto& [bench, s] : stats) {
      if (s.has_counters) {
        any_counters = true;
        break;
      }
    }
    if (any_counters) {
      report::Table counters("Hardware counters", {{"bench", 0},
                                                   {"ipc", 2},
                                                   {"cache_miss_rate", 0}});
      for (const auto& [bench, s] : stats) {
        if (!s.has_counters) {
          continue;
        }
        counters.add_row({report::Cell{bench}, report::Cell{s.ipc},
                          report::Cell{s.cache_miss_rate.empty() ? "-" : s.cache_miss_rate}});
      }
      std::printf("\n%s", counters.render().c_str());
    }
  }

  if (opts.get_bool("events")) {
    std::printf("\n");
    for (const obs::TraceEvent& e : doc.events) {
      if (!only.empty() && e.bench != only) {
        continue;
      }
      std::string args;
      for (const auto& [k, v] : e.args) {
        args += " " + k + "=" + v;
      }
      if (e.dur >= 0) {
        std::printf("%12" PRId64 " +%-10" PRId64 " %-11s %-14s %-14s%s\n",
                    static_cast<int64_t>(e.ts), static_cast<int64_t>(e.dur), e.cat.c_str(),
                    e.name.c_str(), e.bench.empty() ? "-" : e.bench.c_str(), args.c_str());
      } else {
        std::printf("%12" PRId64 " %-11s %-14s %-14s%s\n", static_cast<int64_t>(e.ts),
                    e.cat.c_str(), e.name.c_str(), e.bench.empty() ? "-" : e.bench.c_str(),
                    args.c_str());
      }
    }
  }
  return 0;
} catch (const std::exception& e) {
  std::fprintf(stderr, "lmbench_trace: %s\n", e.what());
  return 2;
}
