// lmbenchd: run the lmbench++ suite as a long-running local service.
//
//   ./build/examples/lmbenchd [--socket=PATH] [--store=DIR]
//                             [--cal-cache=PATH] [--verbose]
//
//   --socket=PATH  Unix-domain socket to listen on (default lmbenchd.sock).
//                  Filesystem permissions are the access control.
//   --store=DIR    trend store directory; every completed run is appended
//                  with its provenance (default lmbench-trends).  Read it
//                  back with `lmbench_trend DIR` or the client's `trend` op.
//   --cal-cache=PATH  calibration cache shared across submitted runs
//                  (default .lmbenchpp-cal.db) — the second submission of a
//                  suite starts warm
//   --verbose      log one line per connection/job to stderr
//
// Jobs are executed strictly one at a time (FIFO): concurrent benchmark
// runs would time-share the machine they are trying to measure.  Submit
// work with lmbench_client; `lmbench_client shutdown` stops the daemon.
//
// Exit codes: 0 after a clean shutdown request, 2 on usage errors, 4 when
// the socket cannot be created.
#include <cstdio>

#include "src/core/options.h"
#include "src/svc/daemon.h"
#include "src/sys/error.h"

int main(int argc, char** argv) try {
  lmb::Options opts = lmb::Options::parse(argc, argv);

  lmb::svc::DaemonConfig config;
  config.socket_path = opts.get_string("socket", "lmbenchd.sock");
  config.store_dir = opts.get_string("store", "lmbench-trends");
  config.cal_cache_path = opts.get_string("cal-cache", ".lmbenchpp-cal.db");
  config.verbose = opts.get_bool("verbose");

  lmb::svc::Daemon daemon(std::move(config));
  try {
    daemon.start();
  } catch (const lmb::sys::SysError& e) {
    std::fprintf(stderr, "lmbenchd: cannot listen on %s: %s\n",
                 daemon.socket_path().c_str(), e.what());
    return 4;
  }
  std::printf("lmbenchd: listening on %s (store: %s)\n", daemon.socket_path().c_str(),
              opts.get_string("store", "lmbench-trends").c_str());
  std::fflush(stdout);

  daemon.wait();  // until a shutdown request
  daemon.stop();
  std::printf("lmbenchd: shut down after %d completed job(s)\n", daemon.completed_jobs());
  return 0;
} catch (const std::exception& e) {
  std::fprintf(stderr, "lmbenchd: %s\n", e.what());
  return 2;
}
