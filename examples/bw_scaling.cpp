// bw_scaling: lmbench3's `bw_mem -P` as a first-class tool — aggregate
// memory bandwidth as worker count scales, with CPU pinning and selectable
// SIMD/non-temporal kernels.
//
//   ./build/examples/bw_scaling [--op=copy|read|write|rdwr|bzero|all]
//                               [--threads=1,2,4] [--size=8m]
//                               [--kernel=auto|scalar|sse2|avx2|nt]
//                               [--compare-kernels] [--no-pin] [--quick]
//
//   --op=...            which operation(s) to sweep (default copy)
//   --threads=LIST      worker counts (default 1,2,...,logical CPUs)
//   --size=BYTES        per-worker buffer size (default 8m, the paper's
//                       cache-defeating working set)
//   --kernel=VARIANT    kernel implementation (default auto via CPUID)
//   --compare-kernels   additionally compare --op at 1 thread across every
//                       available kernel variant with randomized A/B
//                       interleaving: per-round paired deltas vs scalar with
//                       a 95% Student-t interval (drift cancels instead of
//                       landing on whichever variant ran last)
//   --no-pin            do not pin workers to CPUs
//
// Prints the host topology, per-point lines, then the scaling table and
// ASCII plot (src/report/scaling.h).
#include <cstdio>
#include <stdexcept>
#include <string>
#include <vector>

#include "src/bw/bw_mem.h"
#include "src/bw/kernels.h"
#include "src/bw/parallel.h"
#include "src/core/options.h"
#include "src/core/topology.h"
#include "src/report/scaling.h"
#include "src/report/table.h"

namespace {

using namespace lmb;

bw::MemOp parse_op(const std::string& name) {
  if (name == "copy") return bw::MemOp::kCopyUnrolled;
  if (name == "read") return bw::MemOp::kReadSum;
  if (name == "write") return bw::MemOp::kWrite;
  if (name == "rdwr") return bw::MemOp::kReadWrite;
  if (name == "bzero") return bw::MemOp::kBzero;
  if (name == "bcopy_libc") return bw::MemOp::kCopyLibc;
  throw std::invalid_argument("unknown op '" + name +
                              "' (expected copy|read|write|rdwr|bzero|bcopy_libc|all)");
}

const char* op_label(bw::MemOp op) {
  switch (op) {
    case bw::MemOp::kCopyLibc:
      return "bcopy_libc";
    case bw::MemOp::kCopyUnrolled:
      return "copy";
    case bw::MemOp::kReadSum:
      return "read";
    case bw::MemOp::kWrite:
      return "write";
    case bw::MemOp::kBzero:
      return "bzero";
    case bw::MemOp::kReadWrite:
      return "rdwr";
  }
  return "?";
}

}  // namespace

int main(int argc, char** argv) try {
  Options opts = Options::parse(argc, argv);

  CpuTopology topo = query_topology();
  std::printf("topology: %s%s\n", topo.summary().c_str(),
              affinity_supported() ? "" : " (affinity unsupported: workers unpinned)");

  bw::ParallelBwConfig cfg;
  cfg.bytes = static_cast<size_t>(opts.get_size("size", opts.quick() ? (1 << 20) : (8 << 20)));
  cfg.pin = !opts.get_bool("no-pin");
  cfg.kernel = bw::parse_kernel_variant(opts.get_string("kernel", "auto"));
  if (opts.quick()) {
    cfg.policy = TimingPolicy::quick();
  }

  std::string threads_arg = opts.get_string("threads", "");
  std::vector<int> thread_counts;
  if (threads_arg.empty()) {
    for (int t = 1; t <= topo.logical_cpus(); t *= 2) {
      thread_counts.push_back(t);
    }
    if (thread_counts.back() != topo.logical_cpus()) {
      thread_counts.push_back(topo.logical_cpus());
    }
  } else {
    thread_counts = bw::parse_thread_list(threads_arg);
  }

  std::string op_arg = opts.get_string("op", "copy");
  std::vector<bw::MemOp> ops;
  if (op_arg == "all") {
    ops = {bw::MemOp::kCopyUnrolled, bw::MemOp::kReadSum, bw::MemOp::kWrite,
           bw::MemOp::kReadWrite, bw::MemOp::kBzero};
  } else {
    ops.push_back(parse_op(op_arg));
  }

  // Fake a RunResult so the shared extract/render path formats the sweep.
  RunResult sweep;
  for (bw::MemOp op : ops) {
    for (int threads : thread_counts) {
      cfg.threads = threads;
      bw::ParallelBwResult r = bw::measure_mem_bw_parallel(op, cfg);
      std::printf("%-10s p%-3d %10s MB/s aggregate  [", op_label(op), r.threads,
                  report::format_number(r.aggregate_mb_per_sec, 0).c_str());
      for (size_t w = 0; w < r.per_worker_mb_per_sec.size(); ++w) {
        std::printf("%s%s", w == 0 ? "" : " ",
                    report::format_number(r.per_worker_mb_per_sec[w], 0).c_str());
      }
      std::printf("] kernel=%s\n", bw::kernel_variant_name(r.kernel));
      std::fflush(stdout);
      sweep.add(std::string(op_label(op)) + "_p" + std::to_string(r.threads) + "_mbs",
                r.aggregate_mb_per_sec, "MB/s");
    }
  }

  std::vector<report::ScalingSeries> series = report::extract_scaling(sweep);
  if (!series.empty() && thread_counts.size() > 1) {
    std::printf("\n%s", report::render_scaling_report(series).c_str());
  }

  if (opts.get_bool("compare-kernels")) {
    bw::MemOp cmp_op =
        ops.front() == bw::MemOp::kCopyLibc ? bw::MemOp::kCopyUnrolled : ops.front();
    if (bw::available_kernel_variants().size() < 2) {
      std::printf("\nkernel comparison: only one variant available on this host\n");
    } else {
      bw::MemBwConfig single;
      single.bytes = cfg.bytes;
      single.policy = cfg.policy;
      bw::KernelCompareResult cmp = bw::compare_kernels_interleaved(cmp_op, single);
      std::printf(
          "\nkernel comparison (%s, 1 thread, %zu bytes, %d interleaved rounds, "
          "clock=%s):\n",
          op_label(cmp_op), cmp.bytes, cmp.ab.rounds, cmp.ab.clock_source.c_str());
      for (size_t i = 0; i < cmp.entries.size(); ++i) {
        const bw::KernelCompareEntry& e = cmp.entries[i];
        if (i == 0) {
          std::printf("  %-8s %10s MB/s  (baseline)\n", bw::kernel_variant_name(e.variant),
                      report::format_number(e.mb_per_sec, 0).c_str());
          continue;
        }
        const PairedDelta& d = cmp.ab.deltas[i - 1];
        // Negative paired delta = fewer ns/op than scalar = faster.
        std::printf("  %-8s %10s MB/s  %+.1f%% ± %.1f%% vs scalar  %s\n",
                    bw::kernel_variant_name(e.variant),
                    report::format_number(e.mb_per_sec, 0).c_str(), 100.0 * -d.rel_delta,
                    cmp.ab.variants[0].ns_per_op > 0.0
                        ? 100.0 * d.ci_half_width_ns / cmp.ab.variants[0].ns_per_op
                        : 0.0,
                    d.significant ? "(significant)" : "(within noise)");
      }
    }
  }
  return 0;
} catch (const std::exception& e) {
  std::fprintf(stderr, "bw_scaling: %s\n", e.what());
  return 2;
}
