// tcp_load: standalone driver for the c10k load scenarios.
//
//   ./build/examples/tcp_load [bench] [flags...]
//
// `bench` is one of lat_tcp_n (default), lat_rpc_n, bw_tcp_n; flags are the
// benchmark's own (see src/lat/lat_load.cc or the HOWTO's "Concurrent load
// scenarios" section).  Runs the registered benchmark — the same code path
// run_suite uses — and prints the tail-latency table plus every metric.
//
//   ./build/examples/tcp_load lat_tcp_n --connections=1000 --duration=2000
//   ./build/examples/tcp_load lat_tcp_n --connections=256 --rate=50000
//   ./build/examples/tcp_load bw_tcp_n --connections=64 --msg=128k
//   ./build/examples/tcp_load bw_tcp_n --shards=1,2,4 --epoll=et
//   ./build/examples/tcp_load lat_tcp_n --connections=256 --interval-ms=100 --heatmap
//
// With --interval-ms=MS the run collects a time × latency interval series;
// --heatmap renders it as a shaded terminal heatmap and --heatmap-json=PATH
// writes the lmbenchpp.heatmap.v1 document (for CI artifacts and the
// lmbench_heatmap inspector).
//
// Exit codes: 0 ok, 1 benchmark failure, 2 usage.
#include <cstdio>
#include <fstream>
#include <stdexcept>
#include <string>

#include "src/core/options.h"
#include "src/core/registry.h"
#include "src/core/run_result.h"
#include "src/report/heatmap.h"
#include "src/report/load.h"

int main(int argc, char** argv) try {
  lmb::Options opts = lmb::Options::parse(argc, argv);
  const std::string bench =
      opts.positionals().empty() ? "lat_tcp_n" : opts.positionals().front();
  if (bench != "lat_tcp_n" && bench != "lat_rpc_n" && bench != "bw_tcp_n") {
    std::fprintf(stderr, "usage: tcp_load [lat_tcp_n|lat_rpc_n|bw_tcp_n] [--connections=N] "
                         "[--duration=MS] [--shards=1,2,4] [--epoll=lt|et] "
                         "[--net=both|loopback|sim] [flags...]\n");
    return 2;
  }
  const lmb::BenchmarkInfo* info = lmb::Registry::global().find(bench);
  if (info == nullptr) {
    std::fprintf(stderr, "tcp_load: benchmark '%s' is not registered\n", bench.c_str());
    return 2;
  }

  lmb::RunResult result = info->run(opts);
  if (!result.ok()) {
    std::fprintf(stderr, "tcp_load: %s failed: %s\n", bench.c_str(), result.error.c_str());
    return 1;
  }
  std::printf("%s: %s\n\n", bench.c_str(), result.summary().c_str());
  const std::string table = lmb::report::render_load_table(
      lmb::report::extract_load_scenarios(result));
  if (!table.empty()) {
    std::printf("%s\n", table.c_str());
  }
  const std::string shard_table = lmb::report::render_shard_table(
      lmb::report::extract_shard_scaling(result));
  if (!shard_table.empty()) {
    std::printf("%s\n", shard_table.c_str());
  }
  const auto heatmap_doc = result.metadata.find("heatmap_loopback");
  if (opts.get_bool("heatmap", false)) {
    if (heatmap_doc == result.metadata.end()) {
      std::fprintf(stderr, "tcp_load: --heatmap needs --interval-ms=MS (and a loopback run)\n");
      return 2;
    }
    const lmb::report::Heatmap hm = lmb::report::heatmap_from_json(heatmap_doc->second);
    std::printf("%s\n", lmb::report::render_heatmap(hm).c_str());
  }
  const std::string heatmap_path = opts.get_string("heatmap-json", "");
  if (!heatmap_path.empty()) {
    if (heatmap_doc == result.metadata.end()) {
      std::fprintf(stderr, "tcp_load: --heatmap-json needs --interval-ms=MS\n");
      return 2;
    }
    std::ofstream out(heatmap_path);
    out << heatmap_doc->second << "\n";
    if (!out) {
      std::fprintf(stderr, "tcp_load: cannot write %s\n", heatmap_path.c_str());
      return 1;
    }
  }
  for (const lmb::Metric& m : result.metrics) {
    std::printf("  %-20s %14.3f %s\n", m.key.c_str(), m.value, m.unit.c_str());
  }
  for (const auto& [key, value] : result.metadata) {
    if (key.rfind("heatmap_", 0) == 0) {
      continue;  // machine document; --heatmap renders it, --heatmap-json saves it
    }
    std::printf("  # %-18s %s\n", key.c_str(), value.c_str());
  }
  return 0;
} catch (const std::invalid_argument& e) {
  // A bad flag value (--epoll=foo, --shards=0, ...) is a usage error, not a
  // benchmark failure.
  std::fprintf(stderr, "tcp_load: %s\n", e.what());
  std::fprintf(stderr, "usage: tcp_load [lat_tcp_n|lat_rpc_n|bw_tcp_n] [--connections=N] "
                       "[--duration=MS] [--shards=1,2,4] [--epoll=lt|et] "
                       "[--net=both|loopback|sim] [flags...]\n");
  return 2;
} catch (const std::exception& e) {
  std::fprintf(stderr, "tcp_load: %s\n", e.what());
  return 1;
}
