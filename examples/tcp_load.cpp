// tcp_load: standalone driver for the c10k load scenarios.
//
//   ./build/examples/tcp_load [bench] [flags...]
//
// `bench` is one of lat_tcp_n (default), lat_rpc_n, bw_tcp_n; flags are the
// benchmark's own (see src/lat/lat_load.cc or the HOWTO's "Concurrent load
// scenarios" section).  Runs the registered benchmark — the same code path
// run_suite uses — and prints the tail-latency table plus every metric.
//
//   ./build/examples/tcp_load lat_tcp_n --connections=1000 --duration=2000
//   ./build/examples/tcp_load lat_tcp_n --connections=256 --rate=50000
//   ./build/examples/tcp_load bw_tcp_n --connections=64 --msg=128k
//   ./build/examples/tcp_load bw_tcp_n --shards=1,2,4 --epoll=et
//
// Exit codes: 0 ok, 1 benchmark failure, 2 usage.
#include <cstdio>
#include <stdexcept>
#include <string>

#include "src/core/options.h"
#include "src/core/registry.h"
#include "src/core/run_result.h"
#include "src/report/load.h"

int main(int argc, char** argv) try {
  lmb::Options opts = lmb::Options::parse(argc, argv);
  const std::string bench =
      opts.positionals().empty() ? "lat_tcp_n" : opts.positionals().front();
  if (bench != "lat_tcp_n" && bench != "lat_rpc_n" && bench != "bw_tcp_n") {
    std::fprintf(stderr, "usage: tcp_load [lat_tcp_n|lat_rpc_n|bw_tcp_n] [--connections=N] "
                         "[--duration=MS] [--shards=1,2,4] [--epoll=lt|et] "
                         "[--net=both|loopback|sim] [flags...]\n");
    return 2;
  }
  const lmb::BenchmarkInfo* info = lmb::Registry::global().find(bench);
  if (info == nullptr) {
    std::fprintf(stderr, "tcp_load: benchmark '%s' is not registered\n", bench.c_str());
    return 2;
  }

  lmb::RunResult result = info->run(opts);
  if (!result.ok()) {
    std::fprintf(stderr, "tcp_load: %s failed: %s\n", bench.c_str(), result.error.c_str());
    return 1;
  }
  std::printf("%s: %s\n\n", bench.c_str(), result.summary().c_str());
  const std::string table = lmb::report::render_load_table(
      lmb::report::extract_load_scenarios(result));
  if (!table.empty()) {
    std::printf("%s\n", table.c_str());
  }
  const std::string shard_table = lmb::report::render_shard_table(
      lmb::report::extract_shard_scaling(result));
  if (!shard_table.empty()) {
    std::printf("%s\n", shard_table.c_str());
  }
  for (const lmb::Metric& m : result.metrics) {
    std::printf("  %-20s %14.3f %s\n", m.key.c_str(), m.value, m.unit.c_str());
  }
  for (const auto& [key, value] : result.metadata) {
    std::printf("  # %-18s %s\n", key.c_str(), value.c_str());
  }
  return 0;
} catch (const std::invalid_argument& e) {
  // A bad flag value (--epoll=foo, --shards=0, ...) is a usage error, not a
  // benchmark failure.
  std::fprintf(stderr, "tcp_load: %s\n", e.what());
  std::fprintf(stderr, "usage: tcp_load [lat_tcp_n|lat_rpc_n|bw_tcp_n] [--connections=N] "
                       "[--duration=MS] [--shards=1,2,4] [--epoll=lt|et] "
                       "[--net=both|loopback|sim] [flags...]\n");
  return 2;
} catch (const std::exception& e) {
  std::fprintf(stderr, "tcp_load: %s\n", e.what());
  return 1;
}
