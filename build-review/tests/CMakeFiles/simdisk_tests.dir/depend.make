# Empty dependencies file for simdisk_tests.
# This may be replaced when dependencies are built.
