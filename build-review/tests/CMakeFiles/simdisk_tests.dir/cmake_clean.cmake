file(REMOVE_RECURSE
  "CMakeFiles/simdisk_tests.dir/simdisk/disk_model_test.cc.o"
  "CMakeFiles/simdisk_tests.dir/simdisk/disk_model_test.cc.o.d"
  "CMakeFiles/simdisk_tests.dir/simdisk/disk_overhead_test.cc.o"
  "CMakeFiles/simdisk_tests.dir/simdisk/disk_overhead_test.cc.o.d"
  "CMakeFiles/simdisk_tests.dir/simdisk/fault_injection_test.cc.o"
  "CMakeFiles/simdisk_tests.dir/simdisk/fault_injection_test.cc.o.d"
  "CMakeFiles/simdisk_tests.dir/simdisk/file_disk_test.cc.o"
  "CMakeFiles/simdisk_tests.dir/simdisk/file_disk_test.cc.o.d"
  "CMakeFiles/simdisk_tests.dir/simdisk/lmdd_test.cc.o"
  "CMakeFiles/simdisk_tests.dir/simdisk/lmdd_test.cc.o.d"
  "CMakeFiles/simdisk_tests.dir/simdisk/sim_disk_test.cc.o"
  "CMakeFiles/simdisk_tests.dir/simdisk/sim_disk_test.cc.o.d"
  "simdisk_tests"
  "simdisk_tests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simdisk_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
