file(REMOVE_RECURSE
  "CMakeFiles/lat_tests.dir/lat/chain_test.cc.o"
  "CMakeFiles/lat_tests.dir/lat/chain_test.cc.o.d"
  "CMakeFiles/lat_tests.dir/lat/lat_ctx_test.cc.o"
  "CMakeFiles/lat_tests.dir/lat/lat_ctx_test.cc.o.d"
  "CMakeFiles/lat_tests.dir/lat/lat_file_ops_test.cc.o"
  "CMakeFiles/lat_tests.dir/lat/lat_file_ops_test.cc.o.d"
  "CMakeFiles/lat_tests.dir/lat/lat_fs_test.cc.o"
  "CMakeFiles/lat_tests.dir/lat/lat_fs_test.cc.o.d"
  "CMakeFiles/lat_tests.dir/lat/lat_ipc_test.cc.o"
  "CMakeFiles/lat_tests.dir/lat/lat_ipc_test.cc.o.d"
  "CMakeFiles/lat_tests.dir/lat/lat_mem_rd_test.cc.o"
  "CMakeFiles/lat_tests.dir/lat/lat_mem_rd_test.cc.o.d"
  "CMakeFiles/lat_tests.dir/lat/lat_ops_test.cc.o"
  "CMakeFiles/lat_tests.dir/lat/lat_ops_test.cc.o.d"
  "CMakeFiles/lat_tests.dir/lat/lat_pagefault_test.cc.o"
  "CMakeFiles/lat_tests.dir/lat/lat_pagefault_test.cc.o.d"
  "CMakeFiles/lat_tests.dir/lat/lat_proc_test.cc.o"
  "CMakeFiles/lat_tests.dir/lat/lat_proc_test.cc.o.d"
  "CMakeFiles/lat_tests.dir/lat/lat_sig_test.cc.o"
  "CMakeFiles/lat_tests.dir/lat/lat_sig_test.cc.o.d"
  "CMakeFiles/lat_tests.dir/lat/lat_syscall_test.cc.o"
  "CMakeFiles/lat_tests.dir/lat/lat_syscall_test.cc.o.d"
  "CMakeFiles/lat_tests.dir/lat/lat_tlb_test.cc.o"
  "CMakeFiles/lat_tests.dir/lat/lat_tlb_test.cc.o.d"
  "CMakeFiles/lat_tests.dir/lat/mem_hierarchy_test.cc.o"
  "CMakeFiles/lat_tests.dir/lat/mem_hierarchy_test.cc.o.d"
  "lat_tests"
  "lat_tests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lat_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
