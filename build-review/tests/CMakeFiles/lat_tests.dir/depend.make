# Empty dependencies file for lat_tests.
# This may be replaced when dependencies are built.
