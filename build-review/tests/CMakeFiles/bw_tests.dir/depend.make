# Empty dependencies file for bw_tests.
# This may be replaced when dependencies are built.
