file(REMOVE_RECURSE
  "CMakeFiles/bw_tests.dir/bw/bw_file_test.cc.o"
  "CMakeFiles/bw_tests.dir/bw/bw_file_test.cc.o.d"
  "CMakeFiles/bw_tests.dir/bw/bw_ipc_test.cc.o"
  "CMakeFiles/bw_tests.dir/bw/bw_ipc_test.cc.o.d"
  "CMakeFiles/bw_tests.dir/bw/bw_mem_test.cc.o"
  "CMakeFiles/bw_tests.dir/bw/bw_mem_test.cc.o.d"
  "CMakeFiles/bw_tests.dir/bw/kernels_test.cc.o"
  "CMakeFiles/bw_tests.dir/bw/kernels_test.cc.o.d"
  "CMakeFiles/bw_tests.dir/bw/parallel_test.cc.o"
  "CMakeFiles/bw_tests.dir/bw/parallel_test.cc.o.d"
  "CMakeFiles/bw_tests.dir/bw/stream_test.cc.o"
  "CMakeFiles/bw_tests.dir/bw/stream_test.cc.o.d"
  "bw_tests"
  "bw_tests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bw_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
