# Empty dependencies file for sys_tests.
# This may be replaced when dependencies are built.
