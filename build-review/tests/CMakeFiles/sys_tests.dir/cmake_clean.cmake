file(REMOVE_RECURSE
  "CMakeFiles/sys_tests.dir/sys/aligned_buffer_test.cc.o"
  "CMakeFiles/sys_tests.dir/sys/aligned_buffer_test.cc.o.d"
  "CMakeFiles/sys_tests.dir/sys/fdio_test.cc.o"
  "CMakeFiles/sys_tests.dir/sys/fdio_test.cc.o.d"
  "CMakeFiles/sys_tests.dir/sys/mapped_file_test.cc.o"
  "CMakeFiles/sys_tests.dir/sys/mapped_file_test.cc.o.d"
  "CMakeFiles/sys_tests.dir/sys/pipe_test.cc.o"
  "CMakeFiles/sys_tests.dir/sys/pipe_test.cc.o.d"
  "CMakeFiles/sys_tests.dir/sys/process_test.cc.o"
  "CMakeFiles/sys_tests.dir/sys/process_test.cc.o.d"
  "CMakeFiles/sys_tests.dir/sys/signals_test.cc.o"
  "CMakeFiles/sys_tests.dir/sys/signals_test.cc.o.d"
  "CMakeFiles/sys_tests.dir/sys/socket_test.cc.o"
  "CMakeFiles/sys_tests.dir/sys/socket_test.cc.o.d"
  "CMakeFiles/sys_tests.dir/sys/temp_test.cc.o"
  "CMakeFiles/sys_tests.dir/sys/temp_test.cc.o.d"
  "CMakeFiles/sys_tests.dir/sys/unique_fd_test.cc.o"
  "CMakeFiles/sys_tests.dir/sys/unique_fd_test.cc.o.d"
  "sys_tests"
  "sys_tests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sys_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
