file(REMOVE_RECURSE
  "CMakeFiles/simfs_tests.dir/simfs/fs_bench_test.cc.o"
  "CMakeFiles/simfs_tests.dir/simfs/fs_bench_test.cc.o.d"
  "CMakeFiles/simfs_tests.dir/simfs/sim_fs_data_test.cc.o"
  "CMakeFiles/simfs_tests.dir/simfs/sim_fs_data_test.cc.o.d"
  "CMakeFiles/simfs_tests.dir/simfs/sim_fs_test.cc.o"
  "CMakeFiles/simfs_tests.dir/simfs/sim_fs_test.cc.o.d"
  "simfs_tests"
  "simfs_tests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simfs_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
