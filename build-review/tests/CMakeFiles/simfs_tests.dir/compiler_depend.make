# Empty compiler generated dependencies file for simfs_tests.
# This may be replaced when dependencies are built.
