# Empty dependencies file for netsim_tests.
# This may be replaced when dependencies are built.
