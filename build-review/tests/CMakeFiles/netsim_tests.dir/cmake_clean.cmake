file(REMOVE_RECURSE
  "CMakeFiles/netsim_tests.dir/netsim/link_test.cc.o"
  "CMakeFiles/netsim_tests.dir/netsim/link_test.cc.o.d"
  "CMakeFiles/netsim_tests.dir/netsim/remote_test.cc.o"
  "CMakeFiles/netsim_tests.dir/netsim/remote_test.cc.o.d"
  "CMakeFiles/netsim_tests.dir/netsim/simnet_test.cc.o"
  "CMakeFiles/netsim_tests.dir/netsim/simnet_test.cc.o.d"
  "CMakeFiles/netsim_tests.dir/netsim/stream_test.cc.o"
  "CMakeFiles/netsim_tests.dir/netsim/stream_test.cc.o.d"
  "netsim_tests"
  "netsim_tests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/netsim_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
