file(REMOVE_RECURSE
  "CMakeFiles/report_tests.dir/report/compare_test.cc.o"
  "CMakeFiles/report_tests.dir/report/compare_test.cc.o.d"
  "CMakeFiles/report_tests.dir/report/plot_test.cc.o"
  "CMakeFiles/report_tests.dir/report/plot_test.cc.o.d"
  "CMakeFiles/report_tests.dir/report/scaling_test.cc.o"
  "CMakeFiles/report_tests.dir/report/scaling_test.cc.o.d"
  "CMakeFiles/report_tests.dir/report/serialize_test.cc.o"
  "CMakeFiles/report_tests.dir/report/serialize_test.cc.o.d"
  "CMakeFiles/report_tests.dir/report/summary_test.cc.o"
  "CMakeFiles/report_tests.dir/report/summary_test.cc.o.d"
  "CMakeFiles/report_tests.dir/report/table_test.cc.o"
  "CMakeFiles/report_tests.dir/report/table_test.cc.o.d"
  "report_tests"
  "report_tests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/report_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
