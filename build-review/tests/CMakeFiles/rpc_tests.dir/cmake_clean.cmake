file(REMOVE_RECURSE
  "CMakeFiles/rpc_tests.dir/rpc/client_server_test.cc.o"
  "CMakeFiles/rpc_tests.dir/rpc/client_server_test.cc.o.d"
  "CMakeFiles/rpc_tests.dir/rpc/lat_rpc_test.cc.o"
  "CMakeFiles/rpc_tests.dir/rpc/lat_rpc_test.cc.o.d"
  "CMakeFiles/rpc_tests.dir/rpc/message_test.cc.o"
  "CMakeFiles/rpc_tests.dir/rpc/message_test.cc.o.d"
  "CMakeFiles/rpc_tests.dir/rpc/portmap_test.cc.o"
  "CMakeFiles/rpc_tests.dir/rpc/portmap_test.cc.o.d"
  "CMakeFiles/rpc_tests.dir/rpc/xdr_test.cc.o"
  "CMakeFiles/rpc_tests.dir/rpc/xdr_test.cc.o.d"
  "rpc_tests"
  "rpc_tests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rpc_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
