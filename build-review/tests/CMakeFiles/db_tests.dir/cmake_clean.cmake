file(REMOVE_RECURSE
  "CMakeFiles/db_tests.dir/db/baseline_store_test.cc.o"
  "CMakeFiles/db_tests.dir/db/baseline_store_test.cc.o.d"
  "CMakeFiles/db_tests.dir/db/cal_store_test.cc.o"
  "CMakeFiles/db_tests.dir/db/cal_store_test.cc.o.d"
  "CMakeFiles/db_tests.dir/db/collect_test.cc.o"
  "CMakeFiles/db_tests.dir/db/collect_test.cc.o.d"
  "CMakeFiles/db_tests.dir/db/paper_data_test.cc.o"
  "CMakeFiles/db_tests.dir/db/paper_data_test.cc.o.d"
  "CMakeFiles/db_tests.dir/db/result_set_test.cc.o"
  "CMakeFiles/db_tests.dir/db/result_set_test.cc.o.d"
  "db_tests"
  "db_tests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/db_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
