# Empty dependencies file for db_tests.
# This may be replaced when dependencies are built.
