file(REMOVE_RECURSE
  "CMakeFiles/integration_tests.dir/integration/suite_test.cc.o"
  "CMakeFiles/integration_tests.dir/integration/suite_test.cc.o.d"
  "integration_tests"
  "integration_tests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integration_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
