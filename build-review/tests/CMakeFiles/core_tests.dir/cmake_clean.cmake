file(REMOVE_RECURSE
  "CMakeFiles/core_tests.dir/core/cal_cache_test.cc.o"
  "CMakeFiles/core_tests.dir/core/cal_cache_test.cc.o.d"
  "CMakeFiles/core_tests.dir/core/clock_test.cc.o"
  "CMakeFiles/core_tests.dir/core/clock_test.cc.o.d"
  "CMakeFiles/core_tests.dir/core/env_test.cc.o"
  "CMakeFiles/core_tests.dir/core/env_test.cc.o.d"
  "CMakeFiles/core_tests.dir/core/mhz_test.cc.o"
  "CMakeFiles/core_tests.dir/core/mhz_test.cc.o.d"
  "CMakeFiles/core_tests.dir/core/options_test.cc.o"
  "CMakeFiles/core_tests.dir/core/options_test.cc.o.d"
  "CMakeFiles/core_tests.dir/core/registry_test.cc.o"
  "CMakeFiles/core_tests.dir/core/registry_test.cc.o.d"
  "CMakeFiles/core_tests.dir/core/stats_test.cc.o"
  "CMakeFiles/core_tests.dir/core/stats_test.cc.o.d"
  "CMakeFiles/core_tests.dir/core/suite_runner_test.cc.o"
  "CMakeFiles/core_tests.dir/core/suite_runner_test.cc.o.d"
  "CMakeFiles/core_tests.dir/core/timing_test.cc.o"
  "CMakeFiles/core_tests.dir/core/timing_test.cc.o.d"
  "CMakeFiles/core_tests.dir/core/topology_test.cc.o"
  "CMakeFiles/core_tests.dir/core/topology_test.cc.o.d"
  "CMakeFiles/core_tests.dir/core/virtual_clock_test.cc.o"
  "CMakeFiles/core_tests.dir/core/virtual_clock_test.cc.o.d"
  "core_tests"
  "core_tests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
