# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build-review/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(core_tests "/root/repo/build-review/tests/core_tests")
set_tests_properties(core_tests PROPERTIES  TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;12;lmb_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(report_tests "/root/repo/build-review/tests/report_tests")
set_tests_properties(report_tests PROPERTIES  TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;26;lmb_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(db_tests "/root/repo/build-review/tests/db_tests")
set_tests_properties(db_tests PROPERTIES  TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;35;lmb_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(sys_tests "/root/repo/build-review/tests/sys_tests")
set_tests_properties(sys_tests PROPERTIES  TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;43;lmb_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(bw_tests "/root/repo/build-review/tests/bw_tests")
set_tests_properties(bw_tests PROPERTIES  TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;55;lmb_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(lat_tests "/root/repo/build-review/tests/lat_tests")
set_tests_properties(lat_tests PROPERTIES  TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;64;lmb_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(rpc_tests "/root/repo/build-review/tests/rpc_tests")
set_tests_properties(rpc_tests PROPERTIES  TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;80;lmb_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(simdisk_tests "/root/repo/build-review/tests/simdisk_tests")
set_tests_properties(simdisk_tests PROPERTIES  TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;88;lmb_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(netsim_tests "/root/repo/build-review/tests/netsim_tests")
set_tests_properties(netsim_tests PROPERTIES  TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;97;lmb_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(integration_tests "/root/repo/build-review/tests/integration_tests")
set_tests_properties(integration_tests PROPERTIES  TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;104;lmb_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(simfs_tests "/root/repo/build-review/tests/simfs_tests")
set_tests_properties(simfs_tests PROPERTIES  TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;108;lmb_add_test;/root/repo/tests/CMakeLists.txt;0;")
