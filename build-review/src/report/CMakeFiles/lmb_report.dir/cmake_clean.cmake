file(REMOVE_RECURSE
  "CMakeFiles/lmb_report.dir/compare.cc.o"
  "CMakeFiles/lmb_report.dir/compare.cc.o.d"
  "CMakeFiles/lmb_report.dir/plot.cc.o"
  "CMakeFiles/lmb_report.dir/plot.cc.o.d"
  "CMakeFiles/lmb_report.dir/scaling.cc.o"
  "CMakeFiles/lmb_report.dir/scaling.cc.o.d"
  "CMakeFiles/lmb_report.dir/serialize.cc.o"
  "CMakeFiles/lmb_report.dir/serialize.cc.o.d"
  "CMakeFiles/lmb_report.dir/summary.cc.o"
  "CMakeFiles/lmb_report.dir/summary.cc.o.d"
  "CMakeFiles/lmb_report.dir/table.cc.o"
  "CMakeFiles/lmb_report.dir/table.cc.o.d"
  "liblmb_report.a"
  "liblmb_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lmb_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
