file(REMOVE_RECURSE
  "liblmb_report.a"
)
