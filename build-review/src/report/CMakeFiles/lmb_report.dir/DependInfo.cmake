
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/report/compare.cc" "src/report/CMakeFiles/lmb_report.dir/compare.cc.o" "gcc" "src/report/CMakeFiles/lmb_report.dir/compare.cc.o.d"
  "/root/repo/src/report/plot.cc" "src/report/CMakeFiles/lmb_report.dir/plot.cc.o" "gcc" "src/report/CMakeFiles/lmb_report.dir/plot.cc.o.d"
  "/root/repo/src/report/scaling.cc" "src/report/CMakeFiles/lmb_report.dir/scaling.cc.o" "gcc" "src/report/CMakeFiles/lmb_report.dir/scaling.cc.o.d"
  "/root/repo/src/report/serialize.cc" "src/report/CMakeFiles/lmb_report.dir/serialize.cc.o" "gcc" "src/report/CMakeFiles/lmb_report.dir/serialize.cc.o.d"
  "/root/repo/src/report/summary.cc" "src/report/CMakeFiles/lmb_report.dir/summary.cc.o" "gcc" "src/report/CMakeFiles/lmb_report.dir/summary.cc.o.d"
  "/root/repo/src/report/table.cc" "src/report/CMakeFiles/lmb_report.dir/table.cc.o" "gcc" "src/report/CMakeFiles/lmb_report.dir/table.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/core/CMakeFiles/lmb_core.dir/DependInfo.cmake"
  "/root/repo/build-review/src/db/CMakeFiles/lmb_db.dir/DependInfo.cmake"
  "/root/repo/build-review/src/sys/CMakeFiles/lmb_sys.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
