# Empty compiler generated dependencies file for lmb_report.
# This may be replaced when dependencies are built.
