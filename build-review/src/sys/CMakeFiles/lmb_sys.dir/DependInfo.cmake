
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sys/aligned_buffer.cc" "src/sys/CMakeFiles/lmb_sys.dir/aligned_buffer.cc.o" "gcc" "src/sys/CMakeFiles/lmb_sys.dir/aligned_buffer.cc.o.d"
  "/root/repo/src/sys/error.cc" "src/sys/CMakeFiles/lmb_sys.dir/error.cc.o" "gcc" "src/sys/CMakeFiles/lmb_sys.dir/error.cc.o.d"
  "/root/repo/src/sys/fdio.cc" "src/sys/CMakeFiles/lmb_sys.dir/fdio.cc.o" "gcc" "src/sys/CMakeFiles/lmb_sys.dir/fdio.cc.o.d"
  "/root/repo/src/sys/mapped_file.cc" "src/sys/CMakeFiles/lmb_sys.dir/mapped_file.cc.o" "gcc" "src/sys/CMakeFiles/lmb_sys.dir/mapped_file.cc.o.d"
  "/root/repo/src/sys/pipe.cc" "src/sys/CMakeFiles/lmb_sys.dir/pipe.cc.o" "gcc" "src/sys/CMakeFiles/lmb_sys.dir/pipe.cc.o.d"
  "/root/repo/src/sys/process.cc" "src/sys/CMakeFiles/lmb_sys.dir/process.cc.o" "gcc" "src/sys/CMakeFiles/lmb_sys.dir/process.cc.o.d"
  "/root/repo/src/sys/signals.cc" "src/sys/CMakeFiles/lmb_sys.dir/signals.cc.o" "gcc" "src/sys/CMakeFiles/lmb_sys.dir/signals.cc.o.d"
  "/root/repo/src/sys/socket.cc" "src/sys/CMakeFiles/lmb_sys.dir/socket.cc.o" "gcc" "src/sys/CMakeFiles/lmb_sys.dir/socket.cc.o.d"
  "/root/repo/src/sys/temp.cc" "src/sys/CMakeFiles/lmb_sys.dir/temp.cc.o" "gcc" "src/sys/CMakeFiles/lmb_sys.dir/temp.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/core/CMakeFiles/lmb_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
