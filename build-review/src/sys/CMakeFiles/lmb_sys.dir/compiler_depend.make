# Empty compiler generated dependencies file for lmb_sys.
# This may be replaced when dependencies are built.
