file(REMOVE_RECURSE
  "CMakeFiles/lmb_sys.dir/aligned_buffer.cc.o"
  "CMakeFiles/lmb_sys.dir/aligned_buffer.cc.o.d"
  "CMakeFiles/lmb_sys.dir/error.cc.o"
  "CMakeFiles/lmb_sys.dir/error.cc.o.d"
  "CMakeFiles/lmb_sys.dir/fdio.cc.o"
  "CMakeFiles/lmb_sys.dir/fdio.cc.o.d"
  "CMakeFiles/lmb_sys.dir/mapped_file.cc.o"
  "CMakeFiles/lmb_sys.dir/mapped_file.cc.o.d"
  "CMakeFiles/lmb_sys.dir/pipe.cc.o"
  "CMakeFiles/lmb_sys.dir/pipe.cc.o.d"
  "CMakeFiles/lmb_sys.dir/process.cc.o"
  "CMakeFiles/lmb_sys.dir/process.cc.o.d"
  "CMakeFiles/lmb_sys.dir/signals.cc.o"
  "CMakeFiles/lmb_sys.dir/signals.cc.o.d"
  "CMakeFiles/lmb_sys.dir/socket.cc.o"
  "CMakeFiles/lmb_sys.dir/socket.cc.o.d"
  "CMakeFiles/lmb_sys.dir/temp.cc.o"
  "CMakeFiles/lmb_sys.dir/temp.cc.o.d"
  "liblmb_sys.a"
  "liblmb_sys.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lmb_sys.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
