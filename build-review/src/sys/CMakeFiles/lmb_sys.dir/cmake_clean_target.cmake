file(REMOVE_RECURSE
  "liblmb_sys.a"
)
