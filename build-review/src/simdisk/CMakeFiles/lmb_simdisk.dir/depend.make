# Empty dependencies file for lmb_simdisk.
# This may be replaced when dependencies are built.
