
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/simdisk/disk_model.cc" "src/simdisk/CMakeFiles/lmb_simdisk.dir/disk_model.cc.o" "gcc" "src/simdisk/CMakeFiles/lmb_simdisk.dir/disk_model.cc.o.d"
  "/root/repo/src/simdisk/disk_overhead.cc" "src/simdisk/CMakeFiles/lmb_simdisk.dir/disk_overhead.cc.o" "gcc" "src/simdisk/CMakeFiles/lmb_simdisk.dir/disk_overhead.cc.o.d"
  "/root/repo/src/simdisk/file_disk.cc" "src/simdisk/CMakeFiles/lmb_simdisk.dir/file_disk.cc.o" "gcc" "src/simdisk/CMakeFiles/lmb_simdisk.dir/file_disk.cc.o.d"
  "/root/repo/src/simdisk/lmdd.cc" "src/simdisk/CMakeFiles/lmb_simdisk.dir/lmdd.cc.o" "gcc" "src/simdisk/CMakeFiles/lmb_simdisk.dir/lmdd.cc.o.d"
  "/root/repo/src/simdisk/sim_disk.cc" "src/simdisk/CMakeFiles/lmb_simdisk.dir/sim_disk.cc.o" "gcc" "src/simdisk/CMakeFiles/lmb_simdisk.dir/sim_disk.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/core/CMakeFiles/lmb_core.dir/DependInfo.cmake"
  "/root/repo/build-review/src/sys/CMakeFiles/lmb_sys.dir/DependInfo.cmake"
  "/root/repo/build-review/src/report/CMakeFiles/lmb_report.dir/DependInfo.cmake"
  "/root/repo/build-review/src/db/CMakeFiles/lmb_db.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
