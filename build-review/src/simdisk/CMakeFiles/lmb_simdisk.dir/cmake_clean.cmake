file(REMOVE_RECURSE
  "CMakeFiles/lmb_simdisk.dir/disk_model.cc.o"
  "CMakeFiles/lmb_simdisk.dir/disk_model.cc.o.d"
  "CMakeFiles/lmb_simdisk.dir/disk_overhead.cc.o"
  "CMakeFiles/lmb_simdisk.dir/disk_overhead.cc.o.d"
  "CMakeFiles/lmb_simdisk.dir/file_disk.cc.o"
  "CMakeFiles/lmb_simdisk.dir/file_disk.cc.o.d"
  "CMakeFiles/lmb_simdisk.dir/lmdd.cc.o"
  "CMakeFiles/lmb_simdisk.dir/lmdd.cc.o.d"
  "CMakeFiles/lmb_simdisk.dir/sim_disk.cc.o"
  "CMakeFiles/lmb_simdisk.dir/sim_disk.cc.o.d"
  "liblmb_simdisk.a"
  "liblmb_simdisk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lmb_simdisk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
