file(REMOVE_RECURSE
  "liblmb_simdisk.a"
)
