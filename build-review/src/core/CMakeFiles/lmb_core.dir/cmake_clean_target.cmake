file(REMOVE_RECURSE
  "liblmb_core.a"
)
