file(REMOVE_RECURSE
  "CMakeFiles/lmb_core.dir/cal_cache.cc.o"
  "CMakeFiles/lmb_core.dir/cal_cache.cc.o.d"
  "CMakeFiles/lmb_core.dir/clock.cc.o"
  "CMakeFiles/lmb_core.dir/clock.cc.o.d"
  "CMakeFiles/lmb_core.dir/env.cc.o"
  "CMakeFiles/lmb_core.dir/env.cc.o.d"
  "CMakeFiles/lmb_core.dir/mhz.cc.o"
  "CMakeFiles/lmb_core.dir/mhz.cc.o.d"
  "CMakeFiles/lmb_core.dir/options.cc.o"
  "CMakeFiles/lmb_core.dir/options.cc.o.d"
  "CMakeFiles/lmb_core.dir/registry.cc.o"
  "CMakeFiles/lmb_core.dir/registry.cc.o.d"
  "CMakeFiles/lmb_core.dir/run_result.cc.o"
  "CMakeFiles/lmb_core.dir/run_result.cc.o.d"
  "CMakeFiles/lmb_core.dir/stats.cc.o"
  "CMakeFiles/lmb_core.dir/stats.cc.o.d"
  "CMakeFiles/lmb_core.dir/suite_runner.cc.o"
  "CMakeFiles/lmb_core.dir/suite_runner.cc.o.d"
  "CMakeFiles/lmb_core.dir/timing.cc.o"
  "CMakeFiles/lmb_core.dir/timing.cc.o.d"
  "CMakeFiles/lmb_core.dir/topology.cc.o"
  "CMakeFiles/lmb_core.dir/topology.cc.o.d"
  "CMakeFiles/lmb_core.dir/virtual_clock.cc.o"
  "CMakeFiles/lmb_core.dir/virtual_clock.cc.o.d"
  "liblmb_core.a"
  "liblmb_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lmb_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
