
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/cal_cache.cc" "src/core/CMakeFiles/lmb_core.dir/cal_cache.cc.o" "gcc" "src/core/CMakeFiles/lmb_core.dir/cal_cache.cc.o.d"
  "/root/repo/src/core/clock.cc" "src/core/CMakeFiles/lmb_core.dir/clock.cc.o" "gcc" "src/core/CMakeFiles/lmb_core.dir/clock.cc.o.d"
  "/root/repo/src/core/env.cc" "src/core/CMakeFiles/lmb_core.dir/env.cc.o" "gcc" "src/core/CMakeFiles/lmb_core.dir/env.cc.o.d"
  "/root/repo/src/core/mhz.cc" "src/core/CMakeFiles/lmb_core.dir/mhz.cc.o" "gcc" "src/core/CMakeFiles/lmb_core.dir/mhz.cc.o.d"
  "/root/repo/src/core/options.cc" "src/core/CMakeFiles/lmb_core.dir/options.cc.o" "gcc" "src/core/CMakeFiles/lmb_core.dir/options.cc.o.d"
  "/root/repo/src/core/registry.cc" "src/core/CMakeFiles/lmb_core.dir/registry.cc.o" "gcc" "src/core/CMakeFiles/lmb_core.dir/registry.cc.o.d"
  "/root/repo/src/core/run_result.cc" "src/core/CMakeFiles/lmb_core.dir/run_result.cc.o" "gcc" "src/core/CMakeFiles/lmb_core.dir/run_result.cc.o.d"
  "/root/repo/src/core/stats.cc" "src/core/CMakeFiles/lmb_core.dir/stats.cc.o" "gcc" "src/core/CMakeFiles/lmb_core.dir/stats.cc.o.d"
  "/root/repo/src/core/suite_runner.cc" "src/core/CMakeFiles/lmb_core.dir/suite_runner.cc.o" "gcc" "src/core/CMakeFiles/lmb_core.dir/suite_runner.cc.o.d"
  "/root/repo/src/core/timing.cc" "src/core/CMakeFiles/lmb_core.dir/timing.cc.o" "gcc" "src/core/CMakeFiles/lmb_core.dir/timing.cc.o.d"
  "/root/repo/src/core/topology.cc" "src/core/CMakeFiles/lmb_core.dir/topology.cc.o" "gcc" "src/core/CMakeFiles/lmb_core.dir/topology.cc.o.d"
  "/root/repo/src/core/virtual_clock.cc" "src/core/CMakeFiles/lmb_core.dir/virtual_clock.cc.o" "gcc" "src/core/CMakeFiles/lmb_core.dir/virtual_clock.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
