# Empty compiler generated dependencies file for lmb_core.
# This may be replaced when dependencies are built.
