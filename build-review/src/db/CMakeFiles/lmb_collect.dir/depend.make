# Empty dependencies file for lmb_collect.
# This may be replaced when dependencies are built.
