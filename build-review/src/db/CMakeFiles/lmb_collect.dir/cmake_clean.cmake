file(REMOVE_RECURSE
  "CMakeFiles/lmb_collect.dir/collect.cc.o"
  "CMakeFiles/lmb_collect.dir/collect.cc.o.d"
  "liblmb_collect.a"
  "liblmb_collect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lmb_collect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
