file(REMOVE_RECURSE
  "liblmb_collect.a"
)
