# Empty compiler generated dependencies file for lmb_db.
# This may be replaced when dependencies are built.
