file(REMOVE_RECURSE
  "CMakeFiles/lmb_db.dir/baseline_store.cc.o"
  "CMakeFiles/lmb_db.dir/baseline_store.cc.o.d"
  "CMakeFiles/lmb_db.dir/cal_store.cc.o"
  "CMakeFiles/lmb_db.dir/cal_store.cc.o.d"
  "CMakeFiles/lmb_db.dir/metrics.cc.o"
  "CMakeFiles/lmb_db.dir/metrics.cc.o.d"
  "CMakeFiles/lmb_db.dir/paper_data.cc.o"
  "CMakeFiles/lmb_db.dir/paper_data.cc.o.d"
  "CMakeFiles/lmb_db.dir/result_set.cc.o"
  "CMakeFiles/lmb_db.dir/result_set.cc.o.d"
  "liblmb_db.a"
  "liblmb_db.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lmb_db.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
