file(REMOVE_RECURSE
  "liblmb_db.a"
)
