
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/db/baseline_store.cc" "src/db/CMakeFiles/lmb_db.dir/baseline_store.cc.o" "gcc" "src/db/CMakeFiles/lmb_db.dir/baseline_store.cc.o.d"
  "/root/repo/src/db/cal_store.cc" "src/db/CMakeFiles/lmb_db.dir/cal_store.cc.o" "gcc" "src/db/CMakeFiles/lmb_db.dir/cal_store.cc.o.d"
  "/root/repo/src/db/metrics.cc" "src/db/CMakeFiles/lmb_db.dir/metrics.cc.o" "gcc" "src/db/CMakeFiles/lmb_db.dir/metrics.cc.o.d"
  "/root/repo/src/db/paper_data.cc" "src/db/CMakeFiles/lmb_db.dir/paper_data.cc.o" "gcc" "src/db/CMakeFiles/lmb_db.dir/paper_data.cc.o.d"
  "/root/repo/src/db/result_set.cc" "src/db/CMakeFiles/lmb_db.dir/result_set.cc.o" "gcc" "src/db/CMakeFiles/lmb_db.dir/result_set.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/core/CMakeFiles/lmb_core.dir/DependInfo.cmake"
  "/root/repo/build-review/src/sys/CMakeFiles/lmb_sys.dir/DependInfo.cmake"
  "/root/repo/build-review/src/report/CMakeFiles/lmb_report.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
