file(REMOVE_RECURSE
  "CMakeFiles/lmb_hello.dir/hello_main.cc.o"
  "CMakeFiles/lmb_hello.dir/hello_main.cc.o.d"
  "lmb_hello"
  "lmb_hello.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lmb_hello.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
