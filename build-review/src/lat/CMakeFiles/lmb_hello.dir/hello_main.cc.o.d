src/lat/CMakeFiles/lmb_hello.dir/hello_main.cc.o: \
 /root/repo/src/lat/hello_main.cc /usr/include/stdc-predef.h \
 /usr/include/unistd.h /usr/include/features.h \
 /usr/include/features-time64.h \
 /usr/include/x86_64-linux-gnu/bits/wordsize.h \
 /usr/include/x86_64-linux-gnu/bits/timesize.h \
 /usr/include/x86_64-linux-gnu/sys/cdefs.h \
 /usr/include/x86_64-linux-gnu/bits/long-double.h \
 /usr/include/x86_64-linux-gnu/gnu/stubs.h \
 /usr/include/x86_64-linux-gnu/gnu/stubs-64.h \
 /usr/include/x86_64-linux-gnu/bits/posix_opt.h \
 /usr/include/x86_64-linux-gnu/bits/environments.h \
 /usr/include/x86_64-linux-gnu/bits/types.h \
 /usr/include/x86_64-linux-gnu/bits/typesizes.h \
 /usr/include/x86_64-linux-gnu/bits/time64.h \
 /usr/lib/gcc/x86_64-linux-gnu/12/include/stddef.h \
 /usr/include/x86_64-linux-gnu/bits/confname.h \
 /usr/include/x86_64-linux-gnu/bits/getopt_posix.h \
 /usr/include/x86_64-linux-gnu/bits/getopt_core.h \
 /usr/include/x86_64-linux-gnu/bits/unistd_ext.h \
 /usr/include/linux/close_range.h
