# Empty dependencies file for lmb_hello.
# This may be replaced when dependencies are built.
