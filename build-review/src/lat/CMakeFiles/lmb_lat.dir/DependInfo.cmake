
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/lat/lat_ctx.cc" "src/lat/CMakeFiles/lmb_lat.dir/lat_ctx.cc.o" "gcc" "src/lat/CMakeFiles/lmb_lat.dir/lat_ctx.cc.o.d"
  "/root/repo/src/lat/lat_file_ops.cc" "src/lat/CMakeFiles/lmb_lat.dir/lat_file_ops.cc.o" "gcc" "src/lat/CMakeFiles/lmb_lat.dir/lat_file_ops.cc.o.d"
  "/root/repo/src/lat/lat_fs.cc" "src/lat/CMakeFiles/lmb_lat.dir/lat_fs.cc.o" "gcc" "src/lat/CMakeFiles/lmb_lat.dir/lat_fs.cc.o.d"
  "/root/repo/src/lat/lat_ipc.cc" "src/lat/CMakeFiles/lmb_lat.dir/lat_ipc.cc.o" "gcc" "src/lat/CMakeFiles/lmb_lat.dir/lat_ipc.cc.o.d"
  "/root/repo/src/lat/lat_mem_rd.cc" "src/lat/CMakeFiles/lmb_lat.dir/lat_mem_rd.cc.o" "gcc" "src/lat/CMakeFiles/lmb_lat.dir/lat_mem_rd.cc.o.d"
  "/root/repo/src/lat/lat_ops.cc" "src/lat/CMakeFiles/lmb_lat.dir/lat_ops.cc.o" "gcc" "src/lat/CMakeFiles/lmb_lat.dir/lat_ops.cc.o.d"
  "/root/repo/src/lat/lat_pagefault.cc" "src/lat/CMakeFiles/lmb_lat.dir/lat_pagefault.cc.o" "gcc" "src/lat/CMakeFiles/lmb_lat.dir/lat_pagefault.cc.o.d"
  "/root/repo/src/lat/lat_proc.cc" "src/lat/CMakeFiles/lmb_lat.dir/lat_proc.cc.o" "gcc" "src/lat/CMakeFiles/lmb_lat.dir/lat_proc.cc.o.d"
  "/root/repo/src/lat/lat_sig.cc" "src/lat/CMakeFiles/lmb_lat.dir/lat_sig.cc.o" "gcc" "src/lat/CMakeFiles/lmb_lat.dir/lat_sig.cc.o.d"
  "/root/repo/src/lat/lat_syscall.cc" "src/lat/CMakeFiles/lmb_lat.dir/lat_syscall.cc.o" "gcc" "src/lat/CMakeFiles/lmb_lat.dir/lat_syscall.cc.o.d"
  "/root/repo/src/lat/lat_tlb.cc" "src/lat/CMakeFiles/lmb_lat.dir/lat_tlb.cc.o" "gcc" "src/lat/CMakeFiles/lmb_lat.dir/lat_tlb.cc.o.d"
  "/root/repo/src/lat/mem_hierarchy.cc" "src/lat/CMakeFiles/lmb_lat.dir/mem_hierarchy.cc.o" "gcc" "src/lat/CMakeFiles/lmb_lat.dir/mem_hierarchy.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/core/CMakeFiles/lmb_core.dir/DependInfo.cmake"
  "/root/repo/build-review/src/sys/CMakeFiles/lmb_sys.dir/DependInfo.cmake"
  "/root/repo/build-review/src/report/CMakeFiles/lmb_report.dir/DependInfo.cmake"
  "/root/repo/build-review/src/db/CMakeFiles/lmb_db.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
