# Empty compiler generated dependencies file for lmb_lat.
# This may be replaced when dependencies are built.
