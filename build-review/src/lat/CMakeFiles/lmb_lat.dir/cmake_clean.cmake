file(REMOVE_RECURSE
  "CMakeFiles/lmb_lat.dir/lat_ctx.cc.o"
  "CMakeFiles/lmb_lat.dir/lat_ctx.cc.o.d"
  "CMakeFiles/lmb_lat.dir/lat_file_ops.cc.o"
  "CMakeFiles/lmb_lat.dir/lat_file_ops.cc.o.d"
  "CMakeFiles/lmb_lat.dir/lat_fs.cc.o"
  "CMakeFiles/lmb_lat.dir/lat_fs.cc.o.d"
  "CMakeFiles/lmb_lat.dir/lat_ipc.cc.o"
  "CMakeFiles/lmb_lat.dir/lat_ipc.cc.o.d"
  "CMakeFiles/lmb_lat.dir/lat_mem_rd.cc.o"
  "CMakeFiles/lmb_lat.dir/lat_mem_rd.cc.o.d"
  "CMakeFiles/lmb_lat.dir/lat_ops.cc.o"
  "CMakeFiles/lmb_lat.dir/lat_ops.cc.o.d"
  "CMakeFiles/lmb_lat.dir/lat_pagefault.cc.o"
  "CMakeFiles/lmb_lat.dir/lat_pagefault.cc.o.d"
  "CMakeFiles/lmb_lat.dir/lat_proc.cc.o"
  "CMakeFiles/lmb_lat.dir/lat_proc.cc.o.d"
  "CMakeFiles/lmb_lat.dir/lat_sig.cc.o"
  "CMakeFiles/lmb_lat.dir/lat_sig.cc.o.d"
  "CMakeFiles/lmb_lat.dir/lat_syscall.cc.o"
  "CMakeFiles/lmb_lat.dir/lat_syscall.cc.o.d"
  "CMakeFiles/lmb_lat.dir/lat_tlb.cc.o"
  "CMakeFiles/lmb_lat.dir/lat_tlb.cc.o.d"
  "CMakeFiles/lmb_lat.dir/mem_hierarchy.cc.o"
  "CMakeFiles/lmb_lat.dir/mem_hierarchy.cc.o.d"
  "liblmb_lat.a"
  "liblmb_lat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lmb_lat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
