file(REMOVE_RECURSE
  "liblmb_lat.a"
)
