file(REMOVE_RECURSE
  "liblmb_simfs.a"
)
