file(REMOVE_RECURSE
  "CMakeFiles/lmb_simfs.dir/fs_bench.cc.o"
  "CMakeFiles/lmb_simfs.dir/fs_bench.cc.o.d"
  "CMakeFiles/lmb_simfs.dir/sim_fs.cc.o"
  "CMakeFiles/lmb_simfs.dir/sim_fs.cc.o.d"
  "liblmb_simfs.a"
  "liblmb_simfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lmb_simfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
