# Empty dependencies file for lmb_simfs.
# This may be replaced when dependencies are built.
