file(REMOVE_RECURSE
  "CMakeFiles/lmb_netsim.dir/link.cc.o"
  "CMakeFiles/lmb_netsim.dir/link.cc.o.d"
  "CMakeFiles/lmb_netsim.dir/remote.cc.o"
  "CMakeFiles/lmb_netsim.dir/remote.cc.o.d"
  "CMakeFiles/lmb_netsim.dir/simnet.cc.o"
  "CMakeFiles/lmb_netsim.dir/simnet.cc.o.d"
  "CMakeFiles/lmb_netsim.dir/stream.cc.o"
  "CMakeFiles/lmb_netsim.dir/stream.cc.o.d"
  "liblmb_netsim.a"
  "liblmb_netsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lmb_netsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
