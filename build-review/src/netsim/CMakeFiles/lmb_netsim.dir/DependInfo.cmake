
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/netsim/link.cc" "src/netsim/CMakeFiles/lmb_netsim.dir/link.cc.o" "gcc" "src/netsim/CMakeFiles/lmb_netsim.dir/link.cc.o.d"
  "/root/repo/src/netsim/remote.cc" "src/netsim/CMakeFiles/lmb_netsim.dir/remote.cc.o" "gcc" "src/netsim/CMakeFiles/lmb_netsim.dir/remote.cc.o.d"
  "/root/repo/src/netsim/simnet.cc" "src/netsim/CMakeFiles/lmb_netsim.dir/simnet.cc.o" "gcc" "src/netsim/CMakeFiles/lmb_netsim.dir/simnet.cc.o.d"
  "/root/repo/src/netsim/stream.cc" "src/netsim/CMakeFiles/lmb_netsim.dir/stream.cc.o" "gcc" "src/netsim/CMakeFiles/lmb_netsim.dir/stream.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/core/CMakeFiles/lmb_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
