# Empty compiler generated dependencies file for lmb_netsim.
# This may be replaced when dependencies are built.
