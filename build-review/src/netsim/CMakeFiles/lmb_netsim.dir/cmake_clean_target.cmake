file(REMOVE_RECURSE
  "liblmb_netsim.a"
)
