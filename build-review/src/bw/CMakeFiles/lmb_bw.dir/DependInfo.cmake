
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bw/bw_file.cc" "src/bw/CMakeFiles/lmb_bw.dir/bw_file.cc.o" "gcc" "src/bw/CMakeFiles/lmb_bw.dir/bw_file.cc.o.d"
  "/root/repo/src/bw/bw_ipc.cc" "src/bw/CMakeFiles/lmb_bw.dir/bw_ipc.cc.o" "gcc" "src/bw/CMakeFiles/lmb_bw.dir/bw_ipc.cc.o.d"
  "/root/repo/src/bw/bw_mem.cc" "src/bw/CMakeFiles/lmb_bw.dir/bw_mem.cc.o" "gcc" "src/bw/CMakeFiles/lmb_bw.dir/bw_mem.cc.o.d"
  "/root/repo/src/bw/kernels.cc" "src/bw/CMakeFiles/lmb_bw.dir/kernels.cc.o" "gcc" "src/bw/CMakeFiles/lmb_bw.dir/kernels.cc.o.d"
  "/root/repo/src/bw/parallel.cc" "src/bw/CMakeFiles/lmb_bw.dir/parallel.cc.o" "gcc" "src/bw/CMakeFiles/lmb_bw.dir/parallel.cc.o.d"
  "/root/repo/src/bw/stream.cc" "src/bw/CMakeFiles/lmb_bw.dir/stream.cc.o" "gcc" "src/bw/CMakeFiles/lmb_bw.dir/stream.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/core/CMakeFiles/lmb_core.dir/DependInfo.cmake"
  "/root/repo/build-review/src/sys/CMakeFiles/lmb_sys.dir/DependInfo.cmake"
  "/root/repo/build-review/src/report/CMakeFiles/lmb_report.dir/DependInfo.cmake"
  "/root/repo/build-review/src/db/CMakeFiles/lmb_db.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
