# Empty dependencies file for lmb_bw.
# This may be replaced when dependencies are built.
