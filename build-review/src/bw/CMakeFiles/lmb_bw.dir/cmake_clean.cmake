file(REMOVE_RECURSE
  "CMakeFiles/lmb_bw.dir/bw_file.cc.o"
  "CMakeFiles/lmb_bw.dir/bw_file.cc.o.d"
  "CMakeFiles/lmb_bw.dir/bw_ipc.cc.o"
  "CMakeFiles/lmb_bw.dir/bw_ipc.cc.o.d"
  "CMakeFiles/lmb_bw.dir/bw_mem.cc.o"
  "CMakeFiles/lmb_bw.dir/bw_mem.cc.o.d"
  "CMakeFiles/lmb_bw.dir/kernels.cc.o"
  "CMakeFiles/lmb_bw.dir/kernels.cc.o.d"
  "CMakeFiles/lmb_bw.dir/parallel.cc.o"
  "CMakeFiles/lmb_bw.dir/parallel.cc.o.d"
  "CMakeFiles/lmb_bw.dir/stream.cc.o"
  "CMakeFiles/lmb_bw.dir/stream.cc.o.d"
  "liblmb_bw.a"
  "liblmb_bw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lmb_bw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
