file(REMOVE_RECURSE
  "liblmb_bw.a"
)
