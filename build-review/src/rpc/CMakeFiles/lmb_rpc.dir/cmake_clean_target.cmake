file(REMOVE_RECURSE
  "liblmb_rpc.a"
)
