# Empty dependencies file for lmb_rpc.
# This may be replaced when dependencies are built.
