file(REMOVE_RECURSE
  "CMakeFiles/lmb_rpc.dir/client.cc.o"
  "CMakeFiles/lmb_rpc.dir/client.cc.o.d"
  "CMakeFiles/lmb_rpc.dir/lat_rpc.cc.o"
  "CMakeFiles/lmb_rpc.dir/lat_rpc.cc.o.d"
  "CMakeFiles/lmb_rpc.dir/message.cc.o"
  "CMakeFiles/lmb_rpc.dir/message.cc.o.d"
  "CMakeFiles/lmb_rpc.dir/portmap.cc.o"
  "CMakeFiles/lmb_rpc.dir/portmap.cc.o.d"
  "CMakeFiles/lmb_rpc.dir/server.cc.o"
  "CMakeFiles/lmb_rpc.dir/server.cc.o.d"
  "CMakeFiles/lmb_rpc.dir/xdr.cc.o"
  "CMakeFiles/lmb_rpc.dir/xdr.cc.o.d"
  "liblmb_rpc.a"
  "liblmb_rpc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lmb_rpc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
