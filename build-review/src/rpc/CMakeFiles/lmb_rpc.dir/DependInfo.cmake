
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rpc/client.cc" "src/rpc/CMakeFiles/lmb_rpc.dir/client.cc.o" "gcc" "src/rpc/CMakeFiles/lmb_rpc.dir/client.cc.o.d"
  "/root/repo/src/rpc/lat_rpc.cc" "src/rpc/CMakeFiles/lmb_rpc.dir/lat_rpc.cc.o" "gcc" "src/rpc/CMakeFiles/lmb_rpc.dir/lat_rpc.cc.o.d"
  "/root/repo/src/rpc/message.cc" "src/rpc/CMakeFiles/lmb_rpc.dir/message.cc.o" "gcc" "src/rpc/CMakeFiles/lmb_rpc.dir/message.cc.o.d"
  "/root/repo/src/rpc/portmap.cc" "src/rpc/CMakeFiles/lmb_rpc.dir/portmap.cc.o" "gcc" "src/rpc/CMakeFiles/lmb_rpc.dir/portmap.cc.o.d"
  "/root/repo/src/rpc/server.cc" "src/rpc/CMakeFiles/lmb_rpc.dir/server.cc.o" "gcc" "src/rpc/CMakeFiles/lmb_rpc.dir/server.cc.o.d"
  "/root/repo/src/rpc/xdr.cc" "src/rpc/CMakeFiles/lmb_rpc.dir/xdr.cc.o" "gcc" "src/rpc/CMakeFiles/lmb_rpc.dir/xdr.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/core/CMakeFiles/lmb_core.dir/DependInfo.cmake"
  "/root/repo/build-review/src/sys/CMakeFiles/lmb_sys.dir/DependInfo.cmake"
  "/root/repo/build-review/src/report/CMakeFiles/lmb_report.dir/DependInfo.cmake"
  "/root/repo/build-review/src/db/CMakeFiles/lmb_db.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
