# Empty compiler generated dependencies file for bench_table12_tcp_lat.
# This may be replaced when dependencies are built.
