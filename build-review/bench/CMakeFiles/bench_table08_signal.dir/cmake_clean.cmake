file(REMOVE_RECURSE
  "CMakeFiles/bench_table08_signal.dir/bench_table08_signal.cc.o"
  "CMakeFiles/bench_table08_signal.dir/bench_table08_signal.cc.o.d"
  "bench_table08_signal"
  "bench_table08_signal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table08_signal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
