# Empty dependencies file for bench_table16_fs.
# This may be replaced when dependencies are built.
