file(REMOVE_RECURSE
  "CMakeFiles/bench_table16_fs.dir/bench_table16_fs.cc.o"
  "CMakeFiles/bench_table16_fs.dir/bench_table16_fs.cc.o.d"
  "bench_table16_fs"
  "bench_table16_fs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table16_fs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
