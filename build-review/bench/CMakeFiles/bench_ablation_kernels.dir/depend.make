# Empty dependencies file for bench_ablation_kernels.
# This may be replaced when dependencies are built.
