file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_kernels.dir/bench_ablation_kernels.cc.o"
  "CMakeFiles/bench_ablation_kernels.dir/bench_ablation_kernels.cc.o.d"
  "bench_ablation_kernels"
  "bench_ablation_kernels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
