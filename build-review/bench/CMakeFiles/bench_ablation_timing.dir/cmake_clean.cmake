file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_timing.dir/bench_ablation_timing.cc.o"
  "CMakeFiles/bench_ablation_timing.dir/bench_ablation_timing.cc.o.d"
  "bench_ablation_timing"
  "bench_ablation_timing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_timing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
