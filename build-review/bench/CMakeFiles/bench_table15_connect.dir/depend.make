# Empty dependencies file for bench_table15_connect.
# This may be replaced when dependencies are built.
