file(REMOVE_RECURSE
  "CMakeFiles/bench_table15_connect.dir/bench_table15_connect.cc.o"
  "CMakeFiles/bench_table15_connect.dir/bench_table15_connect.cc.o.d"
  "bench_table15_connect"
  "bench_table15_connect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table15_connect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
