# Empty dependencies file for bench_table04_net_bw.
# This may be replaced when dependencies are built.
