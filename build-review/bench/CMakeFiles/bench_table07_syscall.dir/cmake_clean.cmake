file(REMOVE_RECURSE
  "CMakeFiles/bench_table07_syscall.dir/bench_table07_syscall.cc.o"
  "CMakeFiles/bench_table07_syscall.dir/bench_table07_syscall.cc.o.d"
  "bench_table07_syscall"
  "bench_table07_syscall.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table07_syscall.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
