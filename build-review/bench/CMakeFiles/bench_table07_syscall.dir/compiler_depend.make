# Empty compiler generated dependencies file for bench_table07_syscall.
# This may be replaced when dependencies are built.
