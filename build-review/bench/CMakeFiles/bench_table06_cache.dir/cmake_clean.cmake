file(REMOVE_RECURSE
  "CMakeFiles/bench_table06_cache.dir/bench_table06_cache.cc.o"
  "CMakeFiles/bench_table06_cache.dir/bench_table06_cache.cc.o.d"
  "bench_table06_cache"
  "bench_table06_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table06_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
