# Empty dependencies file for bench_table06_cache.
# This may be replaced when dependencies are built.
