# Empty compiler generated dependencies file for bench_table11_pipe_lat.
# This may be replaced when dependencies are built.
