file(REMOVE_RECURSE
  "CMakeFiles/bench_table11_pipe_lat.dir/bench_table11_pipe_lat.cc.o"
  "CMakeFiles/bench_table11_pipe_lat.dir/bench_table11_pipe_lat.cc.o.d"
  "bench_table11_pipe_lat"
  "bench_table11_pipe_lat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table11_pipe_lat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
