file(REMOVE_RECURSE
  "CMakeFiles/bench_table10_ctx.dir/bench_table10_ctx.cc.o"
  "CMakeFiles/bench_table10_ctx.dir/bench_table10_ctx.cc.o.d"
  "bench_table10_ctx"
  "bench_table10_ctx.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table10_ctx.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
