file(REMOVE_RECURSE
  "CMakeFiles/bench_table03_ipc_bw.dir/bench_table03_ipc_bw.cc.o"
  "CMakeFiles/bench_table03_ipc_bw.dir/bench_table03_ipc_bw.cc.o.d"
  "bench_table03_ipc_bw"
  "bench_table03_ipc_bw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table03_ipc_bw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
