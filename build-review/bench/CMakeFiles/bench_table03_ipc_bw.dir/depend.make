# Empty dependencies file for bench_table03_ipc_bw.
# This may be replaced when dependencies are built.
