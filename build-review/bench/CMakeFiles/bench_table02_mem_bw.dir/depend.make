# Empty dependencies file for bench_table02_mem_bw.
# This may be replaced when dependencies are built.
