# Empty dependencies file for bench_table05_file_bw.
# This may be replaced when dependencies are built.
