file(REMOVE_RECURSE
  "CMakeFiles/bench_table05_file_bw.dir/bench_table05_file_bw.cc.o"
  "CMakeFiles/bench_table05_file_bw.dir/bench_table05_file_bw.cc.o.d"
  "bench_table05_file_bw"
  "bench_table05_file_bw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table05_file_bw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
