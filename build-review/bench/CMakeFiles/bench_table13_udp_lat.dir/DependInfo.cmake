
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_table13_udp_lat.cc" "bench/CMakeFiles/bench_table13_udp_lat.dir/bench_table13_udp_lat.cc.o" "gcc" "bench/CMakeFiles/bench_table13_udp_lat.dir/bench_table13_udp_lat.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/bench/CMakeFiles/bench_util.dir/DependInfo.cmake"
  "/root/repo/build-review/src/db/CMakeFiles/lmb_collect.dir/DependInfo.cmake"
  "/root/repo/build-review/src/bw/CMakeFiles/lmb_bw.dir/DependInfo.cmake"
  "/root/repo/build-review/src/rpc/CMakeFiles/lmb_rpc.dir/DependInfo.cmake"
  "/root/repo/build-review/src/netsim/CMakeFiles/lmb_netsim.dir/DependInfo.cmake"
  "/root/repo/build-review/src/simfs/CMakeFiles/lmb_simfs.dir/DependInfo.cmake"
  "/root/repo/build-review/src/lat/CMakeFiles/lmb_lat.dir/DependInfo.cmake"
  "/root/repo/build-review/src/simdisk/CMakeFiles/lmb_simdisk.dir/DependInfo.cmake"
  "/root/repo/build-review/src/report/CMakeFiles/lmb_report.dir/DependInfo.cmake"
  "/root/repo/build-review/src/db/CMakeFiles/lmb_db.dir/DependInfo.cmake"
  "/root/repo/build-review/src/sys/CMakeFiles/lmb_sys.dir/DependInfo.cmake"
  "/root/repo/build-review/src/core/CMakeFiles/lmb_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
