# Empty compiler generated dependencies file for bench_table13_udp_lat.
# This may be replaced when dependencies are built.
