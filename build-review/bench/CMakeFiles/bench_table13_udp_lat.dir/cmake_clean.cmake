file(REMOVE_RECURSE
  "CMakeFiles/bench_table13_udp_lat.dir/bench_table13_udp_lat.cc.o"
  "CMakeFiles/bench_table13_udp_lat.dir/bench_table13_udp_lat.cc.o.d"
  "bench_table13_udp_lat"
  "bench_table13_udp_lat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table13_udp_lat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
