# Empty compiler generated dependencies file for bench_ablation_disk.
# This may be replaced when dependencies are built.
