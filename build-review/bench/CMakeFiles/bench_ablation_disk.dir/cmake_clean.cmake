file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_disk.dir/bench_ablation_disk.cc.o"
  "CMakeFiles/bench_ablation_disk.dir/bench_ablation_disk.cc.o.d"
  "bench_ablation_disk"
  "bench_ablation_disk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_disk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
