# Empty dependencies file for bench_table01_systems.
# This may be replaced when dependencies are built.
