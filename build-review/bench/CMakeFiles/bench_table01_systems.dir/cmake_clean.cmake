file(REMOVE_RECURSE
  "CMakeFiles/bench_table01_systems.dir/bench_table01_systems.cc.o"
  "CMakeFiles/bench_table01_systems.dir/bench_table01_systems.cc.o.d"
  "bench_table01_systems"
  "bench_table01_systems.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table01_systems.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
