file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_ctx.dir/bench_fig2_ctx.cc.o"
  "CMakeFiles/bench_fig2_ctx.dir/bench_fig2_ctx.cc.o.d"
  "bench_fig2_ctx"
  "bench_fig2_ctx.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_ctx.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
