# Empty dependencies file for bench_fig2_ctx.
# This may be replaced when dependencies are built.
