file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_mem_lat.dir/bench_fig1_mem_lat.cc.o"
  "CMakeFiles/bench_fig1_mem_lat.dir/bench_fig1_mem_lat.cc.o.d"
  "bench_fig1_mem_lat"
  "bench_fig1_mem_lat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_mem_lat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
