# Empty compiler generated dependencies file for bench_fig1_mem_lat.
# This may be replaced when dependencies are built.
