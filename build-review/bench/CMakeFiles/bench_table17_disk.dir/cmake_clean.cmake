file(REMOVE_RECURSE
  "CMakeFiles/bench_table17_disk.dir/bench_table17_disk.cc.o"
  "CMakeFiles/bench_table17_disk.dir/bench_table17_disk.cc.o.d"
  "bench_table17_disk"
  "bench_table17_disk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table17_disk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
