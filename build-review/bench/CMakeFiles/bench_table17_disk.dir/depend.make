# Empty dependencies file for bench_table17_disk.
# This may be replaced when dependencies are built.
