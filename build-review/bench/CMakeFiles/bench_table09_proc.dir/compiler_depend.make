# Empty compiler generated dependencies file for bench_table09_proc.
# This may be replaced when dependencies are built.
