file(REMOVE_RECURSE
  "CMakeFiles/bench_table09_proc.dir/bench_table09_proc.cc.o"
  "CMakeFiles/bench_table09_proc.dir/bench_table09_proc.cc.o.d"
  "bench_table09_proc"
  "bench_table09_proc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table09_proc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
