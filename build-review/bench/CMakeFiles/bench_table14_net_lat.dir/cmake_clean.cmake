file(REMOVE_RECURSE
  "CMakeFiles/bench_table14_net_lat.dir/bench_table14_net_lat.cc.o"
  "CMakeFiles/bench_table14_net_lat.dir/bench_table14_net_lat.cc.o.d"
  "bench_table14_net_lat"
  "bench_table14_net_lat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table14_net_lat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
