# Empty dependencies file for bench_table14_net_lat.
# This may be replaced when dependencies are built.
