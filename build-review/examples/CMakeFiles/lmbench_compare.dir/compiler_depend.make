# Empty compiler generated dependencies file for lmbench_compare.
# This may be replaced when dependencies are built.
