file(REMOVE_RECURSE
  "CMakeFiles/lmbench_compare.dir/lmbench_compare.cpp.o"
  "CMakeFiles/lmbench_compare.dir/lmbench_compare.cpp.o.d"
  "lmbench_compare"
  "lmbench_compare.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lmbench_compare.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
