file(REMOVE_RECURSE
  "CMakeFiles/lmdd.dir/lmdd.cpp.o"
  "CMakeFiles/lmdd.dir/lmdd.cpp.o.d"
  "lmdd"
  "lmdd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lmdd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
