# Empty compiler generated dependencies file for lmdd.
# This may be replaced when dependencies are built.
