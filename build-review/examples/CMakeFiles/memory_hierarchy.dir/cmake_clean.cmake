file(REMOVE_RECURSE
  "CMakeFiles/memory_hierarchy.dir/memory_hierarchy.cpp.o"
  "CMakeFiles/memory_hierarchy.dir/memory_hierarchy.cpp.o.d"
  "memory_hierarchy"
  "memory_hierarchy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memory_hierarchy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
