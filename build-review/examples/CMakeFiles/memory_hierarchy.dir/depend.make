# Empty dependencies file for memory_hierarchy.
# This may be replaced when dependencies are built.
