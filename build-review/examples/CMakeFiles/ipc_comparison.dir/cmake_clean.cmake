file(REMOVE_RECURSE
  "CMakeFiles/ipc_comparison.dir/ipc_comparison.cpp.o"
  "CMakeFiles/ipc_comparison.dir/ipc_comparison.cpp.o.d"
  "ipc_comparison"
  "ipc_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ipc_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
