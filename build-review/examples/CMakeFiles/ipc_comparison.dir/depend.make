# Empty dependencies file for ipc_comparison.
# This may be replaced when dependencies are built.
