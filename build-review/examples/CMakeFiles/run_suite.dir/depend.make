# Empty dependencies file for run_suite.
# This may be replaced when dependencies are built.
