file(REMOVE_RECURSE
  "CMakeFiles/run_suite.dir/run_suite.cpp.o"
  "CMakeFiles/run_suite.dir/run_suite.cpp.o.d"
  "run_suite"
  "run_suite.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/run_suite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
