# Empty dependencies file for report_results.
# This may be replaced when dependencies are built.
