file(REMOVE_RECURSE
  "CMakeFiles/report_results.dir/report_results.cpp.o"
  "CMakeFiles/report_results.dir/report_results.cpp.o.d"
  "report_results"
  "report_results.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/report_results.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
