file(REMOVE_RECURSE
  "CMakeFiles/bw_scaling.dir/bw_scaling.cpp.o"
  "CMakeFiles/bw_scaling.dir/bw_scaling.cpp.o.d"
  "bw_scaling"
  "bw_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bw_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
