# Empty dependencies file for bw_scaling.
# This may be replaced when dependencies are built.
