// Table 7: Simple system call time (microseconds) — 1-word write to /dev/null.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/lat/lat_syscall.h"

int main(int argc, char** argv) {
  using namespace lmb;
  Options opts = benchx::parse_options(argc, argv);
  TimingPolicy policy = opts.quick() ? TimingPolicy::quick() : TimingPolicy::standard();

  benchx::print_header("Table 7", "Simple system call time (microseconds)");
  benchx::print_config_line("repeated one-word write(2) to /dev/null");

  double us = lat::measure_null_write(policy).us_per_op();

  report::Table table("Table 7. Simple system call time (microseconds)",
                      {{"System", 0}, {"system call", 2}});
  for (const auto& row : db::paper_table7()) {
    table.add_row({row.system, row.syscall_us});
  }
  table.add_row({benchx::this_system(), us});
  table.mark_last_row("measured on this machine");
  table.sort_by(1, report::SortOrder::kAscending);
  std::printf("%s\n", table.render().c_str());

  lat::SyscallLatencies suite = lat::measure_syscall_suite(TimingPolicy::quick());
  std::printf("extensions on this machine (us): getpid %.2f, read /dev/zero %.2f, "
              "stat %.2f, open+close %.2f\n",
              suite.getpid_us, suite.read_us, suite.stat_us, suite.open_close_us);
  return 0;
}
