// Table 12: TCP latency (microseconds) — raw sockets and via the RPC layer.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/lat/lat_ipc.h"
#include "src/rpc/lat_rpc.h"

int main(int argc, char** argv) {
  using namespace lmb;
  Options opts = benchx::parse_options(argc, argv);
  bool quick = opts.quick();

  benchx::print_header("Table 12", "TCP latency (microseconds), with and without RPC");
  benchx::print_config_line("one-word echo over loopback TCP (TCP_NODELAY); RPC = XDR-marshaled "
                            "call through the mini Sun-RPC layer");

  lat::IpcLatConfig tcp_cfg = quick ? lat::IpcLatConfig::quick() : lat::IpcLatConfig{};
  double tcp_us = lat::measure_tcp_latency(tcp_cfg).us_per_op();
  rpc::RpcLatConfig rpc_cfg = quick ? rpc::RpcLatConfig::quick() : rpc::RpcLatConfig{};
  double rpc_us = rpc::measure_rpc_tcp_latency(rpc_cfg).us_per_op();

  report::Table table("Table 12. TCP latency (microseconds)",
                      {{"System", 0}, {"TCP", 0}, {"RPC/TCP", 0}});
  for (const auto& row : db::paper_table12()) {
    table.add_row({row.system, row.tcp_us, row.rpc_tcp_us});
  }
  table.add_row({benchx::this_system(), tcp_us, rpc_us});
  table.mark_last_row("measured on this machine");
  table.sort_by(2, report::SortOrder::kAscending);
  std::printf("%s\n", table.render().c_str());
  std::printf("RPC layer overhead on this machine: %.1f us per round trip\n", rpc_us - tcp_us);
  return 0;
}
