// Ablation: the timing-policy design choices of §3.4.
//
// 1. min-vs-mean: on a variance-prone benchmark (context switching, "up to
//    30%" in the paper), how much do the minimum, median and mean differ?
// 2. interval sizing: how does per-op accuracy change as the timed interval
//    shrinks toward the clock tick?
#include <cstdio>

#include "bench/bench_util.h"
#include "src/lat/lat_ipc.h"
#include "src/lat/lat_syscall.h"

int main(int argc, char** argv) {
  using namespace lmb;
  (void)benchx::parse_options(argc, argv);

  benchx::print_header("Ablation: timing policy", "min-of-N vs mean; interval sizing (§3.4)");

  ClockResolution res = probe_resolution(WallClock::instance());
  std::printf("clock: tick %lld ns, read overhead %lld ns\n\n",
              static_cast<long long>(res.tick), static_cast<long long>(res.read_overhead));

  // 1. Variability on pipe round trips.
  {
    lat::IpcLatConfig cfg;
    cfg.policy.repetitions = 15;
    cfg.policy.min_interval = 5 * kMillisecond;
    Measurement m = measure_pipe_latency(cfg);
    std::printf("pipe round trip over %d repetitions (us):\n", m.repetitions);
    std::printf("  min %.2f   median %.2f   mean %.2f   max %.2f   cv %.1f%%\n",
                m.ns_per_op / 1e3, m.median_ns_per_op / 1e3, m.mean_ns_per_op / 1e3,
                m.max_ns_per_op / 1e3, m.sample.coefficient_of_variation() * 100);
    std::printf("  -> the paper reports the MINIMUM; mean is inflated %.1f%% by "
                "scheduler/cache noise\n\n",
                (m.mean_ns_per_op / m.ns_per_op - 1) * 100);
  }

  // 2. Interval sizing on the null syscall.
  {
    std::printf("null-syscall latency vs. timed-interval length:\n");
    std::printf("  %12s  %10s  %12s  %8s\n", "interval", "us/op", "iters/interval", "cv%");
    for (Nanos interval : {100 * kMicrosecond, kMillisecond, 10 * kMillisecond,
                           100 * kMillisecond}) {
      TimingPolicy policy;
      policy.min_interval = interval;
      policy.repetitions = 7;
      Measurement m = lat::measure_null_write(policy);
      std::printf("  %9lld us  %10.3f  %12llu  %7.2f\n",
                  static_cast<long long>(interval / 1000), m.us_per_op(),
                  static_cast<unsigned long long>(m.iterations),
                  m.sample.coefficient_of_variation() * 100);
    }
    std::printf("  -> longer intervals amortize clock granularity; the paper hand-tuned\n"
                "     loops \"lasting for many clock ticks\" for exactly this reason.\n");
  }
  return 0;
}
