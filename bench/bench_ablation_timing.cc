// Ablation: the timing-policy design choices of §3.4.
//
// 1. min-vs-mean: on a variance-prone benchmark (context switching, "up to
//    30%" in the paper), how much do the minimum, median and mean differ?
// 2. interval sizing: how does per-op accuracy change as the timed interval
//    shrinks toward the clock tick?
// 3. adaptive vs fixed: full-mini-suite wall clock under the adaptive
//    engine (early stop + warm calibration cache) against the paper's
//    fixed policy, with the headline minima compared side by side.
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/core/cal_cache.h"
#include <unistd.h>

#include "src/lat/lat_ipc.h"
#include "src/lat/lat_syscall.h"
#include "src/sys/error.h"
#include "src/sys/fdio.h"
#include "src/sys/unique_fd.h"

namespace {

// A mini-suite of in-process bodies exercising distinct cost regimes.
struct MiniBench {
  const char* name;
  lmb::BenchFn fn;
};

std::vector<MiniBench> mini_suite() {
  using lmb::Nanos;
  std::vector<MiniBench> suite;
  suite.push_back({"int_add", [](std::uint64_t iters) {
                     volatile std::uint64_t acc = 0;
                     for (std::uint64_t i = 0; i < iters; ++i) {
                       acc = acc + i;
                     }
                   }});
  suite.push_back({"mem_walk", [](std::uint64_t iters) {
                     static std::vector<std::uint64_t> buf(1 << 16, 1);
                     volatile std::uint64_t sum = 0;
                     for (std::uint64_t i = 0; i < iters; ++i) {
                       sum = sum + buf[(i * 64) & (buf.size() - 1)];
                     }
                   }});
  suite.push_back({"null_write", [](std::uint64_t iters) {
                     static lmb::sys::UniqueFd fd = lmb::sys::open_write("/dev/null");
                     char word[4] = {'l', 'm', 'b', '\n'};
                     for (std::uint64_t i = 0; i < iters; ++i) {
                       if (::write(fd.get(), word, sizeof(word)) != sizeof(word)) {
                         lmb::sys::throw_errno("write /dev/null");
                       }
                     }
                   }});
  return suite;
}

// Runs every body under `policy`, optionally inside calibration scopes
// against `cache`; returns headline minima and fills `wall_ns`.
std::vector<double> run_mini_suite(const std::vector<MiniBench>& suite,
                                   const lmb::TimingPolicy& policy,
                                   lmb::CalibrationCache* cache, lmb::Nanos* wall_ns) {
  std::vector<double> minima;
  lmb::StopWatch watch;
  for (const MiniBench& bench : suite) {
    lmb::CalibrationScope scope(cache, bench.name);
    minima.push_back(lmb::measure(bench.fn, policy).ns_per_op);
  }
  *wall_ns = watch.elapsed();
  return minima;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace lmb;
  Options opts = benchx::parse_options(argc, argv);

  benchx::print_header("Ablation: timing policy", "min-of-N vs mean; interval sizing (§3.4)");

  ClockResolution res = probe_resolution(WallClock::instance());
  std::printf("clock: tick %lld ns, read overhead %lld ns\n\n",
              static_cast<long long>(res.tick), static_cast<long long>(res.read_overhead));

  // 1. Variability on pipe round trips.
  {
    lat::IpcLatConfig cfg;
    cfg.policy.repetitions = 15;
    cfg.policy.min_interval = 5 * kMillisecond;
    Measurement m = measure_pipe_latency(cfg);
    std::printf("pipe round trip over %d repetitions (us):\n", m.repetitions);
    std::printf("  min %.2f   median %.2f   mean %.2f   max %.2f   cv %.1f%%\n",
                m.ns_per_op / 1e3, m.median_ns_per_op / 1e3, m.mean_ns_per_op / 1e3,
                m.max_ns_per_op / 1e3, m.sample.coefficient_of_variation() * 100);
    std::printf("  -> the paper reports the MINIMUM; mean is inflated %.1f%% by "
                "scheduler/cache noise\n\n",
                (m.mean_ns_per_op / m.ns_per_op - 1) * 100);
  }

  // 2. Interval sizing on the null syscall.
  {
    std::printf("null-syscall latency vs. timed-interval length:\n");
    std::printf("  %12s  %10s  %12s  %8s\n", "interval", "us/op", "iters/interval", "cv%");
    for (Nanos interval : {100 * kMicrosecond, kMillisecond, 10 * kMillisecond,
                           100 * kMillisecond}) {
      TimingPolicy policy;
      policy.min_interval = interval;
      policy.repetitions = 7;
      Measurement m = lat::measure_null_write(policy);
      std::printf("  %9lld us  %10.3f  %12llu  %7.2f\n",
                  static_cast<long long>(interval / 1000), m.us_per_op(),
                  static_cast<unsigned long long>(m.iterations),
                  m.sample.coefficient_of_variation() * 100);
    }
    std::printf("  -> longer intervals amortize clock granularity; the paper hand-tuned\n"
                "     loops \"lasting for many clock ticks\" for exactly this reason.\n\n");
  }

  // 3. Adaptive engine vs the paper's fixed policy, on a mini-suite.
  {
    std::vector<MiniBench> suite = mini_suite();
    TimingPolicy fixed = TimingPolicy::fixed();
    TimingPolicy adaptive = TimingPolicy::standard();
    if (opts.quick()) {
      fixed.min_interval = adaptive.min_interval = kMillisecond;
      fixed.repetitions = adaptive.repetitions = 7;
    }

    Nanos fixed_wall = 0;
    std::vector<double> fixed_min = run_mini_suite(suite, fixed, nullptr, &fixed_wall);

    // Cold adaptive pass populates the calibration cache; the warm pass is
    // what a second suite invocation costs.
    CalibrationCache cache;
    Nanos cold_wall = 0;
    Nanos warm_wall = 0;
    run_mini_suite(suite, adaptive, &cache, &cold_wall);
    std::vector<double> warm_min = run_mini_suite(suite, adaptive, &cache, &warm_wall);

    std::printf("adaptive engine vs fixed policy (%zu-benchmark mini-suite):\n", suite.size());
    std::printf("  %-12s  %14s  %14s  %9s\n", "benchmark", "fixed ns/op", "warm ns/op",
                "delta%");
    for (size_t i = 0; i < suite.size(); ++i) {
      double delta = fixed_min[i] > 0 ? (warm_min[i] / fixed_min[i] - 1) * 100 : 0;
      std::printf("  %-12s  %14.2f  %14.2f  %8.2f%%\n", suite[i].name, fixed_min[i],
                  warm_min[i], delta);
    }
    std::printf("  suite wall clock: fixed %.0f ms, adaptive cold %.0f ms, "
                "adaptive warm %.0f ms\n",
                fixed_wall / 1e6, cold_wall / 1e6, warm_wall / 1e6);
    std::printf("  -> early stop + warm calibration cache: %.1fx faster than the fixed\n"
                "     policy, identical minima (cache hits %d / misses %d)\n",
                warm_wall > 0 ? static_cast<double>(fixed_wall) / warm_wall : 0.0,
                cache.hits(), cache.misses());
  }
  return 0;
}
