// Table 2: Memory bandwidth (MB/s) — libc bcopy, unrolled bcopy, read, write.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/bw/bw_mem.h"

int main(int argc, char** argv) {
  using namespace lmb;
  Options opts = benchx::parse_options(argc, argv);

  bw::MemBwConfig cfg;
  cfg.bytes = static_cast<size_t>(opts.get_size("size", opts.quick() ? (1 << 20) : (8 << 20)));
  if (opts.quick()) {
    cfg.policy = TimingPolicy::quick();
  }

  benchx::print_header("Table 2", "Memory bandwidth (MB/s)");
  benchx::print_config_line("copy/read/write over " + std::to_string(cfg.bytes >> 20) +
                            " MB buffers; paper rows from the embedded database");

  auto rows = bw::measure_mem_bw_all(cfg);

  report::Table table("Table 2. Memory bandwidth (MB/s)",
                      {{"System", 0}, {"Libc bcopy", 0}, {"Unrolled bcopy", 0},
                       {"Memory read", 0}, {"Memory write", 0}});
  for (const auto& row : db::paper_table2()) {
    table.add_row({row.system, benchx::cell(row.bcopy_libc), benchx::cell(row.bcopy_unrolled),
                   benchx::cell(row.mem_read), benchx::cell(row.mem_write)});
  }
  table.add_row({benchx::this_system(), rows[0].mb_per_sec, rows[1].mb_per_sec,
                 rows[2].mb_per_sec, rows[3].mb_per_sec});
  table.mark_last_row("measured on this machine");
  table.sort_by(2, report::SortOrder::kDescending);  // paper sorts on unrolled bcopy
  std::printf("%s\n", table.render().c_str());
  return 0;
}
