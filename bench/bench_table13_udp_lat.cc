// Table 13: UDP latency (microseconds) — raw sockets and via the RPC layer.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/lat/lat_ipc.h"
#include "src/rpc/lat_rpc.h"

int main(int argc, char** argv) {
  using namespace lmb;
  Options opts = benchx::parse_options(argc, argv);
  bool quick = opts.quick();

  benchx::print_header("Table 13", "UDP latency (microseconds), with and without RPC");
  benchx::print_config_line("one-word datagram echo over loopback UDP; RPC = mini Sun-RPC layer");

  lat::IpcLatConfig udp_cfg = quick ? lat::IpcLatConfig::quick() : lat::IpcLatConfig{};
  double udp_us = lat::measure_udp_latency(udp_cfg).us_per_op();
  rpc::RpcLatConfig rpc_cfg = quick ? rpc::RpcLatConfig::quick() : rpc::RpcLatConfig{};
  double rpc_us = rpc::measure_rpc_udp_latency(rpc_cfg).us_per_op();

  report::Table table("Table 13. UDP latency (microseconds)",
                      {{"System", 0}, {"UDP", 0}, {"RPC/UDP", 0}});
  for (const auto& row : db::paper_table13()) {
    table.add_row({row.system, row.udp_us, row.rpc_udp_us});
  }
  table.add_row({benchx::this_system(), udp_us, rpc_us});
  table.mark_last_row("measured on this machine");
  table.sort_by(2, report::SortOrder::kAscending);
  std::printf("%s\n", table.render().c_str());
  std::printf("RPC layer overhead on this machine: %.1f us per round trip\n", rpc_us - udp_us);
  return 0;
}
