// Ablation: disk-model design choices behind Table 17 and lmdd.
//
//  * track read-ahead buffer: sequential 512B reads with vs. without it
//    (without = every read pays rotation + media);
//  * request size sweep: ops/s and MB/s as the transfer grows;
//  * sequential vs. random lmdd on the simulated disk (the paper's
//    "20-80 ops/second under database load" regime).
#include <cstdio>

#include "bench/bench_util.h"
#include "src/core/virtual_clock.h"
#include "src/simdisk/lmdd.h"
#include "src/simdisk/sim_disk.h"
#include "src/simfs/sim_fs.h"

namespace {

using namespace lmb;

// Average simulated service time of `n` sequential reads of `bytes`.
double avg_read_us(simdisk::SimDisk& disk, VirtualClock& clock, std::uint32_t bytes, int n) {
  std::vector<char> buf(bytes);
  Nanos start = clock.now();
  std::uint64_t offset = 0;
  for (int i = 0; i < n; ++i) {
    offset += disk.read(offset, buf.data(), buf.size());
  }
  return static_cast<double>(clock.now() - start) / n / 1e3;
}

}  // namespace

int main(int argc, char** argv) {
  (void)benchx::parse_options(argc, argv);
  benchx::print_header("Ablation: disk model", "track buffer, request size, access pattern");

  simdisk::DiskGeometry geometry;
  simdisk::DiskTimingParams timing;

  // 1. Track buffer on vs. "off" (emulated by a buffer-busting stride that
  //    jumps a full track per read, so no read ever hits the buffer).
  {
    VirtualClock clock;
    simdisk::SimDisk disk(geometry, timing, clock);
    double with_buffer = avg_read_us(disk, clock, 512, 512);

    VirtualClock clock2;
    simdisk::SimDisk disk2(geometry, timing, clock2);
    std::vector<char> buf(512);
    Nanos start = clock2.now();
    int n = 128;
    for (int i = 0; i < n; ++i) {
      // One read per track: every request is a media access.
      disk2.read(static_cast<std::uint64_t>(i) * geometry.track_bytes(), buf.data(), 512);
    }
    double without_buffer = static_cast<double>(clock2.now() - start) / n / 1e3;
    std::printf("sequential 512B reads, device service time per op:\n");
    std::printf("  track buffer hit : %8.1f us\n", with_buffer);
    std::printf("  buffer miss      : %8.1f us  (%.0fx slower)\n\n", without_buffer,
                without_buffer / with_buffer);
  }

  // 2. Request-size sweep.
  {
    std::printf("sequential read request-size sweep (device time):\n  %8s  %10s  %10s\n",
                "size", "us/op", "MB/s");
    for (std::uint32_t size : {512u, 4096u, 65536u, 1048576u}) {
      VirtualClock clock;
      simdisk::SimDisk disk(geometry, timing, clock);
      int n = static_cast<int>(std::min<std::uint64_t>(256, disk.size_bytes() / size));
      double us = avg_read_us(disk, clock, size, n);
      std::printf("  %7uK  %10.1f  %10.2f\n", size >> 10, us,
                  static_cast<double>(size) / (us * 1e-6) / (1024.0 * 1024.0));
    }
    std::printf("\n");
  }

  // 2b. Zoned-bit recording: sequential read rate, outer vs inner tracks.
  {
    simdisk::DiskTimingParams zoned = timing;
    zoned.inner_media_mb_per_sec = 3.0;
    for (bool inner : {false, true}) {
      VirtualClock clock;
      simdisk::SimDisk disk(geometry, zoned, clock);
      std::uint64_t base = inner ? disk.size_bytes() - 64 * geometry.track_bytes() : 0;
      std::vector<char> buf(static_cast<size_t>(geometry.track_bytes()));
      Nanos start = clock.now();
      for (int i = 0; i < 64; ++i) {
        disk.read(base + static_cast<std::uint64_t>(i) * geometry.track_bytes(), buf.data(),
                  buf.size());
      }
      double secs = static_cast<double>(clock.now() - start) / 1e9;
      std::printf("zoned-bit recording, %s tracks: %6.2f MB/s sequential\n",
                  inner ? "inner" : "outer",
                  64.0 * static_cast<double>(geometry.track_bytes()) / (1 << 20) / secs);
    }
    std::printf("-> outer zones stream faster (more sectors per revolution), like the\n"
                "   period drives the paper measured.\n\n");
  }

  // 2c. Write-behind cache: burst of 4KB writes, cached vs write-through.
  {
    for (std::uint64_t cache : {std::uint64_t{0}, std::uint64_t{1} << 20}) {
      VirtualClock clock;
      simdisk::DiskTimingParams t = timing;
      t.write_cache_bytes = cache;
      simdisk::SimDisk disk(geometry, t, clock);
      std::vector<char> buf(4096, 'w');
      Nanos start = clock.now();
      for (int i = 0; i < 64; ++i) {
        disk.write(static_cast<std::uint64_t>(i) * 4096, buf.data(), buf.size());
      }
      double us_per_op = static_cast<double>(clock.now() - start) / 64 / 1e3;
      std::printf("64x4KB write burst, %-13s: %8.1f us/op\n",
                  cache == 0 ? "write-through" : "1MB cache", us_per_op);
    }
    std::printf("\n");
  }

  // 3. lmdd sequential vs. random (8KB blocks, the database regime).
  {
    for (auto pattern : {simdisk::AccessPattern::kSequential, simdisk::AccessPattern::kRandom}) {
      VirtualClock clock;
      simdisk::SimDisk disk(geometry, timing, clock);
      simdisk::LmddConfig cfg;
      cfg.block_bytes = 8192;
      cfg.count = 1024;
      cfg.generate_pattern = true;
      cfg.pattern = simdisk::AccessPattern::kSequential;
      simdisk::lmdd_run(nullptr, &disk, cfg, clock);

      simdisk::LmddConfig read_cfg;
      read_cfg.block_bytes = 8192;
      read_cfg.count = 1024;
      read_cfg.pattern = pattern;
      simdisk::LmddResult r = simdisk::lmdd_run(&disk, nullptr, read_cfg, clock);
      double ops_per_sec = 1e9 * r.blocks_moved / static_cast<double>(r.elapsed);
      std::printf("lmdd 8KB %s read: %7.2f MB/s, %6.0f ops/s\n",
                  pattern == simdisk::AccessPattern::kSequential ? "sequential" : "random    ",
                  r.mb_per_sec, ops_per_sec);
    }
    std::printf("-> random lands in the paper's \"disks under database load typically run\n"
                "   at 20-80 operations per second\" regime; sequential rides the buffer.\n");
  }

  // 4. Filesystem tax: writing 4KB files through SimFs (create + data +
  //    metadata discipline) vs raw sequential device writes of the same
  //    bytes — the cost §6.8 attributes to directory integrity.
  {
    std::printf("\nwriting 64 x 4KB through the filesystem vs raw device:\n");
    for (auto mode : {simfs::DurabilityMode::kAsync, simfs::DurabilityMode::kSync}) {
      VirtualClock clock;
      simdisk::SimDisk disk(geometry, timing, clock);
      simfs::SimFileSystem fs(disk, mode);
      std::vector<char> buf(4096, 'f');
      Nanos start = clock.now();
      for (int i = 0; i < 64; ++i) {
        std::string name = "f" + std::to_string(i);
        fs.create(name);
        fs.write_data(name, 0, buf.data(), buf.size());
      }
      std::printf("  SimFs %-9s: %8.1f us per file\n", simfs::durability_mode_name(mode),
                  static_cast<double>(clock.now() - start) / 64 / 1e3);
    }
    VirtualClock clock;
    simdisk::SimDisk disk(geometry, timing, clock);
    std::vector<char> buf(4096, 'f');
    Nanos start = clock.now();
    for (int i = 0; i < 64; ++i) {
      disk.write(static_cast<std::uint64_t>(i) * 4096, buf.data(), buf.size());
    }
    std::printf("  raw device     : %8.1f us per 4KB write\n",
                static_cast<double>(clock.now() - start) / 64 / 1e3);
    std::printf("-> synchronous metadata multiplies the per-file cost; async filesystems\n"
                "   pay only the data writes (Table 16's story, seen from the write path).\n");
  }
  return 0;
}
