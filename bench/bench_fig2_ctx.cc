// Figure 2: Context switch time vs. number of processes, one series per
// cache footprint, overhead-subtracted.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/lat/lat_ctx.h"
#include "src/report/plot.h"

int main(int argc, char** argv) {
  using namespace lmb;
  Options opts = benchx::parse_options(argc, argv);

  std::vector<int> procs = {2, 4, 8, 12, 16, 20};
  std::vector<size_t> sizes = {0, 4u << 10, 16u << 10, 32u << 10, 64u << 10};
  lat::CtxConfig base = opts.quick() ? lat::CtxConfig::quick() : lat::CtxConfig{};
  if (!opts.quick()) {
    base.token_passes = 1000;
    base.repetitions = 3;
  }
  if (opts.quick()) {
    procs = {2, 4, 8};
    sizes = {0, 16u << 10};
  }

  benchx::print_header("Figure 2", "Context switch times vs. ring size, per footprint");
  benchx::print_config_line("pipe-ring token passing; per-hop pipe+sum overhead measured in one "
                            "process and subtracted (paper §6.6)");

  auto results = lat::sweep_ctx(procs, sizes, base);

  report::Plot plot("Figure 2. Context switch times (this machine)", "processes",
                    "context switch time (us)");
  plot.set_size(60, 18);
  for (size_t size : sizes) {
    report::Series series;
    double overhead = 0;
    for (const auto& r : results) {
      if (r.footprint_bytes == size) {
        series.points.push_back({static_cast<double>(r.processes), r.ctx_us});
        overhead = r.overhead_us;
      }
    }
    char label[64];
    std::snprintf(label, sizeof(label), "size=%zuKB overhead=%.0f", size >> 10, overhead);
    series.label = label;
    plot.add_series(std::move(series));
  }
  std::printf("%s\n", plot.render().c_str());

  std::printf("Raw context switch times (us, overhead subtracted):\n  procs");
  for (size_t size : sizes) {
    std::printf("  %4zuKB", size >> 10);
  }
  std::printf("\n");
  for (int p : procs) {
    std::printf("  %5d", p);
    for (size_t size : sizes) {
      for (const auto& r : results) {
        if (r.processes == p && r.footprint_bytes == size) {
          std::printf("  %6.1f", r.ctx_us);
        }
      }
    }
    std::printf("\n");
  }
  std::printf("\nPaper reference (Linux/i686 Pentium Pro, Figure 2): times cluster low until\n"
              "the total working set exceeds the 256K L2 cache (~.25M), then rise sharply.\n");
  return 0;
}
