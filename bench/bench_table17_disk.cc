// Table 17: SCSI I/O overhead (microseconds) — sequential 512-byte raw reads
// hitting the drive's track buffer, against the SimDisk substitute.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/simdisk/disk_overhead.h"

int main(int argc, char** argv) {
  using namespace lmb;
  Options opts = benchx::parse_options(argc, argv);
  simdisk::DiskOverheadConfig cfg =
      opts.quick() ? simdisk::DiskOverheadConfig::quick() : simdisk::DiskOverheadConfig{};

  benchx::print_header("Table 17", "SCSI I/O overhead (microseconds) — simulated disk");
  benchx::print_config_line(std::to_string(cfg.requests) +
                            " sequential 512B reads; disk model: 7200rpm, 64KB tracks, "
                            "6MB/s media, 10MB/s bus, track read-ahead buffer");

  simdisk::DiskOverheadResult r = simdisk::measure_disk_overhead(cfg);

  report::Table table("Table 17. SCSI I/O overhead (microseconds)",
                      {{"System", 0}, {"Disk latency", 2}});
  for (const auto& row : db::paper_table17()) {
    table.add_row({row.system, row.overhead_us});
  }
  // The paper's number is the host's per-request software overhead; our
  // request-issue path is a user-space call into the disk model, so the
  // magnitude is far smaller — the structure (buffer hits, CPU-bound ceiling)
  // is what reproduces.
  table.add_row({benchx::this_system(), r.host_us_per_op});
  table.mark_last_row("host overhead per request (user-space path)");
  table.sort_by(1, report::SortOrder::kAscending);
  std::printf("%s\n", table.render().c_str());

  std::printf("track-buffer hit rate: %.1f%% (paper premise: sequential 512B reads are\n"
              "served from the drive's 32-128KB read-ahead buffer)\n",
              r.buffer_hit_rate * 100);
  std::printf("modeled device service time: %.1f us/op; CPU-bound ceiling: %.0f ops/s\n"
              "(paper: \"possible to generate loads of more than 1,000 SCSI ops/second\")\n",
              r.device_us_per_op, r.max_ops_per_sec);
  return 0;
}
