// Table 3: Pipe and local TCP bandwidth (MB/s).
#include <cstdio>

#include "bench/bench_util.h"
#include "src/bw/bw_ipc.h"
#include "src/bw/bw_mem.h"

int main(int argc, char** argv) {
  using namespace lmb;
  Options opts = benchx::parse_options(argc, argv);
  bool quick = opts.quick();

  benchx::print_header("Table 3", "Pipe and local TCP bandwidth (MB/s)");
  benchx::print_config_line(
      "pipe: 50MB in 64KB transfers; TCP: loopback, 1MB transfers, 1MB socket buffers");

  bw::MemBwConfig mem_cfg;
  mem_cfg.bytes = quick ? (1 << 20) : (8 << 20);
  if (quick) {
    mem_cfg.policy = TimingPolicy::quick();
  }
  double libc_mb = bw::measure_mem_bw(bw::MemOp::kCopyLibc, mem_cfg).mb_per_sec;

  bw::IpcBwConfig pipe_cfg = quick ? bw::IpcBwConfig::quick() : bw::IpcBwConfig::pipe_default();
  double pipe_mb = bw::measure_pipe_bw(pipe_cfg).mb_per_sec;

  bw::IpcBwConfig tcp_cfg = bw::IpcBwConfig::tcp_default();
  if (quick) {
    tcp_cfg.total_bytes = 4u << 20;
    tcp_cfg.repetitions = 2;
  }
  double tcp_mb = bw::measure_tcp_bw(tcp_cfg).mb_per_sec;

  // Extension: lmbench's bw_unix (AF_UNIX pair), printed after the table.
  double unix_mb = bw::measure_unix_bw(pipe_cfg).mb_per_sec;

  report::Table table("Table 3. Pipe and local TCP bandwidth (MB/s)",
                      {{"System", 0}, {"Libc bcopy", 0}, {"pipe", 0}, {"TCP", 0}});
  for (const auto& row : db::paper_table3()) {
    table.add_row(
        {row.system, benchx::cell(row.bcopy_libc), benchx::cell(row.pipe), benchx::cell(row.tcp)});
  }
  table.add_row({benchx::this_system(), libc_mb, pipe_mb, tcp_mb});
  table.mark_last_row("measured on this machine");
  table.sort_by(2, report::SortOrder::kDescending);
  std::printf("%s\n", table.render().c_str());
  std::printf("AF_UNIX stream bandwidth on this machine: %.0f MB/s\n", unix_mb);
  return 0;
}
