// Table 10: Context switch time (microseconds) for {2,8} processes x {0,32K}.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/lat/lat_ctx.h"

int main(int argc, char** argv) {
  using namespace lmb;
  Options opts = benchx::parse_options(argc, argv);
  lat::CtxConfig base = opts.quick() ? lat::CtxConfig::quick() : lat::CtxConfig{};

  benchx::print_header("Table 10", "Context switch time (microseconds)");
  benchx::print_config_line("pipe ring, overhead subtracted; 2 and 8 processes, 0KB and 32KB "
                            "footprints");

  auto results = lat::sweep_ctx({2, 8}, {0, 32u << 10}, base);
  auto value = [&](int procs, size_t size) {
    for (const auto& r : results) {
      if (r.processes == procs && r.footprint_bytes == size) {
        return r.ctx_us;
      }
    }
    return -1.0;
  };

  report::Table table("Table 10. Context switch time (microseconds)",
                      {{"System", 0}, {"2proc/0KB", 1}, {"2proc/32KB", 1}, {"8proc/0KB", 1},
                       {"8proc/32KB", 1}});
  for (const auto& row : db::paper_table10()) {
    table.add_row({row.system, row.p2_0k, row.p2_32k, row.p8_0k, row.p8_32k});
  }
  table.add_row({benchx::this_system(), value(2, 0), value(2, 32u << 10), value(8, 0),
                 value(8, 32u << 10)});
  table.mark_last_row("measured on this machine");
  table.sort_by(1, report::SortOrder::kAscending);
  std::printf("%s\n", table.render().c_str());
  return 0;
}
