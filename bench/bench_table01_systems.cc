// Table 1: System descriptions — the embedded database plus this machine.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/core/mhz.h"

int main(int argc, char** argv) {
  using namespace lmb;
  (void)benchx::parse_options(argc, argv);

  benchx::print_header("Table 1", "System descriptions");
  benchx::print_config_line("the paper's 15 systems (1992-95) plus the host this build ran on");

  report::Table table("Table 1. System descriptions",
                      {{"Name", 0}, {"Vendor & model", 0}, {"Multi/Uni", 0}, {"OS", 0},
                       {"CPU", 0}, {"Mhz", 0}, {"Year", 0}, {"SPECInt92", 0}, {"List price", 0}});
  for (const auto& row : db::paper_table1()) {
    table.add_row({row.name, row.vendor, std::string(row.multiprocessor ? "MP" : "Uni"), row.os,
                   row.cpu, static_cast<double>(row.mhz), static_cast<double>(row.year),
                   row.specint92, row.list_price});
  }

  SystemInfo info = query_system_info();
  CpuClock cpu = estimate_cpu_clock(TimingPolicy::quick());
  table.add_row({info.label(), info.cpu_model.empty() ? std::string("unknown") : info.cpu_model,
                 std::string(info.cpu_count > 1 ? "MP" : "Uni"),
                 info.os_name + " " + info.os_release, info.machine, cpu.mhz, 2026.0,
                 report::Cell{}, std::string("n/a")});
  table.mark_last_row("this machine");
  std::printf("%s\n", table.render().c_str());
  std::printf("host: %d cpu(s), %lld MB RAM, page size %lld\n", info.cpu_count,
              static_cast<long long>(info.phys_mem_bytes >> 20),
              static_cast<long long>(info.page_size));
  return 0;
}
