// Table 9: Process creation time (milliseconds) — fork, fork+exec, fork+sh.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/lat/lat_proc.h"

int main(int argc, char** argv) {
  using namespace lmb;
  Options opts = benchx::parse_options(argc, argv);

  lat::ProcConfig cfg = opts.quick() ? lat::ProcConfig::quick() : lat::ProcConfig{};
  cfg.exec_path = opts.get_string("exec", cfg.exec_path);

  benchx::print_header("Table 9", "Process creation time (milliseconds)");
  benchx::print_config_line("child program: " +
                            (cfg.exec_path.empty() ? lat::default_hello_path() : cfg.exec_path) +
                            "; minimum of " + std::to_string(cfg.iterations) + " creations");

  lat::ProcResult r = lat::measure_proc_suite(cfg);

  report::Table table("Table 9. Process creation time (milliseconds)",
                      {{"System", 0}, {"fork & exit", 1}, {"fork, exec & exit", 1},
                       {"fork, exec sh -c & exit", 1}});
  for (const auto& row : db::paper_table9()) {
    table.add_row({row.system, row.fork_ms, row.fork_exec_ms, row.fork_sh_ms});
  }
  table.add_row({benchx::this_system(), r.fork_exit_ms, r.fork_exec_ms, r.fork_sh_ms});
  table.mark_last_row("measured on this machine");
  table.sort_by(2, report::SortOrder::kAscending);
  std::printf("%s\n", table.render().c_str());
  return 0;
}
