// Table 5: File vs. memory bandwidth (MB/s) — libc bcopy, file read, mmap.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/bw/bw_file.h"
#include "src/bw/bw_mem.h"

int main(int argc, char** argv) {
  using namespace lmb;
  Options opts = benchx::parse_options(argc, argv);
  bool quick = opts.quick();

  benchx::print_header("Table 5", "File vs. memory bandwidth (MB/s)");
  benchx::print_config_line("8MB file reread in 64KB buffers (read+sum) and whole-file mmap+sum");

  bw::MemBwConfig mem_cfg;
  mem_cfg.bytes = quick ? (1 << 20) : (8 << 20);
  if (quick) {
    mem_cfg.policy = TimingPolicy::quick();
  }
  double libc_mb = bw::measure_mem_bw(bw::MemOp::kCopyLibc, mem_cfg).mb_per_sec;
  double mem_read_mb = bw::measure_mem_bw(bw::MemOp::kReadSum, mem_cfg).mb_per_sec;

  bw::FileBwConfig file_cfg = quick ? bw::FileBwConfig::quick() : bw::FileBwConfig{};
  double file_read_mb = bw::measure_file_read_bw(file_cfg).mb_per_sec;
  double file_mmap_mb = bw::measure_mmap_read_bw(file_cfg).mb_per_sec;

  report::Table table("Table 5. File vs. memory bandwidth (MB/s)",
                      {{"System", 0}, {"Libc bcopy", 0}, {"File read", 0}, {"File mmap", 0},
                       {"Memory read", 0}});
  for (const auto& row : db::paper_table5()) {
    table.add_row({row.system, benchx::cell(row.bcopy_libc), benchx::cell(row.file_read),
                   benchx::cell(row.file_mmap), benchx::cell(row.mem_read)});
  }
  table.add_row({benchx::this_system(), libc_mb, file_read_mb, file_mmap_mb, mem_read_mb});
  table.mark_last_row("measured on this machine");
  table.sort_by(2, report::SortOrder::kDescending);
  std::printf("%s\n", table.render().c_str());
  return 0;
}
