// Table 8: Signal times (microseconds) — sigaction install and handler catch.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/lat/lat_sig.h"

int main(int argc, char** argv) {
  using namespace lmb;
  Options opts = benchx::parse_options(argc, argv);
  TimingPolicy policy = opts.quick() ? TimingPolicy::quick() : TimingPolicy::standard();

  benchx::print_header("Table 8", "Signal times (microseconds)");
  benchx::print_config_line("sigaction install loop; self-signal catch loop (no context switch)");

  double install_us = lat::measure_signal_install(policy).us_per_op();
  double catch_us = lat::measure_signal_catch(policy).us_per_op();

  report::Table table("Table 8. Signal times (microseconds)",
                      {{"System", 0}, {"sigaction", 2}, {"sig handler", 2}});
  for (const auto& row : db::paper_table8()) {
    table.add_row({row.system, row.sigaction_us, row.handler_us});
  }
  table.add_row({benchx::this_system(), install_us, catch_us});
  table.mark_last_row("measured on this machine");
  table.sort_by(2, report::SortOrder::kAscending);
  std::printf("%s\n", table.render().c_str());
  return 0;
}
