#include "bench/bench_util.h"

#include <cstdio>

namespace lmb::benchx {

void print_header(const std::string& experiment, const std::string& description) {
  std::printf("==============================================================\n");
  std::printf("%s — %s\n", experiment.c_str(), description.c_str());
  std::printf("lmbench++ reproduction of McVoy & Staelin, USENIX '96\n");
  std::printf("==============================================================\n");
}

void print_config_line(const std::string& text) { std::printf("config: %s\n\n", text.c_str()); }

}  // namespace lmb::benchx
