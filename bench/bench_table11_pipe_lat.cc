// Table 11: Pipe latency (microseconds) — one-word round trip.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/lat/lat_ipc.h"

int main(int argc, char** argv) {
  using namespace lmb;
  Options opts = benchx::parse_options(argc, argv);
  lat::IpcLatConfig cfg = opts.quick() ? lat::IpcLatConfig::quick() : lat::IpcLatConfig{};

  benchx::print_header("Table 11", "Pipe latency (microseconds)");
  benchx::print_config_line("one-word hot-potato between two processes over a pair of pipes");

  double pipe_us = lat::measure_pipe_latency(cfg).us_per_op();
  double unix_us = lat::measure_unix_latency(cfg).us_per_op();

  report::Table table("Table 11. Pipe latency (microseconds)",
                      {{"System", 0}, {"Pipe latency", 1}});
  for (const auto& row : db::paper_table11()) {
    table.add_row({row.system, row.pipe_us});
  }
  table.add_row({benchx::this_system(), pipe_us});
  table.mark_last_row("measured on this machine");
  table.sort_by(1, report::SortOrder::kAscending);
  std::printf("%s\n", table.render().c_str());
  std::printf("AF_UNIX round trip on this machine: %.1f us\n", unix_us);
  return 0;
}
