// Ablation: raw kernel micro-costs under google-benchmark.
//
// Design choices this probes:
//  * libc memcpy vs. the paper's hand-unrolled word copy, across sizes that
//    land in L1 / L2 / memory (§5.1's cache-sizing discussion);
//  * read-sum vs. write cost asymmetry (the Pentium-Pro effect of Table 2);
//  * pointer-chase cost: stride order vs. randomized order (prefetch defeat).
#include <benchmark/benchmark.h>

#include <cstring>
#include <vector>

#include "src/bw/kernels.h"
#include "src/lat/lat_mem_rd.h"
#include "src/sys/mapped_file.h"

namespace {

using lmb::bw::copy_libc;
using lmb::bw::copy_unrolled;
using lmb::bw::read_sum_unrolled;
using lmb::bw::write_unrolled;

void BM_CopyLibc(benchmark::State& state) {
  size_t words = static_cast<size_t>(state.range(0)) / 8;
  std::vector<std::uint64_t> src(words, 1), dst(words, 0);
  for (auto _ : state) {
    copy_libc(dst.data(), src.data(), words);
    benchmark::DoNotOptimize(dst.data());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_CopyLibc)->Arg(16 << 10)->Arg(256 << 10)->Arg(8 << 20);

void BM_CopyUnrolled(benchmark::State& state) {
  size_t words = static_cast<size_t>(state.range(0)) / 8;
  words -= words % lmb::bw::kUnrollWords;
  std::vector<std::uint64_t> src(words, 1), dst(words, 0);
  for (auto _ : state) {
    copy_unrolled(dst.data(), src.data(), words);
    benchmark::DoNotOptimize(dst.data());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(words * 8));
}
BENCHMARK(BM_CopyUnrolled)->Arg(16 << 10)->Arg(256 << 10)->Arg(8 << 20);

void BM_ReadSum(benchmark::State& state) {
  size_t words = static_cast<size_t>(state.range(0)) / 8;
  words -= words % lmb::bw::kUnrollWords;
  std::vector<std::uint64_t> src(words, 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(read_sum_unrolled(src.data(), words));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(words * 8));
}
BENCHMARK(BM_ReadSum)->Arg(16 << 10)->Arg(8 << 20);

void BM_Write(benchmark::State& state) {
  size_t words = static_cast<size_t>(state.range(0)) / 8;
  words -= words % lmb::bw::kUnrollWords;
  std::vector<std::uint64_t> dst(words, 0);
  for (auto _ : state) {
    write_unrolled(dst.data(), words, 42);
    benchmark::DoNotOptimize(dst.data());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(words * 8));
}
BENCHMARK(BM_Write)->Arg(16 << 10)->Arg(8 << 20);

void chase_benchmark(benchmark::State& state, lmb::lat::ChaseOrder order) {
  size_t bytes = static_cast<size_t>(state.range(0));
  size_t stride = 64;
  size_t slots = bytes / stride;
  lmb::sys::AnonMapping region(bytes);
  auto next = lmb::lat::build_chain(slots, order);
  char* base = region.data();
  for (size_t i = 0; i < slots; ++i) {
    *reinterpret_cast<void**>(base + i * stride) = base + next[i] * stride;
  }
  void** start = reinterpret_cast<void**>(base);
  for (auto _ : state) {
    benchmark::DoNotOptimize(lmb::lat::chase(start, 10000));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 10000);
}

void BM_ChaseStrideOrder(benchmark::State& state) {
  chase_benchmark(state, lmb::lat::ChaseOrder::kStrideBackward);
}
BENCHMARK(BM_ChaseStrideOrder)->Arg(16 << 10)->Arg(16 << 20);

void BM_ChaseRandomOrder(benchmark::State& state) {
  chase_benchmark(state, lmb::lat::ChaseOrder::kRandom);
}
BENCHMARK(BM_ChaseRandomOrder)->Arg(16 << 10)->Arg(16 << 20);

}  // namespace

BENCHMARK_MAIN();
