// Table 15: TCP connect latency (microseconds) — fastest of 20 connects.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/lat/lat_ipc.h"
#include "src/netsim/remote.h"

int main(int argc, char** argv) {
  using namespace lmb;
  Options opts = benchx::parse_options(argc, argv);

  lat::ConnectConfig cfg;
  cfg.connects = static_cast<int>(opts.get_int("n", 20));

  benchx::print_header("Table 15", "TCP connect latency (microseconds)");
  benchx::print_config_line("repeated connect()+close() to a loopback listener; fastest of " +
                            std::to_string(cfg.connects) + " reported (paper methodology)");

  double connect_us = lat::measure_tcp_connect(cfg).us_per_op();

  report::Table table("Table 15. TCP connect latency (microseconds)",
                      {{"System", 0}, {"TCP connection", 0}});
  for (const auto& row : db::paper_table15()) {
    table.add_row({row.system, row.connect_us});
  }
  table.add_row({benchx::this_system(), connect_us});
  table.mark_last_row("measured on this machine");
  table.sort_by(1, report::SortOrder::kAscending);
  std::printf("%s\n", table.render().c_str());

  // The paper's UDP-vs-TCP exchange comparison over 10Mbit ethernet.
  netsim::HostCosts hosts = netsim::HostCosts::from_loopback(2 * connect_us, connect_us, 0.0);
  double remote_connect =
      netsim::model_remote_connect_us(netsim::LinkProfile::ethernet_10baseT(), hosts);
  std::printf("modeled remote connect over 10baseT: %.0f us (paper: connection cost is a\n"
              "substantial fraction of a short-lived TCP exchange)\n",
              remote_connect);
  return 0;
}
