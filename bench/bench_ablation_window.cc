// Ablation: socket-buffer (window) sizing for TCP bandwidth.
//
// §5.2: "the send and receive socket buffers are enlarged to 1M ... setting
// the transfer size equal to the socket buffer size produces the greatest
// throughput."  Shown two ways: live loopback TCP with varying buffers, and
// the netsim sliding-window stream where throughput = min(wire, window/RTT).
#include <cstdio>

#include "bench/bench_util.h"
#include "src/bw/bw_ipc.h"
#include "src/netsim/stream.h"

int main(int argc, char** argv) {
  using namespace lmb;
  Options opts = benchx::parse_options(argc, argv);

  benchx::print_header("Ablation: window sizing", "socket buffers / in-flight window vs. "
                                                  "throughput");

  std::printf("live loopback TCP (total 8MB):\n  %10s  %10s\n", "buffer", "MB/s");
  for (int buffer : {16 << 10, 64 << 10, 256 << 10, 1 << 20}) {
    bw::IpcBwConfig cfg = bw::IpcBwConfig::tcp_default();
    cfg.total_bytes = opts.quick() ? (2u << 20) : (8u << 20);
    cfg.chunk_bytes = static_cast<size_t>(buffer);
    cfg.socket_buffer_bytes = buffer;
    cfg.repetitions = 2;
    std::printf("  %9dK  %10.0f\n", buffer >> 10, bw::measure_tcp_bw(cfg).mb_per_sec);
  }

  std::printf("\nsimulated 100baseT stream (8MB, 50us per-segment host cost):\n"
              "  %10s  %10s  %14s\n", "window", "MB/s", "wire ceiling");
  for (std::uint64_t window : {8u << 10, 32u << 10, 128u << 10, 1u << 20}) {
    netsim::LinkProfile link = netsim::LinkProfile::ethernet_100baseT();
    netsim::StreamConfig cfg;
    cfg.total_bytes = 8u << 20;
    cfg.window_bytes = window;
    cfg.per_segment_cost = 50 * kMicrosecond;
    netsim::StreamResult r = netsim::simulate_stream_transfer(link, cfg);
    std::printf("  %9lluK  %10.2f  %11.2f MB/s\n",
                static_cast<unsigned long long>(window >> 10), r.mb_per_sec,
                link.payload_mb_per_sec());
  }
  std::printf("\n-> throughput saturates once window >= bandwidth x RTT; below that it is\n"
              "   window/RTT-limited, which is why the paper enlarges buffers to 1M.\n");

  std::printf("\nsimulated 100baseT stream under packet loss (go-back-N, 5ms RTO):\n"
              "  %8s  %10s  %12s\n", "loss", "MB/s", "retransmits");
  for (double loss : {0.0, 0.001, 0.01, 0.05}) {
    netsim::StreamConfig cfg;
    cfg.total_bytes = 2u << 20;
    cfg.window_bytes = 256u << 10;
    cfg.loss_rate = loss;
    cfg.retransmit_timeout = 5 * kMillisecond;
    netsim::StreamResult r =
        netsim::simulate_stream_transfer(netsim::LinkProfile::ethernet_100baseT(), cfg);
    std::printf("  %7.1f%%  %10.2f  %12llu\n", loss * 100, r.mb_per_sec,
                static_cast<unsigned long long>(r.retransmits));
  }
  std::printf("-> even 1%% loss collapses a window-limited stream (each drop stalls a\n"
              "   full RTO) — why the paper's latency-sensitive apps prefer UDP + acks.\n");
  return 0;
}
