// Table 16: File system latency (microseconds) — create/delete 0-byte files.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/lat/lat_fs.h"
#include "src/simfs/fs_bench.h"

int main(int argc, char** argv) {
  using namespace lmb;
  Options opts = benchx::parse_options(argc, argv);
  lat::FsLatConfig cfg = opts.quick() ? lat::FsLatConfig::quick() : lat::FsLatConfig{};
  cfg.dir = opts.get_string("dir", cfg.dir);

  benchx::print_header("Table 16", "File system latency (microseconds)");
  benchx::print_config_line(std::to_string(cfg.file_count) +
                            " zero-length files named a, b, ... aa, ab, ... in one directory");

  lat::FsLatResult r = lat::measure_fs_latency(cfg);

  report::Table table("Table 16. File system latency (microseconds)",
                      {{"System", 0}, {"FS", 0}, {"Create", 0}, {"Delete", 0}});
  for (const auto& row : db::paper_table16()) {
    table.add_row({row.system, row.filesystem, row.create_us, row.delete_us});
  }
  table.add_row({benchx::this_system(), std::string("tmpfs/ext"), r.create_us, r.delete_us});
  table.mark_last_row("measured on this machine");

  // SimFs rows: the same workload over the simulated 1996-class disk in
  // each durability discipline — this regenerates Table 16's spread even on
  // a host whose real filesystem is all-async.
  for (simfs::DurabilityMode mode :
       {simfs::DurabilityMode::kAsync, simfs::DurabilityMode::kJournaled,
        simfs::DurabilityMode::kSync}) {
    simfs::SimFsBenchConfig sim_cfg;
    sim_cfg.file_count = cfg.file_count;
    sim_cfg.mode = mode;
    simfs::SimFsBenchResult sim = simfs::measure_simfs_latency(sim_cfg);
    table.add_row({std::string("SimFs (simulated disk)"),
                   std::string(simfs::durability_mode_name(mode)), sim.create_us,
                   sim.delete_us});
    table.mark_last_row("simulated 1996-class disk");
  }

  table.sort_by(3, report::SortOrder::kAscending);
  std::printf("%s\n", table.render().c_str());
  std::printf("note: like 1996 Linux/EXT2FS, an in-memory or async filesystem does the\n"
              "directory ops in memory; ~10ms rows are synchronous-write filesystems.\n"
              "The SimFs rows regenerate that spread on the simulated disk: async ops\n"
              "are memory-speed, the journaled log rides the drive cache, and\n"
              "synchronous directory writes pay a rotation per operation.\n");
  return 0;
}
