// Table 6: Cache and memory latency (ns) — extracted from the latency sweep.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/core/mhz.h"
#include "src/lat/lat_mem_rd.h"
#include "src/lat/mem_hierarchy.h"

int main(int argc, char** argv) {
  using namespace lmb;
  Options opts = benchx::parse_options(argc, argv);

  benchx::print_header("Table 6", "Cache and memory latency (ns), extracted from the sweep");
  benchx::print_config_line(
      "plateau detection on the randomized-chain latency curve (stride 64); "
      "clock rate from a dependent-add chain (mhz)");

  CpuClock cpu = estimate_cpu_clock(TimingPolicy::quick());

  lat::MemLatSweepConfig sweep;
  sweep.min_bytes = 1024;
  sweep.max_bytes = static_cast<size_t>(
      opts.get_size("max", opts.quick() ? (16 << 20) : (64 << 20)));
  sweep.strides = {64};
  // Random order defeats the hardware prefetcher so the memory plateau shows
  // true back-to-back-load latency (the paper's machines had no prefetchers
  // to defeat; §7 lists this as planned work).
  sweep.order = lat::ChaseOrder::kRandom;
  sweep.policy = TimingPolicy::quick();
  auto points = lat::sweep_mem_latency(sweep);
  lat::MemHierarchy hierarchy = lat::extract_hierarchy(points);

  // Line-size estimate needs multiple strides at the largest size.
  lat::MemLatSweepConfig line_sweep = sweep;
  line_sweep.min_bytes = line_sweep.max_bytes;
  line_sweep.strides = {16, 32, 64, 128, 256};
  size_t line = lat::estimate_line_size(lat::sweep_mem_latency(line_sweep));

  report::Table table("Table 6. Cache and memory latency (ns)",
                      {{"System", 0}, {"Clk", 1}, {"L1 lat", 1}, {"L1 size", 0}, {"L2 lat", 1},
                       {"L2 size", 0}, {"Memory", 0}});
  auto size_cell = [](double bytes) -> report::Cell {
    if (bytes <= 0) {
      return report::Cell{};
    }
    if (bytes >= (1 << 20)) {
      return report::Cell{std::to_string(static_cast<long>(bytes) >> 20) + "M"};
    }
    return report::Cell{std::to_string(static_cast<long>(bytes) >> 10) + "K"};
  };
  for (const auto& row : db::paper_table6()) {
    table.add_row({row.system, row.clock_ns, row.l1_latency_ns, size_cell(row.l1_size),
                   row.l2_latency_ns, size_cell(row.l2_size), benchx::cell(row.memory_latency_ns)});
  }

  const lat::MemoryLevel* l1 = hierarchy.caches.empty() ? nullptr : &hierarchy.caches[0];
  const lat::MemoryLevel* l2 = hierarchy.caches.size() > 1 ? &hierarchy.caches.back() : l1;
  table.add_row({benchx::this_system(), cpu.period_ns, l1 != nullptr ? report::Cell{l1->latency_ns} : report::Cell{},
                 l1 != nullptr ? size_cell(static_cast<double>(l1->size_bytes)) : report::Cell{},
                 l2 != nullptr ? report::Cell{l2->latency_ns} : report::Cell{},
                 l2 != nullptr ? size_cell(static_cast<double>(l2->size_bytes)) : report::Cell{},
                 hierarchy.memory_latency_ns > 0 ? report::Cell{hierarchy.memory_latency_ns}
                                                 : report::Cell{}});
  table.mark_last_row("measured on this machine");
  table.sort_by(4, report::SortOrder::kAscending);  // paper sorts on L2 latency
  std::printf("%s\n", table.render().c_str());

  std::printf("cpu clock: %.0f MHz (%.2f ns/cycle); detected cache levels: %zu; "
              "estimated line size: %zu bytes\n",
              cpu.mhz, cpu.period_ns, hierarchy.caches.size(), line);
  if (l2 != nullptr) {
    std::printf("L2 latency in clocks: %.1f (paper: 5-6 clocks on Pentium Pro, 1 on HP/IBM)\n",
                cpu.clocks(l2->latency_ns));
  }
  return 0;
}
