// Figure 1: Memory read latency — one curve per stride, x = log2(array size).
#include <cstdio>

#include "bench/bench_util.h"
#include "src/lat/lat_mem_rd.h"
#include "src/report/plot.h"

int main(int argc, char** argv) {
  using namespace lmb;
  Options opts = benchx::parse_options(argc, argv);

  lat::MemLatSweepConfig cfg;
  cfg.min_bytes = 512;
  cfg.max_bytes = static_cast<size_t>(
      opts.get_size("max", opts.quick() ? (4 << 20) : (16 << 20)));
  cfg.policy = TimingPolicy::quick();  // many points; per-point precision is enough
  if (opts.has("random")) {
    cfg.order = lat::ChaseOrder::kRandom;
  }

  benchx::print_header("Figure 1", "Memory read latency vs. array size, per stride");
  benchx::print_config_line("back-to-back dependent loads (p = *p); strides 16..512; sizes 512B.." +
                            std::to_string(cfg.max_bytes >> 20) + "MB" +
                            (opts.has("random") ? "; randomized chain order" : ""));

  auto points = lat::sweep_mem_latency(cfg);

  report::Plot plot("Figure 1. Memory latency (this machine)", "array size (bytes)",
                    "latency (ns per load)");
  plot.set_x_scale(report::XScale::kLog2);
  plot.set_size(64, 20);
  for (size_t stride : cfg.strides) {
    report::Series series;
    series.label = "stride=" + std::to_string(stride);
    for (const auto& p : points) {
      if (p.stride_bytes == stride) {
        series.points.push_back({static_cast<double>(p.array_bytes), p.ns_per_load});
      }
    }
    plot.add_series(std::move(series));
  }
  std::printf("%s\n", plot.render().c_str());

  std::printf("Raw data (ns per load):\n  size");
  for (size_t stride : cfg.strides) {
    std::printf("  s=%zu", stride);
  }
  std::printf("\n");
  for (size_t size = cfg.min_bytes; size <= cfg.max_bytes; size *= 2) {
    std::printf("  %7zu", size);
    for (size_t stride : cfg.strides) {
      bool found = false;
      for (const auto& p : points) {
        if (p.array_bytes == size && p.stride_bytes == stride) {
          std::printf("  %5.1f", p.ns_per_load);
          found = true;
          break;
        }
      }
      if (!found) {
        std::printf("     --");
      }
    }
    std::printf("\n");
  }
  std::printf("\nPaper reference (DEC Alpha@300, Figure 1): L1 plateau ~< 10ns to 8KB,\n"
              "L2 plateau to 512KB external cache, main memory plateau ~400-500ns.\n");
  return 0;
}
