// Table 4: Remote TCP bandwidth (MB/s) over Hippi / 100baseT / FDDI / 10baseT.
//
// Substitution: no second machine or real NICs are available, so the wire is
// the netsim link model and the host software costs are measured live on
// loopback (the decomposition §6.7 itself uses).
#include <cstdio>

#include "bench/bench_util.h"
#include "src/bw/bw_ipc.h"
#include "src/lat/lat_ipc.h"
#include "src/netsim/remote.h"

int main(int argc, char** argv) {
  using namespace lmb;
  Options opts = benchx::parse_options(argc, argv);

  benchx::print_header("Table 4", "Remote TCP bandwidth (MB/s) — simulated wires");
  benchx::print_config_line(
      "host software costs measured on loopback; wire = netsim link profiles; "
      "8MB bulk transfer with a 1MB window");

  // Live loopback inputs for the host model.
  lat::IpcLatConfig lat_cfg = lat::IpcLatConfig::quick();
  double tcp_rtt_us = lat::measure_tcp_latency(lat_cfg).us_per_op();
  double udp_rtt_us = lat::measure_udp_latency(lat_cfg).us_per_op();

  bw::IpcBwConfig bw_cfg = bw::IpcBwConfig::tcp_default();
  bw_cfg.total_bytes = opts.quick() ? (4u << 20) : (16u << 20);
  bw_cfg.repetitions = 2;
  double tcp_loopback_mb = bw::measure_tcp_bw(bw_cfg).mb_per_sec;

  netsim::HostCosts hosts = netsim::HostCosts::from_loopback(tcp_rtt_us, udp_rtt_us,
                                                             tcp_loopback_mb);

  report::Table table("Table 4. Remote TCP bandwidth (MB/s)",
                      {{"System", 0}, {"Network", 0}, {"TCP bandwidth", 1}});
  for (const auto& row : db::paper_table4()) {
    table.add_row({row.system, row.network, benchx::cell(row.tcp_bw)});
  }
  for (const auto& link : netsim::paper_networks()) {
    netsim::RemoteBandwidth r = netsim::model_remote_bandwidth(link, hosts, 8u << 20, 1u << 20);
    table.add_row({benchx::this_system(), link.name + " (sim)", r.tcp_mb_per_sec});
    table.mark_last_row("this host + modeled wire");
  }
  table.sort_by(2, report::SortOrder::kDescending);
  std::printf("%s\n", table.render().c_str());
  std::printf("loopback inputs: TCP rtt %.0f us, UDP rtt %.0f us, TCP bw %.0f MB/s\n",
              tcp_rtt_us, udp_rtt_us, tcp_loopback_mb);
  return 0;
}
