// Shared helpers for the table/figure reproduction binaries.
//
// Every bench binary prints the paper's table (from the embedded database)
// with a row measured on this machine appended, re-sorted on the paper's
// sort column — the workflow §3.5 describes.
#ifndef LMBENCHPP_BENCH_BENCH_UTIL_H_
#define LMBENCHPP_BENCH_BENCH_UTIL_H_

#include <string>

#include "src/core/env.h"
#include "src/core/options.h"
#include "src/core/timing.h"
#include "src/db/paper_data.h"
#include "src/report/table.h"

namespace lmb::benchx {

// Label for the live row, e.g. "Linux/x86_64".
inline std::string this_system() { return query_system_info().label(); }

inline Options parse_options(int argc, char** argv) { return Options::parse(argc, argv); }

// Cell helper: paper cells use kMissing (-1) for blanks.
inline report::Cell cell(double v) {
  if (v == db::kMissing) {
    return report::Cell{};
  }
  return report::Cell{v};
}

// Standard preamble: experiment id + what the numbers mean.
void print_header(const std::string& experiment, const std::string& description);

// A paragraph describing the measured configuration.
void print_config_line(const std::string& text);

}  // namespace lmb::benchx

#endif  // LMBENCHPP_BENCH_BENCH_UTIL_H_
