// Table 14: Remote latencies (microseconds) over real wires — simulated.
//
// Substitution: remote round trip = live loopback software cost + modeled
// time-on-the-wire, the decomposition §6.7 itself states for this table.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/lat/lat_ipc.h"
#include "src/netsim/remote.h"

int main(int argc, char** argv) {
  using namespace lmb;
  Options opts = benchx::parse_options(argc, argv);
  lat::IpcLatConfig cfg = opts.quick() ? lat::IpcLatConfig::quick() : lat::IpcLatConfig{};

  benchx::print_header("Table 14", "Remote latencies (microseconds) — simulated wires");
  benchx::print_config_line("loopback TCP/UDP round trips measured live; wire times from the "
                            "netsim link profiles (130us/13us/<10us rtt per §6.7)");

  double tcp_rtt = lat::measure_tcp_latency(cfg).us_per_op();
  double udp_rtt = lat::measure_udp_latency(cfg).us_per_op();
  netsim::HostCosts hosts = netsim::HostCosts::from_loopback(tcp_rtt, udp_rtt, 0.0);

  report::Table table("Table 14. Remote latencies (microseconds)",
                      {{"System", 0}, {"Network", 0}, {"TCP latency", 0}, {"UDP latency", 0}});
  for (const auto& row : db::paper_table14()) {
    table.add_row({row.system, row.network, row.tcp_us, row.udp_us});
  }
  for (const auto& link : netsim::paper_networks()) {
    netsim::RemoteLatency r = netsim::model_remote_latency(link, hosts);
    table.add_row({benchx::this_system(), link.name + " (sim)", r.tcp_rtt_us, r.udp_rtt_us});
    table.mark_last_row("this host + modeled wire");
  }
  table.sort_by(2, report::SortOrder::kAscending);
  std::printf("%s\n", table.render().c_str());
  std::printf("loopback inputs: TCP rtt %.0f us, UDP rtt %.0f us\n", tcp_rtt, udp_rtt);
  return 0;
}
