// The paper's §7 "Future work" items, implemented and measured:
//   * McCalpin STREAM kernels (copy/scale/add/triad);
//   * dirty-read (read-modify-write) memory latency vs. clean-read;
//   * TLB miss cost;
//   * automatic sizing: pick buffer sizes from the detected cache hierarchy.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/bw/stream.h"
#include "src/core/mhz.h"
#include "src/lat/lat_mem_rd.h"
#include "src/lat/lat_ops.h"
#include "src/lat/lat_tlb.h"
#include "src/lat/mem_hierarchy.h"

int main(int argc, char** argv) {
  using namespace lmb;
  Options opts = benchx::parse_options(argc, argv);
  bool quick = opts.quick();

  benchx::print_header("Extensions", "the paper's section-7 future-work items");

  // 1. STREAM.
  {
    bw::StreamConfig cfg = quick ? bw::StreamConfig::quick() : bw::StreamConfig{};
    std::printf("McCalpin STREAM (%zu MB arrays):\n", cfg.elements * 8 >> 20);
    for (const auto& r : bw::measure_stream_all(cfg)) {
      std::printf("  %-6s %10.0f MB/s\n", bw::stream_kernel_name(r.kernel), r.mb_per_sec);
    }
    std::printf("  (paper §5.1: our bcopy numbers are 1/2 to 1/3 of STREAM's because\n"
                "   STREAM counts all words moved)\n\n");
  }

  // 1b. Arithmetic operation latencies (lmbench lat_ops).
  {
    CpuClock cpu = estimate_cpu_clock(TimingPolicy::quick());
    std::printf("arithmetic operation latencies (dependent chains):\n");
    for (const auto& r : lat::measure_all_op_latencies(TimingPolicy::quick())) {
      std::printf("  %-10s  %6.2f ns  (%.1f clocks)\n", lat::arith_op_name(r.op), r.ns_per_op,
                  cpu.clocks(r.ns_per_op));
    }
    std::printf("\n");
  }

  // 2. Dirty vs clean memory latency.
  {
    lat::MemLatConfig cfg;
    cfg.array_bytes = quick ? (8u << 20) : (32u << 20);
    cfg.stride_bytes = 64;
    cfg.order = lat::ChaseOrder::kRandom;
    cfg.policy = TimingPolicy::quick();
    double clean = lat::measure_mem_latency(cfg).ns_per_load;
    double dirty = lat::measure_mem_latency_dirty(cfg).ns_per_load;
    std::printf("memory latency, %zuMB randomized chains:\n", cfg.array_bytes >> 20);
    std::printf("  clean read  %7.1f ns/load\n", clean);
    std::printf("  dirty walk  %7.1f ns/load  (%+.1f ns write-back effect per miss)\n\n",
                dirty, dirty - clean);
  }

  // 3. TLB.
  {
    lat::TlbConfig cfg = quick ? lat::TlbConfig::quick() : lat::TlbConfig{};
    auto points = lat::sweep_tlb(cfg);
    std::printf("TLB sweep (one access per page, random order):\n  %8s  %10s\n", "pages",
                "ns/access");
    for (const auto& p : points) {
      std::printf("  %8d  %10.1f\n", p.pages, p.ns_per_access);
    }
    lat::TlbEstimate est = lat::estimate_tlb(points);
    if (est.entries > 0) {
      std::printf("  -> knee at ~%d pages; TLB-miss plateau +%.1f ns\n\n", est.entries,
                  est.miss_cost_ns);
    } else {
      std::printf("  -> no knee found up to %d pages (large/huge TLB)\n\n", cfg.max_pages);
    }
  }

  // 4. Automatic sizing.
  {
    lat::MemLatSweepConfig sweep;
    sweep.min_bytes = 4096;
    sweep.max_bytes = quick ? (16u << 20) : (32u << 20);
    sweep.strides = {64};
    sweep.order = lat::ChaseOrder::kRandom;
    auto hierarchy = lat::extract_hierarchy(lat::sweep_mem_latency(sweep));
    size_t size = lat::autosize_beyond_cache(hierarchy);
    std::printf("automatic sizing (§7): largest detected cache %zu KB -> bandwidth\n"
                "benchmarks should use %zu MB buffers (suite default: 8 MB)\n",
                hierarchy.caches.empty() ? 0 : hierarchy.caches.back().size_bytes >> 10,
                size >> 20);
  }
  return 0;
}
