#include "src/rpc/client.h"

#include "src/rpc/server.h"  // read_record / write_record

namespace lmb::rpc {

namespace {

std::vector<std::uint8_t> check_reply(const ReplyMessage& reply, std::uint32_t want_xid) {
  if (reply.xid != want_xid) {
    throw RpcError("xid mismatch", ReplyStatus::kSystemError);
  }
  switch (reply.status) {
    case ReplyStatus::kSuccess:
      return reply.result;
    case ReplyStatus::kProgUnavailable:
      throw RpcError("program unavailable", reply.status);
    case ReplyStatus::kProcUnavailable:
      throw RpcError("procedure unavailable", reply.status);
    case ReplyStatus::kGarbageArgs:
      throw RpcError("garbage arguments", reply.status);
    case ReplyStatus::kSystemError:
      throw RpcError("server-side error", reply.status);
  }
  throw RpcError("bad status", reply.status);
}

}  // namespace

RpcTcpClient::RpcTcpClient(std::uint16_t port) : conn_(sys::TcpStream::connect(port)) {
  conn_.set_nodelay(true);
}

std::vector<std::uint8_t> RpcTcpClient::call(std::uint32_t prog, std::uint32_t vers,
                                             std::uint32_t proc,
                                             const std::vector<std::uint8_t>& args) {
  CallMessage msg;
  msg.xid = next_xid_++;
  msg.prog = prog;
  msg.vers = vers;
  msg.proc = proc;
  msg.args = args;
  write_record(conn_, msg.encode());

  std::vector<std::uint8_t> wire;
  if (!read_record(conn_, &wire)) {
    throw RpcError("connection closed awaiting reply", ReplyStatus::kSystemError);
  }
  return check_reply(ReplyMessage::decode(wire), msg.xid);
}

RpcUdpClient::RpcUdpClient(std::uint16_t port) { socket_.connect_to(port); }

std::vector<std::uint8_t> RpcUdpClient::call(std::uint32_t prog, std::uint32_t vers,
                                             std::uint32_t proc,
                                             const std::vector<std::uint8_t>& args) {
  CallMessage msg;
  msg.xid = next_xid_++;
  msg.prog = prog;
  msg.vers = vers;
  msg.proc = proc;
  msg.args = args;
  std::vector<std::uint8_t> wire = msg.encode();
  socket_.send(wire.data(), wire.size());

  std::vector<std::uint8_t> buf(65536);
  size_t n = socket_.recv(buf.data(), buf.size());
  buf.resize(n);
  return check_reply(ReplyMessage::decode(buf), msg.xid);
}

void RpcUdpClient::send_shutdown() {
  std::uint8_t sentinel = 0;
  socket_.send(&sentinel, 1);
}

}  // namespace lmb::rpc
