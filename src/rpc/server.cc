#include "src/rpc/server.h"

#include <stdexcept>
#include <tuple>

#include "src/sys/fdio.h"

namespace lmb::rpc {

void Dispatcher::register_procedure(std::uint32_t prog, std::uint32_t vers, std::uint32_t proc,
                                    Procedure handler) {
  if (!handler) {
    throw std::invalid_argument("register_procedure: empty handler");
  }
  procedures_[Key{prog, vers, proc}] = std::move(handler);
}

ReplyMessage Dispatcher::dispatch(const CallMessage& call) const {
  ReplyMessage reply;
  reply.xid = call.xid;

  auto it = procedures_.find(Key{call.prog, call.vers, call.proc});
  if (it == procedures_.end()) {
    if (call.proc == kNullProc) {
      // Null procedure: answer success-with-nothing when the program has any
      // registered procedure at this version.
      for (const auto& [key, handler] : procedures_) {
        if (std::get<0>(key) == call.prog && std::get<1>(key) == call.vers) {
          reply.status = ReplyStatus::kSuccess;
          return reply;
        }
      }
    }
    // Distinguish unknown program from unknown procedure.
    bool prog_known = false;
    for (const auto& [key, handler] : procedures_) {
      if (std::get<0>(key) == call.prog) {
        prog_known = true;
        break;
      }
    }
    reply.status = prog_known ? ReplyStatus::kProcUnavailable : ReplyStatus::kProgUnavailable;
    return reply;
  }

  try {
    reply.result = it->second(call.args);
    reply.status = ReplyStatus::kSuccess;
  } catch (const XdrError&) {
    reply.status = ReplyStatus::kGarbageArgs;
  } catch (const std::exception&) {
    reply.status = ReplyStatus::kSystemError;
  }
  return reply;
}

bool read_record(sys::TcpStream& conn, std::vector<std::uint8_t>* out) {
  out->clear();
  while (true) {
    std::uint8_t head[4];
    size_t got = conn.recv_some(head, 1);
    if (got == 0) {
      if (!out->empty()) {
        throw std::runtime_error("rpc: EOF mid-record");
      }
      return false;  // clean EOF at record boundary
    }
    conn.recv_all(head + 1, 3);
    std::uint32_t mark = (static_cast<std::uint32_t>(head[0]) << 24) |
                         (static_cast<std::uint32_t>(head[1]) << 16) |
                         (static_cast<std::uint32_t>(head[2]) << 8) |
                         static_cast<std::uint32_t>(head[3]);
    bool last = false;
    std::uint32_t len = decode_record_mark(mark, &last);
    if (len > (1u << 24)) {
      throw std::runtime_error("rpc: oversized fragment");
    }
    size_t old = out->size();
    out->resize(old + len);
    conn.recv_all(out->data() + old, len);
    if (last) {
      return true;
    }
  }
}

void write_record(sys::TcpStream& conn, const std::vector<std::uint8_t>& payload) {
  std::uint32_t mark = encode_record_mark(static_cast<std::uint32_t>(payload.size()));
  std::uint8_t head[4] = {
      static_cast<std::uint8_t>(mark >> 24),
      static_cast<std::uint8_t>(mark >> 16),
      static_cast<std::uint8_t>(mark >> 8),
      static_cast<std::uint8_t>(mark),
  };
  // One send for header+payload would need a copy; two sends with NODELAY
  // risk two packets.  Copy once — RPC messages here are small.
  std::vector<std::uint8_t> frame;
  frame.reserve(4 + payload.size());
  frame.insert(frame.end(), head, head + 4);
  frame.insert(frame.end(), payload.begin(), payload.end());
  conn.send_all(frame.data(), frame.size());
}

size_t serve_tcp_connection(sys::TcpStream& conn, const Dispatcher& dispatcher) {
  size_t calls = 0;
  std::vector<std::uint8_t> wire;
  while (read_record(conn, &wire)) {
    CallMessage call = CallMessage::decode(wire);
    ReplyMessage reply = dispatcher.dispatch(call);
    write_record(conn, reply.encode());
    ++calls;
  }
  return calls;
}

size_t serve_udp(sys::UdpSocket& socket, const Dispatcher& dispatcher) {
  size_t calls = 0;
  std::vector<std::uint8_t> buf(65536);
  while (true) {
    std::uint16_t from = 0;
    size_t n = socket.recv_from(buf.data(), buf.size(), &from);
    if (n < 4) {
      return calls;  // shutdown sentinel
    }
    std::vector<std::uint8_t> wire(buf.begin(), buf.begin() + static_cast<long>(n));
    ReplyMessage reply;
    try {
      CallMessage call = CallMessage::decode(wire);
      reply = dispatcher.dispatch(call);
    } catch (const XdrError&) {
      continue;  // undecodable datagram: drop, as real servers do
    }
    std::vector<std::uint8_t> out = reply.encode();
    socket.send_to(from, out.data(), out.size());
    ++calls;
  }
}

}  // namespace lmb::rpc
