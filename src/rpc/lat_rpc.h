// RPC round-trip latency — the RPC/TCP and RPC/UDP columns of Tables 12–13.
//
// "Table 12 shows the same benchmark with and without the RPC layer to show
// the cost of the RPC implementation."  Compare against
// lat::measure_tcp_latency / lat::measure_udp_latency for the raw-socket
// columns.
#ifndef LMBENCHPP_SRC_RPC_LAT_RPC_H_
#define LMBENCHPP_SRC_RPC_LAT_RPC_H_

#include "src/core/timing.h"

namespace lmb::rpc {

// The echo benchmark program (arbitrary id in the user-defined range).
inline constexpr std::uint32_t kEchoProg = 0x20000099;
inline constexpr std::uint32_t kEchoVers = 1;
inline constexpr std::uint32_t kEchoProc = 1;

struct RpcLatConfig {
  TimingPolicy policy = TimingPolicy::standard();
  // XDR payload per call (paper: one word).
  size_t message_bytes = 4;

  static RpcLatConfig quick() {
    RpcLatConfig c;
    c.policy = TimingPolicy::quick();
    return c;
  }
};

// One-word echo over the RPC layer on loopback TCP (Table 12 "RPC/TCP").
Measurement measure_rpc_tcp_latency(const RpcLatConfig& config = {});

// Same over UDP (Table 13 "RPC/UDP").
Measurement measure_rpc_udp_latency(const RpcLatConfig& config = {});

}  // namespace lmb::rpc

#endif  // LMBENCHPP_SRC_RPC_LAT_RPC_H_
