// A miniature port mapper.
//
// The paper's connect benchmark uses a server "registered using the port
// mapper" (§6.7).  This is the in-process equivalent: servers register
// (program, version, protocol) -> port; clients look the port up.
#ifndef LMBENCHPP_SRC_RPC_PORTMAP_H_
#define LMBENCHPP_SRC_RPC_PORTMAP_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <tuple>

namespace lmb::rpc {

enum class Protocol : std::uint32_t {
  kTcp = 6,
  kUdp = 17,
};

class PortMapper {
 public:
  // The process-wide mapper (registrations made before fork are visible in
  // the child, mirroring how benchmarks use the real rpcbind).
  static PortMapper& global();

  // Registers a mapping.  Re-registration of the same key overwrites
  // (matching pmap_set semantics with unset-then-set).
  void set(std::uint32_t prog, std::uint32_t vers, Protocol proto, std::uint16_t port);

  // Removes a mapping; no-op when absent.
  void unset(std::uint32_t prog, std::uint32_t vers, Protocol proto);

  // Looks up a mapping.
  std::optional<std::uint16_t> lookup(std::uint32_t prog, std::uint32_t vers,
                                      Protocol proto) const;

  size_t size() const;

 private:
  using Key = std::tuple<std::uint32_t, std::uint32_t, std::uint32_t>;

  mutable std::mutex mu_;
  std::map<Key, std::uint16_t> map_;
};

}  // namespace lmb::rpc

#endif  // LMBENCHPP_SRC_RPC_PORTMAP_H_
