// XDR (RFC 1014/4506) external data representation.
//
// The paper's RPC benchmarks ride on Sun RPC, whose wire format is XDR:
// big-endian, every item padded to a 4-byte boundary.  This is a clean-room
// implementation of the subset the RPC layer and benchmarks need.
#ifndef LMBENCHPP_SRC_RPC_XDR_H_
#define LMBENCHPP_SRC_RPC_XDR_H_

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace lmb::rpc {

class XdrError : public std::runtime_error {
 public:
  explicit XdrError(const std::string& what) : std::runtime_error("xdr: " + what) {}
};

// Serializes values into an XDR byte stream.
class XdrEncoder {
 public:
  void put_uint32(std::uint32_t v);
  void put_int32(std::int32_t v);
  void put_uint64(std::uint64_t v);
  void put_int64(std::int64_t v);
  void put_bool(bool v);
  // Variable-length opaque: 4-byte length, data, zero padding to 4 bytes.
  void put_opaque(const void* data, size_t len);
  void put_string(const std::string& s);
  // Fixed-length opaque: data + padding only (length known to both sides).
  void put_opaque_fixed(const void* data, size_t len);

  const std::vector<std::uint8_t>& bytes() const { return buf_; }
  std::vector<std::uint8_t> take() { return std::move(buf_); }
  size_t size() const { return buf_.size(); }

 private:
  std::vector<std::uint8_t> buf_;
};

// Deserializes values from an XDR byte stream.  Throws XdrError on
// truncated input or malformed lengths.
class XdrDecoder {
 public:
  XdrDecoder(const void* data, size_t len)
      : data_(static_cast<const std::uint8_t*>(data)), len_(len) {}
  explicit XdrDecoder(const std::vector<std::uint8_t>& buf) : XdrDecoder(buf.data(), buf.size()) {}

  std::uint32_t get_uint32();
  std::int32_t get_int32();
  std::uint64_t get_uint64();
  std::int64_t get_int64();
  bool get_bool();
  std::vector<std::uint8_t> get_opaque(size_t max_len = 1u << 24);
  std::string get_string(size_t max_len = 1u << 24);
  void get_opaque_fixed(void* out, size_t len);

  size_t remaining() const { return len_ - pos_; }
  bool exhausted() const { return pos_ == len_; }

 private:
  void need(size_t n);

  const std::uint8_t* data_;
  size_t len_;
  size_t pos_ = 0;
};

// Pad length to the next multiple of 4 (XDR alignment unit).
constexpr size_t xdr_pad(size_t len) { return (len + 3u) & ~size_t{3}; }

}  // namespace lmb::rpc

#endif  // LMBENCHPP_SRC_RPC_XDR_H_
