#include "src/rpc/message.h"

namespace lmb::rpc {

namespace {
// AUTH_NONE: flavor 0, zero-length body (RFC 1057 §7.2).
void put_null_auth(XdrEncoder& enc) {
  enc.put_uint32(0);
  enc.put_uint32(0);
}

void skip_auth(XdrDecoder& dec) {
  dec.get_uint32();  // flavor (ignored)
  std::uint32_t len = dec.get_uint32();
  if (len > 400) {
    throw XdrError("auth body too long");
  }
  std::vector<std::uint8_t> body(len);
  if (len > 0) {
    dec.get_opaque_fixed(body.data(), len);
  }
}
}  // namespace

std::vector<std::uint8_t> CallMessage::encode() const {
  XdrEncoder enc;
  enc.put_uint32(xid);
  enc.put_uint32(static_cast<std::uint32_t>(MsgType::kCall));
  enc.put_uint32(kRpcVersion);
  enc.put_uint32(prog);
  enc.put_uint32(vers);
  enc.put_uint32(proc);
  put_null_auth(enc);  // credentials
  put_null_auth(enc);  // verifier
  enc.put_opaque_fixed(args.data(), args.size());
  return enc.take();
}

CallMessage CallMessage::decode(const std::vector<std::uint8_t>& wire) {
  XdrDecoder dec(wire);
  CallMessage msg;
  msg.xid = dec.get_uint32();
  auto type = static_cast<MsgType>(dec.get_uint32());
  if (type != MsgType::kCall) {
    throw XdrError("not a call message");
  }
  std::uint32_t rpcvers = dec.get_uint32();
  if (rpcvers != kRpcVersion) {
    throw XdrError("unsupported RPC version " + std::to_string(rpcvers));
  }
  msg.prog = dec.get_uint32();
  msg.vers = dec.get_uint32();
  msg.proc = dec.get_uint32();
  skip_auth(dec);
  skip_auth(dec);
  msg.args.assign(wire.begin() + static_cast<long>(wire.size() - dec.remaining()), wire.end());
  return msg;
}

std::vector<std::uint8_t> ReplyMessage::encode() const {
  XdrEncoder enc;
  enc.put_uint32(xid);
  enc.put_uint32(static_cast<std::uint32_t>(MsgType::kReply));
  enc.put_uint32(0);  // MSG_ACCEPTED (we model only accepted replies)
  put_null_auth(enc);
  enc.put_uint32(static_cast<std::uint32_t>(status));
  if (status == ReplyStatus::kSuccess) {
    enc.put_opaque_fixed(result.data(), result.size());
  }
  return enc.take();
}

ReplyMessage ReplyMessage::decode(const std::vector<std::uint8_t>& wire) {
  XdrDecoder dec(wire);
  ReplyMessage msg;
  msg.xid = dec.get_uint32();
  auto type = static_cast<MsgType>(dec.get_uint32());
  if (type != MsgType::kReply) {
    throw XdrError("not a reply message");
  }
  std::uint32_t accepted = dec.get_uint32();
  if (accepted != 0) {
    throw XdrError("rejected reply");
  }
  skip_auth(dec);
  msg.status = static_cast<ReplyStatus>(dec.get_uint32());
  if (msg.status > ReplyStatus::kSystemError) {
    throw XdrError("bad reply status");
  }
  if (msg.status == ReplyStatus::kSuccess) {
    msg.result.assign(wire.begin() + static_cast<long>(wire.size() - dec.remaining()), wire.end());
  }
  return msg;
}

std::uint32_t encode_record_mark(std::uint32_t len) { return 0x80000000u | len; }

std::uint32_t decode_record_mark(std::uint32_t mark, bool* last) {
  if (last != nullptr) {
    *last = (mark & 0x80000000u) != 0;
  }
  std::uint32_t len = mark & 0x7fffffffu;
  if (len == 0) {
    throw XdrError("zero-length record fragment");
  }
  return len;
}

}  // namespace lmb::rpc
