// RPC call/reply message framing (RFC 1057-shaped, simplified auth).
#ifndef LMBENCHPP_SRC_RPC_MESSAGE_H_
#define LMBENCHPP_SRC_RPC_MESSAGE_H_

#include <cstdint>
#include <vector>

#include "src/rpc/xdr.h"

namespace lmb::rpc {

inline constexpr std::uint32_t kRpcVersion = 2;

enum class MsgType : std::uint32_t {
  kCall = 0,
  kReply = 1,
};

enum class ReplyStatus : std::uint32_t {
  kSuccess = 0,
  kProgUnavailable = 1,
  kProcUnavailable = 2,
  kGarbageArgs = 3,
  kSystemError = 4,
};

struct CallMessage {
  std::uint32_t xid = 0;
  std::uint32_t prog = 0;
  std::uint32_t vers = 0;
  std::uint32_t proc = 0;
  std::vector<std::uint8_t> args;

  std::vector<std::uint8_t> encode() const;
  // Throws XdrError on malformed input.
  static CallMessage decode(const std::vector<std::uint8_t>& wire);
};

struct ReplyMessage {
  std::uint32_t xid = 0;
  ReplyStatus status = ReplyStatus::kSuccess;
  std::vector<std::uint8_t> result;  // meaningful only for kSuccess

  std::vector<std::uint8_t> encode() const;
  static ReplyMessage decode(const std::vector<std::uint8_t>& wire);
};

// TCP record marking (RFC 1057 §10): a 4-byte header whose top bit flags the
// last fragment and whose low 31 bits give the fragment length.  We always
// send single-fragment records.
std::uint32_t encode_record_mark(std::uint32_t len);
// Returns the length; sets *last.  Throws XdrError on zero-length fragments.
std::uint32_t decode_record_mark(std::uint32_t mark, bool* last);

}  // namespace lmb::rpc

#endif  // LMBENCHPP_SRC_RPC_MESSAGE_H_
