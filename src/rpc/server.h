// RPC dispatcher and transports (server side).
#ifndef LMBENCHPP_SRC_RPC_SERVER_H_
#define LMBENCHPP_SRC_RPC_SERVER_H_

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "src/rpc/message.h"
#include "src/sys/socket.h"

namespace lmb::rpc {

// A procedure takes XDR-encoded args and returns XDR-encoded results.
using Procedure = std::function<std::vector<std::uint8_t>(const std::vector<std::uint8_t>&)>;

// Procedure 0 is the conventional null procedure (ping); dispatchers answer
// it automatically when the program is known.
inline constexpr std::uint32_t kNullProc = 0;

// Routes decoded calls to registered procedures.
class Dispatcher {
 public:
  void register_procedure(std::uint32_t prog, std::uint32_t vers, std::uint32_t proc,
                          Procedure handler);

  // Builds the reply for one call (kProgUnavailable / kProcUnavailable /
  // kSystemError as appropriate; handlers that throw yield kSystemError).
  ReplyMessage dispatch(const CallMessage& call) const;

 private:
  using Key = std::tuple<std::uint32_t, std::uint32_t, std::uint32_t>;
  std::map<Key, Procedure> procedures_;
};

// Serves RPC over one accepted TCP connection (record-marked stream) until
// the peer disconnects.  Returns the number of calls served.
size_t serve_tcp_connection(sys::TcpStream& conn, const Dispatcher& dispatcher);

// Serves RPC over a UDP socket.  A datagram shorter than 4 bytes acts as a
// shutdown sentinel (benchmark teardown).  Returns calls served.
size_t serve_udp(sys::UdpSocket& socket, const Dispatcher& dispatcher);

// Reads one record-marked RPC message from a stream.  Returns false on
// clean EOF at a record boundary.
bool read_record(sys::TcpStream& conn, std::vector<std::uint8_t>* out);

// Writes one record-marked message.
void write_record(sys::TcpStream& conn, const std::vector<std::uint8_t>& payload);

}  // namespace lmb::rpc

#endif  // LMBENCHPP_SRC_RPC_SERVER_H_
