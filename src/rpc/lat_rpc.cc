#include "src/rpc/lat_rpc.h"

#include <stdexcept>

#include "src/core/registry.h"
#include "src/report/table.h"
#include "src/rpc/client.h"
#include "src/rpc/portmap.h"
#include "src/rpc/server.h"
#include "src/sys/process.h"
#include "src/sys/socket.h"

namespace lmb::rpc {

namespace {

Dispatcher make_echo_dispatcher() {
  Dispatcher d;
  d.register_procedure(kEchoProg, kEchoVers, kEchoProc,
                       [](const std::vector<std::uint8_t>& args) { return args; });
  return d;
}

std::vector<std::uint8_t> make_payload(size_t bytes) {
  XdrEncoder enc;
  std::vector<std::uint8_t> raw(bytes, 0x5a);
  enc.put_opaque(raw.data(), raw.size());
  return enc.take();
}

}  // namespace

Measurement measure_rpc_tcp_latency(const RpcLatConfig& config) {
  sys::TcpListener listener;
  PortMapper::global().set(kEchoProg, kEchoVers, Protocol::kTcp, listener.port());

  sys::Child child = sys::fork_child([&]() {
    sys::TcpStream conn = listener.accept();
    conn.set_nodelay(true);
    Dispatcher dispatcher = make_echo_dispatcher();
    serve_tcp_connection(conn, dispatcher);
    return 0;
  });

  auto port = PortMapper::global().lookup(kEchoProg, kEchoVers, Protocol::kTcp);
  if (!port) {
    throw std::logic_error("echo program not registered");
  }
  Measurement m;
  {
    RpcTcpClient client(*port);
    std::vector<std::uint8_t> args = make_payload(config.message_bytes);
    m = measure(
        [&](std::uint64_t iters) {
          for (std::uint64_t i = 0; i < iters; ++i) {
            client.call(kEchoProg, kEchoVers, kEchoProc, args);
          }
        },
        config.policy);
    // Client destruction closes the connection; the server child sees EOF.
  }
  if (child.wait() != 0) {
    throw std::runtime_error("rpc tcp server failed");
  }
  PortMapper::global().unset(kEchoProg, kEchoVers, Protocol::kTcp);
  return m;
}

Measurement measure_rpc_udp_latency(const RpcLatConfig& config) {
  sys::UdpSocket server;
  PortMapper::global().set(kEchoProg, kEchoVers, Protocol::kUdp, server.port());

  sys::Child child = sys::fork_child([&]() {
    Dispatcher dispatcher = make_echo_dispatcher();
    serve_udp(server, dispatcher);
    return 0;
  });

  auto port = PortMapper::global().lookup(kEchoProg, kEchoVers, Protocol::kUdp);
  if (!port) {
    throw std::logic_error("echo program not registered");
  }
  RpcUdpClient client(*port);
  std::vector<std::uint8_t> args = make_payload(config.message_bytes);
  Measurement m = measure(
      [&](std::uint64_t iters) {
        for (std::uint64_t i = 0; i < iters; ++i) {
          client.call(kEchoProg, kEchoVers, kEchoProc, args);
        }
      },
      config.policy);
  client.send_shutdown();
  if (child.wait() != 0) {
    throw std::runtime_error("rpc udp server failed");
  }
  PortMapper::global().unset(kEchoProg, kEchoVers, Protocol::kUdp);
  return m;
}

namespace {

const BenchmarkRegistrar tcp_registrar{{
    .name = "lat_rpc_tcp",
    .category = "latency",
    .description = "RPC echo round trip over loopback TCP (Table 12)",
    .run =
        [](const Options& opts) {
          RpcLatConfig cfg = opts.quick() ? RpcLatConfig::quick() : RpcLatConfig{};
          Measurement m = measure_rpc_tcp_latency(cfg);
          return RunResult{}.with(m).add("us", m.us_per_op(), "us");
        },
}};

const BenchmarkRegistrar udp_registrar{{
    .name = "lat_rpc_udp",
    .category = "latency",
    .description = "RPC echo round trip over loopback UDP (Table 13)",
    .run =
        [](const Options& opts) {
          RpcLatConfig cfg = opts.quick() ? RpcLatConfig::quick() : RpcLatConfig{};
          Measurement m = measure_rpc_udp_latency(cfg);
          return RunResult{}.with(m).add("us", m.us_per_op(), "us");
        },
}};

}  // namespace

}  // namespace lmb::rpc
