#include "src/rpc/portmap.h"

namespace lmb::rpc {

PortMapper& PortMapper::global() {
  static PortMapper* mapper = new PortMapper;  // intentionally leaked
  return *mapper;
}

void PortMapper::set(std::uint32_t prog, std::uint32_t vers, Protocol proto, std::uint16_t port) {
  std::lock_guard<std::mutex> lock(mu_);
  map_[Key{prog, vers, static_cast<std::uint32_t>(proto)}] = port;
}

void PortMapper::unset(std::uint32_t prog, std::uint32_t vers, Protocol proto) {
  std::lock_guard<std::mutex> lock(mu_);
  map_.erase(Key{prog, vers, static_cast<std::uint32_t>(proto)});
}

std::optional<std::uint16_t> PortMapper::lookup(std::uint32_t prog, std::uint32_t vers,
                                                Protocol proto) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = map_.find(Key{prog, vers, static_cast<std::uint32_t>(proto)});
  if (it == map_.end()) {
    return std::nullopt;
  }
  return it->second;
}

size_t PortMapper::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return map_.size();
}

}  // namespace lmb::rpc
