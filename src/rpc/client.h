// RPC clients over TCP and UDP.
#ifndef LMBENCHPP_SRC_RPC_CLIENT_H_
#define LMBENCHPP_SRC_RPC_CLIENT_H_

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "src/rpc/message.h"
#include "src/sys/socket.h"

namespace lmb::rpc {

// Thrown when a call completes with a non-success reply status.
class RpcError : public std::runtime_error {
 public:
  RpcError(const std::string& what, ReplyStatus status)
      : std::runtime_error("rpc: " + what), status_(status) {}

  ReplyStatus status() const { return status_; }

 private:
  ReplyStatus status_;
};

// Synchronous client over a dedicated TCP connection.
class RpcTcpClient {
 public:
  // Connects to 127.0.0.1:port (typically from PortMapper::lookup).
  explicit RpcTcpClient(std::uint16_t port);

  // Marshals, sends, and awaits the matching reply.  Throws RpcError on
  // non-success status and XdrError / SysError on transport problems.
  std::vector<std::uint8_t> call(std::uint32_t prog, std::uint32_t vers, std::uint32_t proc,
                                 const std::vector<std::uint8_t>& args);

 private:
  sys::TcpStream conn_;
  std::uint32_t next_xid_ = 1;
};

// Synchronous client over UDP (no retransmission: loopback only, like the
// paper's measurements).
class RpcUdpClient {
 public:
  explicit RpcUdpClient(std::uint16_t port);

  std::vector<std::uint8_t> call(std::uint32_t prog, std::uint32_t vers, std::uint32_t proc,
                                 const std::vector<std::uint8_t>& args);

  // Sends the shutdown sentinel understood by serve_udp.
  void send_shutdown();

 private:
  sys::UdpSocket socket_;
  std::uint32_t next_xid_ = 1;
};

}  // namespace lmb::rpc

#endif  // LMBENCHPP_SRC_RPC_CLIENT_H_
