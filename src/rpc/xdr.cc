#include "src/rpc/xdr.h"

#include <cstring>

namespace lmb::rpc {

void XdrEncoder::put_uint32(std::uint32_t v) {
  buf_.push_back(static_cast<std::uint8_t>(v >> 24));
  buf_.push_back(static_cast<std::uint8_t>(v >> 16));
  buf_.push_back(static_cast<std::uint8_t>(v >> 8));
  buf_.push_back(static_cast<std::uint8_t>(v));
}

void XdrEncoder::put_int32(std::int32_t v) { put_uint32(static_cast<std::uint32_t>(v)); }

void XdrEncoder::put_uint64(std::uint64_t v) {
  put_uint32(static_cast<std::uint32_t>(v >> 32));
  put_uint32(static_cast<std::uint32_t>(v));
}

void XdrEncoder::put_int64(std::int64_t v) { put_uint64(static_cast<std::uint64_t>(v)); }

void XdrEncoder::put_bool(bool v) { put_uint32(v ? 1 : 0); }

void XdrEncoder::put_opaque_fixed(const void* data, size_t len) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  buf_.insert(buf_.end(), p, p + len);
  size_t padded = xdr_pad(len);
  buf_.insert(buf_.end(), padded - len, 0);
}

void XdrEncoder::put_opaque(const void* data, size_t len) {
  put_uint32(static_cast<std::uint32_t>(len));
  put_opaque_fixed(data, len);
}

void XdrEncoder::put_string(const std::string& s) { put_opaque(s.data(), s.size()); }

void XdrDecoder::need(size_t n) {
  if (len_ - pos_ < n) {
    throw XdrError("truncated input (need " + std::to_string(n) + ", have " +
                   std::to_string(len_ - pos_) + ")");
  }
}

std::uint32_t XdrDecoder::get_uint32() {
  need(4);
  std::uint32_t v = (static_cast<std::uint32_t>(data_[pos_]) << 24) |
                    (static_cast<std::uint32_t>(data_[pos_ + 1]) << 16) |
                    (static_cast<std::uint32_t>(data_[pos_ + 2]) << 8) |
                    static_cast<std::uint32_t>(data_[pos_ + 3]);
  pos_ += 4;
  return v;
}

std::int32_t XdrDecoder::get_int32() { return static_cast<std::int32_t>(get_uint32()); }

std::uint64_t XdrDecoder::get_uint64() {
  std::uint64_t hi = get_uint32();
  std::uint64_t lo = get_uint32();
  return (hi << 32) | lo;
}

std::int64_t XdrDecoder::get_int64() { return static_cast<std::int64_t>(get_uint64()); }

bool XdrDecoder::get_bool() {
  std::uint32_t v = get_uint32();
  if (v > 1) {
    throw XdrError("bool out of range: " + std::to_string(v));
  }
  return v == 1;
}

void XdrDecoder::get_opaque_fixed(void* out, size_t len) {
  size_t padded = xdr_pad(len);
  need(padded);
  std::memcpy(out, data_ + pos_, len);
  // Reject nonzero padding: it indicates a framing bug on the peer.
  for (size_t i = len; i < padded; ++i) {
    if (data_[pos_ + i] != 0) {
      throw XdrError("nonzero padding");
    }
  }
  pos_ += padded;
}

std::vector<std::uint8_t> XdrDecoder::get_opaque(size_t max_len) {
  std::uint32_t len = get_uint32();
  if (len > max_len) {
    throw XdrError("opaque too long: " + std::to_string(len));
  }
  std::vector<std::uint8_t> out(len);
  if (len > 0) {
    get_opaque_fixed(out.data(), len);
  }
  return out;
}

std::string XdrDecoder::get_string(size_t max_len) {
  std::vector<std::uint8_t> raw = get_opaque(max_len);
  return std::string(raw.begin(), raw.end());
}

}  // namespace lmb::rpc
