// Time × latency heatmaps built from load-gen interval series.
//
// A load run with `--interval-ms` produces one histogram per time window
// (src/obs/histogram.h).  This module folds that series into a compact
// heatmap — adjacent histogram buckets are downsampled into at most
// `max_columns` latency columns with monotone bucket bounds — and provides
// the three consumers: an ANSI shaded terminal rendering with per-window
// p50/p99 columns, and a JSON round trip (`lmbenchpp.heatmap.v1`) so the
// matrix survives into BENCH artifacts and the `lmbench_heatmap` inspector.
#ifndef LMBENCHPP_SRC_REPORT_HEATMAP_H_
#define LMBENCHPP_SRC_REPORT_HEATMAP_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/obs/histogram.h"

namespace lmb::report {

struct HeatmapWindow {
  double start_ms = 0.0;
  double end_ms = 0.0;
  std::uint64_t requests = 0;
  std::uint64_t errors = 0;
  double rps = 0.0;
  double p50_us = 0.0;  // 0 when the window saw no requests
  double p99_us = 0.0;
  std::vector<std::uint64_t> counts;  // one per latency column; sums to requests
};

struct Heatmap {
  std::string bench;
  std::string scenario;
  double interval_ms = 0.0;
  // Latency column edges in µs, size columns + 1, strictly increasing.
  // Empty when the run produced no latency observations.
  std::vector<double> bounds_us;
  std::vector<HeatmapWindow> windows;

  // Aggregate cross-check block, filled by the producer: percentiles of the
  // whole-run histogram next to the raw-reservoir reference.  raw_sampled
  // is true when the reservoir subsampled (raw_* are then an estimate, not
  // exact).  All zero when the producer had no reference.
  double p50_us = 0.0;
  double p99_us = 0.0;
  double p999_us = 0.0;
  double raw_p50_us = 0.0;
  double raw_p99_us = 0.0;
  double raw_p999_us = 0.0;
  bool raw_sampled = false;

  std::uint64_t total_requests() const;
  std::uint64_t total_errors() const;
};

// Folds an interval series into a heatmap with at most `max_columns` latency
// columns spanning the non-empty bucket range across all windows.  Windows
// with no requests keep zero-filled count rows so the time axis stays
// contiguous.
Heatmap build_heatmap(const std::string& bench, const std::string& scenario,
                      const std::vector<obs::IntervalStats>& intervals, int max_columns = 24);

// Terminal rendering: one row per window, cells shaded ░▒▓█ on a log scale
// (so tail buckets stay visible next to the mode), plus per-window request,
// rps, and p50/p99 columns.
std::string render_heatmap(const Heatmap& map);

// Compact single-line `lmbenchpp.heatmap.v1` document.
std::string heatmap_to_json(const Heatmap& map);

// Inverse of heatmap_to_json.  Throws std::invalid_argument on malformed
// input or a schema other than lmbenchpp.heatmap.v1.
Heatmap heatmap_from_json(const std::string& text);

}  // namespace lmb::report

#endif  // LMBENCHPP_SRC_REPORT_HEATMAP_H_
