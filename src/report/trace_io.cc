#include "src/report/trace_io.h"

#include <cmath>

#include "src/report/json.h"

namespace lmb::report {

namespace {

// One Chrome-shaped event object.  `ts`/`dur` are microseconds (the unit
// the Chrome format mandates); `tsNs`/`durNs` carry the exact nanosecond
// values so a round trip through JSON loses nothing.
std::string event_to_json(const obs::TraceEvent& e, const std::string& indent) {
  const bool span = e.dur >= 0;
  std::string out = indent + "{";
  out += "\"name\": " + json_quote(e.name);
  out += ", \"cat\": " + json_quote(e.cat);
  out += std::string(", \"ph\": ") + (span ? "\"X\"" : "\"i\"");
  out += ", \"ts\": " + json_double(static_cast<double>(e.ts) / 1e3);
  if (span) {
    out += ", \"dur\": " + json_double(static_cast<double>(e.dur) / 1e3);
  } else {
    out += ", \"s\": \"t\"";  // instant scope: thread
  }
  out += ", \"pid\": 1";
  out += ", \"tid\": " + std::to_string(e.tid);
  out += ", \"tsNs\": " + std::to_string(e.ts);
  if (span) {
    out += ", \"durNs\": " + std::to_string(e.dur);
  }
  if (!e.bench.empty()) {
    out += ", \"bench\": " + json_quote(e.bench);
  }
  out += ", \"args\": {";
  bool first = true;
  for (const auto& [key, value] : e.args) {
    out += first ? "" : ", ";
    first = false;
    out += json_quote(key) + ": " + json_quote(value);
  }
  out += "}}";
  return out;
}

std::string events_array(const std::vector<obs::TraceEvent>& events,
                         const std::string& indent) {
  std::string out = "[";
  bool first = true;
  for (const obs::TraceEvent& e : events) {
    out += first ? "\n" : ",\n";
    first = false;
    out += event_to_json(e, indent);
  }
  out += events.empty() ? "]" : "\n" + indent.substr(0, indent.size() - 2) + "]";
  return out;
}

}  // namespace

std::string trace_to_json(const std::vector<obs::TraceEvent>& events,
                          const std::string& system) {
  std::string out = "{\n";
  out += "  \"schema\": " + json_quote(kTraceSchema) + ",\n";
  out += "  \"system\": " + json_quote(system) + ",\n";
  out += "  \"displayTimeUnit\": \"ns\",\n";
  out += "  \"traceEvents\": " + events_array(events, "    ") + "\n";
  out += "}\n";
  return out;
}

std::string trace_to_chrome(const std::vector<obs::TraceEvent>& events) {
  return events_array(events, "  ") + "\n";
}

TraceDoc trace_from_json(const std::string& text) {
  JsonValue root = parse_json(text);
  const JsonObject& doc = root.object();

  const JsonValue* schema = find(doc, "schema");
  if (schema == nullptr || schema->str() != kTraceSchema) {
    throw std::invalid_argument("trace json: missing or unknown schema (want " +
                                std::string(kTraceSchema) + ")");
  }

  TraceDoc out;
  if (const JsonValue* system = find(doc, "system");
      system != nullptr && !system->is_null()) {
    out.system = system->str();
  }
  const JsonValue* events = find(doc, "traceEvents");
  if (events == nullptr) {
    throw std::invalid_argument("trace json: missing traceEvents array");
  }
  for (const JsonValue& entry : events->array()) {
    const JsonObject& obj = entry.object();
    obs::TraceEvent e;
    if (const JsonValue* v = find(obj, "name")) e.name = v->str();
    if (const JsonValue* v = find(obj, "cat")) e.cat = v->str();
    if (const JsonValue* v = find(obj, "bench")) e.bench = v->str();
    if (const JsonValue* v = find(obj, "tid")) e.tid = static_cast<int>(v->number());
    // Exact nanosecond keys win; fall back to the Chrome microsecond ones
    // for documents produced by other tools.
    if (const JsonValue* v = find(obj, "tsNs")) {
      e.ts = static_cast<Nanos>(v->number());
    } else if (const JsonValue* v2 = find(obj, "ts")) {
      e.ts = static_cast<Nanos>(std::llround(v2->number() * 1e3));
    }
    bool span = false;
    if (const JsonValue* v = find(obj, "ph")) {
      span = v->str() == "X";
    }
    if (span) {
      if (const JsonValue* v = find(obj, "durNs")) {
        e.dur = static_cast<Nanos>(v->number());
      } else if (const JsonValue* v2 = find(obj, "dur")) {
        e.dur = static_cast<Nanos>(std::llround(v2->number() * 1e3));
      } else {
        e.dur = 0;
      }
    } else {
      e.dur = -1;
    }
    if (const JsonValue* v = find(obj, "args"); v != nullptr && !v->is_null()) {
      for (const auto& [key, value] : v->object()) {
        e.args.emplace_back(key, value.str());
      }
    }
    out.events.push_back(std::move(e));
  }
  return out;
}

}  // namespace lmb::report
