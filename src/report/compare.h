// Noise-aware comparison of two result batches — the consumer the paper's
// results database (§3.5) exists for: "run the suite, store the numbers,
// compare systems/runs against each other".
//
// A raw delta between two micro-benchmark numbers is meaningless without
// the measured noise behind each number (cf. continuous-benchmarking
// practice in ROOT's performance CI and nanoBench): a 8% swing on a
// benchmark whose repetitions scatter 10% is silence, while a 3% swing on
// a 0.2%-tight benchmark is a real regression.  The timing engine already
// records per-measurement variability (min/median/stddev and the raw
// repetition sample, serialized since schema additions in this module);
// compare_batches turns that into a per-metric significance threshold:
//
//   threshold_rel = max(floor_rel, sigmas * noise_rel)
//   noise_rel     = max over both runs of (stddev-based interval / min)
//
// and classifies the relative delta of each `<bench>_<metric>_<unit>` key
// against it, honoring metric direction (latency: smaller is better;
// bandwidth: bigger is better — §4.1's table-sorting convention).
#ifndef LMBENCHPP_SRC_REPORT_COMPARE_H_
#define LMBENCHPP_SRC_REPORT_COMPARE_H_

#include <string>
#include <vector>

#include "src/report/serialize.h"

namespace lmb::report {

// Which way "better" points for a metric, derived from its unit.
enum class MetricDirection {
  kLowerIsBetter,   // latencies: us, ns, ms, s
  kHigherIsBetter,  // rates: MB/s, GB/s, ops/s, MHz
  kNeutral,         // counts, percentages — reported, never gated
};

// Direction for a display unit ("us" -> lower, "MB/s" -> higher,
// "count"/"%"/unknown -> neutral).
MetricDirection direction_for_unit(const std::string& unit);

// Stable lowercase name ("lower", "higher", "neutral").
const char* metric_direction_name(MetricDirection d);

// Outcome of one metric's baseline-vs-current judgment.
enum class DeltaClass {
  kRegressed,        // moved the wrong way beyond the noise threshold
  kImproved,         // moved the right way beyond the noise threshold
  kUnchanged,        // within the threshold (or a neutral-direction metric)
  kMissingCurrent,   // in the baseline, absent from the current run
  kMissingBaseline,  // new in the current run (no baseline to judge against)
};

// Stable lowercase name ("regressed", "improved", ...).
const char* delta_class_name(DeltaClass c);

// Knobs for the significance gate.
struct CompareThresholds {
  // Relative floor below which a delta is never significant, whatever the
  // measured noise says (guards near-zero-stddev measurements whose
  // repetitions happened to agree).  0.05 == 5%.
  double floor_rel = 0.05;
  // Multiplier on the noise-derived relative spread.  3 sigma keeps the
  // false-positive rate of a ~500-metric suite near zero.
  double sigmas = 3.0;
  // Confidence level for the Student-t interval when a raw repetition
  // sample is available (0.90 / 0.95 / 0.99).
  double confidence = 0.95;
  // Assumed relative noise for metrics whose result carries no repetition
  // sample (multi-value sweeps leave Measurement empty): they fall back to
  // max(floor_rel, sigmas * fallback_noise_rel).  0 (default) means the
  // floor alone gates them; CI self-checks on shared runners want this
  // nonzero, since between-run scatter there dwarfs a tight floor.
  double fallback_noise_rel = 0.0;
};

// One metric's comparison row.
struct MetricDelta {
  std::string key;   // full database key: <bench>_<metric>_<unit>
  std::string bench; // owning benchmark (RunResult::name)
  std::string unit;  // display unit of the metric
  MetricDirection direction = MetricDirection::kNeutral;
  double baseline = 0.0;       // NaN when missing from the baseline
  double current = 0.0;        // NaN when missing from the current run
  double rel_delta = 0.0;      // (current - baseline) / |baseline|
  double noise_rel = 0.0;      // noise-derived relative spread (both runs)
  double threshold_rel = 0.0;  // max(floor_rel, sigmas * noise_rel)
  DeltaClass cls = DeltaClass::kUnchanged;

  // Direction-normalized delta: positive always means "worse".  0 for
  // neutral or missing entries.
  double badness() const;
};

// Whole-comparison outcome.  `deltas` is sorted worst-regression-first
// (§4.1: tables are sorted on the interesting column).
struct CompareReport {
  std::string baseline_system;
  std::string current_system;
  CompareThresholds thresholds;
  std::vector<MetricDelta> deltas;
  int regressed = 0;
  int improved = 0;
  int unchanged = 0;
  int missing = 0;  // either side

  // Run-provenance diff between the two batches' environment blocks
  // (src/obs/run_env.h).  Empty when both snapshots agree or when either
  // batch carries none (the *_has_env flags say which).
  std::vector<obs::EnvDelta> env_deltas;
  bool baseline_has_env = false;
  bool current_has_env = false;

  // Benchmarks whose two runs were timed by different clock sources
  // (Measurement::clock_source, e.g. "wall" vs "tsc").  A clock switch
  // shifts every interval by the difference in read overhead, so these
  // deltas compare instrumentation as much as code; surfaced in the
  // environment diff and the compare JSON.  One "bench: base -> cur" entry
  // per affected benchmark.
  std::vector<std::string> clock_mismatches;

  bool has_regressions() const { return regressed > 0; }

  // True when a *significant* provenance field differs (governor, turbo,
  // kernel, compiler, ...): the metric deltas then compare configuration as
  // much as code.  Informational fields (hostname, loadavg) never trip this.
  bool env_mismatch() const;
};

// Matches the batches' metrics by key and judges every delta.  Only
// metrics of ok-status results participate; a benchmark that failed in one
// run shows up as missing on that side.
CompareReport compare_batches(const ResultBatch& baseline, const ResultBatch& current,
                              const CompareThresholds& thresholds = {});

// Plain-text delta table (report::Table conventions), worst regression
// first, plus a one-line verdict.
std::string render_compare_table(const CompareReport& report);

// Plain-text provenance diff: one line per differing environment field
// (significant ones flagged), or a one-liner saying the environments match
// / which side lacks a snapshot.  Always printable — independent of
// whether the metric gate is on.
std::string render_environment_diff(const CompareReport& report);

// JSON document (schema lmbenchpp.compare.v1) for CI artifacts:
// schema, baseline_system, current_system, thresholds{}, summary{counts,
// gate_passed, env_mismatch}, environment{baseline_has_env,
// current_has_env, deltas[]}, clock_mismatches[], deltas[].
std::string compare_to_json(const CompareReport& report);

}  // namespace lmb::report

#endif  // LMBENCHPP_SRC_REPORT_COMPARE_H_
