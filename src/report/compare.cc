#include "src/report/compare.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <map>

#include "src/report/json.h"
#include "src/report/table.h"

namespace lmb::report {

namespace {

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();

// One side's view of a metric: its value plus the owning result's measured
// relative noise.
struct Entry {
  double value = kNan;
  std::string bench;
  std::string unit;
  double noise_rel = 0.0;
};

// Relative spread of one result's repetition sample: the Student-t interval
// half-width (when >= 2 repetitions were kept) over the headline minimum.
// The measurement describes the result's dominant metric; using it for the
// result's other metrics is the usual headline approximation.  Results
// without a usable sample get the configured fallback noise.
double result_noise_rel(const RunResult& r, const CompareThresholds& thresholds) {
  if (!r.measurement.has_value()) {
    return thresholds.fallback_noise_rel;
  }
  const Measurement& m = *r.measurement;
  if (m.sample.count() < 2 || !(m.ns_per_op > 0.0)) {
    return thresholds.fallback_noise_rel;
  }
  double interval = m.sample.ci_half_width(thresholds.confidence);
  return std::isfinite(interval) ? interval / m.ns_per_op : thresholds.fallback_noise_rel;
}

std::map<std::string, Entry> index_batch(const ResultBatch& batch,
                                         const CompareThresholds& thresholds) {
  std::map<std::string, Entry> out;
  for (const RunResult& r : batch.results) {
    if (!r.ok()) {
      continue;  // a failed run's side shows up as "missing"
    }
    double noise = result_noise_rel(r, thresholds);
    for (const Metric& m : r.metrics) {
      Entry e;
      e.value = m.value;
      e.bench = r.name;
      e.unit = m.unit;
      e.noise_rel = noise;
      out[r.name + "_" + m.key] = e;
    }
  }
  return out;
}

int class_rank(DeltaClass c) {
  switch (c) {
    case DeltaClass::kRegressed: return 0;
    case DeltaClass::kMissingCurrent: return 1;
    case DeltaClass::kMissingBaseline: return 2;
    case DeltaClass::kUnchanged: return 3;
    case DeltaClass::kImproved: return 4;
  }
  return 5;
}

}  // namespace

MetricDirection direction_for_unit(const std::string& unit) {
  if (unit == "us" || unit == "ns" || unit == "ms" || unit == "s") {
    return MetricDirection::kLowerIsBetter;
  }
  if (unit == "MB/s" || unit == "GB/s" || unit == "KB/s" || unit == "ops/s" ||
      unit == "op/s" || unit == "MHz") {
    return MetricDirection::kHigherIsBetter;
  }
  return MetricDirection::kNeutral;
}

const char* metric_direction_name(MetricDirection d) {
  switch (d) {
    case MetricDirection::kLowerIsBetter: return "lower";
    case MetricDirection::kHigherIsBetter: return "higher";
    case MetricDirection::kNeutral: return "neutral";
  }
  return "neutral";
}

const char* delta_class_name(DeltaClass c) {
  switch (c) {
    case DeltaClass::kRegressed: return "regressed";
    case DeltaClass::kImproved: return "improved";
    case DeltaClass::kUnchanged: return "unchanged";
    case DeltaClass::kMissingCurrent: return "missing-current";
    case DeltaClass::kMissingBaseline: return "missing-baseline";
  }
  return "unchanged";
}

bool CompareReport::env_mismatch() const {
  for (const obs::EnvDelta& d : env_deltas) {
    if (d.significant) {
      return true;
    }
  }
  return false;
}

double MetricDelta::badness() const {
  if (!std::isfinite(rel_delta)) {
    // Infinite deltas (baseline was 0) sort ahead of any finite one when
    // they point the wrong way.
    if (direction == MetricDirection::kLowerIsBetter) return rel_delta;
    if (direction == MetricDirection::kHigherIsBetter) return -rel_delta;
    return 0.0;
  }
  switch (direction) {
    case MetricDirection::kLowerIsBetter: return rel_delta;
    case MetricDirection::kHigherIsBetter: return -rel_delta;
    case MetricDirection::kNeutral: return 0.0;
  }
  return 0.0;
}

CompareReport compare_batches(const ResultBatch& baseline, const ResultBatch& current,
                              const CompareThresholds& thresholds) {
  CompareReport report;
  report.baseline_system = baseline.system;
  report.current_system = current.system;
  report.thresholds = thresholds;
  report.baseline_has_env = baseline.environment.has_value() && !baseline.environment->empty();
  report.current_has_env = current.environment.has_value() && !current.environment->empty();
  if (report.baseline_has_env && report.current_has_env) {
    report.env_deltas = obs::diff_environments(*baseline.environment, *current.environment);
  }

  // Clock-source provenance: flag any benchmark whose two runs were timed
  // by different clocks (legacy batches without the field stay silent).
  {
    std::map<std::string, std::string> base_clock;
    for (const RunResult& r : baseline.results) {
      if (r.measurement.has_value() && !r.measurement->clock_source.empty()) {
        base_clock[r.name] = r.measurement->clock_source;
      }
    }
    for (const RunResult& r : current.results) {
      if (!r.measurement.has_value() || r.measurement->clock_source.empty()) {
        continue;
      }
      auto it = base_clock.find(r.name);
      if (it != base_clock.end() && it->second != r.measurement->clock_source) {
        report.clock_mismatches.push_back(r.name + ": " + it->second + " -> " +
                                          r.measurement->clock_source);
      }
    }
  }

  std::map<std::string, Entry> base = index_batch(baseline, thresholds);
  std::map<std::string, Entry> cur = index_batch(current, thresholds);

  // Union of keys, baseline first (std::map keeps both sides sorted).
  std::map<std::string, std::pair<const Entry*, const Entry*>> merged;
  for (const auto& [key, e] : base) merged[key].first = &e;
  for (const auto& [key, e] : cur) merged[key].second = &e;

  for (const auto& [key, sides] : merged) {
    const Entry* b = sides.first;
    const Entry* c = sides.second;
    MetricDelta d;
    d.key = key;
    const Entry* any = b != nullptr ? b : c;
    d.bench = any->bench;
    d.unit = any->unit;
    d.direction = direction_for_unit(d.unit);
    d.baseline = b != nullptr ? b->value : kNan;
    d.current = c != nullptr ? c->value : kNan;
    d.noise_rel = std::max(b != nullptr ? b->noise_rel : 0.0,
                           c != nullptr ? c->noise_rel : 0.0);
    d.threshold_rel = std::max(thresholds.floor_rel, thresholds.sigmas * d.noise_rel);

    bool has_base = b != nullptr && std::isfinite(d.baseline);
    bool has_cur = c != nullptr && std::isfinite(d.current);
    if (!has_base || !has_cur) {
      d.cls = has_base ? DeltaClass::kMissingCurrent : DeltaClass::kMissingBaseline;
      d.rel_delta = kNan;
      ++report.missing;
      report.deltas.push_back(std::move(d));
      continue;
    }

    if (d.baseline == 0.0) {
      d.rel_delta = d.current == 0.0
                        ? 0.0
                        : std::copysign(std::numeric_limits<double>::infinity(),
                                        d.current - d.baseline);
    } else {
      d.rel_delta = (d.current - d.baseline) / std::fabs(d.baseline);
    }

    double worse = d.badness();
    if (d.direction == MetricDirection::kNeutral || std::fabs(worse) <= d.threshold_rel) {
      d.cls = DeltaClass::kUnchanged;
      ++report.unchanged;
    } else if (worse > 0.0) {
      d.cls = DeltaClass::kRegressed;
      ++report.regressed;
    } else {
      d.cls = DeltaClass::kImproved;
      ++report.improved;
    }
    report.deltas.push_back(std::move(d));
  }

  std::sort(report.deltas.begin(), report.deltas.end(),
            [](const MetricDelta& a, const MetricDelta& b) {
              int ra = class_rank(a.cls);
              int rb = class_rank(b.cls);
              if (ra != rb) {
                return ra < rb;
              }
              double ba = a.badness();
              double bb = b.badness();
              if (ba != bb) {
                return ba > bb;  // worst first within a class
              }
              return a.key < b.key;
            });
  return report;
}

std::string render_compare_table(const CompareReport& report) {
  Table table("Comparison: " + report.baseline_system + " -> " + report.current_system,
              {{"metric", 0},
               {"base", 4},
               {"now", 4},
               {"delta%", 2},
               {"noise%", 2},
               {"gate%", 2},
               {"verdict", 0}});
  for (const MetricDelta& d : report.deltas) {
    Cell base_cell = std::isfinite(d.baseline) ? Cell{d.baseline} : Cell{};
    Cell cur_cell = std::isfinite(d.current) ? Cell{d.current} : Cell{};
    Cell delta_cell = std::isfinite(d.rel_delta) ? Cell{d.rel_delta * 100.0} : Cell{};
    table.add_row({Cell{d.key}, base_cell, cur_cell, delta_cell, Cell{d.noise_rel * 100.0},
                   Cell{d.threshold_rel * 100.0}, Cell{std::string(delta_class_name(d.cls))}});
  }
  char verdict[256];
  std::snprintf(verdict, sizeof(verdict),
                "%d regressed, %d improved, %d unchanged, %d missing "
                "(floor %.1f%%, %.1f sigma, %.0f%% CI)\n",
                report.regressed, report.improved, report.unchanged, report.missing,
                report.thresholds.floor_rel * 100.0, report.thresholds.sigmas,
                report.thresholds.confidence * 100.0);
  return table.render() + "\n" + verdict;
}

std::string render_environment_diff(const CompareReport& report) {
  // Clock mismatches are per-benchmark provenance: they must surface even
  // when one side (or both) lacks an environment snapshot entirely.
  std::string clock_note;
  if (!report.clock_mismatches.empty()) {
    clock_note = "  clock-source change on " +
                 std::to_string(report.clock_mismatches.size()) +
                 " benchmark(s) — deltas include the instrumentation switch:\n";
    for (const std::string& m : report.clock_mismatches) {
      clock_note += "    " + m + "\n";
    }
  }
  if (!report.baseline_has_env || !report.current_has_env) {
    const char* side = !report.baseline_has_env
                           ? (!report.current_has_env ? "neither batch" : "the baseline")
                           : "the current batch";
    return std::string("environment: ") + side +
           " carries no provenance snapshot; comparability unknown\n" + clock_note;
  }
  if (report.env_deltas.empty()) {
    return "environment: identical provenance snapshots\n" + clock_note;
  }
  std::string out = "environment: " + std::to_string(report.env_deltas.size()) +
                    " field(s) differ between baseline and current\n";
  for (const obs::EnvDelta& d : report.env_deltas) {
    out += "  " + std::string(d.significant ? "[significant] " : "[info]        ") + d.field +
           ": '" + d.baseline + "' -> '" + d.current + "'\n";
  }
  if (report.env_mismatch()) {
    out +=
        "  metric deltas above may reflect the configuration change, not a code "
        "change\n";
  }
  out += clock_note;
  return out;
}

std::string compare_to_json(const CompareReport& report) {
  std::string out;
  out += "{\n";
  out += "  \"schema\": \"lmbenchpp.compare.v1\",\n";
  out += "  \"baseline_system\": " + json_quote(report.baseline_system) + ",\n";
  out += "  \"current_system\": " + json_quote(report.current_system) + ",\n";
  out += "  \"thresholds\": {\"floor_rel\": " + json_double(report.thresholds.floor_rel) +
         ", \"sigmas\": " + json_double(report.thresholds.sigmas) +
         ", \"confidence\": " + json_double(report.thresholds.confidence) +
         ", \"fallback_noise_rel\": " + json_double(report.thresholds.fallback_noise_rel) +
         "},\n";
  out += "  \"summary\": {\"regressed\": " + std::to_string(report.regressed) +
         ", \"improved\": " + std::to_string(report.improved) +
         ", \"unchanged\": " + std::to_string(report.unchanged) +
         ", \"missing\": " + std::to_string(report.missing) +
         ", \"gate_passed\": " + (report.has_regressions() ? "false" : "true") +
         ", \"env_mismatch\": " + (report.env_mismatch() ? "true" : "false") + "},\n";
  out += "  \"environment\": {\"baseline_has_env\": " +
         std::string(report.baseline_has_env ? "true" : "false") +
         ", \"current_has_env\": " + (report.current_has_env ? "true" : "false") +
         ", \"deltas\": [";
  bool first_env = true;
  for (const obs::EnvDelta& d : report.env_deltas) {
    out += first_env ? "\n" : ",\n";
    first_env = false;
    out += "    {\"field\": " + json_quote(d.field) +
           ", \"baseline\": " + json_quote(d.baseline) +
           ", \"current\": " + json_quote(d.current) +
           ", \"significant\": " + (d.significant ? "true" : "false") + "}";
  }
  out += report.env_deltas.empty() ? "]},\n" : "\n  ]},\n";
  out += "  \"clock_mismatches\": [";
  bool first_clock = true;
  for (const std::string& m : report.clock_mismatches) {
    out += first_clock ? "" : ", ";
    first_clock = false;
    out += json_quote(m);
  }
  out += "],\n";
  out += "  \"deltas\": [";
  bool first = true;
  for (const MetricDelta& d : report.deltas) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    {\"key\": " + json_quote(d.key) + ", \"bench\": " + json_quote(d.bench) +
           ", \"unit\": " + json_quote(d.unit) +
           ", \"direction\": " + json_quote(metric_direction_name(d.direction)) +
           ", \"baseline\": " + json_double(d.baseline) +
           ", \"current\": " + json_double(d.current) +
           ", \"rel_delta\": " + json_double(d.rel_delta) +
           ", \"noise_rel\": " + json_double(d.noise_rel) +
           ", \"threshold_rel\": " + json_double(d.threshold_rel) +
           ", \"class\": " + json_quote(delta_class_name(d.cls)) + "}";
  }
  out += report.deltas.empty() ? "],\n" : "\n  ],\n";
  out += "  \"count\": " + std::to_string(report.deltas.size()) + "\n";
  out += "}\n";
  return out;
}

}  // namespace lmb::report
