#include "src/report/load.h"

#include <algorithm>

#include "src/report/table.h"

namespace lmb::report {

namespace {

// True when `key` is `<scenario>_<suffix>`; extracts the scenario.
bool split_suffix(const std::string& key, const std::string& suffix, std::string* scenario) {
  if (key.size() <= suffix.size() + 1 ||
      key.compare(key.size() - suffix.size(), suffix.size(), suffix) != 0 ||
      key[key.size() - suffix.size() - 1] != '_') {
    return false;
  }
  *scenario = key.substr(0, key.size() - suffix.size() - 1);
  return true;
}

LoadScenarioRow& row_for(std::vector<LoadScenarioRow>& rows, const std::string& bench,
                         const std::string& scenario) {
  auto it = std::find_if(rows.begin(), rows.end(),
                         [&](const LoadScenarioRow& r) { return r.scenario == scenario; });
  if (it == rows.end()) {
    rows.push_back({bench, scenario, 0, 0, 0, 0, 0, 0});
    it = rows.end() - 1;
  }
  return *it;
}

}  // namespace

std::vector<LoadScenarioRow> extract_load_scenarios(const RunResult& result) {
  std::vector<LoadScenarioRow> rows;
  for (const Metric& m : result.metrics) {
    std::string scenario;
    if (split_suffix(m.key, "p50_us", &scenario)) {
      row_for(rows, result.name, scenario).p50_us = m.value;
    } else if (split_suffix(m.key, "p95_us", &scenario)) {
      row_for(rows, result.name, scenario).p95_us = m.value;
    } else if (split_suffix(m.key, "p99_us", &scenario)) {
      row_for(rows, result.name, scenario).p99_us = m.value;
    } else if (split_suffix(m.key, "p999_us", &scenario)) {
      row_for(rows, result.name, scenario).p999_us = m.value;
    } else if (split_suffix(m.key, "rps", &scenario)) {
      row_for(rows, result.name, scenario).rps = m.value;
    } else if (split_suffix(m.key, "mbs", &scenario)) {
      row_for(rows, result.name, scenario).mb_per_sec = m.value;
    }
  }
  // A row needs the percentile spine; a stray <sc>_mbs alone (e.g. a
  // bandwidth metric that merely ends in "_mbs") is not a load scenario.
  rows.erase(std::remove_if(rows.begin(), rows.end(),
                            [](const LoadScenarioRow& r) { return r.p50_us == 0.0; }),
             rows.end());
  return rows;
}

std::string render_load_table(const std::vector<LoadScenarioRow>& rows) {
  if (rows.empty()) {
    return "";
  }
  const bool any_rps = std::any_of(rows.begin(), rows.end(),
                                   [](const LoadScenarioRow& r) { return r.rps > 0; });
  const bool any_mbs = std::any_of(rows.begin(), rows.end(),
                                   [](const LoadScenarioRow& r) { return r.mb_per_sec > 0; });
  std::vector<Column> columns = {{"benchmark", 0}, {"scenario", 0}, {"p50 us", 1},
                                 {"p95 us", 1},    {"p99 us", 1},   {"p999 us", 1}};
  if (any_rps) {
    columns.push_back({"ops/s", 0});
  }
  if (any_mbs) {
    columns.push_back({"MB/s", 1});
  }
  Table table("Concurrent load tail latency", columns);
  for (const LoadScenarioRow& r : rows) {
    std::vector<Cell> row = {r.bench, r.scenario, r.p50_us, r.p95_us, r.p99_us, r.p999_us};
    if (any_rps) {
      row.push_back(r.rps > 0 ? Cell{r.rps} : Cell{std::monostate{}});
    }
    if (any_mbs) {
      row.push_back(r.mb_per_sec > 0 ? Cell{r.mb_per_sec} : Cell{std::monostate{}});
    }
    table.add_row(std::move(row));
  }
  return table.render();
}

}  // namespace lmb::report
