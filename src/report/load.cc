#include "src/report/load.h"

#include <algorithm>

#include "src/report/table.h"

namespace lmb::report {

namespace {

// True when `key` is `<scenario>_<suffix>`; extracts the scenario.
bool split_suffix(const std::string& key, const std::string& suffix, std::string* scenario) {
  if (key.size() <= suffix.size() + 1 ||
      key.compare(key.size() - suffix.size(), suffix.size(), suffix) != 0 ||
      key[key.size() - suffix.size() - 1] != '_') {
    return false;
  }
  *scenario = key.substr(0, key.size() - suffix.size() - 1);
  return true;
}

LoadScenarioRow& row_for(std::vector<LoadScenarioRow>& rows, const std::string& bench,
                         const std::string& scenario) {
  auto it = std::find_if(rows.begin(), rows.end(),
                         [&](const LoadScenarioRow& r) { return r.scenario == scenario; });
  if (it == rows.end()) {
    rows.push_back({bench, scenario, 0, 0, 0, 0, 0, 0});
    it = rows.end() - 1;
  }
  return *it;
}

}  // namespace

std::vector<LoadScenarioRow> extract_load_scenarios(const RunResult& result) {
  std::vector<LoadScenarioRow> rows;
  for (const Metric& m : result.metrics) {
    std::string scenario;
    if (split_suffix(m.key, "p50_us", &scenario)) {
      row_for(rows, result.name, scenario).p50_us = m.value;
    } else if (split_suffix(m.key, "p95_us", &scenario)) {
      row_for(rows, result.name, scenario).p95_us = m.value;
    } else if (split_suffix(m.key, "p99_us", &scenario)) {
      row_for(rows, result.name, scenario).p99_us = m.value;
    } else if (split_suffix(m.key, "p999_us", &scenario)) {
      row_for(rows, result.name, scenario).p999_us = m.value;
    } else if (split_suffix(m.key, "rps", &scenario)) {
      row_for(rows, result.name, scenario).rps = m.value;
    } else if (split_suffix(m.key, "mbs", &scenario)) {
      row_for(rows, result.name, scenario).mb_per_sec = m.value;
    }
  }
  // A row needs the percentile spine; a stray <sc>_mbs alone (e.g. a
  // bandwidth metric that merely ends in "_mbs") is not a load scenario.
  rows.erase(std::remove_if(rows.begin(), rows.end(),
                            [](const LoadScenarioRow& r) { return r.p50_us == 0.0; }),
             rows.end());
  return rows;
}

namespace {

// True when `key` is `loopback_s<N>_<suffix>` with N all digits; extracts N.
bool split_shard_key(const std::string& key, const std::string& suffix, int* shards) {
  std::string scenario;
  if (!split_suffix(key, suffix, &scenario)) {
    return false;
  }
  constexpr const char* kPrefix = "loopback_s";
  constexpr size_t kPrefixLen = 10;
  if (scenario.size() <= kPrefixLen || scenario.compare(0, kPrefixLen, kPrefix) != 0) {
    return false;
  }
  int n = 0;
  for (size_t i = kPrefixLen; i < scenario.size(); ++i) {
    if (scenario[i] < '0' || scenario[i] > '9') {
      return false;
    }
    n = n * 10 + (scenario[i] - '0');
  }
  *shards = n;
  return true;
}

ShardScalingRow& shard_row_for(std::vector<ShardScalingRow>& rows, const std::string& bench,
                               int shards) {
  auto it = std::find_if(rows.begin(), rows.end(),
                         [&](const ShardScalingRow& r) { return r.shards == shards; });
  if (it == rows.end()) {
    rows.push_back({bench, shards, 0, 0, 0, 0});
    it = rows.end() - 1;
  }
  return *it;
}

}  // namespace

std::vector<ShardScalingRow> extract_shard_scaling(const RunResult& result) {
  std::vector<ShardScalingRow> rows;
  for (const Metric& m : result.metrics) {
    int shards = 0;
    if (split_shard_key(m.key, "rps", &shards)) {
      shard_row_for(rows, result.name, shards).rps = m.value;
    } else if (split_shard_key(m.key, "mbs", &shards)) {
      shard_row_for(rows, result.name, shards).mb_per_sec = m.value;
    } else if (split_shard_key(m.key, "p99_us", &shards)) {
      shard_row_for(rows, result.name, shards).p99_us = m.value;
    } else if (split_shard_key(m.key, "wakeups_per_req", &shards)) {
      shard_row_for(rows, result.name, shards).wakeups_per_req = m.value;
    }
  }
  std::sort(rows.begin(), rows.end(), [](const ShardScalingRow& a, const ShardScalingRow& b) {
    return a.bench == b.bench ? a.shards < b.shards : a.bench < b.bench;
  });
  return rows;
}

std::string render_shard_table(const std::vector<ShardScalingRow>& rows) {
  if (rows.empty()) {
    return "";
  }
  const bool any_rps =
      std::any_of(rows.begin(), rows.end(), [](const ShardScalingRow& r) { return r.rps > 0; });
  const bool any_mbs = std::any_of(rows.begin(), rows.end(),
                                   [](const ShardScalingRow& r) { return r.mb_per_sec > 0; });
  std::vector<Column> columns = {{"benchmark", 0}, {"shards", 0}};
  if (any_rps) {
    columns.push_back({"ops/s", 0});
  }
  if (any_mbs) {
    columns.push_back({"MB/s", 1});
  }
  columns.push_back({"p99 us", 1});
  columns.push_back({"wakeups/req", 2});
  columns.push_back({"speedup", 2});
  Table table("Load engine shard scaling", columns);
  for (const ShardScalingRow& r : rows) {
    // Speedup is relative to the same benchmark's 1-shard row, in whichever
    // throughput unit that benchmark reports.
    double base = 0;
    for (const ShardScalingRow& b : rows) {
      if (b.bench == r.bench && b.shards == 1) {
        base = b.mb_per_sec > 0 ? b.mb_per_sec : b.rps;
      }
    }
    const double mine = r.mb_per_sec > 0 ? r.mb_per_sec : r.rps;
    std::vector<Cell> row = {r.bench, static_cast<double>(r.shards)};
    if (any_rps) {
      row.push_back(r.rps > 0 ? Cell{r.rps} : Cell{std::monostate{}});
    }
    if (any_mbs) {
      row.push_back(r.mb_per_sec > 0 ? Cell{r.mb_per_sec} : Cell{std::monostate{}});
    }
    row.push_back(r.p99_us > 0 ? Cell{r.p99_us} : Cell{std::monostate{}});
    row.push_back(Cell{r.wakeups_per_req});
    row.push_back(base > 0 && mine > 0 ? Cell{mine / base} : Cell{std::monostate{}});
    table.add_row(std::move(row));
  }
  return table.render();
}

std::string render_load_table(const std::vector<LoadScenarioRow>& rows) {
  if (rows.empty()) {
    return "";
  }
  const bool any_rps = std::any_of(rows.begin(), rows.end(),
                                   [](const LoadScenarioRow& r) { return r.rps > 0; });
  const bool any_mbs = std::any_of(rows.begin(), rows.end(),
                                   [](const LoadScenarioRow& r) { return r.mb_per_sec > 0; });
  std::vector<Column> columns = {{"benchmark", 0}, {"scenario", 0}, {"p50 us", 1},
                                 {"p95 us", 1},    {"p99 us", 1},   {"p999 us", 1}};
  if (any_rps) {
    columns.push_back({"ops/s", 0});
  }
  if (any_mbs) {
    columns.push_back({"MB/s", 1});
  }
  Table table("Concurrent load tail latency", columns);
  for (const LoadScenarioRow& r : rows) {
    std::vector<Cell> row = {r.bench, r.scenario, r.p50_us, r.p95_us, r.p99_us, r.p999_us};
    if (any_rps) {
      row.push_back(r.rps > 0 ? Cell{r.rps} : Cell{std::monostate{}});
    }
    if (any_mbs) {
      row.push_back(r.mb_per_sec > 0 ? Cell{r.mb_per_sec} : Cell{std::monostate{}});
    }
    table.add_row(std::move(row));
  }
  return table.render();
}

}  // namespace lmb::report
