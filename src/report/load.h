// Tail-latency reports for the concurrent load scenarios.
//
// The c10k benchmarks (lat_tcp_n, lat_rpc_n, bw_tcp_n) emit scenario-
// prefixed percentile metrics — loopback_p50_us .. loopback_p999_us,
// sim_p999_us — plus a throughput metric per scenario (<sc>_rps or
// <sc>_mbs).  This module folds those back into one row per (benchmark,
// scenario) and renders the paper-style table run_suite prints after a
// load run: median through p999 across, scenarios down, so the eye can
// walk the tail growing as the network or the concurrency changes.
#ifndef LMBENCHPP_SRC_REPORT_LOAD_H_
#define LMBENCHPP_SRC_REPORT_LOAD_H_

#include <string>
#include <vector>

#include "src/core/run_result.h"

namespace lmb::report {

struct LoadScenarioRow {
  std::string bench;     // "lat_tcp_n"
  std::string scenario;  // "loopback", "sim"
  double p50_us = 0.0;
  double p95_us = 0.0;
  double p99_us = 0.0;
  double p999_us = 0.0;
  // At most one of these is set per scenario (0 = absent).
  double rps = 0.0;
  double mb_per_sec = 0.0;
};

// Extracts every scenario with at least a <sc>_p50_us metric from `result`.
// Results without load metrics yield an empty vector.  Scenario order
// follows first appearance in the metric list.
std::vector<LoadScenarioRow> extract_load_scenarios(const RunResult& result);

// "Concurrent load tail latency" table: one row per scenario, percentile
// columns in microseconds and a throughput column (ops/s or MB/s).
// Empty string when `rows` is empty.
std::string render_load_table(const std::vector<LoadScenarioRow>& rows);

// One shard count of a load benchmark's scaling sweep (--shards=1,2,4),
// reassembled from the loopback_s<N>_* metric variants.
struct ShardScalingRow {
  std::string bench;  // "bw_tcp_n"
  int shards = 0;
  // At most one of these is set per benchmark (0 = absent).
  double rps = 0.0;
  double mb_per_sec = 0.0;
  double p99_us = 0.0;
  double wakeups_per_req = 0.0;
};

// Extracts every loopback_s<N>_{rps,mbs,p99_us,wakeups_per_req} group from
// `result`, ordered by shard count.  Results without shard variants yield
// an empty vector.
std::vector<ShardScalingRow> extract_shard_scaling(const RunResult& result);

// "Load engine shard scaling" table: shard counts down, throughput / p99 /
// wakeups-per-request across, plus each row's speedup over the 1-shard row
// when one is present.  Empty string when `rows` is empty.
std::string render_shard_table(const std::vector<ShardScalingRow>& rows);

}  // namespace lmb::report

#endif  // LMBENCHPP_SRC_REPORT_LOAD_H_
