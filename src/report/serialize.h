// Machine-readable emitters for RunResult batches.
//
// The paper's database is a line-oriented text format (src/db/result_set.h);
// these emitters are the modern complements: JSON for tooling/CI pipelines
// and CSV for spreadsheets.  Both are lossless about *absence* — a failed
// benchmark's missing metrics serialize as JSON null / empty CSV cells,
// never as 0 (a 0 is a measurement; a blank is the lack of one).
#ifndef LMBENCHPP_SRC_REPORT_SERIALIZE_H_
#define LMBENCHPP_SRC_REPORT_SERIALIZE_H_

#include <optional>
#include <string>
#include <vector>

#include "src/core/run_result.h"
#include "src/obs/run_env.h"

namespace lmb::report {

// Whole-suite timing summary: total wall clock plus how the adaptive
// engine behaved (worker count, calibration-cache hit/miss totals).
struct SuiteTiming {
  double total_wall_ms = 0.0;
  int jobs = 1;
  bool cal_cache = false;  // was a calibration cache in use at all
  int cal_hits = 0;
  int cal_misses = 0;
};

// One suite invocation's output: where it ran plus what it produced.
struct ResultBatch {
  std::string system;  // host label, e.g. from SystemInfo::label()
  std::vector<RunResult> results;
  // Suite-level timing block; absent for batches not produced by a full
  // suite run (serializes as JSON null).
  std::optional<SuiteTiming> timing;
  // Run-provenance snapshot (src/obs/run_env.h) captured when the batch
  // ran; absent for batches from producers that never captured one
  // (serializes as JSON null).  lmbench_compare diffs this block between
  // baseline and current so a config change is never mistaken for a code
  // change.
  std::optional<obs::RunEnvironment> environment;
};

// Schema identifier embedded in every JSON document.
inline constexpr const char* kResultSchema = "lmbenchpp.results.v1";

// Pretty-printed JSON document (2-space indent, trailing newline).
// Field names are stable: schema, system, environment ({fields...,
// warnings[]} — null when absent), timing (total_wall_ms, jobs, cal_cache,
// cal_hits, cal_misses — null when absent), results[], and per result name,
// category, status, error, wall_ms, display, metrics[] (key, value, unit),
// measurement (ns_per_op, mean_ns_per_op, median_ns_per_op, max_ns_per_op,
// stddev_ns_per_op, samples[], iterations, repetitions, clock_overhead_ns,
// clock_source, nanoscale, interval_overhead_ns, converged,
// calibration_cached, ipc, cache_miss_rate, counters), metadata{}.
// clock_source names the time source that produced the intervals ("wall",
// "tsc", ...; null in legacy documents); interval_overhead_ns is the
// measured per-interval clock+counter read cost and is null — never 0 —
// outside nanoscale mode.
// Every measurement carries ipc and cache_miss_rate keys; they are null —
// never 0 — when hardware counters were off or unavailable, and the counters
// object (intervals, cycles, instructions, cache_refs, cache_misses,
// ctx_switches, multiplexed) is null as a whole in that case.
//
// Numbers are emitted with std::to_chars (shortest round-trippable form,
// locale-independent).  JSON has no NaN/Inf: non-finite doubles serialize
// as null and parse back as NaN — explicitly missing, never 0.
std::string to_json(const ResultBatch& batch);

// Parses a document produced by to_json (any JSON with that shape works).
// Throws std::invalid_argument on malformed input or schema mismatch.
ResultBatch from_json(const std::string& text);

// CSV with header `name,category,status,wall_ms,metric,value,unit,error`:
// one row per metric, one row (blank metric/value/unit) for results
// without metrics.  RFC-4180 quoting.  When `timing` is non-null a final
// `__suite__` row carries the total wall clock (metric total_wall_ms).
std::string to_csv(const std::vector<RunResult>& results,
                   const SuiteTiming* timing = nullptr);

// The low-level JSON helpers (json_quote, json_double, the parser) live in
// src/report/json.h, shared by every reader/writer in this module.

}  // namespace lmb::report

#endif  // LMBENCHPP_SRC_REPORT_SERIALIZE_H_
