// Trace exporters/importer for obs::TraceSink event streams.
//
// Two output shapes from one event list:
//  * trace_to_json — the lmbenchpp.trace.v1 document: a JSON object with
//    schema/system metadata plus a `traceEvents` array.  Each event is
//    Chrome trace_event-shaped (name/cat/ph/ts/dur/pid/tid/args with
//    microsecond timestamps) with extra keys (`tsNs`, `durNs`, `bench`)
//    carrying the exact nanosecond values.  Because Chrome's "JSON Object
//    Format" tolerates unknown top-level and per-event keys, the very same
//    file loads in about:tracing and ui.perfetto.dev unmodified.
//  * trace_to_chrome — the classic bare-array Chrome format, for tools that
//    reject the object wrapper.
//
// trace_from_json parses a v1 document back into events, preferring the
// exact nanosecond keys over the rounded microsecond ones.  Argument order
// within an event is not preserved (args round-trip sorted by key).
#ifndef LMBENCHPP_SRC_REPORT_TRACE_IO_H_
#define LMBENCHPP_SRC_REPORT_TRACE_IO_H_

#include <string>
#include <vector>

#include "src/obs/trace.h"

namespace lmb::report {

// Schema identifier embedded in every v1 trace document.
inline constexpr const char* kTraceSchema = "lmbenchpp.trace.v1";

// A parsed trace document: who produced it plus the event stream.
struct TraceDoc {
  std::string system;
  std::vector<obs::TraceEvent> events;
};

// lmbenchpp.trace.v1 JSON document (also a valid Chrome "JSON Object
// Format" trace — load it in about:tracing / Perfetto directly).
std::string trace_to_json(const std::vector<obs::TraceEvent>& events,
                          const std::string& system = "");

// Classic Chrome trace_event "JSON Array Format": a bare array of events.
std::string trace_to_chrome(const std::vector<obs::TraceEvent>& events);

// Parses a trace_to_json document.  Throws std::invalid_argument on
// malformed input or schema mismatch.
TraceDoc trace_from_json(const std::string& text);

}  // namespace lmb::report

#endif  // LMBENCHPP_SRC_REPORT_TRACE_IO_H_
