#include "src/report/table.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <numeric>
#include <sstream>
#include <stdexcept>

namespace lmb::report {

std::string format_number(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  std::string s = buf;
  if (precision > 0 && s.find('.') != std::string::npos) {
    while (!s.empty() && s.back() == '0') {
      s.pop_back();
    }
    if (!s.empty() && s.back() == '.') {
      s.pop_back();
    }
  }
  return s;
}

Table::Table(std::string title, std::vector<Column> columns)
    : title_(std::move(title)), columns_(std::move(columns)) {
  if (columns_.empty()) {
    throw std::invalid_argument("Table needs at least one column");
  }
}

void Table::add_row(std::vector<Cell> row) {
  if (row.size() != columns_.size()) {
    throw std::invalid_argument("row has " + std::to_string(row.size()) + " cells, table has " +
                                std::to_string(columns_.size()) + " columns");
  }
  rows_.push_back(std::move(row));
  row_markers_.emplace_back();
}

void Table::mark_last_row(const std::string& marker) {
  if (rows_.empty()) {
    throw std::logic_error("mark_last_row on empty table");
  }
  row_markers_.back() = marker;
}

void Table::sort_by(size_t column, SortOrder order) {
  if (column >= columns_.size()) {
    throw std::out_of_range("sort column out of range");
  }
  if (order == SortOrder::kNone) {
    sort_column_.reset();
    return;
  }
  sort_column_ = column;

  std::vector<size_t> idx(rows_.size());
  std::iota(idx.begin(), idx.end(), 0);
  auto key = [&](size_t i) -> std::optional<double> {
    const Cell& c = rows_[i][column];
    if (const double* d = std::get_if<double>(&c)) {
      return *d;
    }
    return std::nullopt;
  };
  std::stable_sort(idx.begin(), idx.end(), [&](size_t a, size_t b) {
    auto ka = key(a), kb = key(b);
    if (!ka || !kb) {
      return static_cast<bool>(ka) > static_cast<bool>(kb);  // empties last
    }
    return order == SortOrder::kAscending ? *ka < *kb : *ka > *kb;
  });

  std::vector<std::vector<Cell>> new_rows;
  std::vector<std::string> new_markers;
  new_rows.reserve(rows_.size());
  new_markers.reserve(rows_.size());
  for (size_t i : idx) {
    new_rows.push_back(std::move(rows_[i]));
    new_markers.push_back(std::move(row_markers_[i]));
  }
  rows_ = std::move(new_rows);
  row_markers_ = std::move(new_markers);
}

std::string Table::format_cell(const Cell& cell, size_t column) const {
  if (std::holds_alternative<std::monostate>(cell)) {
    return "--";
  }
  if (const std::string* s = std::get_if<std::string>(&cell)) {
    return *s;
  }
  return format_number(std::get<double>(cell), columns_[column].precision);
}

std::string Table::render() const {
  std::vector<std::string> headers;
  headers.reserve(columns_.size());
  for (size_t c = 0; c < columns_.size(); ++c) {
    std::string h = columns_[c].header;
    if (sort_column_ && *sort_column_ == c) {
      h += "*";
    }
    headers.push_back(std::move(h));
  }

  std::vector<size_t> widths(columns_.size());
  for (size_t c = 0; c < columns_.size(); ++c) {
    widths[c] = headers[c].size();
  }
  std::vector<std::vector<std::string>> cells(rows_.size());
  for (size_t r = 0; r < rows_.size(); ++r) {
    cells[r].reserve(columns_.size());
    for (size_t c = 0; c < columns_.size(); ++c) {
      cells[r].push_back(format_cell(rows_[r][c], c));
      widths[c] = std::max(widths[c], cells[r][c].size());
    }
  }

  std::ostringstream out;
  out << title_ << "\n";
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      // First column (system name) left-aligned, the rest right-aligned.
      if (c == 0) {
        out << row[c] << std::string(widths[c] - row[c].size(), ' ');
      } else {
        out << std::string(widths[c] - row[c].size(), ' ') << row[c];
      }
      if (c + 1 < row.size()) {
        out << "  ";
      }
    }
  };
  emit_row(headers);
  out << "\n";
  size_t total = std::accumulate(widths.begin(), widths.end(), size_t{0}) + 2 * (widths.size() - 1);
  out << std::string(total, '-') << "\n";
  for (size_t r = 0; r < rows_.size(); ++r) {
    emit_row(cells[r]);
    if (!row_markers_[r].empty()) {
      out << "  <-- " << row_markers_[r];
    }
    out << "\n";
  }
  return out.str();
}

}  // namespace lmb::report
