// Minimal JSON value model, parser, and emission helpers shared by the
// report layer's readers/writers (serialize.cc, trace_io.cc, compare.cc).
//
// The parser covers standard JSON — the subset the emitters in this module
// produce plus anything shaped like it.  It exists so the repo's readers
// agree on one implementation instead of growing per-file copies (the
// original lived inside serialize.cc).
#ifndef LMBENCHPP_SRC_REPORT_JSON_H_
#define LMBENCHPP_SRC_REPORT_JSON_H_

#include <map>
#include <stdexcept>
#include <string>
#include <variant>
#include <vector>

namespace lmb::report {

struct JsonValue;
using JsonArray = std::vector<JsonValue>;
using JsonObject = std::map<std::string, JsonValue>;

struct JsonValue {
  std::variant<std::nullptr_t, bool, double, std::string, JsonArray, JsonObject> v =
      nullptr;

  bool is_null() const { return std::holds_alternative<std::nullptr_t>(v); }
  const JsonObject& object() const {
    if (!std::holds_alternative<JsonObject>(v)) {
      throw std::invalid_argument("json: expected object");
    }
    return std::get<JsonObject>(v);
  }
  const JsonArray& array() const {
    if (!std::holds_alternative<JsonArray>(v)) {
      throw std::invalid_argument("json: expected array");
    }
    return std::get<JsonArray>(v);
  }
  const std::string& str() const {
    if (!std::holds_alternative<std::string>(v)) {
      throw std::invalid_argument("json: expected string");
    }
    return std::get<std::string>(v);
  }
  double number() const {
    if (!std::holds_alternative<double>(v)) {
      throw std::invalid_argument("json: expected number");
    }
    return std::get<double>(v);
  }
  bool boolean() const {
    if (!std::holds_alternative<bool>(v)) {
      throw std::invalid_argument("json: expected boolean");
    }
    return std::get<bool>(v);
  }
};

// Parses one JSON document (whole input; trailing characters are an error).
// Throws std::invalid_argument with the failing offset on malformed input.
JsonValue parse_json(const std::string& text);

// Member lookup; nullptr when the key is absent.
const JsonValue* find(const JsonObject& obj, const std::string& key);

// Inverse of json_double's non-finite handling: a JSON null in a numeric
// position parses back as NaN, preserving round trips for values the
// format itself cannot carry.
double number_or_nan(const JsonValue& v);

// Compact single-line serialization of a parsed value (objects keep the
// map's key order).  parse_json(to_text(v)) round-trips; non-finite numbers
// emit as null per json_double.
std::string to_text(const JsonValue& v);

// Escaped and double-quoted JSON string literal.
std::string json_quote(const std::string& s);

// Shortest round-trippable decimal form via std::to_chars (exact and
// locale-independent — snprintf %g honors LC_NUMERIC and can emit a ','
// decimal separator, which is invalid JSON).  JSON has no NaN/Inf, so those
// become "null" (another "explicitly missing", never 0).
std::string json_double(double v);

}  // namespace lmb::report

#endif  // LMBENCHPP_SRC_REPORT_JSON_H_
