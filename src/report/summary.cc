#include "src/report/summary.h"

#include <algorithm>
#include <sstream>
#include <vector>

#include "src/db/metrics.h"
#include "src/report/table.h"

namespace lmb::report {

namespace {

const char* section_title(const std::string& section) {
  if (section == "processor") {
    return "Processor and system calls";
  }
  if (section == "ipc") {
    return "Context switching and IPC latencies";
  }
  if (section == "bandwidth") {
    return "Bandwidths";
  }
  if (section == "file+vm") {
    return "Memory hierarchy, file and VM latencies";
  }
  return "Other";
}

}  // namespace

std::string render_summary(const db::ResultDatabase& database) {
  std::vector<const db::ResultSet*> systems = database.all();
  if (systems.empty()) {
    return "(no result sets)\n";
  }

  std::ostringstream out;
  out << "lmbench++ suite summary — " << systems.size() << " system(s)\n";

  std::string current_section;
  std::vector<std::string> lines;
  for (const auto& metric : db::standard_metrics()) {
    if (metric.section != current_section) {
      current_section = metric.section;
      out << "\n" << section_title(current_section) << "\n";
      // Column headers.
      out << "  " << std::string(22, ' ');
      for (const auto* sys : systems) {
        std::string name = sys->system();
        if (name.size() > 14) {
          name.resize(14);
        }
        out << " " << std::string(15 - name.size(), ' ') << name;
      }
      out << "\n";
    }

    // Best value across systems (for the '*' marker).
    double best = metric.lower_is_better ? 1e300 : -1e300;
    int have = 0;
    for (const auto* sys : systems) {
      auto v = sys->get(metric.key);
      if (v) {
        ++have;
        best = metric.lower_is_better ? std::min(best, *v) : std::max(best, *v);
      }
    }

    std::string label = metric.label + " (" + metric.unit + ")";
    if (label.size() > 22) {
      label.resize(22);
    }
    out << "  " << label << std::string(22 - label.size(), ' ');
    for (const auto* sys : systems) {
      auto v = sys->get(metric.key);
      std::string cell;
      if (!v) {
        cell = "--";
      } else {
        int precision = *v < 10 ? 2 : (*v < 1000 ? 1 : 0);
        cell = format_number(*v, precision);
        if (systems.size() > 1 && have > 1 && *v == best) {
          cell += "*";
        }
      }
      out << " " << std::string(cell.size() < 15 ? 15 - cell.size() : 0, ' ') << cell;
    }
    out << "\n";
  }
  if (systems.size() > 1) {
    out << "\n('*' marks the best system per row)\n";
  }
  return out.str();
}

}  // namespace lmb::report
