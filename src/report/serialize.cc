#include "src/report/serialize.h"

#include <cmath>
#include <cstdio>

#include "src/report/json.h"

namespace lmb::report {

namespace {

std::string json_string(const std::string& s) { return json_quote(s); }

std::string json_number(double v) { return json_double(v); }

}  // namespace

// ---------------------------------------------------------------------------
// JSON emission

std::string to_json(const ResultBatch& batch) {
  std::string out;
  out += "{\n";
  out += "  \"schema\": " + json_string(kResultSchema) + ",\n";
  out += "  \"system\": " + json_string(batch.system) + ",\n";
  if (batch.environment.has_value() && !batch.environment->empty()) {
    out += "  \"environment\": {\n";
    for (const obs::EnvField& f : obs::environment_fields(*batch.environment)) {
      out += "    " + json_string(f.name) + ": " + json_string(f.value) + ",\n";
    }
    out += "    \"warnings\": [";
    bool first_warning = true;
    for (const std::string& w : batch.environment->warnings) {
      out += first_warning ? "" : ", ";
      first_warning = false;
      out += json_string(w);
    }
    out += "]\n";
    out += "  },\n";
  } else {
    out += "  \"environment\": null,\n";
  }
  if (batch.timing.has_value()) {
    const SuiteTiming& t = *batch.timing;
    out += "  \"timing\": {\n";
    out += "    \"total_wall_ms\": " + json_number(t.total_wall_ms) + ",\n";
    out += "    \"jobs\": " + std::to_string(t.jobs) + ",\n";
    out += std::string("    \"cal_cache\": ") + (t.cal_cache ? "true" : "false") + ",\n";
    out += "    \"cal_hits\": " + std::to_string(t.cal_hits) + ",\n";
    out += "    \"cal_misses\": " + std::to_string(t.cal_misses) + "\n";
    out += "  },\n";
  } else {
    out += "  \"timing\": null,\n";
  }
  out += "  \"results\": [";
  bool first_result = true;
  for (const RunResult& r : batch.results) {
    out += first_result ? "\n" : ",\n";
    first_result = false;
    out += "    {\n";
    out += "      \"name\": " + json_string(r.name) + ",\n";
    out += "      \"category\": " + json_string(r.category) + ",\n";
    out += "      \"status\": " + json_string(run_status_name(r.status)) + ",\n";
    out += "      \"error\": " + (r.error.empty() ? "null" : json_string(r.error)) + ",\n";
    out += "      \"wall_ms\": " + (r.wall_ms > 0 ? json_number(r.wall_ms) : "null") + ",\n";
    out += "      \"display\": " + (r.display.empty() ? "null" : json_string(r.display)) + ",\n";
    out += "      \"metrics\": [";
    bool first_metric = true;
    for (const Metric& m : r.metrics) {
      out += first_metric ? "\n" : ",\n";
      first_metric = false;
      out += "        {\"key\": " + json_string(m.key) + ", \"value\": " + json_number(m.value) +
             ", \"unit\": " + json_string(m.unit) + "}";
    }
    out += first_metric ? "],\n" : "\n      ],\n";
    if (r.measurement.has_value()) {
      const Measurement& m = *r.measurement;
      out += "      \"measurement\": {\n";
      out += "        \"ns_per_op\": " + json_number(m.ns_per_op) + ",\n";
      out += "        \"mean_ns_per_op\": " + json_number(m.mean_ns_per_op) + ",\n";
      out += "        \"median_ns_per_op\": " + json_number(m.median_ns_per_op) + ",\n";
      out += "        \"max_ns_per_op\": " + json_number(m.max_ns_per_op) + ",\n";
      // Variability detail for noise-aware comparison (lmbench_compare):
      // the per-repetition sample and its spread.
      out += "        \"stddev_ns_per_op\": " +
             (m.sample.count() >= 2 ? json_number(m.sample.stddev()) : "null") + ",\n";
      out += "        \"samples\": [";
      bool first_sample = true;
      for (double s : m.sample.values()) {
        out += first_sample ? "" : ", ";
        first_sample = false;
        out += json_number(s);
      }
      out += "],\n";
      out += "        \"iterations\": " + std::to_string(m.iterations) + ",\n";
      out += "        \"repetitions\": " + std::to_string(m.repetitions) + ",\n";
      out += "        \"clock_overhead_ns\": " + std::to_string(m.clock_overhead_ns) + ",\n";
      // Time-source provenance: which clock produced the intervals, whether
      // the batched nanoscale path ran, and — nanoscale only — the measured
      // per-interval clock(+counter) read cost.  Null, never 0, outside
      // nanoscale mode.
      out += "        \"clock_source\": " +
             (m.clock_source.empty() ? std::string("null") : json_string(m.clock_source)) +
             ",\n";
      out += std::string("        \"nanoscale\": ") + (m.nanoscale ? "true" : "false") + ",\n";
      out += "        \"interval_overhead_ns\": " +
             (m.interval_overhead_ns >= 0 ? std::to_string(m.interval_overhead_ns)
                                          : std::string("null")) +
             ",\n";
      out += std::string("        \"converged\": ") + (m.converged ? "true" : "false") + ",\n";
      out += std::string("        \"calibration_cached\": ") +
             (m.calibration_cached ? "true" : "false") + ",\n";
      // Counter-derived ratios are ALWAYS present per measurement: null —
      // never 0 — when sampling was off or perf_event_open unavailable.
      const obs::CounterTotals* ct =
          m.counters.has_value() ? &*m.counters : nullptr;
      out += "        \"ipc\": " + (ct != nullptr ? json_number(ct->ipc()) : "null") + ",\n";
      out += "        \"cache_miss_rate\": " +
             (ct != nullptr ? json_number(ct->cache_miss_rate()) : "null") + ",\n";
      if (ct != nullptr) {
        out += "        \"counters\": {\n";
        out += "          \"intervals\": " + std::to_string(ct->intervals) + ",\n";
        out += "          \"cycles\": " + json_number(ct->cycles) + ",\n";
        out += "          \"instructions\": " + json_number(ct->instructions) + ",\n";
        out += "          \"cache_refs\": " +
               (ct->has_cache ? json_number(ct->cache_refs) : "null") + ",\n";
        out += "          \"cache_misses\": " +
               (ct->has_cache ? json_number(ct->cache_misses) : "null") + ",\n";
        out += "          \"ctx_switches\": " +
               (ct->has_ctx ? json_number(ct->ctx_switches) : "null") + ",\n";
        out += std::string("          \"multiplexed\": ") +
               (ct->multiplexed ? "true" : "false") + "\n";
        out += "        }\n";
      } else {
        out += "        \"counters\": null\n";
      }
      out += "      },\n";
    } else {
      out += "      \"measurement\": null,\n";
    }
    out += "      \"metadata\": {";
    bool first_meta = true;
    for (const auto& [key, value] : r.metadata) {
      out += first_meta ? "" : ", ";
      first_meta = false;
      out += json_string(key) + ": " + json_string(value);
    }
    out += "}\n";
    out += "    }";
  }
  out += batch.results.empty() ? "],\n" : "\n  ],\n";
  out += "  \"count\": " + std::to_string(batch.results.size()) + "\n";
  out += "}\n";
  return out;
}

ResultBatch from_json(const std::string& text) {
  JsonValue root = parse_json(text);
  const JsonObject& doc = root.object();

  const JsonValue* schema = find(doc, "schema");
  if (schema == nullptr || schema->str() != kResultSchema) {
    throw std::invalid_argument("json: missing or unknown schema (want " +
                                std::string(kResultSchema) + ")");
  }

  ResultBatch batch;
  if (const JsonValue* system = find(doc, "system"); system != nullptr && !system->is_null()) {
    batch.system = system->str();
  }
  if (const JsonValue* env = find(doc, "environment"); env != nullptr && !env->is_null()) {
    obs::RunEnvironment e;
    for (const auto& [key, value] : env->object()) {
      if (key == "warnings") {
        for (const JsonValue& w : value.array()) {
          e.warnings.push_back(w.str());
        }
      } else if (!value.is_null()) {
        obs::set_environment_field(e, key, value.str());
      }
    }
    batch.environment = std::move(e);
  }
  if (const JsonValue* timing = find(doc, "timing"); timing != nullptr && !timing->is_null()) {
    const JsonObject& to = timing->object();
    SuiteTiming t;
    if (const JsonValue* f = find(to, "total_wall_ms")) t.total_wall_ms = f->number();
    if (const JsonValue* f = find(to, "jobs")) t.jobs = static_cast<int>(f->number());
    if (const JsonValue* f = find(to, "cal_cache")) t.cal_cache = f->boolean();
    if (const JsonValue* f = find(to, "cal_hits")) t.cal_hits = static_cast<int>(f->number());
    if (const JsonValue* f = find(to, "cal_misses")) {
      t.cal_misses = static_cast<int>(f->number());
    }
    batch.timing = t;
  }
  const JsonValue* results = find(doc, "results");
  if (results == nullptr) {
    throw std::invalid_argument("json: missing results array");
  }
  for (const JsonValue& entry : results->array()) {
    const JsonObject& obj = entry.object();
    RunResult r;
    if (const JsonValue* v = find(obj, "name")) r.name = v->str();
    if (const JsonValue* v = find(obj, "category")) r.category = v->str();
    if (const JsonValue* v = find(obj, "status")) r.status = run_status_from_name(v->str());
    if (const JsonValue* v = find(obj, "error"); v != nullptr && !v->is_null()) {
      r.error = v->str();
    }
    if (const JsonValue* v = find(obj, "wall_ms"); v != nullptr && !v->is_null()) {
      r.wall_ms = v->number();
    }
    if (const JsonValue* v = find(obj, "display"); v != nullptr && !v->is_null()) {
      r.display = v->str();
    }
    if (const JsonValue* v = find(obj, "metrics")) {
      for (const JsonValue& mv : v->array()) {
        const JsonObject& mo = mv.object();
        Metric m;
        if (const JsonValue* f = find(mo, "key")) m.key = f->str();
        if (const JsonValue* f = find(mo, "value")) m.value = number_or_nan(*f);
        if (const JsonValue* f = find(mo, "unit")) m.unit = f->str();
        r.metrics.push_back(std::move(m));
      }
    }
    if (const JsonValue* v = find(obj, "measurement"); v != nullptr && !v->is_null()) {
      const JsonObject& mo = v->object();
      Measurement m;
      if (const JsonValue* f = find(mo, "ns_per_op")) m.ns_per_op = number_or_nan(*f);
      if (const JsonValue* f = find(mo, "mean_ns_per_op")) m.mean_ns_per_op = number_or_nan(*f);
      if (const JsonValue* f = find(mo, "median_ns_per_op")) {
        m.median_ns_per_op = number_or_nan(*f);
      }
      if (const JsonValue* f = find(mo, "max_ns_per_op")) m.max_ns_per_op = number_or_nan(*f);
      if (const JsonValue* f = find(mo, "samples"); f != nullptr && !f->is_null()) {
        for (const JsonValue& sv : f->array()) {
          m.sample.add(number_or_nan(sv));
        }
      }
      if (const JsonValue* f = find(mo, "iterations")) {
        m.iterations = static_cast<std::uint64_t>(f->number());
      }
      if (const JsonValue* f = find(mo, "repetitions")) {
        m.repetitions = static_cast<int>(f->number());
      }
      if (const JsonValue* f = find(mo, "clock_overhead_ns")) {
        m.clock_overhead_ns = static_cast<Nanos>(f->number());
      }
      if (const JsonValue* f = find(mo, "clock_source"); f != nullptr && !f->is_null()) {
        m.clock_source = f->str();
      }
      if (const JsonValue* f = find(mo, "nanoscale")) m.nanoscale = f->boolean();
      if (const JsonValue* f = find(mo, "interval_overhead_ns");
          f != nullptr && !f->is_null()) {
        m.interval_overhead_ns = static_cast<Nanos>(f->number());
      }
      if (const JsonValue* f = find(mo, "converged")) m.converged = f->boolean();
      if (const JsonValue* f = find(mo, "calibration_cached")) {
        m.calibration_cached = f->boolean();
      }
      if (const JsonValue* f = find(mo, "counters"); f != nullptr && !f->is_null()) {
        const JsonObject& co = f->object();
        obs::CounterTotals ct;
        if (const JsonValue* g = find(co, "intervals")) {
          ct.intervals = static_cast<int>(g->number());
        }
        if (const JsonValue* g = find(co, "cycles")) ct.cycles = number_or_nan(*g);
        if (const JsonValue* g = find(co, "instructions")) {
          ct.instructions = number_or_nan(*g);
        }
        // Null cache/ctx cells mean those counters never opened; the flags
        // record that so re-serialization emits nulls again, not zeros.
        if (const JsonValue* g = find(co, "cache_refs"); g != nullptr && !g->is_null()) {
          ct.cache_refs = g->number();
          ct.has_cache = true;
        }
        if (const JsonValue* g = find(co, "cache_misses"); g != nullptr && !g->is_null()) {
          ct.cache_misses = g->number();
        }
        if (const JsonValue* g = find(co, "ctx_switches"); g != nullptr && !g->is_null()) {
          ct.ctx_switches = g->number();
          ct.has_ctx = true;
        }
        if (const JsonValue* g = find(co, "multiplexed")) ct.multiplexed = g->boolean();
        m.counters = ct;
      }
      r.measurement = m;
    }
    if (const JsonValue* v = find(obj, "metadata"); v != nullptr && !v->is_null()) {
      for (const auto& [key, value] : v->object()) {
        r.metadata[key] = value.str();
      }
    }
    batch.results.push_back(std::move(r));
  }
  return batch;
}

// ---------------------------------------------------------------------------
// CSV emission

namespace {

std::string csv_field(const std::string& s) {
  if (s.find_first_of(",\"\n\r") == std::string::npos) {
    return s;
  }
  std::string out = "\"";
  for (char c : s) {
    if (c == '"') {
      out += "\"\"";
    } else {
      out += c;
    }
  }
  out += "\"";
  return out;
}

// A CSV numeric cell: like JSON, a non-finite double is "explicitly
// missing" — a blank cell, not the literal text "nan"/"null".
std::string csv_number(double v) { return std::isfinite(v) ? json_number(v) : std::string(); }

}  // namespace

std::string to_csv(const std::vector<RunResult>& results, const SuiteTiming* timing) {
  std::string out = "name,category,status,wall_ms,metric,value,unit,error\n";
  for (const RunResult& r : results) {
    std::string prefix = csv_field(r.name) + "," + csv_field(r.category) + "," +
                         run_status_name(r.status) + "," +
                         (r.wall_ms > 0 ? csv_number(r.wall_ms) : "") + ",";
    std::string error = csv_field(r.error);
    if (r.metrics.empty()) {
      // Explicitly blank metric/value/unit cells — absence, not zero.
      out += prefix + ",,," + error + "\n";
      continue;
    }
    for (const Metric& m : r.metrics) {
      out += prefix + csv_field(m.key) + "," + csv_number(m.value) + "," + csv_field(m.unit) +
             "," + error + "\n";
    }
  }
  if (timing != nullptr) {
    out += "__suite__,suite,ok," + json_number(timing->total_wall_ms) + ",total_wall_ms," +
           json_number(timing->total_wall_ms) + ",ms,\n";
  }
  return out;
}

}  // namespace lmb::report
