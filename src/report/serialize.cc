#include "src/report/serialize.h"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <map>
#include <memory>
#include <stdexcept>
#include <variant>

namespace lmb::report {

namespace {

// ---------------------------------------------------------------------------
// Emission helpers

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string json_string(const std::string& s) { return json_quote(s); }

std::string json_number(double v) { return json_double(v); }

// ---------------------------------------------------------------------------
// Minimal JSON parser (only what from_json needs: the subset to_json emits,
// which is also plain standard JSON).

struct JsonValue;
using JsonArray = std::vector<JsonValue>;
using JsonObject = std::map<std::string, JsonValue>;

struct JsonValue {
  std::variant<std::nullptr_t, bool, double, std::string, JsonArray, JsonObject> v =
      nullptr;

  bool is_null() const { return std::holds_alternative<std::nullptr_t>(v); }
  const JsonObject& object() const {
    if (!std::holds_alternative<JsonObject>(v)) {
      throw std::invalid_argument("json: expected object");
    }
    return std::get<JsonObject>(v);
  }
  const JsonArray& array() const {
    if (!std::holds_alternative<JsonArray>(v)) {
      throw std::invalid_argument("json: expected array");
    }
    return std::get<JsonArray>(v);
  }
  const std::string& str() const {
    if (!std::holds_alternative<std::string>(v)) {
      throw std::invalid_argument("json: expected string");
    }
    return std::get<std::string>(v);
  }
  double number() const {
    if (!std::holds_alternative<double>(v)) {
      throw std::invalid_argument("json: expected number");
    }
    return std::get<double>(v);
  }
  bool boolean() const {
    if (!std::holds_alternative<bool>(v)) {
      throw std::invalid_argument("json: expected boolean");
    }
    return std::get<bool>(v);
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  JsonValue parse() {
    JsonValue value = parse_value();
    skip_ws();
    if (pos_ != text_.size()) {
      fail("trailing characters");
    }
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& why) const {
    throw std::invalid_argument("json parse error at offset " + std::to_string(pos_) + ": " +
                                why);
  }

  void skip_ws() {
    while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) {
      fail("unexpected end of input");
    }
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) {
      fail(std::string("expected '") + c + "'");
    }
    ++pos_;
  }

  bool consume_literal(const char* lit) {
    size_t n = std::strlen(lit);
    if (text_.compare(pos_, n, lit) == 0) {
      pos_ += n;
      return true;
    }
    return false;
  }

  JsonValue parse_value() {
    skip_ws();
    char c = peek();
    if (c == '{') return parse_object();
    if (c == '[') return parse_array();
    if (c == '"') return JsonValue{parse_string()};
    if (consume_literal("null")) return JsonValue{nullptr};
    if (consume_literal("true")) return JsonValue{true};
    if (consume_literal("false")) return JsonValue{false};
    return parse_number();
  }

  JsonValue parse_object() {
    expect('{');
    JsonObject obj;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return JsonValue{std::move(obj)};
    }
    for (;;) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      obj[std::move(key)] = parse_value();
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return JsonValue{std::move(obj)};
    }
  }

  JsonValue parse_array() {
    expect('[');
    JsonArray arr;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return JsonValue{std::move(arr)};
    }
    for (;;) {
      arr.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return JsonValue{std::move(arr)};
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) {
        fail("unterminated string");
      }
      char c = text_[pos_++];
      if (c == '"') {
        return out;
      }
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) {
        fail("unterminated escape");
      }
      char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) {
            fail("truncated \\u escape");
          }
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code += static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code += static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code += static_cast<unsigned>(h - 'A' + 10);
            else fail("bad \\u escape");
          }
          // Emitters here only produce \u for control characters; encode
          // the BMP code point as UTF-8 for generality.
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default:
          fail("unknown escape");
      }
    }
  }

  JsonValue parse_number() {
    size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E' || text_[pos_] == '+' ||
            text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) {
      fail("expected value");
    }
    // from_chars, not stod: locale-independent, and the token scan above
    // already excludes textual forms like "inf"/"nan".
    double value = 0.0;
    auto res = std::from_chars(text_.data() + start, text_.data() + pos_, value);
    if (res.ec != std::errc() || res.ptr != text_.data() + pos_) {
      fail("bad number");
    }
    return JsonValue{value};
  }

  const std::string& text_;
  size_t pos_ = 0;
};

const JsonValue* find(const JsonObject& obj, const std::string& key) {
  auto it = obj.find(key);
  return it == obj.end() ? nullptr : &it->second;
}

// Inverse of json_double's non-finite handling: a JSON null in a numeric
// position parses back as NaN, preserving round trips for values the
// format itself cannot carry.
double number_or_nan(const JsonValue& v) {
  return v.is_null() ? std::numeric_limits<double>::quiet_NaN() : v.number();
}

}  // namespace

std::string json_quote(const std::string& s) { return "\"" + json_escape(s) + "\""; }

// Shortest round-trippable representation (std::to_chars is exact and
// locale-independent — snprintf %g honors LC_NUMERIC and can emit a ','
// decimal separator, which is invalid JSON).  JSON has no NaN/Inf, so those
// become null (another "explicitly missing", never 0).
std::string json_double(double v) {
  if (!std::isfinite(v)) {
    return "null";
  }
  char buf[64];
  auto res = std::to_chars(buf, buf + sizeof(buf), v);
  return std::string(buf, res.ptr);
}

// ---------------------------------------------------------------------------
// JSON emission

std::string to_json(const ResultBatch& batch) {
  std::string out;
  out += "{\n";
  out += "  \"schema\": " + json_string(kResultSchema) + ",\n";
  out += "  \"system\": " + json_string(batch.system) + ",\n";
  if (batch.timing.has_value()) {
    const SuiteTiming& t = *batch.timing;
    out += "  \"timing\": {\n";
    out += "    \"total_wall_ms\": " + json_number(t.total_wall_ms) + ",\n";
    out += "    \"jobs\": " + std::to_string(t.jobs) + ",\n";
    out += std::string("    \"cal_cache\": ") + (t.cal_cache ? "true" : "false") + ",\n";
    out += "    \"cal_hits\": " + std::to_string(t.cal_hits) + ",\n";
    out += "    \"cal_misses\": " + std::to_string(t.cal_misses) + "\n";
    out += "  },\n";
  } else {
    out += "  \"timing\": null,\n";
  }
  out += "  \"results\": [";
  bool first_result = true;
  for (const RunResult& r : batch.results) {
    out += first_result ? "\n" : ",\n";
    first_result = false;
    out += "    {\n";
    out += "      \"name\": " + json_string(r.name) + ",\n";
    out += "      \"category\": " + json_string(r.category) + ",\n";
    out += "      \"status\": " + json_string(run_status_name(r.status)) + ",\n";
    out += "      \"error\": " + (r.error.empty() ? "null" : json_string(r.error)) + ",\n";
    out += "      \"wall_ms\": " + (r.wall_ms > 0 ? json_number(r.wall_ms) : "null") + ",\n";
    out += "      \"display\": " + (r.display.empty() ? "null" : json_string(r.display)) + ",\n";
    out += "      \"metrics\": [";
    bool first_metric = true;
    for (const Metric& m : r.metrics) {
      out += first_metric ? "\n" : ",\n";
      first_metric = false;
      out += "        {\"key\": " + json_string(m.key) + ", \"value\": " + json_number(m.value) +
             ", \"unit\": " + json_string(m.unit) + "}";
    }
    out += first_metric ? "],\n" : "\n      ],\n";
    if (r.measurement.has_value()) {
      const Measurement& m = *r.measurement;
      out += "      \"measurement\": {\n";
      out += "        \"ns_per_op\": " + json_number(m.ns_per_op) + ",\n";
      out += "        \"mean_ns_per_op\": " + json_number(m.mean_ns_per_op) + ",\n";
      out += "        \"median_ns_per_op\": " + json_number(m.median_ns_per_op) + ",\n";
      out += "        \"max_ns_per_op\": " + json_number(m.max_ns_per_op) + ",\n";
      // Variability detail for noise-aware comparison (lmbench_compare):
      // the per-repetition sample and its spread.
      out += "        \"stddev_ns_per_op\": " +
             (m.sample.count() >= 2 ? json_number(m.sample.stddev()) : "null") + ",\n";
      out += "        \"samples\": [";
      bool first_sample = true;
      for (double s : m.sample.values()) {
        out += first_sample ? "" : ", ";
        first_sample = false;
        out += json_number(s);
      }
      out += "],\n";
      out += "        \"iterations\": " + std::to_string(m.iterations) + ",\n";
      out += "        \"repetitions\": " + std::to_string(m.repetitions) + ",\n";
      out += "        \"clock_overhead_ns\": " + std::to_string(m.clock_overhead_ns) + ",\n";
      out += std::string("        \"converged\": ") + (m.converged ? "true" : "false") + ",\n";
      out += std::string("        \"calibration_cached\": ") +
             (m.calibration_cached ? "true" : "false") + "\n";
      out += "      },\n";
    } else {
      out += "      \"measurement\": null,\n";
    }
    out += "      \"metadata\": {";
    bool first_meta = true;
    for (const auto& [key, value] : r.metadata) {
      out += first_meta ? "" : ", ";
      first_meta = false;
      out += json_string(key) + ": " + json_string(value);
    }
    out += "}\n";
    out += "    }";
  }
  out += batch.results.empty() ? "],\n" : "\n  ],\n";
  out += "  \"count\": " + std::to_string(batch.results.size()) + "\n";
  out += "}\n";
  return out;
}

ResultBatch from_json(const std::string& text) {
  JsonValue root = JsonParser(text).parse();
  const JsonObject& doc = root.object();

  const JsonValue* schema = find(doc, "schema");
  if (schema == nullptr || schema->str() != kResultSchema) {
    throw std::invalid_argument("json: missing or unknown schema (want " +
                                std::string(kResultSchema) + ")");
  }

  ResultBatch batch;
  if (const JsonValue* system = find(doc, "system"); system != nullptr && !system->is_null()) {
    batch.system = system->str();
  }
  if (const JsonValue* timing = find(doc, "timing"); timing != nullptr && !timing->is_null()) {
    const JsonObject& to = timing->object();
    SuiteTiming t;
    if (const JsonValue* f = find(to, "total_wall_ms")) t.total_wall_ms = f->number();
    if (const JsonValue* f = find(to, "jobs")) t.jobs = static_cast<int>(f->number());
    if (const JsonValue* f = find(to, "cal_cache")) t.cal_cache = f->boolean();
    if (const JsonValue* f = find(to, "cal_hits")) t.cal_hits = static_cast<int>(f->number());
    if (const JsonValue* f = find(to, "cal_misses")) {
      t.cal_misses = static_cast<int>(f->number());
    }
    batch.timing = t;
  }
  const JsonValue* results = find(doc, "results");
  if (results == nullptr) {
    throw std::invalid_argument("json: missing results array");
  }
  for (const JsonValue& entry : results->array()) {
    const JsonObject& obj = entry.object();
    RunResult r;
    if (const JsonValue* v = find(obj, "name")) r.name = v->str();
    if (const JsonValue* v = find(obj, "category")) r.category = v->str();
    if (const JsonValue* v = find(obj, "status")) r.status = run_status_from_name(v->str());
    if (const JsonValue* v = find(obj, "error"); v != nullptr && !v->is_null()) {
      r.error = v->str();
    }
    if (const JsonValue* v = find(obj, "wall_ms"); v != nullptr && !v->is_null()) {
      r.wall_ms = v->number();
    }
    if (const JsonValue* v = find(obj, "display"); v != nullptr && !v->is_null()) {
      r.display = v->str();
    }
    if (const JsonValue* v = find(obj, "metrics")) {
      for (const JsonValue& mv : v->array()) {
        const JsonObject& mo = mv.object();
        Metric m;
        if (const JsonValue* f = find(mo, "key")) m.key = f->str();
        if (const JsonValue* f = find(mo, "value")) m.value = number_or_nan(*f);
        if (const JsonValue* f = find(mo, "unit")) m.unit = f->str();
        r.metrics.push_back(std::move(m));
      }
    }
    if (const JsonValue* v = find(obj, "measurement"); v != nullptr && !v->is_null()) {
      const JsonObject& mo = v->object();
      Measurement m;
      if (const JsonValue* f = find(mo, "ns_per_op")) m.ns_per_op = number_or_nan(*f);
      if (const JsonValue* f = find(mo, "mean_ns_per_op")) m.mean_ns_per_op = number_or_nan(*f);
      if (const JsonValue* f = find(mo, "median_ns_per_op")) {
        m.median_ns_per_op = number_or_nan(*f);
      }
      if (const JsonValue* f = find(mo, "max_ns_per_op")) m.max_ns_per_op = number_or_nan(*f);
      if (const JsonValue* f = find(mo, "samples"); f != nullptr && !f->is_null()) {
        for (const JsonValue& sv : f->array()) {
          m.sample.add(number_or_nan(sv));
        }
      }
      if (const JsonValue* f = find(mo, "iterations")) {
        m.iterations = static_cast<std::uint64_t>(f->number());
      }
      if (const JsonValue* f = find(mo, "repetitions")) {
        m.repetitions = static_cast<int>(f->number());
      }
      if (const JsonValue* f = find(mo, "clock_overhead_ns")) {
        m.clock_overhead_ns = static_cast<Nanos>(f->number());
      }
      if (const JsonValue* f = find(mo, "converged")) m.converged = f->boolean();
      if (const JsonValue* f = find(mo, "calibration_cached")) {
        m.calibration_cached = f->boolean();
      }
      r.measurement = m;
    }
    if (const JsonValue* v = find(obj, "metadata"); v != nullptr && !v->is_null()) {
      for (const auto& [key, value] : v->object()) {
        r.metadata[key] = value.str();
      }
    }
    batch.results.push_back(std::move(r));
  }
  return batch;
}

// ---------------------------------------------------------------------------
// CSV emission

namespace {

std::string csv_field(const std::string& s) {
  if (s.find_first_of(",\"\n\r") == std::string::npos) {
    return s;
  }
  std::string out = "\"";
  for (char c : s) {
    if (c == '"') {
      out += "\"\"";
    } else {
      out += c;
    }
  }
  out += "\"";
  return out;
}

// A CSV numeric cell: like JSON, a non-finite double is "explicitly
// missing" — a blank cell, not the literal text "nan"/"null".
std::string csv_number(double v) { return std::isfinite(v) ? json_number(v) : std::string(); }

}  // namespace

std::string to_csv(const std::vector<RunResult>& results, const SuiteTiming* timing) {
  std::string out = "name,category,status,wall_ms,metric,value,unit,error\n";
  for (const RunResult& r : results) {
    std::string prefix = csv_field(r.name) + "," + csv_field(r.category) + "," +
                         run_status_name(r.status) + "," +
                         (r.wall_ms > 0 ? csv_number(r.wall_ms) : "") + ",";
    std::string error = csv_field(r.error);
    if (r.metrics.empty()) {
      // Explicitly blank metric/value/unit cells — absence, not zero.
      out += prefix + ",,," + error + "\n";
      continue;
    }
    for (const Metric& m : r.metrics) {
      out += prefix + csv_field(m.key) + "," + csv_number(m.value) + "," + csv_field(m.unit) +
             "," + error + "\n";
    }
  }
  if (timing != nullptr) {
    out += "__suite__,suite,ok," + json_number(timing->total_wall_ms) + ",total_wall_ms," +
           json_number(timing->total_wall_ms) + ",ms,\n";
  }
  return out;
}

}  // namespace lmb::report
