#include "src/report/trend.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>

#include "src/core/stats.h"
#include "src/report/json.h"
#include "src/report/table.h"

namespace lmb::report {

namespace {

// Guards divisions when a window's mean is exactly zero.
constexpr double kTinyMean = 1e-12;

}  // namespace

std::vector<Changepoint> detect_changepoints(const std::vector<double>& values,
                                             const ChangepointOptions& options) {
  const size_t n = values.size();
  std::vector<Changepoint> flagged;
  if (n < 3) {
    return flagged;
  }
  const size_t w = std::max<size_t>(1, options.window);

  // Flag every split whose window-mean shift clears the threshold, then
  // merge runs of adjacent flagged splits to the locally strongest one
  // (one step in the data flags a neighborhood of splits).
  std::vector<Changepoint> candidates;
  for (size_t i = 1; i < n; ++i) {
    Sample before(std::vector<double>(values.begin() + (i >= w ? i - w : 0),
                                      values.begin() + static_cast<long>(i)));
    Sample after(std::vector<double>(values.begin() + static_cast<long>(i),
                                     values.begin() + static_cast<long>(std::min(n, i + w))));
    const double mb = before.mean();
    const double ma = after.mean();
    const double pooled_sd = std::sqrt(
        (before.stddev() * before.stddev() + after.stddev() * after.stddev()) / 2.0);
    // Two-sample z-test scale: the shift is a difference of *means*, so the
    // noise term is the standard error, not the raw scatter — a wider
    // window buys drift sensitivity instead of diluting it.
    const double sem =
        pooled_sd * std::sqrt(1.0 / static_cast<double>(before.count()) +
                              1.0 / static_cast<double>(after.count()));
    const double delta = ma - mb;
    const double scale = std::max({std::fabs(mb), std::fabs(ma), kTinyMean});
    const double threshold = std::max(options.min_rel * scale, options.sigmas * sem);
    if (threshold <= 0 || std::fabs(delta) < threshold) {
      continue;
    }
    Changepoint cp;
    cp.index = i;
    cp.before_mean = mb;
    cp.after_mean = ma;
    cp.rel_change = delta / std::max(std::fabs(mb), kTinyMean);
    cp.score = std::fabs(delta) / threshold;
    candidates.push_back(cp);
  }

  for (size_t i = 0; i < candidates.size();) {
    size_t j = i;
    size_t best = i;
    while (j + 1 < candidates.size() &&
           candidates[j + 1].index == candidates[j].index + 1) {
      ++j;
      if (candidates[j].score > candidates[best].score) {
        best = j;
      }
    }
    flagged.push_back(candidates[best]);
    i = j + 1;
  }
  return flagged;
}

std::vector<TrendRow> analyze_trends(const std::vector<db::TrendSeries>& series,
                                     const ChangepointOptions& options) {
  std::vector<TrendRow> rows;
  rows.reserve(series.size());
  for (const db::TrendSeries& s : series) {
    TrendRow row;
    row.series = s;
    std::vector<double> values;
    values.reserve(s.points.size());
    for (const db::TrendPoint& p : s.points) {
      values.push_back(p.value);
    }
    row.changepoints = detect_changepoints(values, options);
    rows.push_back(std::move(row));
  }
  return rows;
}

std::string render_sparkline(const std::vector<double>& values) {
  static const char* kGlyphs[] = {"▁", "▂", "▃", "▄", "▅", "▆", "▇", "█"};
  double lo = std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();
  for (double v : values) {
    if (std::isfinite(v)) {
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
  }
  std::string out;
  for (double v : values) {
    if (!std::isfinite(v)) {
      out += "·";
      continue;
    }
    size_t level = 0;
    if (hi > lo) {
      level = static_cast<size_t>((v - lo) / (hi - lo) * 7.0 + 0.5);
    }
    out += kGlyphs[std::min<size_t>(level, 7)];
  }
  return out;
}

std::string render_trend_table(const std::vector<TrendRow>& rows) {
  if (rows.empty()) {
    return "no trend history\n";
  }
  // Changepoint rows first, strongest first; quiet rows keep store order.
  std::vector<const TrendRow*> order;
  order.reserve(rows.size());
  for (const TrendRow& row : rows) {
    order.push_back(&row);
  }
  auto strength = [](const TrendRow& row) {
    double best = 0.0;
    for (const Changepoint& cp : row.changepoints) {
      best = std::max(best, cp.score);
    }
    return best;
  };
  std::stable_sort(order.begin(), order.end(), [&](const TrendRow* a, const TrendRow* b) {
    return strength(*a) > strength(*b);
  });

  Table table("Metric trends",
              {{"benchmark", 0}, {"metric", 0}, {"runs", 0}, {"last", 3}, {"vs first", 0},
               {"trend", 0}});
  std::string annotations;
  for (const TrendRow* row : order) {
    const db::TrendSeries& s = row->series;
    if (s.points.empty()) {
      continue;
    }
    std::vector<double> values;
    values.reserve(s.points.size());
    for (const db::TrendPoint& p : s.points) {
      values.push_back(p.value);
    }
    double first = values.front();
    double last = values.back();
    char delta[32];
    std::snprintf(delta, sizeof(delta), "%+.1f%%",
                  100.0 * (last - first) / std::max(std::fabs(first), kTinyMean));
    std::string spark = render_sparkline(values);
    if (!row->changepoints.empty()) {
      spark += "  !";
    }
    table.add_row({s.bench, s.key + (s.unit.empty() ? "" : " [" + s.unit + "]"),
                   static_cast<double>(s.points.size()), last, std::string(delta), spark});
    for (const Changepoint& cp : row->changepoints) {
      char line[160];
      std::snprintf(line, sizeof(line),
                    "  ! %s %s: level shift at run %ld (%+.1f%%, %.3g -> %.3g, score %.1f)\n",
                    s.bench.c_str(), s.key.c_str(),
                    cp.index < s.points.size() ? s.points[cp.index].seq : -1,
                    100.0 * cp.rel_change, cp.before_mean, cp.after_mean, cp.score);
      annotations += line;
    }
  }
  std::string out = table.render();
  if (!annotations.empty()) {
    out += "\nchangepoints:\n" + annotations;
  } else {
    out += "\nno changepoints detected\n";
  }
  return out;
}

std::string trend_to_json(const std::string& host, const std::vector<TrendRow>& rows) {
  std::string out = "{\n  \"schema\": " + json_quote(kTrendSchema) + ",\n  \"host\": " +
                    json_quote(host) + ",\n  \"series\": [";
  bool first_series = true;
  for (const TrendRow& row : rows) {
    const db::TrendSeries& s = row.series;
    if (!first_series) {
      out += ',';
    }
    first_series = false;
    out += "\n    {\"bench\": " + json_quote(s.bench) + ", \"key\": " + json_quote(s.key) +
           ", \"unit\": " + json_quote(s.unit) + ", \"points\": [";
    bool first = true;
    for (const db::TrendPoint& p : s.points) {
      if (!first) {
        out += ',';
      }
      first = false;
      out += "{\"seq\": " + std::to_string(p.seq) + ", \"value\": " + json_double(p.value) + "}";
    }
    out += "], \"changepoints\": [";
    first = true;
    for (const Changepoint& cp : row.changepoints) {
      if (!first) {
        out += ',';
      }
      first = false;
      out += "{\"index\": " + std::to_string(cp.index) +
             ", \"seq\": " + std::to_string(cp.index < s.points.size() ? s.points[cp.index].seq : -1) +
             ", \"before_mean\": " + json_double(cp.before_mean) +
             ", \"after_mean\": " + json_double(cp.after_mean) +
             ", \"rel_change\": " + json_double(cp.rel_change) +
             ", \"score\": " + json_double(cp.score) + "}";
    }
    out += "]}";
  }
  out += "\n  ]\n}\n";
  return out;
}

}  // namespace lmb::report
