#include "src/report/scaling.h"

#include <algorithm>
#include <cstdlib>
#include <map>

#include "src/report/plot.h"
#include "src/report/table.h"

namespace lmb::report {

namespace {

// Splits "<op>_p<N>_mbs" into (op, N).  Returns false for any other key.
bool parse_scaling_key(const std::string& key, std::string* op, int* threads) {
  const std::string suffix = "_mbs";
  if (key.size() <= suffix.size() ||
      key.compare(key.size() - suffix.size(), suffix.size(), suffix) != 0) {
    return false;
  }
  std::string stem = key.substr(0, key.size() - suffix.size());
  size_t p = stem.rfind("_p");
  if (p == std::string::npos || p == 0 || p + 2 >= stem.size()) {
    return false;
  }
  std::string digits = stem.substr(p + 2);
  for (char c : digits) {
    if (c < '0' || c > '9') {
      return false;
    }
  }
  *op = stem.substr(0, p);
  *threads = std::atoi(digits.c_str());
  return *threads > 0;
}

}  // namespace

std::vector<ScalingSeries> extract_scaling(const RunResult& result) {
  std::vector<ScalingSeries> series;
  for (const Metric& m : result.metrics) {
    std::string op;
    int threads = 0;
    if (!parse_scaling_key(m.key, &op, &threads)) {
      continue;
    }
    auto it = std::find_if(series.begin(), series.end(),
                           [&](const ScalingSeries& s) { return s.op == op; });
    if (it == series.end()) {
      series.push_back({op, {}});
      it = series.end() - 1;
    }
    it->points.push_back({threads, m.value});
  }
  for (ScalingSeries& s : series) {
    std::sort(s.points.begin(), s.points.end(),
              [](const ScalingPoint& a, const ScalingPoint& b) { return a.threads < b.threads; });
  }
  return series;
}

std::string render_scaling_table(const std::vector<ScalingSeries>& series) {
  if (series.empty()) {
    return "";
  }
  // Row per thread count seen in any series.
  std::map<int, bool> thread_counts;
  for (const ScalingSeries& s : series) {
    for (const ScalingPoint& p : s.points) {
      thread_counts[p.threads] = true;
    }
  }
  std::vector<Column> columns;
  columns.push_back({"threads", 0});
  for (const ScalingSeries& s : series) {
    columns.push_back({s.op + " MB/s", 0});
  }
  columns.push_back({series.front().op + " speedup", 2});

  Table table("Memory bandwidth scaling (aggregate MB/s)", columns);
  double base = 0.0;
  for (const ScalingPoint& p : series.front().points) {
    if (p.threads == 1) {
      base = p.mb_per_sec;
    }
  }
  for (const auto& [threads, unused] : thread_counts) {
    (void)unused;
    std::vector<Cell> row;
    row.push_back(static_cast<double>(threads));
    for (const ScalingSeries& s : series) {
      auto it = std::find_if(s.points.begin(), s.points.end(),
                             [t = threads](const ScalingPoint& p) { return p.threads == t; });
      if (it == s.points.end()) {
        row.push_back(std::monostate{});
      } else {
        row.push_back(it->mb_per_sec);
      }
    }
    auto it = std::find_if(series.front().points.begin(), series.front().points.end(),
                           [t = threads](const ScalingPoint& p) { return p.threads == t; });
    if (base > 0 && it != series.front().points.end()) {
      row.push_back(it->mb_per_sec / base);
    } else {
      row.push_back(std::monostate{});
    }
    table.add_row(std::move(row));
  }
  return table.render();
}

std::string render_scaling_plot(const std::vector<ScalingSeries>& series) {
  Plot plot("aggregate bandwidth vs threads", "threads", "MB/s");
  for (const ScalingSeries& s : series) {
    Series ps;
    ps.label = s.op;
    for (const ScalingPoint& p : s.points) {
      ps.points.push_back({static_cast<double>(p.threads), p.mb_per_sec});
    }
    plot.add_series(std::move(ps));
  }
  return plot.render();
}

std::string render_scaling_report(const std::vector<ScalingSeries>& series) {
  std::string table = render_scaling_table(series);
  if (table.empty()) {
    return "";
  }
  std::string plot = render_scaling_plot(series);
  if (plot.empty()) {
    return table;
  }
  return table + "\n" + plot;
}

}  // namespace lmb::report
