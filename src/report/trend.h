// Trend analysis over run history: sliding-window changepoint detection
// and the lmbench_trend report (sparkline table per metric).
//
// The pairwise compare gate (src/report/compare.h) judges one run against
// one baseline; a slow drift — 2% per run for ten runs — never trips it
// because every individual step hides inside the noise threshold.  Level-
// shift detection over the whole stored history (src/db/trend_store.h)
// closes that gap: compare the mean of a window *before* each candidate
// split against the window *after* it, and flag splits where the shift
// clears both a relative floor and the windows' own scatter.  This is the
// classic sliding-window/CUSUM family of changepoint detectors, sized for
// benchmark history (tens of points, not millions).
#ifndef LMBENCHPP_SRC_REPORT_TREND_H_
#define LMBENCHPP_SRC_REPORT_TREND_H_

#include <string>
#include <vector>

#include "src/db/trend_store.h"

namespace lmb::report {

// Knobs for the detector.
struct ChangepointOptions {
  // Points per side of a candidate split (clamped to what's available; a
  // split needs at least one point on each side).
  size_t window = 3;
  // Relative floor: a shift below this fraction of the before-mean is
  // never flagged, whatever the scatter says (mirrors CompareThresholds::
  // floor_rel — guards windows whose points happened to agree exactly).
  double min_rel = 0.05;
  // Multiplier on the windows' pooled standard deviation: a shift must
  // also clear sigmas * pooled_sd, so a noisy series needs a bigger step.
  double sigmas = 4.0;
};

// One detected level shift.  `index` is the first point of the new regime
// (split between values[index-1] and values[index]).
struct Changepoint {
  size_t index = 0;
  double before_mean = 0.0;
  double after_mean = 0.0;
  // (after - before) / |before|; the sign says which way the level moved.
  double rel_change = 0.0;
  // Shift magnitude over the flagging threshold (>= 1 for every reported
  // changepoint; bigger = more confident).
  double score = 0.0;
};

// Scans `values` (time-ascending) for level shifts.  Overlapping flagged
// splits are merged to the locally strongest one, so one step reports one
// changepoint.  Series shorter than 3 points never flag.
std::vector<Changepoint> detect_changepoints(const std::vector<double>& values,
                                             const ChangepointOptions& options = {});

// One metric's analyzed history: the stored series plus its changepoints.
struct TrendRow {
  db::TrendSeries series;
  std::vector<Changepoint> changepoints;
};

// Runs the detector over every series.
std::vector<TrendRow> analyze_trends(const std::vector<db::TrendSeries>& series,
                                     const ChangepointOptions& options = {});

// Unicode sparkline of `values` scaled to its own min..max (▁▂▃▄▅▆▇█); "·"
// for non-finite points.  Empty input renders "".
std::string render_sparkline(const std::vector<double>& values);

// The lmbench_trend table: one row per metric — bench, metric key, point
// count, newest value, delta vs the first point, sparkline — followed by
// one annotation line per changepoint.  Rows with changepoints sort first
// (§4.1: sort on the interesting column).
std::string render_trend_table(const std::vector<TrendRow>& rows);

// Schema identifier for trend JSON documents.
inline constexpr const char* kTrendSchema = "lmbenchpp.trend.v1";

// JSON document: schema, host, series[] each {bench, key, unit, points[]
// {seq, value}, changepoints[] {index, seq, before_mean, after_mean,
// rel_change, score}}.
std::string trend_to_json(const std::string& host, const std::vector<TrendRow>& rows);

}  // namespace lmb::report

#endif  // LMBENCHPP_SRC_REPORT_TREND_H_
