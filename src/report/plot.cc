#include "src/report/plot.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <sstream>
#include <stdexcept>

namespace lmb::report {

namespace {
constexpr char kMarkers[] = {'+', 'x', 'o', '*', '#', '@', '%', '&'};
constexpr int kNumMarkers = sizeof(kMarkers);

std::string short_num(double v) {
  char buf[32];
  if (std::abs(v) >= 1000 || v == std::floor(v)) {
    std::snprintf(buf, sizeof(buf), "%.0f", v);
  } else {
    std::snprintf(buf, sizeof(buf), "%.1f", v);
  }
  return buf;
}
}  // namespace

Plot::Plot(std::string title, std::string x_label, std::string y_label)
    : title_(std::move(title)), x_label_(std::move(x_label)), y_label_(std::move(y_label)) {}

void Plot::set_size(int width, int height) {
  if (width < 16 || height < 4) {
    throw std::invalid_argument("plot area too small");
  }
  width_ = width;
  height_ = height;
}

void Plot::add_series(Series series) { series_.push_back(std::move(series)); }

std::string Plot::render() const {
  double xmin = std::numeric_limits<double>::max();
  double xmax = std::numeric_limits<double>::lowest();
  double ymin = 0.0;  // anchor y at zero like the paper's figures
  double ymax = std::numeric_limits<double>::lowest();
  bool any = false;

  auto tx = [&](double x) { return x_scale_ == XScale::kLog2 ? std::log2(x) : x; };

  for (const auto& s : series_) {
    for (const auto& p : s.points) {
      if (x_scale_ == XScale::kLog2 && p.x <= 0) {
        throw std::invalid_argument("log2 x-scale requires positive x");
      }
      any = true;
      xmin = std::min(xmin, tx(p.x));
      xmax = std::max(xmax, tx(p.x));
      ymax = std::max(ymax, p.y);
    }
  }
  if (!any) {
    return "";
  }
  if (xmax == xmin) {
    xmax = xmin + 1;
  }
  if (ymax <= ymin) {
    ymax = ymin + 1;
  }

  // Grid, row 0 = top.
  std::vector<std::string> grid(static_cast<size_t>(height_),
                                std::string(static_cast<size_t>(width_), ' '));
  for (size_t si = 0; si < series_.size(); ++si) {
    char mark = kMarkers[si % kNumMarkers];
    for (const auto& p : series_[si].points) {
      int col = static_cast<int>(std::lround((tx(p.x) - xmin) / (xmax - xmin) * (width_ - 1)));
      int row =
          height_ - 1 - static_cast<int>(std::lround((p.y - ymin) / (ymax - ymin) * (height_ - 1)));
      col = std::clamp(col, 0, width_ - 1);
      row = std::clamp(row, 0, height_ - 1);
      grid[static_cast<size_t>(row)][static_cast<size_t>(col)] = mark;
    }
  }

  std::ostringstream out;
  out << title_ << "\n";
  out << "y: " << y_label_ << "\n";
  std::string top = short_num(ymax);
  std::string bottom = short_num(ymin);
  size_t margin = std::max(top.size(), bottom.size());
  for (int r = 0; r < height_; ++r) {
    std::string y_tick;
    if (r == 0) {
      y_tick = top;
    } else if (r == height_ - 1) {
      y_tick = bottom;
    }
    out << std::string(margin - y_tick.size(), ' ') << y_tick << " |"
        << grid[static_cast<size_t>(r)] << "\n";
  }
  out << std::string(margin + 1, ' ') << '+' << std::string(static_cast<size_t>(width_), '-')
      << "\n";
  std::string lo = short_num(xmin);
  std::string hi = short_num(xmax);
  out << std::string(margin + 2, ' ') << lo;
  int pad = width_ - static_cast<int>(lo.size()) - static_cast<int>(hi.size());
  out << std::string(static_cast<size_t>(std::max(pad, 1)), ' ') << hi << "\n";
  out << "x: " << x_label_ << (x_scale_ == XScale::kLog2 ? " (log2)" : "") << "\n";
  for (size_t si = 0; si < series_.size(); ++si) {
    out << "  " << kMarkers[si % kNumMarkers] << " " << series_[si].label << "\n";
  }
  return out.str();
}

}  // namespace lmb::report
