// Multi-section suite summary: one column per system, one row per metric —
// the classic lmbench results summary, driven by the standard metric schema.
#ifndef LMBENCHPP_SRC_REPORT_SUMMARY_H_
#define LMBENCHPP_SRC_REPORT_SUMMARY_H_

#include <string>

#include "src/db/result_set.h"

namespace lmb::report {

// Renders all result sets in `database` as sectioned comparison tables.
// Systems become columns (in name order); missing metrics render "--".
// When the database holds 2+ systems, the best value per row is marked '*'.
std::string render_summary(const db::ResultDatabase& database);

}  // namespace lmb::report

#endif  // LMBENCHPP_SRC_REPORT_SUMMARY_H_
