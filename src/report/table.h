// Paper-style result tables.
//
// §4.1: "All of the tables are sorted, from best to worst. ... tables are
// sorted on only one of the columns. The sorted column's heading will be in
// bold."  In plain text we mark the sort column with a trailing '*'.
#ifndef LMBENCHPP_SRC_REPORT_TABLE_H_
#define LMBENCHPP_SRC_REPORT_TABLE_H_

#include <optional>
#include <string>
#include <variant>
#include <vector>

namespace lmb::report {

// A cell is text, a number, or empty ("--" in the paper's tables).
using Cell = std::variant<std::monostate, std::string, double>;

enum class SortOrder {
  kNone,
  kAscending,   // smaller is better (latencies)
  kDescending,  // bigger is better (bandwidths)
};

struct Column {
  std::string header;
  // Decimal places for numeric cells; ignored for text.
  int precision = 0;
};

class Table {
 public:
  Table(std::string title, std::vector<Column> columns);

  // Appends a row; must have exactly one cell per column.
  void add_row(std::vector<Cell> row);

  // Sorts rows by `column` (0-based).  Rows with empty cells in the sort
  // column sink to the bottom.  Marks the column header with '*'.
  void sort_by(size_t column, SortOrder order);

  // Appends " <-- marker" to the most recently added row when rendered
  // (used to highlight the row measured on this machine).
  void mark_last_row(const std::string& marker);

  size_t rows() const { return rows_.size(); }
  size_t columns() const { return columns_.size(); }
  const std::string& title() const { return title_; }

  // Renders with aligned columns, a title line, and a header underline.
  std::string render() const;

  // Formats a single cell per this table's column precision (exposed for
  // tests).
  std::string format_cell(const Cell& cell, size_t column) const;

 private:
  std::string title_;
  std::vector<Column> columns_;
  std::vector<std::vector<Cell>> rows_;
  std::vector<std::string> row_markers_;
  std::optional<size_t> sort_column_;
};

// Formats a double with `precision` places, trimming trailing zeros when
// precision > 0 (so 12.50 -> "12.5", 12.00 -> "12").
std::string format_number(double v, int precision);

}  // namespace lmb::report

#endif  // LMBENCHPP_SRC_REPORT_TABLE_H_
