#include "src/report/heatmap.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <stdexcept>

#include "src/report/json.h"

namespace lmb::report {

namespace {

double ns_to_us(double ns) { return ns / 1000.0; }

std::string fmt(const char* f, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), f, v);
  return buf;
}

}  // namespace

std::uint64_t Heatmap::total_requests() const {
  std::uint64_t total = 0;
  for (const HeatmapWindow& w : windows) total += w.requests;
  return total;
}

std::uint64_t Heatmap::total_errors() const {
  std::uint64_t total = 0;
  for (const HeatmapWindow& w : windows) total += w.errors;
  return total;
}

Heatmap build_heatmap(const std::string& bench, const std::string& scenario,
                      const std::vector<obs::IntervalStats>& intervals, int max_columns) {
  if (max_columns < 1) {
    throw std::invalid_argument("build_heatmap: max_columns must be positive");
  }
  Heatmap map;
  map.bench = bench;
  map.scenario = scenario;
  if (intervals.empty()) {
    return map;
  }
  map.interval_ms =
      static_cast<double>(intervals.front().end - intervals.front().start) / 1e6;

  // Latency axis: the union of non-empty bucket ranges across all windows
  // (every window histogram shares one config, so indices are comparable).
  std::size_t lo = 0;
  std::size_t hi = 0;
  bool any = false;
  for (const obs::IntervalStats& w : intervals) {
    if (w.hist.count() == 0) continue;
    auto [first, last] = w.hist.nonzero_range();
    if (!any) {
      lo = first;
      hi = last;
      any = true;
    } else {
      lo = std::min(lo, first);
      hi = std::max(hi, last);
    }
  }

  std::size_t cols = 0;
  std::vector<std::size_t> col_start;  // first bucket index of each column
  if (any) {
    const std::size_t span = hi - lo + 1;
    cols = std::min<std::size_t>(static_cast<std::size_t>(max_columns), span);
    const obs::LatencyHistogram& geom = intervals.front().hist;
    for (std::size_t g = 0; g < cols; ++g) {
      col_start.push_back(lo + g * span / cols);
      map.bounds_us.push_back(ns_to_us(static_cast<double>(geom.bucket_lower(col_start[g]))));
    }
    map.bounds_us.push_back(ns_to_us(static_cast<double>(geom.bucket_upper(hi))));
  }

  for (const obs::IntervalStats& w : intervals) {
    HeatmapWindow row;
    row.start_ms = static_cast<double>(w.start) / 1e6;
    row.end_ms = static_cast<double>(w.end) / 1e6;
    row.requests = w.requests;
    row.errors = w.errors;
    const double secs = static_cast<double>(w.end - w.start) / 1e9;
    row.rps = secs > 0 ? static_cast<double>(w.requests) / secs : 0.0;
    if (w.hist.count() > 0) {
      row.p50_us = ns_to_us(w.hist.percentile(50));
      row.p99_us = ns_to_us(w.hist.percentile(99));
    }
    row.counts.assign(cols, 0);
    for (std::size_t g = 0; g < cols; ++g) {
      const std::size_t first = col_start[g];
      const std::size_t last = g + 1 < cols ? col_start[g + 1] : hi + 1;
      for (std::size_t i = first; i < last; ++i) {
        row.counts[g] += w.hist.count_at(i);
      }
    }
    map.windows.push_back(std::move(row));
  }
  return map;
}

std::string render_heatmap(const Heatmap& map) {
  std::string out;
  out += "time x latency heatmap -- " + map.bench + "/" + map.scenario;
  out += " (" + fmt("%.0f", map.interval_ms) + " ms windows, " +
         std::to_string(map.windows.size()) + " windows";
  if (map.bounds_us.size() >= 2) {
    out += ", " + std::to_string(map.bounds_us.size() - 1) + " latency columns " +
           fmt("%.0f", map.bounds_us.front()) + "-" + fmt("%.0f", map.bounds_us.back()) + " us";
  }
  out += ")\n";
  if (map.windows.empty()) {
    out += "  (no interval windows recorded)\n";
    return out;
  }

  std::uint64_t max_cell = 0;
  for (const HeatmapWindow& w : map.windows) {
    for (std::uint64_t c : w.counts) max_cell = std::max(max_cell, c);
  }

  const std::size_t cols = map.bounds_us.empty() ? 0 : map.bounds_us.size() - 1;
  char head[128];
  std::snprintf(head, sizeof(head), "  %13s  %-*s %9s %10s %9s %9s\n", "window(ms)",
                static_cast<int>(cols) + 2, "latency ->", "req", "rps", "p50(us)", "p99(us)");
  out += head;

  // Shade on a log scale: a p999 outlier bucket holds orders of magnitude
  // fewer samples than the mode, and a linear ramp would render the entire
  // tail as blank.
  static const char* kShade[] = {" ", "░", "▒", "▓", "█"};
  for (const HeatmapWindow& w : map.windows) {
    char left[64];
    std::snprintf(left, sizeof(left), "  %6.0f-%-6.0f  ", w.start_ms, w.end_ms);
    out += left;
    out += "|";
    for (std::uint64_t c : w.counts) {
      if (c == 0 || max_cell == 0) {
        out += kShade[0];
        continue;
      }
      int level = 1 + static_cast<int>(3.0 * std::log1p(static_cast<double>(c)) /
                                       std::log1p(static_cast<double>(max_cell)));
      out += kShade[std::clamp(level, 1, 4)];
    }
    out += "|";
    char right[128];
    std::snprintf(right, sizeof(right), " %9llu %10.0f %9.1f %9.1f\n",
                  static_cast<unsigned long long>(w.requests), w.rps, w.p50_us, w.p99_us);
    out += right;
  }

  char total[160];
  std::snprintf(total, sizeof(total), "  total %llu requests, %llu errors\n",
                static_cast<unsigned long long>(map.total_requests()),
                static_cast<unsigned long long>(map.total_errors()));
  out += total;
  if (map.p50_us > 0) {
    out += "  aggregate hist p50/p99/p999 = " + fmt("%.1f", map.p50_us) + "/" +
           fmt("%.1f", map.p99_us) + "/" + fmt("%.1f", map.p999_us) + " us";
    if (map.raw_p50_us > 0) {
      out += "  (raw ref " + fmt("%.1f", map.raw_p50_us) + "/" + fmt("%.1f", map.raw_p99_us) +
             "/" + fmt("%.1f", map.raw_p999_us) + (map.raw_sampled ? " us, sampled)" : " us)");
    }
    out += "\n";
  }
  return out;
}

std::string heatmap_to_json(const Heatmap& map) {
  std::string out = "{\"schema\":\"lmbenchpp.heatmap.v1\"";
  out += ",\"bench\":" + json_quote(map.bench);
  out += ",\"scenario\":" + json_quote(map.scenario);
  out += ",\"interval_ms\":" + json_double(map.interval_ms);
  out += ",\"unit\":\"us\"";
  out += ",\"total_requests\":" + std::to_string(map.total_requests());
  out += ",\"bounds_us\":[";
  for (std::size_t i = 0; i < map.bounds_us.size(); ++i) {
    if (i > 0) out += ",";
    out += json_double(map.bounds_us[i]);
  }
  out += "]";
  out += ",\"check\":{\"p50_us\":" + json_double(map.p50_us);
  out += ",\"p99_us\":" + json_double(map.p99_us);
  out += ",\"p999_us\":" + json_double(map.p999_us);
  out += ",\"raw_p50_us\":" + json_double(map.raw_p50_us);
  out += ",\"raw_p99_us\":" + json_double(map.raw_p99_us);
  out += ",\"raw_p999_us\":" + json_double(map.raw_p999_us);
  out += ",\"raw_sampled\":";
  out += map.raw_sampled ? "true" : "false";
  out += "}";
  out += ",\"windows\":[";
  for (std::size_t i = 0; i < map.windows.size(); ++i) {
    const HeatmapWindow& w = map.windows[i];
    if (i > 0) out += ",";
    out += "{\"start_ms\":" + json_double(w.start_ms);
    out += ",\"end_ms\":" + json_double(w.end_ms);
    out += ",\"requests\":" + std::to_string(w.requests);
    out += ",\"errors\":" + std::to_string(w.errors);
    out += ",\"rps\":" + json_double(w.rps);
    out += ",\"p50_us\":" + json_double(w.p50_us);
    out += ",\"p99_us\":" + json_double(w.p99_us);
    out += ",\"counts\":[";
    for (std::size_t j = 0; j < w.counts.size(); ++j) {
      if (j > 0) out += ",";
      out += std::to_string(w.counts[j]);
    }
    out += "]}";
  }
  out += "]}";
  return out;
}

Heatmap heatmap_from_json(const std::string& text) {
  const JsonValue doc = parse_json(text);
  const JsonObject& obj = doc.object();
  const JsonValue* schema = find(obj, "schema");
  if (schema == nullptr || schema->str() != "lmbenchpp.heatmap.v1") {
    throw std::invalid_argument("heatmap_from_json: not a lmbenchpp.heatmap.v1 document");
  }
  Heatmap map;
  if (const JsonValue* v = find(obj, "bench")) map.bench = v->str();
  if (const JsonValue* v = find(obj, "scenario")) map.scenario = v->str();
  if (const JsonValue* v = find(obj, "interval_ms")) map.interval_ms = v->number();
  if (const JsonValue* v = find(obj, "bounds_us")) {
    for (const JsonValue& b : v->array()) map.bounds_us.push_back(b.number());
  }
  if (const JsonValue* v = find(obj, "check")) {
    const JsonObject& c = v->object();
    if (const JsonValue* x = find(c, "p50_us")) map.p50_us = x->number();
    if (const JsonValue* x = find(c, "p99_us")) map.p99_us = x->number();
    if (const JsonValue* x = find(c, "p999_us")) map.p999_us = x->number();
    if (const JsonValue* x = find(c, "raw_p50_us")) map.raw_p50_us = x->number();
    if (const JsonValue* x = find(c, "raw_p99_us")) map.raw_p99_us = x->number();
    if (const JsonValue* x = find(c, "raw_p999_us")) map.raw_p999_us = x->number();
    if (const JsonValue* x = find(c, "raw_sampled")) map.raw_sampled = x->boolean();
  }
  if (const JsonValue* v = find(obj, "windows")) {
    for (const JsonValue& wv : v->array()) {
      const JsonObject& wo = wv.object();
      HeatmapWindow w;
      if (const JsonValue* x = find(wo, "start_ms")) w.start_ms = x->number();
      if (const JsonValue* x = find(wo, "end_ms")) w.end_ms = x->number();
      if (const JsonValue* x = find(wo, "requests")) {
        w.requests = static_cast<std::uint64_t>(x->number());
      }
      if (const JsonValue* x = find(wo, "errors")) {
        w.errors = static_cast<std::uint64_t>(x->number());
      }
      if (const JsonValue* x = find(wo, "rps")) w.rps = x->number();
      if (const JsonValue* x = find(wo, "p50_us")) w.p50_us = x->number();
      if (const JsonValue* x = find(wo, "p99_us")) w.p99_us = x->number();
      if (const JsonValue* x = find(wo, "counts")) {
        for (const JsonValue& c : x->array()) {
          w.counts.push_back(static_cast<std::uint64_t>(c.number()));
        }
      }
      map.windows.push_back(std::move(w));
    }
  }
  return map;
}

}  // namespace lmb::report
