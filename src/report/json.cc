#include "src/report/json.h"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <limits>

namespace lmb::report {

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  JsonValue parse() {
    JsonValue value = parse_value();
    skip_ws();
    if (pos_ != text_.size()) {
      fail("trailing characters");
    }
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& why) const {
    throw std::invalid_argument("json parse error at offset " + std::to_string(pos_) + ": " +
                                why);
  }

  void skip_ws() {
    while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) {
      fail("unexpected end of input");
    }
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) {
      fail(std::string("expected '") + c + "'");
    }
    ++pos_;
  }

  bool consume_literal(const char* lit) {
    size_t n = std::strlen(lit);
    if (text_.compare(pos_, n, lit) == 0) {
      pos_ += n;
      return true;
    }
    return false;
  }

  JsonValue parse_value() {
    skip_ws();
    char c = peek();
    if (c == '{') return parse_object();
    if (c == '[') return parse_array();
    if (c == '"') return JsonValue{parse_string()};
    if (consume_literal("null")) return JsonValue{nullptr};
    if (consume_literal("true")) return JsonValue{true};
    if (consume_literal("false")) return JsonValue{false};
    return parse_number();
  }

  JsonValue parse_object() {
    expect('{');
    JsonObject obj;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return JsonValue{std::move(obj)};
    }
    for (;;) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      obj[std::move(key)] = parse_value();
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return JsonValue{std::move(obj)};
    }
  }

  JsonValue parse_array() {
    expect('[');
    JsonArray arr;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return JsonValue{std::move(arr)};
    }
    for (;;) {
      arr.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return JsonValue{std::move(arr)};
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) {
        fail("unterminated string");
      }
      char c = text_[pos_++];
      if (c == '"') {
        return out;
      }
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) {
        fail("unterminated escape");
      }
      char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) {
            fail("truncated \\u escape");
          }
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code += static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code += static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code += static_cast<unsigned>(h - 'A' + 10);
            else fail("bad \\u escape");
          }
          // Emitters here only produce \u for control characters; encode
          // the BMP code point as UTF-8 for generality.
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default:
          fail("unknown escape");
      }
    }
  }

  JsonValue parse_number() {
    size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E' || text_[pos_] == '+' ||
            text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) {
      fail("expected value");
    }
    // from_chars, not stod: locale-independent, and the token scan above
    // already excludes textual forms like "inf"/"nan".
    double value = 0.0;
    auto res = std::from_chars(text_.data() + start, text_.data() + pos_, value);
    if (res.ec != std::errc() || res.ptr != text_.data() + pos_) {
      fail("bad number");
    }
    return JsonValue{value};
  }

  const std::string& text_;
  size_t pos_ = 0;
};

}  // namespace

JsonValue parse_json(const std::string& text) { return JsonParser(text).parse(); }

const JsonValue* find(const JsonObject& obj, const std::string& key) {
  auto it = obj.find(key);
  return it == obj.end() ? nullptr : &it->second;
}

double number_or_nan(const JsonValue& v) {
  return v.is_null() ? std::numeric_limits<double>::quiet_NaN() : v.number();
}

std::string json_quote(const std::string& s) { return "\"" + json_escape(s) + "\""; }

std::string to_text(const JsonValue& v) {
  struct Emitter {
    std::string out;
    void emit(const JsonValue& value) {
      if (std::holds_alternative<std::nullptr_t>(value.v)) {
        out += "null";
      } else if (std::holds_alternative<bool>(value.v)) {
        out += std::get<bool>(value.v) ? "true" : "false";
      } else if (std::holds_alternative<double>(value.v)) {
        out += json_double(std::get<double>(value.v));
      } else if (std::holds_alternative<std::string>(value.v)) {
        out += json_quote(std::get<std::string>(value.v));
      } else if (std::holds_alternative<JsonArray>(value.v)) {
        out += '[';
        bool first = true;
        for (const JsonValue& item : std::get<JsonArray>(value.v)) {
          if (!first) {
            out += ',';
          }
          first = false;
          emit(item);
        }
        out += ']';
      } else {
        out += '{';
        bool first = true;
        for (const auto& [key, item] : std::get<JsonObject>(value.v)) {
          if (!first) {
            out += ',';
          }
          first = false;
          out += json_quote(key);
          out += ':';
          emit(item);
        }
        out += '}';
      }
    }
  };
  Emitter emitter;
  emitter.emit(v);
  return emitter.out;
}

std::string json_double(double v) {
  if (!std::isfinite(v)) {
    return "null";
  }
  char buf[64];
  auto res = std::to_chars(buf, buf + sizeof(buf), v);
  return std::string(buf, res.ptr);
}

}  // namespace lmb::report
