// Bandwidth-scaling reports: aggregate MB/s vs worker count.
//
// The parallel bandwidth sweep (src/bw/parallel.h) emits metrics named
// "<op>_p<N>_mbs" on its RunResult.  This module turns those metrics back
// into per-operation series and renders them as a paper-style table
// (threads down, operations across, speedup vs one worker) plus an ASCII
// plot of MB/s against threads — the figure the lmbench3/STREAM scaling
// studies print.
#ifndef LMBENCHPP_SRC_REPORT_SCALING_H_
#define LMBENCHPP_SRC_REPORT_SCALING_H_

#include <string>
#include <vector>

#include "src/core/run_result.h"

namespace lmb::report {

struct ScalingPoint {
  int threads = 0;
  double mb_per_sec = 0.0;
};

struct ScalingSeries {
  std::string op;  // "copy", "read", ...
  std::vector<ScalingPoint> points;  // sorted by threads ascending
};

// Extracts every "<op>_p<N>_mbs" metric from `result` into one series per
// op, points sorted by thread count.  Results without such metrics yield an
// empty vector.  Op order follows first appearance in the metric list.
std::vector<ScalingSeries> extract_scaling(const RunResult& result);

// "Memory bandwidth scaling" table: one row per thread count, one MB/s
// column per op, and a speedup column (first op's aggregate relative to its
// 1-worker row, "--" when there is no p1 point).
std::string render_scaling_table(const std::vector<ScalingSeries>& series);

// ASCII plot of aggregate MB/s vs threads, one plot series per op.
// Empty string when there is nothing to plot.
std::string render_scaling_plot(const std::vector<ScalingSeries>& series);

// Table followed by plot (the run_suite / bw_scaling display block).
std::string render_scaling_report(const std::vector<ScalingSeries>& series);

}  // namespace lmb::report

#endif  // LMBENCHPP_SRC_REPORT_SCALING_H_
