// ASCII line plots reproducing the paper's figures.
//
// Figure 1 (memory latency vs log2(array size), one series per stride) and
// Figure 2 (context switch time vs number of processes, one series per
// footprint) are both "series of (x, y) points per labeled data set" plots.
#ifndef LMBENCHPP_SRC_REPORT_PLOT_H_
#define LMBENCHPP_SRC_REPORT_PLOT_H_

#include <string>
#include <vector>

namespace lmb::report {

struct Point {
  double x = 0.0;
  double y = 0.0;
};

struct Series {
  std::string label;
  std::vector<Point> points;
};

// Axis transform applied to x values before placement (y is always linear).
enum class XScale { kLinear, kLog2 };

class Plot {
 public:
  Plot(std::string title, std::string x_label, std::string y_label);

  void set_size(int width, int height);  // plot area in characters
  void set_x_scale(XScale scale) { x_scale_ = scale; }

  // Adds a series; it is assigned the next marker glyph (+, x, o, *, #, @).
  void add_series(Series series);

  size_t series_count() const { return series_.size(); }

  // Renders the grid, axis ticks and a legend.  Returns "" when no series
  // has any points.
  std::string render() const;

 private:
  std::string title_, x_label_, y_label_;
  int width_ = 64;
  int height_ = 20;
  XScale x_scale_ = XScale::kLinear;
  std::vector<Series> series_;
};

}  // namespace lmb::report

#endif  // LMBENCHPP_SRC_REPORT_PLOT_H_
