#include "src/simfs/sim_fs.h"

#include <algorithm>
#include <set>
#include <cstring>
#include <stdexcept>

namespace lmb::simfs {

namespace {

constexpr std::uint32_t kMagic = 0x4c4d4653;  // "LMFS"

struct SuperBlock {
  std::uint32_t magic;
  std::uint32_t mode;
  std::uint64_t checkpoint_seq;
  std::uint32_t file_count;
};

struct JournalRecord {
  std::uint64_t seq;      // 0 = unused block
  std::uint32_t is_upsert;  // 1 = slot payload valid, 0 = remove by name
  std::uint32_t slot;
  char name[kMaxNameLen + 1];
  unsigned char payload[kDirEntrySize];  // the slot's contents for upserts
};

}  // namespace

const char* durability_mode_name(DurabilityMode mode) {
  switch (mode) {
    case DurabilityMode::kAsync:
      return "async";
    case DurabilityMode::kJournaled:
      return "journaled";
    case DurabilityMode::kSync:
      return "sync";
  }
  return "?";
}

SimFileSystem::SimFileSystem(simdisk::BlockDevice& device, DurabilityMode mode)
    : device_(&device), mode_(mode) {
  std::uint64_t needed =
      static_cast<std::uint64_t>(1 + kDirBlocks + kJournalBlocks) * kBlockSize;
  if (device.size_bytes() < needed) {
    throw std::invalid_argument("SimFileSystem: device too small for metadata region");
  }
  // Format: zero the metadata region and write a fresh superblock.
  slots_.assign(kMaxFiles, DirSlot{});
  dirty_dir_blocks_.assign(kDirBlocks, false);
  std::vector<char> zero(kBlockSize, 0);
  for (std::uint32_t b = 0; b < 1 + kDirBlocks + kJournalBlocks; ++b) {
    device_->write(static_cast<std::uint64_t>(b) * kBlockSize, zero.data(), kBlockSize);
  }
  journal_seq_ = 1;
  total_data_blocks_ =
      static_cast<std::uint32_t>(device.size_bytes() / kBlockSize - kDataStartBlock);
  next_data_block_ = kDataStartBlock;
  write_superblock();
}

std::uint32_t SimFileSystem::allocate_data_block() {
  if (!free_data_blocks_.empty()) {
    std::uint32_t block = free_data_blocks_.back();
    free_data_blocks_.pop_back();
    return block;
  }
  if (next_data_block_ - kDataStartBlock >= total_data_blocks_) {
    throw std::runtime_error("SimFileSystem: out of data blocks");
  }
  return next_data_block_++;
}

void SimFileSystem::release_file_blocks(DirSlot& slot) {
  for (std::uint32_t& block : slot.blocks) {
    if (block != 0) {
      free_data_blocks_.push_back(block);
      block = 0;
    }
  }
}

void SimFileSystem::persist_slot(std::uint32_t slot_index, bool is_create_like,
                                 const std::string& name) {
  switch (mode_) {
    case DurabilityMode::kAsync:
      dirty_dir_blocks_[block_of_slot(slot_index)] = true;
      break;
    case DurabilityMode::kJournaled:
      journal_append(is_create_like, slot_index, name);
      dirty_dir_blocks_[block_of_slot(slot_index)] = true;
      break;
    case DurabilityMode::kSync:
      write_dir_block(block_of_slot(slot_index));
      break;
  }
}

void SimFileSystem::write_data(const std::string& name, std::uint64_t offset, const void* buf,
                               size_t len) {
  auto it = files_.find(name);
  if (it == files_.end()) {
    throw std::runtime_error("SimFileSystem: no such file: " + name);
  }
  if (offset + len > kMaxFileBytes) {
    throw std::invalid_argument("SimFileSystem: file would exceed " +
                                std::to_string(kMaxFileBytes) + " bytes");
  }
  DirSlot& slot = slots_[it->second];
  const char* src = static_cast<const char*>(buf);
  std::uint64_t pos = offset;
  size_t remaining = len;
  while (remaining > 0) {
    std::uint32_t bi = static_cast<std::uint32_t>(pos / kBlockSize);
    std::uint32_t within = static_cast<std::uint32_t>(pos % kBlockSize);
    size_t n = std::min<size_t>(remaining, kBlockSize - within);
    if (slot.blocks[bi] == 0) {
      slot.blocks[bi] = allocate_data_block();
    }
    device_->write(static_cast<std::uint64_t>(slot.blocks[bi]) * kBlockSize + within, src, n);
    src += n;
    pos += n;
    remaining -= n;
  }
  slot.size = std::max<std::uint32_t>(slot.size, static_cast<std::uint32_t>(offset + len));
  persist_slot(it->second, /*is_create_like=*/true, name);
}

size_t SimFileSystem::read_data(const std::string& name, std::uint64_t offset, void* buf,
                                size_t len) const {
  auto it = files_.find(name);
  if (it == files_.end()) {
    throw std::runtime_error("SimFileSystem: no such file: " + name);
  }
  const DirSlot& slot = slots_[it->second];
  if (offset >= slot.size) {
    return 0;
  }
  len = std::min<std::uint64_t>(len, slot.size - offset);
  char* dst = static_cast<char*>(buf);
  std::uint64_t pos = offset;
  size_t remaining = len;
  while (remaining > 0) {
    std::uint32_t bi = static_cast<std::uint32_t>(pos / kBlockSize);
    std::uint32_t within = static_cast<std::uint32_t>(pos % kBlockSize);
    size_t n = std::min<size_t>(remaining, kBlockSize - within);
    if (slot.blocks[bi] == 0) {
      std::memset(dst, 0, n);  // hole
    } else {
      device_->read(static_cast<std::uint64_t>(slot.blocks[bi]) * kBlockSize + within, dst, n);
    }
    dst += n;
    pos += n;
    remaining -= n;
  }
  return len;
}

std::uint64_t SimFileSystem::file_size(const std::string& name) const {
  auto it = files_.find(name);
  if (it == files_.end()) {
    throw std::runtime_error("SimFileSystem: no such file: " + name);
  }
  return slots_[it->second].size;
}

void SimFileSystem::validate_name(const std::string& name) const {
  if (name.empty() || name.size() > kMaxNameLen) {
    throw std::invalid_argument("SimFileSystem: name length must be 1.." +
                                std::to_string(kMaxNameLen));
  }
  if (name.find('/') != std::string::npos) {
    throw std::invalid_argument("SimFileSystem: '/' not allowed (flat namespace)");
  }
}

std::uint32_t SimFileSystem::block_of_slot(std::uint32_t slot) const {
  return slot / (kBlockSize / kDirEntrySize);
}

void SimFileSystem::write_dir_block(std::uint32_t dir_block_index) {
  const std::uint32_t entries_per_block = kBlockSize / kDirEntrySize;
  std::uint64_t offset = static_cast<std::uint64_t>(1 + dir_block_index) * kBlockSize;
  device_->write(offset, &slots_[dir_block_index * entries_per_block], kBlockSize);
  ++stats_.metadata_block_writes;
}

void SimFileSystem::write_superblock() {
  SuperBlock sb{kMagic, static_cast<std::uint32_t>(mode_), checkpoint_seq_,
                static_cast<std::uint32_t>(files_.size())};
  std::vector<char> block(kBlockSize, 0);
  std::memcpy(block.data(), &sb, sizeof(sb));
  device_->write(static_cast<std::uint64_t>(kSuperBlock) * kBlockSize, block.data(), kBlockSize);
  ++stats_.metadata_block_writes;
}

void SimFileSystem::journal_append(bool is_upsert, std::uint32_t slot, const std::string& name) {
  JournalRecord rec{};
  rec.seq = journal_seq_++;
  rec.is_upsert = is_upsert ? 1 : 0;
  rec.slot = slot;
  std::strncpy(rec.name, name.c_str(), kMaxNameLen);
  if (is_upsert) {
    std::memcpy(rec.payload, &slots_[slot], kDirEntrySize);
  }

  std::vector<char> block(kBlockSize, 0);
  std::memcpy(block.data(), &rec, sizeof(rec));
  std::uint64_t offset =
      static_cast<std::uint64_t>(1 + kDirBlocks + journal_head_) * kBlockSize;
  device_->write(offset, block.data(), kBlockSize);
  ++stats_.journal_writes;

  journal_head_ = (journal_head_ + 1) % kJournalBlocks;
  if (journal_head_ == 0) {
    // Ring full: checkpoint so older records may be overwritten safely.
    checkpoint();
  }
}

void SimFileSystem::checkpoint() {
  for (std::uint32_t b = 0; b < kDirBlocks; ++b) {
    write_dir_block(b);
  }
  dirty_dir_blocks_.assign(kDirBlocks, false);
  checkpoint_seq_ = journal_seq_;
  write_superblock();
  ++stats_.checkpoints;
}

void SimFileSystem::create(const std::string& name) {
  validate_name(name);
  if (files_.count(name) != 0) {
    throw std::runtime_error("SimFileSystem: file exists: " + name);
  }
  // First free slot.
  std::uint32_t slot = kMaxFiles;
  for (std::uint32_t i = 0; i < kMaxFiles; ++i) {
    if (slots_[i].used == 0) {
      slot = i;
      break;
    }
  }
  if (slot == kMaxFiles) {
    throw std::runtime_error("SimFileSystem: directory full");
  }

  std::memset(&slots_[slot], 0, sizeof(DirSlot));
  std::strncpy(slots_[slot].name, name.c_str(), kMaxNameLen);
  slots_[slot].used = 1;
  files_[name] = slot;
  ++stats_.creates;
  persist_slot(slot, /*is_create_like=*/true, name);
}

void SimFileSystem::remove(const std::string& name) {
  auto it = files_.find(name);
  if (it == files_.end()) {
    throw std::runtime_error("SimFileSystem: no such file: " + name);
  }
  std::uint32_t slot = it->second;
  release_file_blocks(slots_[slot]);
  slots_[slot] = DirSlot{};
  files_.erase(it);
  ++stats_.removes;
  persist_slot(slot, /*is_create_like=*/false, name);
}

bool SimFileSystem::exists(const std::string& name) const { return files_.count(name) != 0; }

std::vector<std::string> SimFileSystem::list() const {
  std::vector<std::string> names;
  names.reserve(files_.size());
  for (const auto& [name, slot] : files_) {
    names.push_back(name);
  }
  return names;
}

void SimFileSystem::sync() {
  for (std::uint32_t b = 0; b < kDirBlocks; ++b) {
    if (dirty_dir_blocks_[b]) {
      write_dir_block(b);
    }
  }
  dirty_dir_blocks_.assign(kDirBlocks, false);
  checkpoint_seq_ = journal_seq_;
  write_superblock();
  device_->flush();
}

void SimFileSystem::load_from_disk() {
  files_.clear();
  slots_.assign(kMaxFiles, DirSlot{});
  dirty_dir_blocks_.assign(kDirBlocks, false);

  std::vector<char> block(kBlockSize);
  device_->read(static_cast<std::uint64_t>(kSuperBlock) * kBlockSize, block.data(), kBlockSize);
  SuperBlock sb{};
  std::memcpy(&sb, block.data(), sizeof(sb));
  if (sb.magic != kMagic) {
    throw std::runtime_error("SimFileSystem: bad superblock (not formatted?)");
  }
  checkpoint_seq_ = sb.checkpoint_seq;

  const std::uint32_t entries_per_block = kBlockSize / kDirEntrySize;
  for (std::uint32_t b = 0; b < kDirBlocks; ++b) {
    device_->read(static_cast<std::uint64_t>(1 + b) * kBlockSize,
                  &slots_[b * entries_per_block], kBlockSize);
  }
  for (std::uint32_t i = 0; i < kMaxFiles; ++i) {
    if (slots_[i].used != 0) {
      slots_[i].name[kMaxNameLen] = '\0';
      files_[slots_[i].name] = i;
    }
  }
  rebuild_allocator();
}

void SimFileSystem::rebuild_allocator() {
  // Everything below the high-water mark that no live file references is
  // free; the high-water mark is one past the largest referenced block.
  std::set<std::uint32_t> used;
  std::uint32_t high = kDataStartBlock;
  for (std::uint32_t i = 0; i < kMaxFiles; ++i) {
    if (slots_[i].used == 0) {
      continue;
    }
    for (std::uint32_t block : slots_[i].blocks) {
      if (block != 0) {
        used.insert(block);
        high = std::max(high, block + 1);
      }
    }
  }
  next_data_block_ = high;
  free_data_blocks_.clear();
  for (std::uint32_t b = kDataStartBlock; b < high; ++b) {
    if (used.count(b) == 0) {
      free_data_blocks_.push_back(b);
    }
  }
}

void SimFileSystem::replay_journal() {
  // Collect valid records with seq >= checkpoint_seq_, then apply in order.
  std::map<std::uint64_t, JournalRecord> records;
  std::vector<char> block(kBlockSize);
  for (std::uint32_t b = 0; b < kJournalBlocks; ++b) {
    device_->read(static_cast<std::uint64_t>(1 + kDirBlocks + b) * kBlockSize, block.data(),
                  kBlockSize);
    JournalRecord rec{};
    std::memcpy(&rec, block.data(), sizeof(rec));
    if (rec.seq >= checkpoint_seq_ && rec.seq > 0) {
      records[rec.seq] = rec;
    }
  }
  for (auto& [seq, rec] : records) {
    rec.name[kMaxNameLen] = '\0';
    if (rec.slot >= kMaxFiles) {
      continue;  // corrupt record
    }
    if (rec.is_upsert != 0) {
      std::memcpy(&slots_[rec.slot], rec.payload, kDirEntrySize);
      slots_[rec.slot].name[kMaxNameLen] = '\0';
    } else {
      slots_[rec.slot] = DirSlot{};
    }
    journal_seq_ = seq + 1;
  }
  // Rebuild the name index from the replayed slot table.
  files_.clear();
  for (std::uint32_t i = 0; i < kMaxFiles; ++i) {
    if (slots_[i].used != 0) {
      files_[slots_[i].name] = i;
    }
  }
}

void SimFileSystem::crash_and_recover() {
  // All volatile state evaporates; on-disk contents (including any pending
  // write-cache data, which SimDisk keeps coherent) survive.
  load_from_disk();
  journal_seq_ = std::max<std::uint64_t>(checkpoint_seq_, 1);
  if (mode_ == DurabilityMode::kJournaled) {
    replay_journal();
  }
  journal_head_ = static_cast<std::uint32_t>((journal_seq_ - 1) % kJournalBlocks);
}

}  // namespace lmb::simfs
