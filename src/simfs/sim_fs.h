// A miniature filesystem over a BlockDevice, built to reproduce Table 16's
// finding in simulation.
//
// §6.8: "in many file systems, such as the BSD fast file system, the
// directory operations are done synchronously in order to maintain on-disk
// integrity ... Linux does not guarantee anything about the disk integrity;
// the directory operations are done in memory.  Other fast systems, such as
// SGI's XFS, use a log."  SimFs implements all three disciplines over the
// simulated disk, so the 2-3 orders-of-magnitude spread of Table 16 can be
// regenerated deterministically:
//
//   kAsync     — metadata updated in memory, flushed only on sync()
//                (1996 Linux/EXT2FS);
//   kJournaled — each operation appends one sequential journal record
//                (XFS/JFS-style);
//   kSync      — each operation synchronously rewrites the directory block
//                (BSD FFS/UFS-style).
//
// Scope matches the paper's workload: a single root directory of zero-byte
// files (create / remove / exists), plus crash-and-recover semantics so the
// integrity guarantees are testable, not just asserted.
#ifndef LMBENCHPP_SRC_SIMFS_SIM_FS_H_
#define LMBENCHPP_SRC_SIMFS_SIM_FS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/simdisk/block_device.h"

namespace lmb::simfs {

enum class DurabilityMode : std::uint32_t {
  kAsync = 0,
  kJournaled = 1,
  kSync = 2,
};

const char* durability_mode_name(DurabilityMode mode);

struct SimFsStats {
  std::uint64_t creates = 0;
  std::uint64_t removes = 0;
  std::uint64_t metadata_block_writes = 0;  // directory/superblock writes
  std::uint64_t journal_writes = 0;
  std::uint64_t checkpoints = 0;
};

// On-disk layout constants (exposed for tests).
inline constexpr std::uint32_t kBlockSize = 4096;
inline constexpr std::uint32_t kSuperBlock = 0;
inline constexpr std::uint32_t kDirBlocks = 16;      // blocks 1..16
inline constexpr std::uint32_t kJournalBlocks = 64;  // blocks 17..80
inline constexpr std::uint32_t kMaxNameLen = 27;
// Directory entry = inode-lite: name[28], flags, size, 7 direct blocks.
inline constexpr std::uint32_t kDirEntrySize = 64;
inline constexpr std::uint32_t kDirectBlocks = 7;
inline constexpr std::uint32_t kMaxFileBytes = kDirectBlocks * kBlockSize;  // 28 KB
inline constexpr std::uint32_t kMaxFiles = kDirBlocks * (kBlockSize / kDirEntrySize);
// Data region starts after the metadata; blocks are addressed absolutely.
inline constexpr std::uint32_t kDataStartBlock = 1 + kDirBlocks + kJournalBlocks;

class SimFileSystem {
 public:
  // Formats `device` (must hold at least the metadata region) and mounts.
  SimFileSystem(simdisk::BlockDevice& device, DurabilityMode mode);

  DurabilityMode mode() const { return mode_; }

  // Creates a zero-byte file.  Throws std::invalid_argument on bad names
  // (empty, too long, '/'), std::runtime_error if it exists or the
  // directory is full.
  void create(const std::string& name);

  // Removes a file; throws std::runtime_error when absent.
  void remove(const std::string& name);

  bool exists(const std::string& name) const;
  size_t file_count() const { return files_.size(); }
  std::vector<std::string> list() const;

  // File data (direct blocks only; files up to kMaxFileBytes).  Data blocks
  // go to the device immediately — the durability modes govern *metadata*
  // (size, block pointers), matching the §6.8 framing where "the file data
  // is typically cached and sent to disk at some later date" but directory
  // integrity is the contested discipline.
  void write_data(const std::string& name, std::uint64_t offset, const void* buf, size_t len);
  size_t read_data(const std::string& name, std::uint64_t offset, void* buf, size_t len) const;
  std::uint64_t file_size(const std::string& name) const;

  // Flushes all dirty metadata and checkpoints the journal.
  void sync();

  // Simulates a crash (in-memory state lost without flushing) followed by
  // remount + recovery (journal replay in kJournaled mode).  After this the
  // in-memory view reflects exactly what the on-disk state guarantees.
  void crash_and_recover();

  const SimFsStats& stats() const { return stats_; }

 private:
  struct DirSlot {
    char name[kMaxNameLen + 1];  // NUL-terminated
    std::uint32_t used;
    std::uint32_t size;                   // bytes
    std::uint32_t blocks[kDirectBlocks];  // absolute block numbers; 0 = none
  };
  static_assert(sizeof(DirSlot) == kDirEntrySize);

  void validate_name(const std::string& name) const;
  std::uint32_t block_of_slot(std::uint32_t slot) const;
  // Writes one directory block from the in-memory table to the device.
  void write_dir_block(std::uint32_t dir_block_index);
  void write_superblock();
  // Appends one journal record; checkpoints when the journal ring fills.
  // Appends an upsert (slot contents) or remove record.
  void journal_append(bool is_upsert, std::uint32_t slot, const std::string& name);
  void checkpoint();
  // Reads the on-disk structures back into memory (mount path).
  void load_from_disk();
  void replay_journal();

  simdisk::BlockDevice* device_;
  DurabilityMode mode_;
  SimFsStats stats_;

  // In-memory view.
  std::map<std::string, std::uint32_t> files_;  // name -> slot
  std::vector<DirSlot> slots_;
  std::vector<bool> dirty_dir_blocks_;
  std::uint64_t journal_seq_ = 0;   // next record sequence number
  std::uint32_t journal_head_ = 0;  // next journal block to write
  std::uint64_t checkpoint_seq_ = 0;

  // Data-block allocator: next-fit bump pointer with a free list (rebuilt
  // from the directory on mount).
  std::uint32_t next_data_block_ = kDataStartBlock;
  std::vector<std::uint32_t> free_data_blocks_;
  std::uint32_t total_data_blocks_ = 0;

  std::uint32_t allocate_data_block();
  void release_file_blocks(DirSlot& slot);
  // Reconstructs next_data_block_/free list from the live slot table.
  void rebuild_allocator();
  // Persists a slot's metadata per the durability mode.
  void persist_slot(std::uint32_t slot_index, bool is_create_like, const std::string& name);
};

}  // namespace lmb::simfs

#endif  // LMBENCHPP_SRC_SIMFS_SIM_FS_H_
