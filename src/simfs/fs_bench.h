// Table 16 in simulation: the paper's create/delete workload against SimFs
// in each durability mode, timed on the virtual clock.
#ifndef LMBENCHPP_SRC_SIMFS_FS_BENCH_H_
#define LMBENCHPP_SRC_SIMFS_FS_BENCH_H_

#include "src/simdisk/disk_model.h"
#include "src/simfs/sim_fs.h"

namespace lmb::simfs {

struct SimFsBenchConfig {
  int file_count = 1000;
  DurabilityMode mode = DurabilityMode::kSync;
  simdisk::DiskGeometry geometry;
  simdisk::DiskTimingParams timing;
};

struct SimFsBenchResult {
  DurabilityMode mode;
  double create_us = 0.0;  // virtual microseconds per create
  double delete_us = 0.0;
  SimFsStats stats;
};

// Runs the §6.8 workload ("creates 1,000 zero-sized files and then deletes
// them", short names a, b, ... aa, ...) on a fresh SimDisk.
SimFsBenchResult measure_simfs_latency(const SimFsBenchConfig& config = {});

}  // namespace lmb::simfs

#endif  // LMBENCHPP_SRC_SIMFS_FS_BENCH_H_
