#include "src/simfs/fs_bench.h"

#include <stdexcept>

#include "src/core/virtual_clock.h"
#include "src/lat/lat_fs.h"
#include "src/simdisk/sim_disk.h"

namespace lmb::simfs {

SimFsBenchResult measure_simfs_latency(const SimFsBenchConfig& config) {
  if (config.file_count < 1 || static_cast<std::uint32_t>(config.file_count) > kMaxFiles) {
    throw std::invalid_argument("SimFsBenchConfig: file_count out of range");
  }
  VirtualClock clock;
  simdisk::DiskTimingParams timing = config.timing;
  if (config.mode == DurabilityMode::kJournaled && timing.write_cache_bytes == 0) {
    // Journaled filesystems let the drive cache absorb the sequential log
    // writes (bounded by media drain); synchronous-metadata filesystems
    // demand per-op media persistence (FUA), so they get no cache.
    timing.write_cache_bytes = 256 * 1024;
  }
  simdisk::SimDisk disk(config.geometry, timing, clock);
  SimFileSystem fs(disk, config.mode);

  std::vector<std::string> names = lat::short_file_names(config.file_count);

  Nanos start = clock.now();
  for (const auto& name : names) {
    fs.create(name);
  }
  double create_ns = static_cast<double>(clock.now() - start) / config.file_count;

  start = clock.now();
  for (const auto& name : names) {
    fs.remove(name);
  }
  double delete_ns = static_cast<double>(clock.now() - start) / config.file_count;

  SimFsBenchResult result;
  result.mode = config.mode;
  result.create_us = create_ns / 1e3;
  result.delete_us = delete_ns / 1e3;
  result.stats = fs.stats();
  return result;
}

}  // namespace lmb::simfs
