#include "src/core/virtual_clock.h"

#include <utility>

namespace lmb {

Nanos EventQueue::schedule_in(Nanos delay, Handler fn) {
  if (delay < 0) {
    throw std::invalid_argument("EventQueue::schedule_in: negative delay");
  }
  return schedule_at(clock_->now() + delay, std::move(fn));
}

Nanos EventQueue::schedule_at(Nanos at, Handler fn) {
  if (at < clock_->now()) {
    throw std::invalid_argument("EventQueue::schedule_at: time in the past");
  }
  if (!fn) {
    throw std::invalid_argument("EventQueue::schedule_at: empty handler");
  }
  heap_.push(Event{at, next_seq_++, std::move(fn)});
  return at;
}

bool EventQueue::run_one() {
  if (heap_.empty()) {
    return false;
  }
  // priority_queue::top is const; move via const_cast is safe because we pop
  // immediately and never touch the moved-from element again.
  Event ev = std::move(const_cast<Event&>(heap_.top()));
  heap_.pop();
  // Handlers may advance the clock past later events' timestamps (e.g. to
  // model processing time); fire such events "late" rather than failing.
  if (ev.at > clock_->now()) {
    clock_->advance_to(ev.at);
  }
  ev.fn();
  return true;
}

size_t EventQueue::run_all(size_t limit) {
  size_t n = 0;
  while (n < limit && run_one()) {
    ++n;
  }
  return n;
}

void EventQueue::run_until(Nanos t) {
  while (!heap_.empty() && heap_.top().at <= t) {
    run_one();
  }
  clock_->advance_to(t);
}

}  // namespace lmb
