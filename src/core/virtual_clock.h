// Deterministic virtual time for the disk and network simulators.
//
// The simulators (src/simdisk, src/netsim) substitute for hardware the paper
// measured directly (raw SCSI disks, dedicated network links).  They run on
// virtual time so their results are exact and reproducible, and so tests can
// assert on them without wall-clock flakiness.
#ifndef LMBENCHPP_SRC_CORE_VIRTUAL_CLOCK_H_
#define LMBENCHPP_SRC_CORE_VIRTUAL_CLOCK_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <stdexcept>
#include <vector>

#include "src/core/clock.h"

namespace lmb {

// A manually-advanced clock.  Also usable as a fake in harness tests.
//
// `set_read_cost` makes every now() call itself consume virtual time, so the
// harness's clock-overhead correction can be exercised deterministically:
// with read cost r, a timed interval's raw span includes one extra r (the
// closing read), exactly what overhead_ns() reports for subtraction.
class VirtualClock final : public Clock {
 public:
  Nanos now() const override {
    now_ += read_cost_;
    return now_;
  }

  Nanos overhead_ns() const override { return read_cost_; }

  std::string name() const override { return "virtual"; }

  void set_read_cost(Nanos cost) {
    if (cost < 0) {
      throw std::invalid_argument("VirtualClock::set_read_cost: negative cost");
    }
    read_cost_ = cost;
  }

  void advance(Nanos delta) {
    if (delta < 0) {
      throw std::invalid_argument("VirtualClock::advance: negative delta");
    }
    now_ += delta;
  }

  void advance_to(Nanos t) {
    if (t < now_) {
      throw std::invalid_argument("VirtualClock::advance_to: time moves backwards");
    }
    now_ = t;
  }

 private:
  mutable Nanos now_ = 0;
  Nanos read_cost_ = 0;
};

// Discrete-event scheduler over a VirtualClock.  Events fire in timestamp
// order; ties fire in scheduling order (stable).
class EventQueue {
 public:
  explicit EventQueue(VirtualClock& clock) : clock_(&clock) {}

  using Handler = std::function<void()>;

  // Schedules `fn` to run at now + delay.  Returns the absolute fire time.
  Nanos schedule_in(Nanos delay, Handler fn);
  // Schedules `fn` at absolute time `at` (must be >= now).
  Nanos schedule_at(Nanos at, Handler fn);

  // Runs the earliest pending event, advancing the clock to its timestamp.
  // Returns false when no events are pending.
  bool run_one();

  // Runs events until the queue drains or `limit` events have fired.
  // Returns the number of events run.
  size_t run_all(size_t limit = 1'000'000);

  // Runs all events with timestamps <= t, then advances the clock to t.
  void run_until(Nanos t);

  bool empty() const { return heap_.empty(); }
  size_t pending() const { return heap_.size(); }

 private:
  struct Event {
    Nanos at;
    std::uint64_t seq;  // tie-break: FIFO among equal timestamps
    Handler fn;
    bool operator>(const Event& o) const {
      return at != o.at ? at > o.at : seq > o.seq;
    }
  };

  VirtualClock* clock_;
  std::uint64_t next_seq_ = 0;
  std::priority_queue<Event, std::vector<Event>, std::greater<>> heap_;
};

}  // namespace lmb

#endif  // LMBENCHPP_SRC_CORE_VIRTUAL_CLOCK_H_
