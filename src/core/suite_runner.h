// Suite execution engine: runs registered benchmarks with failure
// isolation, per-benchmark wall-clock timeouts, and optional parallelism.
//
// The paper's driver (`lmbench-run`) executes benchmarks strictly one at a
// time; this runner keeps that as the default (jobs=1) because concurrent
// benchmarks perturb each other's timings.  When callers opt into
// `jobs=N`, benchmarks whose category is *exclusive* (memory and disk
// bandwidth by default — the ones most sensitive to a busy memory bus) are
// still serialized against their own category, while cheap independent
// latency probes overlap.
//
// Isolation contract: one misbehaving benchmark cannot take down the
// suite.  A throwing benchmark becomes a RunStatus::kError result; a
// hanging benchmark is abandoned after `timeout_sec` and reported as
// RunStatus::kTimeout.  (Abandonment detaches the thread — C++ offers no
// portable cancellation — so a timed-out benchmark may keep consuming one
// CPU until the process exits; the registry it came from must stay alive.)
#ifndef LMBENCHPP_SRC_CORE_SUITE_RUNNER_H_
#define LMBENCHPP_SRC_CORE_SUITE_RUNNER_H_

#include <functional>
#include <set>
#include <string>
#include <vector>

#include "src/core/cal_cache.h"
#include "src/core/options.h"
#include "src/core/registry.h"
#include "src/core/run_result.h"
#include "src/obs/trace.h"

namespace lmb {

// One suite invocation's knobs.
struct SuiteConfig {
  // Run only benchmarks in this category ("" = every category).
  std::string category;
  // Explicit benchmark names; when non-empty this overrides `category`.
  // Unknown names throw std::invalid_argument before anything runs.
  std::vector<std::string> names;
  // Worker count; values < 1 behave as 1.  Exclusive categories are
  // serialized regardless of the worker count.
  int jobs = 1;
  // Per-benchmark wall-clock budget in seconds; <= 0 disables timeouts.
  double timeout_sec = 0.0;
  // Passed verbatim to every benchmark (--quick, --size=, ...).
  Options options;
  // Categories whose members never run concurrently with each other.
  std::set<std::string> exclusive_categories = {"bandwidth", "disk"};
  // Optional calibration cache (must outlive run()).  When set, every
  // benchmark runs inside a CalibrationScope against it, so measure()
  // calls memoize their calibrated iteration counts; per-benchmark wall
  // clock is recorded back for scheduling, and each RunResult gains
  // cal_hits/cal_misses metadata.  With jobs > 1, benchmarks are claimed
  // longest-expected-first (classic LPT makespan reduction) using the
  // cache's wall-clock history; benchmarks with no history run first.
  CalibrationCache* cal_cache = nullptr;
  // Optional trace sink (must outlive run(), same lifetime rule as
  // cal_cache).  When set, every benchmark runs inside an obs::ObsScope so
  // the timing engine emits calibration/repetition events into it, and the
  // runner adds suite-level spans and scheduler claim events.
  obs::TraceSink* trace = nullptr;
  // Sample hardware perf counters (src/obs/perf_counters.h) around each
  // timed interval.  Benchmarks with a dominant measurement then gain
  // ipc/"count" and cache_miss_pct/"%" metrics.  A graceful no-op where
  // perf_event_open is unavailable (the metrics are simply absent).
  bool counters = false;
  // Optional time source for every measurement in the suite (must outlive
  // run(), same lifetime rule as cal_cache).  When set, each benchmark runs
  // inside a MeasureScope so measure() calls that don't pass an explicit
  // clock use this one; null keeps the WallClock default.  Set from
  // --clock= via select_clock (src/core/tsc_clock.h).
  const Clock* clock = nullptr;
  // Nanoscale timing mode for every measurement in the suite: batched
  // back-to-back intervals with measured per-interval read overhead (see
  // TimingPolicy::nanoscale).  Set from --nanoscale.
  bool nanoscale = false;
};

// Observability hook payload.  kStart fires before a benchmark runs,
// kFinish after its result is recorded (result points at the stored
// RunResult, valid until the run() call returns its vector).
struct SuiteEvent {
  enum class Kind { kStart, kFinish };
  Kind kind = Kind::kStart;
  int index = 0;  // position in the run order
  int total = 0;  // number of benchmarks in this invocation
  std::string name;
  std::string description;
  const RunResult* result = nullptr;  // kFinish only
};

class SuiteRunner {
 public:
  // The registry must outlive the runner AND any timed-out benchmark
  // threads it abandoned.  Registry::global() trivially satisfies both.
  // The same lifetime rule applies to SuiteConfig::cal_cache: an abandoned
  // benchmark thread may still touch the cache after run() returns.
  explicit SuiteRunner(const Registry& registry = Registry::global());

  // Progress callback; invoked serially (an internal mutex orders events
  // from concurrent workers).  Pass nullptr to clear.
  void set_progress(std::function<void(const SuiteEvent&)> callback);

  // Executes the selected benchmarks and returns one RunResult per
  // benchmark, in deterministic (name-sorted) order independent of `jobs`.
  std::vector<RunResult> run(const SuiteConfig& config) const;

 private:
  const Registry* registry_;
  std::function<void(const SuiteEvent&)> progress_;
};

}  // namespace lmb

#endif  // LMBENCHPP_SRC_CORE_SUITE_RUNNER_H_
