// Monotonic time sources and clock-resolution probing.
//
// lmbench's central timing problem (paper §3.4) is that the system clock may
// be coarse relative to the operations being measured.  Everything in the
// harness is therefore written against the abstract `Clock` interface so the
// calibration logic can be exercised in tests with deliberately coarse or
// scripted fake clocks.
#ifndef LMBENCHPP_SRC_CORE_CLOCK_H_
#define LMBENCHPP_SRC_CORE_CLOCK_H_

#include <cstdint>

namespace lmb {

// Nanoseconds.  Signed so durations and differences are representable.
using Nanos = std::int64_t;

inline constexpr Nanos kMicrosecond = 1'000;
inline constexpr Nanos kMillisecond = 1'000'000;
inline constexpr Nanos kSecond = 1'000'000'000;

// A monotonic time source.
class Clock {
 public:
  virtual ~Clock() = default;

  // Current time in nanoseconds since an arbitrary epoch.  Monotonic
  // non-decreasing for any given instance.
  virtual Nanos now() const = 0;
};

// The real monotonic wall clock (CLOCK_MONOTONIC).
class WallClock final : public Clock {
 public:
  Nanos now() const override;

  // Shared instance; stateless, safe to use from multiple threads/processes.
  static const WallClock& instance();
};

// Empirically observed properties of a clock.
struct ClockResolution {
  // The smallest observed non-zero increment between consecutive reads.
  Nanos tick = 0;
  // Median cost of one now() call, measured back to back.
  Nanos read_overhead = 0;
};

// Probes `clock` by reading it repeatedly.  `samples` bounds the number of
// consecutive-read pairs examined.
ClockResolution probe_resolution(const Clock& clock, int samples = 10000);

// A simple elapsed-time stopwatch over an injectable clock.
class StopWatch {
 public:
  explicit StopWatch(const Clock& clock = WallClock::instance()) : clock_(&clock) { reset(); }

  void reset() { start_ = clock_->now(); }
  Nanos elapsed() const { return clock_->now() - start_; }

 private:
  const Clock* clock_;
  Nanos start_ = 0;
};

}  // namespace lmb

#endif  // LMBENCHPP_SRC_CORE_CLOCK_H_
