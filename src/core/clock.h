// Monotonic time sources and clock-resolution probing.
//
// lmbench's central timing problem (paper §3.4) is that the system clock may
// be coarse relative to the operations being measured.  Everything in the
// harness is therefore written against the abstract `Clock` interface so the
// calibration logic can be exercised in tests with deliberately coarse or
// scripted fake clocks.
#ifndef LMBENCHPP_SRC_CORE_CLOCK_H_
#define LMBENCHPP_SRC_CORE_CLOCK_H_

#include <cstdint>
#include <optional>
#include <string>

namespace lmb {

// Nanoseconds.  Signed so durations and differences are representable.
using Nanos = std::int64_t;

inline constexpr Nanos kMicrosecond = 1'000;
inline constexpr Nanos kMillisecond = 1'000'000;
inline constexpr Nanos kSecond = 1'000'000'000;

// A monotonic time source.
class Clock {
 public:
  virtual ~Clock() = default;

  // Current time in nanoseconds since an arbitrary epoch.  Monotonic
  // non-decreasing for any given instance.
  virtual Nanos now() const = 0;

  // Cost of one now() read, subtracted from every timed interval by the
  // harness (nanoBench-style overhead correction).  The default is 0 —
  // correct for fake clocks whose reads are free; real clocks override it
  // with a measured value.
  virtual Nanos overhead_ns() const { return 0; }

  // Stable short identifier of the time source, recorded per measurement as
  // `clock_source` ("wall", "tsc", ...).  Fakes and scripted clocks report
  // "custom" unless they override.
  virtual std::string name() const { return "custom"; }
};

// Measures the cost of one `clock.now()` read as the minimum over `samples`
// back-to-back read pairs.  Min-of-N deliberately: any interrupt or
// migration only inflates a delta, so the minimum is the closest observable
// bound on the true read cost.
Nanos measure_clock_overhead(const Clock& clock, int samples = 4096);

// Hardened estimator: `rounds` independent min-of-`samples` probes, then the
// median of the round minima.  A single min-of-N probe taken once at startup
// can still be skewed — a frequency ramp or an unlucky SMI window inflates
// every delta of one round, and a torn TSC read can deflate one.  Taking the
// median across rounds rejects whole-round outliers in both directions.
Nanos measure_clock_overhead_robust(const Clock& clock, int samples = 2048, int rounds = 5);

// Per-source overhead seeding: a persisted calibration cache (src/db/
// cal_store) can pre-load the measured read overhead for a clock source so
// nanoscale runs do not re-pay the startup probe.  A seed only takes effect
// when installed before the first overhead_ns() call of that source (the
// value is memoized per process); later seeds are ignored.
void seed_clock_overhead(const std::string& source, Nanos overhead);
std::optional<Nanos> seeded_clock_overhead(const std::string& source);

// Calibration-cache key under which a clock source's measured overhead is
// persisted (see src/db/cal_store.h's key grammar).
std::string clock_overhead_cache_key(const std::string& source);

// The real monotonic wall clock (CLOCK_MONOTONIC).
class WallClock final : public Clock {
 public:
  Nanos now() const override;

  // Measured once per process (robust min-of-N, see
  // measure_clock_overhead_robust) and memoized — or taken from
  // seed_clock_overhead("wall", ...) when a persisted value was installed
  // first; every WallClock instance reports the same value.
  Nanos overhead_ns() const override;

  std::string name() const override { return "wall"; }

  // Shared instance; stateless, safe to use from multiple threads/processes.
  static const WallClock& instance();
};

// Empirically observed properties of a clock.
struct ClockResolution {
  // The smallest observed non-zero increment between consecutive reads.
  Nanos tick = 0;
  // Median cost of one now() call, measured back to back.
  Nanos read_overhead = 0;
};

// Probes `clock` by reading it repeatedly.  `samples` bounds the number of
// consecutive-read pairs examined.
ClockResolution probe_resolution(const Clock& clock, int samples = 10000);

// A simple elapsed-time stopwatch over an injectable clock.
class StopWatch {
 public:
  explicit StopWatch(const Clock& clock = WallClock::instance()) : clock_(&clock) { reset(); }

  void reset() { start_ = clock_->now(); }
  Nanos elapsed() const { return clock_->now() - start_; }

 private:
  const Clock* clock_;
  Nanos start_ = 0;
};

}  // namespace lmb

#endif  // LMBENCHPP_SRC_CORE_CLOCK_H_
