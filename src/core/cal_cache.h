// Calibration memoization: remember the iteration counts the geometric
// calibration ramp discovered, so later runs (same process or, persisted
// through src/db, a later process on the same host) skip straight to a
// single validation probe.
//
// Key structure: each measure() call inside a benchmark gets a key of the
// form `<bench>#<seq>@<min_interval_ns>` — the benchmark name comes from the
// enclosing CalibrationScope (set by the SuiteRunner), the sequence number
// is the ordinal of the measure() call within one benchmark invocation
// (stable for deterministic benchmark bodies; a changed body simply misses),
// and the policy's min_interval is embedded so a policy change can never
// reuse a count calibrated for a different interval.  Host identity is NOT
// part of the key — persistence (src/db/cal_store) stores the host signature
// alongside the whole set and discards the set wholesale on mismatch.
//
// A cached count is never trusted blindly: measure() re-times one interval
// at the cached count and falls back to full calibration when it no longer
// spans min_interval (thermal drift, migration, contention).
#ifndef LMBENCHPP_SRC_CORE_CAL_CACHE_H_
#define LMBENCHPP_SRC_CORE_CAL_CACHE_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>

#include "src/core/clock.h"

namespace lmb {

// One remembered calibration: the iteration count and the interval it was
// calibrated against.
struct CalEntry {
  std::uint64_t iterations = 0;
  Nanos min_interval = 0;
};

// Thread-safe store of calibration results plus per-benchmark wall-clock
// expectations (used by the SuiteRunner for longest-expected-first
// scheduling).  Shared by concurrent suite workers.
class CalibrationCache {
 public:
  std::optional<CalEntry> find(const std::string& key) const;
  void put(const std::string& key, CalEntry entry);

  // Expected wall-clock of one whole benchmark, from a previous run.
  std::optional<double> expected_wall_ms(const std::string& bench) const;
  void record_wall_ms(const std::string& bench, double ms);

  // Snapshots for persistence.
  std::map<std::string, CalEntry> entries() const;
  std::map<std::string, double> wall_ms() const;

  size_t size() const;

  // Process-lifetime counters, aggregated across every scope that used this
  // cache.  A "hit" is a cached count that validated; a miss is absent,
  // mismatched, or drifted.
  int hits() const { return hits_.load(); }
  int misses() const { return misses_.load(); }
  void count_hit() { hits_.fetch_add(1); }
  void count_miss() { misses_.fetch_add(1); }

 private:
  mutable std::mutex mu_;
  std::map<std::string, CalEntry> entries_;
  std::map<std::string, double> wall_ms_;
  std::atomic<int> hits_{0};
  std::atomic<int> misses_{0};
};

// RAII thread-local context naming the benchmark currently measuring, and
// the cache its calibrations go to.  measure() consults the innermost scope
// on its thread; no scope (or a null cache) means calibration memoization is
// off, which is the behavior of every direct measure() call outside the
// suite.  Scopes nest (a benchmark invoking another benchmark re-keys under
// its own name) and are strictly per-thread.
class CalibrationScope {
 public:
  CalibrationScope(CalibrationCache* cache, std::string bench_name);
  ~CalibrationScope();

  CalibrationScope(const CalibrationScope&) = delete;
  CalibrationScope& operator=(const CalibrationScope&) = delete;

  // Innermost scope on the calling thread; nullptr outside any scope.
  static CalibrationScope* current();

  CalibrationCache* cache() const { return cache_; }

  // Key for the next measure() call in this scope (advances the ordinal).
  std::string next_key(Nanos min_interval);

  void note_hit();
  void note_miss();

  // This scope's own counts (the cache accumulates across scopes).
  int hits() const { return hits_; }
  int misses() const { return misses_; }

 private:
  CalibrationCache* cache_;
  std::string bench_;
  int seq_ = 0;
  int hits_ = 0;
  int misses_ = 0;
  CalibrationScope* prev_;
};

}  // namespace lmb

#endif  // LMBENCHPP_SRC_CORE_CAL_CACHE_H_
