#include "src/core/run_result.h"

#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace lmb {

namespace {

// Precision scaled to magnitude, mirroring report::format_number (which
// lives above core in the layering, so we keep a local copy).
std::string format_value(double v) {
  int decimals = 2;
  double mag = std::fabs(v);
  if (mag >= 100) {
    decimals = 0;
  } else if (mag >= 10) {
    decimals = 1;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
  return buf;
}

}  // namespace

const char* run_status_name(RunStatus status) {
  switch (status) {
    case RunStatus::kOk:
      return "ok";
    case RunStatus::kError:
      return "error";
    case RunStatus::kTimeout:
      return "timeout";
    case RunStatus::kSkipped:
      return "skipped";
  }
  return "?";
}

RunStatus run_status_from_name(const std::string& name) {
  if (name == "ok") return RunStatus::kOk;
  if (name == "error") return RunStatus::kError;
  if (name == "timeout") return RunStatus::kTimeout;
  if (name == "skipped") return RunStatus::kSkipped;
  throw std::invalid_argument("unknown run status: " + name);
}

RunResult& RunResult::add(std::string key, double value, std::string unit) {
  metrics.push_back(Metric{std::move(key), value, std::move(unit)});
  return *this;
}

RunResult& RunResult::with(const Measurement& m) {
  measurement = m;
  return *this;
}

std::optional<double> RunResult::metric(const std::string& key) const {
  for (const Metric& m : metrics) {
    if (m.key == key) {
      return m.value;
    }
  }
  return std::nullopt;
}

std::string RunResult::summary() const {
  if (status != RunStatus::kOk) {
    std::string line = run_status_name(status);
    if (!error.empty()) {
      line += ": " + error;
    }
    return line;
  }
  if (!display.empty()) {
    return display;
  }
  if (metrics.empty()) {
    return "ok (no metrics)";
  }
  std::string line;
  for (const Metric& m : metrics) {
    if (!line.empty()) {
      line += ", ";
    }
    // A bare-unit key ("us") reads fine as "12.3 us"; a qualified key
    // ("create_us") gets spelled out as "create_us 12.3 us".
    if (m.key != m.unit) {
      line += m.key + " ";
    }
    line += format_value(m.value);
    if (!m.unit.empty()) {
      line += " " + m.unit;
    }
  }
  return line;
}

RunResult RunResult::failure(std::string message) {
  RunResult r;
  r.status = RunStatus::kError;
  r.error = std::move(message);
  return r;
}

}  // namespace lmb
