// Named-benchmark registry.
//
// Every benchmark in the suite registers itself by name and category so the
// full-suite driver (examples/run_suite) and tests can enumerate and run them
// uniformly, mirroring lmbench's `lmbench-run` script.
#ifndef LMBENCHPP_SRC_CORE_REGISTRY_H_
#define LMBENCHPP_SRC_CORE_REGISTRY_H_

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "src/core/options.h"
#include "src/core/run_result.h"

namespace lmb {

// One suite entry.  `run` executes the benchmark with the given options and
// returns a typed RunResult (metrics, timing detail, metadata); callers
// wanting the old human-readable line use RunResult::summary().  Registered
// run functions may leave RunResult::name/category empty — Registry::add
// wraps them so the returned result is stamped with this entry's identity.
struct BenchmarkInfo {
  std::string name;         // e.g. "lat_pipe"
  std::string category;     // "bandwidth" | "latency" | "disk" | ...
  std::string description;  // one line
  std::function<RunResult(const Options&)> run;
};

class Registry {
 public:
  // The process-wide registry used by REGISTER_LMB_BENCHMARK.
  static Registry& global();

  // Adds an entry.  Throws std::invalid_argument on duplicate name or
  // missing run function.
  void add(BenchmarkInfo info);

  // nullptr when not found.
  const BenchmarkInfo* find(const std::string& name) const;

  // All entries, optionally filtered by category, sorted by name.
  std::vector<const BenchmarkInfo*> list(const std::string& category = "") const;

  size_t size() const { return entries_.size(); }

 private:
  std::map<std::string, BenchmarkInfo> entries_;
};

// Registers at static-initialization time into Registry::global().
struct BenchmarkRegistrar {
  explicit BenchmarkRegistrar(BenchmarkInfo info);
};

}  // namespace lmb

#endif  // LMBENCHPP_SRC_CORE_REGISTRY_H_
