#include "src/core/stats.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace lmb {

Sample::Sample(std::vector<double> values) : values_(std::move(values)) {}

void Sample::add(double v) {
  values_.push_back(v);
  sorted_valid_ = false;
}

void Sample::ensure_sorted() const {
  if (!sorted_valid_) {
    sorted_ = values_;
    std::sort(sorted_.begin(), sorted_.end());
    sorted_valid_ = true;
  }
}

double Sample::min() const {
  if (values_.empty()) {
    throw std::logic_error("Sample::min on empty sample");
  }
  return *std::min_element(values_.begin(), values_.end());
}

double Sample::max() const {
  if (values_.empty()) {
    throw std::logic_error("Sample::max on empty sample");
  }
  return *std::max_element(values_.begin(), values_.end());
}

double Sample::mean() const {
  if (values_.empty()) {
    throw std::logic_error("Sample::mean on empty sample");
  }
  return std::accumulate(values_.begin(), values_.end(), 0.0) /
         static_cast<double>(values_.size());
}

double Sample::median() const { return percentile(50.0); }

double Sample::stddev() const {
  if (values_.size() < 2) {
    return 0.0;
  }
  double m = mean();
  double ss = 0.0;
  for (double v : values_) {
    ss += (v - m) * (v - m);
  }
  return std::sqrt(ss / static_cast<double>(values_.size() - 1));
}

double Sample::percentile(double p) const {
  if (values_.empty()) {
    throw std::logic_error("Sample::percentile on empty sample");
  }
  if (p < 0.0 || p > 100.0) {
    throw std::invalid_argument("percentile out of [0,100]");
  }
  ensure_sorted();
  if (sorted_.size() == 1) {
    return sorted_[0];
  }
  double rank = p / 100.0 * static_cast<double>(sorted_.size() - 1);
  size_t lo = static_cast<size_t>(rank);
  size_t hi = std::min(lo + 1, sorted_.size() - 1);
  double frac = rank - static_cast<double>(lo);
  return sorted_[lo] * (1.0 - frac) + sorted_[hi] * frac;
}

double Sample::coefficient_of_variation() const {
  double m = mean();
  if (m == 0.0) {
    return 0.0;
  }
  return stddev() / m;
}

}  // namespace lmb
