#include "src/core/stats.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace lmb {

Sample::Sample(std::vector<double> values) : values_(std::move(values)) {}

void Sample::add(double v) {
  values_.push_back(v);
  sorted_valid_ = false;
}

void Sample::ensure_sorted() const {
  if (sorted_valid_) {
    return;
  }
  if (sorted_count_ > 0 && sorted_count_ < values_.size() && sorted_.size() == sorted_count_) {
    // add() only appends, so everything before sorted_count_ is still the
    // sorted prefix: sort just the new tail and merge it in.
    sorted_.insert(sorted_.end(), values_.begin() + static_cast<std::ptrdiff_t>(sorted_count_),
                   values_.end());
    auto mid = sorted_.begin() + static_cast<std::ptrdiff_t>(sorted_count_);
    std::sort(mid, sorted_.end());
    std::inplace_merge(sorted_.begin(), mid, sorted_.end());
  } else {
    sorted_ = values_;
    std::sort(sorted_.begin(), sorted_.end());
  }
  sorted_count_ = values_.size();
  sorted_valid_ = true;
}

double Sample::min() const {
  if (values_.empty()) {
    throw std::logic_error("Sample::min on empty sample");
  }
  if (sorted_valid_) {
    return sorted_.front();  // O(1) off the cached order
  }
  return *std::min_element(values_.begin(), values_.end());
}

double Sample::max() const {
  if (values_.empty()) {
    throw std::logic_error("Sample::max on empty sample");
  }
  if (sorted_valid_) {
    return sorted_.back();
  }
  return *std::max_element(values_.begin(), values_.end());
}

double Sample::mean() const {
  if (values_.empty()) {
    throw std::logic_error("Sample::mean on empty sample");
  }
  return std::accumulate(values_.begin(), values_.end(), 0.0) /
         static_cast<double>(values_.size());
}

double Sample::median() const { return percentile(50.0); }

double Sample::stddev() const {
  if (values_.size() < 2) {
    return 0.0;
  }
  double m = mean();
  double ss = 0.0;
  for (double v : values_) {
    ss += (v - m) * (v - m);
  }
  return std::sqrt(ss / static_cast<double>(values_.size() - 1));
}

double Sample::percentile(double p) const {
  if (values_.empty()) {
    throw std::logic_error("Sample::percentile on empty sample");
  }
  if (p < 0.0 || p > 100.0) {
    throw std::invalid_argument("percentile out of [0,100]");
  }
  ensure_sorted();
  if (sorted_.size() == 1) {
    return sorted_[0];
  }
  double rank = p / 100.0 * static_cast<double>(sorted_.size() - 1);
  size_t lo = static_cast<size_t>(rank);
  size_t hi = std::min(lo + 1, sorted_.size() - 1);
  double frac = rank - static_cast<double>(lo);
  return sorted_[lo] * (1.0 - frac) + sorted_[hi] * frac;
}

double Sample::ci_half_width(double confidence) const {
  // Two-sided Student-t critical values for dof 1..30; beyond that the
  // normal approximation is within ~1%.
  static constexpr double kT90[] = {6.314, 2.920, 2.353, 2.132, 2.015, 1.943, 1.895, 1.860,
                                    1.833, 1.812, 1.796, 1.782, 1.771, 1.761, 1.753, 1.746,
                                    1.740, 1.734, 1.729, 1.725, 1.721, 1.717, 1.714, 1.711,
                                    1.708, 1.706, 1.703, 1.701, 1.699, 1.697};
  static constexpr double kT95[] = {12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306,
                                    2.262,  2.228, 2.201, 2.179, 2.160, 2.145, 2.131, 2.120,
                                    2.110,  2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064,
                                    2.060,  2.056, 2.052, 2.048, 2.045, 2.042};
  static constexpr double kT99[] = {63.657, 9.925, 5.841, 4.604, 4.032, 3.707, 3.499, 3.355,
                                    3.250,  3.169, 3.106, 3.055, 3.012, 2.977, 2.947, 2.921,
                                    2.898,  2.878, 2.861, 2.845, 2.831, 2.819, 2.807, 2.797,
                                    2.787,  2.779, 2.771, 2.763, 2.756, 2.750};
  const double* table = nullptr;
  double asymptote = 0.0;
  if (confidence == 0.90) {
    table = kT90;
    asymptote = 1.645;
  } else if (confidence == 0.95) {
    table = kT95;
    asymptote = 1.960;
  } else if (confidence == 0.99) {
    table = kT99;
    asymptote = 2.576;
  } else {
    throw std::invalid_argument("ci_half_width: confidence must be 0.90, 0.95, or 0.99");
  }
  size_t n = values_.size();
  if (n < 2) {
    return 0.0;
  }
  size_t dof = n - 1;
  double t = dof <= 30 ? table[dof - 1] : asymptote;
  return t * stddev() / std::sqrt(static_cast<double>(n));
}

double Sample::coefficient_of_variation() const {
  double m = mean();
  if (m == 0.0) {
    return 0.0;
  }
  return stddev() / m;
}

}  // namespace lmb
