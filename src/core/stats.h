// Small-sample statistics for benchmark repetitions.
#ifndef LMBENCHPP_SRC_CORE_STATS_H_
#define LMBENCHPP_SRC_CORE_STATS_H_

#include <cstddef>
#include <vector>

namespace lmb {

// Accumulates observations and answers order/moment statistics.  Stores the
// raw values (benchmark repetition counts are small) so exact medians and
// percentiles are available.
class Sample {
 public:
  Sample() = default;
  explicit Sample(std::vector<double> values);

  void add(double v);

  size_t count() const { return values_.size(); }
  bool empty() const { return values_.empty(); }

  double min() const;
  double max() const;
  double mean() const;
  double median() const;
  // Sample standard deviation (n-1 denominator); 0 for fewer than 2 values.
  double stddev() const;
  // Linear-interpolated percentile, p in [0, 100].
  double percentile(double p) const;
  // stddev / mean; 0 when mean is 0.
  double coefficient_of_variation() const;
  // Half-width of the two-sided Student-t confidence interval on the mean:
  // t(confidence, n-1) * stddev / sqrt(n).  Benchmark repetition counts are
  // small (3..11), where the t correction matters — a z-based interval
  // understates noise by 4x at n = 3.  Supported confidence levels: 0.90,
  // 0.95, 0.99 (throws std::invalid_argument otherwise).  0 for n < 2.
  double ci_half_width(double confidence = 0.95) const;

  const std::vector<double>& values() const { return values_; }

 private:
  // Maintains a sorted view of values_ lazily, behind a dirty flag, so the
  // common p50/p95/p99/p999 quadruple sorts at most once.  When values were
  // appended since the last sort, only the new suffix is sorted and merged
  // into the already-sorted prefix (O(k log k + n) for k new values instead
  // of O(n log n)), which matters for the load path where percentiles are
  // polled between batches of adds.
  void ensure_sorted() const;

  std::vector<double> values_;
  mutable std::vector<double> sorted_;
  mutable size_t sorted_count_ = 0;  // prefix of values_ already in sorted_
  mutable bool sorted_valid_ = false;
};

}  // namespace lmb

#endif  // LMBENCHPP_SRC_CORE_STATS_H_
