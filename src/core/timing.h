// The lmbench timing harness: calibrate, repeat, take the minimum.
//
// Paper §3.4:
//  * "the benchmarks are hand-tuned to measure many operations within a
//    single time interval lasting for many clock ticks" — we auto-calibrate
//    the inner iteration count until one timed interval exceeds
//    TimingPolicy::min_interval.
//  * "We compensate by running the benchmark in a loop and taking the
//    minimum result" — each measurement is repeated `repetitions` times; the
//    headline number is the minimum, with mean/median/stddev retained.
//  * "If the benchmark expects the data to be in the cache, the benchmark is
//    typically run several times; only the last result is recorded" —
//    `warmup_runs` runs the body before any timing.
#ifndef LMBENCHPP_SRC_CORE_TIMING_H_
#define LMBENCHPP_SRC_CORE_TIMING_H_

#include <cstdint>
#include <functional>
#include <string>

#include "src/core/clock.h"
#include "src/core/stats.h"

namespace lmb {

// Knobs controlling one measurement.  A value type so ablation benches and
// tests can sweep policies.
struct TimingPolicy {
  // A single timed interval must last at least this long.
  Nanos min_interval = 10 * kMillisecond;
  // Number of timed repetitions; the reported value is their minimum.
  int repetitions = 11;
  // Untimed executions of the body before calibration (cache warming).
  int warmup_runs = 1;
  // Upper bound on the calibrated per-interval iteration count.
  std::uint64_t max_iterations = 1'000'000'000;
  // Soft budget for the whole measurement (calibration + repetitions).  Once
  // exceeded, remaining repetitions are skipped (at least one is always run).
  Nanos max_total = 20 * kSecond;

  // Defaults tuned to the paper's accuracy goals.
  static TimingPolicy standard() { return TimingPolicy{}; }

  // Cheap settings for CI and tests.
  static TimingPolicy quick() {
    TimingPolicy p;
    p.min_interval = 1 * kMillisecond;
    p.repetitions = 3;
    p.max_total = 2 * kSecond;
    return p;
  }
};

// Outcome of one measurement.
struct Measurement {
  // Headline number: minimum over repetitions of interval / iterations.
  double ns_per_op = 0.0;
  double mean_ns_per_op = 0.0;
  double median_ns_per_op = 0.0;
  double max_ns_per_op = 0.0;
  // Iterations per timed interval chosen by calibration.
  std::uint64_t iterations = 0;
  // Number of repetitions actually timed (may be < policy.repetitions if the
  // max_total budget ran out).
  int repetitions = 0;
  // Per-repetition ns/op values.
  Sample sample;

  double us_per_op() const { return ns_per_op / 1e3; }
  double ms_per_op() const { return ns_per_op / 1e6; }
  // Operations per second implied by the headline latency.
  double ops_per_sec() const { return ns_per_op > 0 ? 1e9 / ns_per_op : 0.0; }
};

// The benchmark body: run the measured operation `iters` times.
using BenchFn = std::function<void(std::uint64_t iters)>;

// Body with explicit per-repetition setup (not timed): `setup()` runs before
// each timed interval.
struct BenchBody {
  BenchFn run;
  std::function<void()> setup;  // optional
};

// Finds an iteration count such that run(iterations) lasts at least
// policy.min_interval.  Exposed for tests and ablations.
std::uint64_t calibrate_iterations(const BenchFn& fn, const TimingPolicy& policy,
                                   const Clock& clock = WallClock::instance());

// Measures `fn` under `policy`.  Throws std::invalid_argument if fn is empty.
Measurement measure(const BenchFn& fn, const TimingPolicy& policy = TimingPolicy::standard(),
                    const Clock& clock = WallClock::instance());

// As above with per-repetition untimed setup.
Measurement measure(const BenchBody& body, const TimingPolicy& policy = TimingPolicy::standard(),
                    const Clock& clock = WallClock::instance());

// Measures an operation whose cost is too large or stateful to loop inside
// one interval (e.g. fork/exec): times `n` one-shot executions individually
// and aggregates.  Each execution is one "repetition"; no calibration.
Measurement measure_once_each(const std::function<void()>& fn, int n,
                              const Clock& clock = WallClock::instance());

// Converts a measured per-op latency plus bytes-moved-per-op into MB/s.
// Uses the paper's convention of 1 MB = 2^20 bytes.
double mb_per_sec(double bytes_per_op, double ns_per_op);

}  // namespace lmb

#endif  // LMBENCHPP_SRC_CORE_TIMING_H_
