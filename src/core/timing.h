// The lmbench timing harness: calibrate, repeat, take the minimum —
// adaptively.
//
// Paper §3.4:
//  * "the benchmarks are hand-tuned to measure many operations within a
//    single time interval lasting for many clock ticks" — we auto-calibrate
//    the inner iteration count until one timed interval exceeds
//    TimingPolicy::min_interval.
//  * "We compensate by running the benchmark in a loop and taking the
//    minimum result" — each measurement is repeated up to `repetitions`
//    times; the headline number is the minimum, with mean/median/stddev
//    retained.
//  * "If the benchmark expects the data to be in the cache, the benchmark is
//    typically run several times; only the last result is recorded" —
//    `warmup_runs` runs the body before any timing.
//
// Where this harness departs from the paper's fixed policy (set
// `convergence = 0` to get the paper's behavior back):
//  * Early stop: once at least `min_repetitions` intervals are in and the
//    running sample has converged ((median - min) <= convergence * min),
//    remaining repetitions are skipped — re-measuring an already-converged
//    minimum buys nothing (cf. nanoBench's variance-driven stopping).
//  * Clock-overhead correction: the measured cost of one clock read
//    (Clock::overhead_ns) is subtracted from every timed interval, clamped
//    at zero.
//  * Calibration memoization: inside a CalibrationScope (src/core/
//    cal_cache.h), calibrated iteration counts are cached and revalidated
//    with a single probe instead of re-running the geometric ramp; the
//    validation probe doubles as the first repetition, so a warm
//    measurement wastes no intervals at all.
//  * Observability: inside an obs::ObsScope (src/obs/trace.h), every timing
//    decision — calibration probes, warm-up, per-rep intervals, early stop,
//    cache hit/miss — is emitted as a structured trace event, and hardware
//    perf counters (src/obs/perf_counters.h) are sampled around each timed
//    interval, surfacing IPC and cache-miss-rate per measurement.  Without
//    a scope both are zero-cost no-ops.
#ifndef LMBENCHPP_SRC_CORE_TIMING_H_
#define LMBENCHPP_SRC_CORE_TIMING_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "src/core/clock.h"
#include "src/core/stats.h"
#include "src/obs/perf_counters.h"

namespace lmb {

// Knobs controlling one measurement.  A value type so ablation benches and
// tests can sweep policies.
struct TimingPolicy {
  // A single timed interval must last at least this long.
  Nanos min_interval = 10 * kMillisecond;
  // Cap on timed repetitions; the reported value is their minimum.
  int repetitions = 11;
  // Floor on timed repetitions before early stop may trigger.
  int min_repetitions = 3;
  // Early-stop threshold on the relative spread of the running sample:
  // stop once (median - min) <= convergence * min after min_repetitions
  // intervals.  0 disables early stop (the paper's fixed policy: always
  // run `repetitions` intervals).  5% matches the suite's reporting
  // tolerance; tighter values buy little once the median hugs the minimum.
  double convergence = 0.05;
  // Untimed executions of the body before calibration (cache warming).
  int warmup_runs = 1;
  // Upper bound on the calibrated per-interval iteration count.
  std::uint64_t max_iterations = 1'000'000'000;
  // Soft budget for the whole measurement (calibration + repetitions).  Once
  // exceeded, the calibration ramp bails to its best-known count and
  // remaining repetitions are skipped (at least one interval is always
  // timed).
  Nanos max_total = 20 * kSecond;
  // Nanoscale mode (nanoBench-style): after calibration, time all
  // repetitions as one batch of back-to-back intervals — a single clock read
  // separates interval k from interval k+1, and hardware counters wrap the
  // whole batch instead of each interval.  The per-interval clock(+counter)
  // read overhead is measured alongside and reported in the trace and the
  // JSON timing block.  Also enabled for every measurement inside a
  // MeasureScope constructed with nanoscale = true.
  bool nanoscale = false;

  // Defaults tuned to the paper's accuracy goals, with adaptive early stop.
  static TimingPolicy standard() { return TimingPolicy{}; }

  // The paper's fixed policy: every repetition always runs.
  static TimingPolicy fixed() {
    TimingPolicy p;
    p.convergence = 0.0;
    return p;
  }

  // Cheap settings for CI and tests.
  static TimingPolicy quick() {
    TimingPolicy p;
    p.min_interval = 1 * kMillisecond;
    p.repetitions = 3;
    p.max_total = 2 * kSecond;
    return p;
  }
};

// Outcome of one measurement.
struct Measurement {
  // Headline number: minimum over repetitions of interval / iterations.
  double ns_per_op = 0.0;
  double mean_ns_per_op = 0.0;
  double median_ns_per_op = 0.0;
  double max_ns_per_op = 0.0;
  // Iterations per timed interval chosen by calibration.
  std::uint64_t iterations = 0;
  // Timed intervals contributing to the sample, including a reused
  // calibration/validation probe.  May be < policy.repetitions when early
  // stop converged or the max_total budget ran out.
  int repetitions = 0;
  // Clock-read overhead subtracted from each timed interval (Clock::
  // overhead_ns at measurement time).
  Nanos clock_overhead_ns = 0;
  // Time source that produced the intervals (Clock::name): "wall", "tsc",
  // "virtual", ... — recorded so results from different clocks never get
  // compared silently.
  std::string clock_source;
  // True when the batched back-to-back path timed the intervals.
  bool nanoscale = false;
  // Nanoscale only: measured per-interval clock(+counter) read cost at
  // measurement time, in ns.  -1 outside nanoscale mode (serialized as an
  // explicit null, never a silent zero).
  Nanos interval_overhead_ns = -1;
  // True when early stop triggered (the sample converged before the
  // repetition cap).
  bool converged = false;
  // True when the iteration count came from a validated calibration-cache
  // entry instead of the geometric ramp.
  bool calibration_cached = false;
  // Per-repetition ns/op values.
  Sample sample;
  // Hardware counter totals summed over the sampled intervals; absent when
  // counter sampling was off or perf_event_open was unavailable (the
  // serialized form then carries explicit nulls, never zeros).
  std::optional<obs::CounterTotals> counters;

  double us_per_op() const { return ns_per_op / 1e3; }
  double ms_per_op() const { return ns_per_op / 1e6; }
  // Operations per second implied by the headline latency.
  double ops_per_sec() const { return ns_per_op > 0 ? 1e9 / ns_per_op : 0.0; }
};

// Scoped default-clock (and nanoscale) selection, RAII like
// CalibrationScope/ObsScope: while a MeasureScope is installed on a thread,
// every measure()/calibrate_iterations()/measure_once_each() call that does
// not pass an explicit clock uses the scope's clock, and nanoscale mode is
// on when the scope says so.  This is how --clock/--nanoscale reach every
// benchmark in a suite without threading a Clock& through each of them.
// Scopes nest; the innermost wins.
class MeasureScope {
 public:
  explicit MeasureScope(const Clock& clock, bool nanoscale = false);
  ~MeasureScope();

  MeasureScope(const MeasureScope&) = delete;
  MeasureScope& operator=(const MeasureScope&) = delete;

  const Clock& clock() const { return *clock_; }
  bool nanoscale() const { return nanoscale_; }

  // The innermost scope on this thread, or nullptr.
  static MeasureScope* current();

 private:
  const Clock* clock_;
  bool nanoscale_;
  MeasureScope* prev_;
};

// The clock measurements default to on this thread: the innermost
// MeasureScope's clock, or WallClock when no scope is installed.
const Clock& selected_clock();

// The benchmark body: run the measured operation `iters` times.
using BenchFn = std::function<void(std::uint64_t iters)>;

// Body with explicit per-repetition setup (not timed): `setup()` runs before
// each timed interval.
struct BenchBody {
  BenchFn run;
  std::function<void()> setup;  // optional
};

// Outcome of the calibration ramp: the chosen count plus the final probe's
// (overhead-corrected) duration, so callers can reuse that interval as the
// first repetition instead of discarding it.
struct Calibration {
  std::uint64_t iterations = 1;
  // Duration of the final probe at `iterations`; >= policy.min_interval
  // unless max_iterations or the budget cut the ramp short.
  Nanos probe_elapsed = 0;
  // True when the ramp bailed because policy.max_total ran out.
  bool budget_exhausted = false;
};

// Finds an iteration count such that run(iterations) lasts at least
// policy.min_interval, charging ramp time against policy.max_total measured
// from `budget_start` (a slow body bails to its best-known count instead of
// burning the whole measurement budget mid-ramp).  `start_iters` seeds the
// ramp: a drifted cache entry resumes near its old count instead of
// re-climbing from one iteration.
Calibration calibrate(const BenchFn& fn, const TimingPolicy& policy, const Clock& clock,
                      Nanos budget_start, std::uint64_t start_iters = 1);

// Back-compat shim: calibrates with the budget starting now, returning only
// the count.  Exposed for tests and ablations.
std::uint64_t calibrate_iterations(const BenchFn& fn, const TimingPolicy& policy,
                                   const Clock& clock = selected_clock());

// Measures `fn` under `policy`.  Throws std::invalid_argument if fn is empty.
Measurement measure(const BenchFn& fn, const TimingPolicy& policy = TimingPolicy::standard(),
                    const Clock& clock = selected_clock());

// As above with per-repetition untimed setup.
Measurement measure(const BenchBody& body, const TimingPolicy& policy = TimingPolicy::standard(),
                    const Clock& clock = selected_clock());

// Measures an operation whose cost is too large or stateful to loop inside
// one interval (e.g. fork/exec): times `n` one-shot executions individually
// and aggregates.  Each execution is one "repetition"; no calibration.
Measurement measure_once_each(const std::function<void()>& fn, int n,
                              const Clock& clock = selected_clock());

// ---------------------------------------------------------------------------
// Randomized A/B interleaving for kernel-variant comparisons.
//
// Measuring variant A to completion and then variant B hands any slow drift
// (thermal throttle, frequency ramp, a background daemon waking up) entirely
// to whichever ran second.  Interleaving shuffles the variants within each
// round so drift hits all of them equally, and the per-round *paired* deltas
// cancel whatever was common to the round (nanoBench §3; the
// machine-stability study in PAPERS.md is the cautionary tale).

// One candidate in an A/B comparison.
struct CompareVariant {
  std::string name;
  BenchFn run;
};

// Aggregate timing for one variant across all rounds.
struct VariantStats {
  std::string name;
  Sample sample;          // per-round ns/op
  double ns_per_op = 0;   // headline: min across rounds
};

// Paired per-round delta of one variant against the baseline (variants[0]).
struct PairedDelta {
  std::string name;            // the variant compared against baseline
  Sample deltas;               // per-round (variant - baseline) ns/op
  double mean_delta_ns = 0;    // mean of the paired deltas
  double ci_half_width_ns = 0; // 95% Student-t half-width of that mean
  double rel_delta = 0;        // mean delta / baseline min ns/op
  bool significant = false;    // |mean| > CI half-width (0 excluded)
};

// Outcome of one interleaved comparison.
struct AbComparison {
  std::uint64_t iterations = 0;    // per timed interval (shared calibration)
  int rounds = 0;                  // completed rounds
  std::string clock_source;        // Clock::name of the timing clock
  std::vector<VariantStats> variants;  // in input order; [0] is the baseline
  std::vector<PairedDelta> deltas;     // one per non-baseline variant
  // Flattened execution order: order[r * variants + k] is the variant index
  // run k-th within round r.  Recorded in the trace so a run can be audited
  // for drift alignment.
  std::vector<int> order;
};

// Runs every variant `rounds` times (policy.repetitions when rounds <= 0)
// in shuffled round-robin: each round times each variant once, in an order
// drawn from a deterministic per-round shuffle of `seed`.  All variants
// share one iteration count, calibrated on variants[0] (comparisons only
// make sense between bodies doing comparable per-iteration work).  Throws
// std::invalid_argument on fewer than two variants or an empty body.
AbComparison compare_interleaved(const std::vector<CompareVariant>& variants,
                                 const TimingPolicy& policy = TimingPolicy::standard(),
                                 int rounds = 0, std::uint64_t seed = 0x1ab5eedULL,
                                 const Clock& clock = selected_clock());

// Converts a measured per-op latency plus bytes-moved-per-op into MB/s.
// Uses the paper's convention of 1 MB = 2^20 bytes.
double mb_per_sec(double bytes_per_op, double ns_per_op);

}  // namespace lmb

#endif  // LMBENCHPP_SRC_CORE_TIMING_H_
