#include "src/core/options.h"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdlib>
#include <stdexcept>
#include <system_error>

namespace lmb {

namespace {

// Locale-independent strict parses: the whole string must be consumed and
// the value must be finite.  std::stod honors LC_NUMERIC (under a
// comma-decimal locale "1.5" parses as 1) and both stod/stoll skip leading
// whitespace — neither is acceptable for option values.
bool parse_full_int(const std::string& text, std::int64_t& out) {
  const char* begin = text.data();
  const char* end = begin + text.size();
  auto res = std::from_chars(begin, end, out);
  return res.ec == std::errc() && res.ptr == end;
}

bool parse_full_double(const std::string& text, double& out) {
  const char* begin = text.data();
  const char* end = begin + text.size();
  auto res = std::from_chars(begin, end, out);
  // from_chars accepts "inf"/"nan" spellings; no option means that.
  return res.ec == std::errc() && res.ptr == end && std::isfinite(out);
}

}  // namespace

Options Options::parse(int argc, const char* const* argv) {
  Options opts;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) == 0) {
      std::string body = arg.substr(2);
      auto eq = body.find('=');
      if (eq == std::string::npos) {
        if (body.empty()) {
          throw std::invalid_argument("bare '--' is not a valid option");
        }
        opts.values_[body] = "true";
      } else {
        std::string key = body.substr(0, eq);
        if (key.empty()) {
          throw std::invalid_argument("malformed option: " + arg);
        }
        opts.values_[key] = body.substr(eq + 1);
      }
    } else {
      opts.positionals_.push_back(arg);
    }
  }
  return opts;
}

Options Options::from_pairs(std::initializer_list<std::pair<std::string, std::string>> kv) {
  Options opts;
  for (const auto& [k, v] : kv) {
    opts.values_[k] = v;
  }
  return opts;
}

bool Options::has(const std::string& key) const { return values_.count(key) > 0; }

std::string Options::get_string(const std::string& key, const std::string& fallback) const {
  auto it = values_.find(key);
  return it == values_.end() ? fallback : it->second;
}

std::int64_t Options::get_int(const std::string& key, std::int64_t fallback) const {
  auto it = values_.find(key);
  if (it == values_.end()) {
    return fallback;
  }
  std::int64_t v = 0;
  if (!parse_full_int(it->second, v)) {
    throw std::invalid_argument("option --" + key + " is not an integer: '" + it->second + "'");
  }
  return v;
}

double Options::get_double(const std::string& key, double fallback) const {
  auto it = values_.find(key);
  if (it == values_.end()) {
    return fallback;
  }
  double v = 0.0;
  if (!parse_full_double(it->second, v)) {
    throw std::invalid_argument("option --" + key + " is not a number: '" + it->second + "'");
  }
  return v;
}

bool Options::get_bool(const std::string& key, bool fallback) const {
  auto it = values_.find(key);
  if (it == values_.end()) {
    return fallback;
  }
  const std::string& v = it->second;
  if (v == "true" || v == "1" || v == "yes" || v == "on") {
    return true;
  }
  if (v == "false" || v == "0" || v == "no" || v == "off") {
    return false;
  }
  throw std::invalid_argument("option --" + key + " is not a boolean: " + v);
}

std::int64_t Options::get_size(const std::string& key, std::int64_t fallback) const {
  auto it = values_.find(key);
  if (it == values_.end()) {
    return fallback;
  }
  return parse_size(it->second);
}

std::vector<std::string> Options::get_list(const std::string& key,
                                           std::vector<std::string> fallback) const {
  auto it = values_.find(key);
  if (it == values_.end()) {
    return fallback;
  }
  try {
    return split_list(it->second);
  } catch (const std::invalid_argument&) {
    throw std::invalid_argument("option --" + key + " is not a comma list: '" + it->second +
                                "'");
  }
}

void Options::set(const std::string& key, const std::string& value) { values_[key] = value; }

std::vector<std::string> Options::split_list(const std::string& text) {
  std::vector<std::string> out;
  if (text.empty()) {
    return out;
  }
  size_t pos = 0;
  for (;;) {
    size_t comma = text.find(',', pos);
    std::string item =
        text.substr(pos, comma == std::string::npos ? std::string::npos : comma - pos);
    if (item.empty()) {
      throw std::invalid_argument("empty element in list: '" + text + "'");
    }
    out.push_back(std::move(item));
    if (comma == std::string::npos) {
      return out;
    }
    pos = comma + 1;
  }
}

std::int64_t Options::parse_size(const std::string& text) {
  if (text.empty()) {
    throw std::invalid_argument("empty size");
  }
  const char* begin = text.data();
  const char* end = begin + text.size();
  std::int64_t v = 0;
  auto res = std::from_chars(begin, end, v);
  if (res.ec != std::errc() || res.ptr == begin) {
    throw std::invalid_argument("malformed size: " + text);
  }
  if (v < 0) {
    throw std::invalid_argument("negative size: " + text);
  }
  size_t pos = static_cast<size_t>(res.ptr - begin);
  if (pos == text.size()) {
    return v;
  }
  // Exactly one suffix character is allowed; "4kZZ" is garbage, not 4k.
  if (pos + 1 != text.size()) {
    throw std::invalid_argument("malformed size: " + text);
  }
  switch (std::tolower(static_cast<unsigned char>(text[pos]))) {
    case 'k':
      return v * 1024;
    case 'm':
      return v * 1024 * 1024;
    case 'g':
      return v * 1024 * 1024 * 1024;
    default:
      throw std::invalid_argument("unknown size suffix: " + text);
  }
}

}  // namespace lmb
