#include "src/core/timing.h"

#include <algorithm>
#include <memory>
#include <stdexcept>

#include "src/core/cal_cache.h"
#include "src/obs/trace.h"

namespace lmb {

namespace {

// Per-measurement observability context, resolved once from the thread's
// ObsScope.  Everything is null/empty when no scope is installed, making
// every hook below a cheap branch.
struct Observer {
  obs::TraceSink* sink = nullptr;
  std::unique_ptr<obs::PerfCounters> counters;
  obs::CounterTotals totals;

  static Observer resolve() {
    Observer ob;
    if (obs::ObsScope* scope = obs::ObsScope::current(); scope != nullptr) {
      ob.sink = scope->sink();
      if (scope->counters()) {
        ob.counters = std::make_unique<obs::PerfCounters>();
        if (!ob.counters->available()) {
          ob.counters.reset();  // fallback: no fds, no sampling, nulls downstream
        }
      }
    }
    return ob;
  }
};

std::string u64_str(std::uint64_t v) { return std::to_string(v); }
std::string ns_str(Nanos v) { return std::to_string(v); }

// Times one interval of `iters` iterations, subtracting the clock's own
// read overhead (one now() call is inside the measured span).  Clamped at
// zero: a correction can never make an interval negative.  When `ob` has
// perf counters, they cover the same span (enable/disable ioctls sit
// outside the clock-read window, so the timed interval is unperturbed).
Nanos time_interval(const BenchFn& fn, std::uint64_t iters, const Clock& clock,
                    Observer* ob = nullptr) {
  obs::PerfCounters* pc = ob != nullptr ? ob->counters.get() : nullptr;
  if (pc != nullptr) {
    pc->start();
  }
  Nanos start = clock.now();
  fn(iters);
  Nanos raw = clock.now() - start;
  if (pc != nullptr) {
    ob->totals.add(pc->stop());
  }
  return std::max<Nanos>(raw - clock.overhead_ns(), 0);
}

Measurement finish(std::uint64_t iterations, Sample sample, const Clock& clock,
                   bool converged, bool cached, Observer* ob = nullptr) {
  Measurement m;
  m.iterations = iterations;
  m.repetitions = static_cast<int>(sample.count());
  m.ns_per_op = sample.min();
  m.mean_ns_per_op = sample.mean();
  m.median_ns_per_op = sample.median();
  m.max_ns_per_op = sample.max();
  m.clock_overhead_ns = clock.overhead_ns();
  m.converged = converged;
  m.calibration_cached = cached;
  m.sample = std::move(sample);
  if (ob != nullptr && ob->counters != nullptr && ob->totals.intervals > 0) {
    m.counters = ob->totals;
    if (ob->sink != nullptr) {
      ob->sink->instant("counters", "totals",
                        {{"intervals", std::to_string(ob->totals.intervals)},
                         {"instructions", std::to_string(ob->totals.instructions)},
                         {"cycles", std::to_string(ob->totals.cycles)},
                         {"ipc", std::to_string(ob->totals.ipc())},
                         {"cache_miss_rate", std::to_string(ob->totals.cache_miss_rate())},
                         {"multiplexed", ob->totals.multiplexed ? "true" : "false"}});
    }
  }
  return m;
}

// Early-stop test: enough intervals in, and the spread between the running
// median and minimum is within the policy's tolerance.  A zero minimum only
// converges on a zero median (degenerate scripted clocks).
bool sample_converged(const Sample& sample, const TimingPolicy& policy) {
  if (policy.convergence <= 0.0) {
    return false;
  }
  int floor = std::max(policy.min_repetitions, 1);
  if (static_cast<int>(sample.count()) < floor) {
    return false;
  }
  return sample.median() - sample.min() <= policy.convergence * sample.min();
}

}  // namespace

Calibration calibrate(const BenchFn& fn, const TimingPolicy& policy, const Clock& clock,
                      Nanos budget_start, std::uint64_t start_iters) {
  obs::ObsScope* scope = obs::ObsScope::current();
  obs::TraceSink* sink = scope != nullptr ? scope->sink() : nullptr;
  Calibration cal;
  std::uint64_t iters = std::clamp<std::uint64_t>(start_iters, 1, policy.max_iterations);
  while (true) {
    Nanos probe_start = sink != nullptr ? sink->timestamp() : 0;
    Nanos elapsed = time_interval(fn, iters, clock);
    if (sink != nullptr) {
      sink->complete("calibration", "probe", probe_start,
                     {{"iters", u64_str(iters)}, {"elapsed_ns", ns_str(elapsed)}});
    }
    cal.iterations = iters;
    cal.probe_elapsed = elapsed;
    if (elapsed >= policy.min_interval || iters >= policy.max_iterations) {
      return cal;
    }
    if (clock.now() - budget_start > policy.max_total) {
      // A slow body can eat the whole measurement budget inside the ramp;
      // bail to the best-known count so at least one repetition gets timed.
      cal.budget_exhausted = true;
      if (sink != nullptr) {
        sink->instant("calibration", "budget_exhausted", {{"iters", u64_str(iters)}});
      }
      return cal;
    }
    std::uint64_t next;
    if (elapsed <= 0) {
      next = iters * 10;
    } else {
      // Overshoot by 20% so the next probe usually terminates calibration.
      double scale = 1.2 * static_cast<double>(policy.min_interval) /
                     static_cast<double>(elapsed);
      scale = std::clamp(scale, 2.0, 100.0);
      next = static_cast<std::uint64_t>(static_cast<double>(iters) * scale);
    }
    iters = std::min(std::max(next, iters + 1), policy.max_iterations);
  }
}

std::uint64_t calibrate_iterations(const BenchFn& fn, const TimingPolicy& policy,
                                   const Clock& clock) {
  return calibrate(fn, policy, clock, clock.now()).iterations;
}

Measurement measure(const BenchFn& fn, const TimingPolicy& policy, const Clock& clock) {
  return measure(BenchBody{fn, nullptr}, policy, clock);
}

Measurement measure(const BenchBody& body, const TimingPolicy& policy, const Clock& clock) {
  if (!body.run) {
    throw std::invalid_argument("measure: empty benchmark body");
  }
  Observer ob = Observer::resolve();
  Nanos measure_start = ob.sink != nullptr ? ob.sink->timestamp() : 0;
  Nanos budget_start = clock.now();

  {
    Nanos warmup_start = ob.sink != nullptr ? ob.sink->timestamp() : 0;
    for (int i = 0; i < policy.warmup_runs; ++i) {
      if (body.setup) {
        body.setup();
      }
      body.run(1);
    }
    if (ob.sink != nullptr && policy.warmup_runs > 0) {
      ob.sink->complete("timing", "warmup", warmup_start,
                        {{"runs", std::to_string(policy.warmup_runs)}});
    }
  }

  CalibrationScope* scope = CalibrationScope::current();
  CalibrationCache* cache = scope != nullptr ? scope->cache() : nullptr;
  std::string cache_key;
  if (cache != nullptr) {
    cache_key = scope->next_key(policy.min_interval);
  }

  Sample sample;
  std::uint64_t iters = 0;
  bool cached = false;
  std::uint64_t ramp_start = 1;

  if (cache != nullptr) {
    std::optional<CalEntry> entry = cache->find(cache_key);
    if (entry.has_value() && entry->min_interval == policy.min_interval &&
        entry->iterations > 0 && entry->iterations <= policy.max_iterations) {
      // Validate the remembered count with a single probe; on success that
      // probe is the first repetition, so a warm hit wastes nothing.
      if (body.setup) {
        body.setup();
      }
      Nanos probe_start = ob.sink != nullptr ? ob.sink->timestamp() : 0;
      Nanos probe = time_interval(body.run, entry->iterations, clock, &ob);
      if (ob.sink != nullptr) {
        ob.sink->complete("calibration", "cache_probe", probe_start,
                          {{"iters", u64_str(entry->iterations)},
                           {"elapsed_ns", ns_str(probe)}});
      }
      if (probe >= policy.min_interval) {
        iters = entry->iterations;
        sample.add(static_cast<double>(probe) / static_cast<double>(iters));
        cached = true;
        scope->note_hit();
      } else if (probe > 0) {
        // Drift: the probe fell short, but it still says roughly how fast
        // the body is now — resume the ramp near the right count instead of
        // re-climbing from one iteration.
        double scale = 1.2 * static_cast<double>(policy.min_interval) /
                       static_cast<double>(probe);
        ramp_start = static_cast<std::uint64_t>(
            static_cast<double>(entry->iterations) * std::min(scale, 100.0));
      }
    }
    if (!cached) {
      scope->note_miss();
    }
    if (ob.sink != nullptr) {
      ob.sink->instant("calibration", cached ? "cal_hit" : "cal_miss",
                       {{"key", cache_key}});
    }
  }

  if (!cached) {
    if (body.setup) {
      body.setup();
    }
    Calibration cal = calibrate(body.run, policy, clock, budget_start, ramp_start);
    iters = cal.iterations;
    if (cal.probe_elapsed >= policy.min_interval) {
      // The final ramp probe already spans a full interval; keep it as the
      // first repetition instead of throwing it away.
      sample.add(static_cast<double>(cal.probe_elapsed) / static_cast<double>(iters));
    }
    if (cache != nullptr) {
      cache->put(cache_key, CalEntry{iters, policy.min_interval});
    }
  }

  bool converged = false;
  const int cap = std::max(policy.repetitions, 1);
  while (static_cast<int>(sample.count()) < cap) {
    if (sample_converged(sample, policy)) {
      converged = true;
      if (ob.sink != nullptr) {
        ob.sink->instant("timing", "early_stop",
                         {{"reps", std::to_string(sample.count())}});
      }
      break;
    }
    if (!sample.empty() && clock.now() - budget_start > policy.max_total) {
      if (ob.sink != nullptr) {
        ob.sink->instant("timing", "rep_budget_exhausted",
                         {{"reps", std::to_string(sample.count())}});
      }
      break;  // out of budget; keep what we have
    }
    if (body.setup) {
      body.setup();
    }
    Nanos rep_start = ob.sink != nullptr ? ob.sink->timestamp() : 0;
    Nanos elapsed = time_interval(body.run, iters, clock, &ob);
    double ns_per_op = static_cast<double>(elapsed) / static_cast<double>(iters);
    if (ob.sink != nullptr) {
      ob.sink->complete("timing", "rep", rep_start,
                        {{"rep", std::to_string(sample.count())},
                         {"iters", u64_str(iters)},
                         {"ns_per_op", std::to_string(ns_per_op)}});
    }
    sample.add(ns_per_op);
  }
  Measurement m = finish(iters, std::move(sample), clock, converged, cached, &ob);
  if (ob.sink != nullptr) {
    ob.sink->complete("timing", "measure", measure_start,
                      {{"ns_per_op", std::to_string(m.ns_per_op)},
                       {"iterations", u64_str(m.iterations)},
                       {"repetitions", std::to_string(m.repetitions)},
                       {"converged", m.converged ? "true" : "false"},
                       {"calibration_cached", m.calibration_cached ? "true" : "false"}});
  }
  return m;
}

Measurement measure_once_each(const std::function<void()>& fn, int n, const Clock& clock) {
  if (!fn) {
    throw std::invalid_argument("measure_once_each: empty function");
  }
  if (n < 1) {
    throw std::invalid_argument("measure_once_each: n must be >= 1");
  }
  Observer ob = Observer::resolve();
  Sample sample;
  for (int i = 0; i < n; ++i) {
    Nanos rep_start = ob.sink != nullptr ? ob.sink->timestamp() : 0;
    if (ob.counters != nullptr) {
      ob.counters->start();
    }
    Nanos start = clock.now();
    fn();
    Nanos raw = clock.now() - start;
    if (ob.counters != nullptr) {
      ob.totals.add(ob.counters->stop());
    }
    Nanos corrected = std::max<Nanos>(raw - clock.overhead_ns(), 0);
    if (ob.sink != nullptr) {
      ob.sink->complete("timing", "rep", rep_start,
                        {{"rep", std::to_string(i)},
                         {"iters", "1"},
                         {"ns_per_op", ns_str(corrected)}});
    }
    sample.add(static_cast<double>(corrected));
  }
  return finish(1, std::move(sample), clock, false, false, &ob);
}

double mb_per_sec(double bytes_per_op, double ns_per_op) {
  if (ns_per_op <= 0.0) {
    return 0.0;
  }
  double bytes_per_sec = bytes_per_op * (1e9 / ns_per_op);
  return bytes_per_sec / (1024.0 * 1024.0);
}

}  // namespace lmb
