#include "src/core/timing.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <numeric>
#include <random>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "src/core/cal_cache.h"
#include "src/obs/trace.h"

namespace lmb {

namespace {

thread_local MeasureScope* g_measure_scope = nullptr;

}  // namespace

MeasureScope::MeasureScope(const Clock& clock, bool nanoscale)
    : clock_(&clock), nanoscale_(nanoscale), prev_(g_measure_scope) {
  g_measure_scope = this;
}

MeasureScope::~MeasureScope() { g_measure_scope = prev_; }

MeasureScope* MeasureScope::current() { return g_measure_scope; }

const Clock& selected_clock() {
  return g_measure_scope != nullptr ? g_measure_scope->clock() : WallClock::instance();
}

namespace {

// Per-measurement observability context, resolved once from the thread's
// ObsScope.  Everything is null/empty when no scope is installed, making
// every hook below a cheap branch.
struct Observer {
  obs::TraceSink* sink = nullptr;
  std::unique_ptr<obs::PerfCounters> counters;
  obs::CounterTotals totals;

  static Observer resolve() {
    Observer ob;
    if (obs::ObsScope* scope = obs::ObsScope::current(); scope != nullptr) {
      ob.sink = scope->sink();
      if (scope->counters()) {
        ob.counters = std::make_unique<obs::PerfCounters>();
        if (!ob.counters->available()) {
          ob.counters.reset();  // fallback: no fds, no sampling, nulls downstream
        }
      }
    }
    return ob;
  }
};

std::string u64_str(std::uint64_t v) { return std::to_string(v); }
std::string ns_str(Nanos v) { return std::to_string(v); }

// Times one interval of `iters` iterations, subtracting the clock's own
// read overhead (one now() call is inside the measured span).  Clamped at
// zero: a correction can never make an interval negative.  When `ob` has
// perf counters, they cover the same span (enable/disable ioctls sit
// outside the clock-read window, so the timed interval is unperturbed).
Nanos time_interval(const BenchFn& fn, std::uint64_t iters, const Clock& clock,
                    Observer* ob = nullptr) {
  obs::PerfCounters* pc = ob != nullptr ? ob->counters.get() : nullptr;
  if (pc != nullptr) {
    pc->start();
  }
  Nanos start = clock.now();
  fn(iters);
  Nanos raw = clock.now() - start;
  if (pc != nullptr) {
    ob->totals.add(pc->stop());
  }
  return std::max<Nanos>(raw - clock.overhead_ns(), 0);
}

Measurement finish(std::uint64_t iterations, Sample sample, const Clock& clock,
                   bool converged, bool cached, Observer* ob = nullptr) {
  Measurement m;
  m.iterations = iterations;
  m.repetitions = static_cast<int>(sample.count());
  m.ns_per_op = sample.min();
  m.mean_ns_per_op = sample.mean();
  m.median_ns_per_op = sample.median();
  m.max_ns_per_op = sample.max();
  m.clock_overhead_ns = clock.overhead_ns();
  m.clock_source = clock.name();
  m.converged = converged;
  m.calibration_cached = cached;
  m.sample = std::move(sample);
  if (ob != nullptr && ob->counters != nullptr && ob->totals.intervals > 0) {
    m.counters = ob->totals;
    if (ob->sink != nullptr) {
      ob->sink->instant("counters", "totals",
                        {{"intervals", std::to_string(ob->totals.intervals)},
                         {"instructions", std::to_string(ob->totals.instructions)},
                         {"cycles", std::to_string(ob->totals.cycles)},
                         {"ipc", std::to_string(ob->totals.ipc())},
                         {"cache_miss_rate", std::to_string(ob->totals.cache_miss_rate())},
                         {"multiplexed", ob->totals.multiplexed ? "true" : "false"}});
    }
  }
  return m;
}

bool effective_nanoscale(const TimingPolicy& policy) {
  if (policy.nanoscale) {
    return true;
  }
  MeasureScope* scope = MeasureScope::current();
  return scope != nullptr && scope->nanoscale();
}

// Nanoscale batch: `repetitions` back-to-back intervals separated by single
// clock reads (the end stamp of interval k is the start stamp of k+1), with
// hardware counters wrapping the whole batch instead of each interval.  The
// per-interval overhead — one clock read, plus the amortized counter
// snapshot pair when counters are on — is measured here at the batch site,
// subtracted from each interval, and reported in both the trace and the
// Measurement (never a silent zero: outside nanoscale mode the field is -1
// and serializes as null).
Measurement measure_nanoscale(const BenchBody& body, const TimingPolicy& policy,
                              const Clock& clock, std::uint64_t iters, bool cached,
                              Observer& ob, Nanos measure_start, Nanos budget_start) {
  // Fresh min-estimate of this clock's read cost, taken at the batch site
  // rather than trusting the process-startup memoized value.
  Nanos clock_read = measure_clock_overhead(clock, 512);

  obs::PerfCounters* pc = ob.counters.get();
  Nanos counter_pair = -1;
  if (pc != nullptr) {
    counter_pair = kSecond;
    for (int i = 0; i < 32; ++i) {
      Nanos t0 = clock.now();
      pc->start();
      (void)pc->stop();
      Nanos cost = clock.now() - t0 - clock_read;
      counter_pair = std::min(counter_pair, std::max<Nanos>(cost, 0));
    }
  }

  const int cap = std::max(policy.repetitions, 1);
  if (body.setup) {
    body.setup();  // once for the whole batch; intervals must stay adjacent
  }
  std::vector<Nanos> stamps(static_cast<size_t>(cap) + 1);
  ob.totals = obs::CounterTotals{};  // the batch owns the totals (drop any probe sample)
  if (pc != nullptr) {
    pc->start();
  }
  stamps[0] = clock.now();
  int reps = 0;
  for (int r = 0; r < cap; ++r) {
    body.run(iters);
    stamps[static_cast<size_t>(r) + 1] = clock.now();
    reps = r + 1;
    if (stamps[static_cast<size_t>(r) + 1] - budget_start > policy.max_total) {
      break;  // out of budget; the stamps taken so far are still valid
    }
  }
  if (pc != nullptr) {
    ob.totals.add(pc->stop());
  }

  Sample sample;
  for (int r = 0; r < reps; ++r) {
    Nanos corrected = std::max<Nanos>(
        stamps[static_cast<size_t>(r) + 1] - stamps[static_cast<size_t>(r)] - clock_read, 0);
    sample.add(static_cast<double>(corrected) / static_cast<double>(iters));
  }

  Nanos interval_overhead =
      clock_read + (pc != nullptr && reps > 0 ? counter_pair / reps : 0);
  if (ob.sink != nullptr) {
    ob.sink->instant("timing", "interval_overhead",
                     {{"clock_source", clock.name()},
                      {"clock_read_ns", ns_str(clock_read)},
                      {"counter_pair_ns", pc != nullptr ? ns_str(counter_pair) : "null"},
                      {"interval_overhead_ns", ns_str(interval_overhead)},
                      {"intervals", std::to_string(reps)}});
  }
  Measurement m = finish(iters, std::move(sample), clock, false, cached, &ob);
  m.nanoscale = true;
  m.interval_overhead_ns = interval_overhead;
  m.clock_overhead_ns = clock_read;  // what was actually subtracted per interval
  if (ob.sink != nullptr) {
    ob.sink->complete("timing", "measure", measure_start,
                      {{"ns_per_op", std::to_string(m.ns_per_op)},
                       {"iterations", u64_str(m.iterations)},
                       {"repetitions", std::to_string(m.repetitions)},
                       {"nanoscale", "true"},
                       {"clock_source", m.clock_source},
                       {"calibration_cached", m.calibration_cached ? "true" : "false"}});
  }
  return m;
}

// Early-stop test: enough intervals in, and the spread between the running
// median and minimum is within the policy's tolerance.  A zero minimum only
// converges on a zero median (degenerate scripted clocks).
bool sample_converged(const Sample& sample, const TimingPolicy& policy) {
  if (policy.convergence <= 0.0) {
    return false;
  }
  int floor = std::max(policy.min_repetitions, 1);
  if (static_cast<int>(sample.count()) < floor) {
    return false;
  }
  return sample.median() - sample.min() <= policy.convergence * sample.min();
}

}  // namespace

Calibration calibrate(const BenchFn& fn, const TimingPolicy& policy, const Clock& clock,
                      Nanos budget_start, std::uint64_t start_iters) {
  obs::ObsScope* scope = obs::ObsScope::current();
  obs::TraceSink* sink = scope != nullptr ? scope->sink() : nullptr;
  Calibration cal;
  std::uint64_t iters = std::clamp<std::uint64_t>(start_iters, 1, policy.max_iterations);
  while (true) {
    Nanos probe_start = sink != nullptr ? sink->timestamp() : 0;
    Nanos elapsed = time_interval(fn, iters, clock);
    if (sink != nullptr) {
      sink->complete("calibration", "probe", probe_start,
                     {{"iters", u64_str(iters)}, {"elapsed_ns", ns_str(elapsed)}});
    }
    cal.iterations = iters;
    cal.probe_elapsed = elapsed;
    if (elapsed >= policy.min_interval || iters >= policy.max_iterations) {
      return cal;
    }
    if (clock.now() - budget_start > policy.max_total) {
      // A slow body can eat the whole measurement budget inside the ramp;
      // bail to the best-known count so at least one repetition gets timed.
      cal.budget_exhausted = true;
      if (sink != nullptr) {
        sink->instant("calibration", "budget_exhausted", {{"iters", u64_str(iters)}});
      }
      return cal;
    }
    std::uint64_t next;
    if (elapsed <= 0) {
      next = iters * 10;
    } else {
      // Overshoot by 20% so the next probe usually terminates calibration.
      double scale = 1.2 * static_cast<double>(policy.min_interval) /
                     static_cast<double>(elapsed);
      scale = std::clamp(scale, 2.0, 100.0);
      next = static_cast<std::uint64_t>(static_cast<double>(iters) * scale);
    }
    iters = std::min(std::max(next, iters + 1), policy.max_iterations);
  }
}

std::uint64_t calibrate_iterations(const BenchFn& fn, const TimingPolicy& policy,
                                   const Clock& clock) {
  return calibrate(fn, policy, clock, clock.now()).iterations;
}

Measurement measure(const BenchFn& fn, const TimingPolicy& policy, const Clock& clock) {
  return measure(BenchBody{fn, nullptr}, policy, clock);
}

Measurement measure(const BenchBody& body, const TimingPolicy& policy, const Clock& clock) {
  if (!body.run) {
    throw std::invalid_argument("measure: empty benchmark body");
  }
  Observer ob = Observer::resolve();
  Nanos measure_start = ob.sink != nullptr ? ob.sink->timestamp() : 0;
  Nanos budget_start = clock.now();

  {
    Nanos warmup_start = ob.sink != nullptr ? ob.sink->timestamp() : 0;
    for (int i = 0; i < policy.warmup_runs; ++i) {
      if (body.setup) {
        body.setup();
      }
      body.run(1);
    }
    if (ob.sink != nullptr && policy.warmup_runs > 0) {
      ob.sink->complete("timing", "warmup", warmup_start,
                        {{"runs", std::to_string(policy.warmup_runs)}});
    }
  }

  CalibrationScope* scope = CalibrationScope::current();
  CalibrationCache* cache = scope != nullptr ? scope->cache() : nullptr;
  std::string cache_key;
  if (cache != nullptr) {
    cache_key = scope->next_key(policy.min_interval);
  }

  Sample sample;
  std::uint64_t iters = 0;
  bool cached = false;
  std::uint64_t ramp_start = 1;

  if (cache != nullptr) {
    std::optional<CalEntry> entry = cache->find(cache_key);
    if (entry.has_value() && entry->min_interval == policy.min_interval &&
        entry->iterations > 0 && entry->iterations <= policy.max_iterations) {
      // Validate the remembered count with a single probe; on success that
      // probe is the first repetition, so a warm hit wastes nothing.
      if (body.setup) {
        body.setup();
      }
      Nanos probe_start = ob.sink != nullptr ? ob.sink->timestamp() : 0;
      Nanos probe = time_interval(body.run, entry->iterations, clock, &ob);
      if (ob.sink != nullptr) {
        ob.sink->complete("calibration", "cache_probe", probe_start,
                          {{"iters", u64_str(entry->iterations)},
                           {"elapsed_ns", ns_str(probe)}});
      }
      if (probe >= policy.min_interval) {
        iters = entry->iterations;
        sample.add(static_cast<double>(probe) / static_cast<double>(iters));
        cached = true;
        scope->note_hit();
      } else if (probe > 0) {
        // Drift: the probe fell short, but it still says roughly how fast
        // the body is now — resume the ramp near the right count instead of
        // re-climbing from one iteration.
        double scale = 1.2 * static_cast<double>(policy.min_interval) /
                       static_cast<double>(probe);
        ramp_start = static_cast<std::uint64_t>(
            static_cast<double>(entry->iterations) * std::min(scale, 100.0));
      }
    }
    if (!cached) {
      scope->note_miss();
    }
    if (ob.sink != nullptr) {
      ob.sink->instant("calibration", cached ? "cal_hit" : "cal_miss",
                       {{"key", cache_key}});
    }
  }

  if (!cached) {
    if (body.setup) {
      body.setup();
    }
    Calibration cal = calibrate(body.run, policy, clock, budget_start, ramp_start);
    iters = cal.iterations;
    if (cal.probe_elapsed >= policy.min_interval) {
      // The final ramp probe already spans a full interval; keep it as the
      // first repetition instead of throwing it away.
      sample.add(static_cast<double>(cal.probe_elapsed) / static_cast<double>(iters));
    }
    if (cache != nullptr) {
      cache->put(cache_key, CalEntry{iters, policy.min_interval});
    }
  }

  if (effective_nanoscale(policy)) {
    // The calibration/validation interval above is not back-to-back with the
    // batch, so the batch builds a fresh sample (and fresh counter totals).
    return measure_nanoscale(body, policy, clock, iters, cached, ob, measure_start,
                             budget_start);
  }

  bool converged = false;
  const int cap = std::max(policy.repetitions, 1);
  while (static_cast<int>(sample.count()) < cap) {
    if (sample_converged(sample, policy)) {
      converged = true;
      if (ob.sink != nullptr) {
        ob.sink->instant("timing", "early_stop",
                         {{"reps", std::to_string(sample.count())}});
      }
      break;
    }
    if (!sample.empty() && clock.now() - budget_start > policy.max_total) {
      if (ob.sink != nullptr) {
        ob.sink->instant("timing", "rep_budget_exhausted",
                         {{"reps", std::to_string(sample.count())}});
      }
      break;  // out of budget; keep what we have
    }
    if (body.setup) {
      body.setup();
    }
    Nanos rep_start = ob.sink != nullptr ? ob.sink->timestamp() : 0;
    Nanos elapsed = time_interval(body.run, iters, clock, &ob);
    double ns_per_op = static_cast<double>(elapsed) / static_cast<double>(iters);
    if (ob.sink != nullptr) {
      ob.sink->complete("timing", "rep", rep_start,
                        {{"rep", std::to_string(sample.count())},
                         {"iters", u64_str(iters)},
                         {"ns_per_op", std::to_string(ns_per_op)}});
    }
    sample.add(ns_per_op);
  }
  Measurement m = finish(iters, std::move(sample), clock, converged, cached, &ob);
  if (ob.sink != nullptr) {
    ob.sink->complete("timing", "measure", measure_start,
                      {{"ns_per_op", std::to_string(m.ns_per_op)},
                       {"iterations", u64_str(m.iterations)},
                       {"repetitions", std::to_string(m.repetitions)},
                       {"converged", m.converged ? "true" : "false"},
                       {"calibration_cached", m.calibration_cached ? "true" : "false"}});
  }
  return m;
}

Measurement measure_once_each(const std::function<void()>& fn, int n, const Clock& clock) {
  if (!fn) {
    throw std::invalid_argument("measure_once_each: empty function");
  }
  if (n < 1) {
    throw std::invalid_argument("measure_once_each: n must be >= 1");
  }
  Observer ob = Observer::resolve();
  Sample sample;
  for (int i = 0; i < n; ++i) {
    Nanos rep_start = ob.sink != nullptr ? ob.sink->timestamp() : 0;
    if (ob.counters != nullptr) {
      ob.counters->start();
    }
    Nanos start = clock.now();
    fn();
    Nanos raw = clock.now() - start;
    if (ob.counters != nullptr) {
      ob.totals.add(ob.counters->stop());
    }
    Nanos corrected = std::max<Nanos>(raw - clock.overhead_ns(), 0);
    if (ob.sink != nullptr) {
      ob.sink->complete("timing", "rep", rep_start,
                        {{"rep", std::to_string(i)},
                         {"iters", "1"},
                         {"ns_per_op", ns_str(corrected)}});
    }
    sample.add(static_cast<double>(corrected));
  }
  return finish(1, std::move(sample), clock, false, false, &ob);
}

AbComparison compare_interleaved(const std::vector<CompareVariant>& variants,
                                 const TimingPolicy& policy, int rounds, std::uint64_t seed,
                                 const Clock& clock) {
  if (variants.size() < 2) {
    throw std::invalid_argument("compare_interleaved: need at least two variants");
  }
  for (const CompareVariant& v : variants) {
    if (!v.run) {
      throw std::invalid_argument("compare_interleaved: empty body for variant '" + v.name +
                                  "'");
    }
  }
  obs::ObsScope* scope = obs::ObsScope::current();
  obs::TraceSink* sink = scope != nullptr ? scope->sink() : nullptr;
  Nanos ab_start = sink != nullptr ? sink->timestamp() : 0;

  const int n_variants = static_cast<int>(variants.size());
  const int n_rounds = rounds > 0 ? rounds : std::max(policy.repetitions, 2);
  Nanos budget_start = clock.now();

  // Warm every variant, then calibrate once on the baseline: all variants
  // run the same per-interval count, so per-round deltas compare equal work.
  for (const CompareVariant& v : variants) {
    for (int i = 0; i < std::max(policy.warmup_runs, 1); ++i) {
      v.run(1);
    }
  }
  Calibration cal = calibrate(variants[0].run, policy, clock, budget_start);

  AbComparison cmp;
  cmp.iterations = cal.iterations;
  cmp.clock_source = clock.name();
  cmp.variants.resize(variants.size());
  for (int v = 0; v < n_variants; ++v) {
    cmp.variants[static_cast<size_t>(v)].name = variants[static_cast<size_t>(v)].name;
  }

  std::mt19937_64 rng(seed);
  std::vector<int> round_order(static_cast<size_t>(n_variants));
  std::iota(round_order.begin(), round_order.end(), 0);

  for (int r = 0; r < n_rounds; ++r) {
    // Fresh shuffle per round: over many rounds every variant occupies every
    // slot, so slow drift within a round has no preferred victim.
    std::shuffle(round_order.begin(), round_order.end(), rng);
    std::ostringstream order_str;
    for (int k = 0; k < n_variants; ++k) {
      int idx = round_order[static_cast<size_t>(k)];
      Nanos elapsed = time_interval(variants[static_cast<size_t>(idx)].run, cal.iterations,
                                    clock);
      cmp.variants[static_cast<size_t>(idx)].sample.add(
          static_cast<double>(elapsed) / static_cast<double>(cal.iterations));
      cmp.order.push_back(idx);
      if (k > 0) {
        order_str << ',';
      }
      order_str << idx;
    }
    cmp.rounds = r + 1;
    if (sink != nullptr) {
      sink->instant("abtest", "round",
                    {{"round", std::to_string(r)}, {"order", order_str.str()}});
    }
    // Pairing needs at least two full rounds; past that the budget may cut
    // the comparison short (all variants still have equal round counts —
    // rounds are atomic).
    if (r + 1 >= 2 && clock.now() - budget_start > policy.max_total) {
      if (sink != nullptr) {
        sink->instant("abtest", "budget_exhausted", {{"rounds", std::to_string(r + 1)}});
      }
      break;
    }
  }

  for (VariantStats& vs : cmp.variants) {
    vs.ns_per_op = vs.sample.min();
  }
  const Sample& base = cmp.variants[0].sample;
  for (int v = 1; v < n_variants; ++v) {
    PairedDelta pd;
    pd.name = cmp.variants[static_cast<size_t>(v)].name;
    const Sample& other = cmp.variants[static_cast<size_t>(v)].sample;
    for (size_t r = 0; r < base.count(); ++r) {
      pd.deltas.add(other.values()[r] - base.values()[r]);
    }
    pd.mean_delta_ns = pd.deltas.mean();
    pd.ci_half_width_ns = pd.deltas.ci_half_width();
    pd.rel_delta = cmp.variants[0].ns_per_op > 0
                       ? pd.mean_delta_ns / cmp.variants[0].ns_per_op
                       : 0.0;
    pd.significant = std::abs(pd.mean_delta_ns) > pd.ci_half_width_ns &&
                     pd.ci_half_width_ns >= 0 && pd.deltas.count() >= 2;
    cmp.deltas.push_back(std::move(pd));
  }
  if (sink != nullptr) {
    sink->complete("abtest", "compare", ab_start,
                   {{"variants", std::to_string(n_variants)},
                    {"rounds", std::to_string(cmp.rounds)},
                    {"iterations", u64_str(cmp.iterations)},
                    {"clock_source", cmp.clock_source}});
  }
  return cmp;
}

double mb_per_sec(double bytes_per_op, double ns_per_op) {
  if (ns_per_op <= 0.0) {
    return 0.0;
  }
  double bytes_per_sec = bytes_per_op * (1e9 / ns_per_op);
  return bytes_per_sec / (1024.0 * 1024.0);
}

}  // namespace lmb
