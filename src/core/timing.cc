#include "src/core/timing.h"

#include <algorithm>
#include <stdexcept>

#include "src/core/cal_cache.h"

namespace lmb {

namespace {

// Times one interval of `iters` iterations, subtracting the clock's own
// read overhead (one now() call is inside the measured span).  Clamped at
// zero: a correction can never make an interval negative.
Nanos time_interval(const BenchFn& fn, std::uint64_t iters, const Clock& clock) {
  Nanos start = clock.now();
  fn(iters);
  Nanos raw = clock.now() - start;
  return std::max<Nanos>(raw - clock.overhead_ns(), 0);
}

Measurement finish(std::uint64_t iterations, Sample sample, const Clock& clock,
                   bool converged, bool cached) {
  Measurement m;
  m.iterations = iterations;
  m.repetitions = static_cast<int>(sample.count());
  m.ns_per_op = sample.min();
  m.mean_ns_per_op = sample.mean();
  m.median_ns_per_op = sample.median();
  m.max_ns_per_op = sample.max();
  m.clock_overhead_ns = clock.overhead_ns();
  m.converged = converged;
  m.calibration_cached = cached;
  m.sample = std::move(sample);
  return m;
}

// Early-stop test: enough intervals in, and the spread between the running
// median and minimum is within the policy's tolerance.  A zero minimum only
// converges on a zero median (degenerate scripted clocks).
bool sample_converged(const Sample& sample, const TimingPolicy& policy) {
  if (policy.convergence <= 0.0) {
    return false;
  }
  int floor = std::max(policy.min_repetitions, 1);
  if (static_cast<int>(sample.count()) < floor) {
    return false;
  }
  return sample.median() - sample.min() <= policy.convergence * sample.min();
}

}  // namespace

Calibration calibrate(const BenchFn& fn, const TimingPolicy& policy, const Clock& clock,
                      Nanos budget_start, std::uint64_t start_iters) {
  Calibration cal;
  std::uint64_t iters = std::clamp<std::uint64_t>(start_iters, 1, policy.max_iterations);
  while (true) {
    Nanos elapsed = time_interval(fn, iters, clock);
    cal.iterations = iters;
    cal.probe_elapsed = elapsed;
    if (elapsed >= policy.min_interval || iters >= policy.max_iterations) {
      return cal;
    }
    if (clock.now() - budget_start > policy.max_total) {
      // A slow body can eat the whole measurement budget inside the ramp;
      // bail to the best-known count so at least one repetition gets timed.
      cal.budget_exhausted = true;
      return cal;
    }
    std::uint64_t next;
    if (elapsed <= 0) {
      next = iters * 10;
    } else {
      // Overshoot by 20% so the next probe usually terminates calibration.
      double scale = 1.2 * static_cast<double>(policy.min_interval) /
                     static_cast<double>(elapsed);
      scale = std::clamp(scale, 2.0, 100.0);
      next = static_cast<std::uint64_t>(static_cast<double>(iters) * scale);
    }
    iters = std::min(std::max(next, iters + 1), policy.max_iterations);
  }
}

std::uint64_t calibrate_iterations(const BenchFn& fn, const TimingPolicy& policy,
                                   const Clock& clock) {
  return calibrate(fn, policy, clock, clock.now()).iterations;
}

Measurement measure(const BenchFn& fn, const TimingPolicy& policy, const Clock& clock) {
  return measure(BenchBody{fn, nullptr}, policy, clock);
}

Measurement measure(const BenchBody& body, const TimingPolicy& policy, const Clock& clock) {
  if (!body.run) {
    throw std::invalid_argument("measure: empty benchmark body");
  }
  Nanos budget_start = clock.now();

  for (int i = 0; i < policy.warmup_runs; ++i) {
    if (body.setup) {
      body.setup();
    }
    body.run(1);
  }

  CalibrationScope* scope = CalibrationScope::current();
  CalibrationCache* cache = scope != nullptr ? scope->cache() : nullptr;
  std::string cache_key;
  if (cache != nullptr) {
    cache_key = scope->next_key(policy.min_interval);
  }

  Sample sample;
  std::uint64_t iters = 0;
  bool cached = false;
  std::uint64_t ramp_start = 1;

  if (cache != nullptr) {
    std::optional<CalEntry> entry = cache->find(cache_key);
    if (entry.has_value() && entry->min_interval == policy.min_interval &&
        entry->iterations > 0 && entry->iterations <= policy.max_iterations) {
      // Validate the remembered count with a single probe; on success that
      // probe is the first repetition, so a warm hit wastes nothing.
      if (body.setup) {
        body.setup();
      }
      Nanos probe = time_interval(body.run, entry->iterations, clock);
      if (probe >= policy.min_interval) {
        iters = entry->iterations;
        sample.add(static_cast<double>(probe) / static_cast<double>(iters));
        cached = true;
        scope->note_hit();
      } else if (probe > 0) {
        // Drift: the probe fell short, but it still says roughly how fast
        // the body is now — resume the ramp near the right count instead of
        // re-climbing from one iteration.
        double scale = 1.2 * static_cast<double>(policy.min_interval) /
                       static_cast<double>(probe);
        ramp_start = static_cast<std::uint64_t>(
            static_cast<double>(entry->iterations) * std::min(scale, 100.0));
      }
    }
    if (!cached) {
      scope->note_miss();
    }
  }

  if (!cached) {
    if (body.setup) {
      body.setup();
    }
    Calibration cal = calibrate(body.run, policy, clock, budget_start, ramp_start);
    iters = cal.iterations;
    if (cal.probe_elapsed >= policy.min_interval) {
      // The final ramp probe already spans a full interval; keep it as the
      // first repetition instead of throwing it away.
      sample.add(static_cast<double>(cal.probe_elapsed) / static_cast<double>(iters));
    }
    if (cache != nullptr) {
      cache->put(cache_key, CalEntry{iters, policy.min_interval});
    }
  }

  bool converged = false;
  const int cap = std::max(policy.repetitions, 1);
  while (static_cast<int>(sample.count()) < cap) {
    if (sample_converged(sample, policy)) {
      converged = true;
      break;
    }
    if (!sample.empty() && clock.now() - budget_start > policy.max_total) {
      break;  // out of budget; keep what we have
    }
    if (body.setup) {
      body.setup();
    }
    Nanos elapsed = time_interval(body.run, iters, clock);
    sample.add(static_cast<double>(elapsed) / static_cast<double>(iters));
  }
  return finish(iters, std::move(sample), clock, converged, cached);
}

Measurement measure_once_each(const std::function<void()>& fn, int n, const Clock& clock) {
  if (!fn) {
    throw std::invalid_argument("measure_once_each: empty function");
  }
  if (n < 1) {
    throw std::invalid_argument("measure_once_each: n must be >= 1");
  }
  Sample sample;
  for (int i = 0; i < n; ++i) {
    Nanos start = clock.now();
    fn();
    Nanos raw = clock.now() - start;
    sample.add(static_cast<double>(std::max<Nanos>(raw - clock.overhead_ns(), 0)));
  }
  return finish(1, std::move(sample), clock, false, false);
}

double mb_per_sec(double bytes_per_op, double ns_per_op) {
  if (ns_per_op <= 0.0) {
    return 0.0;
  }
  double bytes_per_sec = bytes_per_op * (1e9 / ns_per_op);
  return bytes_per_sec / (1024.0 * 1024.0);
}

}  // namespace lmb
