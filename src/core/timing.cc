#include "src/core/timing.h"

#include <algorithm>
#include <stdexcept>

namespace lmb {

namespace {

// Times one interval of `iters` iterations.
Nanos time_interval(const BenchFn& fn, std::uint64_t iters, const Clock& clock) {
  Nanos start = clock.now();
  fn(iters);
  return clock.now() - start;
}

Measurement finish(std::uint64_t iterations, Sample sample) {
  Measurement m;
  m.iterations = iterations;
  m.repetitions = static_cast<int>(sample.count());
  m.ns_per_op = sample.min();
  m.mean_ns_per_op = sample.mean();
  m.median_ns_per_op = sample.median();
  m.max_ns_per_op = sample.max();
  m.sample = std::move(sample);
  return m;
}

}  // namespace

std::uint64_t calibrate_iterations(const BenchFn& fn, const TimingPolicy& policy,
                                   const Clock& clock) {
  std::uint64_t iters = 1;
  while (true) {
    Nanos elapsed = time_interval(fn, iters, clock);
    if (elapsed >= policy.min_interval || iters >= policy.max_iterations) {
      return iters;
    }
    std::uint64_t next;
    if (elapsed <= 0) {
      next = iters * 10;
    } else {
      // Overshoot by 20% so the next probe usually terminates calibration.
      double scale = 1.2 * static_cast<double>(policy.min_interval) /
                     static_cast<double>(elapsed);
      scale = std::clamp(scale, 2.0, 100.0);
      next = static_cast<std::uint64_t>(static_cast<double>(iters) * scale);
    }
    iters = std::min(std::max(next, iters + 1), policy.max_iterations);
  }
}

Measurement measure(const BenchFn& fn, const TimingPolicy& policy, const Clock& clock) {
  return measure(BenchBody{fn, nullptr}, policy, clock);
}

Measurement measure(const BenchBody& body, const TimingPolicy& policy, const Clock& clock) {
  if (!body.run) {
    throw std::invalid_argument("measure: empty benchmark body");
  }
  Nanos budget_start = clock.now();

  for (int i = 0; i < policy.warmup_runs; ++i) {
    if (body.setup) {
      body.setup();
    }
    body.run(1);
  }

  if (body.setup) {
    body.setup();
  }
  std::uint64_t iters = calibrate_iterations(body.run, policy, clock);

  Sample sample;
  for (int rep = 0; rep < policy.repetitions; ++rep) {
    if (rep > 0 && clock.now() - budget_start > policy.max_total) {
      break;  // out of budget; keep what we have
    }
    if (body.setup) {
      body.setup();
    }
    Nanos elapsed = time_interval(body.run, iters, clock);
    sample.add(static_cast<double>(elapsed) / static_cast<double>(iters));
  }
  return finish(iters, std::move(sample));
}

Measurement measure_once_each(const std::function<void()>& fn, int n, const Clock& clock) {
  if (!fn) {
    throw std::invalid_argument("measure_once_each: empty function");
  }
  if (n < 1) {
    throw std::invalid_argument("measure_once_each: n must be >= 1");
  }
  Sample sample;
  for (int i = 0; i < n; ++i) {
    Nanos start = clock.now();
    fn();
    sample.add(static_cast<double>(clock.now() - start));
  }
  return finish(1, std::move(sample));
}

double mb_per_sec(double bytes_per_op, double ns_per_op) {
  if (ns_per_op <= 0.0) {
    return 0.0;
  }
  double bytes_per_sec = bytes_per_op * (1e9 / ns_per_op);
  return bytes_per_sec / (1024.0 * 1024.0);
}

}  // namespace lmb
