// Optimizer barriers.
//
// The paper (§5.1) notes that read loops must *consume* their data ("add up
// the data and pass the result as an unused argument to the finish-timing
// function") or compilers delete the whole loop.  These helpers are the
// modern, zero-cost equivalent.
#ifndef LMBENCHPP_SRC_CORE_DO_NOT_OPTIMIZE_H_
#define LMBENCHPP_SRC_CORE_DO_NOT_OPTIMIZE_H_

namespace lmb {

// Forces the compiler to materialize `value` (the paper's "unused argument to
// the finish-timing function").
template <typename T>
inline void do_not_optimize(T const& value) {
  asm volatile("" : : "r,m"(value) : "memory");
}

// Mutable overload: also tells the compiler `value` may have been written,
// which can emit a write-back.  Never pass an lvalue living in read-only
// memory (e.g. a PROT_READ mapping) — copy to a local first.
template <typename T>
inline void do_not_optimize(T& value) {
  asm volatile("" : "+r,m"(value) : : "memory");
}

// Forces all pending memory writes to be considered visible.
inline void clobber_memory() { asm volatile("" : : : "memory"); }

}  // namespace lmb

#endif  // LMBENCHPP_SRC_CORE_DO_NOT_OPTIMIZE_H_
