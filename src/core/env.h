// Host system description, used to label result rows (paper Table 1).
#ifndef LMBENCHPP_SRC_CORE_ENV_H_
#define LMBENCHPP_SRC_CORE_ENV_H_

#include <cstdint>
#include <string>

namespace lmb {

struct SystemInfo {
  std::string hostname;
  std::string os_name;      // uname sysname
  std::string os_release;   // uname release
  std::string machine;      // uname machine (e.g. x86_64)
  std::string cpu_model;    // best-effort from /proc/cpuinfo
  int cpu_count = 0;        // online CPUs
  std::int64_t page_size = 0;
  std::int64_t phys_mem_bytes = 0;  // 0 if unknown

  // "Linux/x86_64 hostname" style label for tables.
  std::string label() const;
};

// Gathers host facts.  Never throws; unknown fields are left empty/zero.
SystemInfo query_system_info();

// A stable single-token fingerprint of this host for keying persisted
// calibration state: hostname, CPU model, core count, and kernel release.
// Any of those changing (new machine, kernel upgrade, CPU swap) must
// invalidate cached iteration counts.  Contains no whitespace or brackets
// so it can live inside the db text format's `[system]` headers.
std::string host_signature(const SystemInfo& info);
std::string host_signature();  // of this host

}  // namespace lmb

#endif  // LMBENCHPP_SRC_CORE_ENV_H_
