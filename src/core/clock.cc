#include "src/core/clock.h"

#include <time.h>

#include <algorithm>
#include <vector>

namespace lmb {

Nanos WallClock::now() const {
  struct timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<Nanos>(ts.tv_sec) * kSecond + ts.tv_nsec;
}

Nanos measure_clock_overhead(const Clock& clock, int samples) {
  Nanos best = kSecond;
  for (int i = 0; i < samples; ++i) {
    Nanos t0 = clock.now();
    Nanos t1 = clock.now();
    best = std::min(best, t1 - t0);
  }
  return std::max<Nanos>(best, 0);
}

Nanos WallClock::overhead_ns() const {
  // One probe per process; all WallClock instances are interchangeable.
  static const Nanos overhead = measure_clock_overhead(WallClock{});
  return overhead;
}

const WallClock& WallClock::instance() {
  static const WallClock clock;
  return clock;
}

ClockResolution probe_resolution(const Clock& clock, int samples) {
  ClockResolution res;
  res.tick = kSecond;  // pessimistic until observed

  std::vector<Nanos> deltas;
  deltas.reserve(static_cast<size_t>(samples));
  Nanos prev = clock.now();
  for (int i = 0; i < samples; ++i) {
    Nanos cur = clock.now();
    deltas.push_back(cur - prev);
    if (cur > prev) {
      res.tick = std::min(res.tick, cur - prev);
    }
    prev = cur;
  }
  if (res.tick == kSecond) {
    // The clock never advanced during the probe window; treat each full probe
    // as one tick so callers still get a usable (very coarse) bound.
    res.tick = kSecond;
  }

  // Median back-to-back read cost.  Zero deltas mean reads are cheaper than
  // the tick; report the tick-free median as overhead.
  std::sort(deltas.begin(), deltas.end());
  res.read_overhead = deltas[deltas.size() / 2];
  return res;
}

}  // namespace lmb
