#include "src/core/clock.h"

#include <time.h>

#include <algorithm>
#include <map>
#include <mutex>
#include <vector>

namespace lmb {

namespace {

// Seeds installed by seed_clock_overhead before the per-source memoization
// fires.  Guarded: bench_service seeds from the calibration cache on one
// thread while suite workers may race to the first overhead_ns() call.
std::mutex seed_mu;
std::map<std::string, Nanos>& seed_map() {
  static std::map<std::string, Nanos> seeds;
  return seeds;
}

}  // namespace

void seed_clock_overhead(const std::string& source, Nanos overhead) {
  if (overhead < 0) {
    return;
  }
  std::lock_guard<std::mutex> lock(seed_mu);
  seed_map()[source] = overhead;
}

std::optional<Nanos> seeded_clock_overhead(const std::string& source) {
  std::lock_guard<std::mutex> lock(seed_mu);
  auto it = seed_map().find(source);
  if (it == seed_map().end()) {
    return std::nullopt;
  }
  return it->second;
}

std::string clock_overhead_cache_key(const std::string& source) {
  // The '@1' suffix satisfies the cal_store key grammar (min_interval after
  // the final '@' must be positive for an entry to round-trip).
  return "__clock_overhead__#" + source + "@1";
}

Nanos WallClock::now() const {
  struct timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<Nanos>(ts.tv_sec) * kSecond + ts.tv_nsec;
}

Nanos measure_clock_overhead(const Clock& clock, int samples) {
  Nanos best = kSecond;
  for (int i = 0; i < samples; ++i) {
    Nanos t0 = clock.now();
    Nanos t1 = clock.now();
    best = std::min(best, t1 - t0);
  }
  return std::max<Nanos>(best, 0);
}

Nanos measure_clock_overhead_robust(const Clock& clock, int samples, int rounds) {
  rounds = std::max(rounds, 1);
  std::vector<Nanos> minima;
  minima.reserve(static_cast<size_t>(rounds));
  for (int r = 0; r < rounds; ++r) {
    minima.push_back(measure_clock_overhead(clock, samples));
  }
  std::sort(minima.begin(), minima.end());
  return minima[minima.size() / 2];
}

Nanos WallClock::overhead_ns() const {
  // One probe per process; all WallClock instances are interchangeable.  A
  // persisted seed (calibration cache) short-circuits the probe entirely.
  static const Nanos overhead = [] {
    if (std::optional<Nanos> seeded = seeded_clock_overhead("wall"); seeded.has_value()) {
      return *seeded;
    }
    return measure_clock_overhead_robust(WallClock{});
  }();
  return overhead;
}

const WallClock& WallClock::instance() {
  static const WallClock clock;
  return clock;
}

ClockResolution probe_resolution(const Clock& clock, int samples) {
  ClockResolution res;
  res.tick = kSecond;  // pessimistic until observed

  std::vector<Nanos> deltas;
  deltas.reserve(static_cast<size_t>(samples));
  Nanos prev = clock.now();
  for (int i = 0; i < samples; ++i) {
    Nanos cur = clock.now();
    deltas.push_back(cur - prev);
    if (cur > prev) {
      res.tick = std::min(res.tick, cur - prev);
    }
    prev = cur;
  }
  if (res.tick == kSecond) {
    // The clock never advanced during the probe window; treat each full probe
    // as one tick so callers still get a usable (very coarse) bound.
    res.tick = kSecond;
  }

  // Median back-to-back read cost.  Zero deltas mean reads are cheaper than
  // the tick; report the tick-free median as overhead.
  std::sort(deltas.begin(), deltas.end());
  res.read_overhead = deltas[deltas.size() / 2];
  return res;
}

}  // namespace lmb
