// Minimal command-line option parsing shared by all harness binaries.
//
// Grammar: `--key=value`, `--flag` (value "true"), and bare positionals.
// Unknown keys are retained; benchmarks query what they need.
#ifndef LMBENCHPP_SRC_CORE_OPTIONS_H_
#define LMBENCHPP_SRC_CORE_OPTIONS_H_

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace lmb {

class Options {
 public:
  Options() = default;

  // Parses argv[1..argc).  Throws std::invalid_argument on malformed input
  // (e.g. "--=x").
  static Options parse(int argc, const char* const* argv);

  // Builds directly from key/value pairs (tests, programmatic use).
  static Options from_pairs(std::initializer_list<std::pair<std::string, std::string>> kv);

  bool has(const std::string& key) const;

  // Typed getters; return `fallback` when missing.  Throw
  // std::invalid_argument when present but unparseable.
  std::string get_string(const std::string& key, const std::string& fallback = "") const;
  std::int64_t get_int(const std::string& key, std::int64_t fallback) const;
  double get_double(const std::string& key, double fallback) const;
  bool get_bool(const std::string& key, bool fallback = false) const;

  // Sizes accept suffixes k/K (1024), m/M (1024^2), g/G (1024^3), matching
  // lmdd's argument convention.
  std::int64_t get_size(const std::string& key, std::int64_t fallback) const;

  // Comma-separated list value ("a,b,c"); returns `fallback` when the key
  // is missing and an empty vector for an explicitly empty value ("--key=").
  // Empty elements ("a,,b", a trailing comma) throw std::invalid_argument —
  // the same strictness as the scalar getters.
  std::vector<std::string> get_list(const std::string& key,
                                    std::vector<std::string> fallback = {}) const;

  void set(const std::string& key, const std::string& value);

  // Every parsed key/value pair (flags appear with value "true").  Lets a
  // driver forward its whole option set verbatim — e.g. lmbench_client
  // shipping suite flags to the daemon.
  const std::map<std::string, std::string>& entries() const { return values_; }

  const std::vector<std::string>& positionals() const { return positionals_; }

  // Convenience: true when --quick was passed (CI-sized benchmark configs).
  bool quick() const { return get_bool("quick", false); }

  // Parses a standalone size string ("64k", "8m", "512").  Throws on garbage.
  static std::int64_t parse_size(const std::string& text);

  // Splits a standalone comma-list ("1,2,4").  "" yields an empty vector;
  // empty elements throw std::invalid_argument.  The shared implementation
  // behind get_list and every ad-hoc list flag (--only, --bw-threads, ...).
  static std::vector<std::string> split_list(const std::string& text);

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positionals_;
};

}  // namespace lmb

#endif  // LMBENCHPP_SRC_CORE_OPTIONS_H_
