#include "src/core/suite_runner.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <cstdio>
#include <future>
#include <limits>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <thread>
#include <utility>

#include "src/core/timing.h"

namespace lmb {

namespace {

using Clock = std::chrono::steady_clock;

double elapsed_ms(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start).count();
}

// Runs one benchmark inline, converting any escape (exception) into a
// kError result.  Always stamps identity and wall time.  With a calibration
// cache, the whole body runs inside a CalibrationScope (thread-local, so
// this composes with the timeout path's worker thread), hit/miss counts are
// recorded as metadata, and the benchmark's wall clock feeds the cache's
// scheduling history.
RunResult execute(const BenchmarkInfo& info, const SuiteConfig& config, int worker) {
  CalibrationCache* cal_cache = config.cal_cache;
  Clock::time_point start = Clock::now();
  RunResult result;
  {
    CalibrationScope scope(cal_cache, info.name);
    // Thread-local like CalibrationScope, so this composes with the timeout
    // path (the scope lives on whichever thread runs the body).
    obs::ObsScope obs_scope(config.trace, config.counters, info.name, worker);
    // Same thread-local pattern again: with a configured clock (and/or
    // nanoscale mode), every measure() call in the benchmark body that does
    // not pass an explicit clock picks these up.
    std::optional<MeasureScope> measure_scope;
    if (config.clock != nullptr || config.nanoscale) {
      measure_scope.emplace(config.clock != nullptr ? *config.clock : WallClock::instance(),
                            config.nanoscale);
    }
    try {
      result = info.run(config.options);
    } catch (const std::exception& e) {
      result = RunResult::failure(e.what());
    } catch (...) {
      result = RunResult::failure("non-standard exception");
    }
    if (cal_cache != nullptr) {
      result.metadata["cal_hits"] = std::to_string(scope.hits());
      result.metadata["cal_misses"] = std::to_string(scope.misses());
    }
  }
  if (result.name.empty()) {
    result.name = info.name;
  }
  if (result.category.empty()) {
    result.category = info.category;
  }
  // Surface the counter-derived ratios as metrics so they flow through the
  // table/CSV/JSON pipeline.  "count" and "%" units are direction-neutral,
  // so the compare gate never fails a run over an IPC shift.
  if (result.measurement.has_value() && result.measurement->counters.has_value()) {
    const obs::CounterTotals& totals = *result.measurement->counters;
    if (std::isfinite(totals.ipc())) {
      result.add("ipc", totals.ipc(), "count");
    }
    if (std::isfinite(totals.cache_miss_rate())) {
      result.add("cache_miss_pct", 100.0 * totals.cache_miss_rate(), "%");
    }
  }
  result.wall_ms = elapsed_ms(start);
  if (cal_cache != nullptr && result.ok()) {
    cal_cache->record_wall_ms(result.name, result.wall_ms);
  }
  return result;
}

// Runs one benchmark with a wall-clock budget.  The benchmark body runs on
// its own thread; on timeout the thread is detached (see header contract)
// and a kTimeout result is synthesized.
RunResult execute_with_timeout(const BenchmarkInfo& info, const SuiteConfig& config,
                               int worker) {
  const double timeout_sec = config.timeout_sec;
  // The config is copied into the task: on timeout the worker thread is
  // detached and may outlive the caller's SuiteConfig (the trace sink and
  // cal_cache pointers inside it carry their own documented lifetime rules).
  std::packaged_task<RunResult()> task(
      [&info, config, worker]() { return execute(info, config, worker); });
  std::future<RunResult> future = task.get_future();
  std::thread runner(std::move(task));
  if (future.wait_for(std::chrono::duration<double>(timeout_sec)) ==
      std::future_status::ready) {
    runner.join();
    return future.get();
  }
  runner.detach();
  RunResult result;
  result.name = info.name;
  result.category = info.category;
  result.status = RunStatus::kTimeout;
  char budget[32];
  std::snprintf(budget, sizeof(budget), "%.6g", timeout_sec);
  result.error = "exceeded " + std::string(budget) + "s wall-clock budget";
  result.wall_ms = timeout_sec * 1e3;
  return result;
}

// Mutable scheduling state shared by workers.
struct Scheduler {
  std::mutex mu;
  std::condition_variable cv;
  std::vector<bool> claimed;          // one flag per work item
  std::set<std::string> busy;         // exclusive categories currently running
  size_t remaining = 0;               // unclaimed items

  std::mutex event_mu;                // serializes progress callbacks
};

}  // namespace

SuiteRunner::SuiteRunner(const Registry& registry) : registry_(&registry) {}

void SuiteRunner::set_progress(std::function<void(const SuiteEvent&)> callback) {
  progress_ = std::move(callback);
}

std::vector<RunResult> SuiteRunner::run(const SuiteConfig& config) const {
  // Select the work list ONCE (the old driver enumerated the registry
  // twice and could disagree with itself).
  std::vector<const BenchmarkInfo*> work;
  if (!config.names.empty()) {
    for (const std::string& name : config.names) {
      const BenchmarkInfo* info = registry_->find(name);
      if (info == nullptr) {
        throw std::invalid_argument("unknown benchmark: " + name);
      }
      work.push_back(info);
    }
  } else {
    work = registry_->list(config.category);
  }

  const int total = static_cast<int>(work.size());
  std::vector<RunResult> results(work.size());
  if (work.empty()) {
    return results;
  }

  Scheduler sched;
  sched.claimed.assign(work.size(), false);
  sched.remaining = work.size();

  // Claim order over `work` (which stays name-sorted so the returned vector
  // is deterministic).  With parallel workers and wall-clock history in the
  // calibration cache, claim longest-expected-first: finishing the long
  // poles early minimizes the makespan (greedy LPT).  Benchmarks with no
  // history sort first — they might be long, and running them early both
  // hedges the schedule and records their duration for next time.
  std::vector<size_t> order(work.size());
  for (size_t i = 0; i < order.size(); ++i) {
    order[i] = i;
  }
  if (config.jobs > 1 && config.cal_cache != nullptr) {
    std::vector<double> expected(work.size());
    for (size_t i = 0; i < work.size(); ++i) {
      expected[i] = config.cal_cache->expected_wall_ms(work[i]->name)
                        .value_or(std::numeric_limits<double>::infinity());
    }
    std::stable_sort(order.begin(), order.end(),
                     [&](size_t a, size_t b) { return expected[a] > expected[b]; });
  }

  auto emit = [&](SuiteEvent event) {
    if (!progress_) {
      return;
    }
    std::lock_guard<std::mutex> lock(sched.event_mu);
    progress_(event);
  };

  auto is_exclusive = [&](const std::string& category) {
    return config.exclusive_categories.count(category) > 0;
  };

  // Worker loop: claim the first runnable item (skipping items whose
  // exclusive category is busy), run it, record, repeat.
  auto worker_loop = [&](int worker) {
    for (;;) {
      size_t picked = work.size();
      {
        std::unique_lock<std::mutex> lock(sched.mu);
        for (;;) {
          if (sched.remaining == 0) {
            return;
          }
          for (size_t slot : order) {
            if (sched.claimed[slot]) {
              continue;
            }
            if (is_exclusive(work[slot]->category) &&
                sched.busy.count(work[slot]->category) > 0) {
              continue;  // another member of this category is running
            }
            picked = slot;
            break;
          }
          if (picked != work.size()) {
            break;
          }
          // Unclaimed items exist but are all blocked on a busy category.
          sched.cv.wait(lock);
        }
        sched.claimed[picked] = true;
        --sched.remaining;
        if (is_exclusive(work[picked]->category)) {
          sched.busy.insert(work[picked]->category);
        }
      }

      const BenchmarkInfo& info = *work[picked];
      if (config.trace != nullptr) {
        config.trace->instant("scheduler", "claim",
                              {{"bench", info.name},
                               {"category", info.category},
                               {"worker", std::to_string(worker)},
                               {"slot", std::to_string(picked)}});
      }
      Nanos bench_start = config.trace != nullptr ? config.trace->timestamp() : 0;
      emit(SuiteEvent{SuiteEvent::Kind::kStart, static_cast<int>(picked), total, info.name,
                      info.description, nullptr});
      RunResult result = config.timeout_sec > 0
                             ? execute_with_timeout(info, config, worker)
                             : execute(info, config, worker);
      if (config.trace != nullptr) {
        config.trace->complete("suite", info.name, bench_start,
                               {{"status", run_status_name(result.status)},
                                {"worker", std::to_string(worker)}});
      }
      {
        std::lock_guard<std::mutex> lock(sched.mu);
        results[picked] = std::move(result);
        if (is_exclusive(info.category)) {
          sched.busy.erase(info.category);
        }
      }
      sched.cv.notify_all();
      emit(SuiteEvent{SuiteEvent::Kind::kFinish, static_cast<int>(picked), total, info.name,
                      info.description, &results[picked]});
    }
  };

  const int jobs = std::clamp(config.jobs, 1, total);
  Nanos suite_start = config.trace != nullptr ? config.trace->timestamp() : 0;
  if (jobs == 1) {
    worker_loop(0);  // serial: run on the calling thread
  } else {
    std::vector<std::thread> pool;
    pool.reserve(static_cast<size_t>(jobs));
    for (int i = 0; i < jobs; ++i) {
      pool.emplace_back(worker_loop, i);
    }
    for (std::thread& t : pool) {
      t.join();
    }
  }
  if (config.trace != nullptr) {
    config.trace->complete("suite", "run", suite_start,
                           {{"benchmarks", std::to_string(total)},
                            {"jobs", std::to_string(jobs)}});
  }
  return results;
}

}  // namespace lmb
