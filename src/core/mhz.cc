#include "src/core/mhz.h"

#include "src/core/do_not_optimize.h"

namespace lmb {

namespace {

// Eight dependent adds; the compiler cannot reassociate because each result
// feeds the next.  Constants are odd so the value never collapses to zero.
#define LMB_ADD8(a) \
  (a) += 1;         \
  (a) += (a) >> 3;  \
  (a) += 3;         \
  (a) += (a) >> 5;  \
  (a) += 5;         \
  (a) += (a) >> 7;  \
  (a) += 7;         \
  (a) += (a) >> 9;

#define LMB_ADD64(a) \
  LMB_ADD8(a) LMB_ADD8(a) LMB_ADD8(a) LMB_ADD8(a) LMB_ADD8(a) LMB_ADD8(a) LMB_ADD8(a) LMB_ADD8(a)

}  // namespace

unsigned long run_dependent_adds(std::uint64_t iters) {
  unsigned long a = 1;
  for (std::uint64_t i = 0; i < iters; ++i) {
    LMB_ADD64(a)
    LMB_ADD64(a)
  }
  do_not_optimize(a);
  return a;
}

CpuClock estimate_cpu_clock(const TimingPolicy& policy) {
  Measurement m = measure([](std::uint64_t iters) { run_dependent_adds(iters); }, policy);
  CpuClock clock;
  clock.period_ns = m.ns_per_op / static_cast<double>(kAddsPerBlock);
  if (clock.period_ns > 0) {
    clock.mhz = 1000.0 / clock.period_ns;
  }
  return clock;
}

}  // namespace lmb
