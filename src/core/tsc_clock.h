// Userspace TSC time source and clock-source selection.
//
// Every timed interval in the suite pays the cost of its clock reads;
// clock_gettime(CLOCK_MONOTONIC) goes through the vDSO but still costs tens
// of nanoseconds — comparable to the operations the sub-100ns benchmarks
// (lat_ops dependent chains, L1 hits) are trying to resolve.  nanoBench
// (Abel & Reineke, PAPERS.md) reads the time-stamp counter directly from
// userspace: a serialized RDTSCP is a handful of nanoseconds, driving
// per-interval overhead toward zero.
//
// TscClock is that read wrapped in the suite's Clock interface:
//  * RDTSCP followed by LFENCE, so the read can neither drift ahead of the
//    measured code nor let later instructions start before it completes
//    (Intel SDM's recommended end-of-region fencing).
//  * Gated on CPUID invariant-TSC (leaf 0x80000007, EDX bit 8): only an
//    invariant TSC ticks at a constant rate across P-/C-state transitions,
//    which is what makes tick->ns conversion meaningful.
//  * Calibrated against CLOCK_MONOTONIC at first use (median of several
//    short windows), so ticks convert to wall nanoseconds without trusting
//    any nominal frequency.  The TSC frequency is NOT the core frequency on
//    modern x86 — cross_check_cpu_mhz() compares against src/core/mhz's
//    dependent-add estimate for diagnostics.
//
// Hosts without the prerequisites (non-x86, no invariant TSC, or the
// LMBPP_NO_TSC escape hatch) report supported() == false and clock-source
// selection falls back to WallClock with an explicit marker — never
// silently.
#ifndef LMBENCHPP_SRC_CORE_TSC_CLOCK_H_
#define LMBENCHPP_SRC_CORE_TSC_CLOCK_H_

#include <string>

#include "src/core/clock.h"

namespace lmb {

// Outcome of the tick->ns calibration, exposed for traces and tests.
struct TscCalibration {
  double ticks_per_ns = 0.0;  // TSC frequency in GHz
  double tsc_mhz = 0.0;       // the same, in MHz (trace/report friendly)
  Nanos window_ns = 0;        // length of one calibration window
  int windows = 0;            // windows sampled (median taken)
};

// Serialized time-stamp-counter clock.  Construct only when supported()
// (select_clock enforces this); constructing on an unsupported host throws
// std::runtime_error.
class TscClock final : public Clock {
 public:
  // Nanoseconds since an arbitrary epoch (the first calibration), from a
  // serialized RDTSCP read.
  Nanos now() const override;

  // Measured robust min-of-N read cost, memoized per process; seeded from
  // the calibration cache via seed_clock_overhead("tsc", ...) when present.
  Nanos overhead_ns() const override;

  std::string name() const override { return "tsc"; }

  // True when this host can use the TSC as a time source: x86-64, CPUID
  // reports an invariant TSC, RDTSCP is available, and the LMBPP_NO_TSC
  // environment variable is not set.  Memoized.
  static bool supported();

  // The process-wide instance (calibrated once).  Throws std::runtime_error
  // when !supported().
  static const TscClock& instance();

  // Calibration facts for the process-wide instance (valid iff supported()).
  static const TscCalibration& calibration();

  // Ratio of the calibrated TSC frequency to `cpu_mhz` (the dependent-add
  // core-clock estimate from src/core/mhz).  ~1.0 on machines whose TSC
  // ticks at the base core clock; below 1.0 under turbo (core runs faster
  // than the invariant TSC).  Diagnostic only — returns 0 when either side
  // is unusable.
  static double cross_check_cpu_mhz(double cpu_mhz);
};

// --clock= grammar: which time source the harness should use.
enum class ClockSource {
  kAuto,  // TSC when supported, wall otherwise
  kTsc,   // require the TSC path (falls back to wall with a marker)
  kWall,  // always CLOCK_MONOTONIC
};

// Stable lowercase name ("auto", "tsc", "wall").
const char* clock_source_name(ClockSource source);

// Inverse of clock_source_name.  Throws std::invalid_argument on unknown
// text (the --clock= grammar).
ClockSource parse_clock_source(const std::string& text);

// Outcome of resolving a requested clock source on this host.
struct SelectedClock {
  const Clock* clock = nullptr;  // never null; points at a process-wide instance
  std::string source;            // actual source: "tsc" or "wall"
  bool fell_back = false;        // an explicit --clock=tsc request was not honorable
  std::string fallback_reason;   // human-readable, non-empty iff fell_back
};

// Resolves `requested` against this host's capabilities.  kAuto prefers the
// TSC; an explicit kTsc on an unsupported host falls back to WallClock with
// fell_back set (callers surface it as a warning and the per-measurement
// clock_source records what actually ran — fallback is explicit, never
// silent).
SelectedClock select_clock(ClockSource requested);

}  // namespace lmb

#endif  // LMBENCHPP_SRC_CORE_TSC_CLOCK_H_
