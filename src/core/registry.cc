#include "src/core/registry.h"

#include <stdexcept>

namespace lmb {

Registry& Registry::global() {
  static Registry* registry = new Registry;  // intentionally leaked
  return *registry;
}

void Registry::add(BenchmarkInfo info) {
  if (info.name.empty()) {
    throw std::invalid_argument("benchmark name must be non-empty");
  }
  if (!info.run) {
    throw std::invalid_argument("benchmark '" + info.name + "' has no run function");
  }
  // Stamp the entry's identity onto whatever the run function returns, so
  // registration sites only fill in metrics and metadata.
  auto fn = std::move(info.run);
  info.run = [fn, name = info.name, category = info.category](const Options& opts) {
    RunResult result = fn(opts);
    if (result.name.empty()) {
      result.name = name;
    }
    if (result.category.empty()) {
      result.category = category;
    }
    return result;
  };
  auto [it, inserted] = entries_.emplace(info.name, std::move(info));
  if (!inserted) {
    throw std::invalid_argument("duplicate benchmark name: " + it->first);
  }
}

const BenchmarkInfo* Registry::find(const std::string& name) const {
  auto it = entries_.find(name);
  return it == entries_.end() ? nullptr : &it->second;
}

std::vector<const BenchmarkInfo*> Registry::list(const std::string& category) const {
  std::vector<const BenchmarkInfo*> out;
  for (const auto& [name, info] : entries_) {
    if (category.empty() || info.category == category) {
      out.push_back(&info);
    }
  }
  return out;
}

BenchmarkRegistrar::BenchmarkRegistrar(BenchmarkInfo info) {
  Registry::global().add(std::move(info));
}

}  // namespace lmb
