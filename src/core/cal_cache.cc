#include "src/core/cal_cache.h"

#include <utility>

namespace lmb {

namespace {
thread_local CalibrationScope* g_current_scope = nullptr;
}  // namespace

std::optional<CalEntry> CalibrationCache::find(const std::string& key) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    return std::nullopt;
  }
  return it->second;
}

void CalibrationCache::put(const std::string& key, CalEntry entry) {
  std::lock_guard<std::mutex> lock(mu_);
  entries_[key] = entry;
}

std::optional<double> CalibrationCache::expected_wall_ms(const std::string& bench) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = wall_ms_.find(bench);
  if (it == wall_ms_.end()) {
    return std::nullopt;
  }
  return it->second;
}

void CalibrationCache::record_wall_ms(const std::string& bench, double ms) {
  std::lock_guard<std::mutex> lock(mu_);
  wall_ms_[bench] = ms;
}

std::map<std::string, CalEntry> CalibrationCache::entries() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_;
}

std::map<std::string, double> CalibrationCache::wall_ms() const {
  std::lock_guard<std::mutex> lock(mu_);
  return wall_ms_;
}

size_t CalibrationCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

CalibrationScope::CalibrationScope(CalibrationCache* cache, std::string bench_name)
    : cache_(cache), bench_(std::move(bench_name)), prev_(g_current_scope) {
  g_current_scope = this;
}

CalibrationScope::~CalibrationScope() { g_current_scope = prev_; }

CalibrationScope* CalibrationScope::current() { return g_current_scope; }

std::string CalibrationScope::next_key(Nanos min_interval) {
  return bench_ + "#" + std::to_string(seq_++) + "@" + std::to_string(min_interval);
}

void CalibrationScope::note_hit() {
  ++hits_;
  if (cache_ != nullptr) {
    cache_->count_hit();
  }
}

void CalibrationScope::note_miss() {
  ++misses_;
  if (cache_ != nullptr) {
    cache_->count_miss();
  }
}

}  // namespace lmb
