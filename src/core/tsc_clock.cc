#include "src/core/tsc_clock.h"

#include <algorithm>
#include <cstdlib>
#include <stdexcept>
#include <vector>

#if defined(__x86_64__) || defined(_M_X64)
#define LMBPP_HAVE_TSC 1
#include <cpuid.h>
#include <x86intrin.h>
#endif

namespace lmb {

namespace {

bool tsc_env_disabled() {
  const char* env = std::getenv("LMBPP_NO_TSC");
  return env != nullptr && env[0] != '\0' && env[0] != '0';
}

#if defined(LMBPP_HAVE_TSC)

// CPUID probes: invariant TSC is advertised in extended leaf 0x80000007
// (EDX bit 8, "TscInvariant"); RDTSCP in leaf 0x80000001 (EDX bit 27).
bool cpu_has_invariant_tsc() {
  unsigned eax = 0, ebx = 0, ecx = 0, edx = 0;
  if (__get_cpuid(0x80000000u, &eax, &ebx, &ecx, &edx) == 0 || eax < 0x80000007u) {
    return false;
  }
  if (__get_cpuid(0x80000007u, &eax, &ebx, &ecx, &edx) == 0) {
    return false;
  }
  return (edx & (1u << 8)) != 0;
}

bool cpu_has_rdtscp() {
  unsigned eax = 0, ebx = 0, ecx = 0, edx = 0;
  if (__get_cpuid(0x80000001u, &eax, &ebx, &ecx, &edx) == 0) {
    return false;
  }
  return (edx & (1u << 27)) != 0;
}

// Serialized TSC read: RDTSCP waits for all prior loads to retire, and the
// trailing LFENCE keeps subsequent instructions from starting before the
// read completes — so a (read, work, read) frame brackets exactly `work`.
inline std::uint64_t read_tsc_serialized() {
  unsigned aux = 0;
  std::uint64_t ticks = __rdtscp(&aux);
  _mm_lfence();
  return ticks;
}

// One calibration window: simultaneous-ish TSC and CLOCK_MONOTONIC reads at
// both ends of a busy-wait of `window_ns` wall nanoseconds.
double calibrate_window(Nanos window_ns) {
  const WallClock& wall = WallClock::instance();
  Nanos wall_start = wall.now();
  std::uint64_t tsc_start = read_tsc_serialized();
  Nanos wall_end = wall_start;
  while (wall_end - wall_start < window_ns) {
    wall_end = wall.now();
  }
  std::uint64_t tsc_end = read_tsc_serialized();
  Nanos elapsed = wall_end - wall_start;
  if (elapsed <= 0 || tsc_end <= tsc_start) {
    return 0.0;
  }
  return static_cast<double>(tsc_end - tsc_start) / static_cast<double>(elapsed);
}

struct TscState {
  TscCalibration cal;
  std::uint64_t epoch_ticks = 0;
};

// Calibrates once per process: median ticks-per-ns over several short
// windows.  Median, not mean — one window perturbed by preemption or a
// frequency ramp of the *reference* clock must not skew the rate.
const TscState& tsc_state() {
  static const TscState state = [] {
    TscState s;
    constexpr Nanos kWindow = 5 * kMillisecond;
    constexpr int kWindows = 5;
    std::vector<double> rates;
    rates.reserve(kWindows);
    for (int i = 0; i < kWindows; ++i) {
      double rate = calibrate_window(kWindow);
      if (rate > 0) {
        rates.push_back(rate);
      }
    }
    if (!rates.empty()) {
      std::sort(rates.begin(), rates.end());
      s.cal.ticks_per_ns = rates[rates.size() / 2];
      s.cal.tsc_mhz = s.cal.ticks_per_ns * 1e3;
      s.cal.window_ns = kWindow;
      s.cal.windows = static_cast<int>(rates.size());
    }
    s.epoch_ticks = read_tsc_serialized();
    return s;
  }();
  return state;
}

#endif  // LMBPP_HAVE_TSC

}  // namespace

#if defined(LMBPP_HAVE_TSC)

bool TscClock::supported() {
  static const bool probed = [] {
    if (!cpu_has_invariant_tsc() || !cpu_has_rdtscp()) {
      return false;
    }
    return tsc_state().cal.ticks_per_ns > 0;
  }();
  // The env gate is re-read so a test can flip LMBPP_NO_TSC after the probe.
  return probed && !tsc_env_disabled();
}

Nanos TscClock::now() const {
  const TscState& s = tsc_state();
  std::uint64_t ticks = read_tsc_serialized() - s.epoch_ticks;
  return static_cast<Nanos>(static_cast<double>(ticks) / s.cal.ticks_per_ns);
}

#else  // !LMBPP_HAVE_TSC

bool TscClock::supported() { return false; }

Nanos TscClock::now() const { return WallClock::instance().now(); }

#endif  // LMBPP_HAVE_TSC

Nanos TscClock::overhead_ns() const {
  static const Nanos overhead = [] {
    if (std::optional<Nanos> seeded = seeded_clock_overhead("tsc"); seeded.has_value()) {
      return *seeded;
    }
    return measure_clock_overhead_robust(TscClock::instance());
  }();
  return overhead;
}

const TscClock& TscClock::instance() {
  if (!supported()) {
    throw std::runtime_error("TscClock: no invariant TSC on this host (or LMBPP_NO_TSC set)");
  }
  static const TscClock clock;
  return clock;
}

const TscCalibration& TscClock::calibration() {
#if defined(LMBPP_HAVE_TSC)
  return tsc_state().cal;
#else
  static const TscCalibration empty;
  return empty;
#endif
}

double TscClock::cross_check_cpu_mhz(double cpu_mhz) {
  if (!supported() || cpu_mhz <= 0) {
    return 0.0;
  }
  return calibration().tsc_mhz / cpu_mhz;
}

const char* clock_source_name(ClockSource source) {
  switch (source) {
    case ClockSource::kAuto:
      return "auto";
    case ClockSource::kTsc:
      return "tsc";
    case ClockSource::kWall:
      return "wall";
  }
  return "?";
}

ClockSource parse_clock_source(const std::string& text) {
  if (text == "auto") return ClockSource::kAuto;
  if (text == "tsc") return ClockSource::kTsc;
  if (text == "wall") return ClockSource::kWall;
  throw std::invalid_argument("unknown clock source '" + text + "' (expected auto|tsc|wall)");
}

SelectedClock select_clock(ClockSource requested) {
  SelectedClock selected;
  if (requested != ClockSource::kWall && TscClock::supported()) {
    selected.clock = &TscClock::instance();
    selected.source = "tsc";
    return selected;
  }
  selected.clock = &WallClock::instance();
  selected.source = "wall";
  if (requested == ClockSource::kTsc) {
    selected.fell_back = true;
    selected.fallback_reason =
        tsc_env_disabled() ? "LMBPP_NO_TSC is set"
                           : "no invariant TSC on this host (CPUID 0x80000007 EDX.8)";
  }
  return selected;
}

}  // namespace lmb
