// CPU topology discovery, thread affinity, and a pinned-thread pool.
//
// The parallel bandwidth harness (src/bw/parallel.h) needs to know how many
// logical CPUs / physical cores / sockets the host has and to pin each
// worker to its own CPU — nanoBench-style explicit placement, because an
// unpinned bandwidth worker that migrates mid-interval measures the
// scheduler, not the memory system.  On Linux the topology comes from
// /sys/devices/system/cpu; elsewhere we fall back to
// std::thread::hardware_concurrency() and pinning degrades to a no-op.
#ifndef LMBENCHPP_SRC_CORE_TOPOLOGY_H_
#define LMBENCHPP_SRC_CORE_TOPOLOGY_H_

#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

namespace lmb {

// One online logical CPU.  core_id/package_id are -1 when sysfs did not
// provide them (non-Linux, or a restricted /sys): such CPUs are treated as
// distinct physical cores on one package.
struct LogicalCpu {
  int cpu = 0;         // kernel CPU number, usable with pin_current_thread
  int core_id = -1;    // physical core within the package
  int package_id = -1; // socket
};

struct CpuTopology {
  std::vector<LogicalCpu> cpus;  // online logical CPUs, sorted by cpu number

  int logical_cpus() const { return static_cast<int>(cpus.size()); }
  // Distinct (package, core) pairs; equals logical_cpus() without SMT or
  // when sysfs detail is unavailable.
  int physical_cores() const;
  int packages() const;

  // CPU numbers in pinning order: one logical CPU per physical core first
  // (round-robin across packages so two workers land on two sockets'
  // memory controllers before sharing one), then the SMT siblings.  Worker
  // w of N pins to pin_order()[w % size].
  std::vector<int> pin_order() const;

  // "8 cpus / 4 cores / 1 socket" style one-liner for reports.
  std::string summary() const;
};

// Reads the host topology.  Never throws; always returns at least one CPU.
CpuTopology query_topology();

// True when this build/OS can set per-thread CPU affinity at all.
bool affinity_supported();

// Pins the calling thread to one CPU.  Returns false (leaving affinity
// unchanged) when unsupported or when the kernel rejects the mask — callers
// treat pinning as best-effort.
bool pin_current_thread(int cpu);

// Restores the calling thread's affinity to all CPUs in `topology` (undo
// for pin_current_thread).  Best-effort, same contract.
bool unpin_current_thread(const CpuTopology& topology);

// CPU the calling thread is executing on, or -1 when unknowable.
int current_cpu();

// A fixed pool of workers, each optionally pinned to its own CPU (assigned
// from CpuTopology::pin_order) for its whole lifetime.  run_all() is the
// only dispatch primitive the bandwidth harness needs: execute one function
// on every worker and wait.  Not a general task queue by design.
class PinnedThreadPool {
 public:
  // Spawns `threads` workers (minimum 1).  When `pin` is true each worker
  // pins itself before signalling readiness; failures downgrade that worker
  // to unpinned (-1 in assigned_cpus()).  The constructor returns only
  // after every worker is running.
  explicit PinnedThreadPool(int threads, bool pin = true);
  PinnedThreadPool(int threads, bool pin, const CpuTopology& topology);

  PinnedThreadPool(const PinnedThreadPool&) = delete;
  PinnedThreadPool& operator=(const PinnedThreadPool&) = delete;
  ~PinnedThreadPool();

  int size() const { return static_cast<int>(threads_.size()); }

  // CPU worker w was pinned to, or -1 when unpinned.
  const std::vector<int>& assigned_cpus() const { return assigned_cpus_; }

  // Runs fn(worker_index) on every worker concurrently and waits for all of
  // them to return.  An exception thrown by any worker is rethrown here
  // (first one wins).  Not reentrant.
  void run_all(const std::function<void(int)>& fn);

 private:
  struct State;
  std::vector<int> assigned_cpus_;
  std::unique_ptr<State> state_;
  std::vector<std::thread> threads_;
};

}  // namespace lmb

#endif  // LMBENCHPP_SRC_CORE_TOPOLOGY_H_
