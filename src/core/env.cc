#include "src/core/env.h"

#include <sys/utsname.h>
#include <unistd.h>

#include <fstream>

namespace lmb {

std::string SystemInfo::label() const {
  std::string out = os_name.empty() ? "unknown" : os_name;
  if (!machine.empty()) {
    out += "/" + machine;
  }
  return out;
}

SystemInfo query_system_info() {
  SystemInfo info;

  struct utsname un;
  if (uname(&un) == 0) {
    info.os_name = un.sysname;
    info.os_release = un.release;
    info.machine = un.machine;
    info.hostname = un.nodename;
  }

  long cpus = sysconf(_SC_NPROCESSORS_ONLN);
  info.cpu_count = cpus > 0 ? static_cast<int>(cpus) : 0;

  long page = sysconf(_SC_PAGESIZE);
  info.page_size = page > 0 ? page : 0;

  long pages = sysconf(_SC_PHYS_PAGES);
  if (pages > 0 && page > 0) {
    info.phys_mem_bytes = static_cast<std::int64_t>(pages) * page;
  }

  std::ifstream cpuinfo("/proc/cpuinfo");
  std::string line;
  while (std::getline(cpuinfo, line)) {
    if (line.rfind("model name", 0) == 0) {
      auto colon = line.find(':');
      if (colon != std::string::npos) {
        size_t start = line.find_first_not_of(" \t", colon + 1);
        if (start != std::string::npos) {
          info.cpu_model = line.substr(start);
        }
      }
      break;
    }
  }
  return info;
}

namespace {

// Collapses whitespace/brackets to '-' so the signature is one safe token.
std::string sanitize(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    bool unsafe = c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '[' || c == ']';
    out += unsafe ? '-' : c;
  }
  return out;
}

}  // namespace

std::string host_signature(const SystemInfo& info) {
  std::string sig = sanitize(info.hostname.empty() ? "unknown" : info.hostname);
  sig += "|" + sanitize(info.cpu_model.empty() ? "unknown-cpu" : info.cpu_model);
  sig += "|" + std::to_string(info.cpu_count) + "cpu";
  sig += "|" + sanitize(info.os_release.empty() ? "unknown-os" : info.os_release);
  return sig;
}

std::string host_signature() { return host_signature(query_system_info()); }

}  // namespace lmb
