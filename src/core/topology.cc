#include "src/core/topology.h"

#include <algorithm>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <fstream>
#include <map>
#include <mutex>
#include <set>
#include <sstream>
#include <utility>

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

namespace lmb {

namespace {

#if defined(__linux__)

// Reads a small integer file like /sys/devices/system/cpu/cpu0/topology/
// core_id.  Returns fallback on any error — sysfs may be absent or
// restricted (containers), and topology must degrade, not throw.
int read_sysfs_int(const std::string& path, int fallback) {
  std::ifstream in(path);
  int value = 0;
  if (in >> value) {
    return value;
  }
  return fallback;
}

// Parses a cpulist string ("0-3,8,10-11") into CPU numbers.
std::vector<int> parse_cpu_list(const std::string& text) {
  std::vector<int> cpus;
  std::stringstream ss(text);
  std::string range;
  while (std::getline(ss, range, ',')) {
    if (range.empty()) {
      continue;
    }
    size_t dash = range.find('-');
    try {
      if (dash == std::string::npos) {
        cpus.push_back(std::stoi(range));
      } else {
        int lo = std::stoi(range.substr(0, dash));
        int hi = std::stoi(range.substr(dash + 1));
        for (int c = lo; c <= hi; ++c) {
          cpus.push_back(c);
        }
      }
    } catch (const std::exception&) {
      // Malformed segment: skip it rather than fail discovery.
    }
  }
  return cpus;
}

std::vector<int> online_cpus_sysfs() {
  std::ifstream in("/sys/devices/system/cpu/online");
  std::string text;
  if (std::getline(in, text)) {
    return parse_cpu_list(text);
  }
  return {};
}

#endif  // __linux__

std::vector<LogicalCpu> fallback_cpus() {
  unsigned n = std::thread::hardware_concurrency();
  if (n == 0) {
    n = 1;
  }
  std::vector<LogicalCpu> cpus(n);
  for (unsigned i = 0; i < n; ++i) {
    cpus[i].cpu = static_cast<int>(i);
  }
  return cpus;
}

}  // namespace

int CpuTopology::physical_cores() const {
  std::set<std::pair<int, int>> cores;
  int unknown = 0;
  for (const LogicalCpu& c : cpus) {
    if (c.core_id < 0) {
      ++unknown;  // no sysfs detail: count each such CPU as its own core
    } else {
      cores.insert({c.package_id, c.core_id});
    }
  }
  return static_cast<int>(cores.size()) + unknown;
}

int CpuTopology::packages() const {
  std::set<int> pkgs;
  bool any_unknown = false;
  for (const LogicalCpu& c : cpus) {
    if (c.package_id < 0) {
      any_unknown = true;
    } else {
      pkgs.insert(c.package_id);
    }
  }
  if (pkgs.empty()) {
    return cpus.empty() ? 0 : 1;
  }
  return static_cast<int>(pkgs.size()) + (any_unknown ? 1 : 0);
}

std::vector<int> CpuTopology::pin_order() const {
  // Group logical CPUs by physical core, keep each group in cpu-number
  // order (first member = the "primary" SMT thread), then emit one CPU per
  // core round-robin across packages, then second SMT threads, and so on.
  std::map<std::pair<int, int>, std::vector<int>> by_core;
  int synthetic = 0;
  for (const LogicalCpu& c : cpus) {
    if (c.core_id < 0) {
      // Unknown topology: give each CPU a synthetic core so the order
      // degenerates to plain cpu-number order.
      by_core[{0, 1'000'000 + synthetic++}].push_back(c.cpu);
    } else {
      by_core[{c.package_id, c.core_id}].push_back(c.cpu);
    }
  }
  // Interleave packages: sort core keys by (core index within package,
  // package) so consecutive picks alternate sockets.
  std::vector<std::pair<std::pair<int, int>, std::vector<int>>> cores(by_core.begin(),
                                                                      by_core.end());
  std::map<int, int> per_pkg_index;
  std::vector<std::pair<std::pair<int, int>, const std::vector<int>*>> ordered;
  ordered.reserve(cores.size());
  for (const auto& [key, members] : cores) {
    ordered.push_back({{per_pkg_index[key.first]++, key.first}, &members});
  }
  std::sort(ordered.begin(), ordered.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });

  std::vector<int> order;
  order.reserve(cpus.size());
  for (size_t level = 0; order.size() < cpus.size(); ++level) {
    bool emitted = false;
    for (const auto& [key, members] : ordered) {
      if (level < members->size()) {
        order.push_back((*members)[level]);
        emitted = true;
      }
    }
    if (!emitted) {
      break;  // defensive: should be unreachable
    }
  }
  return order;
}

std::string CpuTopology::summary() const {
  std::ostringstream os;
  os << logical_cpus() << " cpu" << (logical_cpus() == 1 ? "" : "s") << " / "
     << physical_cores() << " core" << (physical_cores() == 1 ? "" : "s") << " / "
     << packages() << " socket" << (packages() == 1 ? "" : "s");
  return os.str();
}

CpuTopology query_topology() {
  CpuTopology topo;
#if defined(__linux__)
  std::vector<int> online = online_cpus_sysfs();
  for (int cpu : online) {
    std::string base = "/sys/devices/system/cpu/cpu" + std::to_string(cpu) + "/topology/";
    LogicalCpu lc;
    lc.cpu = cpu;
    lc.core_id = read_sysfs_int(base + "core_id", -1);
    lc.package_id = read_sysfs_int(base + "physical_package_id", -1);
    topo.cpus.push_back(lc);
  }
  std::sort(topo.cpus.begin(), topo.cpus.end(),
            [](const LogicalCpu& a, const LogicalCpu& b) { return a.cpu < b.cpu; });
#endif
  if (topo.cpus.empty()) {
    topo.cpus = fallback_cpus();
  }
  return topo;
}

bool affinity_supported() {
#if defined(__linux__)
  return true;
#else
  return false;
#endif
}

bool pin_current_thread(int cpu) {
#if defined(__linux__)
  if (cpu < 0 || cpu >= CPU_SETSIZE) {
    return false;
  }
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(cpu, &set);
  return pthread_setaffinity_np(pthread_self(), sizeof(set), &set) == 0;
#else
  (void)cpu;
  return false;
#endif
}

bool unpin_current_thread(const CpuTopology& topology) {
#if defined(__linux__)
  cpu_set_t set;
  CPU_ZERO(&set);
  bool any = false;
  for (const LogicalCpu& c : topology.cpus) {
    if (c.cpu >= 0 && c.cpu < CPU_SETSIZE) {
      CPU_SET(c.cpu, &set);
      any = true;
    }
  }
  if (!any) {
    return false;
  }
  return pthread_setaffinity_np(pthread_self(), sizeof(set), &set) == 0;
#else
  (void)topology;
  return false;
#endif
}

int current_cpu() {
#if defined(__linux__)
  int cpu = sched_getcpu();
  return cpu >= 0 ? cpu : -1;
#else
  return -1;
#endif
}

// Shared worker state: a generation counter wakes all workers for one
// run_all round; `remaining` counts workers still inside the round.
struct PinnedThreadPool::State {
  std::mutex mu;
  std::condition_variable work_cv;
  std::condition_variable done_cv;
  std::uint64_t generation = 0;
  const std::function<void(int)>* task = nullptr;
  int remaining = 0;
  int started = 0;  // workers that finished startup (pin + first wait)
  bool shutdown = false;
  std::exception_ptr error;
};

PinnedThreadPool::PinnedThreadPool(int threads, bool pin)
    : PinnedThreadPool(threads, pin, query_topology()) {}

PinnedThreadPool::PinnedThreadPool(int threads, bool pin, const CpuTopology& topology)
    : state_(std::make_unique<State>()) {
  if (threads < 1) {
    threads = 1;
  }
  std::vector<int> order = topology.pin_order();
  assigned_cpus_.assign(static_cast<size_t>(threads), -1);
  threads_.reserve(static_cast<size_t>(threads));
  for (int w = 0; w < threads; ++w) {
    int target = (pin && affinity_supported() && !order.empty())
                     ? order[static_cast<size_t>(w) % order.size()]
                     : -1;
    threads_.emplace_back([this, w, target] {
      if (target >= 0 && pin_current_thread(target)) {
        assigned_cpus_[static_cast<size_t>(w)] = target;
      }
      State& st = *state_;
      std::unique_lock<std::mutex> lock(st.mu);
      ++st.started;
      st.done_cv.notify_all();
      std::uint64_t seen = 0;
      for (;;) {
        st.work_cv.wait(lock, [&] { return st.shutdown || st.generation != seen; });
        if (st.shutdown) {
          return;
        }
        seen = st.generation;
        const std::function<void(int)>* task = st.task;
        lock.unlock();
        std::exception_ptr err;
        try {
          (*task)(w);
        } catch (...) {
          err = std::current_exception();
        }
        lock.lock();
        if (err && !st.error) {
          st.error = err;
        }
        if (--st.remaining == 0) {
          st.done_cv.notify_all();
        }
      }
    });
  }
  // Wait for startup so assigned_cpus() is final once the constructor
  // returns (workers write their slot before signalling).
  std::unique_lock<std::mutex> lock(state_->mu);
  state_->done_cv.wait(lock, [&] { return state_->started == threads; });
}

PinnedThreadPool::~PinnedThreadPool() {
  {
    std::lock_guard<std::mutex> lock(state_->mu);
    state_->shutdown = true;
  }
  state_->work_cv.notify_all();
  for (std::thread& t : threads_) {
    t.join();
  }
}

void PinnedThreadPool::run_all(const std::function<void(int)>& fn) {
  State& st = *state_;
  std::unique_lock<std::mutex> lock(st.mu);
  st.task = &fn;
  st.remaining = size();
  st.error = nullptr;
  ++st.generation;
  st.work_cv.notify_all();
  st.done_cv.wait(lock, [&] { return st.remaining == 0; });
  st.task = nullptr;
  if (st.error) {
    std::exception_ptr err = st.error;
    st.error = nullptr;
    std::rethrow_exception(err);
  }
}

}  // namespace lmb
