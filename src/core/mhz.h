// CPU clock-rate estimation ("mhz" in lmbench).
//
// Paper §5.1/§6.2: latencies are expressed both in nanoseconds and in
// processor clocks (Table 6), which requires knowing the clock period.  The
// classic trick: a chain of *dependent* integer adds retires at exactly one
// add per cycle on every processor the paper covers (and on modern x86/ARM),
// so ns-per-add == the clock period.
#ifndef LMBENCHPP_SRC_CORE_MHZ_H_
#define LMBENCHPP_SRC_CORE_MHZ_H_

#include "src/core/timing.h"

namespace lmb {

struct CpuClock {
  double mhz = 0.0;        // estimated core frequency
  double period_ns = 0.0;  // one cycle, in ns

  // Rounds a latency to whole clocks (Table 6's "Clk" columns).
  double clocks(double ns) const { return period_ns > 0 ? ns / period_ns : 0.0; }
};

// Estimates the clock by timing a long dependent-add chain.
CpuClock estimate_cpu_clock(const TimingPolicy& policy = TimingPolicy::standard());

// The measured kernel: runs `iters` blocks of kAddsPerBlock dependent adds
// and returns a value derived from them (so the chain cannot be elided).
inline constexpr int kAddsPerBlock = 128;
unsigned long run_dependent_adds(std::uint64_t iters);

}  // namespace lmb

#endif  // LMBENCHPP_SRC_CORE_MHZ_H_
