// Typed benchmark results — the structured value that flows from every
// benchmark through the runner into the database and report layers.
//
// Paper §3.5 describes the workflow as "run the suite, store the numbers in
// a user-extensible database, regenerate the tables".  A RunResult is the
// unit of that pipeline: one benchmark invocation producing named metric
// values (plus the raw timing detail), instead of an opaque display string.
//
// Metric naming convention (used for database keys and serialized output):
//   <bench>_<metric>_<unit>
// The benchmark name supplies the first part; Metric::key supplies the
// rest.  A headline-only latency benchmark uses key "us" (-> "lat_pipe_us");
// a multi-value benchmark qualifies each key ("rd_mbs" -> "bw_mem_rd_mbs").
#ifndef LMBENCHPP_SRC_CORE_RUN_RESULT_H_
#define LMBENCHPP_SRC_CORE_RUN_RESULT_H_

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "src/core/timing.h"

namespace lmb {

// Terminal state of one benchmark invocation.
enum class RunStatus {
  kOk,       // ran to completion, metrics are valid
  kError,    // threw; `error` holds the message, metrics are empty
  kTimeout,  // exceeded the suite runner's wall-clock budget
  kSkipped,  // never attempted (filtered out or suite aborted)
};

// Stable lowercase name ("ok", "error", "timeout", "skipped").
const char* run_status_name(RunStatus status);
// Inverse of run_status_name.  Throws std::invalid_argument on unknown text.
RunStatus run_status_from_name(const std::string& name);

// One named number, e.g. {key="create_us", value=12.3, unit="us"}.
struct Metric {
  std::string key;   // suffix appended to the benchmark name (see header)
  double value = 0.0;
  std::string unit;  // display unit: "us", "ns", "ms", "MB/s", "count", "%"
};

// Everything one benchmark invocation produced.
struct RunResult {
  std::string name;      // stamped by the Registry from BenchmarkInfo
  std::string category;  // likewise
  RunStatus status = RunStatus::kOk;
  std::string error;     // non-empty iff status is kError/kTimeout

  // Measured values in declaration order (stable for tables and CSV).
  std::vector<Metric> metrics;

  // Raw timing detail behind the headline metric, when the benchmark has a
  // single dominant measurement.  Multi-kernel benchmarks (bw_mem, stream)
  // leave this empty rather than privileging one kernel.
  std::optional<Measurement> measurement;

  // Free-form context: configured sizes, iteration counts, sweep notes.
  std::map<std::string, std::string> metadata;

  // Wall-clock time of the whole invocation, filled by the SuiteRunner.
  // 0 when the benchmark was run directly.
  double wall_ms = 0.0;

  // Optional hand-written display line; summary() falls back to a
  // generated one when empty.
  std::string display;

  bool ok() const { return status == RunStatus::kOk; }

  // Appends a metric; returns *this so sites can chain.
  RunResult& add(std::string key, double value, std::string unit);

  // Records the timing detail behind the headline number.
  RunResult& with(const Measurement& m);

  // Value of the metric with this key, if present.
  std::optional<double> metric(const std::string& key) const;

  // Human-readable one-liner: the display override, a generated
  // "key value unit" list, or the status + error for failed runs.
  std::string summary() const;

  // A failed result carrying an error message (status kError).
  static RunResult failure(std::string message);
};

}  // namespace lmb

#endif  // LMBENCHPP_SRC_CORE_RUN_RESULT_H_
