// Level-triggered epoll and the small pieces an event-loop server needs.
//
// The paper's TCP benchmarks (§6) are one client talking to one server over
// blocking sockets; serving thousands of concurrent flows needs readiness
// multiplexing.  This wrapper stays deliberately thin — level-triggered
// epoll, a self-pipe for cross-thread wakeups, and an RLIMIT_NOFILE helper —
// so the per-connection state machines (src/lat/load_server.h,
// src/lat/load_gen.h) own all protocol logic.
#ifndef LMBENCHPP_SRC_SYS_EPOLL_LOOP_H_
#define LMBENCHPP_SRC_SYS_EPOLL_LOOP_H_

#include <sys/epoll.h>

#include <cstdint>
#include <vector>

#include "src/sys/unique_fd.h"

namespace lmb::sys {

// Sets or clears O_NONBLOCK on `fd`; throws SysError on failure.
void set_nonblocking(int fd, bool on = true);

// RAII over an epoll instance.  Level-triggered by default: a handler that
// cannot drain a connection in one pass is simply re-notified, which keeps
// the per-connection state machines re-entrant and the EAGAIN handling
// local (the classic c10k recipe).  Edge-triggered operation is available
// by passing EPOLLET in `events` — it halves wakeups on large fan-in but
// obliges the handler to drain until EAGAIN and to remember any drain it
// deferred (a missed drain under ET is a hang, not a retry); the sharded
// load server (src/lat/load_server.h) implements both disciplines so their
// wakeup cost can be measured against each other.
class Epoll {
 public:
  Epoll();

  int fd() const { return fd_.get(); }

  // Registers `fd` for `events` (EPOLLIN/EPOLLOUT/...); delivered events
  // carry `tag` back in epoll_event.data.u64.  Throw SysError on failure.
  void add(int fd, std::uint32_t events, std::uint64_t tag);
  void mod(int fd, std::uint32_t events, std::uint64_t tag);
  void del(int fd);

  // Waits up to `timeout_ms` (-1 = forever) and fills `out` with ready
  // events (resized to the ready count).  Retries on EINTR — a stray
  // signal must never tear down an event loop — recomputing the remaining
  // timeout so a signal storm cannot extend the deadline.  Returns the
  // number of ready events (0 on timeout).
  int wait(std::vector<epoll_event>& out, int timeout_ms);

 private:
  UniqueFd fd_;
};

// A self-pipe that makes a blocked epoll_wait return: the read end lives in
// the epoll set, any thread may notify().  Classic self-pipe trick — it
// needs no extra syscall support and is immune to the lost-wakeup race
// (a notify before the loop blocks leaves the byte readable, so the next
// wait returns immediately).
class WakePipe {
 public:
  WakePipe();

  int read_fd() const { return read_.get(); }

  // Wakes the loop; safe from any thread, async-signal-safe (one write).
  void notify();

  // Drains pending wakeup bytes (call from the loop after a wakeup).
  void drain();

 private:
  UniqueFd read_;
  UniqueFd write_;
};

// Raises the soft RLIMIT_NOFILE to at least `need` descriptors (capped at
// the hard limit).  Returns the resulting soft limit.  A 1000-connection
// load scenario holds >2000 fds in one process (client + server end of
// every flow); the default soft limit of 1024 would fail at accept() time
// with a baffling EMFILE instead of a clear up-front answer.
std::uint64_t ensure_nofile(std::uint64_t need);

}  // namespace lmb::sys

#endif  // LMBENCHPP_SRC_SYS_EPOLL_LOOP_H_
