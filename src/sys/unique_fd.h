// Move-only owner of a POSIX file descriptor.
#ifndef LMBENCHPP_SRC_SYS_UNIQUE_FD_H_
#define LMBENCHPP_SRC_SYS_UNIQUE_FD_H_

#include <unistd.h>

#include <utility>

namespace lmb::sys {

class UniqueFd {
 public:
  UniqueFd() = default;
  explicit UniqueFd(int fd) : fd_(fd) {}

  UniqueFd(const UniqueFd&) = delete;
  UniqueFd& operator=(const UniqueFd&) = delete;

  UniqueFd(UniqueFd&& other) noexcept : fd_(std::exchange(other.fd_, -1)) {}
  UniqueFd& operator=(UniqueFd&& other) noexcept {
    if (this != &other) {
      reset(std::exchange(other.fd_, -1));
    }
    return *this;
  }

  ~UniqueFd() { reset(); }

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  explicit operator bool() const { return valid(); }

  // Closes the current fd (if any) and takes ownership of `fd`.
  void reset(int fd = -1) {
    if (fd_ >= 0) {
      ::close(fd_);
    }
    fd_ = fd;
  }

  // Releases ownership without closing.
  int release() { return std::exchange(fd_, -1); }

 private:
  int fd_ = -1;
};

}  // namespace lmb::sys

#endif  // LMBENCHPP_SRC_SYS_UNIQUE_FD_H_
