// mmap(2) wrappers for the mmap bandwidth benchmark and page-fault latency.
#ifndef LMBENCHPP_SRC_SYS_MAPPED_FILE_H_
#define LMBENCHPP_SRC_SYS_MAPPED_FILE_H_

#include <cstddef>
#include <string>

namespace lmb::sys {

// A read-only (or read-write) file mapping.  Move-only; unmaps on destroy.
class MappedFile {
 public:
  MappedFile() = default;

  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;
  MappedFile(MappedFile&& other) noexcept;
  MappedFile& operator=(MappedFile&& other) noexcept;
  ~MappedFile();

  // Maps an existing file read-only (PROT_READ, MAP_SHARED).
  static MappedFile open_read(const std::string& path);

  // Creates/extends `path` to `size` bytes and maps it read-write.
  static MappedFile create_rw(const std::string& path, size_t size);

  const char* data() const { return static_cast<const char*>(addr_); }
  char* mutable_data() { return static_cast<char*>(addr_); }
  size_t size() const { return size_; }
  bool valid() const { return addr_ != nullptr; }

  // msync(MS_SYNC) the whole mapping.
  void sync();

 private:
  MappedFile(void* addr, size_t size) : addr_(addr), size_(size) {}

  void* addr_ = nullptr;
  size_t size_ = 0;
};

// An anonymous private mapping (benchmark scratch memory, guaranteed
// page-aligned and untouched-by-malloc).
class AnonMapping {
 public:
  explicit AnonMapping(size_t size);

  AnonMapping(const AnonMapping&) = delete;
  AnonMapping& operator=(const AnonMapping&) = delete;
  AnonMapping(AnonMapping&& other) noexcept;
  AnonMapping& operator=(AnonMapping&& other) noexcept;
  ~AnonMapping();

  char* data() { return static_cast<char*>(addr_); }
  const char* data() const { return static_cast<const char*>(addr_); }
  size_t size() const { return size_; }

 private:
  void* addr_ = nullptr;
  size_t size_ = 0;
};

}  // namespace lmb::sys

#endif  // LMBENCHPP_SRC_SYS_MAPPED_FILE_H_
