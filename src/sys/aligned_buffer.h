// Cache-line-aligned heap buffers for the bandwidth benchmarks.
//
// std::vector's allocation is only guaranteed alignof(std::max_align_t)
// (16 on x86-64); SIMD and non-temporal kernels want their hot pointers on
// cache-line (64-byte) boundaries so the vector bodies start aligned and no
// line is split between two buffers.  This wraps posix_memalign in RAII.
#ifndef LMBENCHPP_SRC_SYS_ALIGNED_BUFFER_H_
#define LMBENCHPP_SRC_SYS_ALIGNED_BUFFER_H_

#include <cstddef>

namespace lmb::sys {

inline constexpr size_t kCacheLineBytes = 64;

// A fixed-size byte buffer whose data() is aligned to `alignment`.
// Move-only; frees on destroy.  A default-constructed buffer is empty
// (data() == nullptr, size() == 0).
class AlignedBuffer {
 public:
  AlignedBuffer() = default;

  // Allocates `bytes` (> 0) aligned to `alignment`, which must be a power
  // of two and a multiple of sizeof(void*).  Throws std::invalid_argument
  // on a bad alignment and std::bad_alloc on allocation failure.  The
  // memory is not zeroed.
  explicit AlignedBuffer(size_t bytes, size_t alignment = kCacheLineBytes);

  AlignedBuffer(const AlignedBuffer&) = delete;
  AlignedBuffer& operator=(const AlignedBuffer&) = delete;
  AlignedBuffer(AlignedBuffer&& other) noexcept;
  AlignedBuffer& operator=(AlignedBuffer&& other) noexcept;
  ~AlignedBuffer();

  char* data() { return static_cast<char*>(addr_); }
  const char* data() const { return static_cast<const char*>(addr_); }
  size_t size() const { return size_; }
  size_t alignment() const { return alignment_; }

  // data() viewed as an array of T; T's alignment must not exceed the
  // buffer's.
  template <typename T>
  T* as() {
    return reinterpret_cast<T*>(addr_);
  }
  template <typename T>
  const T* as() const {
    return reinterpret_cast<const T*>(addr_);
  }

 private:
  void* addr_ = nullptr;
  size_t size_ = 0;
  size_t alignment_ = 0;
};

}  // namespace lmb::sys

#endif  // LMBENCHPP_SRC_SYS_ALIGNED_BUFFER_H_
