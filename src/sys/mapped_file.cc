#include "src/sys/mapped_file.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <unistd.h>

#include <stdexcept>
#include <utility>

#include "src/sys/error.h"
#include "src/sys/fdio.h"
#include "src/sys/unique_fd.h"

namespace lmb::sys {

MappedFile::MappedFile(MappedFile&& other) noexcept
    : addr_(std::exchange(other.addr_, nullptr)), size_(std::exchange(other.size_, 0)) {}

MappedFile& MappedFile::operator=(MappedFile&& other) noexcept {
  if (this != &other) {
    if (addr_ != nullptr) {
      ::munmap(addr_, size_);
    }
    addr_ = std::exchange(other.addr_, nullptr);
    size_ = std::exchange(other.size_, 0);
  }
  return *this;
}

MappedFile::~MappedFile() {
  if (addr_ != nullptr) {
    ::munmap(addr_, size_);
  }
}

MappedFile MappedFile::open_read(const std::string& path) {
  UniqueFd fd = sys::open_read(path);
  off_t end = ::lseek(fd.get(), 0, SEEK_END);
  if (end < 0) {
    throw_errno("lseek");
  }
  if (end == 0) {
    throw std::invalid_argument("MappedFile::open_read: empty file " + path);
  }
  void* addr = ::mmap(nullptr, static_cast<size_t>(end), PROT_READ, MAP_SHARED, fd.get(), 0);
  if (addr == MAP_FAILED) {
    throw_errno("mmap " + path);
  }
  return MappedFile(addr, static_cast<size_t>(end));
}

MappedFile MappedFile::create_rw(const std::string& path, size_t size) {
  if (size == 0) {
    throw std::invalid_argument("MappedFile::create_rw: zero size");
  }
  UniqueFd fd = open_rw_create(path);
  check_syscall(::ftruncate(fd.get(), static_cast<off_t>(size)), "ftruncate");
  void* addr = ::mmap(nullptr, size, PROT_READ | PROT_WRITE, MAP_SHARED, fd.get(), 0);
  if (addr == MAP_FAILED) {
    throw_errno("mmap " + path);
  }
  return MappedFile(addr, size);
}

void MappedFile::sync() {
  if (addr_ != nullptr) {
    check_syscall(::msync(addr_, size_, MS_SYNC), "msync");
  }
}

AnonMapping::AnonMapping(size_t size) : size_(size) {
  if (size == 0) {
    throw std::invalid_argument("AnonMapping: zero size");
  }
  addr_ = ::mmap(nullptr, size, PROT_READ | PROT_WRITE, MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
  if (addr_ == MAP_FAILED) {
    addr_ = nullptr;
    throw_errno("mmap anonymous");
  }
}

AnonMapping::AnonMapping(AnonMapping&& other) noexcept
    : addr_(std::exchange(other.addr_, nullptr)), size_(std::exchange(other.size_, 0)) {}

AnonMapping& AnonMapping::operator=(AnonMapping&& other) noexcept {
  if (this != &other) {
    if (addr_ != nullptr) {
      ::munmap(addr_, size_);
    }
    addr_ = std::exchange(other.addr_, nullptr);
    size_ = std::exchange(other.size_, 0);
  }
  return *this;
}

AnonMapping::~AnonMapping() {
  if (addr_ != nullptr) {
    ::munmap(addr_, size_);
  }
}

}  // namespace lmb::sys
