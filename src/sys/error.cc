#include "src/sys/error.h"

#include <cerrno>
#include <cstring>

namespace lmb::sys {

SysError::SysError(const std::string& what, int err)
    : std::runtime_error(what + ": " + std::strerror(err)), err_(err) {}

void throw_errno(const std::string& what) { throw SysError(what, errno); }

long check_syscall(long ret, const char* what) {
  if (ret < 0) {
    throw_errno(what);
  }
  return ret;
}

}  // namespace lmb::sys
