// Error handling for OS calls.
#ifndef LMBENCHPP_SRC_SYS_ERROR_H_
#define LMBENCHPP_SRC_SYS_ERROR_H_

#include <stdexcept>
#include <string>

namespace lmb::sys {

// Thrown when a system call fails; carries the errno.
class SysError : public std::runtime_error {
 public:
  SysError(const std::string& what, int err);

  int error_code() const { return err_; }

 private:
  int err_;
};

// Throws SysError built from the current errno.
[[noreturn]] void throw_errno(const std::string& what);

// Returns `ret` unchanged if >= 0, else throws SysError for `what`.
long check_syscall(long ret, const char* what);

}  // namespace lmb::sys

#endif  // LMBENCHPP_SRC_SYS_ERROR_H_
