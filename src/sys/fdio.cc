#include "src/sys/fdio.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <stdexcept>

#include "src/sys/error.h"

namespace lmb::sys {

void write_full(int fd, const void* buf, size_t len) {
  const char* p = static_cast<const char*>(buf);
  while (len > 0) {
    ssize_t n = ::write(fd, p, len);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      throw_errno("write");
    }
    p += n;
    len -= static_cast<size_t>(n);
  }
}

void read_full(int fd, void* buf, size_t len) {
  char* p = static_cast<char*>(buf);
  while (len > 0) {
    ssize_t n = ::read(fd, p, len);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      throw_errno("read");
    }
    if (n == 0) {
      throw std::runtime_error("read_full: unexpected EOF");
    }
    p += n;
    len -= static_cast<size_t>(n);
  }
}

size_t read_some(int fd, void* buf, size_t len) {
  while (true) {
    ssize_t n = ::read(fd, buf, len);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      throw_errno("read");
    }
    return static_cast<size_t>(n);
  }
}

UniqueFd open_read(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    throw_errno("open " + path);
  }
  return UniqueFd(fd);
}

UniqueFd open_write(const std::string& path) {
  int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    throw_errno("open " + path);
  }
  return UniqueFd(fd);
}

UniqueFd open_rw_create(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDWR | O_CREAT, 0644);
  if (fd < 0) {
    throw_errno("open " + path);
  }
  return UniqueFd(fd);
}

UniqueFd open_append(const std::string& path) {
  int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd < 0) {
    throw_errno("open " + path);
  }
  return UniqueFd(fd);
}

void write_file(const std::string& path, const std::string& content) {
  UniqueFd fd = open_write(path);
  write_full(fd.get(), content.data(), content.size());
}

void append_file(const std::string& path, const std::string& content) {
  UniqueFd fd = open_append(path);
  write_full(fd.get(), content.data(), content.size());
}

std::string read_file(const std::string& path) {
  UniqueFd fd = open_read(path);
  std::string out;
  char buf[65536];
  while (true) {
    size_t n = read_some(fd.get(), buf, sizeof(buf));
    if (n == 0) {
      break;
    }
    out.append(buf, n);
  }
  return out;
}

}  // namespace lmb::sys
