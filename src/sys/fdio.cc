#include "src/sys/fdio.h"

#include <fcntl.h>
#include <poll.h>
#include <sys/uio.h>
#include <time.h>
#include <unistd.h>

#include <algorithm>
#include <cstdint>

#include <cerrno>
#include <stdexcept>

#include "src/sys/error.h"

namespace lmb::sys {

void write_full(int fd, const void* buf, size_t len) {
  const char* p = static_cast<const char*>(buf);
  while (len > 0) {
    ssize_t n = ::write(fd, p, len);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      throw_errno("write");
    }
    p += n;
    len -= static_cast<size_t>(n);
  }
}

void read_full(int fd, void* buf, size_t len) {
  char* p = static_cast<char*>(buf);
  while (len > 0) {
    ssize_t n = ::read(fd, p, len);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      throw_errno("read");
    }
    if (n == 0) {
      throw std::runtime_error("read_full: unexpected EOF");
    }
    p += n;
    len -= static_cast<size_t>(n);
  }
}

size_t read_some(int fd, void* buf, size_t len) {
  while (true) {
    ssize_t n = ::read(fd, buf, len);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      throw_errno("read");
    }
    return static_cast<size_t>(n);
  }
}

IoOutcome read_nonblock(int fd, void* buf, size_t len) {
  while (true) {
    ssize_t n = ::read(fd, buf, len);
    if (n > 0) {
      return {static_cast<size_t>(n), false, false};
    }
    if (n == 0) {
      return {0, false, true};
    }
    if (errno == EINTR) {
      continue;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return {0, true, false};
    }
    if (errno == ECONNRESET) {
      return {0, false, true};
    }
    throw_errno("read");
  }
}

IoOutcome write_nonblock(int fd, const void* buf, size_t len) {
  while (true) {
    ssize_t n = ::write(fd, buf, len);
    if (n >= 0) {
      return {static_cast<size_t>(n), false, false};
    }
    if (errno == EINTR) {
      continue;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return {0, true, false};
    }
    if (errno == EPIPE || errno == ECONNRESET) {
      return {0, false, true};
    }
    throw_errno("write");
  }
}

IoOutcome writev_nonblock(int fd, const ::iovec* iov, int iovcnt) {
  while (true) {
    ssize_t n = ::writev(fd, iov, iovcnt);
    if (n >= 0) {
      return {static_cast<size_t>(n), false, false};
    }
    if (errno == EINTR) {
      continue;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return {0, true, false};
    }
    if (errno == EPIPE || errno == ECONNRESET) {
      return {0, false, true};
    }
    throw_errno("writev");
  }
}

namespace {

std::int64_t monotonic_ms() {
  timespec ts{};
  ::clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<std::int64_t>(ts.tv_sec) * 1000 + ts.tv_nsec / 1'000'000;
}

}  // namespace

bool poll_readable(int fd, int timeout_ms) {
  const std::int64_t deadline = timeout_ms > 0 ? monotonic_ms() + timeout_ms : 0;
  int remaining = timeout_ms;
  while (true) {
    pollfd pfd{fd, POLLIN, 0};
    int ready = ::poll(&pfd, 1, remaining);
    if (ready > 0) {
      return true;  // readable, hung up, or errored — a read will tell which
    }
    if (ready == 0) {
      return false;
    }
    if (errno != EINTR) {
      throw_errno("poll");
    }
    if (timeout_ms > 0) {
      remaining = static_cast<int>(std::max<std::int64_t>(0, deadline - monotonic_ms()));
    }
  }
}

UniqueFd open_read(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    throw_errno("open " + path);
  }
  return UniqueFd(fd);
}

UniqueFd open_write(const std::string& path) {
  int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    throw_errno("open " + path);
  }
  return UniqueFd(fd);
}

UniqueFd open_rw_create(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDWR | O_CREAT, 0644);
  if (fd < 0) {
    throw_errno("open " + path);
  }
  return UniqueFd(fd);
}

UniqueFd open_append(const std::string& path) {
  int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd < 0) {
    throw_errno("open " + path);
  }
  return UniqueFd(fd);
}

void write_file(const std::string& path, const std::string& content) {
  UniqueFd fd = open_write(path);
  write_full(fd.get(), content.data(), content.size());
}

void append_file(const std::string& path, const std::string& content) {
  UniqueFd fd = open_append(path);
  write_full(fd.get(), content.data(), content.size());
}

std::string read_file(const std::string& path) {
  UniqueFd fd = open_read(path);
  std::string out;
  char buf[65536];
  while (true) {
    size_t n = read_some(fd.get(), buf, sizeof(buf));
    if (n == 0) {
      break;
    }
    out.append(buf, n);
  }
  return out;
}

}  // namespace lmb::sys
