#include "src/sys/socket.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <string.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <stdexcept>

#include "src/sys/error.h"
#include "src/sys/fdio.h"

namespace lmb::sys {

namespace {

sockaddr_in loopback_addr(std::uint16_t port) {
  sockaddr_in addr;
  memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  return addr;
}

std::uint16_t bound_port(int fd) {
  sockaddr_in addr;
  socklen_t len = sizeof(addr);
  check_syscall(::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len), "getsockname");
  return ntohs(addr.sin_port);
}

}  // namespace

TcpStream TcpStream::connect(std::uint16_t port) {
  UniqueFd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd) {
    throw_errno("socket");
  }
  sockaddr_in addr = loopback_addr(port);
  check_syscall(::connect(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), "connect");
  return TcpStream(std::move(fd));
}

void TcpStream::set_nodelay(bool on) {
  int v = on ? 1 : 0;
  check_syscall(::setsockopt(fd_.get(), IPPROTO_TCP, TCP_NODELAY, &v, sizeof(v)),
                "setsockopt TCP_NODELAY");
}

void TcpStream::set_buffer_sizes(int bytes) {
  check_syscall(::setsockopt(fd_.get(), SOL_SOCKET, SO_SNDBUF, &bytes, sizeof(bytes)),
                "setsockopt SO_SNDBUF");
  check_syscall(::setsockopt(fd_.get(), SOL_SOCKET, SO_RCVBUF, &bytes, sizeof(bytes)),
                "setsockopt SO_RCVBUF");
}

void TcpStream::send_all(const void* buf, size_t len) { write_full(fd_.get(), buf, len); }

void TcpStream::recv_all(void* buf, size_t len) { read_full(fd_.get(), buf, len); }

size_t TcpStream::recv_some(void* buf, size_t len) { return read_some(fd_.get(), buf, len); }

void TcpStream::shutdown_write() { check_syscall(::shutdown(fd_.get(), SHUT_WR), "shutdown"); }

UniqueFd tcp_connect_begin(std::uint16_t port) {
  UniqueFd fd(::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK, 0));
  if (!fd) {
    throw_errno("socket");
  }
  sockaddr_in addr = loopback_addr(port);
  int rc = ::connect(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  if (rc < 0 && errno != EINPROGRESS) {
    throw_errno("connect");
  }
  return fd;
}

void tcp_finish_connect(int fd) {
  int err = 0;
  socklen_t len = sizeof(err);
  check_syscall(::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len), "getsockopt SO_ERROR");
  if (err != 0) {
    throw SysError("connect", err);
  }
}

void set_tcp_nodelay(int fd, bool on) {
  int v = on ? 1 : 0;
  check_syscall(::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &v, sizeof(v)),
                "setsockopt TCP_NODELAY");
}

TcpListener::TcpListener(int backlog) : TcpListener(backlog, 0, /*reuseport=*/false) {}

TcpListener TcpListener::with_reuseport(std::uint16_t port, int backlog) {
  return TcpListener(backlog, port, /*reuseport=*/true);
}

TcpListener::TcpListener(int backlog, std::uint16_t port, bool reuseport) {
  fd_.reset(static_cast<int>(check_syscall(::socket(AF_INET, SOCK_STREAM, 0), "socket")));
  int one = 1;
  check_syscall(::setsockopt(fd_.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one)),
                "setsockopt SO_REUSEADDR");
  if (reuseport) {
    check_syscall(::setsockopt(fd_.get(), SOL_SOCKET, SO_REUSEPORT, &one, sizeof(one)),
                  "setsockopt SO_REUSEPORT");
  }
  sockaddr_in addr = loopback_addr(port);
  check_syscall(::bind(fd_.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), "bind");
  check_syscall(::listen(fd_.get(), backlog), "listen");
  port_ = bound_port(fd_.get());
}

TcpStream TcpListener::accept() {
  while (true) {
    int fd = ::accept(fd_.get(), nullptr, nullptr);
    if (fd >= 0) {
      return TcpStream(UniqueFd(fd));
    }
    if (errno != EINTR) {
      throw_errno("accept");
    }
  }
}

namespace {

sockaddr_un unix_addr(const std::string& path) {
  sockaddr_un addr;
  memset(&addr, 0, sizeof(addr));
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    throw std::invalid_argument("unix socket path too long: " + path);
  }
  memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return addr;
}

}  // namespace

UnixStream UnixStream::connect(const std::string& path, int timeout_ms) {
  UniqueFd fd(::socket(AF_UNIX, SOCK_STREAM, 0));
  if (!fd) {
    throw_errno("socket");
  }
  sockaddr_un addr = unix_addr(path);
  if (timeout_ms < 0) {
    check_syscall(::connect(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
                  "connect");
    return UnixStream(std::move(fd));
  }
  // Bounded connect: non-blocking connect, poll for writability, then read
  // SO_ERROR for the real outcome.  (A missing socket file fails the
  // connect() itself with ENOENT/ECONNREFUSED — no polling needed.)
  int flags = static_cast<int>(check_syscall(::fcntl(fd.get(), F_GETFL), "fcntl F_GETFL"));
  check_syscall(::fcntl(fd.get(), F_SETFL, flags | O_NONBLOCK), "fcntl F_SETFL");
  int rc = ::connect(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  if (rc < 0) {
    if (errno != EINPROGRESS && errno != EAGAIN) {
      throw_errno("connect " + path);
    }
    // Retried on EINTR: a signal during the handshake must not become a
    // spurious connect failure.
    pollfd pfd{fd.get(), POLLOUT, 0};
    int ready;
    while ((ready = ::poll(&pfd, 1, timeout_ms)) < 0) {
      if (errno != EINTR) {
        throw_errno("poll");
      }
    }
    if (ready == 0) {
      throw SysError("connect " + path + " timed out", ETIMEDOUT);
    }
    int err = 0;
    socklen_t len = sizeof(err);
    check_syscall(::getsockopt(fd.get(), SOL_SOCKET, SO_ERROR, &err, &len),
                  "getsockopt SO_ERROR");
    if (err != 0) {
      throw SysError("connect " + path, err);
    }
  }
  check_syscall(::fcntl(fd.get(), F_SETFL, flags), "fcntl F_SETFL");
  return UnixStream(std::move(fd));
}

void UnixStream::send_all(const void* buf, size_t len) { write_full(fd_.get(), buf, len); }

void UnixStream::recv_all(void* buf, size_t len) { read_full(fd_.get(), buf, len); }

size_t UnixStream::recv_some(void* buf, size_t len) { return read_some(fd_.get(), buf, len); }

void UnixStream::shutdown_write() {
  check_syscall(::shutdown(fd_.get(), SHUT_WR), "shutdown");
}

UnixListener::UnixListener(std::string path, int backlog) : path_(std::move(path)) {
  fd_.reset(static_cast<int>(check_syscall(::socket(AF_UNIX, SOCK_STREAM, 0), "socket")));
  ::unlink(path_.c_str());  // stale socket from a crashed daemon; ENOENT is fine
  sockaddr_un addr = unix_addr(path_);
  check_syscall(::bind(fd_.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), "bind");
  check_syscall(::listen(fd_.get(), backlog), "listen");
}

UnixListener::~UnixListener() { ::unlink(path_.c_str()); }

UnixStream UnixListener::accept() {
  while (true) {
    int fd = ::accept(fd_.get(), nullptr, nullptr);
    if (fd >= 0) {
      return UnixStream(UniqueFd(fd));
    }
    if (errno != EINTR) {
      throw_errno("accept");
    }
  }
}

std::optional<UnixStream> UnixListener::accept_for(int timeout_ms) {
  // poll_readable retries EINTR: the daemon's accept loop lives here, and a
  // stray signal (far likelier with the load generator running in-process)
  // must produce a timeout or a connection, never a torn-down service.
  if (!poll_readable(fd_.get(), timeout_ms)) {
    return std::nullopt;
  }
  return accept();
}

UdpSocket::UdpSocket() {
  fd_.reset(static_cast<int>(check_syscall(::socket(AF_INET, SOCK_DGRAM, 0), "socket")));
  sockaddr_in addr = loopback_addr(0);
  check_syscall(::bind(fd_.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), "bind");
  port_ = bound_port(fd_.get());
}

void UdpSocket::connect_to(std::uint16_t port) {
  sockaddr_in addr = loopback_addr(port);
  check_syscall(::connect(fd_.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), "connect");
}

void UdpSocket::send(const void* buf, size_t len) {
  check_syscall(::send(fd_.get(), buf, len, 0), "send");
}

size_t UdpSocket::recv(void* buf, size_t len) {
  while (true) {
    ssize_t n = ::recv(fd_.get(), buf, len, 0);
    if (n >= 0) {
      return static_cast<size_t>(n);
    }
    if (errno != EINTR) {
      throw_errno("recv");
    }
  }
}

void UdpSocket::send_to(std::uint16_t port, const void* buf, size_t len) {
  sockaddr_in addr = loopback_addr(port);
  check_syscall(
      ::sendto(fd_.get(), buf, len, 0, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
      "sendto");
}

size_t UdpSocket::recv_from(void* buf, size_t len, std::uint16_t* from_port) {
  sockaddr_in addr;
  socklen_t alen = sizeof(addr);
  while (true) {
    ssize_t n = ::recvfrom(fd_.get(), buf, len, 0, reinterpret_cast<sockaddr*>(&addr), &alen);
    if (n >= 0) {
      if (from_port != nullptr) {
        *from_port = ntohs(addr.sin_port);
      }
      return static_cast<size_t>(n);
    }
    if (errno != EINTR) {
      throw_errno("recvfrom");
    }
  }
}

}  // namespace lmb::sys
