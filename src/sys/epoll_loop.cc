#include "src/sys/epoll_loop.h"

#include <fcntl.h>
#include <sys/resource.h>
#include <time.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>

#include "src/sys/error.h"

namespace lmb::sys {

void set_nonblocking(int fd, bool on) {
  int flags = static_cast<int>(check_syscall(::fcntl(fd, F_GETFL), "fcntl F_GETFL"));
  int wanted = on ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
  if (wanted != flags) {
    check_syscall(::fcntl(fd, F_SETFL, wanted), "fcntl F_SETFL");
  }
}

Epoll::Epoll() {
  fd_.reset(static_cast<int>(check_syscall(::epoll_create1(EPOLL_CLOEXEC), "epoll_create1")));
}

namespace {

epoll_event make_event(std::uint32_t events, std::uint64_t tag) {
  epoll_event ev{};
  ev.events = events;
  ev.data.u64 = tag;
  return ev;
}

// Monotonic milliseconds for timeout recomputation across EINTR.
std::int64_t now_ms() {
  timespec ts{};
  ::clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<std::int64_t>(ts.tv_sec) * 1000 + ts.tv_nsec / 1'000'000;
}

}  // namespace

void Epoll::add(int fd, std::uint32_t events, std::uint64_t tag) {
  epoll_event ev = make_event(events, tag);
  check_syscall(::epoll_ctl(fd_.get(), EPOLL_CTL_ADD, fd, &ev), "epoll_ctl ADD");
}

void Epoll::mod(int fd, std::uint32_t events, std::uint64_t tag) {
  epoll_event ev = make_event(events, tag);
  check_syscall(::epoll_ctl(fd_.get(), EPOLL_CTL_MOD, fd, &ev), "epoll_ctl MOD");
}

void Epoll::del(int fd) {
  check_syscall(::epoll_ctl(fd_.get(), EPOLL_CTL_DEL, fd, nullptr), "epoll_ctl DEL");
}

int Epoll::wait(std::vector<epoll_event>& out, int timeout_ms) {
  if (out.size() < 64) {
    out.resize(64);
  }
  const std::int64_t deadline = timeout_ms > 0 ? now_ms() + timeout_ms : 0;
  int remaining = timeout_ms;
  while (true) {
    int n = ::epoll_wait(fd_.get(), out.data(), static_cast<int>(out.size()), remaining);
    if (n >= 0) {
      out.resize(static_cast<size_t>(n));
      return n;
    }
    if (errno != EINTR) {
      throw_errno("epoll_wait");
    }
    if (timeout_ms > 0) {
      remaining = static_cast<int>(std::max<std::int64_t>(0, deadline - now_ms()));
    }
  }
}

WakePipe::WakePipe() {
  int fds[2];
  check_syscall(::pipe(fds), "pipe");
  read_.reset(fds[0]);
  write_.reset(fds[1]);
  set_nonblocking(read_.get());
  set_nonblocking(write_.get());
}

void WakePipe::notify() {
  char b = 1;
  // A full pipe already guarantees a pending wakeup; EAGAIN is success.
  [[maybe_unused]] ssize_t n = ::write(write_.get(), &b, 1);
}

void WakePipe::drain() {
  char buf[256];
  while (::read(read_.get(), buf, sizeof(buf)) > 0) {
  }
}

std::uint64_t ensure_nofile(std::uint64_t need) {
  rlimit lim{};
  check_syscall(::getrlimit(RLIMIT_NOFILE, &lim), "getrlimit RLIMIT_NOFILE");
  if (lim.rlim_cur != RLIM_INFINITY && lim.rlim_cur < need) {
    rlimit raised = lim;
    raised.rlim_cur = lim.rlim_max == RLIM_INFINITY
                          ? need
                          : std::min<std::uint64_t>(need, lim.rlim_max);
    if (raised.rlim_cur > lim.rlim_cur) {
      check_syscall(::setrlimit(RLIMIT_NOFILE, &raised), "setrlimit RLIMIT_NOFILE");
      lim = raised;
    }
  }
  return lim.rlim_cur == RLIM_INFINITY ? ~0ull : static_cast<std::uint64_t>(lim.rlim_cur);
}

}  // namespace lmb::sys
