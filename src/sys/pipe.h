// Unix pipes and AF_UNIX socket pairs.
#ifndef LMBENCHPP_SRC_SYS_PIPE_H_
#define LMBENCHPP_SRC_SYS_PIPE_H_

#include "src/sys/unique_fd.h"

namespace lmb::sys {

// A one-way byte stream (paper §5.2): read end + write end.
class Pipe {
 public:
  // Creates the pipe; throws SysError on failure.
  Pipe();

  int read_fd() const { return read_.get(); }
  int write_fd() const { return write_.get(); }

  // Drops one end (used after fork so each process holds only its side).
  void close_read() { read_.reset(); }
  void close_write() { write_.reset(); }

  UniqueFd take_read() { return std::move(read_); }
  UniqueFd take_write() { return std::move(write_); }

 private:
  UniqueFd read_;
  UniqueFd write_;
};

// A connected AF_UNIX stream pair (bidirectional).
class SocketPair {
 public:
  SocketPair();

  int first() const { return a_.get(); }
  int second() const { return b_.get(); }

  void close_first() { a_.reset(); }
  void close_second() { b_.reset(); }

 private:
  UniqueFd a_;
  UniqueFd b_;
};

}  // namespace lmb::sys

#endif  // LMBENCHPP_SRC_SYS_PIPE_H_
