// Full-buffer read/write helpers over raw fds.
//
// Partial transfers are the norm for pipes and sockets; every benchmark that
// streams data needs exact-count semantics, so we centralize the retry loops.
#ifndef LMBENCHPP_SRC_SYS_FDIO_H_
#define LMBENCHPP_SRC_SYS_FDIO_H_

#include <sys/uio.h>

#include <cstddef>
#include <string>

#include "src/sys/unique_fd.h"

namespace lmb::sys {

// Writes exactly `len` bytes; throws SysError on failure (including EPIPE).
void write_full(int fd, const void* buf, size_t len);

// Reads exactly `len` bytes; throws SysError on failure and
// std::runtime_error on premature EOF.
void read_full(int fd, void* buf, size_t len);

// Reads up to `len` bytes (one read call, retried on EINTR).  Returns bytes
// read; 0 means EOF.
size_t read_some(int fd, void* buf, size_t len);

// Outcome of one non-blocking transfer attempt.  Exactly one of
// `would_block`/`closed` may be set when `bytes` is 0; a short `bytes` with
// neither flag means the kernel buffer ran out mid-call — just try again on
// the next readiness notification.
struct IoOutcome {
  size_t bytes = 0;
  bool would_block = false;  // EAGAIN/EWOULDBLOCK: wait for readiness
  bool closed = false;       // read: EOF or peer reset; write: EPIPE/reset
};

// One non-blocking read on an O_NONBLOCK fd.  Retries EINTR; EAGAIN maps to
// would_block, EOF and ECONNRESET map to closed (a reset mid-benchmark is a
// connection event to handle, not a server-killing exception).  Other
// errors throw SysError.
IoOutcome read_nonblock(int fd, void* buf, size_t len);

// One non-blocking write.  Retries EINTR; EAGAIN maps to would_block,
// EPIPE/ECONNRESET map to closed.  Other errors throw SysError.
IoOutcome write_nonblock(int fd, const void* buf, size_t len);

// One non-blocking scatter-gather write (writev).  Same errno mapping as
// write_nonblock.  Lets a reply path hand the kernel a header and a shared
// payload buffer in one syscall instead of copying both into a contiguous
// out buffer first — the RPC hot path of the sharded load server coalesces
// many queued replies into a single writev this way.
IoOutcome writev_nonblock(int fd, const ::iovec* iov, int iovcnt);

// Waits until `fd` is readable or `timeout_ms` elapses (-1 = forever).
// Retries poll on EINTR with the remaining time recomputed, so a signal
// storm can neither tear the wait down nor extend the deadline.  Returns
// false on timeout.
bool poll_readable(int fd, int timeout_ms);

// open(2) wrappers that throw on failure.
UniqueFd open_read(const std::string& path);
UniqueFd open_write(const std::string& path);  // O_WRONLY|O_CREAT|O_TRUNC, 0644
UniqueFd open_rw_create(const std::string& path);
UniqueFd open_append(const std::string& path);  // O_WRONLY|O_CREAT|O_APPEND, 0644

// Writes `content` to a new file at `path` (create/truncate).
void write_file(const std::string& path, const std::string& content);

// Appends `content` to `path`, creating it if missing.  One write_full
// call, so lines up to PIPE_BUF append atomically with other writers.
void append_file(const std::string& path, const std::string& content);

// Reads a whole file into a string; throws on failure.
std::string read_file(const std::string& path);

}  // namespace lmb::sys

#endif  // LMBENCHPP_SRC_SYS_FDIO_H_
