// TCP and UDP sockets over IPv4 loopback.
//
// The paper's TCP/UDP benchmarks all run in loopback mode (§5.2: "both ends
// of the socket are on the same machine"), so this API binds to 127.0.0.1
// with ephemeral ports and reports the port chosen.
#ifndef LMBENCHPP_SRC_SYS_SOCKET_H_
#define LMBENCHPP_SRC_SYS_SOCKET_H_

#include <netinet/in.h>

#include <cstdint>
#include <optional>
#include <string>

#include "src/sys/unique_fd.h"

namespace lmb::sys {

// A connected TCP stream.
class TcpStream {
 public:
  TcpStream() = default;
  explicit TcpStream(UniqueFd fd) : fd_(std::move(fd)) {}

  // Connects to 127.0.0.1:port; throws on failure.
  static TcpStream connect(std::uint16_t port);

  int fd() const { return fd_.get(); }
  bool valid() const { return fd_.valid(); }

  // Disables Nagle (latency benchmarks need immediate sends).
  void set_nodelay(bool on);
  // Sets SO_SNDBUF / SO_RCVBUF (paper enlarges both to 1M for bandwidth).
  void set_buffer_sizes(int bytes);

  void send_all(const void* buf, size_t len);
  void recv_all(void* buf, size_t len);
  // One recv; returns 0 on orderly shutdown.
  size_t recv_some(void* buf, size_t len);

  void shutdown_write();

 private:
  UniqueFd fd_;
};

// Begins a non-blocking connect to 127.0.0.1:port and returns the socket
// (O_NONBLOCK stays set).  Completion is signaled by writability; call
// tcp_finish_connect then.  Used by the many-connection load generator,
// which opens hundreds of flows concurrently — serial blocking connects
// would serialize the very concurrency being measured.
UniqueFd tcp_connect_begin(std::uint16_t port);

// After writability: reads SO_ERROR and throws SysError if the connect
// actually failed (e.g. listen backlog overflow -> ECONNREFUSED).
void tcp_finish_connect(int fd);

// TCP_NODELAY on a raw fd (latency traffic needs immediate sends).
void set_tcp_nodelay(int fd, bool on = true);

// A listening TCP socket on 127.0.0.1 with an ephemeral port.
class TcpListener {
 public:
  // `backlog` as for listen(2).
  explicit TcpListener(int backlog = 16);

  // A listener with SO_REUSEPORT set before bind.  N such listeners bound
  // to the same port give the kernel N independent accept queues and a
  // per-connection hash across them — the standard way to shard one
  // listening port over N event-loop threads without an accept lock or a
  // thundering herd.  `port` 0 picks an ephemeral port (the first shard);
  // subsequent shards pass the first one's port() back in.
  static TcpListener with_reuseport(std::uint16_t port, int backlog = 16);

  std::uint16_t port() const { return port_; }
  int fd() const { return fd_.get(); }

  // Blocks until a connection arrives.
  TcpStream accept();

 private:
  TcpListener(int backlog, std::uint16_t port, bool reuseport);

  UniqueFd fd_;
  std::uint16_t port_ = 0;
};

// A connected Unix-domain (AF_UNIX) stream — the lmbenchd control channel.
// Path-based addressing keeps the daemon local-only (filesystem permissions
// are the access control), matching the paper's loopback-only stance.
class UnixStream {
 public:
  UnixStream() = default;
  explicit UnixStream(UniqueFd fd) : fd_(std::move(fd)) {}

  // Connects to the socket at `path`; throws SysError on failure.  With
  // `timeout_ms` >= 0 the connect itself is bounded: a dead or unresponsive
  // endpoint raises SysError(ETIMEDOUT) instead of blocking forever.
  static UnixStream connect(const std::string& path, int timeout_ms = -1);

  int fd() const { return fd_.get(); }
  bool valid() const { return fd_.valid(); }

  void send_all(const void* buf, size_t len);
  void recv_all(void* buf, size_t len);
  // One recv; returns 0 on orderly shutdown.
  size_t recv_some(void* buf, size_t len);

  void shutdown_write();

 private:
  UniqueFd fd_;
};

// A listening Unix-domain socket at `path`.  The constructor unlinks a
// stale socket file left by a crashed predecessor; the destructor removes
// the path so a clean shutdown leaves no debris.
class UnixListener {
 public:
  explicit UnixListener(std::string path, int backlog = 16);
  ~UnixListener();

  UnixListener(const UnixListener&) = delete;
  UnixListener& operator=(const UnixListener&) = delete;

  const std::string& path() const { return path_; }
  int fd() const { return fd_.get(); }

  // Blocks until a connection arrives.
  UnixStream accept();

  // Bounded accept: nullopt after `timeout_ms` with no connection (lets an
  // accept loop poll a shutdown flag without an extra wakeup channel).
  std::optional<UnixStream> accept_for(int timeout_ms);

 private:
  UniqueFd fd_;
  std::string path_;
};

// A UDP socket bound to 127.0.0.1 with an ephemeral port.
class UdpSocket {
 public:
  UdpSocket();

  std::uint16_t port() const { return port_; }
  int fd() const { return fd_.get(); }

  // Fixes the peer so plain send/recv work.
  void connect_to(std::uint16_t port);

  void send(const void* buf, size_t len);
  size_t recv(void* buf, size_t len);

  void send_to(std::uint16_t port, const void* buf, size_t len);
  // Receives one datagram; fills `from_port` when non-null.
  size_t recv_from(void* buf, size_t len, std::uint16_t* from_port);

 private:
  UniqueFd fd_;
  std::uint16_t port_ = 0;
};

}  // namespace lmb::sys

#endif  // LMBENCHPP_SRC_SYS_SOCKET_H_
