#include "src/sys/aligned_buffer.h"

#include <cstdlib>
#include <new>
#include <stdexcept>
#include <utility>

namespace lmb::sys {

AlignedBuffer::AlignedBuffer(size_t bytes, size_t alignment) {
  if (alignment == 0 || (alignment & (alignment - 1)) != 0 ||
      alignment % sizeof(void*) != 0) {
    throw std::invalid_argument("AlignedBuffer: alignment must be a power of two "
                                "multiple of sizeof(void*)");
  }
  if (bytes == 0) {
    throw std::invalid_argument("AlignedBuffer: zero size");
  }
  void* addr = nullptr;
  if (::posix_memalign(&addr, alignment, bytes) != 0) {
    throw std::bad_alloc();
  }
  addr_ = addr;
  size_ = bytes;
  alignment_ = alignment;
}

AlignedBuffer::AlignedBuffer(AlignedBuffer&& other) noexcept
    : addr_(std::exchange(other.addr_, nullptr)),
      size_(std::exchange(other.size_, 0)),
      alignment_(std::exchange(other.alignment_, 0)) {}

AlignedBuffer& AlignedBuffer::operator=(AlignedBuffer&& other) noexcept {
  if (this != &other) {
    std::free(addr_);
    addr_ = std::exchange(other.addr_, nullptr);
    size_ = std::exchange(other.size_, 0);
    alignment_ = std::exchange(other.alignment_, 0);
  }
  return *this;
}

AlignedBuffer::~AlignedBuffer() { std::free(addr_); }

}  // namespace lmb::sys
