#include "src/sys/pipe.h"

#include <sys/socket.h>
#include <unistd.h>

#include "src/sys/error.h"

namespace lmb::sys {

Pipe::Pipe() {
  int fds[2];
  check_syscall(::pipe(fds), "pipe");
  read_.reset(fds[0]);
  write_.reset(fds[1]);
}

SocketPair::SocketPair() {
  int fds[2];
  check_syscall(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), "socketpair");
  a_.reset(fds[0]);
  b_.reset(fds[1]);
}

}  // namespace lmb::sys
