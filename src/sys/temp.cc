#include "src/sys/temp.h"

#include <stdlib.h>
#include <unistd.h>

#include <cstring>
#include <filesystem>
#include <utility>
#include <vector>

#include "src/sys/error.h"
#include "src/sys/fdio.h"
#include "src/sys/unique_fd.h"

namespace lmb::sys {

TempDir::TempDir(const std::string& prefix) {
  const char* base = ::getenv("TMPDIR");
  std::string tmpl = std::string(base != nullptr ? base : "/tmp") + "/" + prefix + ".XXXXXX";
  std::vector<char> buf(tmpl.begin(), tmpl.end());
  buf.push_back('\0');
  if (::mkdtemp(buf.data()) == nullptr) {
    throw_errno("mkdtemp " + tmpl);
  }
  path_ = buf.data();
}

TempDir::TempDir(TempDir&& other) noexcept : path_(std::exchange(other.path_, std::string())) {}

TempDir& TempDir::operator=(TempDir&& other) noexcept {
  if (this != &other) {
    remove_all();
    path_ = std::exchange(other.path_, std::string());
  }
  return *this;
}

TempDir::~TempDir() { remove_all(); }

void TempDir::remove_all() noexcept {
  if (!path_.empty()) {
    std::error_code ec;
    std::filesystem::remove_all(path_, ec);  // best effort
    path_.clear();
  }
}

std::string TempDir::file(const std::string& name) const { return path_ + "/" + name; }

TempFile::TempFile(const TempDir& dir, const std::string& name, size_t size)
    : path_(dir.file(name)), size_(size) {
  UniqueFd fd = open_write(path_);
  // 64 KB pattern block; contents vary so page dedup can't cheat.
  std::vector<char> block(65536);
  for (size_t i = 0; i < block.size(); ++i) {
    block[i] = static_cast<char>((i * 37 + 11) & 0xff);
  }
  size_t remaining = size;
  while (remaining > 0) {
    size_t n = std::min(remaining, block.size());
    write_full(fd.get(), block.data(), n);
    remaining -= n;
  }
}

}  // namespace lmb::sys
