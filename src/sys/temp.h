// Temporary files and directories, removed on destruction.
#ifndef LMBENCHPP_SRC_SYS_TEMP_H_
#define LMBENCHPP_SRC_SYS_TEMP_H_

#include <string>

namespace lmb::sys {

// A mkdtemp()-created directory, recursively removed on destruction.
class TempDir {
 public:
  // `prefix` names the directory under $TMPDIR (default /tmp).
  explicit TempDir(const std::string& prefix = "lmb");

  TempDir(const TempDir&) = delete;
  TempDir& operator=(const TempDir&) = delete;
  TempDir(TempDir&& other) noexcept;
  TempDir& operator=(TempDir&& other) noexcept;
  ~TempDir();

  const std::string& path() const { return path_; }

  // path()/name
  std::string file(const std::string& name) const;

 private:
  void remove_all() noexcept;

  std::string path_;
};

// A temporary file of a given size filled with a repeating pattern (the file
// benchmarks need real data of known content).
class TempFile {
 public:
  TempFile(const TempDir& dir, const std::string& name, size_t size);

  const std::string& path() const { return path_; }
  size_t size() const { return size_; }

 private:
  std::string path_;
  size_t size_;
};

}  // namespace lmb::sys

#endif  // LMBENCHPP_SRC_SYS_TEMP_H_
