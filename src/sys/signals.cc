#include "src/sys/signals.h"

#include <string.h>

#include "src/sys/error.h"

namespace lmb::sys {

SignalHandlerGuard::SignalHandlerGuard(int signo, SignalHandler handler) : signo_(signo) {
  struct sigaction sa;
  memset(&sa, 0, sizeof(sa));
  sa.sa_handler = handler;
  sigemptyset(&sa.sa_mask);
  check_syscall(::sigaction(signo, &sa, &previous_), "sigaction");
}

SignalHandlerGuard::~SignalHandlerGuard() { ::sigaction(signo_, &previous_, nullptr); }

void install_handler(int signo, SignalHandler handler) {
  struct sigaction sa;
  memset(&sa, 0, sizeof(sa));
  sa.sa_handler = handler;
  sigemptyset(&sa.sa_mask);
  check_syscall(::sigaction(signo, &sa, nullptr), "sigaction");
}

void raise_signal(int signo) { check_syscall(::raise(signo), "raise"); }

}  // namespace lmb::sys
