// Signal-handler installation helpers (paper §6.4).
#ifndef LMBENCHPP_SRC_SYS_SIGNALS_H_
#define LMBENCHPP_SRC_SYS_SIGNALS_H_

#include <signal.h>

namespace lmb::sys {

using SignalHandler = void (*)(int);

// Installs `handler` for `signo` via sigaction and restores the previous
// disposition on destruction.
class SignalHandlerGuard {
 public:
  SignalHandlerGuard(int signo, SignalHandler handler);

  SignalHandlerGuard(const SignalHandlerGuard&) = delete;
  SignalHandlerGuard& operator=(const SignalHandlerGuard&) = delete;

  ~SignalHandlerGuard();

  int signo() const { return signo_; }

 private:
  int signo_;
  struct sigaction previous_;
};

// Installs `handler` for `signo`; returns nothing but throws SysError on
// failure.  (The raw operation, used inside the sigaction-latency loop.)
void install_handler(int signo, SignalHandler handler);

// Raise `signo` in this process (the signal-catch benchmark's generator).
void raise_signal(int signo);

}  // namespace lmb::sys

#endif  // LMBENCHPP_SRC_SYS_SIGNALS_H_
