#include "src/sys/process.h"

#include <fcntl.h>
#include <limits.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>

#include "src/sys/error.h"

namespace lmb::sys {

namespace {

void redirect_output_to_devnull() {
  int devnull = ::open("/dev/null", O_WRONLY);
  if (devnull >= 0) {
    ::dup2(devnull, STDOUT_FILENO);
    ::dup2(devnull, STDERR_FILENO);
    if (devnull > STDERR_FILENO) {
      ::close(devnull);
    }
  }
}

}  // namespace

Child::Child(Child&& other) noexcept : pid_(other.pid_), waited_(other.waited_) {
  other.pid_ = -1;
  other.waited_ = true;
}

Child& Child::operator=(Child&& other) noexcept {
  if (this != &other) {
    if (valid() && !waited_) {
      ::waitpid(pid_, nullptr, 0);
    }
    pid_ = other.pid_;
    waited_ = other.waited_;
    other.pid_ = -1;
    other.waited_ = true;
  }
  return *this;
}

Child::~Child() {
  if (valid() && !waited_) {
    ::waitpid(pid_, nullptr, 0);
  }
}

int Child::wait() {
  if (!valid() || waited_) {
    throw std::logic_error("Child::wait: no child to wait for");
  }
  int status = 0;
  while (true) {
    pid_t r = ::waitpid(pid_, &status, 0);
    if (r == pid_) {
      break;
    }
    if (errno != EINTR) {
      throw_errno("waitpid");
    }
  }
  waited_ = true;
  if (WIFEXITED(status)) {
    return WEXITSTATUS(status);
  }
  if (WIFSIGNALED(status)) {
    return 128 + WTERMSIG(status);
  }
  return -1;
}

void Child::kill(int signo) {
  if (!valid()) {
    throw std::logic_error("Child::kill: no child");
  }
  check_syscall(::kill(pid_, signo), "kill");
}

Child fork_child(const std::function<int()>& body) {
  pid_t pid = ::fork();
  if (pid < 0) {
    throw_errno("fork");
  }
  if (pid == 0) {
    _exit(body());
  }
  return Child(pid);
}

Child spawn(const std::vector<std::string>& argv, bool quiet) {
  if (argv.empty()) {
    throw std::invalid_argument("spawn: empty argv");
  }
  pid_t pid = ::fork();
  if (pid < 0) {
    throw_errno("fork");
  }
  if (pid == 0) {
    if (quiet) {
      redirect_output_to_devnull();
    }
    std::vector<char*> cargv;
    cargv.reserve(argv.size() + 1);
    for (const auto& a : argv) {
      cargv.push_back(const_cast<char*>(a.c_str()));
    }
    cargv.push_back(nullptr);
    ::execv(cargv[0], cargv.data());
    _exit(127);
  }
  return Child(pid);
}

Child spawn_shell(const std::string& command, bool quiet) {
  pid_t pid = ::fork();
  if (pid < 0) {
    throw_errno("fork");
  }
  if (pid == 0) {
    if (quiet) {
      redirect_output_to_devnull();
    }
    ::execl("/bin/sh", "sh", "-c", command.c_str(), static_cast<char*>(nullptr));
    _exit(127);
  }
  return Child(pid);
}

std::string self_exe_path() {
  char buf[PATH_MAX];
  ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  if (n < 0) {
    throw_errno("readlink /proc/self/exe");
  }
  buf[n] = '\0';
  return std::string(buf);
}

}  // namespace lmb::sys
