// Process creation and reaping (paper §6.5).
#ifndef LMBENCHPP_SRC_SYS_PROCESS_H_
#define LMBENCHPP_SRC_SYS_PROCESS_H_

#include <sys/types.h>

#include <functional>
#include <string>
#include <vector>

namespace lmb::sys {

// A forked or spawned child.  Move-only; the destructor reaps (waits for)
// the child if it has not been waited on, so children never leak as zombies.
class Child {
 public:
  Child() = default;
  explicit Child(pid_t pid) : pid_(pid) {}

  Child(const Child&) = delete;
  Child& operator=(const Child&) = delete;
  Child(Child&& other) noexcept;
  Child& operator=(Child&& other) noexcept;
  ~Child();

  pid_t pid() const { return pid_; }
  bool valid() const { return pid_ > 0; }

  // Blocks until the child exits; returns its exit status (0-255), or
  // 128+signal when killed by a signal.  Throws SysError on wait failure.
  int wait();

  // Sends a signal to the child.
  void kill(int signo);

 private:
  pid_t pid_ = -1;
  bool waited_ = false;
};

// fork()s; the child runs `body` and exits with its return value.  The
// parent gets the Child handle.  `body` must not throw.
Child fork_child(const std::function<int()>& body);

// fork() + execve() of argv[0] with the given argument vector.  Throws
// SysError if fork fails; the child _exits(127) if exec fails.
// When `quiet` is set, the child's stdout/stderr go to /dev/null.
Child spawn(const std::vector<std::string>& argv, bool quiet = false);

// fork() + execl("/bin/sh", "sh", "-c", command) — the expensive
// "Complicated new process creation" case of Table 9.
Child spawn_shell(const std::string& command, bool quiet = false);

// Path to this executable (/proc/self/exe); used by the process-creation
// benchmarks to re-exec a tiny "hello" mode.
std::string self_exe_path();

}  // namespace lmb::sys

#endif  // LMBENCHPP_SRC_SYS_PROCESS_H_
