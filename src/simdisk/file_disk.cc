#include "src/simdisk/file_disk.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>

#include "src/sys/error.h"

namespace lmb::simdisk {

FileDisk::FileDisk(const std::string& path, std::uint64_t fixed_size) {
  int fd = ::open(path.c_str(), O_RDWR | O_CREAT, 0644);
  if (fd < 0) {
    sys::throw_errno("open " + path);
  }
  fd_.reset(fd);
  if (fixed_size > 0) {
    sys::check_syscall(::ftruncate(fd_.get(), static_cast<off_t>(fixed_size)), "ftruncate");
    size_ = fixed_size;
  } else {
    off_t end = ::lseek(fd_.get(), 0, SEEK_END);
    if (end < 0) {
      sys::throw_errno("lseek");
    }
    size_ = static_cast<std::uint64_t>(end);
  }
}

size_t FileDisk::read(std::uint64_t offset, void* buf, size_t len) {
  if (offset >= size_) {
    return 0;
  }
  len = static_cast<size_t>(std::min<std::uint64_t>(len, size_ - offset));
  char* p = static_cast<char*>(buf);
  size_t total = 0;
  while (total < len) {
    ssize_t n = ::pread(fd_.get(), p + total, len - total, static_cast<off_t>(offset + total));
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      sys::throw_errno("pread");
    }
    if (n == 0) {
      break;
    }
    total += static_cast<size_t>(n);
  }
  return total;
}

size_t FileDisk::write(std::uint64_t offset, const void* buf, size_t len) {
  if (offset >= size_) {
    return 0;
  }
  len = static_cast<size_t>(std::min<std::uint64_t>(len, size_ - offset));
  const char* p = static_cast<const char*>(buf);
  size_t total = 0;
  while (total < len) {
    ssize_t n = ::pwrite(fd_.get(), p + total, len - total, static_cast<off_t>(offset + total));
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      sys::throw_errno("pwrite");
    }
    total += static_cast<size_t>(n);
  }
  return total;
}

void FileDisk::flush() { sys::check_syscall(::fsync(fd_.get()), "fsync"); }

}  // namespace lmb::simdisk
