// SCSI I/O processor overhead — paper Table 17 (§6.9).
//
// "The benchmark simulates a large number of disks by reading 512-byte
// transfers sequentially from the raw disk device ... the benchmark is
// doing small transfers of data from the disk's track buffer. ... The
// resulting overhead number represents a lower bound on the overhead of a
// disk I/O."
//
// Substitution (no raw SCSI device available): requests are issued against
// the SimDisk model.  Two costs are separated, which the paper's single
// number conflates:
//   * host overhead — real CPU time per request, measured on the wall clock
//     (our analog of Table 17's number; the modern host's request-issue path
//     is user-space, so it is far cheaper than a 1995 kernel SCSI stack);
//   * simulated device service time per request on the virtual clock,
//     demonstrating that sequential 512-byte reads are track-buffer hits.
#ifndef LMBENCHPP_SRC_SIMDISK_DISK_OVERHEAD_H_
#define LMBENCHPP_SRC_SIMDISK_DISK_OVERHEAD_H_

#include <cstdint>

#include "src/simdisk/disk_model.h"

namespace lmb::simdisk {

struct DiskOverheadConfig {
  std::uint64_t requests = 20000;
  std::uint32_t request_bytes = 512;
  DiskGeometry geometry;
  DiskTimingParams timing;

  static DiskOverheadConfig quick() {
    DiskOverheadConfig c;
    c.requests = 2000;
    return c;
  }
};

struct DiskOverheadResult {
  // Real CPU time per request (wall clock around the request-issue loop).
  double host_us_per_op = 0.0;
  // Virtual (modeled) disk service time per request.
  double device_us_per_op = 0.0;
  // Fraction of reads served from the track buffer; sequential 512-byte
  // reads should be ~ (1 - 1/sectors_per_track) ≈ 0.99.
  double buffer_hit_rate = 0.0;
  // CPU-bound operation ceiling implied by the host overhead: "it can
  // provide an upper bound on the number of disk operations the processor
  // can support."
  double max_ops_per_sec = 0.0;
};

DiskOverheadResult measure_disk_overhead(const DiskOverheadConfig& config = {});

}  // namespace lmb::simdisk

#endif  // LMBENCHPP_SRC_SIMDISK_DISK_OVERHEAD_H_
