// lmdd — "patterned after the Unix utility dd, measures both sequential and
// random I/O, optionally generates patterns on output and checks them on
// input" (paper §6.9 / §2).
//
// This is the library form; examples/lmdd_main.cc provides the CLI.
#ifndef LMBENCHPP_SRC_SIMDISK_LMDD_H_
#define LMBENCHPP_SRC_SIMDISK_LMDD_H_

#include <cstdint>
#include <optional>

#include "src/core/clock.h"
#include "src/simdisk/block_device.h"

namespace lmb::simdisk {

enum class AccessPattern {
  kSequential,
  kRandom,  // uniformly random block positions (seeded, reproducible)
};

struct LmddConfig {
  std::uint64_t block_bytes = 8192;
  // Blocks to move; 0 = run until the input (or output) is exhausted.
  std::uint64_t count = 0;
  // Input/output block offsets (dd's skip= and seek=).
  std::uint64_t skip = 0;
  std::uint64_t seek = 0;
  AccessPattern pattern = AccessPattern::kSequential;
  std::uint32_t seed = 42;  // for kRandom
  // Write a deterministic pattern instead of copying input (out only), and
  // verify it on the way back in (in only).
  bool generate_pattern = false;
  bool check_pattern = false;
  // fsync/flush the output when done, and include it in the timing.
  bool sync_at_end = false;
};

struct LmddResult {
  std::uint64_t bytes_moved = 0;
  std::uint64_t blocks_moved = 0;
  // Elapsed time on the supplied clock (virtual for SimDisk runs).
  Nanos elapsed = 0;
  double mb_per_sec = 0.0;
  // Pattern verification outcome; meaningful only with check_pattern.
  std::uint64_t pattern_errors = 0;
};

// Fills `buf` with the deterministic lmdd pattern for a given device offset
// (8-byte little-endian offset counters, so any misplacement is detectable).
void fill_pattern(std::uint64_t offset, void* buf, size_t len);

// Counts pattern mismatches in `buf` against the expected pattern.
std::uint64_t check_pattern_errors(std::uint64_t offset, const void* buf, size_t len);

// Copies between devices.  Either side may be null:
//   in == nullptr  -> requires generate_pattern (internal source)
//   out == nullptr -> data is discarded (internal sink), optionally checked.
// Throws std::invalid_argument on inconsistent configs.
LmddResult lmdd_run(BlockDevice* in, BlockDevice* out, const LmddConfig& config,
                    const Clock& clock = WallClock::instance());

}  // namespace lmb::simdisk

#endif  // LMBENCHPP_SRC_SIMDISK_LMDD_H_
