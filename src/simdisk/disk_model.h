// Parametric SCSI-disk service-time model.
//
// Substitute for the raw SCSI drives the paper measured (§6.9): geometry
// (cylinders/heads/sectors), a square-root seek curve, rotational latency,
// media transfer rate, a per-command controller overhead, and — crucially
// for Table 17 — a track read-ahead buffer: "most disks have 32-128K
// read-ahead buffers and ... can read ahead faster than the processor can
// request the chunks of data."
#ifndef LMBENCHPP_SRC_SIMDISK_DISK_MODEL_H_
#define LMBENCHPP_SRC_SIMDISK_DISK_MODEL_H_

#include <cstdint>

#include "src/core/clock.h"

namespace lmb::simdisk {

struct DiskGeometry {
  std::uint32_t sector_bytes = 512;
  std::uint32_t sectors_per_track = 128;   // 64 KB per track
  std::uint32_t heads = 8;                 // tracks per cylinder
  std::uint32_t cylinders = 2048;          // ~1 GB total

  std::uint64_t sectors_per_cylinder() const {
    return static_cast<std::uint64_t>(sectors_per_track) * heads;
  }
  std::uint64_t total_sectors() const { return sectors_per_cylinder() * cylinders; }
  std::uint64_t total_bytes() const { return total_sectors() * sector_bytes; }
  std::uint64_t track_bytes() const {
    return static_cast<std::uint64_t>(sectors_per_track) * sector_bytes;
  }

  struct Chs {
    std::uint32_t cylinder;
    std::uint32_t head;
    std::uint32_t sector;
  };
  // Logical-block address -> cylinder/head/sector.  Throws when out of range.
  Chs to_chs(std::uint64_t lba) const;

  // True when the geometry is internally consistent and non-degenerate.
  bool valid() const;
};

struct DiskTimingParams {
  double rpm = 7200.0;
  // Square-root seek curve: seek(d) = min + (max - min) * sqrt(d / max_d).
  Nanos seek_min = 1 * kMillisecond;   // track-to-track
  Nanos seek_max = 15 * kMillisecond;  // full stroke
  // Sustained media rate (paper footnote 5 takes 6 MB/s as disk speed).
  double media_mb_per_sec = 6.0;
  // SCSI bus burst rate for track-buffer hits (fast-SCSI-2 era: 10 MB/s).
  double bus_mb_per_sec = 10.0;
  // Controller command processing per request.
  Nanos command_overhead = 300 * kMicrosecond;

  // Zoned-bit recording: when inner_media_mb_per_sec > 0, the media rate
  // falls linearly from media_mb_per_sec at cylinder 0 (outer edge) to
  // inner_media_mb_per_sec at the last cylinder — period disks stored more
  // sectors on outer tracks.  0 disables zoning (uniform rate).
  double inner_media_mb_per_sec = 0.0;

  // Write-behind cache: when > 0, writes complete at bus speed until the
  // cache fills; cached data destages to the media at the media rate in the
  // background.  0 = write-through (every write waits for the platters).
  std::uint64_t write_cache_bytes = 0;

  Nanos rotation_time() const {
    return static_cast<Nanos>(60.0 * kSecond / rpm);
  }
  // Average rotational latency = half a revolution.
  Nanos avg_rotational_latency() const { return rotation_time() / 2; }

  // Seek time between two cylinders (0 when equal).
  Nanos seek_time(std::uint32_t from_cyl, std::uint32_t to_cyl, std::uint32_t max_cyl) const;

  // Media rate at `cylinder` (zoning-aware); equals media_mb_per_sec when
  // zoning is disabled.
  double media_rate_at(std::uint32_t cylinder, std::uint32_t max_cylinder) const;

  // Media transfer time for `bytes`; zoning-aware when a cylinder is given.
  Nanos media_transfer_time(std::uint64_t bytes) const;
  Nanos media_transfer_time_at(std::uint64_t bytes, std::uint32_t cylinder,
                               std::uint32_t max_cylinder) const;
  // Bus transfer time for `bytes` (track-buffer hits).
  Nanos bus_transfer_time(std::uint64_t bytes) const;
};

}  // namespace lmb::simdisk

#endif  // LMBENCHPP_SRC_SIMDISK_DISK_MODEL_H_
