#include "src/simdisk/lmdd.h"

#include <algorithm>
#include <cstring>
#include <random>
#include <stdexcept>
#include <vector>

#include "src/core/timing.h"

namespace lmb::simdisk {

namespace {

// Each aligned 8-byte word holds a mix of the device offset of its own first
// byte; the multiplicative mix spreads the offset into every byte lane so
// that any misplacement (wrong block, wrong shift) corrupts ~all bytes.
inline std::uint8_t pattern_byte(std::uint64_t pos) {
  std::uint64_t word_base = pos & ~std::uint64_t{7};
  std::uint64_t mixed = word_base * 0x9E3779B97F4A7C15ull + 0xD1B54A32D192ED03ull;
  unsigned lane = static_cast<unsigned>(pos & 7);
  return static_cast<std::uint8_t>(mixed >> (8 * lane));
}

}  // namespace

void fill_pattern(std::uint64_t offset, void* buf, size_t len) {
  auto* p = static_cast<std::uint8_t*>(buf);
  for (size_t i = 0; i < len; ++i) {
    p[i] = pattern_byte(offset + i);
  }
}

std::uint64_t check_pattern_errors(std::uint64_t offset, const void* buf, size_t len) {
  const auto* p = static_cast<const std::uint8_t*>(buf);
  std::uint64_t errors = 0;
  for (size_t i = 0; i < len; ++i) {
    if (p[i] != pattern_byte(offset + i)) {
      ++errors;
    }
  }
  return errors;
}

namespace {

void validate(BlockDevice* in, BlockDevice* out, const LmddConfig& config) {
  if (config.block_bytes == 0) {
    throw std::invalid_argument("lmdd: block size must be positive");
  }
  if (in == nullptr && !config.generate_pattern) {
    throw std::invalid_argument("lmdd: no input device and no pattern generator");
  }
  if (in == nullptr && out == nullptr) {
    throw std::invalid_argument("lmdd: nothing to do (no input, no output)");
  }
  if (config.check_pattern && in == nullptr) {
    throw std::invalid_argument("lmdd: check_pattern requires an input device");
  }
  if (config.count == 0 && in == nullptr && out == nullptr) {
    throw std::invalid_argument("lmdd: unbounded run with internal endpoints");
  }
}

std::uint64_t device_block_capacity(BlockDevice* dev, std::uint64_t block, std::uint64_t start) {
  if (dev == nullptr) {
    return UINT64_MAX;
  }
  std::uint64_t total_blocks = dev->size_bytes() / block;
  return total_blocks > start ? total_blocks - start : 0;
}

}  // namespace

LmddResult lmdd_run(BlockDevice* in, BlockDevice* out, const LmddConfig& config,
                    const Clock& clock) {
  validate(in, out, config);
  std::uint64_t block = config.block_bytes;

  // Bound the block count by device capacities.
  std::uint64_t max_blocks = std::min(device_block_capacity(in, block, config.skip),
                                      device_block_capacity(out, block, config.seek));
  std::uint64_t blocks = config.count == 0 ? max_blocks : std::min(config.count, max_blocks);
  if (blocks == UINT64_MAX) {
    throw std::invalid_argument("lmdd: count required when both endpoints are internal");
  }

  // Random mode visits a seeded uniform shuffle of the block positions it
  // would have visited sequentially.
  std::vector<std::uint64_t> order;
  if (config.pattern == AccessPattern::kRandom) {
    order.resize(blocks);
    for (std::uint64_t i = 0; i < blocks; ++i) {
      order[i] = i;
    }
    std::mt19937 rng(config.seed);
    std::shuffle(order.begin(), order.end(), rng);
  }

  std::vector<char> buf(block);
  LmddResult result;

  Nanos start = clock.now();
  for (std::uint64_t i = 0; i < blocks; ++i) {
    std::uint64_t logical = config.pattern == AccessPattern::kRandom ? order[i] : i;
    std::uint64_t in_off = (config.skip + logical) * block;
    std::uint64_t out_off = (config.seek + logical) * block;

    size_t got = block;
    if (in != nullptr) {
      got = in->read(in_off, buf.data(), block);
      if (got == 0) {
        break;  // end of input
      }
      if (config.check_pattern) {
        result.pattern_errors += check_pattern_errors(in_off, buf.data(), got);
      }
    } else {
      fill_pattern(out_off, buf.data(), block);
    }

    if (out != nullptr) {
      size_t put = out->write(out_off, buf.data(), got);
      if (put < got) {
        result.bytes_moved += put;
        ++result.blocks_moved;
        break;  // end of output
      }
    }
    result.bytes_moved += got;
    ++result.blocks_moved;
    if (got < block) {
      break;  // short final block
    }
  }
  if (config.sync_at_end && out != nullptr) {
    out->flush();
  }
  result.elapsed = clock.now() - start;
  result.mb_per_sec = mb_per_sec(static_cast<double>(result.bytes_moved),
                                 static_cast<double>(std::max<Nanos>(result.elapsed, 1)));
  return result;
}

}  // namespace lmb::simdisk
