// BlockDevice backed by a real file (pread/pwrite) — lmdd's file mode.
#ifndef LMBENCHPP_SRC_SIMDISK_FILE_DISK_H_
#define LMBENCHPP_SRC_SIMDISK_FILE_DISK_H_

#include <string>

#include "src/simdisk/block_device.h"
#include "src/sys/unique_fd.h"

namespace lmb::simdisk {

class FileDisk final : public BlockDevice {
 public:
  // Opens an existing file read-write.  `fixed_size` > 0 pre-extends the
  // file (creating it if needed); 0 uses the current file length.
  explicit FileDisk(const std::string& path, std::uint64_t fixed_size = 0);

  size_t read(std::uint64_t offset, void* buf, size_t len) override;
  size_t write(std::uint64_t offset, const void* buf, size_t len) override;
  std::uint64_t size_bytes() const override { return size_; }
  void flush() override;

 private:
  sys::UniqueFd fd_;
  std::uint64_t size_ = 0;
};

}  // namespace lmb::simdisk

#endif  // LMBENCHPP_SRC_SIMDISK_FILE_DISK_H_
