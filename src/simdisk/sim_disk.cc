#include "src/simdisk/sim_disk.h"

#include <algorithm>
#include <cstring>
#include <stdexcept>

namespace lmb::simdisk {

SimDisk::SimDisk(DiskGeometry geometry, DiskTimingParams timing, VirtualClock& clock)
    : geometry_(geometry), timing_(timing), clock_(&clock) {
  if (!geometry_.valid()) {
    throw std::invalid_argument("SimDisk: invalid geometry");
  }
}

bool SimDisk::in_track_buffer(std::uint64_t offset, size_t len) const {
  return offset >= buffer_start_ && offset + len <= buffer_end_;
}

void SimDisk::access_media(std::uint64_t offset, size_t len, bool is_read) {
  ++stats_.media_accesses;
  auto chs = geometry_.to_chs(offset / geometry_.sector_bytes);

  Nanos service = 0;
  if (chs.cylinder != current_cylinder_) {
    service += timing_.seek_time(current_cylinder_, chs.cylinder, geometry_.cylinders);
    ++stats_.seeks;
    current_cylinder_ = chs.cylinder;
  }
  service += timing_.avg_rotational_latency();

  if (is_read) {
    // The drive streams the rest of the track into its buffer (read-ahead);
    // the host transfer happens at bus speed off the buffer.
    std::uint64_t track_start = offset - offset % geometry_.track_bytes();
    std::uint64_t track_end = track_start + geometry_.track_bytes();
    std::uint64_t fill_end = std::max<std::uint64_t>(offset + len, track_end);
    service += timing_.media_transfer_time_at(fill_end - offset, chs.cylinder,
                                              geometry_.cylinders);
    service += timing_.bus_transfer_time(len);
    buffer_start_ = offset;
    buffer_end_ = fill_end;
  } else {
    service += timing_.media_transfer_time_at(len, chs.cylinder, geometry_.cylinders);
    // Writes invalidate any overlapping buffered data.
    if (offset < buffer_end_ && offset + len > buffer_start_) {
      buffer_start_ = buffer_end_ = 0;
    }
  }

  clock_->advance(service);
}

void SimDisk::drain_write_cache() {
  Nanos now = clock_->now();
  if (now > cache_drain_ts_ && cache_used_ > 0) {
    double drained = static_cast<double>(now - cache_drain_ts_) / kSecond *
                     timing_.media_mb_per_sec * 1024.0 * 1024.0;
    cache_used_ = drained >= static_cast<double>(cache_used_)
                      ? 0
                      : cache_used_ - static_cast<std::uint64_t>(drained);
  }
  cache_drain_ts_ = now;
}

void SimDisk::flush() {
  drain_write_cache();
  if (cache_used_ > 0) {
    clock_->advance(timing_.media_transfer_time(cache_used_));
    cache_used_ = 0;
    cache_drain_ts_ = clock_->now();
  }
}

std::vector<char>& SimDisk::chunk_for(std::uint64_t index) {
  auto& chunk = chunks_[index];
  if (chunk.empty()) {
    chunk.assign(kChunkBytes, 0);
  }
  return chunk;
}

void SimDisk::copy_out(std::uint64_t offset, void* buf, size_t len) {
  char* out = static_cast<char*>(buf);
  while (len > 0) {
    std::uint64_t index = offset / kChunkBytes;
    size_t within = static_cast<size_t>(offset % kChunkBytes);
    size_t n = std::min(len, kChunkBytes - within);
    auto it = chunks_.find(index);
    if (it == chunks_.end()) {
      std::memset(out, 0, n);
    } else {
      std::memcpy(out, it->second.data() + within, n);
    }
    out += n;
    offset += n;
    len -= n;
  }
}

void SimDisk::copy_in(std::uint64_t offset, const void* buf, size_t len) {
  const char* in = static_cast<const char*>(buf);
  while (len > 0) {
    std::uint64_t index = offset / kChunkBytes;
    size_t within = static_cast<size_t>(offset % kChunkBytes);
    size_t n = std::min(len, kChunkBytes - within);
    std::memcpy(chunk_for(index).data() + within, in, n);
    in += n;
    offset += n;
    len -= n;
  }
}

size_t SimDisk::read(std::uint64_t offset, void* buf, size_t len) {
  std::uint64_t cap = size_bytes();
  if (offset >= cap) {
    return 0;
  }
  len = static_cast<size_t>(std::min<std::uint64_t>(len, cap - offset));
  if (len == 0) {
    return 0;
  }
  ++stats_.reads;

  Nanos start = clock_->now();
  clock_->advance(timing_.command_overhead);
  if (in_track_buffer(offset, len)) {
    ++stats_.buffer_hits;
    clock_->advance(timing_.bus_transfer_time(len));
  } else {
    access_media(offset, len, /*is_read=*/true);
  }
  stats_.busy_time += clock_->now() - start;
  copy_out(offset, buf, len);
  return len;
}

size_t SimDisk::write(std::uint64_t offset, const void* buf, size_t len) {
  std::uint64_t cap = size_bytes();
  if (offset >= cap) {
    return 0;
  }
  len = static_cast<size_t>(std::min<std::uint64_t>(len, cap - offset));
  if (len == 0) {
    return 0;
  }
  ++stats_.writes;
  Nanos start = clock_->now();
  clock_->advance(timing_.command_overhead);

  if (timing_.write_cache_bytes > 0) {
    // Write-behind: accept into the cache at bus speed; destage happens in
    // background at the media rate.  A full cache throttles to drain speed.
    drain_write_cache();
    if (cache_used_ + len > timing_.write_cache_bytes) {
      std::uint64_t need = cache_used_ + len - timing_.write_cache_bytes;
      clock_->advance(timing_.media_transfer_time(need));
      drain_write_cache();
      if (cache_used_ + len > timing_.write_cache_bytes) {
        cache_used_ = timing_.write_cache_bytes > len ? timing_.write_cache_bytes - len : 0;
      }
    }
    cache_used_ += len;
    ++stats_.buffer_hits;  // cache-absorbed writes count as buffer hits
    clock_->advance(timing_.bus_transfer_time(len));
    // Cached writes still invalidate overlapping read-ahead data.
    if (offset < buffer_end_ && offset + len > buffer_start_) {
      buffer_start_ = buffer_end_ = 0;
    }
  } else {
    access_media(offset, len, /*is_read=*/false);
  }
  stats_.busy_time += clock_->now() - start;
  copy_in(offset, buf, len);
  return len;
}

}  // namespace lmb::simdisk
