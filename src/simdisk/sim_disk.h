// The simulated SCSI disk: data + service-time model on a virtual clock.
#ifndef LMBENCHPP_SRC_SIMDISK_SIM_DISK_H_
#define LMBENCHPP_SRC_SIMDISK_SIM_DISK_H_

#include <memory>
#include <unordered_map>
#include <vector>

#include "src/core/virtual_clock.h"
#include "src/simdisk/block_device.h"
#include "src/simdisk/disk_model.h"

namespace lmb::simdisk {

// Per-disk counters (exposed so benches and tests can verify the model's
// behaviour, e.g. "all 512-byte sequential reads after the first hit the
// track buffer").
struct DiskStats {
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t buffer_hits = 0;    // reads served from the track buffer
  std::uint64_t media_accesses = 0; // reads/writes that touched the platters
  std::uint64_t seeks = 0;          // media accesses that moved the arm
  Nanos busy_time = 0;              // virtual time spent servicing requests
};

// A simulated disk.  Reads and writes advance the supplied VirtualClock by
// the modeled service time; data is stored sparsely (unwritten regions read
// as zeros).  Not an I/O benchmark of the host — a deterministic substitute
// for the raw device the paper's lmdd drives.
class SimDisk final : public BlockDevice {
 public:
  SimDisk(DiskGeometry geometry, DiskTimingParams timing, VirtualClock& clock);

  // BlockDevice:
  size_t read(std::uint64_t offset, void* buf, size_t len) override;
  size_t write(std::uint64_t offset, const void* buf, size_t len) override;
  std::uint64_t size_bytes() const override { return geometry_.total_bytes(); }
  // Waits (in virtual time) for the write-behind cache to destage fully.
  void flush() override;

  // Bytes currently pending destage in the write-behind cache.
  std::uint64_t write_cache_used() const { return cache_used_; }

  const DiskStats& stats() const { return stats_; }
  void reset_stats() { stats_ = DiskStats{}; }

  const DiskGeometry& geometry() const { return geometry_; }
  const DiskTimingParams& timing() const { return timing_; }

  // Current arm position (cylinder), for tests.
  std::uint32_t current_cylinder() const { return current_cylinder_; }

 private:
  // Service-time accounting for one media access starting at `offset`
  // spanning `len` bytes; updates arm position and track buffer.
  void access_media(std::uint64_t offset, size_t len, bool is_read);

  // Credits background destage progress up to the current virtual time.
  void drain_write_cache();

  bool in_track_buffer(std::uint64_t offset, size_t len) const;

  // Sparse backing store in 64 KB chunks.
  static constexpr size_t kChunkBytes = 64 * 1024;
  std::vector<char>& chunk_for(std::uint64_t index);
  void copy_out(std::uint64_t offset, void* buf, size_t len);
  void copy_in(std::uint64_t offset, const void* buf, size_t len);

  DiskGeometry geometry_;
  DiskTimingParams timing_;
  VirtualClock* clock_;
  DiskStats stats_;

  std::uint32_t current_cylinder_ = 0;
  // Track read-ahead buffer: [buffer_start_, buffer_end_) of device offsets.
  std::uint64_t buffer_start_ = 0;
  std::uint64_t buffer_end_ = 0;
  // Write-behind cache state.
  std::uint64_t cache_used_ = 0;
  Nanos cache_drain_ts_ = 0;

  std::unordered_map<std::uint64_t, std::vector<char>> chunks_;
};

}  // namespace lmb::simdisk

#endif  // LMBENCHPP_SRC_SIMDISK_SIM_DISK_H_
