// Block-device abstraction shared by the simulated SCSI disk, real files,
// and lmdd's internal pattern endpoints.
#ifndef LMBENCHPP_SRC_SIMDISK_BLOCK_DEVICE_H_
#define LMBENCHPP_SRC_SIMDISK_BLOCK_DEVICE_H_

#include <cstddef>
#include <cstdint>

namespace lmb::simdisk {

class BlockDevice {
 public:
  virtual ~BlockDevice() = default;

  // Reads up to `len` bytes at `offset`.  Returns bytes read; 0 at or past
  // end of device.  Throws on hard errors.
  virtual size_t read(std::uint64_t offset, void* buf, size_t len) = 0;

  // Writes `len` bytes at `offset`.  Returns bytes written (short only at
  // end of device).
  virtual size_t write(std::uint64_t offset, const void* buf, size_t len) = 0;

  // Device capacity in bytes.
  virtual std::uint64_t size_bytes() const = 0;

  // Persists buffered writes (no-op by default).
  virtual void flush() {}
};

}  // namespace lmb::simdisk

#endif  // LMBENCHPP_SRC_SIMDISK_BLOCK_DEVICE_H_
