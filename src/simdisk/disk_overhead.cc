#include "src/simdisk/disk_overhead.h"

#include <stdexcept>
#include <vector>

#include "src/core/do_not_optimize.h"
#include "src/core/registry.h"
#include "src/core/virtual_clock.h"
#include "src/report/table.h"
#include "src/simdisk/sim_disk.h"

namespace lmb::simdisk {

DiskOverheadResult measure_disk_overhead(const DiskOverheadConfig& config) {
  if (config.requests < 100) {
    throw std::invalid_argument("DiskOverheadConfig: need at least 100 requests");
  }
  std::uint64_t span = static_cast<std::uint64_t>(config.requests) * config.request_bytes;
  if (span > config.geometry.total_bytes()) {
    throw std::invalid_argument("DiskOverheadConfig: request stream exceeds disk capacity");
  }

  VirtualClock vclock;
  SimDisk disk(config.geometry, config.timing, vclock);

  std::vector<char> buf(config.request_bytes);

  // Warm one request so the arm is positioned and the buffer primed, then
  // reset stats so the steady state is measured.
  disk.read(0, buf.data(), buf.size());
  disk.reset_stats();
  Nanos vstart = vclock.now();

  StopWatch wall;
  std::uint64_t offset = config.request_bytes;  // continue sequentially
  for (std::uint64_t i = 1; i < config.requests; ++i) {
    size_t n = disk.read(offset, buf.data(), buf.size());
    do_not_optimize(buf[0]);
    offset += n;
  }
  double host_ns = static_cast<double>(wall.elapsed());
  double device_ns = static_cast<double>(vclock.now() - vstart);
  std::uint64_t issued = config.requests - 1;

  DiskOverheadResult result;
  result.host_us_per_op = host_ns / 1e3 / static_cast<double>(issued);
  result.device_us_per_op = device_ns / 1e3 / static_cast<double>(issued);
  const DiskStats& stats = disk.stats();
  result.buffer_hit_rate =
      stats.reads > 0 ? static_cast<double>(stats.buffer_hits) / static_cast<double>(stats.reads)
                      : 0.0;
  result.max_ops_per_sec = result.host_us_per_op > 0 ? 1e6 / result.host_us_per_op : 0.0;
  return result;
}

namespace {

const BenchmarkRegistrar registrar{{
    .name = "disk_overhead",
    .category = "disk",
    .description = "per-request overhead of sequential 512B raw reads (Table 17)",
    .run =
        [](const Options& opts) {
          DiskOverheadConfig cfg =
              opts.quick() ? DiskOverheadConfig::quick() : DiskOverheadConfig{};
          DiskOverheadResult r = measure_disk_overhead(cfg);
          RunResult out;
          out.add("host_us", r.host_us_per_op, "us")
              .add("device_us", r.device_us_per_op, "us")
              .add("hit_pct", r.buffer_hit_rate * 100, "%");
          out.display = "host " + report::format_number(r.host_us_per_op, 2) +
                        " us/op, device " + report::format_number(r.device_us_per_op, 1) +
                        " us/op, buffer hits " +
                        report::format_number(r.buffer_hit_rate * 100, 1) + "%";
          return out;
        },
}};

}  // namespace

}  // namespace lmb::simdisk
