#include "src/simdisk/disk_model.h"

#include <cmath>
#include <stdexcept>

namespace lmb::simdisk {

DiskGeometry::Chs DiskGeometry::to_chs(std::uint64_t lba) const {
  if (lba >= total_sectors()) {
    throw std::out_of_range("lba beyond device");
  }
  Chs chs;
  chs.cylinder = static_cast<std::uint32_t>(lba / sectors_per_cylinder());
  std::uint64_t in_cyl = lba % sectors_per_cylinder();
  chs.head = static_cast<std::uint32_t>(in_cyl / sectors_per_track);
  chs.sector = static_cast<std::uint32_t>(in_cyl % sectors_per_track);
  return chs;
}

bool DiskGeometry::valid() const {
  return sector_bytes >= 512 && sector_bytes % 512 == 0 && sectors_per_track > 0 && heads > 0 &&
         cylinders > 0;
}

Nanos DiskTimingParams::seek_time(std::uint32_t from_cyl, std::uint32_t to_cyl,
                                  std::uint32_t max_cyl) const {
  if (from_cyl == to_cyl) {
    return 0;
  }
  std::uint32_t dist = from_cyl > to_cyl ? from_cyl - to_cyl : to_cyl - from_cyl;
  double frac = max_cyl > 1 ? static_cast<double>(dist) / (max_cyl - 1) : 1.0;
  return seek_min + static_cast<Nanos>(static_cast<double>(seek_max - seek_min) * std::sqrt(frac));
}

double DiskTimingParams::media_rate_at(std::uint32_t cylinder, std::uint32_t max_cylinder) const {
  if (inner_media_mb_per_sec <= 0 || max_cylinder <= 1) {
    return media_mb_per_sec;
  }
  double frac = static_cast<double>(cylinder) / static_cast<double>(max_cylinder - 1);
  return media_mb_per_sec + (inner_media_mb_per_sec - media_mb_per_sec) * frac;
}

Nanos DiskTimingParams::media_transfer_time(std::uint64_t bytes) const {
  if (media_mb_per_sec <= 0) {
    throw std::invalid_argument("media rate must be positive");
  }
  return static_cast<Nanos>(static_cast<double>(bytes) / (media_mb_per_sec * 1024.0 * 1024.0) *
                            kSecond);
}

Nanos DiskTimingParams::media_transfer_time_at(std::uint64_t bytes, std::uint32_t cylinder,
                                               std::uint32_t max_cylinder) const {
  double rate = media_rate_at(cylinder, max_cylinder);
  if (rate <= 0) {
    throw std::invalid_argument("media rate must be positive");
  }
  return static_cast<Nanos>(static_cast<double>(bytes) / (rate * 1024.0 * 1024.0) * kSecond);
}

Nanos DiskTimingParams::bus_transfer_time(std::uint64_t bytes) const {
  if (bus_mb_per_sec <= 0) {
    throw std::invalid_argument("bus rate must be positive");
  }
  return static_cast<Nanos>(static_cast<double>(bytes) / (bus_mb_per_sec * 1024.0 * 1024.0) *
                            kSecond);
}

}  // namespace lmb::simdisk
