#include "src/svc/bench_service.h"

#include <algorithm>
#include <filesystem>

#include "src/core/env.h"
#include "src/core/suite_runner.h"
#include "src/db/baseline_store.h"
#include "src/db/cal_store.h"
#include "src/db/result_set.h"
#include "src/db/trend_store.h"
#include "src/obs/run_env.h"
#include "src/report/trace_io.h"
#include "src/sys/fdio.h"

namespace lmb::svc {

RunRequest RunRequest::from_options(const Options& opts) {
  RunRequest req;
  req.category = opts.get_string("category", "");
  req.names = opts.get_list("only");
  req.jobs = static_cast<int>(opts.get_int("jobs", 1));
  req.timeout_sec = opts.get_double("timeout", 0.0);
  req.counters = opts.get_bool("counters");
  try {
    req.clock_source = parse_clock_source(opts.get_string("clock", "auto"));
  } catch (const std::invalid_argument& e) {
    throw UsageError(e.what());
  }
  req.nanoscale = opts.get_bool("nanoscale");
  req.bench_options = opts;

  req.use_cal_cache = !opts.get_bool("no-cal-cache");
  req.cal_cache_path = opts.get_string("cal-cache", ".lmbenchpp-cal.db");

  req.trace_path = opts.get_string("trace", "");
  req.trace_chrome_path = opts.get_string("trace-chrome", "");
  req.collect_trace = !req.trace_path.empty() || !req.trace_chrome_path.empty();

  req.out_path = opts.get_string("out", "");
  req.json_path = opts.get_string("json", "");
  req.csv_path = opts.get_string("csv", "");

  req.baseline_path = opts.get_string("baseline", "");
  req.gate = opts.has("gate");
  // --gate is a flag ("true") or carries the significance floor in percent.
  if (req.gate && opts.get_string("gate", "") != "true") {
    req.gate_floor_pct = opts.get_double("gate", 5.0);
  }
  req.assume_noise_pct = opts.get_double("assume-noise", 0.0);
  req.save_baseline = opts.get_bool("save-baseline");
  req.compare_json_path = opts.get_string("compare-json", "");

  req.trend_dir = opts.get_string("trend-store", "");
  return req;
}

BenchService::BenchService(const Registry& registry) : registry_(&registry) {}

int BenchService::completed_runs() const {
  std::lock_guard<std::mutex> lock(state_mu_);
  return completed_;
}

CalibrationCache* BenchService::cache_for(const std::string& path) {
  std::lock_guard<std::mutex> lock(state_mu_);
  std::unique_ptr<CalibrationCache>& slot = cal_caches_[path];
  if (!slot) {
    slot = std::make_unique<CalibrationCache>();
  }
  return slot.get();
}

namespace {

// The post-suite baseline comparison (run_suite --baseline/--gate), writing
// its findings into `artifacts` instead of printing.
void compare_against_baseline(const RunRequest& request, RunArtifacts& artifacts) {
  const std::string& baseline_path = request.baseline_path;
  // An existing regular file is an explicit results JSON; anything else
  // (existing directory, or a path not there yet) is a baseline store —
  // the first gated CI run must be able to create it.
  bool is_dir = !std::filesystem::is_regular_file(baseline_path);

  std::optional<report::ResultBatch> base;
  if (is_dir) {
    base = db::BaselineStore(baseline_path).load_latest();
  } else {
    base = db::BaselineStore::load(baseline_path);  // throws if bad
  }
  if (!base.has_value()) {
    // Empty store: this run becomes the baseline; nothing to gate yet.
    artifacts.baseline_established = true;
    artifacts.baseline_saved_path = db::BaselineStore(baseline_path).save(artifacts.batch);
    return;
  }

  report::CompareThresholds thresholds;
  if (request.gate_floor_pct.has_value()) {
    thresholds.floor_rel = *request.gate_floor_pct / 100.0;
  }
  thresholds.fallback_noise_rel = request.assume_noise_pct / 100.0;

  artifacts.compare = report::compare_batches(*base, artifacts.batch, thresholds);

  if (!request.compare_json_path.empty()) {
    sys::write_file(request.compare_json_path, report::compare_to_json(*artifacts.compare));
  }
  if (is_dir && request.save_baseline) {
    artifacts.baseline_saved_path = db::BaselineStore(baseline_path).save(artifacts.batch);
  }
  artifacts.gate_failed = request.gate && artifacts.compare->has_regressions();
}

}  // namespace

RunArtifacts BenchService::run(const RunRequest& request, const ProgressFn& progress) {
  std::lock_guard<std::mutex> run_lock(run_mu_);

  // Validate the selection before anything runs: a typo must be a usage
  // error, not a silent zero-benchmark run.
  int total = 0;
  if (!request.names.empty()) {
    for (const std::string& name : request.names) {
      if (registry_->find(name) == nullptr) {
        throw UsageError("no such benchmark '" + name + "' (try --list)");
      }
    }
    total = static_cast<int>(request.names.size());
  } else {
    total = static_cast<int>(registry_->list(request.category).size());
    if (total == 0 && !request.category.empty()) {
      throw UsageError("no benchmarks in category '" + request.category + "' (try --list)");
    }
  }

  SystemInfo info = query_system_info();
  RunArtifacts artifacts;
  artifacts.batch.system = info.label();

  // Provenance snapshot + noise warnings; the snapshot rides along in the
  // batch so lmbench_compare and the trend store can diff environments.
  obs::RunEnvironment run_env = obs::capture_run_environment();
  artifacts.batch.environment = run_env;

  // Resolve the requested time source against this host.  An unhonorable
  // --clock=tsc becomes a startup warning; the per-measurement clock_source
  // field records what actually ran.
  SelectedClock selected = select_clock(request.clock_source);

  SuiteConfig config;
  config.category = request.category;
  config.names = request.names;
  config.jobs = request.jobs;
  config.timeout_sec = request.timeout_sec;
  config.options = request.bench_options;
  config.counters = request.counters;
  config.clock = selected.clock;
  config.nanoscale = request.nanoscale;

  obs::TraceSink* sink = nullptr;
  if (request.collect_trace) {
    // One sink per traced run, owned by the service: an abandoned
    // (timed-out) benchmark thread may emit events after run() returns.
    std::lock_guard<std::mutex> lock(state_mu_);
    trace_sinks_.push_back(std::make_unique<obs::TraceSink>());
    sink = trace_sinks_.back().get();
    config.trace = sink;
  }

  CalibrationCache* cal_cache = nullptr;
  std::string host_sig = host_signature(info);
  size_t cal_available = 0;
  if (request.use_cal_cache) {
    cal_cache = cache_for(request.cal_cache_path);
    if (cal_cache->size() == 0) {
      db::load_calibration_cache(request.cal_cache_path, host_sig, *cal_cache);
    }
    cal_available = cal_cache->size();
    config.cal_cache = cal_cache;
    // Seed the selected clock's persisted read-overhead (if a prior run
    // measured it) so this run skips the startup probe.  Must happen before
    // the first overhead_ns() call — the value is memoized per process.
    if (std::optional<CalEntry> seeded =
            cal_cache->find(clock_overhead_cache_key(selected.source));
        seeded.has_value() && seeded->iterations > 0) {
      seed_clock_overhead(selected.source, static_cast<Nanos>(seeded->iterations));
    }
  }
  artifacts.cal_cache_used = request.use_cal_cache;
  artifacts.cal_warm = cal_available > 0;
  const int cal_hits_before = cal_cache != nullptr ? cal_cache->hits() : 0;
  const int cal_misses_before = cal_cache != nullptr ? cal_cache->misses() : 0;

  auto emit = [&](const ServiceEvent& event) {
    if (progress) {
      progress(event);
    }
  };

  {
    ServiceEvent event;
    event.kind = ServiceEvent::Kind::kSuiteStart;
    event.system = info.label();
    event.total = total;
    event.cal_cache = request.use_cal_cache;
    event.cal_warm = artifacts.cal_warm;
    event.cal_path = request.cal_cache_path;
    event.warnings = run_env.warnings;
    if (selected.fell_back) {
      event.warnings.push_back("clock: --clock=tsc not honorable, using wall (" +
                               selected.fallback_reason + ")");
    }
    emit(event);
  }

  if (sink != nullptr) {
    obs::TraceArgs clock_args = {{"requested", clock_source_name(request.clock_source)},
                                 {"source", selected.source},
                                 {"fell_back", selected.fell_back ? "true" : "false"},
                                 {"overhead_ns", std::to_string(selected.clock->overhead_ns())},
                                 {"nanoscale", request.nanoscale ? "true" : "false"}};
    if (selected.source == "tsc") {
      clock_args.push_back({"tsc_mhz", std::to_string(TscClock::calibration().tsc_mhz)});
    }
    if (selected.fell_back) {
      clock_args.push_back({"fallback_reason", selected.fallback_reason});
    }
    sink->instant("clock", "select", std::move(clock_args));
  }

  SuiteRunner runner(*registry_);
  runner.set_progress([&](const SuiteEvent& suite_event) {
    ServiceEvent event;
    event.kind = suite_event.kind == SuiteEvent::Kind::kStart
                     ? ServiceEvent::Kind::kBenchStart
                     : ServiceEvent::Kind::kBenchFinish;
    event.index = suite_event.index;
    event.total = suite_event.total;
    event.name = suite_event.name;
    event.description = suite_event.description;
    event.result = suite_event.result;
    emit(event);
  });

  StopWatch suite_watch;
  artifacts.batch.results = runner.run(config);
  artifacts.total_wall_ms = static_cast<double>(suite_watch.elapsed()) / 1e6;

  if (cal_cache != nullptr) {
    artifacts.cal_hits = cal_cache->hits() - cal_hits_before;
    artifacts.cal_misses = cal_cache->misses() - cal_misses_before;
    // Persist this run's measured clock-read overhead (clamped to >= 1 so
    // the entry round-trips the store's positive-iterations rule) for the
    // next run to seed from.
    cal_cache->put(clock_overhead_cache_key(selected.source),
                   CalEntry{static_cast<std::uint64_t>(
                                std::max<Nanos>(selected.clock->overhead_ns(), 1)),
                            1});
    try {
      db::save_calibration_cache(request.cal_cache_path, host_sig, *cal_cache);
    } catch (const std::exception& e) {
      artifacts.cal_save_error = e.what();
    }
  }

  report::SuiteTiming timing;
  timing.total_wall_ms = artifacts.total_wall_ms;
  timing.jobs = request.jobs;
  timing.cal_cache = request.use_cal_cache;
  timing.cal_hits = artifacts.cal_hits;
  timing.cal_misses = artifacts.cal_misses;
  artifacts.batch.timing = timing;

  for (const RunResult& r : artifacts.batch.results) {
    if (!r.ok()) {
      ++artifacts.failed;
      continue;
    }
    artifacts.metric_count += r.metrics.size();
  }

  // Requested output files.
  if (!request.out_path.empty()) {
    db::ResultSet set(info.label());
    for (const RunResult& r : artifacts.batch.results) {
      if (!r.ok()) {
        continue;
      }
      for (const Metric& m : r.metrics) {
        set.set(r.name + "_" + m.key, m.value);
      }
    }
    db::ResultDatabase database;
    database.add(set);
    database.save(request.out_path);
  }
  if (!request.json_path.empty()) {
    sys::write_file(request.json_path, report::to_json(artifacts.batch));
  }
  if (!request.csv_path.empty()) {
    sys::write_file(request.csv_path, report::to_csv(artifacts.batch.results, &timing));
  }
  if (sink != nullptr) {
    artifacts.trace_events = sink->events();
    if (!request.trace_path.empty()) {
      sys::write_file(request.trace_path,
                      report::trace_to_json(artifacts.trace_events, info.label()));
    }
    if (!request.trace_chrome_path.empty()) {
      sys::write_file(request.trace_chrome_path,
                      report::trace_to_chrome(artifacts.trace_events));
    }
  }

  if (!request.baseline_path.empty()) {
    compare_against_baseline(request, artifacts);
  }

  if (!request.trend_dir.empty()) {
    artifacts.trend_seq = db::TrendStore(request.trend_dir).append(artifacts.batch);
  }

  {
    ServiceEvent event;
    event.kind = ServiceEvent::Kind::kSuiteEnd;
    event.total = total;
    event.total_wall_ms = artifacts.total_wall_ms;
    event.metric_count = artifacts.metric_count;
    event.failed = artifacts.failed;
    emit(event);
  }

  {
    std::lock_guard<std::mutex> lock(state_mu_);
    ++completed_;
  }
  return artifacts;
}

}  // namespace lmb::svc
