// lmbenchd wire protocol: length-prefixed JSON frames over a stream socket.
//
// Framing: a 4-byte big-endian unsigned length followed by that many bytes
// of UTF-8 JSON.  Length-prefixing (rather than newline-delimiting) lets
// payloads embed whole serialized result batches — which are pretty-printed
// multi-line JSON — without escaping games.
//
// Conversation: the client sends one request object `{"op": ...}` and
// reads response frames until the operation completes.  Every op except
// `submit` answers with exactly one frame; `submit` streams progress-event
// frames (`{"event": "suite_start" | "bench_start" | "bench_finish"}`)
// and terminates with `{"event": "done", ...}`.  Errors are in-band:
// `{"ok": false, "error": "..."}`.
//
// Ops:
//   submit    {"op":"submit","args":{flag:value,...}} — run_suite's flag
//             map, verbatim; the daemon rebuilds a RunRequest from it
//   status    {"op":"status"} -> queue depth, current job and benchmark
//             (with bench_index/bench_total suite progress), totals
//   results   {"op":"results"} -> newest completed lmbenchpp.results.v1
//             document (null before the first completion)
//   trend     {"op":"trend"[,"bench":...,"metric":...]} -> rendered trend
//             table + lmbenchpp.trend.v1 document from the daemon's store
//   watch     {"op":"watch"} -> `{"event":"watching"}` ack, then the
//             connection becomes a one-way telemetry stream: the daemon
//             pushes `{"event":"interval_stats",...}` frames (one per
//             closed --interval-ms latency window of any running load
//             benchmark, with window p50/p99/p999, rps and shard counters)
//             plus `bench_start`/`job_done` markers, until the client
//             disconnects or the daemon shuts down
//   shutdown  {"op":"shutdown"} -> ack, then the daemon exits its loop
#ifndef LMBENCHPP_SRC_SVC_WIRE_H_
#define LMBENCHPP_SRC_SVC_WIRE_H_

#include <cstdint>
#include <optional>
#include <string>

#include "src/report/json.h"

namespace lmb::svc {

// Protocol sanity bound; a frame this large is a bug or an attack, not a
// result batch.
inline constexpr std::uint32_t kMaxFrameBytes = 64u << 20;

// Writes one frame (length prefix + payload) to `fd`.  Throws SysError on
// I/O failure and std::invalid_argument when `payload` exceeds
// kMaxFrameBytes.
void write_frame(int fd, const std::string& payload);

// Reads one frame from `fd`.  Returns nullopt on a clean EOF at a frame
// boundary (peer closed); throws std::runtime_error on EOF mid-frame or an
// oversized length prefix, SysError on I/O failure.
std::optional<std::string> read_frame(int fd);

// read_frame with bounded waits.  `first_byte_timeout_ms` bounds the wait
// for the first byte of the length prefix (-1 = forever; legitimate for
// long-running ops whose next event may be minutes away).  `stall_timeout_ms`
// bounds every later byte gap: the daemon writes each frame with a single
// write(2), so once the first byte arrives the rest follows within
// milliseconds — a longer silence means the peer died mid-frame, and an
// unbounded read would block forever (the lmbench_client hang this exists
// to fix).  Throws SysError(ETIMEDOUT) on either timeout.
std::optional<std::string> read_frame_bounded(int fd, int first_byte_timeout_ms,
                                              int stall_timeout_ms);

// Convenience: parses a frame as JSON and checks it is an object.
// Throws std::invalid_argument on malformed payloads.
report::JsonValue parse_message(const std::string& payload);

// `{"ok":false,"error":<message>}` — the in-band failure frame.
std::string error_message(const std::string& message);

}  // namespace lmb::svc

#endif  // LMBENCHPP_SRC_SVC_WIRE_H_
