// lmbenchd: the suite pipeline as a long-running local service.
//
// A Daemon listens on a Unix-domain socket (filesystem permissions are the
// access control — benchmarking is a local, trusted affair, like the
// paper's loopback-only network benchmarks), speaks the length-prefixed
// JSON protocol in src/svc/wire.h, and executes submitted suite requests
// strictly one at a time through a shared BenchService — concurrent
// benchmark runs would time-share the machine they are trying to measure,
// so the job queue is FIFO by design.  Every completed batch is appended
// to the daemon's trend store (src/db/trend_store.h), building the run
// history the changepoint detector and `lmbench_trend` read.
//
// Threading: one accept loop, one short-lived thread per connection (frame
// parsing and quick ops), one executor draining the job queue.  A `submit`
// hands its connection to the executor, which streams progress events and
// the final result batch back over it; a client that disappears mid-run
// only loses its stream — the run completes and is stored regardless.
// A `watch` hands its connection to the watcher list: the daemon subscribes
// to obs::IntervalPublisher while running, and every interval frame a load
// benchmark publishes (--interval-ms) is fanned out to all watchers, so any
// client can tail a running job's latency windows live without being the
// submitter.
#ifndef LMBENCHPP_SRC_SVC_DAEMON_H_
#define LMBENCHPP_SRC_SVC_DAEMON_H_

#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "src/obs/interval_stream.h"
#include "src/report/json.h"
#include "src/svc/bench_service.h"
#include "src/sys/socket.h"

namespace lmb::svc {

struct DaemonConfig {
  std::string socket_path = "lmbenchd.sock";
  // Trend store directory; every completed batch is appended here.  ""
  // disables trend recording (the `trend` op then reports an error).
  std::string store_dir = "lmbench-trends";
  // Calibration cache used when a request does not name its own.
  std::string cal_cache_path = ".lmbenchpp-cal.db";
  // Log one line per lifecycle event to stderr.
  bool verbose = false;
  // Benchmark registry; nullptr = Registry::global().
  const Registry* registry = nullptr;
};

class Daemon {
 public:
  explicit Daemon(DaemonConfig config);
  ~Daemon();  // stop()

  Daemon(const Daemon&) = delete;
  Daemon& operator=(const Daemon&) = delete;

  // Binds the socket and spawns the accept + executor threads.  Throws
  // sys::SysError when the socket cannot be created.
  void start();

  // Blocks until a `shutdown` request (or stop()) ends the daemon.
  void wait();

  // Requests shutdown and joins every thread.  Idempotent; called by the
  // destructor.
  void stop();

  bool running() const;
  int completed_jobs() const;
  const std::string& socket_path() const { return config_.socket_path; }

 private:
  struct Job {
    long id = 0;
    sys::UnixStream stream;  // progress + result frames go here
    Options args;
  };

  void accept_loop();
  void executor_loop();
  void handle_connection(sys::UnixStream stream);
  void execute(Job job);
  std::string status_payload();
  std::string trend_payload(const report::JsonObject& request);
  // Best-effort frame send; a vanished client is not an error.
  static bool try_send(sys::UnixStream& stream, const std::string& payload);
  // Fan-out to every watch connection, dropping the ones that went away.
  void broadcast(const std::string& payload);
  // IntervalPublisher callback (runs on a load-gen worker thread).
  void on_interval(const obs::IntervalFrame& frame);
  void log(const std::string& line);

  DaemonConfig config_;
  BenchService service_;

  std::unique_ptr<sys::UnixListener> listener_;
  std::thread accept_thread_;
  std::thread executor_thread_;
  std::vector<std::thread> connection_threads_;

  mutable std::mutex mu_;
  std::condition_variable queue_cv_;
  std::condition_variable shutdown_cv_;
  std::deque<Job> queue_;
  bool stopping_ = false;
  bool started_ = false;
  long next_job_id_ = 1;
  std::string running_bench_;   // "" when idle
  long running_job_ = 0;        // 0 when idle
  int running_bench_index_ = 0;  // 0-based run-order position (== completed)
  int running_bench_total_ = 0;  // benchmarks in the running suite
  int completed_ = 0;
  std::string last_results_json_;  // newest completed lmbenchpp.results.v1

  // Watch connections; separate lock so telemetry fan-out (load-gen worker
  // threads) never contends with the job-queue mutex.
  std::mutex watch_mu_;
  std::vector<std::shared_ptr<sys::UnixStream>> watchers_;
  int interval_token_ = -1;  // IntervalPublisher subscription
};

}  // namespace lmb::svc

#endif  // LMBENCHPP_SRC_SVC_DAEMON_H_
