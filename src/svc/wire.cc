#include "src/svc/wire.h"

#include <cerrno>
#include <stdexcept>

#include "src/sys/error.h"
#include "src/sys/fdio.h"

namespace lmb::svc {

namespace {

// read_some with a deadline: waits for readability (EINTR-safe), then reads.
// Throws SysError(ETIMEDOUT) with `what` when nothing arrives in time.
size_t read_some_within(int fd, void* buf, size_t len, int timeout_ms, const char* what) {
  if (!sys::poll_readable(fd, timeout_ms)) {
    throw sys::SysError(what, ETIMEDOUT);
  }
  return sys::read_some(fd, buf, len);
}

}  // namespace

void write_frame(int fd, const std::string& payload) {
  if (payload.size() > kMaxFrameBytes) {
    throw std::invalid_argument("wire: frame too large: " + std::to_string(payload.size()));
  }
  const std::uint32_t len = static_cast<std::uint32_t>(payload.size());
  unsigned char prefix[4] = {
      static_cast<unsigned char>(len >> 24), static_cast<unsigned char>(len >> 16),
      static_cast<unsigned char>(len >> 8), static_cast<unsigned char>(len)};
  // One buffer, one write: a frame either lands whole or the connection is
  // torn — readers never see a prefix without its payload from our side.
  std::string buf;
  buf.reserve(sizeof(prefix) + payload.size());
  buf.append(reinterpret_cast<const char*>(prefix), sizeof(prefix));
  buf.append(payload);
  sys::write_full(fd, buf.data(), buf.size());
}

std::optional<std::string> read_frame(int fd) {
  unsigned char prefix[4];
  size_t got = 0;
  while (got < sizeof(prefix)) {
    size_t n = sys::read_some(fd, prefix + got, sizeof(prefix) - got);
    if (n == 0) {
      if (got == 0) {
        return std::nullopt;  // clean EOF between frames
      }
      throw std::runtime_error("wire: EOF inside frame length");
    }
    got += n;
  }
  const std::uint32_t len = (static_cast<std::uint32_t>(prefix[0]) << 24) |
                            (static_cast<std::uint32_t>(prefix[1]) << 16) |
                            (static_cast<std::uint32_t>(prefix[2]) << 8) |
                            static_cast<std::uint32_t>(prefix[3]);
  if (len > kMaxFrameBytes) {
    throw std::runtime_error("wire: oversized frame: " + std::to_string(len) + " bytes");
  }
  std::string payload(len, '\0');
  if (len > 0) {
    sys::read_full(fd, payload.data(), len);  // throws on mid-frame EOF
  }
  return payload;
}

std::optional<std::string> read_frame_bounded(int fd, int first_byte_timeout_ms,
                                              int stall_timeout_ms) {
  unsigned char prefix[4];
  size_t got = 0;
  while (got < sizeof(prefix)) {
    const int timeout = got == 0 ? first_byte_timeout_ms : stall_timeout_ms;
    const char* what = got == 0 ? "wire: timed out waiting for a frame"
                                : "wire: peer stalled mid-frame (torn length prefix)";
    size_t n = read_some_within(fd, prefix + got, sizeof(prefix) - got, timeout, what);
    if (n == 0) {
      if (got == 0) {
        return std::nullopt;  // clean EOF between frames
      }
      throw std::runtime_error("wire: EOF inside frame length");
    }
    got += n;
  }
  const std::uint32_t len = (static_cast<std::uint32_t>(prefix[0]) << 24) |
                            (static_cast<std::uint32_t>(prefix[1]) << 16) |
                            (static_cast<std::uint32_t>(prefix[2]) << 8) |
                            static_cast<std::uint32_t>(prefix[3]);
  if (len > kMaxFrameBytes) {
    throw std::runtime_error("wire: oversized frame: " + std::to_string(len) + " bytes");
  }
  std::string payload(len, '\0');
  size_t have = 0;
  while (have < len) {
    size_t n = read_some_within(fd, payload.data() + have, len - have, stall_timeout_ms,
                                "wire: peer stalled mid-frame (incomplete payload)");
    if (n == 0) {
      throw std::runtime_error("wire: EOF inside frame payload");
    }
    have += n;
  }
  return payload;
}

report::JsonValue parse_message(const std::string& payload) {
  report::JsonValue v = report::parse_json(payload);
  v.object();  // type check: every protocol message is an object
  return v;
}

std::string error_message(const std::string& message) {
  return "{\"ok\":false,\"error\":" + report::json_quote(message) + "}";
}

}  // namespace lmb::svc
