#include "src/svc/wire.h"

#include <stdexcept>

#include "src/sys/fdio.h"

namespace lmb::svc {

void write_frame(int fd, const std::string& payload) {
  if (payload.size() > kMaxFrameBytes) {
    throw std::invalid_argument("wire: frame too large: " + std::to_string(payload.size()));
  }
  const std::uint32_t len = static_cast<std::uint32_t>(payload.size());
  unsigned char prefix[4] = {
      static_cast<unsigned char>(len >> 24), static_cast<unsigned char>(len >> 16),
      static_cast<unsigned char>(len >> 8), static_cast<unsigned char>(len)};
  // One buffer, one write: a frame either lands whole or the connection is
  // torn — readers never see a prefix without its payload from our side.
  std::string buf;
  buf.reserve(sizeof(prefix) + payload.size());
  buf.append(reinterpret_cast<const char*>(prefix), sizeof(prefix));
  buf.append(payload);
  sys::write_full(fd, buf.data(), buf.size());
}

std::optional<std::string> read_frame(int fd) {
  unsigned char prefix[4];
  size_t got = 0;
  while (got < sizeof(prefix)) {
    size_t n = sys::read_some(fd, prefix + got, sizeof(prefix) - got);
    if (n == 0) {
      if (got == 0) {
        return std::nullopt;  // clean EOF between frames
      }
      throw std::runtime_error("wire: EOF inside frame length");
    }
    got += n;
  }
  const std::uint32_t len = (static_cast<std::uint32_t>(prefix[0]) << 24) |
                            (static_cast<std::uint32_t>(prefix[1]) << 16) |
                            (static_cast<std::uint32_t>(prefix[2]) << 8) |
                            static_cast<std::uint32_t>(prefix[3]);
  if (len > kMaxFrameBytes) {
    throw std::runtime_error("wire: oversized frame: " + std::to_string(len) + " bytes");
  }
  std::string payload(len, '\0');
  if (len > 0) {
    sys::read_full(fd, payload.data(), len);  // throws on mid-frame EOF
  }
  return payload;
}

report::JsonValue parse_message(const std::string& payload) {
  report::JsonValue v = report::parse_json(payload);
  v.object();  // type check: every protocol message is an object
  return v;
}

std::string error_message(const std::string& message) {
  return "{\"ok\":false,\"error\":" + report::json_quote(message) + "}";
}

}  // namespace lmb::svc
