#include "src/svc/client.h"

#include <csignal>
#include <stdexcept>

#include "src/svc/wire.h"
#include "src/sys/socket.h"

namespace lmb::svc {

namespace {

std::string op_request(const std::string& op) {
  return "{\"op\":" + report::json_quote(op) + "}";
}

}  // namespace

Client::Client(std::string socket_path, int connect_timeout_ms, int stall_timeout_ms)
    : socket_path_(std::move(socket_path)),
      connect_timeout_ms_(connect_timeout_ms),
      stall_timeout_ms_(stall_timeout_ms) {
  // The daemon can close a connection while we write (e.g. shutdown racing
  // a request); that must surface as SysError(EPIPE), not a signal.
  std::signal(SIGPIPE, SIG_IGN);
}

report::JsonValue Client::roundtrip(const std::string& request) {
  sys::UnixStream stream = sys::UnixStream::connect(socket_path_, connect_timeout_ms_);
  write_frame(stream.fd(), request);
  // First-byte wait is unbounded (runs are long by design); only a
  // mid-frame stall — a daemon that died while answering — is a timeout.
  std::optional<std::string> payload =
      read_frame_bounded(stream.fd(), /*first_byte_timeout_ms=*/-1, stall_timeout_ms_);
  if (!payload.has_value()) {
    throw std::runtime_error("lmbenchd closed the connection without answering");
  }
  return parse_message(*payload);
}

report::JsonValue Client::submit(
    const std::map<std::string, std::string>& args,
    const std::function<void(const report::JsonValue&)>& on_event) {
  std::string request = "{\"op\":\"submit\",\"args\":{";
  bool first = true;
  for (const auto& [key, value] : args) {
    if (!first) {
      request += ',';
    }
    first = false;
    request += report::json_quote(key) + ":" + report::json_quote(value);
  }
  request += "}}";

  sys::UnixStream stream = sys::UnixStream::connect(socket_path_, connect_timeout_ms_);
  write_frame(stream.fd(), request);
  for (;;) {
    std::optional<std::string> payload =
        read_frame_bounded(stream.fd(), /*first_byte_timeout_ms=*/-1, stall_timeout_ms_);
    if (!payload.has_value()) {
      throw std::runtime_error("lmbenchd closed the stream before sending 'done'");
    }
    report::JsonValue message = parse_message(*payload);
    if (on_event) {
      on_event(message);
    }
    const report::JsonObject& obj = message.object();
    if (const report::JsonValue* event = report::find(obj, "event");
        event != nullptr && event->str() == "done") {
      return message;
    }
    if (const report::JsonValue* ok = report::find(obj, "ok");
        ok != nullptr && !ok->boolean()) {
      return message;  // in-band error ends the conversation
    }
  }
}

report::JsonValue Client::status() { return roundtrip(op_request("status")); }

report::JsonValue Client::results() { return roundtrip(op_request("results")); }

report::JsonValue Client::trend(const std::string& host, const std::string& bench,
                                const std::string& metric) {
  std::string request = "{\"op\":\"trend\"";
  if (!host.empty()) {
    request += ",\"host\":" + report::json_quote(host);
  }
  if (!bench.empty()) {
    request += ",\"bench\":" + report::json_quote(bench);
  }
  if (!metric.empty()) {
    request += ",\"metric\":" + report::json_quote(metric);
  }
  request += "}";
  return roundtrip(request);
}

report::JsonValue Client::shutdown() { return roundtrip(op_request("shutdown")); }

int Client::watch(const std::function<void(const report::JsonValue&)>& on_frame,
                  int max_frames) {
  sys::UnixStream stream = sys::UnixStream::connect(socket_path_, connect_timeout_ms_);
  write_frame(stream.fd(), op_request("watch"));
  int intervals = 0;
  for (;;) {
    // Frames arrive whenever a running load benchmark closes an interval
    // window — possibly never, so the first-byte wait stays unbounded and
    // only a mid-frame stall is an error.
    std::optional<std::string> payload =
        read_frame_bounded(stream.fd(), /*first_byte_timeout_ms=*/-1, stall_timeout_ms_);
    if (!payload.has_value()) {
      return intervals;  // daemon shut down (or dropped us)
    }
    report::JsonValue message = parse_message(*payload);
    if (on_frame) {
      on_frame(message);
    }
    const report::JsonObject& obj = message.object();
    if (const report::JsonValue* ok = report::find(obj, "ok");
        ok != nullptr && !ok->boolean()) {
      return intervals;  // in-band error ends the stream
    }
    if (const report::JsonValue* event = report::find(obj, "event");
        event != nullptr && event->str() == "interval_stats") {
      ++intervals;
      if (max_frames > 0 && intervals >= max_frames) {
        return intervals;
      }
    }
  }
}

}  // namespace lmb::svc
