// Client side of the lmbenchd protocol (src/svc/wire.h).
//
// Each operation opens a fresh connection — the daemon's per-connection
// threads are one-request affairs, and a fresh connect doubles as a
// liveness check.  Connect failures (no daemon, stale socket) throw
// sys::SysError; lmbench_client maps those to exit code 5 so scripts can
// tell "daemon down" from "suite failed".
#ifndef LMBENCHPP_SRC_SVC_CLIENT_H_
#define LMBENCHPP_SRC_SVC_CLIENT_H_

#include <functional>
#include <map>
#include <string>

#include "src/report/json.h"

namespace lmb::svc {

class Client {
 public:
  // `connect_timeout_ms` bounds every connect.  `stall_timeout_ms` bounds
  // mid-frame read gaps: waiting for the *next* frame may legitimately take
  // as long as a benchmark run (unbounded), but once a frame's first byte
  // arrives the rest was written in the same write(2) — a daemon killed
  // mid-frame otherwise hangs the client forever.  On a stall the read
  // throws sys::SysError(ETIMEDOUT), which lmbench_client maps to exit
  // code 5.  -1 disables the stall bound.
  explicit Client(std::string socket_path, int connect_timeout_ms = 2000,
                  int stall_timeout_ms = 10'000);

  // Submits a suite run (`args` is run_suite's flag map, e.g.
  // {"quick","true"},{"only","lat_syscall"}) and streams response frames
  // to `on_event` — including the terminal one — until the daemon sends
  // `{"event":"done"}` or an `{"ok":false}` error, which is returned.
  report::JsonValue submit(const std::map<std::string, std::string>& args,
                           const std::function<void(const report::JsonValue&)>& on_event = nullptr);

  // Single-frame ops; each returns the daemon's response object.
  report::JsonValue status();
  report::JsonValue results();
  // Optional filters; "" = unfiltered.
  report::JsonValue trend(const std::string& host = "", const std::string& bench = "",
                          const std::string& metric = "");
  report::JsonValue shutdown();

  // Attaches to the daemon's live telemetry stream: every pushed frame
  // (the initial `watching` ack, `interval_stats`, `bench_start`,
  // `job_done`) goes to `on_frame` until the daemon closes the stream or
  // `max_frames` interval_stats frames have arrived (0 = unbounded).
  // Returns the number of interval_stats frames seen.
  int watch(const std::function<void(const report::JsonValue&)>& on_frame,
            int max_frames = 0);

  const std::string& socket_path() const { return socket_path_; }

 private:
  report::JsonValue roundtrip(const std::string& request);

  std::string socket_path_;
  int connect_timeout_ms_;
  int stall_timeout_ms_;
};

}  // namespace lmb::svc

#endif  // LMBENCHPP_SRC_SVC_CLIENT_H_
