#include "src/svc/daemon.h"

#include <csignal>
#include <cstdio>

#include "src/core/env.h"
#include "src/db/trend_store.h"
#include "src/report/serialize.h"
#include "src/report/trend.h"
#include "src/svc/wire.h"
#include "src/sys/error.h"

namespace lmb::svc {

namespace {

// Trims the trailing newline report::to_json emits so a batch document can
// be embedded as a JSON value inside a frame.
std::string embed(std::string json) {
  while (!json.empty() && (json.back() == '\n' || json.back() == ' ')) {
    json.pop_back();
  }
  return json;
}

std::string quoted(const std::string& s) { return report::json_quote(s); }

}  // namespace

Daemon::Daemon(DaemonConfig config)
    : config_(std::move(config)),
      service_(config_.registry != nullptr ? *config_.registry : Registry::global()) {}

Daemon::~Daemon() { stop(); }

void Daemon::start() {
  // A client can vanish while the executor streams to it; that must be a
  // failed write, not a fatal SIGPIPE.
  std::signal(SIGPIPE, SIG_IGN);
  listener_ = std::make_unique<sys::UnixListener>(config_.socket_path);
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = false;
    started_ = true;
  }
  interval_token_ = obs::IntervalPublisher::global().subscribe(
      [this](const obs::IntervalFrame& frame) { on_interval(frame); });
  accept_thread_ = std::thread([this] { accept_loop(); });
  executor_thread_ = std::thread([this] { executor_loop(); });
  log("listening on " + config_.socket_path);
}

void Daemon::wait() {
  std::unique_lock<std::mutex> lock(mu_);
  shutdown_cv_.wait(lock, [this] { return stopping_; });
}

void Daemon::stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!started_) {
      return;
    }
    stopping_ = true;
  }
  // Detach from the publisher before joining anything: a benchmark still
  // draining must not call back into a daemon that is tearing down.
  if (interval_token_ >= 0) {
    obs::IntervalPublisher::global().unsubscribe(interval_token_);
    interval_token_ = -1;
  }
  queue_cv_.notify_all();
  shutdown_cv_.notify_all();
  if (accept_thread_.joinable()) {
    accept_thread_.join();
  }
  if (executor_thread_.joinable()) {
    executor_thread_.join();
  }
  for (std::thread& t : connection_threads_) {
    if (t.joinable()) {
      t.join();
    }
  }
  connection_threads_.clear();
  {
    std::lock_guard<std::mutex> lock(watch_mu_);
    watchers_.clear();  // closes watch connections; clients see EOF
  }
  listener_.reset();  // unlinks the socket path
  {
    std::lock_guard<std::mutex> lock(mu_);
    started_ = false;
  }
  log("stopped");
}

bool Daemon::running() const {
  std::lock_guard<std::mutex> lock(mu_);
  return started_ && !stopping_;
}

int Daemon::completed_jobs() const {
  std::lock_guard<std::mutex> lock(mu_);
  return completed_;
}

bool Daemon::try_send(sys::UnixStream& stream, const std::string& payload) {
  if (!stream.valid()) {
    return false;
  }
  try {
    write_frame(stream.fd(), payload);
    return true;
  } catch (const std::exception&) {
    return false;  // client went away; the run continues without a stream
  }
}

void Daemon::log(const std::string& line) {
  if (config_.verbose) {
    std::fprintf(stderr, "lmbenchd: %s\n", line.c_str());
  }
}

void Daemon::accept_loop() {
  for (;;) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (stopping_) {
        return;
      }
    }
    std::optional<sys::UnixStream> stream;
    try {
      stream = listener_->accept_for(/*timeout_ms=*/200);
    } catch (const std::exception& e) {
      log(std::string("accept failed: ") + e.what());
      continue;
    }
    if (!stream.has_value()) {
      continue;  // timeout: re-check the stop flag
    }
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) {
      return;
    }
    connection_threads_.emplace_back(
        [this, s = std::make_shared<sys::UnixStream>(std::move(*stream))]() mutable {
          handle_connection(std::move(*s));
        });
  }
}

void Daemon::handle_connection(sys::UnixStream stream) {
  std::optional<std::string> payload;
  try {
    payload = read_frame(stream.fd());
  } catch (const std::exception& e) {
    log(std::string("bad frame: ") + e.what());
    return;
  }
  if (!payload.has_value()) {
    return;  // connected and left
  }

  try {
    report::JsonValue message = parse_message(*payload);
    const report::JsonObject& obj = message.object();
    const report::JsonValue* op = report::find(obj, "op");
    if (op == nullptr) {
      try_send(stream, error_message("missing op"));
      return;
    }
    const std::string& name = op->str();
    log("op " + name);

    if (name == "submit") {
      Options args;
      if (const report::JsonValue* args_value = report::find(obj, "args")) {
        for (const auto& [key, value] : args_value->object()) {
          args.set(key, value.str());
        }
      }
      Job job;
      job.stream = std::move(stream);
      job.args = std::move(args);
      size_t position = 0;
      {
        std::lock_guard<std::mutex> lock(mu_);
        if (stopping_) {
          try_send(job.stream, error_message("daemon is shutting down"));
          return;
        }
        job.id = next_job_id_++;
        position = queue_.size() + (running_job_ != 0 ? 1 : 0);
        try_send(job.stream, "{\"ok\":true,\"event\":\"queued\",\"job\":" +
                                 std::to_string(job.id) +
                                 ",\"position\":" + std::to_string(position) + "}");
        queue_.push_back(std::move(job));
      }
      queue_cv_.notify_one();
      return;
    }
    if (name == "status") {
      try_send(stream, status_payload());
      return;
    }
    if (name == "results") {
      std::string results;
      {
        std::lock_guard<std::mutex> lock(mu_);
        results = last_results_json_;
      }
      try_send(stream, "{\"ok\":true,\"results\":" +
                           (results.empty() ? std::string("null") : embed(results)) + "}");
      return;
    }
    if (name == "trend") {
      try_send(stream, trend_payload(obj));
      return;
    }
    if (name == "watch") {
      if (!try_send(stream, "{\"ok\":true,\"event\":\"watching\"}")) {
        return;
      }
      // The connection becomes a push-only telemetry stream; it lives in
      // the watcher list until a send fails or the daemon stops.
      std::lock_guard<std::mutex> lock(watch_mu_);
      watchers_.push_back(std::make_shared<sys::UnixStream>(std::move(stream)));
      return;
    }
    if (name == "shutdown") {
      try_send(stream, "{\"ok\":true,\"event\":\"shutting_down\"}");
      {
        std::lock_guard<std::mutex> lock(mu_);
        stopping_ = true;
      }
      queue_cv_.notify_all();
      shutdown_cv_.notify_all();
      return;
    }
    try_send(stream, error_message("unknown op: " + name));
  } catch (const std::exception& e) {
    try_send(stream, error_message(e.what()));
  }
}

std::string Daemon::status_payload() {
  std::size_t watcher_count = 0;
  {
    std::lock_guard<std::mutex> lock(watch_mu_);
    watcher_count = watchers_.size();
  }
  std::lock_guard<std::mutex> lock(mu_);
  std::string state = running_job_ != 0 ? "running" : "idle";
  return "{\"ok\":true,\"state\":" + quoted(state) + ",\"running\":" + quoted(running_bench_) +
         ",\"bench_index\":" + std::to_string(running_bench_index_) +
         ",\"bench_total\":" + std::to_string(running_bench_total_) +
         ",\"job\":" + std::to_string(running_job_) +
         ",\"queued\":" + std::to_string(queue_.size()) +
         ",\"completed\":" + std::to_string(completed_) +
         ",\"watchers\":" + std::to_string(watcher_count) +
         ",\"socket\":" + quoted(config_.socket_path) +
         ",\"store\":" + quoted(config_.store_dir) + "}";
}

void Daemon::broadcast(const std::string& payload) {
  std::lock_guard<std::mutex> lock(watch_mu_);
  for (std::size_t i = 0; i < watchers_.size();) {
    if (try_send(*watchers_[i], payload)) {
      ++i;
    } else {
      watchers_.erase(watchers_.begin() + static_cast<std::ptrdiff_t>(i));
    }
  }
}

void Daemon::on_interval(const obs::IntervalFrame& frame) {
  {
    // Frame building is skipped entirely when nobody is watching — this
    // runs on a load-gen worker thread mid-measurement.
    std::lock_guard<std::mutex> lock(watch_mu_);
    if (watchers_.empty()) {
      return;
    }
  }
  long job = 0;
  std::string bench;
  {
    std::lock_guard<std::mutex> lock(mu_);
    job = running_job_;
    bench = running_bench_;
  }
  broadcast("{\"event\":\"interval_stats\",\"job\":" + std::to_string(job) +
            ",\"bench\":" + quoted(bench) + ",\"source\":" + quoted(frame.source) +
            ",\"shard\":" + std::to_string(frame.shard) +
            ",\"window\":" + std::to_string(frame.window) +
            ",\"start_ms\":" + report::json_double(static_cast<double>(frame.start) / 1e6) +
            ",\"end_ms\":" + report::json_double(static_cast<double>(frame.end) / 1e6) +
            ",\"requests\":" + std::to_string(frame.requests) +
            ",\"errors\":" + std::to_string(frame.errors) +
            ",\"rps\":" + report::json_double(frame.rps) +
            ",\"p50_us\":" + report::json_double(frame.p50_ns / 1000.0) +
            ",\"p99_us\":" + report::json_double(frame.p99_ns / 1000.0) +
            ",\"p999_us\":" + report::json_double(frame.p999_ns / 1000.0) +
            ",\"total_requests\":" + std::to_string(frame.total_requests) + "}");
}

std::string Daemon::trend_payload(const report::JsonObject& request) {
  if (config_.store_dir.empty()) {
    return error_message("daemon has no trend store (--store)");
  }
  db::TrendStore store(config_.store_dir);
  std::vector<std::string> hosts = store.hosts();
  if (hosts.empty()) {
    return error_message("trend store is empty (no completed runs yet)");
  }
  // Explicit host filter, else this machine's shard, else the only/first.
  std::string host;
  if (const report::JsonValue* v = report::find(request, "host")) {
    host = v->str();
  } else {
    std::string mine = db::TrendStore::shard_name(query_system_info().label());
    for (const std::string& candidate : hosts) {
      if (candidate == mine) {
        host = candidate;
      }
    }
    if (host.empty()) {
      host = hosts.front();
    }
  }

  std::vector<db::TrendSeries> series;
  if (const report::JsonValue* v = report::find(request, "bench")) {
    series = store.series(host, v->str());
  } else {
    series = store.all_series(host);
  }
  if (const report::JsonValue* v = report::find(request, "metric")) {
    std::vector<db::TrendSeries> filtered;
    for (db::TrendSeries& s : series) {
      if (s.key == v->str()) {
        filtered.push_back(std::move(s));
      }
    }
    series = std::move(filtered);
  }

  std::vector<report::TrendRow> rows = report::analyze_trends(series);
  return "{\"ok\":true,\"host\":" + quoted(host) +
         ",\"table\":" + quoted(report::render_trend_table(rows)) +
         ",\"trend\":" + embed(report::trend_to_json(host, rows)) + "}";
}

void Daemon::executor_loop() {
  for (;;) {
    Job job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      queue_cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stopping_) {
          return;
        }
        continue;
      }
      if (stopping_) {
        // Drain: queued jobs are refused, not silently dropped.
        for (Job& refused : queue_) {
          try_send(refused.stream, error_message("daemon is shutting down"));
        }
        queue_.clear();
        return;
      }
      job = std::move(queue_.front());
      queue_.pop_front();
      running_job_ = job.id;
      running_bench_ = "(starting)";
    }
    execute(std::move(job));
  }
}

void Daemon::execute(Job job) {
  log("job " + std::to_string(job.id) + " starting");
  RunRequest request;
  int exit_code = 0;
  std::string failure;
  // Completion state must be visible before the "done" frame reaches the
  // client: a submitter that queries status the moment submit() returns
  // must see this job counted.
  const auto mark_done = [this] {
    std::lock_guard<std::mutex> lock(mu_);
    running_job_ = 0;
    running_bench_.clear();
    running_bench_index_ = 0;
    running_bench_total_ = 0;
    ++completed_;
  };
  try {
    request = RunRequest::from_options(job.args);
    // Daemon defaults for knobs the request left unset: shared calibration
    // cache and the daemon's trend store.
    if (!job.args.has("cal-cache")) {
      request.cal_cache_path = config_.cal_cache_path;
    }
    if (request.trend_dir.empty()) {
      request.trend_dir = config_.store_dir;
    }

    ProgressFn progress = [&](const ServiceEvent& event) {
      switch (event.kind) {
        case ServiceEvent::Kind::kSuiteStart: {
          std::string warnings;
          for (const std::string& w : event.warnings) {
            if (!warnings.empty()) {
              warnings += ',';
            }
            warnings += quoted(w);
          }
          try_send(job.stream,
                   "{\"event\":\"suite_start\",\"system\":" + quoted(event.system) +
                       ",\"total\":" + std::to_string(event.total) +
                       ",\"cal_warm\":" + (event.cal_warm ? "true" : "false") +
                       ",\"warnings\":[" + warnings + "]}");
          break;
        }
        case ServiceEvent::Kind::kBenchStart: {
          {
            std::lock_guard<std::mutex> lock(mu_);
            running_bench_ = event.name;
            running_bench_index_ = event.index;
            running_bench_total_ = event.total;
          }
          const std::string frame =
              "{\"event\":\"bench_start\",\"name\":" + quoted(event.name) +
              ",\"index\":" + std::to_string(event.index) +
              ",\"total\":" + std::to_string(event.total) + "}";
          try_send(job.stream, frame);
          broadcast(frame);  // watchers get suite progress markers too
          break;
        }
        case ServiceEvent::Kind::kBenchFinish: {
          const RunResult* r = event.result;
          try_send(job.stream,
                   "{\"event\":\"bench_finish\",\"name\":" + quoted(event.name) +
                       ",\"index\":" + std::to_string(event.index) +
                       ",\"total\":" + std::to_string(event.total) +
                       ",\"status\":" + quoted(r != nullptr ? run_status_name(r->status) : "?") +
                       ",\"summary\":" + quoted(r != nullptr ? r->summary() : "") +
                       ",\"wall_ms\":" + report::json_double(r != nullptr ? r->wall_ms : 0) +
                       "}");
          break;
        }
        case ServiceEvent::Kind::kSuiteEnd:
          break;  // folded into the "done" frame below
      }
    };

    RunArtifacts artifacts = service_.run(request, progress);
    exit_code = artifacts.exit_code();
    std::string batch_json = report::to_json(artifacts.batch);
    {
      std::lock_guard<std::mutex> lock(mu_);
      last_results_json_ = batch_json;
    }
    mark_done();
    try_send(job.stream,
             "{\"event\":\"done\",\"ok\":true,\"job\":" + std::to_string(job.id) +
                 ",\"exit_code\":" + std::to_string(exit_code) +
                 ",\"failed\":" + std::to_string(artifacts.failed) +
                 ",\"metrics\":" + std::to_string(artifacts.metric_count) +
                 ",\"wall_ms\":" + report::json_double(artifacts.total_wall_ms) +
                 ",\"trend_seq\":" + std::to_string(artifacts.trend_seq) +
                 ",\"gate_failed\":" + (artifacts.gate_failed ? "true" : "false") +
                 ",\"results\":" + embed(batch_json) + "}");
    broadcast("{\"event\":\"job_done\",\"job\":" + std::to_string(job.id) + ",\"ok\":true}");
  } catch (const UsageError& e) {
    failure = e.what();
    mark_done();
    try_send(job.stream, "{\"event\":\"done\",\"ok\":false,\"job\":" + std::to_string(job.id) +
                             ",\"exit_code\":2,\"error\":" + quoted(failure) + "}");
    broadcast("{\"event\":\"job_done\",\"job\":" + std::to_string(job.id) + ",\"ok\":false}");
  } catch (const std::exception& e) {
    failure = e.what();
    mark_done();
    try_send(job.stream, "{\"event\":\"done\",\"ok\":false,\"job\":" + std::to_string(job.id) +
                             ",\"exit_code\":2,\"error\":" + quoted(failure) + "}");
    broadcast("{\"event\":\"job_done\",\"job\":" + std::to_string(job.id) + ",\"ok\":false}");
  }
  log("job " + std::to_string(job.id) + " finished" +
      (failure.empty() ? " (exit " + std::to_string(exit_code) + ")" : ": " + failure));
}

}  // namespace lmb::svc
