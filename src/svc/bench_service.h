// Runner-as-a-service: the whole run_suite pipeline — calibration cache,
// provenance capture, tracing, execution, serialization, baseline compare,
// trend-store append — as a reusable library.
//
// The paper's driver (`lmbench-run`, §3.5) is a one-shot script; PR 1..5
// reproduced it as a ~380-line main().  This module is that pipeline with
// the argv parsing and printing peeled off: a RunRequest describes one
// suite invocation, BenchService::run executes it and returns a
// RunArtifacts bundle, and a progress callback streams per-benchmark
// events.  examples/run_suite, the lmbenchd daemon, and tests all drive
// the same code path, so "what a suite run does" is defined exactly once
// (the ROOT-style continuous-benchmarking service in ROADMAP.md builds on
// this seam).
#ifndef LMBENCHPP_SRC_SVC_BENCH_SERVICE_H_
#define LMBENCHPP_SRC_SVC_BENCH_SERVICE_H_

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "src/core/cal_cache.h"
#include "src/core/options.h"
#include "src/core/registry.h"
#include "src/core/tsc_clock.h"
#include "src/obs/trace.h"
#include "src/report/compare.h"
#include "src/report/serialize.h"

namespace lmb::svc {

// A caller mistake (unknown benchmark name, empty category, malformed
// flag) as opposed to a benchmark failing: drivers map this to their usage
// exit code (run_suite: 2) instead of a failed-run code.
class UsageError : public std::invalid_argument {
 public:
  using std::invalid_argument::invalid_argument;
};

// Everything one suite invocation needs — the typed form of run_suite's
// command line.  Defaults reproduce `run_suite` with no flags.
struct RunRequest {
  // Selection: explicit names (overrides category) or a category filter
  // ("" = every registered benchmark).
  std::string category;
  std::vector<std::string> names;

  // Execution.
  int jobs = 1;
  double timeout_sec = 0.0;
  bool counters = false;
  // Time source (--clock=auto|tsc|wall): resolved against the host by
  // select_clock at run start; what actually ran is recorded per
  // measurement as clock_source, and an unhonorable --clock=tsc surfaces a
  // fallback warning, never a silent switch.
  ClockSource clock_source = ClockSource::kAuto;
  // Nanoscale timing (--nanoscale): batched back-to-back intervals with
  // measured per-interval read overhead (TimingPolicy::nanoscale).
  bool nanoscale = false;
  // Passed verbatim to every benchmark (--quick, --size=, --kernel=,
  // --bw-threads=, ...).
  Options bench_options;

  // Calibration cache.
  bool use_cal_cache = true;
  std::string cal_cache_path = ".lmbenchpp-cal.db";

  // Timing-decision trace: collect events into RunArtifacts::trace_events
  // and optionally write the serialized forms.
  bool collect_trace = false;
  std::string trace_path;         // lmbenchpp.trace.v1 JSON ("" = skip)
  std::string trace_chrome_path;  // bare-array Chrome trace_event ("" = skip)

  // Output files ("" = skip each).
  std::string out_path;   // paper-style text database
  std::string json_path;  // lmbenchpp.results.v1
  std::string csv_path;

  // Baseline comparison / regression gate ("" = no comparison).
  std::string baseline_path;
  bool gate = false;
  // Significance floor in percent when --gate carried a value; nullopt
  // keeps the compare default.
  std::optional<double> gate_floor_pct;
  double assume_noise_pct = 0.0;
  bool save_baseline = false;
  std::string compare_json_path;  // lmbenchpp.compare.v1 ("" = skip)

  // Time-series trend store directory ("" = no append).  Every completed
  // batch is appended with its provenance block (src/db/trend_store.h).
  std::string trend_dir;

  // Builds a request from parsed command-line options, using exactly
  // run_suite's flag names (--category, --only, --jobs, --timeout, --out,
  // --json, --csv, --trace, --trace-chrome, --counters, --clock,
  // --nanoscale, --cal-cache, --no-cal-cache, --baseline, --gate,
  // --assume-noise, --save-baseline, --compare-json, --trend-store).  The full option set is also retained
  // as bench_options so benchmark-level flags flow through.  Throws
  // UsageError / std::invalid_argument on malformed values.
  static RunRequest from_options(const Options& opts);
};

// Progress events streamed while a request executes.  kSuiteStart fires
// once before the first benchmark (after provenance capture and cache
// loading, so headers can say warm/cold); kBenchStart/kBenchFinish wrap
// the SuiteRunner's events; kSuiteEnd fires after outputs are written.
struct ServiceEvent {
  enum class Kind { kSuiteStart, kBenchStart, kBenchFinish, kSuiteEnd };
  Kind kind = Kind::kSuiteStart;

  // kSuiteStart.
  std::string system;  // SystemInfo::label()
  int total = 0;       // benchmarks selected
  bool cal_cache = false;
  bool cal_warm = false;
  std::string cal_path;
  std::vector<std::string> warnings;  // environment noise warnings

  // kBenchStart / kBenchFinish.
  int index = 0;
  std::string name;
  std::string description;
  const RunResult* result = nullptr;  // kBenchFinish only

  // kSuiteEnd.
  double total_wall_ms = 0.0;
  size_t metric_count = 0;
  int failed = 0;
};

using ProgressFn = std::function<void(const ServiceEvent&)>;

// Everything a finished request produced, for drivers to print, serialize,
// or stream.
struct RunArtifacts {
  report::ResultBatch batch;  // system label, results, timing, environment

  size_t metric_count = 0;
  int failed = 0;
  double total_wall_ms = 0.0;

  // Calibration cache state for this run.
  bool cal_cache_used = false;
  bool cal_warm = false;  // entries were available before the run
  int cal_hits = 0;
  int cal_misses = 0;
  std::string cal_save_error;  // non-empty when persisting the cache failed

  // Trace events captured when RunRequest::collect_trace was on.
  std::vector<obs::TraceEvent> trace_events;

  // Baseline comparison (only when RunRequest::baseline_path was set).
  std::optional<report::CompareReport> compare;
  bool baseline_established = false;  // empty store: this run became the baseline
  std::string baseline_saved_path;    // non-empty when a baseline entry was written
  bool gate_failed = false;

  // Trend store append (only when RunRequest::trend_dir was set).
  long trend_seq = -1;  // sequence number assigned to this run

  // run_suite's exit-code contract: 1 when any benchmark failed, else 3
  // when the gate tripped, else 0.  (Usage errors never reach artifacts —
  // they throw UsageError.)
  int exit_code() const { return failed != 0 ? 1 : (gate_failed ? 3 : 0); }
};

// Executes RunRequests against a registry.  One service owns the
// calibration caches and trace sinks its runs use; because a timed-out
// benchmark's thread is abandoned (suite_runner.h) and may touch those
// after run() returns, the service must outlive every such thread — make
// it long-lived (the daemon) or static (run_suite), like the registry.
//
// run() is serialized with an internal mutex: concurrent callers queue,
// which is exactly the FIFO semantics the daemon wants (benchmarks must
// not time-share the machine they are measuring).
class BenchService {
 public:
  explicit BenchService(const Registry& registry = Registry::global());

  // Executes one request.  Throws UsageError on selection mistakes
  // (unknown name, empty category match) before anything runs, and
  // std::runtime_error when a requested output file cannot be written.
  RunArtifacts run(const RunRequest& request, const ProgressFn& progress = nullptr);

  // Number of completed run() calls.
  int completed_runs() const;

 private:
  CalibrationCache* cache_for(const std::string& path);

  const Registry* registry_;
  std::mutex run_mu_;  // serializes run(); see class comment
  mutable std::mutex state_mu_;
  // One calibration cache per on-disk path, kept alive for the service's
  // lifetime (abandoned-thread rule above; also keeps a daemon's caches
  // warm across requests).
  std::map<std::string, std::unique_ptr<CalibrationCache>> cal_caches_;
  // One sink per traced run, retained for the same lifetime reason.
  std::vector<std::unique_ptr<obs::TraceSink>> trace_sinks_;
  int completed_ = 0;
};

}  // namespace lmb::svc

#endif  // LMBENCHPP_SRC_SVC_BENCH_SERVICE_H_
