#include "src/obs/trace.h"

namespace lmb::obs {

namespace {

thread_local ObsScope* g_current_scope = nullptr;

// Per-thread slot for the sink-assigned thread ordinal.  A thread could in
// principle emit into two sinks; slots are keyed by a process-unique sink id
// (NOT the sink's address — a later sink can reuse a destroyed one's storage)
// so ordinals stay per-sink-stable.  One live sink is the overwhelmingly
// common case, so a single cached (sink_id, tid) pair suffices — a second
// sink just re-registers.
struct ThreadSlot {
  std::uint64_t sink_id = 0;
  int tid = 0;
};
thread_local ThreadSlot g_thread_slot;

std::atomic<std::uint64_t> g_next_sink_id{1};

}  // namespace

TraceSink::TraceSink(const Clock& clock)
    : clock_(&clock),
      epoch_(clock.now()),
      id_(g_next_sink_id.fetch_add(1, std::memory_order_relaxed)) {}

int TraceSink::thread_id() {
  // Caller holds mu_.
  if (g_thread_slot.sink_id != id_) {
    g_thread_slot.sink_id = id_;
    g_thread_slot.tid = ++next_tid_;
  }
  return g_thread_slot.tid;
}

void TraceSink::push(TraceEvent event) {
  std::lock_guard<std::mutex> lock(mu_);
  event.tid = thread_id();
  events_.push_back(std::move(event));
}

void TraceSink::instant(std::string cat, std::string name, TraceArgs args) {
  TraceEvent e;
  e.ts = timestamp();
  e.dur = -1;
  e.cat = std::move(cat);
  e.name = std::move(name);
  if (ObsScope* scope = ObsScope::current(); scope != nullptr) {
    e.bench = scope->bench();
  }
  e.args = std::move(args);
  push(std::move(e));
}

void TraceSink::complete(std::string cat, std::string name, Nanos start_ts, TraceArgs args) {
  TraceEvent e;
  e.ts = start_ts;
  e.dur = std::max<Nanos>(timestamp() - start_ts, 0);
  e.cat = std::move(cat);
  e.name = std::move(name);
  if (ObsScope* scope = ObsScope::current(); scope != nullptr) {
    e.bench = scope->bench();
  }
  e.args = std::move(args);
  push(std::move(e));
}

std::vector<TraceEvent> TraceSink::events() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_;
}

size_t TraceSink::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

ObsScope::ObsScope(TraceSink* sink, bool counters, std::string bench, int worker)
    : sink_(sink),
      counters_(counters),
      bench_(std::move(bench)),
      worker_(worker),
      prev_(g_current_scope) {
  g_current_scope = this;
}

ObsScope::~ObsScope() { g_current_scope = prev_; }

ObsScope* ObsScope::current() { return g_current_scope; }

}  // namespace lmb::obs
