#include "src/obs/interval_stream.h"

#include <utility>
#include <vector>

namespace lmb::obs {

IntervalPublisher& IntervalPublisher::global() {
  static IntervalPublisher* instance = new IntervalPublisher();
  return *instance;
}

int IntervalPublisher::subscribe(Callback cb) {
  std::lock_guard<std::mutex> lock(mu_);
  int token = next_token_++;
  subscribers_[token] = std::move(cb);
  active_.store(static_cast<int>(subscribers_.size()), std::memory_order_relaxed);
  return token;
}

void IntervalPublisher::unsubscribe(int token) {
  std::lock_guard<std::mutex> lock(mu_);
  subscribers_.erase(token);
  active_.store(static_cast<int>(subscribers_.size()), std::memory_order_relaxed);
}

void IntervalPublisher::publish(const IntervalFrame& frame) {
  // Copy callbacks out so a subscriber that unsubscribes from inside its own
  // callback does not deadlock against mu_.
  std::vector<Callback> cbs;
  {
    std::lock_guard<std::mutex> lock(mu_);
    cbs.reserve(subscribers_.size());
    for (const auto& [token, cb] : subscribers_) cbs.push_back(cb);
  }
  for (const auto& cb : cbs) cb(frame);
}

}  // namespace lmb::obs
