// Log-linear HDR-style latency histogram and time-windowed interval series.
//
// The load engine (src/lat/load_gen) used to pool every raw RTT into a
// `Sample`, so memory grew linearly with `--max-requests` and merging shards
// meant concatenating megabyte vectors.  `LatencyHistogram` replaces that
// pooling with a fixed-size bucket array: O(1) record, lossless merge
// (bucket-wise addition), and a bounded relative error set by the sub-bucket
// precision.  A small uniform reservoir of raw values is kept separately by
// the load generator purely to cross-check histogram percentiles against an
// exact reference.
//
// Bucket layout (the classic HdrHistogram scheme):
//   - values < sub_count (= 1 << sub_bucket_bits) land in an exact unit-width
//     bucket: index == value.
//   - larger values use log-linear buckets: with k = bit_width(v) - sub_bits,
//     the top sub_bits bits select one of `half = sub_count / 2` sub-buckets
//     of width 2^k, giving flat index k * half + (v >> k).  Consecutive
//     indices tile [0, max] with no gaps or overlap, and bucket width never
//     exceeds value / half, so a bucket-midpoint percentile is within
//     1 / sub_count of the true value (sub_bucket_bits = 8 -> ~0.39%).
//   - values above `max_value_ns` clamp into the final bucket and are counted
//     in `saturated()` so a mis-sized histogram is loud, not silently wrong.
#ifndef LMBENCHPP_SRC_OBS_HISTOGRAM_H_
#define LMBENCHPP_SRC_OBS_HISTOGRAM_H_

#include <cstdint>
#include <vector>

#include "src/core/clock.h"

namespace lmb::obs {

struct HistogramConfig {
  // Precision knob: values resolve to 1 part in 2^(sub_bucket_bits - 1).
  // 8 bits -> 256 unit buckets + 128 sub-buckets per power of two, worst-case
  // relative bucket width 1/128 (~0.78%), midpoint error half that.
  int sub_bucket_bits = 8;
  // Largest value representable without saturating.  100 s covers any sane
  // RTT; the array stays ~16 KiB at the default precision.
  Nanos max_value_ns = 100 * kSecond;

  bool operator==(const HistogramConfig&) const = default;
};

class LatencyHistogram {
 public:
  explicit LatencyHistogram(HistogramConfig cfg = {});

  // O(1).  Negative values clamp to 0; values above max_value_ns clamp into
  // the top bucket and bump saturated().
  void record(Nanos value_ns);

  // Bucket-wise addition.  Throws std::invalid_argument if the two
  // histograms were built with different configs (their buckets would not
  // line up, silently corrupting percentiles).
  void merge(const LatencyHistogram& other);

  void clear();

  std::uint64_t count() const { return count_; }
  std::uint64_t saturated() const { return saturated_; }
  // Exact min/max/mean of recorded (clamped) values, independent of bucket
  // resolution.  min/max return 0 on an empty histogram.
  Nanos min() const { return count_ == 0 ? 0 : min_; }
  Nanos max() const { return count_ == 0 ? 0 : max_; }
  double mean() const { return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_); }

  // Midpoint of the bucket holding the ceil(p% * count)-th value, clamped to
  // the exact observed [min, max].  Returns 0 on an empty histogram.
  // p in [0, 100].
  double percentile(double p) const;

  // Upper bound on |percentile(p) - true percentile| / true percentile
  // imposed by the bucket layout: 1 / 2^sub_bucket_bits.
  double max_relative_error() const;

  // Bucket geometry, for heatmap export.  Buckets tile [0, ~max_value_ns]
  // contiguously: bucket_upper(i) == bucket_lower(i + 1).
  std::size_t bucket_count() const { return counts_.size(); }
  std::uint64_t count_at(std::size_t index) const { return counts_[index]; }
  Nanos bucket_lower(std::size_t index) const;
  Nanos bucket_upper(std::size_t index) const;
  // Index range [first, last] of non-empty buckets; {0, 0} when empty.
  std::pair<std::size_t, std::size_t> nonzero_range() const;

  const HistogramConfig& config() const { return cfg_; }

 private:
  std::size_t index_for(std::uint64_t v) const;

  HistogramConfig cfg_;
  int sub_bits_;
  std::uint64_t sub_count_;  // 1 << sub_bits_
  std::uint64_t half_;       // sub_count_ / 2
  int k_max_;                // largest shift used by the top bucket run
  std::vector<std::uint64_t> counts_;
  std::uint64_t count_ = 0;
  std::uint64_t saturated_ = 0;
  Nanos min_ = 0;
  Nanos max_ = 0;
  double sum_ = 0.0;
};

// One rotation window of a load-gen interval series.  `start`/`end` are
// offsets from the start of the measured phase, so windows from different
// shards align index-by-index when merged.
struct IntervalStats {
  Nanos start = 0;
  Nanos end = 0;
  std::uint64_t requests = 0;
  std::uint64_t errors = 0;
  LatencyHistogram hist;
};

}  // namespace lmb::obs

#endif  // LMBENCHPP_SRC_OBS_HISTOGRAM_H_
