// In-process fan-out of live load-gen interval frames.
//
// The load generator closes a histogram window every `--interval-ms` and, if
// anyone is listening, publishes a compact summary frame here.  lmbenchd
// subscribes while running and forwards frames to `watch` connections, which
// is how `lmbench_client --watch` tails a running job without being the
// submitter.  The publisher is deliberately dumb: a mutex-protected callback
// map plus an atomic subscriber count so the load loop pays a single relaxed
// load (no lock, no allocation) when nobody is watching.
#ifndef LMBENCHPP_SRC_OBS_INTERVAL_STREAM_H_
#define LMBENCHPP_SRC_OBS_INTERVAL_STREAM_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>

#include "src/core/clock.h"

namespace lmb::obs {

// One closed interval window, summarized.  Times are offsets from the start
// of the measured phase; percentiles come from the window's own histogram
// (0 when the window saw no requests).
struct IntervalFrame {
  std::string source;  // "<bench>/<scenario>", e.g. "lat_tcp_n/loopback"
  int shard = 0;
  int window = 0;  // window index within the run, starting at 0
  Nanos start = 0;
  Nanos end = 0;
  std::uint64_t requests = 0;
  std::uint64_t errors = 0;
  std::uint64_t total_requests = 0;  // cumulative for this shard
  double rps = 0.0;
  double p50_ns = 0.0;
  double p99_ns = 0.0;
  double p999_ns = 0.0;
};

class IntervalPublisher {
 public:
  using Callback = std::function<void(const IntervalFrame&)>;

  // Process-wide instance shared by load generators and the daemon.
  static IntervalPublisher& global();

  // Returns a token for unsubscribe().  The callback runs on the publishing
  // (load-gen worker) thread and must not block.
  int subscribe(Callback cb);
  void unsubscribe(int token);

  // Cheap pre-check so publishers can skip building frames entirely.
  bool active() const { return active_.load(std::memory_order_relaxed) > 0; }

  void publish(const IntervalFrame& frame);

 private:
  mutable std::mutex mu_;
  std::map<int, Callback> subscribers_;
  int next_token_ = 1;
  std::atomic<int> active_{0};
};

}  // namespace lmb::obs

#endif  // LMBENCHPP_SRC_OBS_INTERVAL_STREAM_H_
