#include "src/obs/perf_counters.h"

#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <limits>

#if defined(__linux__)
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/mman.h>
#include <sys/syscall.h>
#include <unistd.h>
#endif

#if defined(__x86_64__) || defined(_M_X64)
#define LMBPP_HAVE_RDPMC 1
#include <x86intrin.h>
#endif

namespace lmb::obs {

void CounterTotals::add(const CounterSample& s) {
  if (!s.valid) {
    return;
  }
  ++intervals;
  cycles += s.cycles;
  instructions += s.instructions;
  if (s.has_cache) {
    has_cache = true;
    cache_refs += s.cache_refs;
    cache_misses += s.cache_misses;
  }
  if (s.has_ctx) {
    has_ctx = true;
    ctx_switches += s.ctx_switches;
  }
  multiplexed = multiplexed || s.multiplexed;
}

double CounterTotals::ipc() const {
  if (!(cycles > 0)) {
    return std::numeric_limits<double>::quiet_NaN();
  }
  return instructions / cycles;
}

double CounterTotals::cache_miss_rate() const {
  if (!has_cache || !(cache_refs > 0)) {
    return std::numeric_limits<double>::quiet_NaN();
  }
  return cache_misses / cache_refs;
}

#if defined(__linux__)

namespace {

bool counters_env_disabled() {
  const char* env = std::getenv("LMBPP_NO_COUNTERS");
  return env != nullptr && env[0] != '\0' && env[0] != '0';
}

#if defined(LMBPP_HAVE_RDPMC)

bool rdpmc_env_disabled() {
  const char* env = std::getenv("LMBPP_NO_RDPMC");
  return env != nullptr && env[0] != '\0' && env[0] != '0';
}

// Compiler barrier only: the seqlock below synchronizes with the kernel
// updating the same page from this CPU, so ordering the compiler suffices.
inline void rmb() { __asm__ volatile("" ::: "memory"); }

// Seqlock-guarded userspace read of one event's totals-since-enable, per
// the protocol in perf_event_open(2): offset is the count saved at the last
// deschedule, RDPMC(index-1) the hardware counts since; the raw PMC value
// is sign-extended from pmc_width bits so the sum wraps correctly.
// Returns false when the event has no userspace mapping right now
// (index == 0: descheduled or cap_user_rdpmc revoked).
bool read_page_total(const volatile perf_event_mmap_page* pc, std::uint64_t* out) {
  std::uint32_t seq;
  std::uint64_t offset;
  std::uint64_t pmc = 0;
  do {
    seq = pc->lock;
    rmb();
    std::uint32_t index = pc->index;
    offset = static_cast<std::uint64_t>(pc->offset);
    if (!pc->cap_user_rdpmc || index == 0) {
      return false;
    }
    pmc = __rdpmc(index - 1);
    std::uint16_t width = pc->pmc_width;
    if (width < 64) {
      pmc <<= 64 - width;
      pmc = static_cast<std::uint64_t>(static_cast<std::int64_t>(pmc) >> (64 - width));
    }
    rmb();
  } while (pc->lock != seq);
  *out = offset + pmc;
  return true;
}

#endif  // LMBPP_HAVE_RDPMC

// Opens one counter for the calling thread on any CPU.  `group_fd` of -1
// starts a new group.  Returns -1 on any failure — the caller treats every
// counter as optional.
int perf_open(std::uint32_t type, std::uint64_t config, int group_fd, bool leader,
              bool exclude_kernel) {
  struct perf_event_attr attr;
  std::memset(&attr, 0, sizeof(attr));
  attr.type = type;
  attr.size = sizeof(attr);
  attr.config = config;
  attr.disabled = leader ? 1 : 0;  // the whole group starts/stops via the leader
  attr.exclude_kernel = exclude_kernel ? 1 : 0;
  attr.exclude_hv = 1;
  attr.inherit = 0;
  if (leader) {
    attr.read_format = PERF_FORMAT_GROUP | PERF_FORMAT_TOTAL_TIME_ENABLED |
                       PERF_FORMAT_TOTAL_TIME_RUNNING;
  }
  long fd = syscall(SYS_perf_event_open, &attr, /*pid=*/0, /*cpu=*/-1, group_fd,
                    PERF_FLAG_FD_CLOEXEC);
  return static_cast<int>(fd);
}

void close_fd(int& fd) {
  if (fd >= 0) {
    close(fd);
    fd = -1;
  }
}

}  // namespace

PerfCounters::PerfCounters(const Config& config) {
  if (config.disabled || counters_env_disabled()) {
    return;
  }
  // Leader (cycles) + instructions are the required pair: without both, IPC
  // is meaningless and the whole wrapper falls back.  exclude_kernel keeps
  // the open permitted under perf_event_paranoid <= 2 (the common default).
  group_fd_ = perf_open(PERF_TYPE_HARDWARE, PERF_COUNT_HW_CPU_CYCLES, -1, /*leader=*/true,
                        /*exclude_kernel=*/true);
  if (group_fd_ < 0) {
    return;
  }
  instructions_fd_ = perf_open(PERF_TYPE_HARDWARE, PERF_COUNT_HW_INSTRUCTIONS, group_fd_,
                               false, true);
  if (instructions_fd_ < 0) {
    close_fd(group_fd_);
    return;
  }
  // Cache events are optional (absent on bare VMs / some PMUs): open both or
  // neither, so refs and misses always describe the same span.
  cache_refs_fd_ = perf_open(PERF_TYPE_HARDWARE, PERF_COUNT_HW_CACHE_REFERENCES, group_fd_,
                             false, true);
  if (cache_refs_fd_ >= 0) {
    cache_misses_fd_ = perf_open(PERF_TYPE_HARDWARE, PERF_COUNT_HW_CACHE_MISSES, group_fd_,
                                 false, true);
    if (cache_misses_fd_ < 0) {
      close_fd(cache_refs_fd_);
    }
  }
  // Context switches: a software counter outside the hardware group (its own
  // fd keeps the group read layout fixed).  Kernel-side scheduling activity
  // is the point, so try including kernel events first.
  ctx_fd_ = perf_open(PERF_TYPE_SOFTWARE, PERF_COUNT_SW_CONTEXT_SWITCHES, -1, true, false);
  if (ctx_fd_ < 0) {
    ctx_fd_ = perf_open(PERF_TYPE_SOFTWARE, PERF_COUNT_SW_CONTEXT_SWITCHES, -1, true, true);
  }

  n_events_ = cache_refs_fd_ >= 0 && cache_misses_fd_ >= 0 ? 4 : 2;

#if defined(LMBPP_HAVE_RDPMC)
  // Userspace-read probe: mmap each hardware event's ring page, enable the
  // group once, and check that every page grants RDPMC (cap_user_rdpmc and
  // a live index).  All-or-nothing — mixing read paths within one snapshot
  // would let the events cover different spans.
  if (!config.no_rdpmc && !rdpmc_env_disabled()) {
    const int fds[4] = {group_fd_, instructions_fd_, cache_refs_fd_, cache_misses_fd_};
    bool mapped = true;
    for (int i = 0; i < n_events_; ++i) {
      void* page = mmap(nullptr, static_cast<size_t>(getpagesize()), PROT_READ, MAP_SHARED,
                        fds[i], 0);
      if (page == MAP_FAILED) {
        mapped = false;
        break;
      }
      pages_[i] = page;
    }
    if (mapped) {
      ioctl(group_fd_, PERF_EVENT_IOC_RESET, PERF_IOC_FLAG_GROUP);
      ioctl(group_fd_, PERF_EVENT_IOC_ENABLE, PERF_IOC_FLAG_GROUP);
      bool all_rdpmc = true;
      for (int i = 0; i < n_events_; ++i) {
        std::uint64_t ignored = 0;
        if (!read_page_total(
                static_cast<const volatile perf_event_mmap_page*>(pages_[i]), &ignored)) {
          all_rdpmc = false;
          break;
        }
      }
      if (all_rdpmc) {
        // Free-running from here on: start()/stop() only snapshot totals.
        userspace_ = true;
        if (ctx_fd_ >= 0) {
          ioctl(ctx_fd_, PERF_EVENT_IOC_RESET, 0);
          ioctl(ctx_fd_, PERF_EVENT_IOC_ENABLE, 0);
        }
      } else {
        ioctl(group_fd_, PERF_EVENT_IOC_DISABLE, PERF_IOC_FLAG_GROUP);
      }
    }
    if (!userspace_) {
      unmap_pages();
    }
  }
#endif  // LMBPP_HAVE_RDPMC
}

PerfCounters::~PerfCounters() {
  unmap_pages();
  close_fd(ctx_fd_);
  close_fd(cache_misses_fd_);
  close_fd(cache_refs_fd_);
  close_fd(instructions_fd_);
  close_fd(group_fd_);
}

void PerfCounters::unmap_pages() {
  for (void*& page : pages_) {
    if (page != nullptr) {
      munmap(page, static_cast<size_t>(getpagesize()));
      page = nullptr;
    }
  }
}

PerfCounters::Snapshot PerfCounters::snapshot_totals() const {
  Snapshot snap;
#if defined(LMBPP_HAVE_RDPMC)
  if (userspace_) {
    bool ok = true;
    for (int i = 0; i < n_events_; ++i) {
      std::uint64_t total = 0;
      if (!read_page_total(
              static_cast<const volatile perf_event_mmap_page*>(pages_[i]), &total)) {
        ok = false;
        break;
      }
      snap.values[i] = static_cast<double>(total);
    }
    if (ok) {
      snap.ok = true;
      snap.via_rdpmc = true;
      return snap;
    }
  }
#endif
  // Fallback (and the only path when RDPMC is unavailable mid-flight): one
  // group read() syscall.  Totals-since-enable either way, so a snapshot
  // pair still deltas correctly even when the two sides used different
  // paths.
  std::uint64_t buf[3 + 4] = {0};
  ssize_t n = read(group_fd_, buf, sizeof(buf));
  if (n < static_cast<ssize_t>((3 + n_events_) * sizeof(std::uint64_t)) ||
      buf[0] < static_cast<std::uint64_t>(n_events_)) {
    return snap;
  }
  for (int i = 0; i < n_events_; ++i) {
    snap.values[i] = static_cast<double>(buf[3 + i]);
  }
  snap.ok = true;
  return snap;
}

std::uint64_t PerfCounters::read_ctx_total() const {
  std::uint64_t ctx = 0;
  if (ctx_fd_ < 0 || read(ctx_fd_, &ctx, sizeof(ctx)) != static_cast<ssize_t>(sizeof(ctx))) {
    return 0;
  }
  return ctx;
}

void PerfCounters::start() {
  if (group_fd_ < 0) {
    return;
  }
  if (userspace_) {
    start_snap_ = snapshot_totals();
    ctx_start_ = read_ctx_total();
    return;
  }
  ioctl(group_fd_, PERF_EVENT_IOC_RESET, PERF_IOC_FLAG_GROUP);
  ioctl(group_fd_, PERF_EVENT_IOC_ENABLE, PERF_IOC_FLAG_GROUP);
  if (ctx_fd_ >= 0) {
    ioctl(ctx_fd_, PERF_EVENT_IOC_RESET, 0);
    ioctl(ctx_fd_, PERF_EVENT_IOC_ENABLE, 0);
  }
}

CounterSample PerfCounters::stop() {
  CounterSample s;
  if (group_fd_ < 0) {
    return s;
  }

  if (userspace_) {
    Snapshot end = snapshot_totals();
    if (!start_snap_.ok || !end.ok) {
      return s;
    }
    s.valid = true;
    s.cycles = end.values[0] - start_snap_.values[0];
    s.instructions = end.values[1] - start_snap_.values[1];
    if (n_events_ >= 4) {
      s.has_cache = true;
      s.cache_refs = end.values[2] - start_snap_.values[2];
      s.cache_misses = end.values[3] - start_snap_.values[3];
    }
    if (ctx_fd_ >= 0) {
      s.has_ctx = true;
      s.ctx_switches = static_cast<double>(read_ctx_total() - ctx_start_);
    }
    return s;
  }

  ioctl(group_fd_, PERF_EVENT_IOC_DISABLE, PERF_IOC_FLAG_GROUP);
  if (ctx_fd_ >= 0) {
    ioctl(ctx_fd_, PERF_EVENT_IOC_DISABLE, 0);
  }

  // Group read layout (PERF_FORMAT_GROUP | TOTAL_TIME_ENABLED |
  // TOTAL_TIME_RUNNING): nr, time_enabled, time_running, then one value per
  // member in creation order: cycles, instructions[, cache_refs,
  // cache_misses].
  std::uint64_t buf[3 + 4] = {0};
  ssize_t n = read(group_fd_, buf, sizeof(buf));
  if (n < static_cast<ssize_t>(5 * sizeof(std::uint64_t))) {
    return s;
  }
  std::uint64_t nr = buf[0];
  std::uint64_t enabled = buf[1];
  std::uint64_t running = buf[2];
  if (nr < 2) {
    return s;
  }
  // When the PMU was oversubscribed the group only ran part-time; scale the
  // raw counts up by enabled/running (standard perf practice) and flag it.
  double scale = 1.0;
  if (running > 0 && running < enabled) {
    scale = static_cast<double>(enabled) / static_cast<double>(running);
    s.multiplexed = true;
  } else if (running == 0) {
    return s;  // never scheduled: nothing was measured
  }
  s.valid = true;
  s.cycles = static_cast<double>(buf[3]) * scale;
  s.instructions = static_cast<double>(buf[4]) * scale;
  if (nr >= 4 && cache_refs_fd_ >= 0 && cache_misses_fd_ >= 0) {
    s.has_cache = true;
    s.cache_refs = static_cast<double>(buf[5]) * scale;
    s.cache_misses = static_cast<double>(buf[6]) * scale;
  }
  if (ctx_fd_ >= 0) {
    std::uint64_t ctx = 0;
    if (read(ctx_fd_, &ctx, sizeof(ctx)) == static_cast<ssize_t>(sizeof(ctx))) {
      s.has_ctx = true;
      s.ctx_switches = static_cast<double>(ctx);
    }
  }
  return s;
}

bool PerfCounters::supported() {
  static const bool kSupported = [] {
    if (counters_env_disabled()) {
      return false;
    }
    PerfCounters probe;
    return probe.available();
  }();
  return kSupported && !counters_env_disabled();
}

#else  // !__linux__

PerfCounters::PerfCounters(const Config&) {}
PerfCounters::~PerfCounters() = default;
void PerfCounters::start() {}
CounterSample PerfCounters::stop() { return CounterSample{}; }
bool PerfCounters::supported() { return false; }

#endif  // __linux__

}  // namespace lmb::obs
