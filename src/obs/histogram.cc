#include "src/obs/histogram.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <stdexcept>

namespace lmb::obs {

LatencyHistogram::LatencyHistogram(HistogramConfig cfg) : cfg_(cfg) {
  if (cfg_.sub_bucket_bits < 2 || cfg_.sub_bucket_bits > 20) {
    throw std::invalid_argument("histogram sub_bucket_bits out of range [2, 20]");
  }
  if (cfg_.max_value_ns < (Nanos{1} << cfg_.sub_bucket_bits)) {
    throw std::invalid_argument("histogram max_value_ns below sub-bucket range");
  }
  sub_bits_ = cfg_.sub_bucket_bits;
  sub_count_ = std::uint64_t{1} << sub_bits_;
  half_ = sub_count_ / 2;
  k_max_ = std::bit_width(static_cast<std::uint64_t>(cfg_.max_value_ns)) - sub_bits_;
  // Buckets for shift k occupy flat indices [(k+1)*half, (k+2)*half); the
  // unit run [0, sub_count) is k = 0 and 1 merged.
  counts_.assign(static_cast<std::size_t>((k_max_ + 2) * half_), 0);
}

std::size_t LatencyHistogram::index_for(std::uint64_t v) const {
  if (v < sub_count_) return static_cast<std::size_t>(v);
  int k = std::bit_width(v) - sub_bits_;
  return static_cast<std::size_t>(static_cast<std::uint64_t>(k) * half_ + (v >> k));
}

void LatencyHistogram::record(Nanos value_ns) {
  std::uint64_t v = value_ns < 0 ? 0 : static_cast<std::uint64_t>(value_ns);
  if (value_ns > cfg_.max_value_ns) {
    ++saturated_;
    v = static_cast<std::uint64_t>(cfg_.max_value_ns);
  }
  ++counts_[index_for(v)];
  Nanos clamped = static_cast<Nanos>(v);
  if (count_ == 0) {
    min_ = max_ = clamped;
  } else {
    min_ = std::min(min_, clamped);
    max_ = std::max(max_, clamped);
  }
  sum_ += static_cast<double>(clamped);
  ++count_;
}

void LatencyHistogram::merge(const LatencyHistogram& other) {
  if (!(cfg_ == other.cfg_)) {
    throw std::invalid_argument("cannot merge histograms with different configs");
  }
  for (std::size_t i = 0; i < counts_.size(); ++i) counts_[i] += other.counts_[i];
  if (other.count_ > 0) {
    min_ = count_ == 0 ? other.min_ : std::min(min_, other.min_);
    max_ = count_ == 0 ? other.max_ : std::max(max_, other.max_);
  }
  count_ += other.count_;
  saturated_ += other.saturated_;
  sum_ += other.sum_;
}

void LatencyHistogram::clear() {
  std::fill(counts_.begin(), counts_.end(), 0);
  count_ = saturated_ = 0;
  min_ = max_ = 0;
  sum_ = 0.0;
}

Nanos LatencyHistogram::bucket_lower(std::size_t index) const {
  if (index < sub_count_) return static_cast<Nanos>(index);
  std::uint64_t k = index / half_ - 1;
  std::uint64_t sub = index - k * half_;
  return static_cast<Nanos>(sub << k);
}

Nanos LatencyHistogram::bucket_upper(std::size_t index) const {
  if (index < sub_count_) return static_cast<Nanos>(index + 1);
  std::uint64_t k = index / half_ - 1;
  std::uint64_t sub = index - k * half_;
  return static_cast<Nanos>((sub + 1) << k);
}

std::pair<std::size_t, std::size_t> LatencyHistogram::nonzero_range() const {
  if (count_ == 0) return {0, 0};
  std::size_t first = 0;
  while (counts_[first] == 0) ++first;
  std::size_t last = counts_.size() - 1;
  while (counts_[last] == 0) --last;
  return {first, last};
}

double LatencyHistogram::percentile(double p) const {
  if (count_ == 0) return 0.0;
  p = std::clamp(p, 0.0, 100.0);
  std::uint64_t rank = static_cast<std::uint64_t>(std::ceil(p / 100.0 * static_cast<double>(count_)));
  rank = std::clamp<std::uint64_t>(rank, 1, count_);
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    seen += counts_[i];
    if (seen >= rank) {
      double mid = (static_cast<double>(bucket_lower(i)) + static_cast<double>(bucket_upper(i))) / 2.0;
      return std::clamp(mid, static_cast<double>(min_), static_cast<double>(max_));
    }
  }
  return static_cast<double>(max_);
}

double LatencyHistogram::max_relative_error() const {
  return 1.0 / static_cast<double>(sub_count_);
}

}  // namespace lmb::obs
