// Run provenance: a snapshot of the environment a benchmark batch ran
// under, embedded in every serialized batch and diffed by lmbench_compare.
//
// Continuous-benchmarking practice (ROOT's performance CI) shows regression
// gates are only trustworthy when each run records its environment: a
// "regression" between a governor=performance baseline and a
// governor=powersave candidate is a configuration change, not a code
// change.  Every field is a string — captured verbatim from sysfs/procfs —
// so serialization and diffing stay uniform and lossless.
//
// capture_run_environment takes overridable sysfs/proc roots so tests can
// point it at a stub tree; production callers use the defaults.
#ifndef LMBENCHPP_SRC_OBS_RUN_ENV_H_
#define LMBENCHPP_SRC_OBS_RUN_ENV_H_

#include <string>
#include <vector>

namespace lmb::obs {

struct RunEnvironment {
  std::string hostname;
  std::string os;         // uname sysname
  std::string kernel;     // uname release
  std::string machine;    // uname machine
  std::string cpu_model;
  std::string cpu_count;  // online CPUs, as text
  std::string topology;   // "8 cpus / 4 cores / 1 socket" (PR 4 topology)
  std::string governor;   // "performance", "powersave", "mixed(...)", "unknown"
  std::string turbo;      // "on" / "off" / "unknown"
  std::string smt;        // "on" / "off" / "unknown"
  std::string aslr;       // /proc/sys/kernel/randomize_va_space: "0".."2" / "unknown"
  // Core-isolation kernel parameters from /proc/cmdline, the knobs a
  // nanoscale-timing host should have set (a dedicated CPU list keeps the
  // tick, RCU callbacks, and other tasks off the measured cores).  Each is
  // the parameter's cpu-list value verbatim, or "none" when the parameter
  // is absent ("unknown" when /proc/cmdline was unreadable).
  std::string isolcpus;
  std::string nohz_full;
  std::string rcu_nocbs;
  std::string loadavg1;   // 1-minute load average at capture time
  std::string compiler;   // compiler that built this binary
  std::string build;      // build type + flags baked in at configure time

  // Noise warnings computed at capture time (see environment_warnings); kept
  // in the snapshot so a saved batch still says what was wrong that day.
  std::vector<std::string> warnings;

  bool empty() const;  // true when nothing was captured
};

// One named field of the snapshot.  `significant` marks fields whose
// mismatch between two batches makes a comparison suspect (loadavg and
// hostname are informational; governor/turbo/kernel/... are significant).
struct EnvField {
  std::string name;
  std::string value;
  bool significant = false;
};

// The snapshot's scalar fields in stable order (serialization + diffing).
std::vector<EnvField> environment_fields(const RunEnvironment& env);

// Inverse of environment_fields for one field; unknown names are ignored
// (forward compatibility with newer producers).
void set_environment_field(RunEnvironment& env, const std::string& name,
                           const std::string& value);

// Gathers the snapshot.  Never throws; unreadable facts become "unknown" or
// stay empty.  `sysfs_root`/`proc_root` default to the real trees and are
// overridable for tests.
RunEnvironment capture_run_environment(const std::string& sysfs_root = "/sys",
                                       const std::string& proc_root = "/proc");

// Noisy-environment warnings for a snapshot: governor not "performance",
// turbo boost enabled, load average high relative to the CPU count.  Empty
// when the environment looks benchmark-quiet.
std::vector<std::string> environment_warnings(const RunEnvironment& env);

// One differing field between two snapshots.
struct EnvDelta {
  std::string field;
  std::string baseline;
  std::string current;
  bool significant = false;
};

// Field-by-field diff (fields missing on both sides are skipped).
std::vector<EnvDelta> diff_environments(const RunEnvironment& baseline,
                                        const RunEnvironment& current);

}  // namespace lmb::obs

#endif  // LMBENCHPP_SRC_OBS_RUN_ENV_H_
