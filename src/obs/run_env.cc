#include "src/obs/run_env.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>

#include "src/core/env.h"
#include "src/core/topology.h"

namespace lmb::obs {

namespace {

// First line of a sysfs/procfs file, trailing whitespace stripped; "" on
// any error (absent file, restricted container).
std::string read_line(const std::string& path) {
  std::ifstream in(path);
  std::string line;
  if (!std::getline(in, line)) {
    return "";
  }
  while (!line.empty() &&
         std::isspace(static_cast<unsigned char>(line.back()))) {
    line.pop_back();
  }
  return line;
}

std::string or_unknown(std::string s) { return s.empty() ? "unknown" : std::move(s); }

// Scans cpu*/cpufreq/scaling_governor under the sysfs cpu directory.  One
// agreed value comes back as-is; disagreement as "mixed(a,b)"; none found
// as "unknown".
std::string scan_governor(const std::string& cpu_dir) {
  std::set<std::string> seen;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(cpu_dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.size() < 4 || name.compare(0, 3, "cpu") != 0 ||
        !std::isdigit(static_cast<unsigned char>(name[3]))) {
      continue;
    }
    std::string governor = read_line(entry.path().string() + "/cpufreq/scaling_governor");
    if (!governor.empty()) {
      seen.insert(governor);
    }
  }
  if (seen.empty()) {
    return "unknown";
  }
  if (seen.size() == 1) {
    return *seen.begin();
  }
  std::string out = "mixed(";
  bool first = true;
  for (const std::string& g : seen) {
    out += (first ? "" : ",") + g;
    first = false;
  }
  return out + ")";
}

// Turbo state: intel_pstate exposes no_turbo (1 = turbo OFF); acpi-cpufreq
// exposes boost (1 = turbo ON).
std::string scan_turbo(const std::string& cpu_dir) {
  std::string no_turbo = read_line(cpu_dir + "/intel_pstate/no_turbo");
  if (no_turbo == "0") {
    return "on";
  }
  if (no_turbo == "1") {
    return "off";
  }
  std::string boost = read_line(cpu_dir + "/cpufreq/boost");
  if (boost == "1") {
    return "on";
  }
  if (boost == "0") {
    return "off";
  }
  return "unknown";
}

std::string scan_smt(const std::string& cpu_dir) {
  std::string active = read_line(cpu_dir + "/smt/active");
  if (active == "1") {
    return "on";
  }
  if (active == "0") {
    return "off";
  }
  return "unknown";
}

// Value of one `key=value` kernel boot parameter in a /proc/cmdline line;
// "none" when the parameter is absent, the verbatim value otherwise.
// Matches whole parameter names only (isolcpus, not e.g. foo_isolcpus).
std::string cmdline_param(const std::string& cmdline, const std::string& key) {
  size_t pos = 0;
  while (pos < cmdline.size()) {
    size_t end = cmdline.find(' ', pos);
    if (end == std::string::npos) {
      end = cmdline.size();
    }
    const std::string token = cmdline.substr(pos, end - pos);
    if (token.compare(0, key.size() + 1, key + "=") == 0) {
      return token.substr(key.size() + 1);
    }
    pos = end + 1;
  }
  return "none";
}

}  // namespace

bool RunEnvironment::empty() const {
  for (const EnvField& f : environment_fields(*this)) {
    if (!f.value.empty()) {
      return false;
    }
  }
  return warnings.empty();
}

std::vector<EnvField> environment_fields(const RunEnvironment& env) {
  return {
      {"hostname", env.hostname, false},
      {"os", env.os, true},
      {"kernel", env.kernel, true},
      {"machine", env.machine, true},
      {"cpu_model", env.cpu_model, true},
      {"cpu_count", env.cpu_count, true},
      {"topology", env.topology, true},
      {"governor", env.governor, true},
      {"turbo", env.turbo, true},
      {"smt", env.smt, true},
      {"aslr", env.aslr, true},
      {"isolcpus", env.isolcpus, true},
      {"nohz_full", env.nohz_full, true},
      {"rcu_nocbs", env.rcu_nocbs, true},
      {"loadavg1", env.loadavg1, false},
      {"compiler", env.compiler, true},
      {"build", env.build, true},
  };
}

void set_environment_field(RunEnvironment& env, const std::string& name,
                           const std::string& value) {
  if (name == "hostname") env.hostname = value;
  else if (name == "os") env.os = value;
  else if (name == "kernel") env.kernel = value;
  else if (name == "machine") env.machine = value;
  else if (name == "cpu_model") env.cpu_model = value;
  else if (name == "cpu_count") env.cpu_count = value;
  else if (name == "topology") env.topology = value;
  else if (name == "governor") env.governor = value;
  else if (name == "turbo") env.turbo = value;
  else if (name == "smt") env.smt = value;
  else if (name == "aslr") env.aslr = value;
  else if (name == "isolcpus") env.isolcpus = value;
  else if (name == "nohz_full") env.nohz_full = value;
  else if (name == "rcu_nocbs") env.rcu_nocbs = value;
  else if (name == "loadavg1") env.loadavg1 = value;
  else if (name == "compiler") env.compiler = value;
  else if (name == "build") env.build = value;
  // Unknown fields from newer producers are ignored.
}

RunEnvironment capture_run_environment(const std::string& sysfs_root,
                                       const std::string& proc_root) {
  RunEnvironment env;

  SystemInfo info = query_system_info();
  env.hostname = info.hostname;
  env.os = info.os_name;
  env.kernel = info.os_release;
  env.machine = info.machine;
  env.cpu_model = or_unknown(info.cpu_model);
  env.cpu_count = std::to_string(info.cpu_count);
  env.topology = query_topology().summary();

  const std::string cpu_dir = sysfs_root + "/devices/system/cpu";
  env.governor = scan_governor(cpu_dir);
  env.turbo = scan_turbo(cpu_dir);
  env.smt = scan_smt(cpu_dir);
  env.aslr = or_unknown(read_line(proc_root + "/sys/kernel/randomize_va_space"));

  std::string cmdline = read_line(proc_root + "/cmdline");
  // /proc/cmdline separates parameters with spaces but some stub trees (and
  // the kernel's own args passing) use NULs; normalize before scanning.
  std::replace(cmdline.begin(), cmdline.end(), '\0', ' ');
  if (cmdline.empty()) {
    env.isolcpus = env.nohz_full = env.rcu_nocbs = "unknown";
  } else {
    env.isolcpus = cmdline_param(cmdline, "isolcpus");
    env.nohz_full = cmdline_param(cmdline, "nohz_full");
    env.rcu_nocbs = cmdline_param(cmdline, "rcu_nocbs");
  }

  std::string loadavg = read_line(proc_root + "/loadavg");
  std::istringstream ls(loadavg);
  ls >> env.loadavg1;

#if defined(__clang__)
  env.compiler = std::string("clang ") + __VERSION__;
#elif defined(__GNUC__)
  env.compiler = std::string("gcc ") + __VERSION__;
#else
  env.compiler = "unknown";
#endif
#if defined(LMBPP_BUILD_INFO)
  env.build = LMBPP_BUILD_INFO;
#else
  env.build = "unknown";
#endif

  env.warnings = environment_warnings(env);
  return env;
}

std::vector<std::string> environment_warnings(const RunEnvironment& env) {
  std::vector<std::string> warnings;
  if (!env.governor.empty() && env.governor != "unknown" && env.governor != "performance") {
    warnings.push_back("cpu frequency governor is '" + env.governor +
                       "' (not 'performance'); timings will be noisier and slower");
  }
  if (env.turbo == "on") {
    warnings.push_back(
        "turbo boost is enabled; clock frequency will vary with thermal headroom "
        "across the run");
  }
  if (env.isolcpus == "none" && env.nohz_full == "none" && env.rcu_nocbs == "none") {
    warnings.push_back(
        "no core isolation (isolcpus/nohz_full/rcu_nocbs unset); timer ticks and "
        "stray tasks share the measured cores — nanoscale timings will carry more "
        "outliers");
  }
  double load = -1.0;
  try {
    if (!env.loadavg1.empty()) {
      load = std::stod(env.loadavg1);
    }
  } catch (...) {
    load = -1.0;
  }
  int cpus = 0;
  try {
    if (!env.cpu_count.empty()) {
      cpus = std::stoi(env.cpu_count);
    }
  } catch (...) {
    cpus = 0;
  }
  double threshold = std::max(1.0, 0.5 * cpus);
  if (load > threshold) {
    char buf[128];
    std::snprintf(buf, sizeof(buf),
                  "load average %.2f is high for %d cpus; other processes will perturb "
                  "timings",
                  load, cpus);
    warnings.push_back(buf);
  }
  return warnings;
}

std::vector<EnvDelta> diff_environments(const RunEnvironment& baseline,
                                        const RunEnvironment& current) {
  std::vector<EnvDelta> deltas;
  std::vector<EnvField> b = environment_fields(baseline);
  std::vector<EnvField> c = environment_fields(current);
  for (size_t i = 0; i < b.size(); ++i) {
    if (b[i].value == c[i].value) {
      continue;
    }
    if (b[i].value.empty() && c[i].value.empty()) {
      continue;
    }
    deltas.push_back({b[i].name, b[i].value, c[i].value, b[i].significant});
  }
  return deltas;
}

}  // namespace lmb::obs
