// Timing-decision tracing: a low-overhead structured event sink the timing
// engine and suite runner emit into, so a suspicious number can be explained
// after the fact.
//
// The paper's credibility rests on its timing methodology (§3.4) — loop
// calibration, warm-up, min-of-N — but those decisions are invisible in the
// headline number.  A TraceSink records them as timestamped events:
// calibration probes and the count they settled on, warm-up runs, every
// timed repetition, early-stop and budget-exhaustion triggers, calibration-
// cache hits/misses, and scheduler placement under --jobs.  Exporters live
// in src/report/trace_io.h (lmbenchpp.trace.v1 JSON and Chrome trace_event
// format, so a suite run opens in about:tracing / Perfetto).
//
// Overhead contract: with no sink installed every emission site is a single
// thread-local read and branch; with a sink, one mutex-guarded push_back per
// event (events fire per *interval*, not per benchmark-loop iteration, so
// the measured operation itself is never perturbed — the sink is only
// touched outside the clock-read window).
#ifndef LMBENCHPP_SRC_OBS_TRACE_H_
#define LMBENCHPP_SRC_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <initializer_list>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "src/core/clock.h"

namespace lmb::obs {

// One structured event.  `dur < 0` marks an instant event; `dur >= 0` a
// complete span.  Timestamps are nanoseconds since the sink's epoch (its
// construction time), so events from every thread share one timeline.
struct TraceEvent {
  Nanos ts = 0;
  Nanos dur = -1;
  std::string cat;    // "suite", "scheduler", "calibration", "timing", "counters", "load"
  std::string name;
  std::string bench;  // owning benchmark; "" for suite-level events
  int tid = 0;        // per-OS-thread ordinal assigned by the sink (from 1)
  std::vector<std::pair<std::string, std::string>> args;
};

// Event argument list, in emission order.
using TraceArgs = std::vector<std::pair<std::string, std::string>>;

// Thread-safe append-only event store.  Emitters stamp events with the
// sink's clock and the current ObsScope's benchmark name; threads are
// numbered in order of first emission (stable for one sink's lifetime).
class TraceSink {
 public:
  explicit TraceSink(const Clock& clock = WallClock::instance());

  TraceSink(const TraceSink&) = delete;
  TraceSink& operator=(const TraceSink&) = delete;

  // Nanoseconds since this sink's epoch; the `start_ts` for complete().
  Nanos timestamp() const { return clock_->now() - epoch_; }

  // Records an instant event at the current timestamp.
  void instant(std::string cat, std::string name, TraceArgs args = {});

  // Records a complete span from `start_ts` (a prior timestamp() read) to
  // now.
  void complete(std::string cat, std::string name, Nanos start_ts, TraceArgs args = {});

  // Snapshot of every event recorded so far, in emission order.
  std::vector<TraceEvent> events() const;

  size_t size() const;

 private:
  void push(TraceEvent event);
  int thread_id();

  const Clock* clock_;
  Nanos epoch_;
  std::uint64_t id_;  // process-unique; keys per-thread ordinal slots
  mutable std::mutex mu_;
  std::vector<TraceEvent> events_;
  int next_tid_ = 0;
};

// RAII thread-local observation context: which benchmark is measuring, the
// trace sink its events go to, and whether hardware counters should be
// sampled around its timed intervals.  measure() (src/core/timing.cc)
// consults the innermost scope on its thread — no scope means tracing and
// counter sampling are both off, the behavior of every direct measure()
// call outside an instrumented suite run.  Scopes nest and are strictly
// per-thread (same discipline as CalibrationScope).
class ObsScope {
 public:
  ObsScope(TraceSink* sink, bool counters, std::string bench, int worker = -1);
  ~ObsScope();

  ObsScope(const ObsScope&) = delete;
  ObsScope& operator=(const ObsScope&) = delete;

  // Innermost scope on the calling thread; nullptr outside any scope.
  static ObsScope* current();

  TraceSink* sink() const { return sink_; }
  bool counters() const { return counters_; }
  const std::string& bench() const { return bench_; }
  int worker() const { return worker_; }

 private:
  TraceSink* sink_;
  bool counters_;
  std::string bench_;
  int worker_;
  ObsScope* prev_;
};

}  // namespace lmb::obs

#endif  // LMBENCHPP_SRC_OBS_TRACE_H_
