// Hardware performance counters around measured intervals, nanoBench-style:
// reading instructions/cycles/cache events next to each timed interval turns
// "this ran slower" into "this missed cache".
//
// PerfCounters is an RAII wrapper over perf_event_open(2) counting this
// thread's instructions, cycles, cache-references and cache-misses as one
// group (single group read, so all four cover exactly the same span) plus
// context switches as a separate software counter.  Fallback is graceful
// and total: when the syscall is unavailable (non-Linux, seccomp ENOSYS) or
// forbidden (perf_event_paranoid, EACCES/EPERM), every operation is a no-op
// and stop() returns an invalid sample — callers surface that as explicit
// nulls, never zeros.  Cache events may be individually absent (bare VMs);
// IPC then still works and only the miss rate is null.
#ifndef LMBENCHPP_SRC_OBS_PERF_COUNTERS_H_
#define LMBENCHPP_SRC_OBS_PERF_COUNTERS_H_

namespace lmb::obs {

// One start()..stop() span's counter values.  Values are doubles because
// multiplexed counters are scaled by time_enabled/time_running (the kernel
// rotates groups when the PMU is oversubscribed).
struct CounterSample {
  bool valid = false;        // cycles + instructions were read
  bool has_cache = false;    // cache-references/misses were read
  bool has_ctx = false;      // context-switch counter was read
  bool multiplexed = false;  // values were scaled (group ran part-time)
  double cycles = 0;
  double instructions = 0;
  double cache_refs = 0;
  double cache_misses = 0;
  double ctx_switches = 0;
};

// Accumulated counter totals over every sampled interval of one
// measurement.  The derived ratios are what flow into RunResult and the
// JSON/CSV/compare pipeline.
struct CounterTotals {
  int intervals = 0;  // samples accumulated
  bool has_cache = false;
  bool has_ctx = false;
  bool multiplexed = false;
  double cycles = 0;
  double instructions = 0;
  double cache_refs = 0;
  double cache_misses = 0;
  double ctx_switches = 0;

  // Folds one valid sample in (invalid samples are ignored).
  void add(const CounterSample& s);

  // Instructions per cycle; NaN when no cycles were counted.
  double ipc() const;

  // cache-misses / cache-references in [0, 1]; NaN when cache events were
  // unavailable or nothing was referenced.
  double cache_miss_rate() const;
};

class PerfCounters {
 public:
  struct Config {
    // Forces the fallback path (as if perf_event_open returned ENOSYS) —
    // for tests and --no-counters style opt-outs.
    bool disabled = false;
  };

  PerfCounters() : PerfCounters(Config{}) {}
  explicit PerfCounters(const Config& config);
  ~PerfCounters();

  PerfCounters(const PerfCounters&) = delete;
  PerfCounters& operator=(const PerfCounters&) = delete;

  // True when the counter group opened; false means every start()/stop()
  // is a no-op returning invalid samples.
  bool available() const { return group_fd_ >= 0; }

  // Resets and enables the counters.  No-op when unavailable.
  void start();

  // Disables and reads the counters.  Invalid sample when unavailable.
  CounterSample stop();

  // Whether this process can open the core counter group at all (probed
  // once and memoized).  Also false when the LMBPP_NO_COUNTERS environment
  // variable is set — the CI/test escape hatch for restricted runners.
  static bool supported();

 private:
  int group_fd_ = -1;  // leader: cycles
  int instructions_fd_ = -1;
  int cache_refs_fd_ = -1;
  int cache_misses_fd_ = -1;
  int ctx_fd_ = -1;  // software counter, read separately
};

}  // namespace lmb::obs

#endif  // LMBENCHPP_SRC_OBS_PERF_COUNTERS_H_
