// Hardware performance counters around measured intervals, nanoBench-style:
// reading instructions/cycles/cache events next to each timed interval turns
// "this ran slower" into "this missed cache".
//
// PerfCounters is an RAII wrapper over perf_event_open(2) counting this
// thread's instructions, cycles, cache-references and cache-misses as one
// group (single group read, so all four cover exactly the same span) plus
// context switches as a separate software counter.  Fallback is graceful
// and total: when the syscall is unavailable (non-Linux, seccomp ENOSYS) or
// forbidden (perf_event_paranoid, EACCES/EPERM), every operation is a no-op
// and stop() returns an invalid sample — callers surface that as explicit
// nulls, never zeros.  Cache events may be individually absent (bare VMs);
// IPC then still works and only the miss rate is null.
//
// Userspace RDPMC (nanoBench-style): when the kernel exports the counters
// through the mmap'd perf_event ring page with cap_user_rdpmc set, start()/
// stop() become pure userspace snapshots — a seqlock-guarded RDPMC per event
// instead of two ioctls and a read() syscall per interval, dropping the
// per-sample cost from ~microseconds to ~tens of nanoseconds.  The group is
// then enabled once and left free-running; each snapshot is a totals read
// and an interval is the delta of two snapshots.  Any page that loses its
// RDPMC mapping mid-flight (index == 0 after a reschedule) degrades that
// snapshot to the group read() syscall — same totals, slower read — so an
// interval is never lost.  LMBPP_NO_RDPMC (or Config::no_rdpmc) forces the
// classic ioctl path.
#ifndef LMBENCHPP_SRC_OBS_PERF_COUNTERS_H_
#define LMBENCHPP_SRC_OBS_PERF_COUNTERS_H_

#include <cstdint>

namespace lmb::obs {

// One start()..stop() span's counter values.  Values are doubles because
// multiplexed counters are scaled by time_enabled/time_running (the kernel
// rotates groups when the PMU is oversubscribed).
struct CounterSample {
  bool valid = false;        // cycles + instructions were read
  bool has_cache = false;    // cache-references/misses were read
  bool has_ctx = false;      // context-switch counter was read
  bool multiplexed = false;  // values were scaled (group ran part-time)
  double cycles = 0;
  double instructions = 0;
  double cache_refs = 0;
  double cache_misses = 0;
  double ctx_switches = 0;
};

// Accumulated counter totals over every sampled interval of one
// measurement.  The derived ratios are what flow into RunResult and the
// JSON/CSV/compare pipeline.
struct CounterTotals {
  int intervals = 0;  // samples accumulated
  bool has_cache = false;
  bool has_ctx = false;
  bool multiplexed = false;
  double cycles = 0;
  double instructions = 0;
  double cache_refs = 0;
  double cache_misses = 0;
  double ctx_switches = 0;

  // Folds one valid sample in (invalid samples are ignored).
  void add(const CounterSample& s);

  // Instructions per cycle; NaN when no cycles were counted.
  double ipc() const;

  // cache-misses / cache-references in [0, 1]; NaN when cache events were
  // unavailable or nothing was referenced.
  double cache_miss_rate() const;
};

class PerfCounters {
 public:
  struct Config {
    // Forces the fallback path (as if perf_event_open returned ENOSYS) —
    // for tests and --no-counters style opt-outs.
    bool disabled = false;
    // Forces the ioctl+read() path even when cap_user_rdpmc is available —
    // for tests and A/B-ing the two read paths.  LMBPP_NO_RDPMC has the
    // same effect.
    bool no_rdpmc = false;
  };

  PerfCounters() : PerfCounters(Config{}) {}
  explicit PerfCounters(const Config& config);
  ~PerfCounters();

  PerfCounters(const PerfCounters&) = delete;
  PerfCounters& operator=(const PerfCounters&) = delete;

  // True when the counter group opened; false means every start()/stop()
  // is a no-op returning invalid samples.
  bool available() const { return group_fd_ >= 0; }

  // Resets and enables the counters (ioctl path) or snapshots the
  // free-running totals (userspace RDPMC path).  No-op when unavailable.
  void start();

  // Disables and reads the counters, or snapshots again and returns the
  // delta (userspace path).  Invalid sample when unavailable.
  CounterSample stop();

  // True when start()/stop() read the counters from userspace via RDPMC on
  // the mmap'd ring pages; false means the classic ioctl+read() path (also
  // the answer when !available()).
  bool userspace() const { return userspace_; }

  // Whether this process can open the core counter group at all (probed
  // once and memoized).  Also false when the LMBPP_NO_COUNTERS environment
  // variable is set — the CI/test escape hatch for restricted runners.
  static bool supported();

 private:
  // Totals-since-enable for the hardware group at one instant, plus how
  // they were obtained (RDPMC pages vs the read() syscall fallback).
  struct Snapshot {
    bool ok = false;
    bool via_rdpmc = false;
    double values[4] = {0, 0, 0, 0};  // cycles, instructions, refs, misses
  };

  Snapshot snapshot_totals() const;
  std::uint64_t read_ctx_total() const;
  void unmap_pages();

  int group_fd_ = -1;  // leader: cycles
  int instructions_fd_ = -1;
  int cache_refs_fd_ = -1;
  int cache_misses_fd_ = -1;
  int ctx_fd_ = -1;  // software counter, read separately

  // Userspace-read state: one mmap'd perf_event ring page per hardware
  // event, in the same order as Snapshot::values.  All null outside
  // userspace mode.
  void* pages_[4] = {nullptr, nullptr, nullptr, nullptr};
  int n_events_ = 0;       // hardware events opened (2 or 4)
  bool userspace_ = false;
  Snapshot start_snap_;
  std::uint64_t ctx_start_ = 0;
};

}  // namespace lmb::obs

#endif  // LMBENCHPP_SRC_OBS_PERF_COUNTERS_H_
