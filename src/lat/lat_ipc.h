// Interprocess-communication latencies — paper §6.7, Tables 11–13, 15.
//
// All benchmarks have the paper's canonical form: "pass a small message (a
// byte or so) back and forth between two processes.  The reported results
// are always the microseconds needed to do one round trip."
#ifndef LMBENCHPP_SRC_LAT_LAT_IPC_H_
#define LMBENCHPP_SRC_LAT_LAT_IPC_H_

#include "src/core/timing.h"

namespace lmb::lat {

struct IpcLatConfig {
  TimingPolicy policy = TimingPolicy::standard();
  // Message payload (paper: one 4-byte word).
  size_t message_bytes = 4;

  static IpcLatConfig quick() {
    IpcLatConfig c;
    c.policy = TimingPolicy::quick();
    return c;
  }
};

// Round trip over a pair of pipes (Table 11).  Identical to the two-process
// zero-footprint context-switch benchmark plus pipe overhead.
Measurement measure_pipe_latency(const IpcLatConfig& config = {});

// Round trip over an AF_UNIX socket pair (lmbench lat_unix).
Measurement measure_unix_latency(const IpcLatConfig& config = {});

// Round trip over loopback TCP with TCP_NODELAY (Table 12).
Measurement measure_tcp_latency(const IpcLatConfig& config = {});

// Round trip over loopback UDP (Table 13).
Measurement measure_udp_latency(const IpcLatConfig& config = {});

// TCP connection establishment: repeated connect()+close() against a
// loopback listener; "Twenty connects are completed and the fastest of them
// is used as the result" (Table 15, §6.7).
struct ConnectConfig {
  int connects = 20;
};
Measurement measure_tcp_connect(const ConnectConfig& config = {});

}  // namespace lmb::lat

#endif  // LMBENCHPP_SRC_LAT_LAT_IPC_H_
