// The tiny program exec'd by the process-creation benchmarks — "a tiny
// program that prints 'hello world' and exits" (paper §6.5).
#include <unistd.h>

int main() {
  const char msg[] = "hello world\n";
  ssize_t n = write(STDOUT_FILENO, msg, sizeof(msg) - 1);
  return n == static_cast<ssize_t>(sizeof(msg) - 1) ? 0 : 1;
}
