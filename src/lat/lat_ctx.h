// Context switching — paper §6.6, Figure 2, Table 10.
//
// "The context switch benchmark is implemented as a ring of two to twenty
// processes that are connected with Unix pipes.  A token is passed from
// process to process, forcing context switches."  The cost of passing the
// token itself (pipe read/write plus summing the cache footprint) is
// measured separately in a single process and subtracted, and each process
// carries an artificial cache footprint that it sums on every token receipt.
#ifndef LMBENCHPP_SRC_LAT_LAT_CTX_H_
#define LMBENCHPP_SRC_LAT_LAT_CTX_H_

#include <cstddef>
#include <vector>

#include "src/core/timing.h"

namespace lmb::lat {

struct CtxConfig {
  // Ring size, including the parent (paper: 2 to 20).
  int processes = 2;
  // Per-process array summed on each token receipt (paper: 0 to 64 KB).
  size_t footprint_bytes = 0;
  // Total token hops per timed run (paper: 2000).
  int token_passes = 2000;
  // Timed runs; minimum taken (§3.4: up to 30% variance on this benchmark).
  int repetitions = 5;

  static CtxConfig quick() {
    CtxConfig c;
    c.token_passes = 300;
    c.repetitions = 2;
    return c;
  }
};

struct CtxResult {
  int processes = 0;
  size_t footprint_bytes = 0;
  // Per-switch time with the token-passing overhead subtracted (the number
  // Figure 2 and Table 10 report).
  double ctx_us = 0.0;
  // Token-pass cost per hop, measured in a single process (the "overhead="
  // labels in Figure 2's legend).
  double overhead_us = 0.0;
  // Raw per-hop time in the ring (ctx_us + overhead_us).
  double raw_us = 0.0;
};

// One configuration.
CtxResult measure_ctx(const CtxConfig& config = {});

// The Figure-2 surface: every (processes, footprint) combination.
std::vector<CtxResult> sweep_ctx(const std::vector<int>& process_counts,
                                 const std::vector<size_t>& footprints,
                                 const CtxConfig& base = {});

}  // namespace lmb::lat

#endif  // LMBENCHPP_SRC_LAT_LAT_CTX_H_
