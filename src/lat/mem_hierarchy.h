// Memory-hierarchy extraction — paper Table 6.
//
// "Table 6 shows the cache size, cache latency, and main memory latency as
// extracted from the memory latency graphs."  Given a latency-vs-size curve
// (one stride), this module finds the plateaus (cache levels) and the
// transition points (cache sizes), plus the cache line size from the
// stride-sensitivity of the largest arrays.
#ifndef LMBENCHPP_SRC_LAT_MEM_HIERARCHY_H_
#define LMBENCHPP_SRC_LAT_MEM_HIERARCHY_H_

#include <cstddef>
#include <vector>

#include "src/lat/lat_mem_rd.h"

namespace lmb::lat {

struct MemoryLevel {
  // Largest array size still served at this level's latency.
  size_t size_bytes = 0;
  // Representative (median-of-plateau) load latency.
  double latency_ns = 0.0;
};

struct MemHierarchy {
  // Cache levels in order (L1 first).  Empty when the curve is flat.
  std::vector<MemoryLevel> caches;
  // Latency of the final plateau (main memory).  0 when the sweep never
  // left the caches.
  double memory_latency_ns = 0.0;
};

// Extracts plateaus from a single-stride curve.  `points` must all share one
// stride and be sorted by (or sortable to) increasing array size.
// `jump_threshold` is the relative step (default: 25% growth) that starts a
// new level.  Throws std::invalid_argument on mixed strides or < 3 points.
MemHierarchy extract_hierarchy(std::vector<MemLatPoint> points, double jump_threshold = 1.25);

// Estimates the cache line size from a full (multi-stride) sweep:
// "The smallest stride that is the same as main memory speed is likely to be
// the cache line size" (§6.2).  Returns 0 when undeterminable.
size_t estimate_line_size(const std::vector<MemLatPoint>& points);

// §7 "Automatic sizing": a buffer size guaranteed to defeat every detected
// cache level — `factor` times the largest cache, at least `minimum`.
// Replaces the suite's hardcoded 8 MB once a hierarchy has been measured.
size_t autosize_beyond_cache(const MemHierarchy& hierarchy, size_t factor = 4,
                             size_t minimum = 8u << 20);

}  // namespace lmb::lat

#endif  // LMBENCHPP_SRC_LAT_MEM_HIERARCHY_H_
