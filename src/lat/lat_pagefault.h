// Page-fault service latency (lmbench's lat_pagefault; listed with the
// paper's latency suite in §6).
//
// Measures the cost of taking a (minor) page fault on a freshly mapped file:
// each iteration maps the file, touches one byte per page, and unmaps.  The
// per-page number is the fault + fill-from-page-cache cost.
#ifndef LMBENCHPP_SRC_LAT_LAT_PAGEFAULT_H_
#define LMBENCHPP_SRC_LAT_LAT_PAGEFAULT_H_

#include <cstddef>

#include "src/core/timing.h"

namespace lmb::lat {

struct PageFaultConfig {
  size_t file_bytes = 4u << 20;
  TimingPolicy policy = TimingPolicy::standard();

  static PageFaultConfig quick() {
    PageFaultConfig c;
    c.file_bytes = 1u << 20;
    c.policy = TimingPolicy::quick();
    return c;
  }
};

struct PageFaultResult {
  double us_per_page = 0.0;
  size_t pages = 0;
};

PageFaultResult measure_pagefault(const PageFaultConfig& config = {});

}  // namespace lmb::lat

#endif  // LMBENCHPP_SRC_LAT_LAT_PAGEFAULT_H_
