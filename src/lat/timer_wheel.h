// A hashed timer wheel for event-loop deadlines.
//
// The load generator's closed-loop think-time timers were a global
// std::priority_queue: O(log n) per insert/pop and one heap shared by every
// connection, which shows up in the generator's own CPU profile at c10k
// scale — exactly the measurement-harness-as-bottleneck failure the paper
// warns about.  A hashed wheel (Varghese & Lauck) makes schedule O(1) and
// expiry O(entries due): deadlines hash into `slots` buckets of `tick`
// width, the cursor sweeps buckets as time advances, and entries more than
// one rotation out simply stay in their bucket until their deadline's
// rotation comes around.
//
// Granularity contract: expiry is exact, not tick-quantized — expire(now)
// fires every entry with deadline <= now and nothing else, so RTT origins
// measured from scheduled timestamps stay coordinated-omission-safe.  The
// wheel only bounds how much scanning a sweep does, never when a timer is
// considered due.
#ifndef LMBENCHPP_SRC_LAT_TIMER_WHEEL_H_
#define LMBENCHPP_SRC_LAT_TIMER_WHEEL_H_

#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

#include "src/core/clock.h"

namespace lmb::lat {

class TimerWheel {
 public:
  // `tick` is the bucket width; `slots` must be a power of two.  Defaults
  // cover one wheel rotation of ~102 ms at 100 us resolution — wider than
  // any think time the benchmarks schedule, so rotation wraps are the
  // exception they are designed to be.
  explicit TimerWheel(Nanos tick = 100 * kMicrosecond, size_t slots = 1024);

  // O(1).  Deadlines in the past are allowed and fire on the next expire().
  void schedule(Nanos deadline, std::uint64_t tag);

  // Appends the tags of every entry with deadline <= now to `fired` (in no
  // particular order) and removes them from the wheel.
  void expire(Nanos now, std::vector<std::uint64_t>& fired);

  size_t size() const { return count_; }
  bool empty() const { return count_ == 0; }

  // Earliest pending deadline, for event-loop timeout computation;
  // Nanos max when empty.  O(1) when nothing fired since the last call,
  // O(total entries) right after an expiry (recomputed lazily).
  Nanos next_deadline() const;

 private:
  struct Entry {
    Nanos deadline;
    std::uint64_t tag;
  };

  Nanos tick_;
  size_t mask_;                            // slots - 1
  std::vector<std::vector<Entry>> slots_;  // bucket = (deadline / tick) & mask
  std::int64_t cursor_tick_;               // last tick expire() swept up to
  size_t count_ = 0;
  mutable Nanos soonest_ = std::numeric_limits<Nanos>::max();
  mutable bool soonest_valid_ = true;
};

}  // namespace lmb::lat

#endif  // LMBENCHPP_SRC_LAT_TIMER_WHEEL_H_
