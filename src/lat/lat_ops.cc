#include "src/lat/lat_ops.h"

#include <stdexcept>
#include <vector>

#include "src/core/do_not_optimize.h"
#include "src/core/registry.h"
#include "src/report/table.h"

namespace lmb::lat {

const char* arith_op_name(ArithOp op) {
  switch (op) {
    case ArithOp::kIntAdd:
      return "int add";
    case ArithOp::kIntMul:
      return "int mul";
    case ArithOp::kIntDiv:
      return "int div";
    case ArithOp::kDoubleAdd:
      return "double add";
    case ArithOp::kDoubleMul:
      return "double mul";
    case ArithOp::kDoubleDiv:
      return "double div";
  }
  return "?";
}

// Each LMB_OPS8 macro expands to 8 dependent operations; 8 copies give the
// 64-op block.  Every operation consumes the previous result, so the chain
// measures latency, and the final value is returned (and checked by tests)
// so the chain cannot be elided.

std::uint64_t run_int_add_chain(std::uint64_t iters, std::uint64_t seed) {
  // Fibonacci-style pairs: not expressible as a closed form the optimizer
  // will derive, every add depends on the one before.
  std::uint64_t a = seed, b = seed + 1;
#define LMB_IADD8 \
  a += b;         \
  b += a;         \
  a += b;         \
  b += a;         \
  a += b;         \
  b += a;         \
  a += b;         \
  b += a;
  for (std::uint64_t i = 0; i < iters; ++i) {
    LMB_IADD8 LMB_IADD8 LMB_IADD8 LMB_IADD8 LMB_IADD8 LMB_IADD8 LMB_IADD8 LMB_IADD8
  }
#undef LMB_IADD8
  do_not_optimize(a);
  return a + b;
}

std::uint64_t run_int_mul_chain(std::uint64_t iters, std::uint64_t seed) {
  std::uint64_t a = seed | 1, b = (seed + 2) | 1;  // odd: products never absorb to 0
#define LMB_IMUL8 \
  a *= b;         \
  b *= a;         \
  a *= b;         \
  b *= a;         \
  a *= b;         \
  b *= a;         \
  a *= b;         \
  b *= a;
  for (std::uint64_t i = 0; i < iters; ++i) {
    LMB_IMUL8 LMB_IMUL8 LMB_IMUL8 LMB_IMUL8 LMB_IMUL8 LMB_IMUL8 LMB_IMUL8 LMB_IMUL8
  }
#undef LMB_IMUL8
  do_not_optimize(a);
  return a + b;
}

std::uint64_t run_int_div_chain(std::uint64_t iters, std::uint64_t seed) {
  std::uint64_t a = seed | 1, b = (seed >> 1) | 3;
#define LMB_IDIV8          \
  a = b / (a | 1) + seed;  \
  b = a / (b | 1) + seed;  \
  a = b / (a | 1) + seed;  \
  b = a / (b | 1) + seed;  \
  a = b / (a | 1) + seed;  \
  b = a / (b | 1) + seed;  \
  a = b / (a | 1) + seed;  \
  b = a / (b | 1) + seed;
  for (std::uint64_t i = 0; i < iters; ++i) {
    LMB_IDIV8 LMB_IDIV8 LMB_IDIV8 LMB_IDIV8 LMB_IDIV8 LMB_IDIV8 LMB_IDIV8 LMB_IDIV8
  }
#undef LMB_IDIV8
  do_not_optimize(a);
  return a + b;
}

double run_double_add_chain(std::uint64_t iters, double seed) {
  // add/sub pairs stay bounded (b oscillates around -a).
  double a = seed, b = seed * 0.5 + 1.0;
#define LMB_DADD8 \
  a += b;         \
  b -= a;         \
  a += b;         \
  b -= a;         \
  a += b;         \
  b -= a;         \
  a += b;         \
  b -= a;
  for (std::uint64_t i = 0; i < iters; ++i) {
    LMB_DADD8 LMB_DADD8 LMB_DADD8 LMB_DADD8 LMB_DADD8 LMB_DADD8 LMB_DADD8 LMB_DADD8
  }
#undef LMB_DADD8
  do_not_optimize(a);
  return a + b;
}

double run_double_mul_chain(std::uint64_t iters, double seed) {
  // Alternate x2 / x0.5: bounded, and without -ffast-math the compiler may
  // not reassociate the pair away.
  double a = seed + 1.0;
  const double up = 2.0, down = 0.5;
#define LMB_DMUL8 \
  a *= up;        \
  a *= down;      \
  a *= up;        \
  a *= down;      \
  a *= up;        \
  a *= down;      \
  a *= up;        \
  a *= down;
  for (std::uint64_t i = 0; i < iters; ++i) {
    LMB_DMUL8 LMB_DMUL8 LMB_DMUL8 LMB_DMUL8 LMB_DMUL8 LMB_DMUL8 LMB_DMUL8 LMB_DMUL8
  }
#undef LMB_DMUL8
  do_not_optimize(a);
  return a;
}

double run_double_div_chain(std::uint64_t iters, double seed) {
  // a = b / a oscillates between two values; every divide waits for the
  // previous quotient.
  double a = seed + 1.5;
  const double b = seed + 4.0;
#define LMB_DDIV8 \
  a = b / a;      \
  a = b / a;      \
  a = b / a;      \
  a = b / a;      \
  a = b / a;      \
  a = b / a;      \
  a = b / a;      \
  a = b / a;
  for (std::uint64_t i = 0; i < iters; ++i) {
    LMB_DDIV8 LMB_DDIV8 LMB_DDIV8 LMB_DDIV8 LMB_DDIV8 LMB_DDIV8 LMB_DDIV8 LMB_DDIV8
  }
#undef LMB_DDIV8
  do_not_optimize(a);
  return a;
}

OpLatency measure_op_latency(ArithOp op, const TimingPolicy& policy) {
  BenchFn body;
  switch (op) {
    case ArithOp::kIntAdd:
      body = [](std::uint64_t iters) { do_not_optimize(run_int_add_chain(iters, 12345)); };
      break;
    case ArithOp::kIntMul:
      body = [](std::uint64_t iters) { do_not_optimize(run_int_mul_chain(iters, 12345)); };
      break;
    case ArithOp::kIntDiv:
      body = [](std::uint64_t iters) { do_not_optimize(run_int_div_chain(iters, 12345)); };
      break;
    case ArithOp::kDoubleAdd:
      body = [](std::uint64_t iters) { do_not_optimize(run_double_add_chain(iters, 1.25)); };
      break;
    case ArithOp::kDoubleMul:
      body = [](std::uint64_t iters) { do_not_optimize(run_double_mul_chain(iters, 1.25)); };
      break;
    case ArithOp::kDoubleDiv:
      body = [](std::uint64_t iters) { do_not_optimize(run_double_div_chain(iters, 1.25)); };
      break;
  }
  Measurement m = measure(body, policy);
  OpLatency result;
  result.op = op;
  result.ns_per_op = m.ns_per_op / static_cast<double>(kOpsPerBlock);
  return result;
}

std::vector<OpLatency> measure_all_op_latencies(const TimingPolicy& policy) {
  std::vector<OpLatency> out;
  for (ArithOp op : {ArithOp::kIntAdd, ArithOp::kIntMul, ArithOp::kIntDiv, ArithOp::kDoubleAdd,
                     ArithOp::kDoubleMul, ArithOp::kDoubleDiv}) {
    out.push_back(measure_op_latency(op, policy));
  }
  return out;
}

namespace {

const BenchmarkRegistrar registrar{{
    .name = "lat_ops",
    .category = "latency",
    .description = "basic arithmetic operation latencies (lmbench lat_ops)",
    .run =
        [](const Options& opts) {
          TimingPolicy p = opts.quick() ? TimingPolicy::quick() : TimingPolicy::standard();
          RunResult out;
          std::string display;
          for (const auto& r : measure_all_op_latencies(p)) {
            std::string key = arith_op_name(r.op);  // "int add" -> "int_add_ns"
            for (char& c : key) {
              if (c == ' ') c = '_';
            }
            out.add(key + "_ns", r.ns_per_op, "ns");
            display += std::string(arith_op_name(r.op)) + " " +
                       report::format_number(r.ns_per_op, 2) + "ns  ";
          }
          out.display = display;
          return out;
        },
}};

}  // namespace

}  // namespace lmb::lat
