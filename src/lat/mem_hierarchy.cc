#include "src/lat/mem_hierarchy.h"

#include <algorithm>
#include <stdexcept>

#include "src/core/stats.h"

namespace lmb::lat {

MemHierarchy extract_hierarchy(std::vector<MemLatPoint> points, double jump_threshold) {
  if (points.size() < 3) {
    throw std::invalid_argument("extract_hierarchy: need at least 3 points");
  }
  if (jump_threshold <= 1.0) {
    throw std::invalid_argument("extract_hierarchy: threshold must exceed 1.0");
  }
  size_t stride = points.front().stride_bytes;
  for (const auto& p : points) {
    if (p.stride_bytes != stride) {
      throw std::invalid_argument("extract_hierarchy: mixed strides");
    }
  }
  std::sort(points.begin(), points.end(),
            [](const MemLatPoint& a, const MemLatPoint& b) { return a.array_bytes < b.array_bytes; });

  // Group into plateaus: a point extends the current plateau when its
  // latency is within `jump_threshold` of the plateau's first latency.
  struct Plateau {
    std::vector<const MemLatPoint*> points;
  };
  std::vector<Plateau> plateaus;
  plateaus.push_back({});
  plateaus.back().points.push_back(&points[0]);
  double ref = std::max(points[0].ns_per_load, 0.01);
  for (size_t i = 1; i < points.size(); ++i) {
    if (points[i].ns_per_load > ref * jump_threshold) {
      plateaus.push_back({});
      ref = std::max(points[i].ns_per_load, 0.01);
    }
    plateaus.back().points.push_back(&points[i]);
  }

  auto level_of = [](const Plateau& p) {
    Sample lat;
    for (const auto* pt : p.points) {
      lat.add(pt->ns_per_load);
    }
    MemoryLevel level;
    level.size_bytes = p.points.back()->array_bytes;
    level.latency_ns = lat.median();
    return level;
  };

  MemHierarchy h;
  if (plateaus.size() == 1) {
    // Flat curve: the sweep never left the (single observed) level; report
    // it as a cache and leave memory unknown.
    h.caches.push_back(level_of(plateaus[0]));
    return h;
  }
  for (size_t i = 0; i + 1 < plateaus.size(); ++i) {
    h.caches.push_back(level_of(plateaus[i]));
  }
  h.memory_latency_ns = level_of(plateaus.back()).latency_ns;
  return h;
}

size_t autosize_beyond_cache(const MemHierarchy& hierarchy, size_t factor, size_t minimum) {
  if (factor == 0) {
    throw std::invalid_argument("autosize_beyond_cache: factor must be positive");
  }
  size_t largest = 0;
  for (const auto& level : hierarchy.caches) {
    largest = std::max(largest, level.size_bytes);
  }
  return std::max(minimum, largest * factor);
}

size_t estimate_line_size(const std::vector<MemLatPoint>& points) {
  if (points.empty()) {
    return 0;
  }
  size_t max_size = 0;
  for (const auto& p : points) {
    max_size = std::max(max_size, p.array_bytes);
  }
  // Collect (stride -> latency) at the largest array size.
  std::vector<MemLatPoint> at_max;
  for (const auto& p : points) {
    if (p.array_bytes == max_size) {
      at_max.push_back(p);
    }
  }
  if (at_max.size() < 2) {
    return 0;
  }
  std::sort(at_max.begin(), at_max.end(), [](const MemLatPoint& a, const MemLatPoint& b) {
    return a.stride_bytes < b.stride_bytes;
  });
  double memory_latency = at_max.back().ns_per_load;
  if (memory_latency <= 0) {
    return 0;
  }
  // "The smallest stride that is the same as main memory speed" — same
  // within 10%.  Strides below the line size get >1 hit per line and are
  // faster (§6.2).
  for (const auto& p : at_max) {
    if (p.ns_per_load >= 0.9 * memory_latency) {
      return p.stride_bytes;
    }
  }
  return at_max.back().stride_bytes;
}

}  // namespace lmb::lat
