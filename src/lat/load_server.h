// The c10k echo/RPC server: N pinned event-loop shards over SO_REUSEPORT,
// level- or edge-triggered epoll, non-blocking everything.
//
// The paper's lat_tcp/bw_tcp servers handle exactly one connection with
// blocking reads; this server multiplexes thousands of connections across
// `shards` event-loop threads so the load benchmarks (src/lat/lat_load.cc)
// can extend §6's single-flow measurements to the multi-tenant regime
// without the measurement harness itself saturating one core first.  Each
// shard owns an SO_REUSEPORT listener on the shared port (the kernel hashes
// connections across shards — no accept lock, no thundering herd), its own
// epoll set, and its own cache-line-isolated counters; shard threads pin
// one-per-physical-core via src/core/topology's pin order.
//
// Two epoll disciplines are selectable per run so their wakeup cost can be
// compared through the metrics pipeline:
//  * kLevel — the PR 8 behavior: the loop is re-notified until a connection
//    is drained, interest masks are switched with epoll_ctl as backpressure
//    comes and goes.
//  * kEdge — EPOLLET with drain-until-EAGAIN state machines: every
//    connection registers EPOLLIN|EPOLLOUT|EPOLLET exactly once (zero
//    epoll_ctl on the hot path), a read deferred by output backpressure is
//    remembered and resumed when the peer drains us, and EPOLLOUT edges
//    re-arm naturally after a short write.
//
// RPC replies avoid the copy into a contiguous out buffer: queued replies
// are (shared header, shared payload) pairs flushed with one writev per
// readiness — syscall count per reply drops with batch size.
#ifndef LMBENCHPP_SRC_LAT_LOAD_SERVER_H_
#define LMBENCHPP_SRC_LAT_LOAD_SERVER_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/sys/epoll_loop.h"
#include "src/sys/socket.h"

namespace lmb::obs {
class TraceSink;
}

namespace lmb::lat {

// What the server does with a connection's bytes.
enum class ServerProtocol {
  kEcho,  // write every byte read straight back (lat_tcp_n)
  kRpc,   // length-prefixed requests; fixed-size length-prefixed replies,
          // with optional per-request CPU work (lat_rpc_n)
  kSink,  // read and discard — the fan-in bandwidth target (bw_tcp_n)
};

// Readiness discipline for every shard's epoll set.
enum class EpollMode {
  kLevel,  // re-notified until drained; interest switched via epoll_ctl
  kEdge,   // EPOLLET: drain until EAGAIN, deferred drains remembered
};

struct LoadServerConfig {
  ServerProtocol protocol = ServerProtocol::kEcho;
  // kRpc: reply payload size (the frame adds a 4-byte big-endian length,
  // same framing as src/svc/wire.h).
  std::uint32_t reply_bytes = 64;
  // kRpc: per-request server-side work, iterations of a checksum spin —
  // models the "simple arithmetic" an RPC server does (§6.7) so the single
  // server CPU becomes the shared bottleneck that shapes the tail.
  std::uint64_t work_iters = 0;
  // listen(2) backlog per shard listener; a 1000-connection ramp needs
  // headroom here.
  int backlog = 4096;
  // Per-read scratch size.
  std::uint32_t io_buf_bytes = 64u << 10;
  // Event-loop shards, each a pinned thread with its own SO_REUSEPORT
  // listener, epoll set, and counters.  1 reproduces the PR 8 single-loop
  // server exactly.
  int shards = 1;
  EpollMode epoll_mode = EpollMode::kLevel;
  // Pin shard i to topology pin_order[i] (one per physical core,
  // round-robin across sockets).  Best-effort; failures leave the shard
  // unpinned.
  bool pin_shards = true;
};

// Monotonic counters.  This is a *snapshot by value*: stats() and
// shard_stats() assemble it from per-shard cache-line-isolated atomics
// (relaxed loads of independently monotonic counters), so it is safe to
// call from any thread while the server runs — each field is torn-free and
// never goes backwards, though fields snapshot at slightly different
// instants may be mutually off by in-flight requests.
struct LoadServerStats {
  std::uint64_t accepted = 0;
  std::uint64_t closed = 0;
  std::uint64_t open = 0;           // currently open connections
  std::uint64_t requests = 0;       // kRpc: complete frames served
  std::uint64_t bytes_in = 0;
  std::uint64_t bytes_out = 0;
  std::uint64_t wakeups = 0;        // epoll_wait returns (all shards)
  std::int64_t loop_cpu_ns = 0;     // summed CLOCK_THREAD_CPUTIME_ID of the loops
};

// Starts `shards` event loops on background threads at construction;
// stop() (or the destructor) wakes each via self-pipe and joins.  Every
// listener binds 127.0.0.1 on one shared ephemeral port.
class LoadServer {
 public:
  explicit LoadServer(LoadServerConfig config = {});
  ~LoadServer();

  LoadServer(const LoadServer&) = delete;
  LoadServer& operator=(const LoadServer&) = delete;

  std::uint16_t port() const { return port_; }

  int shards() const { return static_cast<int>(shards_.size()); }

  // Aggregate across all shards.
  LoadServerStats stats() const;

  // One shard's counters; `shard` in [0, shards()).
  LoadServerStats shard_stats(int shard) const;

  // CPU shard `shard` pinned to, or -1 when unpinned.
  int shard_cpu(int shard) const;

  // Idempotent; after return every loop thread has exited and all
  // connections are closed.  Emits one "load"/"shard" trace event per
  // shard (wakeups, pinned cpu, loop CPU time) when the constructing
  // thread had an ObsScope with a sink installed.
  void stop();

 private:
  struct Conn;
  struct Shard;

  void loop(Shard& shard);
  // Returns false when the connection was closed and destroyed.
  bool handle_conn(Shard& shard, Conn& conn, std::uint32_t events);
  void process_input(Shard& shard, Conn& conn, const char* data, size_t len);
  bool flush(Shard& shard, Conn& conn);  // false: would block
  void close_conn(Shard& shard, Conn& conn);
  void update_interest(Shard& shard, Conn& conn);

  LoadServerConfig config_;
  std::uint16_t port_ = 0;
  std::atomic<bool> stopping_{false};

  // kRpc: the constant 4-byte big-endian reply header and the 16 possible
  // reply payloads ('r' xor the low checksum nibble), shared read-only by
  // every shard so a queued reply is two pointers, not a buffer copy.
  std::array<char, 4> rpc_header_{};
  std::array<std::string, 16> rpc_payloads_;

  std::vector<std::unique_ptr<Shard>> shards_;

  obs::TraceSink* trace_sink_ = nullptr;  // sink of the constructing scope
  bool trace_emitted_ = false;
};

}  // namespace lmb::lat

#endif  // LMBENCHPP_SRC_LAT_LOAD_SERVER_H_
