// The c10k echo/RPC server: one thread, level-triggered epoll, non-blocking
// everything.
//
// The paper's lat_tcp/bw_tcp servers handle exactly one connection with
// blocking reads; this server multiplexes thousands on a single event loop
// so the load benchmarks (src/lat/lat_load.cc) can extend §6's single-flow
// measurements to the multi-tenant regime.  Per-connection state machines
// handle partial reads/writes via the EAGAIN-correct helpers in
// src/sys/fdio.h; the loop itself blocks in epoll_wait with no timeout —
// when nothing is happening the server burns no CPU (tests assert on the
// exposed loop thread time).
#ifndef LMBENCHPP_SRC_LAT_LOAD_SERVER_H_
#define LMBENCHPP_SRC_LAT_LOAD_SERVER_H_

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "src/sys/epoll_loop.h"
#include "src/sys/socket.h"

namespace lmb::lat {

// What the server does with a connection's bytes.
enum class ServerProtocol {
  kEcho,  // write every byte read straight back (lat_tcp_n)
  kRpc,   // length-prefixed requests; fixed-size length-prefixed replies,
          // with optional per-request CPU work (lat_rpc_n)
  kSink,  // read and discard — the fan-in bandwidth target (bw_tcp_n)
};

struct LoadServerConfig {
  ServerProtocol protocol = ServerProtocol::kEcho;
  // kRpc: reply payload size (the frame adds a 4-byte big-endian length,
  // same framing as src/svc/wire.h).
  std::uint32_t reply_bytes = 64;
  // kRpc: per-request server-side work, iterations of a checksum spin —
  // models the "simple arithmetic" an RPC server does (§6.7) so the single
  // server CPU becomes the shared bottleneck that shapes the tail.
  std::uint64_t work_iters = 0;
  // listen(2) backlog; a 1000-connection ramp needs headroom here.
  int backlog = 4096;
  // Per-read scratch size.
  std::uint32_t io_buf_bytes = 64u << 10;
};

// Monotonic counters, readable from any thread while the server runs.
struct LoadServerStats {
  std::uint64_t accepted = 0;
  std::uint64_t closed = 0;
  std::uint64_t open = 0;           // currently open connections
  std::uint64_t requests = 0;       // kRpc: complete frames served
  std::uint64_t bytes_in = 0;
  std::uint64_t bytes_out = 0;
  std::uint64_t wakeups = 0;        // epoll_wait returns
  std::int64_t loop_cpu_ns = 0;     // CLOCK_THREAD_CPUTIME_ID of the loop
};

// Starts the event loop on a background thread at construction; stop() (or
// the destructor) wakes it via self-pipe and joins.  The listener binds
// 127.0.0.1 with an ephemeral port, like every socket in this suite.
class LoadServer {
 public:
  explicit LoadServer(LoadServerConfig config = {});
  ~LoadServer();

  LoadServer(const LoadServer&) = delete;
  LoadServer& operator=(const LoadServer&) = delete;

  std::uint16_t port() const { return listener_.port(); }

  LoadServerStats stats() const;

  // Idempotent; after return the loop thread has exited and all
  // connections are closed.
  void stop();

 private:
  struct Conn;

  void loop();
  void handle_listener();
  // Returns false when the connection was closed and destroyed.
  bool handle_conn(Conn& conn, std::uint32_t events);
  void process_input(Conn& conn, const char* data, size_t len);
  bool flush(Conn& conn);  // false: would block (EPOLLOUT armed)
  void close_conn(Conn& conn);
  void update_interest(Conn& conn);

  LoadServerConfig config_;
  sys::TcpListener listener_;
  sys::Epoll epoll_;
  sys::WakePipe wake_;
  std::atomic<bool> stopping_{false};

  std::atomic<std::uint64_t> accepted_{0};
  std::atomic<std::uint64_t> closed_{0};
  std::atomic<std::uint64_t> open_{0};
  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::uint64_t> bytes_in_{0};
  std::atomic<std::uint64_t> bytes_out_{0};
  std::atomic<std::uint64_t> wakeups_{0};
  std::atomic<std::int64_t> loop_cpu_ns_{0};

  std::vector<char> scratch_;  // loop-thread-only read buffer

  std::thread thread_;
};

}  // namespace lmb::lat

#endif  // LMBENCHPP_SRC_LAT_LOAD_SERVER_H_
