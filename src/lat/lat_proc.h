// Process creation costs — paper §6.5, Table 9.
//
// Three rungs of the ladder:
//   fork + exit          — "Simple process creation"
//   fork + exec + exit   — "New process creation" (runs a tiny hello program)
//   fork + sh -c + exit  — "Complicated new process creation" (via /bin/sh,
//                           which searches $PATH; "frequently ten times as
//                           expensive as just creating a new process")
#ifndef LMBENCHPP_SRC_LAT_LAT_PROC_H_
#define LMBENCHPP_SRC_LAT_LAT_PROC_H_

#include <string>

#include "src/core/timing.h"

namespace lmb::lat {

struct ProcConfig {
  // Executable for the exec/shell cases; must exist and exit quickly.
  // Default: the bundled lmb_hello when its build path exists, else /bin/true.
  std::string exec_path;
  // Number of timed creations (each is one repetition; minimum reported).
  int iterations = 50;

  static ProcConfig quick() {
    ProcConfig c;
    c.iterations = 10;
    return c;
  }
};

struct ProcResult {
  double fork_exit_ms = 0.0;
  double fork_exec_ms = 0.0;
  double fork_sh_ms = 0.0;
};

// Resolves the hello-world binary used by the exec benchmarks.
std::string default_hello_path();

// fork(); child _exits; parent waits.  Milliseconds per create.
Measurement measure_fork_exit(const ProcConfig& config = {});

// fork(); child execs config.exec_path; parent waits.
Measurement measure_fork_exec(const ProcConfig& config = {});

// fork(); child runs /bin/sh -c config.exec_path; parent waits.
Measurement measure_fork_sh(const ProcConfig& config = {});

// All three rows of Table 9.
ProcResult measure_proc_suite(const ProcConfig& config = {});

}  // namespace lmb::lat

#endif  // LMBENCHPP_SRC_LAT_LAT_PROC_H_
