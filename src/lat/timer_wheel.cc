#include "src/lat/timer_wheel.h"

#include <algorithm>
#include <stdexcept>

namespace lmb::lat {

TimerWheel::TimerWheel(Nanos tick, size_t slots) : tick_(tick), mask_(slots - 1), slots_(slots) {
  if (tick <= 0) {
    throw std::invalid_argument("TimerWheel: tick must be positive");
  }
  if (slots == 0 || (slots & (slots - 1)) != 0) {
    throw std::invalid_argument("TimerWheel: slots must be a power of two");
  }
  cursor_tick_ = std::numeric_limits<std::int64_t>::min();  // set by first schedule
}

void TimerWheel::schedule(Nanos deadline, std::uint64_t tag) {
  std::int64_t tick = deadline / tick_;
  if (cursor_tick_ == std::numeric_limits<std::int64_t>::min()) {
    cursor_tick_ = tick;
  }
  // A deadline behind the sweep cursor (already in the past) goes into the
  // cursor's own bucket — that bucket is re-swept at the start of every
  // expire(), so the entry fires on the next call instead of waiting a
  // full rotation for its original bucket to come around again.
  tick = std::max(tick, cursor_tick_);
  slots_[static_cast<size_t>(tick) & mask_].push_back({deadline, tag});
  ++count_;
  if (soonest_valid_) {
    soonest_ = std::min(soonest_, deadline);
  }
}

void TimerWheel::expire(Nanos now, std::vector<std::uint64_t>& fired) {
  if (count_ == 0) {
    return;
  }
  const std::int64_t now_tick = now / tick_;
  std::int64_t cursor = cursor_tick_;
  bool removed = false;
  while (true) {
    std::vector<Entry>& slot = slots_[static_cast<size_t>(cursor) & mask_];
    for (size_t i = 0; i < slot.size();) {
      if (slot[i].deadline <= now) {
        fired.push_back(slot[i].tag);
        slot[i] = slot.back();
        slot.pop_back();
        --count_;
        removed = true;
      } else {
        ++i;
      }
    }
    // The cursor parks on the current tick (its bucket is re-swept next
    // call for entries due later within this same tick) and never advances
    // past `now` — entries a rotation or more out wait in their bucket.
    if (cursor >= now_tick || count_ == 0) {
      break;
    }
    ++cursor;
  }
  cursor_tick_ = std::max(cursor_tick_, std::min(cursor, now_tick));
  if (removed) {
    soonest_valid_ = false;
  }
}

Nanos TimerWheel::next_deadline() const {
  if (count_ == 0) {
    return std::numeric_limits<Nanos>::max();
  }
  if (!soonest_valid_) {
    Nanos soonest = std::numeric_limits<Nanos>::max();
    for (const std::vector<Entry>& slot : slots_) {
      for (const Entry& e : slot) {
        soonest = std::min(soonest, e.deadline);
      }
    }
    soonest_ = soonest;
    soonest_valid_ = true;
  }
  return soonest_;
}

}  // namespace lmb::lat
