// Operating-system entry cost — paper §6.3, Table 7.
//
// "We measure nontrivial entry into the system by repeatedly writing one
// word to /dev/null, a pseudo device driver that does nothing but discard
// the data.  This particular entry point was chosen because it has never
// been optimized in any system that we have measured."
//
// Extensions (present in lmbench's lat_syscall): getpid (the trivial entry),
// read from /dev/zero, stat, open+close, and select over N file descriptors.
#ifndef LMBENCHPP_SRC_LAT_LAT_SYSCALL_H_
#define LMBENCHPP_SRC_LAT_LAT_SYSCALL_H_

#include <string>

#include "src/core/timing.h"

namespace lmb::lat {

struct SyscallLatencies {
  double null_write_us = 0.0;  // Table 7's headline number
  double getpid_us = 0.0;
  double read_us = 0.0;   // 1 byte from /dev/zero
  double stat_us = 0.0;   // stat() of an existing file
  double open_close_us = 0.0;
};

// One-word write to /dev/null (Table 7).
Measurement measure_null_write(const TimingPolicy& policy = TimingPolicy::standard());

// getpid via syscall(2) — bypasses any libc caching.
Measurement measure_getpid(const TimingPolicy& policy = TimingPolicy::standard());

// One-byte read from /dev/zero.
Measurement measure_null_read(const TimingPolicy& policy = TimingPolicy::standard());

// stat() of `path`.
Measurement measure_stat(const std::string& path, const TimingPolicy& policy = TimingPolicy::standard());

// open()+close() of `path`.
Measurement measure_open_close(const std::string& path,
                               const TimingPolicy& policy = TimingPolicy::standard());

// select(2) over `nfds` descriptors (pipes), zero timeout.
Measurement measure_select(int nfds, const TimingPolicy& policy = TimingPolicy::standard());

// The whole Table-7-plus-extensions set, in microseconds.
SyscallLatencies measure_syscall_suite(const TimingPolicy& policy = TimingPolicy::standard());

}  // namespace lmb::lat

#endif  // LMBENCHPP_SRC_LAT_LAT_SYSCALL_H_
