#include "src/lat/lat_file_ops.h"

#include <fcntl.h>
#include <setjmp.h>
#include <signal.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <stdexcept>

#include "src/core/do_not_optimize.h"
#include "src/core/registry.h"
#include "src/report/table.h"
#include "src/sys/error.h"
#include "src/sys/fdio.h"
#include "src/sys/process.h"
#include "src/sys/signals.h"
#include "src/sys/temp.h"
#include "src/sys/unique_fd.h"

namespace lmb::lat {

namespace {

// 1-byte echo over two fds (FIFO read end / write end), EOF-terminated.
int fifo_echo_child(int in_fd, int out_fd) {
  char token;
  while (sys::read_some(in_fd, &token, 1) == 1) {
    sys::write_full(out_fd, &token, 1);
  }
  return 0;
}

}  // namespace

Measurement measure_fifo_latency(const TimingPolicy& policy) {
  sys::TempDir dir("lmb_fifo");
  std::string to_child = dir.file("to_child");
  std::string to_parent = dir.file("to_parent");
  sys::check_syscall(::mkfifo(to_child.c_str(), 0600), "mkfifo");
  sys::check_syscall(::mkfifo(to_parent.c_str(), 0600), "mkfifo");

  sys::Child child = sys::fork_child([&]() {
    // Open order mirrors the parent's so neither side deadlocks: both open
    // to_child first (child read / parent write), then to_parent.
    sys::UniqueFd in = sys::open_read(to_child);
    sys::UniqueFd out(::open(to_parent.c_str(), O_WRONLY));
    if (!out) {
      return 1;
    }
    return fifo_echo_child(in.get(), out.get());
  });

  sys::UniqueFd out(::open(to_child.c_str(), O_WRONLY));
  if (!out) {
    sys::throw_errno("open fifo for write");
  }
  sys::UniqueFd in = sys::open_read(to_parent);

  char token = 'f';
  Measurement m = measure(
      [&](std::uint64_t iters) {
        for (std::uint64_t i = 0; i < iters; ++i) {
          sys::write_full(out.get(), &token, 1);
          sys::read_full(in.get(), &token, 1);
        }
      },
      policy);

  out.reset();  // EOF stops the echo child
  if (child.wait() != 0) {
    throw std::runtime_error("fifo echo child failed");
  }
  return m;
}

Measurement measure_fcntl_lock_latency(const TimingPolicy& policy) {
  sys::TempDir dir("lmb_fcntl");
  std::string path = dir.file("lockfile");
  sys::write_file(path, "lk");
  sys::UniqueFd fd = sys::open_rw_create(path);

  struct flock lock;
  lock.l_whence = SEEK_SET;
  lock.l_start = 0;
  lock.l_len = 1;
  lock.l_pid = 0;

  return measure(
      [&](std::uint64_t iters) {
        for (std::uint64_t i = 0; i < iters; ++i) {
          lock.l_type = F_WRLCK;
          if (::fcntl(fd.get(), F_SETLK, &lock) != 0) {
            sys::throw_errno("fcntl F_SETLK");
          }
          lock.l_type = F_UNLCK;
          if (::fcntl(fd.get(), F_SETLK, &lock) != 0) {
            sys::throw_errno("fcntl F_UNLCK");
          }
        }
      },
      policy);
}

Measurement measure_mmap_latency(const MmapLatConfig& config) {
  if (config.bytes < 4096) {
    throw std::invalid_argument("MmapLatConfig: need at least one page");
  }
  sys::TempDir dir("lmb_mmaplat");
  std::string path = dir.file("data");
  {
    sys::UniqueFd out = sys::open_write(path);
    std::string block(65536, 'm');
    size_t remaining = config.bytes;
    while (remaining > 0) {
      size_t n = std::min(remaining, block.size());
      sys::write_full(out.get(), block.data(), n);
      remaining -= n;
    }
  }
  sys::UniqueFd fd = sys::open_read(path);

  return measure(
      [&](std::uint64_t iters) {
        for (std::uint64_t i = 0; i < iters; ++i) {
          void* addr = ::mmap(nullptr, config.bytes, PROT_READ, MAP_SHARED, fd.get(), 0);
          if (addr == MAP_FAILED) {
            sys::throw_errno("mmap");
          }
          char first = *static_cast<const volatile char*>(addr);
          do_not_optimize(first);
          ::munmap(addr, config.bytes);
        }
      },
      config.policy);
}

namespace {

sigjmp_buf g_prot_jmp;

void segv_handler(int) { siglongjmp(g_prot_jmp, 1); }

}  // namespace

Measurement measure_protection_fault(const TimingPolicy& policy) {
  // A read-only page; every write attempt delivers SIGSEGV.
  void* page = ::mmap(nullptr, 4096, PROT_READ, MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
  if (page == MAP_FAILED) {
    sys::throw_errno("mmap");
  }
  auto* target = static_cast<volatile char*>(page);

  sys::SignalHandlerGuard guard(SIGSEGV, segv_handler);
  Measurement m = measure(
      [&](std::uint64_t iters) {
        // volatile: the counter must survive the handler's siglongjmp.
        volatile std::uint64_t i = 0;
        while (i < iters) {
          if (sigsetjmp(g_prot_jmp, 1) == 0) {
            *target = 1;  // faults; handler longjmps back
          }
          i = i + 1;
        }
      },
      policy);
  ::munmap(page, 4096);
  return m;
}

namespace {

TimingPolicy policy_from(const Options& opts) {
  return opts.quick() ? TimingPolicy::quick() : TimingPolicy::standard();
}

const BenchmarkRegistrar fifo_registrar{{
    .name = "lat_fifo",
    .category = "latency",
    .description = "named-pipe (FIFO) round-trip latency",
    .run =
        [](const Options& opts) {
          Measurement m = measure_fifo_latency(policy_from(opts));
          RunResult r = RunResult{}.with(m).add("us", m.us_per_op(), "us");
          r.display = report::format_number(m.us_per_op(), 1) + " us round trip";
          return r;
        },
}};

const BenchmarkRegistrar fcntl_registrar{{
    .name = "lat_fcntl",
    .category = "latency",
    .description = "fcntl record lock + unlock pair",
    .run =
        [](const Options& opts) {
          Measurement m = measure_fcntl_lock_latency(policy_from(opts));
          RunResult r = RunResult{}.with(m).add("us", m.us_per_op(), "us");
          r.display = report::format_number(m.us_per_op(), 2) + " us per lock/unlock";
          return r;
        },
}};

const BenchmarkRegistrar mmap_registrar{{
    .name = "lat_mmap",
    .category = "latency",
    .description = "mmap + munmap of a 1MB file region",
    .run =
        [](const Options& opts) {
          MmapLatConfig cfg;
          cfg.bytes = static_cast<size_t>(opts.get_size("size", 1 << 20));
          cfg.policy = policy_from(opts);
          Measurement m = measure_mmap_latency(cfg);
          RunResult r = RunResult{}.with(m).add("us", m.us_per_op(), "us");
          r.metadata["bytes"] = std::to_string(cfg.bytes);
          return r;
        },
}};

const BenchmarkRegistrar prot_registrar{{
    .name = "lat_prot_fault",
    .category = "latency",
    .description = "protection fault (SIGSEGV) service time",
    .run =
        [](const Options& opts) {
          Measurement m = measure_protection_fault(policy_from(opts));
          RunResult r = RunResult{}.with(m).add("us", m.us_per_op(), "us");
          r.display = report::format_number(m.us_per_op(), 2) + " us per fault";
          return r;
        },
}};

}  // namespace

}  // namespace lmb::lat
