// Signal handling cost — paper §6.4, Table 8.
//
// "lmbench measures both signal installation and signal dispatching in two
// separate loops, within the context of one process.  It measures signal
// handling by installing a signal handler and then repeatedly sending
// itself the signal."
#ifndef LMBENCHPP_SRC_LAT_LAT_SIG_H_
#define LMBENCHPP_SRC_LAT_LAT_SIG_H_

#include "src/core/timing.h"

namespace lmb::lat {

// sigaction() installation cost (Table 8 "sigaction" column).
Measurement measure_signal_install(const TimingPolicy& policy = TimingPolicy::standard());

// Cost of delivering + catching a signal in the same process
// (Table 8 "sig handler" column).
Measurement measure_signal_catch(const TimingPolicy& policy = TimingPolicy::standard());

// Number of handler invocations observed during the most recent
// measure_signal_catch run (test hook: proves delivery actually happened).
std::uint64_t signal_catch_count();

}  // namespace lmb::lat

#endif  // LMBENCHPP_SRC_LAT_LAT_SIG_H_
