#include "src/lat/lat_sig.h"

#include <signal.h>

#include <atomic>

#include "src/core/registry.h"
#include "src/report/table.h"
#include "src/sys/signals.h"

namespace lmb::lat {

namespace {

std::atomic<std::uint64_t> g_catch_count{0};

void empty_handler(int) {}

void counting_handler(int) { g_catch_count.fetch_add(1, std::memory_order_relaxed); }

}  // namespace

Measurement measure_signal_install(const TimingPolicy& policy) {
  // Alternate two handlers so the kernel cannot short-circuit a no-change
  // sigaction.
  sys::SignalHandlerGuard guard(SIGUSR1, empty_handler);
  return measure(
      [](std::uint64_t iters) {
        for (std::uint64_t i = 0; i < iters; ++i) {
          sys::install_handler(SIGUSR1, (i & 1) != 0 ? empty_handler : counting_handler);
        }
      },
      policy);
}

Measurement measure_signal_catch(const TimingPolicy& policy) {
  sys::SignalHandlerGuard guard(SIGUSR1, counting_handler);
  g_catch_count.store(0, std::memory_order_relaxed);
  return measure(
      [](std::uint64_t iters) {
        for (std::uint64_t i = 0; i < iters; ++i) {
          sys::raise_signal(SIGUSR1);
        }
      },
      policy);
}

std::uint64_t signal_catch_count() { return g_catch_count.load(std::memory_order_relaxed); }

namespace {

const BenchmarkRegistrar install_registrar{{
    .name = "lat_sig_install",
    .category = "latency",
    .description = "sigaction() handler installation (Table 8)",
    .run =
        [](const Options& opts) {
          TimingPolicy p = opts.quick() ? TimingPolicy::quick() : TimingPolicy::standard();
          Measurement m = measure_signal_install(p);
          return RunResult{}.with(m).add("us", m.us_per_op(), "us");
        },
}};

const BenchmarkRegistrar catch_registrar{{
    .name = "lat_sig_catch",
    .category = "latency",
    .description = "signal delivery + catch, same process (Table 8)",
    .run =
        [](const Options& opts) {
          TimingPolicy p = opts.quick() ? TimingPolicy::quick() : TimingPolicy::standard();
          Measurement m = measure_signal_catch(p);
          return RunResult{}.with(m).add("us", m.us_per_op(), "us");
        },
}};

}  // namespace

}  // namespace lmb::lat
