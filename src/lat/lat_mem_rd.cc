#include "src/lat/lat_mem_rd.h"

#include <algorithm>
#include <numeric>
#include <random>
#include <stdexcept>

#include "src/core/do_not_optimize.h"
#include "src/core/registry.h"
#include "src/report/table.h"
#include "src/sys/mapped_file.h"

namespace lmb::lat {

std::vector<size_t> build_chain(size_t slot_count, ChaseOrder order, unsigned seed) {
  if (slot_count < 2) {
    throw std::invalid_argument("build_chain: need at least 2 slots");
  }
  std::vector<size_t> next(slot_count);
  switch (order) {
    case ChaseOrder::kStrideBackward:
      // Visit slots in descending order: i -> i-1, 0 wraps to the top.
      for (size_t i = 1; i < slot_count; ++i) {
        next[i] = i - 1;
      }
      next[0] = slot_count - 1;
      break;
    case ChaseOrder::kRandom: {
      // A single Hamiltonian cycle through a shuffled visit order.
      std::vector<size_t> visit(slot_count);
      std::iota(visit.begin(), visit.end(), 0);
      std::mt19937 rng(seed);
      std::shuffle(visit.begin() + 1, visit.end(), rng);
      for (size_t i = 0; i + 1 < slot_count; ++i) {
        next[visit[i]] = visit[i + 1];
      }
      next[visit[slot_count - 1]] = visit[0];
      break;
    }
  }
  return next;
}

void* chase(void** start, std::uint64_t loads) {
  void** p = start;
  // 10-way unroll like the original; every load depends on the previous.
  std::uint64_t blocks = loads / 10;
  for (std::uint64_t i = 0; i < blocks; ++i) {
    p = static_cast<void**>(*p);
    p = static_cast<void**>(*p);
    p = static_cast<void**>(*p);
    p = static_cast<void**>(*p);
    p = static_cast<void**>(*p);
    p = static_cast<void**>(*p);
    p = static_cast<void**>(*p);
    p = static_cast<void**>(*p);
    p = static_cast<void**>(*p);
    p = static_cast<void**>(*p);
  }
  for (std::uint64_t i = blocks * 10; i < loads; ++i) {
    p = static_cast<void**>(*p);
  }
  return p;
}

void* chase_dirty(void** start, std::uint64_t loads) {
  void** p = start;
  for (std::uint64_t i = 0; i < loads; ++i) {
    void** next = static_cast<void**>(*p);
    p[1] = p;  // dirty the line (second pointer slot is chain-unused)
    p = next;
  }
  return p;
}

MemLatPoint measure_mem_latency_dirty(const MemLatConfig& config) {
  if (config.stride_bytes < 2 * sizeof(void*)) {
    throw std::invalid_argument("dirty chase needs stride >= 2 pointer slots");
  }
  size_t slots = config.array_bytes / config.stride_bytes;
  if (slots < 2) {
    throw std::invalid_argument("array too small for stride (need >= 2 slots)");
  }
  sys::AnonMapping region(config.array_bytes);
  char* base = region.data();
  std::vector<size_t> next = build_chain(slots, config.order);
  for (size_t i = 0; i < slots; ++i) {
    *reinterpret_cast<void**>(base + i * config.stride_bytes) =
        base + next[i] * config.stride_bytes;
  }
  void** start = reinterpret_cast<void**>(base);
  do_not_optimize(chase_dirty(start, slots));

  constexpr std::uint64_t kLoadsPerIter = 100'000;
  Measurement m = measure(
      [&](std::uint64_t iters) { do_not_optimize(chase_dirty(start, iters * kLoadsPerIter)); },
      config.policy);

  MemLatPoint point;
  point.array_bytes = config.array_bytes;
  point.stride_bytes = config.stride_bytes;
  point.ns_per_load = m.ns_per_op / static_cast<double>(kLoadsPerIter);
  return point;
}

MemLatPoint measure_mem_latency(const MemLatConfig& config) {
  if (config.stride_bytes < sizeof(void*)) {
    throw std::invalid_argument("stride must be >= pointer size");
  }
  size_t slots = config.array_bytes / config.stride_bytes;
  if (slots < 2) {
    throw std::invalid_argument("array too small for stride (need >= 2 slots)");
  }

  sys::AnonMapping region(config.array_bytes);
  char* base = region.data();
  std::vector<size_t> next = build_chain(slots, config.order);
  for (size_t i = 0; i < slots; ++i) {
    *reinterpret_cast<void**>(base + i * config.stride_bytes) =
        base + next[i] * config.stride_bytes;
  }

  void** start = reinterpret_cast<void**>(base);
  // Warm: one full pass so every line is resident at the level under test.
  do_not_optimize(chase(start, slots));

  // Inner loop granularity: ~1M loads per harness iteration keeps the timed
  // interval long even on fast caches (the paper times ~1,000,000 loads).
  constexpr std::uint64_t kLoadsPerIter = 100'000;
  Measurement m = measure(
      [&](std::uint64_t iters) { do_not_optimize(chase(start, iters * kLoadsPerIter)); },
      config.policy);

  MemLatPoint point;
  point.array_bytes = config.array_bytes;
  point.stride_bytes = config.stride_bytes;
  point.ns_per_load = m.ns_per_op / static_cast<double>(kLoadsPerIter);
  return point;
}

std::vector<MemLatPoint> sweep_mem_latency(const MemLatSweepConfig& config) {
  if (config.min_bytes == 0 || config.min_bytes > config.max_bytes) {
    throw std::invalid_argument("sweep_mem_latency: bad size range");
  }
  std::vector<MemLatPoint> points;
  for (size_t stride : config.strides) {
    for (size_t size = config.min_bytes; size <= config.max_bytes; size *= 2) {
      if (size / stride < 2) {
        continue;  // stride larger than the array; no chain possible
      }
      MemLatConfig cfg;
      cfg.array_bytes = size;
      cfg.stride_bytes = stride;
      cfg.order = config.order;
      cfg.policy = config.policy;
      points.push_back(measure_mem_latency(cfg));
    }
  }
  return points;
}

namespace {

const BenchmarkRegistrar registrar{{
    .name = "lat_mem_rd",
    .category = "latency",
    .description = "back-to-back memory load latency (Figure 1)",
    .run =
        [](const Options& opts) {
          MemLatConfig cfg;
          cfg.array_bytes = static_cast<size_t>(
              opts.get_size("size", opts.quick() ? (1 << 20) : (8 << 20)));
          cfg.stride_bytes = static_cast<size_t>(opts.get_size("stride", 64));
          if (opts.quick()) {
            cfg.policy = TimingPolicy::quick();
          }
          MemLatPoint p = measure_mem_latency(cfg);
          RunResult r;
          r.add("ns", p.ns_per_load, "ns");
          r.metadata["bytes"] = std::to_string(cfg.array_bytes);
          r.metadata["stride"] = std::to_string(cfg.stride_bytes);
          r.display = report::format_number(p.ns_per_load, 1) + " ns per load";
          return r;
        },
}};

}  // namespace

}  // namespace lmb::lat
