// TLB miss cost — paper §7: "Other changes include ... measuring TLB miss
// cost" (following Saavedra & Smith, which §6.2 cites).
//
// Method: pointer-chase one word per page across N randomly-ordered pages.
// While N fits the TLB the cost is a cache access; past the TLB capacity
// every access adds a page-table walk.  The knee gives the entry count, the
// plateau delta the per-miss cost.
#ifndef LMBENCHPP_SRC_LAT_LAT_TLB_H_
#define LMBENCHPP_SRC_LAT_LAT_TLB_H_

#include <vector>

#include "src/core/timing.h"

namespace lmb::lat {

struct TlbConfig {
  // Page counts swept (powers of two up to this bound).
  int max_pages = 8192;
  int min_pages = 8;
  TimingPolicy policy = TimingPolicy::quick();

  static TlbConfig quick() {
    TlbConfig c;
    c.max_pages = 1024;
    return c;
  }
};

struct TlbPoint {
  int pages = 0;
  double ns_per_access = 0.0;
};

// One point: chase across exactly `pages` pages (one line per page).
TlbPoint measure_tlb_point(int pages, const TimingPolicy& policy = TimingPolicy::quick());

// The page-count sweep.
std::vector<TlbPoint> sweep_tlb(const TlbConfig& config = {});

struct TlbEstimate {
  // Largest page count still at the fast plateau (~ TLB reach in entries);
  // 0 when no knee was found (TLB larger than the sweep).
  int entries = 0;
  // Latency delta between the final and first plateau.
  double miss_cost_ns = 0.0;
};

// Knee detection on a sweep (pure function; unit-testable on synthetic
// curves).  `jump_threshold` as in extract_hierarchy.
TlbEstimate estimate_tlb(const std::vector<TlbPoint>& points, double jump_threshold = 1.3);

}  // namespace lmb::lat

#endif  // LMBENCHPP_SRC_LAT_LAT_TLB_H_
