// File-oriented latency benchmarks from the wider lmbench suite: FIFO
// round trips, fcntl record-lock hand-offs, and mmap/munmap cost.  These are
// the "some hardware measurements; went into greater depth" additions the
// paper credits itself with over Ousterhout's suite (§2).
#ifndef LMBENCHPP_SRC_LAT_LAT_FILE_OPS_H_
#define LMBENCHPP_SRC_LAT_LAT_FILE_OPS_H_

#include <cstddef>

#include "src/core/timing.h"

namespace lmb::lat {

// Round trip of a 1-byte token between two processes over a pair of named
// pipes (lmbench's lat_fifo).  Same shape as measure_pipe_latency but
// through the filesystem namespace.
Measurement measure_fifo_latency(const TimingPolicy& policy = TimingPolicy::standard());

// fcntl(F_SETLKW) hand-off between two processes: each round trip is
// acquire+release of two byte-range write locks used as a ping-pong
// (lmbench's lat_fcntl).
Measurement measure_fcntl_lock_latency(const TimingPolicy& policy = TimingPolicy::standard());

// mmap + munmap of a `bytes`-long file region (lmbench's lat_mmap): the
// virtual-memory setup cost an application pays per mapping.
struct MmapLatConfig {
  size_t bytes = 1u << 20;
  TimingPolicy policy = TimingPolicy::standard();
};
Measurement measure_mmap_latency(const MmapLatConfig& config = {});

// Protection-fault service time (lmbench's lat_sig -P / "prot" case): write
// to a read-only page, catch SIGSEGV, repair with mprotect, repeat.
Measurement measure_protection_fault(const TimingPolicy& policy = TimingPolicy::standard());

}  // namespace lmb::lat

#endif  // LMBENCHPP_SRC_LAT_LAT_FILE_OPS_H_
