// Memory read (back-to-back-load) latency — paper §6.1/§6.2, Figure 1.
//
// "The benchmark varies two parameters, array size and array stride.  For
// each size, a list of pointers is created for all of the different strides.
// Then the list is walked thus:  mov r4,(r4)  # p = *p".
//
// lmbench measures *back-to-back-load* latency: every load depends on the
// previous one, so the measured time per load is the full cache-miss service
// time, the quantity the paper argues software developers actually see.
#ifndef LMBENCHPP_SRC_LAT_LAT_MEM_RD_H_
#define LMBENCHPP_SRC_LAT_LAT_MEM_RD_H_

#include <cstddef>
#include <vector>

#include "src/core/timing.h"

namespace lmb::lat {

// How the pointer chain is laid out in the array.
enum class ChaseOrder {
  // Descending-address chain with a fixed stride (the paper's layout; the
  // original lmbench walks backwards to frustrate ascending prefetchers).
  kStrideBackward,
  // Uniform random permutation of the stride slots — defeats modern stride
  // prefetchers entirely (lmbench3's -t; listed as "future work" §7).
  kRandom,
};

struct MemLatConfig {
  size_t array_bytes = 1u << 20;
  size_t stride_bytes = 64;
  ChaseOrder order = ChaseOrder::kStrideBackward;
  TimingPolicy policy = TimingPolicy::standard();
};

struct MemLatPoint {
  size_t array_bytes = 0;
  size_t stride_bytes = 0;
  double ns_per_load = 0.0;
};

// One (size, stride) point.
MemLatPoint measure_mem_latency(const MemLatConfig& config);

// The Figure-1 sweep: sizes from `min_bytes` to `max_bytes` (powers of two),
// one series per stride.  Returns points grouped by stride then size.
struct MemLatSweepConfig {
  size_t min_bytes = 512;
  size_t max_bytes = 8u << 20;
  std::vector<size_t> strides = {16, 32, 64, 128, 256, 512};
  ChaseOrder order = ChaseOrder::kStrideBackward;
  TimingPolicy policy = TimingPolicy::quick();
};

std::vector<MemLatPoint> sweep_mem_latency(const MemLatSweepConfig& config);

// Builds the chase chain into `slots` (an array of indices): slot i holds
// the index of the next slot to visit.  Exposed for property tests — the
// chain must be a single cycle covering every slot exactly once.
std::vector<size_t> build_chain(size_t slot_count, ChaseOrder order, unsigned seed = 12345);

// Runs `loads` dependent pointer dereferences over a prepared chain and
// returns the final pointer (so the chain cannot be optimized away).
void* chase(void** start, std::uint64_t loads);

// As `chase`, but also stores to each visited line (marking it dirty), so
// the next miss to that line pays a write-back.  Requires stride >= 2
// pointer slots of room per chain entry.
void* chase_dirty(void** start, std::uint64_t loads);

// §7 extension ("dirty-read latency, as well as write latency"): the same
// (size, stride) point measured with a read-modify-write walk.  The delta
// over measure_mem_latency is the write-back cost per miss.
MemLatPoint measure_mem_latency_dirty(const MemLatConfig& config);

}  // namespace lmb::lat

#endif  // LMBENCHPP_SRC_LAT_LAT_MEM_RD_H_
