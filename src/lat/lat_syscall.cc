#include "src/lat/lat_syscall.h"

#include <fcntl.h>
#include <sys/select.h>
#include <sys/stat.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "src/core/do_not_optimize.h"
#include "src/core/registry.h"
#include "src/report/table.h"
#include "src/sys/error.h"
#include "src/sys/fdio.h"
#include "src/sys/pipe.h"
#include "src/sys/temp.h"
#include "src/sys/unique_fd.h"

namespace lmb::lat {

Measurement measure_null_write(const TimingPolicy& policy) {
  sys::UniqueFd fd = sys::open_write("/dev/null");
  return measure(
      [&](std::uint64_t iters) {
        char word[4] = {'l', 'm', 'b', '\n'};
        for (std::uint64_t i = 0; i < iters; ++i) {
          if (::write(fd.get(), word, sizeof(word)) != sizeof(word)) {
            sys::throw_errno("write /dev/null");
          }
        }
      },
      policy);
}

Measurement measure_getpid(const TimingPolicy& policy) {
  return measure(
      [](std::uint64_t iters) {
        long pid = 0;
        for (std::uint64_t i = 0; i < iters; ++i) {
          pid += ::syscall(SYS_getpid);
        }
        do_not_optimize(pid);
      },
      policy);
}

Measurement measure_null_read(const TimingPolicy& policy) {
  sys::UniqueFd fd = sys::open_read("/dev/zero");
  return measure(
      [&](std::uint64_t iters) {
        char byte = 0;
        for (std::uint64_t i = 0; i < iters; ++i) {
          if (::read(fd.get(), &byte, 1) != 1) {
            sys::throw_errno("read /dev/zero");
          }
        }
        do_not_optimize(byte);
      },
      policy);
}

Measurement measure_stat(const std::string& path, const TimingPolicy& policy) {
  struct stat st;
  if (::stat(path.c_str(), &st) != 0) {
    sys::throw_errno("stat " + path);
  }
  return measure(
      [&](std::uint64_t iters) {
        struct stat s;
        for (std::uint64_t i = 0; i < iters; ++i) {
          if (::stat(path.c_str(), &s) != 0) {
            sys::throw_errno("stat");
          }
        }
        do_not_optimize(s.st_ino);
      },
      policy);
}

Measurement measure_open_close(const std::string& path, const TimingPolicy& policy) {
  return measure(
      [&](std::uint64_t iters) {
        for (std::uint64_t i = 0; i < iters; ++i) {
          int fd = ::open(path.c_str(), O_RDONLY);
          if (fd < 0) {
            sys::throw_errno("open " + path);
          }
          ::close(fd);
        }
      },
      policy);
}

Measurement measure_select(int nfds, const TimingPolicy& policy) {
  if (nfds < 1 || nfds > FD_SETSIZE) {
    throw std::invalid_argument("measure_select: nfds out of range");
  }
  // Pipes provide quiet descriptors: select always times out immediately
  // with zero ready fds, so we measure pure polling cost over n fds.
  std::vector<sys::Pipe> pipes;
  pipes.reserve(static_cast<size_t>(nfds + 1) / 2);
  std::vector<int> fds;
  while (static_cast<int>(fds.size()) < nfds) {
    pipes.emplace_back();
    fds.push_back(pipes.back().read_fd());
    if (static_cast<int>(fds.size()) < nfds) {
      fds.push_back(pipes.back().write_fd());
    }
  }
  int maxfd = *std::max_element(fds.begin(), fds.end());

  return measure(
      [&](std::uint64_t iters) {
        for (std::uint64_t i = 0; i < iters; ++i) {
          fd_set readable;
          FD_ZERO(&readable);
          for (int fd : fds) {
            FD_SET(fd, &readable);
          }
          struct timeval timeout = {0, 0};
          int n = ::select(maxfd + 1, &readable, nullptr, nullptr, &timeout);
          if (n < 0) {
            sys::throw_errno("select");
          }
        }
      },
      policy);
}

SyscallLatencies measure_syscall_suite(const TimingPolicy& policy) {
  SyscallLatencies out;
  out.null_write_us = measure_null_write(policy).us_per_op();
  out.getpid_us = measure_getpid(policy).us_per_op();
  out.read_us = measure_null_read(policy).us_per_op();

  sys::TempDir dir("lmb_syscall");
  sys::write_file(dir.file("probe"), "x");
  out.stat_us = measure_stat(dir.file("probe"), policy).us_per_op();
  out.open_close_us = measure_open_close(dir.file("probe"), policy).us_per_op();
  return out;
}

namespace {

TimingPolicy policy_from(const Options& opts) {
  return opts.quick() ? TimingPolicy::quick() : TimingPolicy::standard();
}

const BenchmarkRegistrar null_registrar{{
    .name = "lat_syscall",
    .category = "latency",
    .description = "simple system call: 1-word write to /dev/null (Table 7)",
    .run =
        [](const Options& opts) {
          Measurement m = measure_null_write(policy_from(opts));
          return RunResult{}.with(m).add("us", m.us_per_op(), "us");
        },
}};

const BenchmarkRegistrar getpid_registrar{{
    .name = "lat_getpid",
    .category = "latency",
    .description = "trivial system call: getpid",
    .run =
        [](const Options& opts) {
          Measurement m = measure_getpid(policy_from(opts));
          return RunResult{}.with(m).add("us", m.us_per_op(), "us");
        },
}};

const BenchmarkRegistrar select_registrar{{
    .name = "lat_select",
    .category = "latency",
    .description = "select() over N descriptors",
    .run =
        [](const Options& opts) {
          int n = static_cast<int>(opts.get_int("n", 64));
          Measurement m = measure_select(n, policy_from(opts));
          RunResult r = RunResult{}.with(m).add("us", m.us_per_op(), "us");
          r.metadata["fds"] = std::to_string(n);
          return r;
        },
}};

}  // namespace

}  // namespace lmb::lat
