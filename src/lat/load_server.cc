#include "src/lat/load_server.h"

#include <sys/socket.h>
#include <sys/uio.h>
#include <time.h>

#include <algorithm>
#include <cerrno>
#include <deque>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/core/topology.h"
#include "src/obs/trace.h"
#include "src/sys/error.h"
#include "src/sys/fdio.h"

namespace lmb::lat {

namespace {

// Tags 0/1 are the loop's own fds; connections start above them.
constexpr std::uint64_t kListenerTag = 0;
constexpr std::uint64_t kWakeTag = 1;
constexpr std::uint64_t kFirstConnTag = 2;

// Echo backpressure: stop reading a connection whose pending output exceeds
// this; resume once the peer drains us.  Without it a fast sender that
// never reads would grow the out buffer without bound.
constexpr size_t kOutHighWater = 1u << 20;

// Max queued RPC replies gathered into one writev call.  Linux IOV_MAX is
// 1024; each reply contributes two iovecs (header + payload).
constexpr int kMaxReplyIov = 64;

std::int64_t thread_cpu_ns() {
  timespec ts{};
  ::clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
  return static_cast<std::int64_t>(ts.tv_sec) * 1'000'000'000 + ts.tv_nsec;
}

std::uint32_t read_be32(const char* p) {
  const auto* b = reinterpret_cast<const unsigned char*>(p);
  return (static_cast<std::uint32_t>(b[0]) << 24) | (static_cast<std::uint32_t>(b[1]) << 16) |
         (static_cast<std::uint32_t>(b[2]) << 8) | static_cast<std::uint32_t>(b[3]);
}

}  // namespace

struct LoadServer::Conn {
  sys::UniqueFd fd;
  std::uint64_t tag = 0;
  std::string in;        // kRpc: bytes of a not-yet-complete frame
  std::string out;       // pending output (kEcho)
  size_t out_off = 0;    // bytes of `out` already written
  // kRpc: queued replies as pointers into the server's shared payload
  // table; each reply is the shared 4-byte header plus one payload.
  std::deque<const char*> replies;
  size_t reply_off = 0;  // bytes of the front reply already written
  bool peer_closed = false;
  // kEdge only: a read pass was cut short by output backpressure, not
  // EAGAIN — bytes may still sit in the kernel buffer with no further edge
  // coming, so the drain must resume once the peer unblocks us.
  bool read_ready = false;
  std::uint32_t interest = 0;  // currently registered epoll events

  size_t pending_out(std::uint32_t reply_total) const {
    return (out.size() - out_off) + replies.size() * reply_total - reply_off;
  }
};

// Everything one event-loop thread owns: its SO_REUSEPORT listener, epoll
// set, wake pipe, scratch buffer, and counters.  Counters live on their own
// cache lines per shard so two shards bumping bytes_in never false-share.
struct LoadServer::Shard {
  explicit Shard(sys::TcpListener l) : listener(std::move(l)) {}

  sys::TcpListener listener;
  sys::Epoll epoll;
  sys::WakePipe wake;
  std::vector<char> scratch;  // loop-thread-only read buffer
  int index = 0;
  int pinned_cpu = -1;
  std::thread thread;

  struct alignas(64) Counters {
    std::atomic<std::uint64_t> accepted{0};
    std::atomic<std::uint64_t> closed{0};
    std::atomic<std::uint64_t> open{0};
    std::atomic<std::uint64_t> requests{0};
    std::atomic<std::uint64_t> bytes_in{0};
    std::atomic<std::uint64_t> bytes_out{0};
    std::atomic<std::uint64_t> wakeups{0};
    std::atomic<std::int64_t> loop_cpu_ns{0};
  } counters;
};

LoadServer::LoadServer(LoadServerConfig config) : config_(config) {
  if (config_.shards < 1) {
    config_.shards = 1;
  }
  rpc_header_[0] = static_cast<char>(config_.reply_bytes >> 24);
  rpc_header_[1] = static_cast<char>(config_.reply_bytes >> 16);
  rpc_header_[2] = static_cast<char>(config_.reply_bytes >> 8);
  rpc_header_[3] = static_cast<char>(config_.reply_bytes);
  for (int v = 0; v < 16; ++v) {
    rpc_payloads_[static_cast<size_t>(v)].assign(config_.reply_bytes,
                                                 static_cast<char>('r' ^ v));
  }
  if (obs::ObsScope* scope = obs::ObsScope::current()) {
    trace_sink_ = scope->sink();
  }

  // One listener per shard, all on one port: the first binds ephemeral,
  // the rest join it.  SO_REUSEPORT even for a single shard keeps the two
  // configurations byte-for-byte identical apart from thread count.
  const CpuTopology topo = query_topology();
  const std::vector<int> pin_order = topo.pin_order();
  for (int i = 0; i < config_.shards; ++i) {
    auto shard = std::make_unique<Shard>(sys::TcpListener::with_reuseport(port_, config_.backlog));
    if (i == 0) {
      port_ = shard->listener.port();
    }
    shard->index = i;
    sys::set_nonblocking(shard->listener.fd());
    shard->epoll.add(shard->listener.fd(), EPOLLIN, kListenerTag);
    shard->epoll.add(shard->wake.read_fd(), EPOLLIN, kWakeTag);
    shards_.push_back(std::move(shard));
  }
  for (std::unique_ptr<Shard>& shard : shards_) {
    Shard* s = shard.get();
    const int cpu = (config_.pin_shards && !pin_order.empty())
                        ? pin_order[static_cast<size_t>(s->index) % pin_order.size()]
                        : -1;
    s->thread = std::thread([this, s, cpu] {
      if (cpu >= 0 && pin_current_thread(cpu)) {
        s->pinned_cpu = cpu;
      }
      loop(*s);
    });
  }
}

LoadServer::~LoadServer() { stop(); }

void LoadServer::stop() {
  bool expected = false;
  if (stopping_.compare_exchange_strong(expected, true)) {
    for (std::unique_ptr<Shard>& shard : shards_) {
      shard->wake.notify();
    }
  }
  for (std::unique_ptr<Shard>& shard : shards_) {
    if (shard->thread.joinable()) {
      shard->thread.join();
    }
  }
  if (trace_sink_ != nullptr && !trace_emitted_) {
    trace_emitted_ = true;
    obs::TraceSink* sink = trace_sink_;
    for (const std::unique_ptr<Shard>& shard : shards_) {
      const Shard::Counters& c = shard->counters;
      sink->instant(
          "load", "shard",
          {{"shard", std::to_string(shard->index)},
           {"cpu", std::to_string(shard->pinned_cpu)},
           {"epoll", config_.epoll_mode == EpollMode::kEdge ? "et" : "lt"},
           {"accepted", std::to_string(c.accepted.load(std::memory_order_relaxed))},
           {"requests", std::to_string(c.requests.load(std::memory_order_relaxed))},
           {"wakeups", std::to_string(c.wakeups.load(std::memory_order_relaxed))},
           {"loop_cpu_ns", std::to_string(c.loop_cpu_ns.load(std::memory_order_relaxed))}});
    }
  }
}

LoadServerStats LoadServer::shard_stats(int shard) const {
  const Shard::Counters& c = shards_[static_cast<size_t>(shard)]->counters;
  LoadServerStats s;
  s.accepted = c.accepted.load(std::memory_order_relaxed);
  s.closed = c.closed.load(std::memory_order_relaxed);
  s.open = c.open.load(std::memory_order_relaxed);
  s.requests = c.requests.load(std::memory_order_relaxed);
  s.bytes_in = c.bytes_in.load(std::memory_order_relaxed);
  s.bytes_out = c.bytes_out.load(std::memory_order_relaxed);
  s.wakeups = c.wakeups.load(std::memory_order_relaxed);
  s.loop_cpu_ns = c.loop_cpu_ns.load(std::memory_order_relaxed);
  return s;
}

LoadServerStats LoadServer::stats() const {
  LoadServerStats total;
  for (int i = 0; i < shards(); ++i) {
    const LoadServerStats s = shard_stats(i);
    total.accepted += s.accepted;
    total.closed += s.closed;
    total.open += s.open;
    total.requests += s.requests;
    total.bytes_in += s.bytes_in;
    total.bytes_out += s.bytes_out;
    total.wakeups += s.wakeups;
    total.loop_cpu_ns += s.loop_cpu_ns;
  }
  return total;
}

int LoadServer::shard_cpu(int shard) const {
  return shards_[static_cast<size_t>(shard)]->pinned_cpu;
}

void LoadServer::loop(Shard& shard) {
  // Loop-thread-only connection table; local so the header needs no
  // container of the private Conn type.
  std::unordered_map<std::uint64_t, std::unique_ptr<Conn>> conns;
  std::uint64_t next_tag = kFirstConnTag;
  std::vector<epoll_event> events;

  auto accept_all = [&] {
    while (true) {
      int fd = ::accept4(shard.listener.fd(), nullptr, nullptr, SOCK_NONBLOCK);
      if (fd < 0) {
        if (errno == EINTR) {
          continue;
        }
        if (errno == EAGAIN || errno == EWOULDBLOCK) {
          return;
        }
        if (errno == ECONNABORTED) {
          continue;  // peer gave up while queued; not our problem
        }
        sys::throw_errno("accept4");
      }
      auto conn = std::make_unique<Conn>();
      conn->fd.reset(fd);
      conn->tag = next_tag++;
      if (config_.protocol != ServerProtocol::kSink) {
        sys::set_tcp_nodelay(fd);
      }
      if (config_.epoll_mode == EpollMode::kEdge) {
        // Register the full mask once; EPOLLET reports transitions only,
        // so a connection that stays readable or writable costs no further
        // epoll_ctl — the hot path makes zero interest-switching syscalls.
        conn->interest = EPOLLIN | EPOLLOUT | EPOLLET;
      } else {
        conn->interest = EPOLLIN;
      }
      shard.epoll.add(fd, conn->interest, conn->tag);
      shard.counters.accepted.fetch_add(1, std::memory_order_relaxed);
      shard.counters.open.fetch_add(1, std::memory_order_relaxed);
      conns.emplace(conn->tag, std::move(conn));
    }
  };

  while (!stopping_.load(std::memory_order_acquire)) {
    // Block indefinitely: every state change arrives as an fd event (new
    // connection, readable/writable conn, wake pipe).  No timeout means an
    // idle shard performs zero syscalls — the no-busy-spin guarantee.
    int n = shard.epoll.wait(events, /*timeout_ms=*/-1);
    shard.counters.wakeups.fetch_add(1, std::memory_order_relaxed);
    for (int i = 0; i < n; ++i) {
      const epoll_event& ev = events[static_cast<size_t>(i)];
      if (ev.data.u64 == kListenerTag) {
        accept_all();
        continue;
      }
      if (ev.data.u64 == kWakeTag) {
        shard.wake.drain();
        continue;
      }
      auto it = conns.find(ev.data.u64);
      if (it == conns.end()) {
        continue;  // closed earlier in this same batch
      }
      bool alive;
      try {
        alive = handle_conn(shard, *it->second, ev.events);
      } catch (const sys::SysError&) {
        alive = false;  // per-connection failure never fells the server
      }
      if (!alive) {
        close_conn(shard, *it->second);
        conns.erase(it);
      }
    }
    shard.counters.loop_cpu_ns.store(thread_cpu_ns(), std::memory_order_relaxed);
  }
  shard.counters.loop_cpu_ns.store(thread_cpu_ns(), std::memory_order_relaxed);
}

bool LoadServer::handle_conn(Shard& shard, Conn& conn, std::uint32_t events) {
  const std::uint32_t reply_total = 4 + config_.reply_bytes;
  if ((events & (EPOLLHUP | EPOLLERR)) != 0 && (events & EPOLLIN) == 0) {
    return false;
  }
  if ((events & EPOLLOUT) != 0) {
    flush(shard, conn);
  }
  bool want_read = (events & EPOLLIN) != 0 || conn.read_ready;
  conn.read_ready = false;
  while (want_read) {
    if (shard.scratch.size() < config_.io_buf_bytes) {
      shard.scratch.resize(config_.io_buf_bytes);
    }
    // Drain until EAGAIN, EOF, or output backpressure.
    bool drained = false;
    while (conn.pending_out(reply_total) < kOutHighWater) {
      sys::IoOutcome r =
          sys::read_nonblock(conn.fd.get(), shard.scratch.data(), shard.scratch.size());
      if (r.bytes > 0) {
        shard.counters.bytes_in.fetch_add(r.bytes, std::memory_order_relaxed);
        process_input(shard, conn, shard.scratch.data(), r.bytes);
        continue;
      }
      if (r.closed) {
        conn.peer_closed = true;
      }
      drained = true;  // would_block or EOF: the kernel buffer is empty
      break;
    }
    flush(shard, conn);
    if (drained || conn.peer_closed) {
      break;
    }
    if (conn.pending_out(reply_total) >= kOutHighWater) {
      // Stopped on backpressure with bytes possibly still queued in the
      // kernel.  Level-triggered epoll re-notifies on its own; under
      // EPOLLET no further edge is guaranteed, so remember to resume the
      // drain from the next EPOLLOUT-driven flush.
      conn.read_ready = config_.epoll_mode == EpollMode::kEdge;
      break;
    }
    // flush() freed space below the high water: keep draining now rather
    // than paying another wakeup.
  }
  if (conn.peer_closed && conn.pending_out(reply_total) == 0) {
    return false;  // everything echoed; orderly close
  }
  update_interest(shard, conn);
  return true;
}

void LoadServer::process_input(Shard& shard, Conn& conn, const char* data, size_t len) {
  switch (config_.protocol) {
    case ServerProtocol::kEcho:
      conn.out.append(data, len);
      break;
    case ServerProtocol::kSink:
      break;  // counted by the caller; bytes are the whole message
    case ServerProtocol::kRpc: {
      conn.in.append(data, len);
      size_t pos = 0;
      while (conn.in.size() - pos >= 4) {
        std::uint32_t frame = read_be32(conn.in.data() + pos);
        if (conn.in.size() - pos - 4 < frame) {
          break;  // partial frame; wait for more bytes
        }
        // Per-request server work: a checksum spin over the request plus
        // `work_iters` extra rounds.  The result selects the reply payload
        // so the optimizer cannot delete the loop.
        std::uint64_t acc = 0;
        for (size_t i = 0; i < frame; ++i) {
          acc = acc * 131 + static_cast<unsigned char>(conn.in[pos + 4 + i]);
        }
        for (std::uint64_t i = 0; i < config_.work_iters; ++i) {
          acc = acc * 6364136223846793005ull + 1442695040888963407ull;
        }
        // No copy: the queued reply is a pointer into the shared payload
        // table; flush() gathers header + payload with writev.
        conn.replies.push_back(rpc_payloads_[acc & 0xf].data());
        shard.counters.requests.fetch_add(1, std::memory_order_relaxed);
        pos += 4 + frame;
      }
      conn.in.erase(0, pos);
      break;
    }
  }
}

bool LoadServer::flush(Shard& shard, Conn& conn) {
  // Echo/contiguous path.
  while (conn.out_off < conn.out.size()) {
    sys::IoOutcome w = sys::write_nonblock(conn.fd.get(), conn.out.data() + conn.out_off,
                                           conn.out.size() - conn.out_off);
    if (w.bytes > 0) {
      shard.counters.bytes_out.fetch_add(w.bytes, std::memory_order_relaxed);
      conn.out_off += w.bytes;
      continue;
    }
    if (w.closed) {
      conn.peer_closed = true;
      conn.out.clear();
      conn.out_off = 0;
      conn.replies.clear();
      conn.reply_off = 0;
      return true;
    }
    return false;  // would block
  }
  if (conn.out_off > 0) {
    conn.out.clear();
    conn.out_off = 0;
  }
  // RPC reply path: coalesce queued replies into one writev — header and
  // payload go straight from the shared tables, nothing is copied into a
  // contiguous buffer first.
  const size_t reply_total = 4 + config_.reply_bytes;
  while (!conn.replies.empty()) {
    iovec iov[2 * kMaxReplyIov];
    int iovcnt = 0;
    size_t first_skip = conn.reply_off;
    const int batch = static_cast<int>(
        std::min<size_t>(conn.replies.size(), static_cast<size_t>(kMaxReplyIov)));
    for (int i = 0; i < batch; ++i) {
      const char* payload = conn.replies[static_cast<size_t>(i)];
      size_t hdr_skip = std::min<size_t>(first_skip, 4);
      size_t pay_skip = first_skip - hdr_skip;
      first_skip = 0;  // only the front reply is partially written
      if (hdr_skip < 4) {
        iov[iovcnt].iov_base = const_cast<char*>(rpc_header_.data()) + hdr_skip;
        iov[iovcnt].iov_len = 4 - hdr_skip;
        ++iovcnt;
      }
      if (pay_skip < config_.reply_bytes) {
        iov[iovcnt].iov_base = const_cast<char*>(payload) + pay_skip;
        iov[iovcnt].iov_len = config_.reply_bytes - pay_skip;
        ++iovcnt;
      }
    }
    if (iovcnt == 0) {
      // Degenerate reply_bytes == 0 with the header already written.
      conn.replies.pop_front();
      conn.reply_off = 0;
      continue;
    }
    sys::IoOutcome w = sys::writev_nonblock(conn.fd.get(), iov, iovcnt);
    if (w.bytes > 0) {
      shard.counters.bytes_out.fetch_add(w.bytes, std::memory_order_relaxed);
      size_t written = conn.reply_off + w.bytes;
      while (written >= reply_total && !conn.replies.empty()) {
        conn.replies.pop_front();
        written -= reply_total;
      }
      conn.reply_off = written;
      continue;
    }
    if (w.closed) {
      conn.peer_closed = true;
      conn.replies.clear();
      conn.reply_off = 0;
      return true;
    }
    return false;  // would block
  }
  return true;
}

void LoadServer::update_interest(Shard& shard, Conn& conn) {
  if (config_.epoll_mode == EpollMode::kEdge) {
    return;  // fixed EPOLLIN|EPOLLOUT|EPOLLET mask; edges re-arm themselves
  }
  const std::uint32_t reply_total = 4 + config_.reply_bytes;
  std::uint32_t wanted = 0;
  if (conn.pending_out(reply_total) < kOutHighWater && !conn.peer_closed) {
    wanted |= EPOLLIN;
  }
  if (conn.pending_out(reply_total) > 0) {
    wanted |= EPOLLOUT;
  }
  if (wanted == 0) {
    wanted = EPOLLIN;  // never deaf: at minimum notice the peer closing
  }
  if (wanted != conn.interest) {
    shard.epoll.mod(conn.fd.get(), wanted, conn.tag);
    conn.interest = wanted;
  }
}

void LoadServer::close_conn(Shard& shard, Conn& conn) {
  shard.epoll.del(conn.fd.get());
  conn.fd.reset();
  shard.counters.closed.fetch_add(1, std::memory_order_relaxed);
  shard.counters.open.fetch_sub(1, std::memory_order_relaxed);
}

}  // namespace lmb::lat
