#include "src/lat/load_server.h"

#include <sys/socket.h>
#include <time.h>

#include <cerrno>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/sys/error.h"
#include "src/sys/fdio.h"

namespace lmb::lat {

namespace {

// Tags 0/1 are the loop's own fds; connections start above them.
constexpr std::uint64_t kListenerTag = 0;
constexpr std::uint64_t kWakeTag = 1;
constexpr std::uint64_t kFirstConnTag = 2;

// Echo backpressure: stop reading a connection whose pending output exceeds
// this; resume once the peer drains us.  Without it a fast sender that
// never reads would grow the out buffer without bound.
constexpr size_t kOutHighWater = 1u << 20;

std::int64_t thread_cpu_ns() {
  timespec ts{};
  ::clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
  return static_cast<std::int64_t>(ts.tv_sec) * 1'000'000'000 + ts.tv_nsec;
}

std::uint32_t read_be32(const char* p) {
  const auto* b = reinterpret_cast<const unsigned char*>(p);
  return (static_cast<std::uint32_t>(b[0]) << 24) | (static_cast<std::uint32_t>(b[1]) << 16) |
         (static_cast<std::uint32_t>(b[2]) << 8) | static_cast<std::uint32_t>(b[3]);
}

void append_be32(std::string& out, std::uint32_t v) {
  out.push_back(static_cast<char>(v >> 24));
  out.push_back(static_cast<char>(v >> 16));
  out.push_back(static_cast<char>(v >> 8));
  out.push_back(static_cast<char>(v));
}

}  // namespace

struct LoadServer::Conn {
  sys::UniqueFd fd;
  std::uint64_t tag = 0;
  std::string in;        // kRpc: bytes of a not-yet-complete frame
  std::string out;       // pending output
  size_t out_off = 0;    // bytes of `out` already written
  bool peer_closed = false;
  std::uint32_t interest = 0;  // currently registered epoll events
};

LoadServer::LoadServer(LoadServerConfig config)
    : config_(config), listener_(config.backlog) {
  sys::set_nonblocking(listener_.fd());
  epoll_.add(listener_.fd(), EPOLLIN, kListenerTag);
  epoll_.add(wake_.read_fd(), EPOLLIN, kWakeTag);
  thread_ = std::thread([this] { loop(); });
}

LoadServer::~LoadServer() { stop(); }

void LoadServer::stop() {
  bool expected = false;
  if (stopping_.compare_exchange_strong(expected, true)) {
    wake_.notify();
  }
  if (thread_.joinable()) {
    thread_.join();
  }
}

LoadServerStats LoadServer::stats() const {
  LoadServerStats s;
  s.accepted = accepted_.load(std::memory_order_relaxed);
  s.closed = closed_.load(std::memory_order_relaxed);
  s.open = open_.load(std::memory_order_relaxed);
  s.requests = requests_.load(std::memory_order_relaxed);
  s.bytes_in = bytes_in_.load(std::memory_order_relaxed);
  s.bytes_out = bytes_out_.load(std::memory_order_relaxed);
  s.wakeups = wakeups_.load(std::memory_order_relaxed);
  s.loop_cpu_ns = loop_cpu_ns_.load(std::memory_order_relaxed);
  return s;
}

void LoadServer::loop() {
  // Loop-thread-only connection table; local so the header needs no
  // container of the private Conn type.
  std::unordered_map<std::uint64_t, std::unique_ptr<Conn>> conns;
  std::uint64_t next_tag = kFirstConnTag;
  std::vector<epoll_event> events;

  auto accept_all = [&] {
    // Drain the accept queue: level-triggered epoll would re-notify, but
    // one pass per wakeup halves the syscalls during a connection ramp.
    while (true) {
      int fd = ::accept4(listener_.fd(), nullptr, nullptr, SOCK_NONBLOCK);
      if (fd < 0) {
        if (errno == EINTR) {
          continue;
        }
        if (errno == EAGAIN || errno == EWOULDBLOCK) {
          return;
        }
        if (errno == ECONNABORTED) {
          continue;  // peer gave up while queued; not our problem
        }
        sys::throw_errno("accept4");
      }
      auto conn = std::make_unique<Conn>();
      conn->fd.reset(fd);
      conn->tag = next_tag++;
      if (config_.protocol != ServerProtocol::kSink) {
        sys::set_tcp_nodelay(fd);
      }
      conn->interest = EPOLLIN;
      epoll_.add(fd, conn->interest, conn->tag);
      accepted_.fetch_add(1, std::memory_order_relaxed);
      open_.fetch_add(1, std::memory_order_relaxed);
      conns.emplace(conn->tag, std::move(conn));
    }
  };

  while (!stopping_.load(std::memory_order_acquire)) {
    // Block indefinitely: every state change arrives as an fd event (new
    // connection, readable/writable conn, wake pipe).  No timeout means an
    // idle server performs zero syscalls — the no-busy-spin guarantee.
    int n = epoll_.wait(events, /*timeout_ms=*/-1);
    wakeups_.fetch_add(1, std::memory_order_relaxed);
    for (int i = 0; i < n; ++i) {
      const epoll_event& ev = events[static_cast<size_t>(i)];
      if (ev.data.u64 == kListenerTag) {
        accept_all();
        continue;
      }
      if (ev.data.u64 == kWakeTag) {
        wake_.drain();
        continue;
      }
      auto it = conns.find(ev.data.u64);
      if (it == conns.end()) {
        continue;  // closed earlier in this same batch
      }
      bool alive;
      try {
        alive = handle_conn(*it->second, ev.events);
      } catch (const sys::SysError&) {
        alive = false;  // per-connection failure never fells the server
      }
      if (!alive) {
        close_conn(*it->second);
        conns.erase(it);
      }
    }
    loop_cpu_ns_.store(thread_cpu_ns(), std::memory_order_relaxed);
  }
  loop_cpu_ns_.store(thread_cpu_ns(), std::memory_order_relaxed);
}

bool LoadServer::handle_conn(Conn& conn, std::uint32_t events) {
  if ((events & (EPOLLHUP | EPOLLERR)) != 0 && (events & EPOLLIN) == 0) {
    return false;
  }
  if ((events & EPOLLOUT) != 0) {
    flush(conn);
  }
  if ((events & EPOLLIN) != 0) {
    if (scratch_.size() < config_.io_buf_bytes) {
      scratch_.resize(config_.io_buf_bytes);
    }
    while (conn.out.size() - conn.out_off < kOutHighWater) {
      sys::IoOutcome r = sys::read_nonblock(conn.fd.get(), scratch_.data(), scratch_.size());
      if (r.bytes > 0) {
        bytes_in_.fetch_add(r.bytes, std::memory_order_relaxed);
        process_input(conn, scratch_.data(), r.bytes);
        continue;
      }
      if (r.closed) {
        conn.peer_closed = true;
      }
      break;  // would_block or EOF
    }
    flush(conn);
  }
  if (conn.peer_closed && conn.out_off >= conn.out.size()) {
    return false;  // everything echoed; orderly close
  }
  update_interest(conn);
  return true;
}

void LoadServer::process_input(Conn& conn, const char* data, size_t len) {
  switch (config_.protocol) {
    case ServerProtocol::kEcho:
      conn.out.append(data, len);
      break;
    case ServerProtocol::kSink:
      break;  // counted by the caller; bytes are the whole message
    case ServerProtocol::kRpc: {
      conn.in.append(data, len);
      size_t pos = 0;
      while (conn.in.size() - pos >= 4) {
        std::uint32_t frame = read_be32(conn.in.data() + pos);
        if (conn.in.size() - pos - 4 < frame) {
          break;  // partial frame; wait for more bytes
        }
        // Per-request server work: a checksum spin over the request plus
        // `work_iters` extra rounds.  The result feeds the reply's first
        // byte so the optimizer cannot delete the loop.
        std::uint64_t acc = 0;
        for (size_t i = 0; i < frame; ++i) {
          acc = acc * 131 + static_cast<unsigned char>(conn.in[pos + 4 + i]);
        }
        for (std::uint64_t i = 0; i < config_.work_iters; ++i) {
          acc = acc * 6364136223846793005ull + 1442695040888963407ull;
        }
        append_be32(conn.out, config_.reply_bytes);
        conn.out.append(config_.reply_bytes, static_cast<char>('r' ^ (acc & 0xf)));
        requests_.fetch_add(1, std::memory_order_relaxed);
        pos += 4 + frame;
      }
      conn.in.erase(0, pos);
      break;
    }
  }
}

bool LoadServer::flush(Conn& conn) {
  while (conn.out_off < conn.out.size()) {
    sys::IoOutcome w = sys::write_nonblock(conn.fd.get(), conn.out.data() + conn.out_off,
                                           conn.out.size() - conn.out_off);
    if (w.bytes > 0) {
      bytes_out_.fetch_add(w.bytes, std::memory_order_relaxed);
      conn.out_off += w.bytes;
      continue;
    }
    if (w.closed) {
      conn.peer_closed = true;
      conn.out.clear();
      conn.out_off = 0;
      return true;
    }
    return false;  // would block
  }
  if (conn.out_off > 0) {
    conn.out.clear();
    conn.out_off = 0;
  }
  return true;
}

void LoadServer::update_interest(Conn& conn) {
  std::uint32_t wanted = 0;
  if (conn.out.size() - conn.out_off < kOutHighWater && !conn.peer_closed) {
    wanted |= EPOLLIN;
  }
  if (conn.out_off < conn.out.size()) {
    wanted |= EPOLLOUT;
  }
  if (wanted == 0) {
    wanted = EPOLLIN;  // never deaf: at minimum notice the peer closing
  }
  if (wanted != conn.interest) {
    epoll_.mod(conn.fd.get(), wanted, conn.tag);
    conn.interest = wanted;
  }
}

void LoadServer::close_conn(Conn& conn) {
  epoll_.del(conn.fd.get());
  conn.fd.reset();
  closed_.fetch_add(1, std::memory_order_relaxed);
  open_.fetch_sub(1, std::memory_order_relaxed);
}

}  // namespace lmb::lat
