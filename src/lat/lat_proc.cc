#include "src/lat/lat_proc.h"

#include <unistd.h>

#include <stdexcept>

#include "src/core/registry.h"
#include "src/report/table.h"
#include "src/sys/process.h"

namespace lmb::lat {

namespace {

std::string resolve_exec_path(const ProcConfig& config) {
  if (!config.exec_path.empty()) {
    return config.exec_path;
  }
  return default_hello_path();
}

void validate(const ProcConfig& config) {
  if (config.iterations < 1) {
    throw std::invalid_argument("ProcConfig: iterations must be >= 1");
  }
}

}  // namespace

std::string default_hello_path() {
#ifdef LMB_HELLO_PATH
  if (::access(LMB_HELLO_PATH, X_OK) == 0) {
    return LMB_HELLO_PATH;
  }
#endif
  return "/bin/true";
}

Measurement measure_fork_exit(const ProcConfig& config) {
  validate(config);
  return measure_once_each(
      []() {
        sys::Child child = sys::fork_child([]() { return 0; });
        child.wait();
      },
      config.iterations);
}

Measurement measure_fork_exec(const ProcConfig& config) {
  validate(config);
  std::string path = resolve_exec_path(config);
  Measurement m = measure_once_each(
      [&]() {
        sys::Child child = sys::spawn({path}, /*quiet=*/true);
        if (child.wait() == 127) {
          throw std::runtime_error("fork_exec: cannot execute " + path);
        }
      },
      config.iterations);
  return m;
}

Measurement measure_fork_sh(const ProcConfig& config) {
  validate(config);
  std::string path = resolve_exec_path(config);
  return measure_once_each(
      [&]() {
        sys::Child child = sys::spawn_shell(path, /*quiet=*/true);
        if (child.wait() == 127) {
          throw std::runtime_error("fork_sh: shell cannot run " + path);
        }
      },
      config.iterations);
}

ProcResult measure_proc_suite(const ProcConfig& config) {
  ProcResult result;
  result.fork_exit_ms = measure_fork_exit(config).ms_per_op();
  result.fork_exec_ms = measure_fork_exec(config).ms_per_op();
  result.fork_sh_ms = measure_fork_sh(config).ms_per_op();
  return result;
}

namespace {

ProcConfig config_from(const Options& opts) {
  ProcConfig cfg = opts.quick() ? ProcConfig::quick() : ProcConfig{};
  cfg.exec_path = opts.get_string("exec", cfg.exec_path);
  cfg.iterations = static_cast<int>(opts.get_int("n", cfg.iterations));
  return cfg;
}

const BenchmarkRegistrar fork_registrar{{
    .name = "lat_fork",
    .category = "latency",
    .description = "fork + exit + wait (Table 9)",
    .run =
        [](const Options& opts) {
          Measurement m = measure_fork_exit(config_from(opts));
          return RunResult{}.with(m).add("ms", m.ms_per_op(), "ms");
        },
}};

const BenchmarkRegistrar exec_registrar{{
    .name = "lat_exec",
    .category = "latency",
    .description = "fork + exec + exit (Table 9)",
    .run =
        [](const Options& opts) {
          Measurement m = measure_fork_exec(config_from(opts));
          return RunResult{}.with(m).add("ms", m.ms_per_op(), "ms");
        },
}};

const BenchmarkRegistrar sh_registrar{{
    .name = "lat_sh",
    .category = "latency",
    .description = "fork + /bin/sh -c + exit (Table 9)",
    .run =
        [](const Options& opts) {
          Measurement m = measure_fork_sh(config_from(opts));
          return RunResult{}.with(m).add("ms", m.ms_per_op(), "ms");
        },
}};

}  // namespace

}  // namespace lmb::lat
