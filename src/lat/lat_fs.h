// File system latency — paper §6.8, Table 16.
//
// "File system latency is defined as the time required to create or delete
// a zero length file. ... The benchmark creates 1,000 zero-sized files and
// then deletes them.  All the files are created in one directory and their
// names are short, such as 'a', 'b', 'c', ... 'aa', 'ab', ...".
#ifndef LMBENCHPP_SRC_LAT_LAT_FS_H_
#define LMBENCHPP_SRC_LAT_LAT_FS_H_

#include <string>
#include <vector>

#include "src/core/timing.h"

namespace lmb::lat {

struct FsLatConfig {
  int file_count = 1000;
  // Directory to create files in; empty = fresh temp dir.
  std::string dir;
  // Whole create-all/delete-all cycles; minimum per-file time reported.
  int repetitions = 3;

  static FsLatConfig quick() {
    FsLatConfig c;
    c.file_count = 200;
    c.repetitions = 2;
    return c;
  }
};

struct FsLatResult {
  double create_us = 0.0;  // per-file creation
  double delete_us = 0.0;  // per-file deletion
  int file_count = 0;
};

// The short-name sequence "a".."z", "aa", "ab", ... (exposed for tests).
std::vector<std::string> short_file_names(int count);

FsLatResult measure_fs_latency(const FsLatConfig& config = {});

}  // namespace lmb::lat

#endif  // LMBENCHPP_SRC_LAT_LAT_FS_H_
