// Basic processor operation latencies (lmbench's lat_ops).
//
// §5.1 notes that "today's processor typically cycles at 10 or fewer ns" —
// lat_ops pins that down per operation: dependent chains of integer and
// floating-point add/mul/div, so each result feeds the next and the
// measured time is the operation's *latency* (not throughput), in the same
// spirit as the back-to-back-load memory measurement.
#ifndef LMBENCHPP_SRC_LAT_LAT_OPS_H_
#define LMBENCHPP_SRC_LAT_LAT_OPS_H_

#include "src/core/timing.h"

namespace lmb::lat {

enum class ArithOp {
  kIntAdd,
  kIntMul,
  kIntDiv,
  kDoubleAdd,
  kDoubleMul,
  kDoubleDiv,
};

const char* arith_op_name(ArithOp op);

struct OpLatency {
  ArithOp op;
  double ns_per_op = 0.0;
};

// Latency of one dependent operation of the given kind.
OpLatency measure_op_latency(ArithOp op, const TimingPolicy& policy = TimingPolicy::standard());

// All six operations, in enum order.
std::vector<OpLatency> measure_all_op_latencies(
    const TimingPolicy& policy = TimingPolicy::standard());

// The measured kernels (exposed for tests: results must be value-correct so
// the chains cannot have been optimized away).  Each runs `iters` blocks of
// kOpsPerBlock dependent operations seeded with `seed`.
inline constexpr int kOpsPerBlock = 64;
std::uint64_t run_int_add_chain(std::uint64_t iters, std::uint64_t seed);
std::uint64_t run_int_mul_chain(std::uint64_t iters, std::uint64_t seed);
std::uint64_t run_int_div_chain(std::uint64_t iters, std::uint64_t seed);
double run_double_add_chain(std::uint64_t iters, double seed);
double run_double_mul_chain(std::uint64_t iters, double seed);
double run_double_div_chain(std::uint64_t iters, double seed);

}  // namespace lmb::lat

#endif  // LMBENCHPP_SRC_LAT_LAT_OPS_H_
