#include "src/lat/lat_ipc.h"

#include <unistd.h>

#include <stdexcept>
#include <vector>

#include "src/core/registry.h"
#include "src/report/table.h"
#include "src/sys/fdio.h"
#include "src/sys/pipe.h"
#include "src/sys/process.h"
#include "src/sys/socket.h"

namespace lmb::lat {

namespace {

void validate(const IpcLatConfig& config) {
  if (config.message_bytes == 0 || config.message_bytes > 65000) {
    throw std::invalid_argument("IpcLatConfig: message size out of range");
  }
}

// Echo loop over stream fds: read exactly `len`, write it back; exit on EOF.
int stream_echo_child(int in_fd, int out_fd, size_t len) {
  std::vector<char> buf(len);
  while (true) {
    size_t got = 0;
    while (got < len) {
      size_t n = sys::read_some(in_fd, buf.data() + got, len - got);
      if (n == 0) {
        return got == 0 ? 0 : 1;  // clean EOF only between messages
      }
      got += n;
    }
    sys::write_full(out_fd, buf.data(), len);
  }
}

// Parent-side round-trip body over stream fds.
Measurement time_stream_roundtrips(int out_fd, int in_fd, const IpcLatConfig& config) {
  std::vector<char> buf(config.message_bytes, 'p');
  return measure(
      [&](std::uint64_t iters) {
        for (std::uint64_t i = 0; i < iters; ++i) {
          sys::write_full(out_fd, buf.data(), buf.size());
          sys::read_full(in_fd, buf.data(), buf.size());
        }
      },
      config.policy);
}

}  // namespace

Measurement measure_pipe_latency(const IpcLatConfig& config) {
  validate(config);
  sys::Pipe to_child;
  sys::Pipe to_parent;
  sys::Child child = sys::fork_child([&]() {
    to_child.close_write();
    to_parent.close_read();
    return stream_echo_child(to_child.read_fd(), to_parent.write_fd(), config.message_bytes);
  });
  to_child.close_read();
  to_parent.close_write();

  Measurement m = time_stream_roundtrips(to_child.write_fd(), to_parent.read_fd(), config);
  to_child.close_write();  // EOF stops the child
  if (child.wait() != 0) {
    throw std::runtime_error("pipe latency echo child failed");
  }
  return m;
}

Measurement measure_unix_latency(const IpcLatConfig& config) {
  validate(config);
  sys::SocketPair pair;
  sys::Child child = sys::fork_child([&]() {
    pair.close_first();
    return stream_echo_child(pair.second(), pair.second(), config.message_bytes);
  });
  pair.close_second();

  Measurement m = time_stream_roundtrips(pair.first(), pair.first(), config);
  pair.close_first();
  if (child.wait() != 0) {
    throw std::runtime_error("unix latency echo child failed");
  }
  return m;
}

Measurement measure_tcp_latency(const IpcLatConfig& config) {
  validate(config);
  sys::TcpListener listener;
  sys::Child child = sys::fork_child([&]() {
    sys::TcpStream conn = listener.accept();
    conn.set_nodelay(true);
    return stream_echo_child(conn.fd(), conn.fd(), config.message_bytes);
  });
  sys::TcpStream conn = sys::TcpStream::connect(listener.port());
  conn.set_nodelay(true);

  Measurement m = time_stream_roundtrips(conn.fd(), conn.fd(), config);
  conn.shutdown_write();
  if (child.wait() != 0) {
    throw std::runtime_error("tcp latency echo child failed");
  }
  return m;
}

Measurement measure_udp_latency(const IpcLatConfig& config) {
  validate(config);
  if (config.message_bytes < 2) {
    throw std::invalid_argument("udp latency needs messages >= 2 bytes (1 byte = terminator)");
  }
  sys::UdpSocket server;  // created pre-fork so the port is known to both
  std::uint16_t server_port = server.port();

  sys::Child child = sys::fork_child([&]() {
    std::vector<char> buf(65536);
    while (true) {
      std::uint16_t from = 0;
      size_t n = server.recv_from(buf.data(), buf.size(), &from);
      if (n <= 1) {
        return 0;  // 1-byte terminator
      }
      server.send_to(from, buf.data(), n);
    }
  });

  sys::UdpSocket client;
  client.connect_to(server_port);
  std::vector<char> buf(config.message_bytes, 'u');
  Measurement m = measure(
      [&](std::uint64_t iters) {
        for (std::uint64_t i = 0; i < iters; ++i) {
          client.send(buf.data(), buf.size());
          size_t n = client.recv(buf.data(), buf.size());
          if (n != buf.size()) {
            throw std::runtime_error("udp latency: short echo");
          }
        }
      },
      config.policy);

  char stop = 'q';
  client.send(&stop, 1);
  if (child.wait() != 0) {
    throw std::runtime_error("udp latency echo child failed");
  }
  return m;
}

Measurement measure_tcp_connect(const ConnectConfig& config) {
  if (config.connects < 1) {
    throw std::invalid_argument("ConnectConfig: connects must be >= 1");
  }
  sys::TcpListener listener;
  int total = config.connects;
  sys::Child child = sys::fork_child([&]() {
    for (int i = 0; i < total; ++i) {
      sys::TcpStream conn = listener.accept();
      // Closed immediately by scope exit.
    }
    return 0;
  });

  std::uint16_t port = listener.port();
  Measurement m = measure_once_each(
      [&]() {
        sys::TcpStream conn = sys::TcpStream::connect(port);
        // connect + close is the measured unit (§6.7: "The socket is closed
        // after each connect").
      },
      total);
  if (child.wait() != 0) {
    throw std::runtime_error("tcp connect acceptor failed");
  }
  return m;
}

namespace {

IpcLatConfig ipc_config_from(const Options& opts) {
  IpcLatConfig cfg = opts.quick() ? IpcLatConfig::quick() : IpcLatConfig{};
  cfg.message_bytes = static_cast<size_t>(
      opts.get_size("msg", static_cast<std::int64_t>(cfg.message_bytes)));
  return cfg;
}

RunResult us_result(const Measurement& m) {
  RunResult r = RunResult{}.with(m).add("us", m.us_per_op(), "us");
  r.display = report::format_number(m.us_per_op(), 1) + " us round trip";
  return r;
}

const BenchmarkRegistrar pipe_registrar{{
    .name = "lat_pipe",
    .category = "latency",
    .description = "pipe round-trip latency (Table 11)",
    .run = [](const Options& opts) { return us_result(measure_pipe_latency(ipc_config_from(opts))); },
}};

const BenchmarkRegistrar unix_registrar{{
    .name = "lat_unix",
    .category = "latency",
    .description = "AF_UNIX round-trip latency",
    .run = [](const Options& opts) { return us_result(measure_unix_latency(ipc_config_from(opts))); },
}};

const BenchmarkRegistrar tcp_registrar{{
    .name = "lat_tcp",
    .category = "latency",
    .description = "loopback TCP round-trip latency (Table 12)",
    .run = [](const Options& opts) { return us_result(measure_tcp_latency(ipc_config_from(opts))); },
}};

const BenchmarkRegistrar udp_registrar{{
    .name = "lat_udp",
    .category = "latency",
    .description = "loopback UDP round-trip latency (Table 13)",
    .run = [](const Options& opts) { return us_result(measure_udp_latency(ipc_config_from(opts))); },
}};

const BenchmarkRegistrar connect_registrar{{
    .name = "lat_connect",
    .category = "latency",
    .description = "TCP connection establishment (Table 15)",
    .run =
        [](const Options& opts) {
          ConnectConfig cfg;
          cfg.connects = static_cast<int>(opts.get_int("n", cfg.connects));
          Measurement m = measure_tcp_connect(cfg);
          return RunResult{}.with(m).add("us", m.us_per_op(), "us");
        },
}};

}  // namespace

}  // namespace lmb::lat
