// The c10k load scenarios: lat_tcp_n, lat_rpc_n, bw_tcp_n.
//
// Each benchmark runs its scenario over live loopback sockets (LoadServer +
// run_load, both in this process) and over a simulated link
// (netsim::simulate_concurrent_load / simulate_concurrent_streams), and
// reports throughput plus p50/p95/p99/p999 per scenario.  Metric keys are
// scenario-prefixed — loopback_p99_us, sim_p999_us, loopback_rps — so the
// standard results pipeline (JSON, compare, trend) carries the tails with
// zero new plumbing.
//
// Loopback runs scale across cores: --shards=1,2,4 runs the scenario once
// per shard count (server event-loop shards over SO_REUSEPORT, generator
// worker threads to match) and emits per-count variants —
// loopback_s<N>_rps / loopback_s<N>_mbs, loopback_s<N>_p99_us and
// loopback_s<N>_wakeups_per_req — alongside the standard keys, which come
// from the *first* count in the list.  --epoll=et switches every server
// shard to edge-triggered epoll so its wakeup cost can be compared with the
// level-triggered default through the same pipeline.
//
// Flags (all benchmarks):
//   --connections=N   concurrent connections / flows   (64; quick: 16)
//   --duration=MS     measured window                  (1000; quick: 300)
//   --shards=LIST     server/generator event-loop shard counts (1)
//   --epoll=MODE      server readiness discipline: lt | et  (lt)
//   --net=MODE        both | loopback | sim            (both)
//   --msg=BYTES       request payload (size suffixes ok; bw default 64k)
//   --link=NAME       sim link: eth10 | eth100 | fddi | hippi  (eth100)
//   --loss=RATE       sim packet-loss probability      (0.01)
//   --interval-ms=MS  rotate a fresh latency histogram every MS of the
//                     measured loopback window; emits a time × latency
//                     heatmap (metadata key heatmap_loopback, schema
//                     lmbenchpp.heatmap.v1) and live interval frames (0 = off)
// lat_tcp_n / lat_rpc_n only:
//   --rate=RPS        open-loop arrival rate; 0 = closed loop (0)
//   --arrival=KIND    poisson | uniform (open loop only; poisson)
//   --think=US        closed-loop think time per connection (0)
// lat_rpc_n only:
//   --work=ITERS      server-side CPU iterations per request (1000)
#include <algorithm>
#include <stdexcept>
#include <string>
#include <vector>

#include "src/core/clock.h"
#include "src/core/registry.h"
#include "src/core/stats.h"
#include "src/lat/load_gen.h"
#include "src/lat/load_server.h"
#include "src/netsim/link.h"
#include "src/netsim/multiflow.h"
#include "src/obs/histogram.h"
#include "src/report/heatmap.h"
#include "src/report/table.h"

namespace lmb::lat {

namespace {

struct LoadFlags {
  int connections = 64;
  Nanos duration = kSecond;
  Nanos think = 0;
  double rate = 0.0;
  ArrivalMode arrival = ArrivalMode::kClosedLoop;
  std::uint32_t msg = 64;
  std::uint64_t work = 1000;
  bool run_loopback = true;
  bool run_sim = true;
  netsim::LinkProfile link = netsim::LinkProfile::ethernet_100baseT();
  double loss = 0.01;
  std::uint32_t sim_reqs = 50;  // per-flow exchanges in the simulated run
  std::vector<int> shard_counts = {1};
  EpollMode epoll_mode = EpollMode::kLevel;
  Nanos interval = 0;  // interval-series window; 0 = off
};

netsim::LinkProfile link_from_name(const std::string& name) {
  if (name == "eth10") {
    return netsim::LinkProfile::ethernet_10baseT();
  }
  if (name == "eth100") {
    return netsim::LinkProfile::ethernet_100baseT();
  }
  if (name == "fddi") {
    return netsim::LinkProfile::fddi();
  }
  if (name == "hippi") {
    return netsim::LinkProfile::hippi();
  }
  throw std::invalid_argument("unknown --link '" + name + "' (eth10|eth100|fddi|hippi)");
}

LoadFlags flags_from(const Options& opts, std::uint32_t default_msg) {
  LoadFlags f;
  if (opts.quick()) {
    f.connections = 16;
    f.duration = 300 * kMillisecond;
    f.sim_reqs = 20;
  }
  f.msg = default_msg;
  f.connections = static_cast<int>(opts.get_int("connections", f.connections));
  f.duration = opts.get_int("duration", f.duration / kMillisecond) * kMillisecond;
  f.think = opts.get_int("think", 0) * kMicrosecond;
  f.rate = opts.get_double("rate", 0.0);
  f.msg = static_cast<std::uint32_t>(opts.get_size("msg", f.msg));
  f.work = static_cast<std::uint64_t>(opts.get_int("work", static_cast<std::int64_t>(f.work)));
  if (f.rate > 0) {
    const std::string arrival = opts.get_string("arrival", "poisson");
    if (arrival == "poisson") {
      f.arrival = ArrivalMode::kOpenPoisson;
    } else if (arrival == "uniform") {
      f.arrival = ArrivalMode::kOpenUniform;
    } else {
      throw std::invalid_argument("unknown --arrival '" + arrival + "' (poisson|uniform)");
    }
  }
  const std::string net = opts.get_string("net", "both");
  if (net == "loopback") {
    f.run_sim = false;
  } else if (net == "sim") {
    f.run_loopback = false;
  } else if (net != "both") {
    throw std::invalid_argument("unknown --net '" + net + "' (both|loopback|sim)");
  }
  f.link = link_from_name(opts.get_string("link", "eth100"));
  f.loss = opts.get_double("loss", f.loss);
  f.sim_reqs = static_cast<std::uint32_t>(
      opts.get_int("sim-reqs", static_cast<std::int64_t>(f.sim_reqs)));
  const std::vector<std::string> shard_list = opts.get_list("shards", {"1"});
  if (!shard_list.empty()) {
    f.shard_counts.clear();
    for (const std::string& s : shard_list) {
      const int n = static_cast<int>(std::stol(s));
      if (n < 1) {
        throw std::invalid_argument("--shards entries must be positive, got '" + s + "'");
      }
      f.shard_counts.push_back(n);
    }
  }
  f.interval = opts.get_int("interval-ms", 0) * kMillisecond;
  if (f.interval < 0) {
    throw std::invalid_argument("--interval-ms must be non-negative");
  }
  const std::string epoll = opts.get_string("epoll", "lt");
  if (epoll == "lt") {
    f.epoll_mode = EpollMode::kLevel;
  } else if (epoll == "et") {
    f.epoll_mode = EpollMode::kEdge;
  } else {
    throw std::invalid_argument("unknown --epoll '" + epoll + "' (lt|et)");
  }
  return f;
}

// Warmup scaled to the run but bounded: long runs do not waste time, CI
// quick runs still shed the connection-ramp transient.
Nanos warmup_for(Nanos duration) {
  return std::clamp<Nanos>(duration / 5, 20 * kMillisecond, 200 * kMillisecond);
}

void add_percentiles(RunResult& r, const std::string& scenario, const Sample& s) {
  r.add(scenario + "_p50_us", s.percentile(50) / 1000.0, "us");
  r.add(scenario + "_p95_us", s.percentile(95) / 1000.0, "us");
  r.add(scenario + "_p99_us", s.percentile(99) / 1000.0, "us");
  r.add(scenario + "_p999_us", s.percentile(99.9) / 1000.0, "us");
}

// Loopback percentiles come from the fixed-memory histogram (≤0.4% bucket
// midpoint error); the sim keeps its raw Sample.
void add_percentiles(RunResult& r, const std::string& scenario,
                     const obs::LatencyHistogram& h) {
  r.add(scenario + "_p50_us", h.percentile(50) / 1000.0, "us");
  r.add(scenario + "_p95_us", h.percentile(95) / 1000.0, "us");
  r.add(scenario + "_p99_us", h.percentile(99) / 1000.0, "us");
  r.add(scenario + "_p999_us", h.percentile(99.9) / 1000.0, "us");
}

// One loopback run at a given shard count, plus the server-side counters a
// client-side LoadResult cannot see.
struct LoopbackRun {
  LoadResult load;
  LoadServerStats server;
  std::string shard_accepts;  // per-shard accept counts, comma-joined
  double wakeups_per_req = 0;
};

LoopbackRun run_loopback(const LoadFlags& f, int shards, ServerProtocol server_proto,
                         ClientProtocol client_proto, const std::string& bench) {
  LoadServerConfig server_cfg;
  server_cfg.protocol = server_proto;
  server_cfg.reply_bytes = f.msg;
  server_cfg.work_iters = server_proto == ServerProtocol::kRpc ? f.work : 0;
  server_cfg.shards = shards;
  server_cfg.epoll_mode = f.epoll_mode;
  LoadServer server(server_cfg);

  LoadGenConfig gen;
  gen.port = server.port();
  gen.connections = f.connections;
  gen.protocol = client_proto;
  gen.request_bytes = f.msg;
  gen.reply_bytes = f.msg;
  gen.arrival = f.arrival;
  gen.rate_per_sec = f.rate;
  gen.think_time = f.think;
  gen.duration = f.duration;
  gen.warmup = warmup_for(f.duration);
  gen.shards = shards;
  // Generator workers pin past the server shards so the two halves of the
  // harness do not time-slice one core against each other.
  gen.pin_shards = shards > 1;
  gen.pin_offset = server.shards();
  gen.interval = f.interval;
  gen.stream_label = bench + "/loopback";

  LoopbackRun out;
  out.load = run_load(gen);
  server.stop();
  out.server = server.stats();
  for (int i = 0; i < server.shards(); ++i) {
    if (i > 0) {
      out.shard_accepts += ",";
    }
    out.shard_accepts += std::to_string(server.shard_stats(i).accepted);
  }
  if (out.load.total_requests > 0) {
    out.wakeups_per_req = static_cast<double>(out.server.wakeups) /
                          static_cast<double>(out.load.total_requests);
  }
  return out;
}

// The per-shard-count metric variants (loopback_s<N>_*) plus the metadata
// the CI shard-sum assertion cross-checks.  No s<N>_p50_us key on purpose:
// the tail-table extractor treats any key group with a p50 as a scenario
// row, and shard variants belong in the scaling table instead.
void add_shard_metrics(RunResult& r, int shards, const LoopbackRun& run, bool bandwidth) {
  const std::string p = "loopback_s" + std::to_string(shards);
  if (bandwidth) {
    r.add(p + "_mbs", run.load.mb_per_sec, "MB/s");
  } else {
    r.add(p + "_rps", run.load.ops_per_sec, "ops/s");
  }
  r.add(p + "_p99_us", run.load.rtt_hist.percentile(99) / 1000.0, "us");
  // "count": unknown to direction_for_unit, so never gates a comparison —
  // wakeup efficiency is diagnostic, not a pass/fail axis.
  r.add(p + "_wakeups_per_req", run.wakeups_per_req, "count");
  r.metadata["s" + std::to_string(shards) + "_shard_accepts"] = run.shard_accepts;
  r.metadata["s" + std::to_string(shards) + "_accepted"] =
      std::to_string(run.server.accepted);
  r.metadata["s" + std::to_string(shards) + "_errors"] = std::to_string(run.load.errors);
}

// Scenario-level metadata shared by every loopback variant.
void add_engine_meta(RunResult& r, const LoadFlags& f) {
  r.metadata["epoll"] = f.epoll_mode == EpollMode::kEdge ? "et" : "lt";
  std::string counts;
  for (size_t i = 0; i < f.shard_counts.size(); ++i) {
    if (i > 0) {
      counts += ",";
    }
    counts += std::to_string(f.shard_counts[i]);
  }
  r.metadata["shards"] = counts;
}

// The simulated half of a latency scenario (lat_tcp_n / lat_rpc_n share it;
// RPC differs only in the server CPU cost).
void run_sim_load(RunResult& r, const LoadFlags& f, Nanos server_cost) {
  netsim::MultiflowConfig cfg;
  // The sim's flow-id tag field caps concurrency at 1024; clamp and record.
  cfg.flows = std::min(f.connections, 1024);
  cfg.request_bytes = f.msg;
  cfg.reply_bytes = f.msg;
  cfg.requests_per_flow = f.sim_reqs;
  cfg.server_cost = server_cost;
  cfg.loss_rate = f.loss;
  if (f.loss > 0) {
    // RTO must clear the *queueing* delay, which scales with the number of
    // flows sharing the server CPU — a fixed timer below that floods the
    // run with spurious retransmissions (every exchange times out while
    // merely queued, the classic too-short-RTO failure).
    cfg.retransmit_timeout =
        std::max<Nanos>(5 * kMillisecond, 4 * cfg.flows * server_cost);
  }
  netsim::MultiflowResult sim = netsim::simulate_concurrent_load(f.link, cfg);
  add_percentiles(r, "sim", sim.rtt_ns);
  r.add("sim_rps", sim.ops_per_sec, "ops/s");
  r.metadata["sim_link"] = f.link.name;
  r.metadata["sim_loss"] = std::to_string(f.loss);
  r.metadata["sim_flows"] = std::to_string(cfg.flows);
  r.metadata["sim_retransmits"] = std::to_string(sim.retransmits);
  r.metadata["sim_packets_lost"] = std::to_string(sim.packets_lost);
}

// Interval telemetry for the headline loopback run: the heatmap document
// (with the histogram-vs-raw-reservoir cross-check block filled in) rides in
// metadata so it survives the standard results pipeline unchanged.
void add_heatmap_meta(RunResult& r, const std::string& bench, const LoadResult& load) {
  report::Heatmap hm = report::build_heatmap(bench, "loopback", load.intervals);
  hm.p50_us = load.rtt_hist.percentile(50) / 1000.0;
  hm.p99_us = load.rtt_hist.percentile(99) / 1000.0;
  hm.p999_us = load.rtt_hist.percentile(99.9) / 1000.0;
  if (!load.rtt_reservoir.empty()) {
    hm.raw_p50_us = load.rtt_reservoir.percentile(50) / 1000.0;
    hm.raw_p99_us = load.rtt_reservoir.percentile(99) / 1000.0;
    hm.raw_p999_us = load.rtt_reservoir.percentile(99.9) / 1000.0;
    hm.raw_sampled = load.rtt_seen > load.rtt_reservoir.count();
  }
  r.metadata["heatmap_loopback"] = report::heatmap_to_json(hm);
  r.metadata["interval_windows"] = std::to_string(load.intervals.size());
}

void add_loopback_meta(RunResult& r, const LoadFlags& f, const LoadResult& load) {
  r.metadata["connections"] = std::to_string(load.connections);
  r.metadata["mode"] = f.rate > 0 ? (f.arrival == ArrivalMode::kOpenPoisson ? "open-poisson"
                                                                            : "open-uniform")
                                  : "closed";
  if (f.rate > 0) {
    r.metadata["rate_per_sec"] = std::to_string(f.rate);
  }
  r.metadata["errors"] = std::to_string(load.errors);
}

RunResult run_latency_scenarios(const Options& opts, bool rpc) {
  const LoadFlags f = flags_from(opts, /*default_msg=*/64);
  const std::string bench = rpc ? "lat_rpc_n" : "lat_tcp_n";
  RunResult r;
  double headline_p99 = 0;

  if (f.run_loopback) {
    for (size_t i = 0; i < f.shard_counts.size(); ++i) {
      const int shards = f.shard_counts[i];
      const LoopbackRun run =
          run_loopback(f, shards, rpc ? ServerProtocol::kRpc : ServerProtocol::kEcho,
                       rpc ? ClientProtocol::kRpc : ClientProtocol::kEcho, bench);
      if (i == 0) {
        add_percentiles(r, "loopback", run.load.rtt_hist);
        r.add("loopback_rps", run.load.ops_per_sec, "ops/s");
        r.add("loopback_wakeups_per_req", run.wakeups_per_req, "count");
        r.add("loopback_loop_cpu_ns",
              static_cast<double>(run.server.loop_cpu_ns), "cpu-ns");
        add_loopback_meta(r, f, run.load);
        if (f.interval > 0) {
          add_heatmap_meta(r, bench, run.load);
        }
        headline_p99 = run.load.rtt_hist.percentile(99) / 1000.0;
      }
      add_shard_metrics(r, shards, run, /*bandwidth=*/false);
    }
    add_engine_meta(r, f);
  }
  if (f.run_sim) {
    // Echo: protocol-stack cost per request.  RPC: stack plus application
    // work (the checksum spin at roughly 1ns/iteration).
    const Nanos server_cost =
        rpc ? 10 * kMicrosecond + static_cast<Nanos>(f.work) : 10 * kMicrosecond;
    run_sim_load(r, f, server_cost);
    if (headline_p99 == 0) {
      headline_p99 = r.metric("sim_p99_us").value_or(0);
    }
  }
  r.display = report::format_number(headline_p99, 1) + " us p99 @ " +
              std::to_string(f.connections) + " conns";
  return r;
}

RunResult run_bandwidth_scenarios(const Options& opts) {
  const LoadFlags f = flags_from(opts, /*default_msg=*/64u << 10);
  RunResult r;
  double headline_mbs = 0;

  if (f.run_loopback) {
    for (size_t i = 0; i < f.shard_counts.size(); ++i) {
      const int shards = f.shard_counts[i];
      const LoopbackRun run =
          run_loopback(f, shards, ServerProtocol::kSink, ClientProtocol::kStream, "bw_tcp_n");
      if (i == 0) {
        add_percentiles(r, "loopback", run.load.rtt_hist);
        r.add("loopback_mbs", run.load.mb_per_sec, "MB/s");
        r.add("loopback_wakeups_per_req", run.wakeups_per_req, "count");
        r.add("loopback_loop_cpu_ns",
              static_cast<double>(run.server.loop_cpu_ns), "cpu-ns");
        add_loopback_meta(r, f, run.load);
        if (f.interval > 0) {
          add_heatmap_meta(r, "bw_tcp_n", run.load);
        }
        r.metadata["block_bytes"] = std::to_string(f.msg);
        headline_mbs = run.load.mb_per_sec;
      }
      add_shard_metrics(r, shards, run, /*bandwidth=*/true);
    }
    add_engine_meta(r, f);
  }
  if (f.run_sim) {
    netsim::MultistreamConfig cfg;
    cfg.flows = std::min(f.connections, 1024);
    // Keep the simulated event count bounded: each flow moves a fixed
    // volume, scaled down when many flows share the wire.
    cfg.bytes_per_flow = std::max<std::uint64_t>(64u << 10, (8u << 20) / cfg.flows);
    cfg.window_bytes = 64u << 10;
    cfg.loss_rate = f.loss;
    if (f.loss > 0) {
      cfg.retransmit_timeout = 5 * kMillisecond;
    }
    netsim::MultistreamResult sim = netsim::simulate_concurrent_streams(f.link, cfg);
    add_percentiles(r, "sim", sim.segment_rtt_ns);
    r.add("sim_mbs", sim.mb_per_sec, "MB/s");
    r.metadata["sim_link"] = f.link.name;
    r.metadata["sim_loss"] = std::to_string(f.loss);
    r.metadata["sim_flows"] = std::to_string(cfg.flows);
    r.metadata["sim_retransmits"] = std::to_string(sim.retransmits);
    if (headline_mbs == 0) {
      headline_mbs = sim.mb_per_sec;
    }
  }
  r.display = report::format_number(headline_mbs, 1) + " MB/s aggregate @ " +
              std::to_string(f.connections) + " conns";
  return r;
}

const BenchmarkRegistrar lat_tcp_n_registrar{{
    .name = "lat_tcp_n",
    .category = "latency",
    .description = "TCP echo RTT distribution under N concurrent connections",
    .run = [](const Options& opts) { return run_latency_scenarios(opts, /*rpc=*/false); },
}};

const BenchmarkRegistrar lat_rpc_n_registrar{{
    .name = "lat_rpc_n",
    .category = "latency",
    .description = "RPC server latency under N concurrent clients (§6.7 at scale)",
    .run = [](const Options& opts) { return run_latency_scenarios(opts, /*rpc=*/true); },
}};

const BenchmarkRegistrar bw_tcp_n_registrar{{
    .name = "bw_tcp_n",
    .category = "bandwidth",
    .description = "aggregate TCP fan-in bandwidth from N concurrent senders",
    .run = [](const Options& opts) { return run_bandwidth_scenarios(opts); },
}};

}  // namespace

}  // namespace lmb::lat
