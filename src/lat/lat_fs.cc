#include "src/lat/lat_fs.h"

#include <fcntl.h>
#include <unistd.h>

#include <optional>
#include <stdexcept>

#include "src/core/clock.h"
#include "src/core/registry.h"
#include "src/core/stats.h"
#include "src/report/table.h"
#include "src/sys/error.h"
#include "src/sys/temp.h"

namespace lmb::lat {

std::vector<std::string> short_file_names(int count) {
  if (count < 0) {
    throw std::invalid_argument("short_file_names: negative count");
  }
  std::vector<std::string> names;
  names.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    // Bijective base-26: 0->"a", 25->"z", 26->"aa", ...
    std::string name;
    int n = i;
    while (true) {
      name.insert(name.begin(), static_cast<char>('a' + n % 26));
      n = n / 26 - 1;
      if (n < 0) {
        break;
      }
    }
    names.push_back(std::move(name));
  }
  return names;
}

FsLatResult measure_fs_latency(const FsLatConfig& config) {
  if (config.file_count < 1 || config.repetitions < 1) {
    throw std::invalid_argument("FsLatConfig: counts must be >= 1");
  }
  std::optional<sys::TempDir> temp;
  std::string dir = config.dir;
  if (dir.empty()) {
    temp.emplace("lmb_fs");
    dir = temp->path();
  }

  std::vector<std::string> paths;
  paths.reserve(static_cast<size_t>(config.file_count));
  for (const auto& name : short_file_names(config.file_count)) {
    paths.push_back(dir + "/" + name);
  }

  Sample create_ns;
  Sample delete_ns;
  for (int rep = 0; rep < config.repetitions; ++rep) {
    StopWatch sw;
    for (const auto& path : paths) {
      int fd = ::open(path.c_str(), O_CREAT | O_WRONLY | O_TRUNC, 0644);
      if (fd < 0) {
        sys::throw_errno("create " + path);
      }
      ::close(fd);
    }
    create_ns.add(static_cast<double>(sw.elapsed()) / config.file_count);

    sw.reset();
    for (const auto& path : paths) {
      if (::unlink(path.c_str()) != 0) {
        sys::throw_errno("unlink " + path);
      }
    }
    delete_ns.add(static_cast<double>(sw.elapsed()) / config.file_count);
  }

  FsLatResult result;
  result.file_count = config.file_count;
  result.create_us = create_ns.min() / 1e3;
  result.delete_us = delete_ns.min() / 1e3;
  return result;
}

namespace {

const BenchmarkRegistrar registrar{{
    .name = "lat_fs",
    .category = "latency",
    .description = "0-byte file create/delete latency (Table 16)",
    .run =
        [](const Options& opts) {
          FsLatConfig cfg = opts.quick() ? FsLatConfig::quick() : FsLatConfig{};
          cfg.file_count = static_cast<int>(opts.get_int("files", cfg.file_count));
          cfg.dir = opts.get_string("dir", cfg.dir);
          FsLatResult r = measure_fs_latency(cfg);
          RunResult out;
          out.add("create_us", r.create_us, "us").add("delete_us", r.delete_us, "us");
          out.metadata["files"] = std::to_string(r.file_count);
          out.display = "create " + report::format_number(r.create_us, 1) + " us, delete " +
                        report::format_number(r.delete_us, 1) + " us";
          return out;
        },
}};

}  // namespace

}  // namespace lmb::lat
