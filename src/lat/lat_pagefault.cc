#include "src/lat/lat_pagefault.h"

#include <sys/mman.h>
#include <unistd.h>

#include <stdexcept>

#include "src/core/do_not_optimize.h"
#include "src/core/registry.h"
#include "src/report/table.h"
#include "src/sys/error.h"
#include "src/sys/fdio.h"
#include "src/sys/temp.h"
#include "src/sys/unique_fd.h"

namespace lmb::lat {

PageFaultResult measure_pagefault(const PageFaultConfig& config) {
  long page_size = ::sysconf(_SC_PAGESIZE);
  if (page_size <= 0) {
    sys::throw_errno("sysconf(_SC_PAGESIZE)");
  }
  size_t page = static_cast<size_t>(page_size);
  if (config.file_bytes < 4 * page) {
    throw std::invalid_argument("PageFaultConfig: file must span at least 4 pages");
  }
  size_t bytes = config.file_bytes - config.file_bytes % page;
  size_t pages = bytes / page;

  sys::TempDir dir("lmb_pf");
  std::string path = dir.file("data");
  {
    sys::UniqueFd out = sys::open_write(path);
    std::string block(page, 'f');
    for (size_t i = 0; i < pages; ++i) {
      sys::write_full(out.get(), block.data(), block.size());
    }
  }
  sys::UniqueFd fd = sys::open_read(path);

  // One pass to pull the file into the page cache: we measure the fault,
  // not disk I/O (consistent with §5.3's cached-file philosophy).
  {
    void* addr = ::mmap(nullptr, bytes, PROT_READ, MAP_PRIVATE, fd.get(), 0);
    if (addr == MAP_FAILED) {
      sys::throw_errno("mmap");
    }
    const volatile char* p = static_cast<const char*>(addr);
    for (size_t i = 0; i < bytes; i += page) {
      do_not_optimize(p[i]);
    }
    ::munmap(addr, bytes);
  }

  Measurement m = measure(
      [&](std::uint64_t iters) {
        for (std::uint64_t it = 0; it < iters; ++it) {
          void* addr = ::mmap(nullptr, bytes, PROT_READ, MAP_PRIVATE, fd.get(), 0);
          if (addr == MAP_FAILED) {
            sys::throw_errno("mmap");
          }
          const volatile char* p = static_cast<const char*>(addr);
          char sink = 0;
          for (size_t i = 0; i < bytes; i += page) {
            sink ^= p[i];
          }
          do_not_optimize(sink);
          ::munmap(addr, bytes);
        }
      },
      config.policy);

  PageFaultResult result;
  result.pages = pages;
  result.us_per_page = m.us_per_op() / static_cast<double>(pages);
  return result;
}

namespace {

const BenchmarkRegistrar registrar{{
    .name = "lat_pagefault",
    .category = "latency",
    .description = "minor page fault on mapped file",
    .run =
        [](const Options& opts) {
          PageFaultConfig cfg = opts.quick() ? PageFaultConfig::quick() : PageFaultConfig{};
          PageFaultResult r = measure_pagefault(cfg);
          RunResult out;
          out.add("us", r.us_per_page, "us");
          out.metadata["pages"] = std::to_string(r.pages);
          out.display = report::format_number(r.us_per_page, 2) + " us per page";
          return out;
        },
}};

}  // namespace

}  // namespace lmb::lat
