#include "src/lat/lat_tlb.h"

#include <unistd.h>

#include <algorithm>
#include <stdexcept>

#include "src/core/do_not_optimize.h"
#include "src/core/registry.h"
#include "src/lat/lat_mem_rd.h"
#include "src/report/table.h"
#include "src/sys/error.h"
#include "src/sys/mapped_file.h"

namespace lmb::lat {

TlbPoint measure_tlb_point(int pages, const TimingPolicy& policy) {
  if (pages < 2) {
    throw std::invalid_argument("measure_tlb_point: need at least 2 pages");
  }
  long page_size = ::sysconf(_SC_PAGESIZE);
  if (page_size <= 0) {
    sys::throw_errno("sysconf(_SC_PAGESIZE)");
  }
  size_t page = static_cast<size_t>(page_size);

  // One pointer per page, pages visited in a random Hamiltonian cycle so
  // neither the cache-line prefetcher nor the TLB's sequential-fill helps.
  sys::AnonMapping region(static_cast<size_t>(pages) * page);
  char* base = region.data();
  std::vector<size_t> next = build_chain(static_cast<size_t>(pages), ChaseOrder::kRandom);
  for (int i = 0; i < pages; ++i) {
    *reinterpret_cast<void**>(base + static_cast<size_t>(i) * page) =
        base + next[static_cast<size_t>(i)] * page;
  }
  void** start = reinterpret_cast<void**>(base);
  do_not_optimize(chase(start, static_cast<std::uint64_t>(pages)));  // warm

  constexpr std::uint64_t kLoadsPerIter = 50'000;
  Measurement m = measure(
      [&](std::uint64_t iters) { do_not_optimize(chase(start, iters * kLoadsPerIter)); }, policy);

  TlbPoint point;
  point.pages = pages;
  point.ns_per_access = m.ns_per_op / static_cast<double>(kLoadsPerIter);
  return point;
}

std::vector<TlbPoint> sweep_tlb(const TlbConfig& config) {
  if (config.min_pages < 2 || config.min_pages > config.max_pages) {
    throw std::invalid_argument("TlbConfig: bad page range");
  }
  std::vector<TlbPoint> points;
  for (int pages = config.min_pages; pages <= config.max_pages; pages *= 2) {
    points.push_back(measure_tlb_point(pages, config.policy));
  }
  return points;
}

TlbEstimate estimate_tlb(const std::vector<TlbPoint>& points, double jump_threshold) {
  TlbEstimate estimate;
  if (points.size() < 3 || jump_threshold <= 1.0) {
    return estimate;
  }
  std::vector<TlbPoint> sorted = points;
  std::sort(sorted.begin(), sorted.end(),
            [](const TlbPoint& a, const TlbPoint& b) { return a.pages < b.pages; });

  double base = std::max(sorted.front().ns_per_access, 0.01);
  for (size_t i = 1; i < sorted.size(); ++i) {
    if (sorted[i].ns_per_access > base * jump_threshold) {
      estimate.entries = sorted[i - 1].pages;
      estimate.miss_cost_ns = sorted.back().ns_per_access - base;
      return estimate;
    }
  }
  return estimate;  // flat: TLB reach exceeds the sweep
}

namespace {

const BenchmarkRegistrar registrar{{
    .name = "lat_tlb",
    .category = "latency",
    .description = "TLB miss cost via one-access-per-page chase (section 7 extension)",
    .run =
        [](const Options& opts) {
          TlbConfig cfg = opts.quick() ? TlbConfig::quick() : TlbConfig{};
          auto points = sweep_tlb(cfg);
          TlbEstimate est = estimate_tlb(points);
          RunResult out;
          if (est.entries == 0) {
            // No knee found: record nothing rather than a fake 0 — missing
            // values must stay missing through the pipeline.
            out.metadata["note"] = "no TLB knee up to " + std::to_string(cfg.max_pages) + " pages";
            out.display = "no TLB knee up to " + std::to_string(cfg.max_pages) + " pages";
            return out;
          }
          out.add("entries", static_cast<double>(est.entries), "count")
              .add("miss_ns", est.miss_cost_ns, "ns");
          out.display = "~" + std::to_string(est.entries) + " entries, miss +" +
                        report::format_number(est.miss_cost_ns, 1) + " ns";
          return out;
        },
}};

}  // namespace

}  // namespace lmb::lat
