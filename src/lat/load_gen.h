// Many-connection TCP load generator — the client half of the c10k
// scenarios.
//
// Drives N concurrent connections against a LoadServer (or any compatible
// echo/RPC/sink endpoint) from `shards` epoll event loops (think-time and
// arrival deadlines in a per-shard hashed timer wheel, src/lat/timer_wheel.h,
// so scheduling stays O(1) at c10k connection counts), in either of the two
// canonical load-testing disciplines:
//
//  * closed loop: every connection keeps exactly one request in flight,
//    optionally pausing `think_time` between a reply and the next request.
//    Offered load adapts to service rate — the paper's lat_tcp is the
//    N = 1, think = 0 special case.
//  * open loop: requests arrive on a global schedule (Poisson or uniform
//    interarrivals at `rate_per_sec`) regardless of completions, queueing
//    for an idle connection when all are busy.  Latency is measured from
//    the *scheduled* arrival, so queueing delay — the part closed-loop
//    measurement structurally hides (coordinated omission) — lands in the
//    tail percentiles where it belongs.
//
// Every request contributes one RTT observation to a fixed-memory log-linear
// histogram (src/obs/histogram.h), so percentiles cost O(buckets) regardless
// of request count and peak RSS no longer grows with --max-requests.  A
// bounded uniform reservoir of raw RTTs rides along purely so tests and CI
// can cross-check histogram percentiles against an exact reference, and an
// optional interval series (--interval-ms) rotates a fresh histogram every
// window for time × latency heatmaps and live `watch` streaming.
#ifndef LMBENCHPP_SRC_LAT_LOAD_GEN_H_
#define LMBENCHPP_SRC_LAT_LOAD_GEN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/core/clock.h"
#include "src/core/stats.h"
#include "src/obs/histogram.h"

namespace lmb::lat {

enum class ArrivalMode {
  kClosedLoop,   // fixed concurrency, optional think time
  kOpenPoisson,  // exponential interarrivals at rate_per_sec
  kOpenUniform,  // fixed interarrivals at rate_per_sec
};

// What each connection sends/expects.  Mirrors ServerProtocol.
enum class ClientProtocol {
  kEcho,    // request_bytes out, the same bytes back
  kRpc,     // 4-byte big-endian length + request_bytes out; 4 + reply_bytes back
  kStream,  // continuous blocks of request_bytes out, nothing back (fan-in bw)
};

struct LoadGenConfig {
  std::uint16_t port = 0;  // required
  int connections = 64;
  ClientProtocol protocol = ClientProtocol::kEcho;
  std::uint32_t request_bytes = 64;
  // kRpc: reply payload the server is configured to send.
  std::uint32_t reply_bytes = 64;
  ArrivalMode arrival = ArrivalMode::kClosedLoop;
  // Open-loop aggregate arrival rate (requests/s); required for open modes.
  double rate_per_sec = 0.0;
  // Closed-loop pause between receiving a reply and issuing the next
  // request on that connection.
  Nanos think_time = 0;
  // Measured window; samples during the preceding warmup are kept separate.
  Nanos duration = kSecond;
  Nanos warmup = 100 * kMillisecond;
  // Optional completion cap (0 = duration-bounded only).
  std::uint64_t max_requests = 0;
  std::uint64_t seed = 42;
  // Time source for RTT stamps; nullptr = selected_clock() (so --clock=tsc
  // reaches per-request timestamps like every other measurement).
  const Clock* clock = nullptr;
  // Generator worker shards.  Each is an independent event loop driving
  // connections/shards connections with its own epoll set, RNG
  // (seed + shard) and timer wheel; open-loop rate splits evenly, so the
  // aggregate arrival process is preserved (a superposition of Poisson
  // processes is Poisson at the summed rate).  Results merge into one
  // LoadResult: counts and rates sum, elapsed is the longest window, and
  // every shard's RTT observations pool into one Sample.
  int shards = 1;
  // Pin shard i to topology pin_order[(pin_offset + i) % n].  Off by
  // default; the load benchmarks turn it on with pin_offset = server
  // shards so generator threads land on cores the server isn't using.
  bool pin_shards = false;
  int pin_offset = 0;
  // Interval telemetry: when > 0 the measured window is cut into
  // `interval`-long sub-windows, each with its own histogram and
  // request/error counters (LoadResult::intervals).  Empty sub-windows are
  // kept so the series stays contiguous and shard series align index-wise.
  Nanos interval = 0;
  // Cap on raw RTT values retained (uniform reservoir, Vitter's algorithm R)
  // for exact-percentile cross-checks against the histogram.  Runs shorter
  // than the cap keep every value, so the reservoir doubles as an exact
  // reference at CI scale.  Sharded runs split the cap across workers.
  std::size_t reservoir_cap = std::size_t{1} << 18;
  // Source tag published with live interval frames, conventionally
  // "<bench>/<scenario>".  Frames are only built when interval > 0 and
  // someone subscribed to obs::IntervalPublisher::global().
  std::string stream_label;
  // Shard ordinal carried into published frames; run_load's fan-out sets it.
  int shard_index = 0;
};

struct LoadResult {
  // Per-request round trip (kEcho/kRpc) or per-block send-completion time
  // (kStream, where backpressure is the latency) in ns, measured-window
  // only — falls back to warmup observations when the window produced none.
  obs::LatencyHistogram rtt_hist;
  // Uniform reservoir of raw RTTs (≤ reservoir_cap of the rtt_seen offered),
  // for exact-percentile cross-checks only; the histogram is authoritative.
  Sample rtt_reservoir;
  std::uint64_t rtt_seen = 0;
  // Interval series (empty unless config.interval > 0); window offsets are
  // relative to the start of the measured phase and requests sum to
  // `requests` exactly.
  std::vector<obs::IntervalStats> intervals;
  std::uint64_t requests = 0;        // completions in the measured window
  std::uint64_t total_requests = 0;  // including warmup
  std::uint64_t errors = 0;          // connections lost mid-run
  std::uint64_t bytes_sent = 0;      // measured window
  std::uint64_t bytes_received = 0;  // measured window
  Nanos elapsed = 0;                 // measured window length
  double ops_per_sec = 0.0;
  double mb_per_sec = 0.0;           // payload sent / elapsed (2^20 MB)
  int connections = 0;               // connections that established
};

// Runs one load scenario to completion (spawning config.shards - 1 worker
// threads when sharded).  Throws std::invalid_argument on a bad config,
// SysError/runtime_error when the target is unreachable or all connections
// die.
LoadResult run_load(const LoadGenConfig& config);

}  // namespace lmb::lat

#endif  // LMBENCHPP_SRC_LAT_LOAD_GEN_H_
