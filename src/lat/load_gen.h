// Many-connection TCP load generator — the client half of the c10k
// scenarios.
//
// Drives N concurrent connections against a LoadServer (or any compatible
// echo/RPC/sink endpoint) from `shards` epoll event loops (think-time and
// arrival deadlines in a per-shard hashed timer wheel, src/lat/timer_wheel.h,
// so scheduling stays O(1) at c10k connection counts), in either of the two
// canonical load-testing disciplines:
//
//  * closed loop: every connection keeps exactly one request in flight,
//    optionally pausing `think_time` between a reply and the next request.
//    Offered load adapts to service rate — the paper's lat_tcp is the
//    N = 1, think = 0 special case.
//  * open loop: requests arrive on a global schedule (Poisson or uniform
//    interarrivals at `rate_per_sec`) regardless of completions, queueing
//    for an idle connection when all are busy.  Latency is measured from
//    the *scheduled* arrival, so queueing delay — the part closed-loop
//    measurement structurally hides (coordinated omission) — lands in the
//    tail percentiles where it belongs.
//
// Every request contributes one RTT observation to a Sample, so
// p50/p95/p99/p999 come from Sample::percentile with no new machinery.
#ifndef LMBENCHPP_SRC_LAT_LOAD_GEN_H_
#define LMBENCHPP_SRC_LAT_LOAD_GEN_H_

#include <cstdint>

#include "src/core/clock.h"
#include "src/core/stats.h"

namespace lmb::lat {

enum class ArrivalMode {
  kClosedLoop,   // fixed concurrency, optional think time
  kOpenPoisson,  // exponential interarrivals at rate_per_sec
  kOpenUniform,  // fixed interarrivals at rate_per_sec
};

// What each connection sends/expects.  Mirrors ServerProtocol.
enum class ClientProtocol {
  kEcho,    // request_bytes out, the same bytes back
  kRpc,     // 4-byte big-endian length + request_bytes out; 4 + reply_bytes back
  kStream,  // continuous blocks of request_bytes out, nothing back (fan-in bw)
};

struct LoadGenConfig {
  std::uint16_t port = 0;  // required
  int connections = 64;
  ClientProtocol protocol = ClientProtocol::kEcho;
  std::uint32_t request_bytes = 64;
  // kRpc: reply payload the server is configured to send.
  std::uint32_t reply_bytes = 64;
  ArrivalMode arrival = ArrivalMode::kClosedLoop;
  // Open-loop aggregate arrival rate (requests/s); required for open modes.
  double rate_per_sec = 0.0;
  // Closed-loop pause between receiving a reply and issuing the next
  // request on that connection.
  Nanos think_time = 0;
  // Measured window; samples during the preceding warmup are kept separate.
  Nanos duration = kSecond;
  Nanos warmup = 100 * kMillisecond;
  // Optional completion cap (0 = duration-bounded only).
  std::uint64_t max_requests = 0;
  std::uint64_t seed = 42;
  // Time source for RTT stamps; nullptr = selected_clock() (so --clock=tsc
  // reaches per-request timestamps like every other measurement).
  const Clock* clock = nullptr;
  // Generator worker shards.  Each is an independent event loop driving
  // connections/shards connections with its own epoll set, RNG
  // (seed + shard) and timer wheel; open-loop rate splits evenly, so the
  // aggregate arrival process is preserved (a superposition of Poisson
  // processes is Poisson at the summed rate).  Results merge into one
  // LoadResult: counts and rates sum, elapsed is the longest window, and
  // every shard's RTT observations pool into one Sample.
  int shards = 1;
  // Pin shard i to topology pin_order[(pin_offset + i) % n].  Off by
  // default; the load benchmarks turn it on with pin_offset = server
  // shards so generator threads land on cores the server isn't using.
  bool pin_shards = false;
  int pin_offset = 0;
};

struct LoadResult {
  // Per-request round trip (kEcho/kRpc) or per-block send-completion time
  // (kStream, where backpressure is the latency) in ns, measured-window
  // only — falls back to warmup samples when the window produced none.
  Sample rtt_ns;
  std::uint64_t requests = 0;        // completions in the measured window
  std::uint64_t total_requests = 0;  // including warmup
  std::uint64_t errors = 0;          // connections lost mid-run
  std::uint64_t bytes_sent = 0;      // measured window
  std::uint64_t bytes_received = 0;  // measured window
  Nanos elapsed = 0;                 // measured window length
  double ops_per_sec = 0.0;
  double mb_per_sec = 0.0;           // payload sent / elapsed (2^20 MB)
  int connections = 0;               // connections that established
};

// Runs one load scenario to completion (spawning config.shards - 1 worker
// threads when sharded).  Throws std::invalid_argument on a bad config,
// SysError/runtime_error when the target is unreachable or all connections
// die.
LoadResult run_load(const LoadGenConfig& config);

}  // namespace lmb::lat

#endif  // LMBENCHPP_SRC_LAT_LOAD_GEN_H_
