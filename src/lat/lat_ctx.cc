#include "src/lat/lat_ctx.h"

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "src/core/clock.h"
#include "src/core/do_not_optimize.h"
#include "src/core/registry.h"
#include "src/core/stats.h"
#include "src/report/table.h"
#include "src/sys/fdio.h"
#include "src/sys/mapped_file.h"
#include "src/sys/pipe.h"
#include "src/sys/process.h"

namespace lmb::lat {

namespace {

void validate(const CtxConfig& config) {
  if (config.processes < 2 || config.processes > 64) {
    throw std::invalid_argument("CtxConfig: processes must be in [2, 64]");
  }
  if (config.token_passes < 1 || config.repetitions < 1) {
    throw std::invalid_argument("CtxConfig: passes and repetitions must be >= 1");
  }
}

// Sums the footprint array "as a series of integers" after each token
// receipt (§6.6).  No-op for zero-size footprints.
void sum_footprint(const std::uint64_t* data, size_t words) {
  if (words == 0) {
    return;
  }
  std::uint64_t sum = 0;
  for (size_t i = 0; i < words; ++i) {
    sum += data[i];
  }
  do_not_optimize(sum);
}

// One timed run of the ring; returns ns per hop (including token overhead).
double run_ring_once(const CtxConfig& config) {
  int n = config.processes;
  int rounds = std::max(1, config.token_passes / n);

  // pipe[i] carries the token from process i to process (i+1) % n.
  std::vector<sys::Pipe> pipes;
  pipes.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    pipes.emplace_back();
  }

  // Allocated before fork so "all arrays are at the same virtual address in
  // all processes" (paper footnote 4); COW gives each child a private copy.
  size_t words = config.footprint_bytes / sizeof(std::uint64_t);
  sys::AnonMapping footprint(std::max<size_t>(config.footprint_bytes, 8));
  auto* data = reinterpret_cast<std::uint64_t*>(footprint.data());
  for (size_t w = 0; w < words; ++w) {
    data[w] = w;
  }

  std::vector<sys::Child> children;
  children.reserve(static_cast<size_t>(n - 1));
  for (int i = 1; i < n; ++i) {
    children.push_back(sys::fork_child([&, i]() {
      // Process i: read from pipe[i-1], sum footprint, write to pipe[i].
      char token = 0;
      for (int r = 0; r < rounds; ++r) {
        sys::read_full(pipes[static_cast<size_t>(i - 1)].read_fd(), &token, 1);
        sum_footprint(data, words);
        sys::write_full(pipes[static_cast<size_t>(i)].write_fd(), &token, 1);
      }
      return 0;
    }));
  }

  // Parent is process 0: writes to pipe[0], reads from pipe[n-1].
  char token = 'T';
  StopWatch sw;
  for (int r = 0; r < rounds; ++r) {
    sys::write_full(pipes[0].write_fd(), &token, 1);
    sys::read_full(pipes[static_cast<size_t>(n - 1)].read_fd(), &token, 1);
    sum_footprint(data, words);
  }
  double elapsed = static_cast<double>(sw.elapsed());

  for (auto& child : children) {
    if (child.wait() != 0) {
      throw std::runtime_error("context-switch ring child failed");
    }
  }
  return elapsed / (static_cast<double>(rounds) * n);
}

// The same token traffic with no second process: write + read + sum through
// each pipe in turn.  "This overhead time ... is not included in the
// reported context switch time" (§6.6).
double run_overhead_once(const CtxConfig& config) {
  int n = config.processes;
  int rounds = std::max(1, config.token_passes / n);

  std::vector<sys::Pipe> pipes;
  pipes.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    pipes.emplace_back();
  }
  size_t words = config.footprint_bytes / sizeof(std::uint64_t);
  sys::AnonMapping footprint(std::max<size_t>(config.footprint_bytes, 8));
  auto* data = reinterpret_cast<std::uint64_t*>(footprint.data());
  for (size_t w = 0; w < words; ++w) {
    data[w] = w;
  }

  char token = 'T';
  StopWatch sw;
  for (int r = 0; r < rounds; ++r) {
    for (int i = 0; i < n; ++i) {
      sys::write_full(pipes[static_cast<size_t>(i)].write_fd(), &token, 1);
      sys::read_full(pipes[static_cast<size_t>(i)].read_fd(), &token, 1);
      sum_footprint(data, words);
    }
  }
  double elapsed = static_cast<double>(sw.elapsed());
  return elapsed / (static_cast<double>(rounds) * n);
}

}  // namespace

CtxResult measure_ctx(const CtxConfig& config) {
  validate(config);

  Sample raw_ns;
  Sample overhead_ns;
  for (int rep = 0; rep < config.repetitions; ++rep) {
    overhead_ns.add(run_overhead_once(config));
    raw_ns.add(run_ring_once(config));
  }

  CtxResult result;
  result.processes = config.processes;
  result.footprint_bytes = config.footprint_bytes;
  result.raw_us = raw_ns.min() / 1e3;
  result.overhead_us = overhead_ns.min() / 1e3;
  result.ctx_us = std::max(0.0, result.raw_us - result.overhead_us);
  return result;
}

std::vector<CtxResult> sweep_ctx(const std::vector<int>& process_counts,
                                 const std::vector<size_t>& footprints, const CtxConfig& base) {
  std::vector<CtxResult> out;
  for (size_t footprint : footprints) {
    for (int procs : process_counts) {
      CtxConfig cfg = base;
      cfg.processes = procs;
      cfg.footprint_bytes = footprint;
      out.push_back(measure_ctx(cfg));
    }
  }
  return out;
}

namespace {

const BenchmarkRegistrar registrar{{
    .name = "lat_ctx",
    .category = "latency",
    .description = "process context switch via pipe ring (Figure 2, Table 10)",
    .run =
        [](const Options& opts) {
          CtxConfig cfg = opts.quick() ? CtxConfig::quick() : CtxConfig{};
          cfg.processes = static_cast<int>(opts.get_int("procs", cfg.processes));
          cfg.footprint_bytes =
              static_cast<size_t>(opts.get_size("size", static_cast<std::int64_t>(cfg.footprint_bytes)));
          CtxResult r = measure_ctx(cfg);
          RunResult out;
          out.add("us", r.ctx_us, "us").add("overhead_us", r.overhead_us, "us");
          out.metadata["procs"] = std::to_string(cfg.processes);
          out.metadata["footprint"] = std::to_string(cfg.footprint_bytes);
          out.display = report::format_number(r.ctx_us, 1) + " us (overhead " +
                        report::format_number(r.overhead_us, 1) + " us)";
          return out;
        },
}};

}  // namespace

}  // namespace lmb::lat
