#include "src/lat/load_gen.h"

#include <sys/epoll.h>

#include <algorithm>
#include <cstddef>
#include <deque>
#include <exception>
#include <memory>
#include <random>
#include <stdexcept>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/core/timing.h"
#include "src/core/topology.h"
#include "src/lat/timer_wheel.h"
#include "src/obs/interval_stream.h"
#include "src/sys/epoll_loop.h"
#include "src/sys/error.h"
#include "src/sys/fdio.h"
#include "src/sys/socket.h"
#include "src/sys/unique_fd.h"

namespace lmb::lat {

namespace {

void append_be32(std::string& out, std::uint32_t v) {
  out.push_back(static_cast<char>(v >> 24));
  out.push_back(static_cast<char>(v >> 16));
  out.push_back(static_cast<char>(v >> 8));
  out.push_back(static_cast<char>(v));
}

// One connection's request/reply state machine.
struct CConn {
  sys::UniqueFd fd;
  std::uint64_t tag = 0;
  enum class St { kConnecting, kIdle, kWriting, kReading } st = St::kConnecting;
  size_t out_off = 0;          // bytes of the shared request already sent
  size_t need_in = 0;          // reply bytes still expected
  Nanos start = 0;             // RTT origin of the in-flight request
  std::uint32_t interest = 0;  // currently registered epoll events
};

// Thrown when a connection's peer closed or reset; the dispatch sites turn
// it into "count an error, drop the connection, keep the run going".
struct ConnFailed {};

// A stream connection that stays writable can complete blocks at memcpy
// speed; yield back to the event loop after this many so one fast flow
// cannot starve the others (level-triggered EPOLLOUT re-notifies).
constexpr int kStreamBlocksPerPass = 16;

constexpr Nanos kConnectDeadline = 10 * kSecond;

// Uniform reservoir (Vitter's algorithm R): after `seen` offers the kept set
// is a uniform sample of size min(seen, cap).  Keeps the raw-RTT memory
// bounded while still providing an exact percentile reference whenever the
// run is smaller than the cap.
struct Reservoir {
  std::vector<double> kept;
  std::uint64_t seen = 0;
  std::size_t cap = 0;

  void offer(double v, std::mt19937_64& rng) {
    ++seen;
    if (kept.size() < cap) {
      kept.push_back(v);
      return;
    }
    const std::uint64_t j = rng() % seen;
    if (j < cap) {
      kept[static_cast<std::size_t>(j)] = v;
    }
  }
};

class Driver {
 public:
  explicit Driver(const LoadGenConfig& cfg)
      : cfg_(cfg),
        clock_(cfg.clock != nullptr ? *cfg.clock : selected_clock()),
        open_loop_(cfg.arrival != ArrivalMode::kClosedLoop),
        rng_(cfg.seed),
        exp_dist_(cfg.rate_per_sec > 0 ? cfg.rate_per_sec : 1.0),
        scratch_(64u << 10) {
    reservoir_.cap = cfg_.reservoir_cap;
    // Warmup observations only matter as a fallback summary; a small slice
    // of the cap is plenty.
    warm_reservoir_.cap = std::min<std::size_t>(cfg_.reservoir_cap, 4096);
    switch (cfg_.protocol) {
      case ClientProtocol::kEcho:
        expected_reply_ = cfg_.request_bytes;
        break;
      case ClientProtocol::kRpc:
        append_be32(request_, cfg_.request_bytes);
        expected_reply_ = 4 + cfg_.reply_bytes;
        break;
      case ClientProtocol::kStream:
        expected_reply_ = 0;
        break;
    }
    for (std::uint32_t i = 0; i < cfg_.request_bytes; ++i) {
      request_.push_back(static_cast<char>('a' + (i % 26)));
    }
  }

  LoadResult run() {
    sys::ensure_nofile(static_cast<std::uint64_t>(cfg_.connections) * 2 + 128);
    connect_all();

    const Nanos t0 = clock_.now();
    measure_start_ = t0 + cfg_.warmup;
    end_time_ = measure_start_ + cfg_.duration;
    if (open_loop_) {
      next_arrival_ = t0;
    } else {
      // Kick every connection; the warmup absorbs the thundering herd.
      std::vector<std::uint64_t> kick;
      kick.swap(idle_);
      for (std::uint64_t tag : kick) {
        start_request(tag, clock_.now());
      }
    }

    Nanos now = clock_.now();
    while (true) {
      if (now >= end_time_) {
        break;
      }
      if (cfg_.max_requests != 0 && completed_ >= cfg_.max_requests) {
        break;
      }
      if (conns_.empty()) {
        throw std::runtime_error("load generator: all " + std::to_string(cfg_.connections) +
                                 " connections failed");
      }
      if (!measuring_ && now >= measure_start_) {
        begin_measuring(now);
      }
      if (win_open_) {
        roll_windows(now);  // close elapsed interval windows even when idle
      }
      if (open_loop_) {
        advance_arrivals(now);
      }
      fire_timers(now);

      Nanos next_ev = end_time_;
      if (!measuring_) {
        next_ev = std::min(next_ev, measure_start_);
      }
      if (win_open_) {
        next_ev = std::min(next_ev, win_end_abs_);
      }
      if (open_loop_) {
        next_ev = std::min(next_ev, next_arrival_);
      }
      if (!timers_.empty()) {
        next_ev = std::min(next_ev, timers_.next_deadline());
      }
      const Nanos delta = next_ev - now;
      // Floor to ms: a sub-ms wait becomes a zero-timeout poll, trading
      // client CPU for arrival-schedule precision (an open-loop generator
      // that quantizes arrivals to the epoll timeout granularity would
      // smear exactly the queueing delay it exists to measure).
      int timeout_ms = 0;
      if (delta > 0) {
        timeout_ms = static_cast<int>(std::min<Nanos>(delta / kMillisecond, 100));
      }
      const int n = epoll_.wait(events_, timeout_ms);
      for (int i = 0; i < n; ++i) {
        dispatch(events_[static_cast<size_t>(i)]);
      }
      now = clock_.now();
    }

    if (win_open_) {
      close_final_window(now);
    }

    LoadResult res;
    res.connections = established_;
    res.errors = errors_;
    res.total_requests = completed_;
    if (measuring_) {
      res.elapsed = now - window_t0_;
      res.requests = window_completed_;
      res.bytes_sent = bytes_sent_ - win_sent_base_;
      res.bytes_received = bytes_received_ - win_recv_base_;
    } else {
      res.elapsed = now - t0;
      res.requests = completed_;
      res.bytes_sent = bytes_sent_;
      res.bytes_received = bytes_received_;
    }
    if (hist_.count() == 0) {
      res.rtt_hist = std::move(warm_hist_);
      res.rtt_reservoir = Sample(std::move(warm_reservoir_.kept));
      res.rtt_seen = warm_reservoir_.seen;
    } else {
      res.rtt_hist = std::move(hist_);
      res.rtt_reservoir = Sample(std::move(reservoir_.kept));
      res.rtt_seen = reservoir_.seen;
    }
    res.intervals = std::move(intervals_);
    if (res.elapsed > 0) {
      const double secs = static_cast<double>(res.elapsed) / static_cast<double>(kSecond);
      res.ops_per_sec = static_cast<double>(res.requests) / secs;
      res.mb_per_sec =
          static_cast<double>(res.bytes_sent) / (1024.0 * 1024.0) / secs;
    }
    return res;
  }

 private:
  void connect_all() {
    for (int i = 0; i < cfg_.connections; ++i) {
      auto conn = std::make_unique<CConn>();
      conn->fd = sys::tcp_connect_begin(cfg_.port);
      conn->tag = static_cast<std::uint64_t>(i);
      conn->interest = EPOLLOUT;
      epoll_.add(conn->fd.get(), conn->interest, conn->tag);
      conns_.emplace(conn->tag, std::move(conn));
    }
    const Nanos deadline = clock_.now() + kConnectDeadline;
    while (established_ + static_cast<int>(errors_) < cfg_.connections) {
      const Nanos now = clock_.now();
      if (now >= deadline) {
        throw std::runtime_error("load generator: connection ramp timed out after " +
                                 std::to_string((now - deadline + kConnectDeadline) / kSecond) +
                                 "s (" + std::to_string(established_) + "/" +
                                 std::to_string(cfg_.connections) + " established)");
      }
      const int timeout_ms =
          static_cast<int>(std::min<Nanos>((deadline - now) / kMillisecond + 1, 100));
      const int n = epoll_.wait(events_, timeout_ms);
      for (int i = 0; i < n; ++i) {
        const std::uint64_t tag = events_[static_cast<size_t>(i)].data.u64;
        auto it = conns_.find(tag);
        if (it == conns_.end() || it->second->st != CConn::St::kConnecting) {
          continue;
        }
        CConn& c = *it->second;
        try {
          sys::tcp_finish_connect(c.fd.get());
          if (cfg_.protocol != ClientProtocol::kStream) {
            sys::set_tcp_nodelay(c.fd.get());
          }
        } catch (const sys::SysError&) {
          fail(tag);
          continue;
        }
        c.st = CConn::St::kIdle;
        c.interest = EPOLLIN;
        epoll_.mod(c.fd.get(), c.interest, c.tag);
        ++established_;
        idle_.push_back(tag);
      }
    }
    if (established_ == 0) {
      throw std::runtime_error("load generator: no connection reached port " +
                               std::to_string(cfg_.port));
    }
  }

  // Generates due arrivals and assigns queued ones to idle connections.
  void advance_arrivals(Nanos now) {
    while (next_arrival_ <= now) {
      pending_.push_back(next_arrival_);
      next_arrival_ += interarrival();
    }
    while (!pending_.empty() && !idle_.empty()) {
      const std::uint64_t tag = idle_.back();
      idle_.pop_back();
      if (conns_.find(tag) == conns_.end()) {
        continue;  // lost since it went idle
      }
      const Nanos scheduled = pending_.front();
      pending_.pop_front();
      // RTT origin is the *scheduled* arrival: time spent waiting for a
      // free connection is queueing delay and belongs in the measurement.
      start_request(tag, scheduled);
    }
  }

  void fire_timers(Nanos now) {
    if (timers_.empty()) {
      return;
    }
    fired_.clear();
    timers_.expire(now, fired_);
    for (std::uint64_t tag : fired_) {
      start_request(tag, now);
    }
  }

  Nanos interarrival() {
    if (cfg_.arrival == ArrivalMode::kOpenPoisson) {
      const double secs = exp_dist_(rng_);
      return std::max<Nanos>(1, static_cast<Nanos>(secs * static_cast<double>(kSecond)));
    }
    return std::max<Nanos>(1, static_cast<Nanos>(static_cast<double>(kSecond) / cfg_.rate_per_sec));
  }

  // Issues one request on `tag`, absorbing connection death.
  void start_request(std::uint64_t tag, Nanos start_ts) {
    auto it = conns_.find(tag);
    if (it == conns_.end()) {
      return;
    }
    try {
      issue(*it->second, start_ts);
    } catch (const ConnFailed&) {
      fail(tag);
    } catch (const sys::SysError&) {
      fail(tag);
    }
  }

  void dispatch(const epoll_event& ev) {
    const std::uint64_t tag = ev.data.u64;
    auto it = conns_.find(tag);
    if (it == conns_.end()) {
      return;
    }
    CConn& c = *it->second;
    try {
      if ((ev.events & EPOLLERR) != 0) {
        throw ConnFailed{};
      }
      if ((ev.events & EPOLLHUP) != 0 && (ev.events & EPOLLIN) == 0) {
        throw ConnFailed{};
      }
      if (c.st == CConn::St::kWriting && (ev.events & EPOLLOUT) != 0) {
        continue_write(c);
      }
      if ((ev.events & EPOLLIN) != 0) {
        if (c.st == CConn::St::kReading) {
          read_reply(c);
        } else {
          // No reply outstanding: readable means EOF (server shutting
          // down) or protocol garbage.  Either way the connection is done.
          const sys::IoOutcome r =
              sys::read_nonblock(c.fd.get(), scratch_.data(), scratch_.size());
          if (r.closed || r.bytes > 0) {
            throw ConnFailed{};
          }
        }
      }
    } catch (const ConnFailed&) {
      fail(tag);
    } catch (const sys::SysError&) {
      fail(tag);
    }
  }

  void issue(CConn& c, Nanos start_ts) {
    c.st = CConn::St::kWriting;
    c.out_off = 0;
    c.start = start_ts;
    c.need_in = expected_reply_;
    continue_write(c);
  }

  void continue_write(CConn& c) {
    int blocks = 0;
    while (true) {
      while (c.out_off < request_.size()) {
        const sys::IoOutcome w = sys::write_nonblock(
            c.fd.get(), request_.data() + c.out_off, request_.size() - c.out_off);
        if (w.bytes > 0) {
          bytes_sent_ += w.bytes;
          c.out_off += w.bytes;
          continue;
        }
        if (w.closed) {
          throw ConnFailed{};
        }
        want_out(c, true);
        return;
      }
      if (cfg_.protocol != ClientProtocol::kStream) {
        want_out(c, false);
        c.st = CConn::St::kReading;
        return;
      }
      // Stream: the sample is the time to push one block into the pipe —
      // under fan-in contention that is where the backpressure shows up.
      const Nanos now = clock_.now();
      record(now - c.start, now);
      ++completed_;
      if (now >= end_time_) {
        c.st = CConn::St::kIdle;
        want_out(c, false);
        return;
      }
      c.out_off = 0;
      c.start = now;
      if (++blocks >= kStreamBlocksPerPass) {
        want_out(c, true);  // stay armed; the next EPOLLOUT resumes us
        return;
      }
    }
  }

  void read_reply(CConn& c) {
    while (c.need_in > 0) {
      const size_t want = std::min(c.need_in, scratch_.size());
      const sys::IoOutcome r = sys::read_nonblock(c.fd.get(), scratch_.data(), want);
      if (r.bytes > 0) {
        bytes_received_ += r.bytes;
        c.need_in -= r.bytes;
        continue;
      }
      if (r.closed) {
        throw ConnFailed{};
      }
      return;  // socket drained; EPOLLIN will resume us
    }
    const Nanos now = clock_.now();
    record(now - c.start, now);
    ++completed_;
    c.st = CConn::St::kIdle;
    schedule_next(c, now);
  }

  void schedule_next(CConn& c, Nanos now) {
    if (now >= end_time_) {
      idle_.push_back(c.tag);  // quiesce; the main loop is about to stop
      return;
    }
    if (open_loop_) {
      if (!pending_.empty()) {
        const Nanos scheduled = pending_.front();
        pending_.pop_front();
        issue(c, scheduled);
      } else {
        idle_.push_back(c.tag);
      }
      return;
    }
    if (cfg_.think_time > 0) {
      timers_.schedule(now + cfg_.think_time, c.tag);
    } else {
      issue(c, now);
    }
  }

  // Opens the measured window (and interval window 0) exactly once, at the
  // timestamp of whichever event first crosses measure_start_ — the main
  // loop's tick or a record() from inside a dispatch.  Sharing the origin
  // guarantees every measured RTT lands in some interval window, so window
  // request counts sum to the aggregate exactly.
  void begin_measuring(Nanos now) {
    if (measuring_) {
      return;
    }
    measuring_ = true;
    window_t0_ = now;
    win_sent_base_ = bytes_sent_;
    win_recv_base_ = bytes_received_;
    if (cfg_.interval > 0) {
      win_open_ = true;
      win_index_ = 0;
      cur_win_ = obs::IntervalStats();
      cur_win_.start = 0;
      win_end_abs_ = window_t0_ + cfg_.interval;
    }
  }

  // Closes every interval window whose deadline has passed, pushing empty
  // windows as needed so the series stays contiguous.
  void roll_windows(Nanos now) {
    while (now >= win_end_abs_) {
      cur_win_.end = static_cast<Nanos>(win_index_ + 1) * cfg_.interval;
      publish_window(cur_win_);
      intervals_.push_back(std::move(cur_win_));
      ++win_index_;
      cur_win_ = obs::IntervalStats();
      cur_win_.start = static_cast<Nanos>(win_index_) * cfg_.interval;
      win_end_abs_ = window_t0_ + static_cast<Nanos>(win_index_ + 1) * cfg_.interval;
    }
  }

  // The last (usually partial) window at run end.
  void close_final_window(Nanos now) {
    const Nanos end = now - window_t0_;
    if (end > cur_win_.start) {
      cur_win_.end = end;
      publish_window(cur_win_);
      intervals_.push_back(std::move(cur_win_));
    }
    win_open_ = false;
  }

  void publish_window(const obs::IntervalStats& w) {
    auto& pub = obs::IntervalPublisher::global();
    if (!pub.active()) {
      return;
    }
    obs::IntervalFrame f;
    f.source = cfg_.stream_label.empty() ? "load" : cfg_.stream_label;
    f.shard = cfg_.shard_index;
    f.window = win_index_;
    f.start = w.start;
    f.end = w.end;
    f.requests = w.requests;
    f.errors = w.errors;
    f.total_requests = window_completed_;
    const double secs = static_cast<double>(w.end - w.start) / static_cast<double>(kSecond);
    f.rps = secs > 0 ? static_cast<double>(w.requests) / secs : 0.0;
    if (w.hist.count() > 0) {
      f.p50_ns = w.hist.percentile(50);
      f.p99_ns = w.hist.percentile(99);
      f.p999_ns = w.hist.percentile(99.9);
    }
    pub.publish(f);
  }

  void record(Nanos rtt, Nanos now) {
    if (now >= measure_start_) {
      begin_measuring(now);
      hist_.record(rtt);
      reservoir_.offer(static_cast<double>(rtt), rng_);
      ++window_completed_;
      if (win_open_) {
        roll_windows(now);
        cur_win_.hist.record(rtt);
        ++cur_win_.requests;
      }
    } else {
      warm_hist_.record(rtt);
      warm_reservoir_.offer(static_cast<double>(rtt), rng_);
    }
  }

  void want_out(CConn& c, bool on) {
    const std::uint32_t wanted = EPOLLIN | (on ? EPOLLOUT : 0u);
    if (wanted != c.interest) {
      epoll_.mod(c.fd.get(), wanted, c.tag);
      c.interest = wanted;
    }
  }

  void fail(std::uint64_t tag) {
    auto it = conns_.find(tag);
    if (it == conns_.end()) {
      return;
    }
    epoll_.del(it->second->fd.get());
    conns_.erase(it);
    ++errors_;
    if (win_open_ && measuring_) {
      ++cur_win_.errors;
    }
  }

  const LoadGenConfig& cfg_;
  const Clock& clock_;
  const bool open_loop_;

  sys::Epoll epoll_;
  std::vector<epoll_event> events_;
  std::unordered_map<std::uint64_t, std::unique_ptr<CConn>> conns_;
  std::string request_;
  size_t expected_reply_ = 0;

  std::mt19937_64 rng_;
  std::exponential_distribution<double> exp_dist_;
  std::vector<char> scratch_;

  Nanos next_arrival_ = 0;
  std::deque<Nanos> pending_;        // scheduled arrivals awaiting a connection
  std::vector<std::uint64_t> idle_;  // connections with nothing in flight
  TimerWheel timers_;                // closed-loop think-time expiries
  std::vector<std::uint64_t> fired_;  // expire() scratch

  obs::LatencyHistogram hist_;       // measured-window RTTs
  obs::LatencyHistogram warm_hist_;  // warmup RTTs (fallback when the window is empty)
  Reservoir reservoir_;              // bounded raw-RTT cross-check sample
  Reservoir warm_reservoir_;
  std::vector<obs::IntervalStats> intervals_;  // closed interval windows
  obs::IntervalStats cur_win_;                 // open window (when win_open_)
  bool win_open_ = false;
  int win_index_ = 0;
  Nanos win_end_abs_ = 0;  // absolute deadline of cur_win_
  std::uint64_t completed_ = 0;
  std::uint64_t window_completed_ = 0;
  std::uint64_t errors_ = 0;
  std::uint64_t bytes_sent_ = 0;
  std::uint64_t bytes_received_ = 0;
  std::uint64_t win_sent_base_ = 0;
  std::uint64_t win_recv_base_ = 0;
  int established_ = 0;
  Nanos measure_start_ = 0;
  Nanos end_time_ = 0;
  Nanos window_t0_ = 0;
  bool measuring_ = false;
};

}  // namespace

namespace {

// Folds shard results into one LoadResult: counts and rates sum, the merged
// window is the longest shard window, histograms merge bucket-wise
// (lossless — the percentile math doesn't care which loop observed a
// latency), reservoirs pool (each shard got a slice of the cap, so the pool
// stays bounded), and interval series merge index-wise: window offsets are
// relative to each shard's measured-phase start, so window i of every shard
// covers the same slice of the run.
LoadResult merge_results(std::vector<LoadResult>& parts) {
  LoadResult total;
  for (LoadResult& p : parts) {
    total.requests += p.requests;
    total.total_requests += p.total_requests;
    total.errors += p.errors;
    total.bytes_sent += p.bytes_sent;
    total.bytes_received += p.bytes_received;
    total.connections += p.connections;
    total.elapsed = std::max(total.elapsed, p.elapsed);
    total.ops_per_sec += p.ops_per_sec;
    total.mb_per_sec += p.mb_per_sec;
    total.rtt_hist.merge(p.rtt_hist);
    for (double v : p.rtt_reservoir.values()) {
      total.rtt_reservoir.add(v);
    }
    total.rtt_seen += p.rtt_seen;
    for (std::size_t i = 0; i < p.intervals.size(); ++i) {
      if (i >= total.intervals.size()) {
        total.intervals.push_back(std::move(p.intervals[i]));
        continue;
      }
      obs::IntervalStats& t = total.intervals[i];
      obs::IntervalStats& s = p.intervals[i];
      t.start = std::min(t.start, s.start);
      t.end = std::max(t.end, s.end);
      t.requests += s.requests;
      t.errors += s.errors;
      t.hist.merge(s.hist);
    }
  }
  // Shards can disagree about the tail: one may have rolled a final full
  // window while another's partial window overhangs the same grid slot by a
  // few microseconds of scheduling jitter.  Clamp interior windows back to
  // the grid (the overhang's requests stay counted where they landed) so the
  // merged series tiles contiguously; only the true last window keeps its
  // observed end.
  for (std::size_t i = 0; i + 1 < total.intervals.size(); ++i) {
    total.intervals[i].end = total.intervals[i + 1].start;
  }
  return total;
}

}  // namespace

LoadResult run_load(const LoadGenConfig& config) {
  if (config.port == 0) {
    throw std::invalid_argument("run_load: port is required");
  }
  if (config.connections <= 0) {
    throw std::invalid_argument("run_load: connections must be positive");
  }
  if (config.request_bytes == 0) {
    throw std::invalid_argument("run_load: request_bytes must be positive");
  }
  if (config.duration <= 0) {
    throw std::invalid_argument("run_load: duration must be positive");
  }
  if (config.warmup < 0 || config.think_time < 0) {
    throw std::invalid_argument("run_load: warmup and think_time must be non-negative");
  }
  if (config.interval < 0) {
    throw std::invalid_argument("run_load: interval must be non-negative");
  }
  if (config.shards < 1) {
    throw std::invalid_argument("run_load: shards must be positive");
  }
  const bool open = config.arrival != ArrivalMode::kClosedLoop;
  if (open && !(config.rate_per_sec > 0)) {
    throw std::invalid_argument("run_load: open-loop arrival needs rate_per_sec > 0");
  }
  if (open && config.protocol == ClientProtocol::kStream) {
    throw std::invalid_argument(
        "run_load: stream protocol is closed-loop by nature (continuous send)");
  }

  int shards = std::min(config.shards, config.connections);
  if (config.max_requests != 0) {
    // Every worker needs a positive slice of the cap (0 means unbounded).
    shards = static_cast<int>(
        std::min<std::uint64_t>(static_cast<std::uint64_t>(shards), config.max_requests));
  }
  if (shards == 1 && !config.pin_shards) {
    Driver driver(config);
    return driver.run();
  }

  // Split the scenario into `shards` independent sub-scenarios: each worker
  // gets an even slice of the connections (remainder to the first workers),
  // a proportional slice of the open-loop rate and request cap, and its own
  // RNG stream.  The fd headroom is raised once, up front, for the total.
  sys::ensure_nofile(static_cast<std::uint64_t>(config.connections) * 2 + 128);
  std::vector<LoadGenConfig> sub(static_cast<size_t>(shards), config);
  const int base = config.connections / shards;
  const int extra = config.connections % shards;
  const std::uint64_t req_base = config.max_requests / static_cast<std::uint64_t>(shards);
  const std::uint64_t req_extra = config.max_requests % static_cast<std::uint64_t>(shards);
  for (int i = 0; i < shards; ++i) {
    LoadGenConfig& c = sub[static_cast<size_t>(i)];
    c.shards = 1;
    c.connections = base + (i < extra ? 1 : 0);
    c.rate_per_sec = config.rate_per_sec * c.connections / config.connections;
    c.max_requests = config.max_requests == 0
                         ? 0
                         : req_base + (static_cast<std::uint64_t>(i) < req_extra ? 1 : 0);
    c.seed = config.seed + static_cast<std::uint64_t>(i);
    // Split the raw-RTT cross-check budget so the pooled reservoir stays
    // within the configured cap (floor keeps tiny slices statistically
    // useful).
    c.reservoir_cap = std::max<std::size_t>(
        std::size_t{1024}, config.reservoir_cap / static_cast<std::size_t>(shards));
    c.shard_index = i;
  }

  const std::vector<int> pin_order =
      config.pin_shards ? query_topology().pin_order() : std::vector<int>{};
  std::vector<LoadResult> results(static_cast<size_t>(shards));
  std::vector<std::exception_ptr> failures(static_cast<size_t>(shards));
  std::vector<std::thread> workers;
  workers.reserve(static_cast<size_t>(shards));
  for (int i = 0; i < shards; ++i) {
    workers.emplace_back([&, i] {
      if (!pin_order.empty()) {
        pin_current_thread(
            pin_order[static_cast<size_t>(config.pin_offset + i) % pin_order.size()]);
      }
      try {
        Driver driver(sub[static_cast<size_t>(i)]);
        results[static_cast<size_t>(i)] = driver.run();
      } catch (...) {
        failures[static_cast<size_t>(i)] = std::current_exception();
      }
    });
  }
  for (std::thread& w : workers) {
    w.join();
  }
  for (const std::exception_ptr& e : failures) {
    if (e) {
      std::rethrow_exception(e);
    }
  }
  return merge_results(results);
}

}  // namespace lmb::lat
