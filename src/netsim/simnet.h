// Event-driven two-host packet network on virtual time.
//
// Where link.h gives closed-form times, SimNetwork actually moves packets:
// frames are serialized onto a per-direction wire (busy-until accounting),
// propagate, and are delivered to the peer's handler.  The protocol models
// (echo exchanges, the sliding-window stream) run on top of this and the
// tests cross-check them against the analytic formulas.
#ifndef LMBENCHPP_SRC_NETSIM_SIMNET_H_
#define LMBENCHPP_SRC_NETSIM_SIMNET_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <random>
#include <vector>

#include "src/core/virtual_clock.h"
#include "src/netsim/link.h"

namespace lmb::netsim {

// A message as seen by endpoints (sizes only; simulation carries no data).
struct Packet {
  std::uint64_t bytes = 0;   // payload size
  std::uint64_t tag = 0;     // caller-defined (sequence number, kind, ...)
};

// Two hosts, A (id 0) and B (id 1), joined by one full-duplex link.
class SimNetwork {
 public:
  SimNetwork(LinkProfile link, VirtualClock& clock);

  using Handler = std::function<void(int self, const Packet&)>;

  // Installs the message-arrival handler for host 0 or 1.
  void set_handler(int host, Handler handler);

  // Enables random packet loss: each packet is independently dropped with
  // probability `rate` (seeded, reproducible).  Lost packets still occupy
  // the wire (they were transmitted; they just never arrive).
  void set_loss(double rate, unsigned seed = 1);

  std::uint64_t packets_dropped() const { return dropped_; }

  // Queues `packet` for transmission from `from` to the other host.  The
  // packet is fragmented into MTU-sized frames; each frame serializes on
  // the (per-direction) wire after any previously queued frames.
  void send(int from, const Packet& packet);

  // Runs the event loop until no events remain.  Returns events processed.
  size_t run(size_t limit = 10'000'000);

  VirtualClock& clock() { return *clock_; }
  // The network's event queue; protocol models schedule host-side work
  // (CPU costs, timers) on it so everything shares one timeline.
  EventQueue& queue() { return queue_; }
  const LinkProfile& link() const { return link_; }

  // Totals for assertions.
  std::uint64_t packets_delivered(int host) const;
  std::uint64_t bytes_delivered(int host) const;

 private:
  LinkProfile link_;
  VirtualClock* clock_;
  EventQueue queue_;
  Handler handlers_[2];
  // Time at which each direction's wire becomes free (0 = A->B, 1 = B->A).
  Nanos wire_free_[2] = {0, 0};
  std::uint64_t delivered_packets_[2] = {0, 0};
  std::uint64_t delivered_bytes_[2] = {0, 0};
  double loss_rate_ = 0.0;
  std::uint64_t dropped_ = 0;
  std::mt19937 loss_rng_{1};
};

// Round-trip time of an `echo`-style exchange measured on the simulated
// network: host 0 sends `bytes`, host 1 replies with `bytes`.
Nanos simulate_echo_rtt(const LinkProfile& link, std::uint64_t bytes,
                        Nanos per_host_software_cost);

}  // namespace lmb::netsim

#endif  // LMBENCHPP_SRC_NETSIM_SIMNET_H_
