// Network link models — the wires the paper measured that we must simulate.
//
// Tables 4 and 14 need two machines joined by 10baseT / 100baseT / FDDI /
// HIPPI.  A link is modeled by signaling rate, propagation delay, and frame
// geometry (payload MTU, per-frame header/trailer overhead, minimum frame,
// preamble/inter-frame gap).  §6.7 quotes the resulting wire times: "about
// 130 microseconds for 10Mbit ethernet, 13 microseconds for 100Mbit
// ethernet and FDDI, and less than 10 microseconds for Hippi" per round
// trip — the profiles below reproduce those numbers.
#ifndef LMBENCHPP_SRC_NETSIM_LINK_H_
#define LMBENCHPP_SRC_NETSIM_LINK_H_

#include <cstdint>
#include <string>

#include "src/core/clock.h"

namespace lmb::netsim {

struct LinkProfile {
  std::string name;
  double megabits_per_sec = 10.0;
  Nanos propagation_delay = 1 * kMicrosecond;  // one way
  std::uint32_t mtu_payload = 1500;            // max payload bytes per frame
  std::uint32_t frame_overhead = 18;           // header + trailer bytes
  std::uint32_t min_frame = 0;                 // payload+overhead padded up to this
  std::uint32_t preamble = 0;                  // preamble + inter-frame gap bytes

  // Bytes that actually occupy the wire for one frame carrying `payload`.
  std::uint64_t wire_bytes(std::uint32_t payload) const;

  // Serialization time of one frame carrying `payload` bytes.
  Nanos frame_time(std::uint32_t payload) const;

  // One-way delivery time of a single frame: serialization + propagation.
  Nanos one_way_time(std::uint32_t payload) const;

  // Number of frames needed for `bytes` of payload.
  std::uint64_t frames_for(std::uint64_t bytes) const;

  // One-way time for a multi-frame message, frames fully pipelined
  // (store-and-forward of the last frame + propagation).
  Nanos message_time(std::uint64_t bytes) const;

  // Steady-state payload throughput in MB/s (2^20), accounting for framing.
  double payload_mb_per_sec() const;

  // The four networks of Tables 4 and 14.
  static LinkProfile ethernet_10baseT();
  static LinkProfile ethernet_100baseT();
  static LinkProfile fddi();
  static LinkProfile hippi();
};

}  // namespace lmb::netsim

#endif  // LMBENCHPP_SRC_NETSIM_LINK_H_
