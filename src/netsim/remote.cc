#include "src/netsim/remote.h"

#include <algorithm>

#include "src/netsim/simnet.h"
#include "src/netsim/stream.h"

namespace lmb::netsim {

namespace {
// Headers on the wire for small messages.
constexpr std::uint32_t kTcpMessage = 4 + 40;  // payload + TCP/IP
constexpr std::uint32_t kUdpMessage = 4 + 28;  // payload + UDP/IP
}  // namespace

HostCosts HostCosts::from_loopback(double tcp_rtt_us, double udp_rtt_us, double tcp_bw_mb_s) {
  HostCosts costs;
  // A loopback round trip exercises the full send+receive path twice (once
  // per process); one remote one-way direction costs half of it.
  costs.tcp_one_way = static_cast<Nanos>(tcp_rtt_us / 2.0 * kMicrosecond);
  costs.udp_one_way = static_cast<Nanos>(udp_rtt_us / 2.0 * kMicrosecond);
  if (tcp_bw_mb_s > 0) {
    costs.per_byte_ns = 1e9 / (tcp_bw_mb_s * 1024.0 * 1024.0);
  }
  return costs;
}

RemoteLatency model_remote_latency(const LinkProfile& link, const HostCosts& hosts) {
  RemoteLatency out;
  out.network = link.name;
  Nanos tcp_wire = link.one_way_time(kTcpMessage) * 2;
  Nanos udp_wire = link.one_way_time(kUdpMessage) * 2;
  out.wire_rtt_us = static_cast<double>(tcp_wire) / kMicrosecond;
  // Round trip = both hosts' software (one loopback RTT worth) + wire.
  out.tcp_rtt_us = static_cast<double>(2 * hosts.tcp_one_way + tcp_wire) / kMicrosecond;
  out.udp_rtt_us = static_cast<double>(2 * hosts.udp_one_way + udp_wire) / kMicrosecond;
  return out;
}

RemoteBandwidth model_remote_bandwidth(const LinkProfile& link, const HostCosts& hosts,
                                       std::uint64_t transfer_bytes,
                                       std::uint64_t window_bytes) {
  RemoteBandwidth out;
  out.network = link.name;
  out.wire_mb_per_sec = link.payload_mb_per_sec();

  StreamConfig cfg;
  cfg.total_bytes = transfer_bytes;
  cfg.window_bytes = window_bytes;
  cfg.per_segment_cost = hosts.tcp_one_way / 4;  // small per-packet slice of the msg cost
  cfg.per_byte_cost_ns = hosts.per_byte_ns;
  StreamResult stream = simulate_stream_transfer(link, cfg);
  out.tcp_mb_per_sec = stream.mb_per_sec;
  return out;
}

double model_remote_connect_us(const LinkProfile& link, const HostCosts& hosts) {
  return static_cast<double>(simulate_connect_time(link, hosts.tcp_one_way)) / kMicrosecond;
}

std::vector<LinkProfile> paper_networks() {
  return {
      LinkProfile::hippi(),
      LinkProfile::ethernet_100baseT(),
      LinkProfile::fddi(),
      LinkProfile::ethernet_10baseT(),
  };
}

}  // namespace lmb::netsim
