#include "src/netsim/simnet.h"

#include <algorithm>
#include <stdexcept>

namespace lmb::netsim {

SimNetwork::SimNetwork(LinkProfile link, VirtualClock& clock)
    : link_(std::move(link)), clock_(&clock), queue_(clock) {}

void SimNetwork::set_handler(int host, Handler handler) {
  if (host != 0 && host != 1) {
    throw std::invalid_argument("SimNetwork: host must be 0 or 1");
  }
  handlers_[host] = std::move(handler);
}

void SimNetwork::set_loss(double rate, unsigned seed) {
  if (rate < 0.0 || rate >= 1.0) {
    throw std::invalid_argument("SimNetwork: loss rate must be in [0, 1)");
  }
  loss_rate_ = rate;
  loss_rng_.seed(seed);
}

void SimNetwork::send(int from, const Packet& packet) {
  if (from != 0 && from != 1) {
    throw std::invalid_argument("SimNetwork: host must be 0 or 1");
  }
  int to = 1 - from;

  // Fragment into frames; each frame occupies the wire back to back.
  std::uint64_t remaining = packet.bytes;
  Nanos start = std::max(clock_->now(), wire_free_[from]);
  Nanos done = start;
  do {
    std::uint32_t chunk =
        static_cast<std::uint32_t>(std::min<std::uint64_t>(remaining, link_.mtu_payload));
    done += link_.frame_time(chunk);
    remaining -= chunk;
  } while (remaining > 0);
  wire_free_[from] = done;

  if (loss_rate_ > 0.0 &&
      std::uniform_real_distribution<double>(0.0, 1.0)(loss_rng_) < loss_rate_) {
    ++dropped_;  // transmitted but never delivered
    return;
  }

  Nanos arrival = done + link_.propagation_delay;
  Packet delivered = packet;
  queue_.schedule_at(arrival, [this, to, delivered]() {
    delivered_packets_[to] += 1;
    delivered_bytes_[to] += delivered.bytes;
    if (handlers_[to]) {
      handlers_[to](to, delivered);
    }
  });
}

size_t SimNetwork::run(size_t limit) { return queue_.run_all(limit); }

std::uint64_t SimNetwork::packets_delivered(int host) const {
  return delivered_packets_[host];
}

std::uint64_t SimNetwork::bytes_delivered(int host) const { return delivered_bytes_[host]; }

Nanos simulate_echo_rtt(const LinkProfile& link, std::uint64_t bytes,
                        Nanos per_host_software_cost) {
  VirtualClock clock;
  SimNetwork net(link, clock);

  Nanos t_done = -1;
  Nanos t_start = -1;

  net.set_handler(1, [&](int, const Packet& p) {
    // Server: process (software cost) then echo.
    net.clock().advance(per_host_software_cost);
    net.send(1, p);
  });
  net.set_handler(0, [&](int, const Packet&) {
    net.clock().advance(per_host_software_cost);
    t_done = net.clock().now();
  });

  // Client: software cost to send, then the wire takes over.
  t_start = clock.now();
  clock.advance(per_host_software_cost);
  net.send(0, Packet{bytes, 0});
  net.run();

  if (t_done < 0) {
    throw std::logic_error("echo reply never arrived");
  }
  return t_done - t_start;
}

}  // namespace lmb::netsim
