#include "src/netsim/link.h"

#include <algorithm>
#include <stdexcept>

namespace lmb::netsim {

std::uint64_t LinkProfile::wire_bytes(std::uint32_t payload) const {
  if (payload > mtu_payload) {
    throw std::invalid_argument("frame payload exceeds MTU");
  }
  std::uint64_t frame = static_cast<std::uint64_t>(payload) + frame_overhead;
  frame = std::max<std::uint64_t>(frame, min_frame);
  return frame + preamble;
}

Nanos LinkProfile::frame_time(std::uint32_t payload) const {
  if (megabits_per_sec <= 0) {
    throw std::invalid_argument("link rate must be positive");
  }
  double bits = static_cast<double>(wire_bytes(payload)) * 8.0;
  return static_cast<Nanos>(bits / (megabits_per_sec * 1e6) * kSecond);
}

Nanos LinkProfile::one_way_time(std::uint32_t payload) const {
  return frame_time(payload) + propagation_delay;
}

std::uint64_t LinkProfile::frames_for(std::uint64_t bytes) const {
  if (bytes == 0) {
    return 1;  // even empty messages occupy one frame
  }
  return (bytes + mtu_payload - 1) / mtu_payload;
}

Nanos LinkProfile::message_time(std::uint64_t bytes) const {
  std::uint64_t full = bytes / mtu_payload;
  std::uint32_t tail = static_cast<std::uint32_t>(bytes % mtu_payload);
  Nanos t = 0;
  t += static_cast<Nanos>(full) * frame_time(mtu_payload);
  if (tail > 0 || full == 0) {
    t += frame_time(tail);
  }
  return t + propagation_delay;
}

double LinkProfile::payload_mb_per_sec() const {
  double payload_fraction = static_cast<double>(mtu_payload) /
                            static_cast<double>(wire_bytes(mtu_payload));
  return megabits_per_sec * 1e6 / 8.0 * payload_fraction / (1024.0 * 1024.0);
}

LinkProfile LinkProfile::ethernet_10baseT() {
  LinkProfile p;
  p.name = "10baseT";
  p.megabits_per_sec = 10.0;
  p.propagation_delay = 5 * kMicrosecond;  // hub + cable
  p.mtu_payload = 1500;
  p.frame_overhead = 18;  // MAC header + FCS
  p.min_frame = 64;
  p.preamble = 20;  // 8 preamble + 12 inter-frame gap
  return p;
}

LinkProfile LinkProfile::ethernet_100baseT() {
  LinkProfile p = ethernet_10baseT();
  p.name = "100baseT";
  p.megabits_per_sec = 100.0;
  p.propagation_delay = 2 * kMicrosecond;
  return p;
}

LinkProfile LinkProfile::fddi() {
  LinkProfile p;
  p.name = "fddi";
  p.megabits_per_sec = 100.0;
  p.propagation_delay = 5 * kMicrosecond;  // ring latency
  p.mtu_payload = 4352;                    // "packets that are almost three times larger" (§5.2)
  p.frame_overhead = 28;
  p.min_frame = 0;
  p.preamble = 8;
  return p;
}

LinkProfile LinkProfile::hippi() {
  LinkProfile p;
  p.name = "hippi";
  p.megabits_per_sec = 800.0;  // "100MB/s Hippi"
  p.propagation_delay = 1 * kMicrosecond;
  p.mtu_payload = 65280;
  p.frame_overhead = 40;
  p.min_frame = 0;
  p.preamble = 0;
  return p;
}

}  // namespace lmb::netsim
