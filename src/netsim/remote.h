// Remote-network benchmark models — paper Tables 4, 14 and the remote view
// of Table 15.
//
// Decomposition per §6.7: a remote round trip is the local (loopback)
// software cost plus the time on the wire.  The software half is measured
// live on this host; the wire half comes from the link models; the stream
// simulator combines both for bandwidth.
#ifndef LMBENCHPP_SRC_NETSIM_REMOTE_H_
#define LMBENCHPP_SRC_NETSIM_REMOTE_H_

#include <string>
#include <vector>

#include "src/core/clock.h"
#include "src/netsim/link.h"

namespace lmb::netsim {

// Host software costs derived from live loopback measurements.
struct HostCosts {
  // One-way small-message software cost (half the loopback round trip).
  Nanos tcp_one_way = 0;
  Nanos udp_one_way = 0;
  // Bulk per-byte protocol cost (checksum + copy), from loopback TCP
  // bandwidth: ns per payload byte.
  double per_byte_ns = 0.0;

  // Builds from measured loopback numbers.
  static HostCosts from_loopback(double tcp_rtt_us, double udp_rtt_us, double tcp_bw_mb_s);
};

struct RemoteLatency {
  std::string network;
  double tcp_rtt_us = 0.0;
  double udp_rtt_us = 0.0;
  double wire_rtt_us = 0.0;  // the wire-only component, for the table notes
};

// Table 14 row: small-message (4-byte payload) round trip over `link`.
RemoteLatency model_remote_latency(const LinkProfile& link, const HostCosts& hosts);

struct RemoteBandwidth {
  std::string network;
  double tcp_mb_per_sec = 0.0;
  // The pure-wire ceiling (payload rate), for the table notes.
  double wire_mb_per_sec = 0.0;
};

// Table 4 row: bulk TCP transfer over `link` with `window_bytes` in flight.
RemoteBandwidth model_remote_bandwidth(const LinkProfile& link, const HostCosts& hosts,
                                       std::uint64_t transfer_bytes = 8u << 20,
                                       std::uint64_t window_bytes = 1u << 20);

// Remote TCP connect time over `link` (Table 15's remote analog).
double model_remote_connect_us(const LinkProfile& link, const HostCosts& hosts);

// The four networks of Tables 4/14, in the paper's order.
std::vector<LinkProfile> paper_networks();

}  // namespace lmb::netsim

#endif  // LMBENCHPP_SRC_NETSIM_REMOTE_H_
